// Package dmpic is a compatibility layer exposing the paper's exact C-style
// Dyn-MPI interface (Figure 2): DMPI_init, DMPI_register_dense_array,
// DMPI_register_sparse_array, DMPI_init_phase, DMPI_add_array_access,
// DMPI_get_start_iter / DMPI_get_end_iter, DMPI_participating,
// DMPI_get_rel_rank, DMPI_get_num_active, and DMPI_Send / DMPI_Recv.
//
// A faithful detail: the paper's programs contain no explicit
// begin-of-cycle call — the runtime hooks the phase-cycle boundary into the
// loop-bounds query. This layer does the same: the first
// DMPI_get_start_iter of each phase cycle closes the previous cycle and
// opens the next (running the load check and any adaptation), exactly as
// the example program in Figure 2 expects.
//
// Method names intentionally keep the paper's underscore style; idiomatic
// Go callers should use package dynmpi instead.
package dmpic

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// Distribution and access-mode constants mirroring the paper's macros.
const (
	DMPI_BLOCK = 0 // the only initial distribution the runtime materialises

	DMPI_READ      = drsd.Read
	DMPI_WRITE     = drsd.Write
	DMPI_READWRITE = drsd.ReadWrite
)

// DMPI_NEAREST_NEIGHBOR is the phase communication-pattern tag from
// Figure 2; it is documentation only (the DRSDs carry the information the
// runtime actually uses).
const DMPI_NEAREST_NEIGHBOR = 1

// P is one rank's Dyn-MPI context — the implicit global state a C program
// would hold after DMPI_init.
type P struct {
	rt        *core.Runtime
	phase     *core.Phase
	cycleOpen bool
	part      bool
}

// Run launches an SPMD program over the given simulated cluster; fn
// receives each rank's context after DMPI_init has run.
func Run(spec cluster.Spec, cfg core.Config, fn func(p *P) error) error {
	return mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		return fn(&P{rt: core.New(c, cfg)})
	})
}

// DMPI_init mirrors the paper's initialisation call. numProcessors is
// checked against the launch configuration; dist must be DMPI_BLOCK.
func (p *P) DMPI_init(numProcessors, numPhases, numDims, dist int) {
	if numProcessors != p.rt.Comm().Size() {
		panic("dmpic: DMPI_init processor count does not match the launched world")
	}
	if dist != DMPI_BLOCK {
		panic("dmpic: only DMPI_BLOCK initial distributions are materialised")
	}
}

// DMPI_register_dense_array registers an N-d dense array projected onto
// (rows × rowLen) extended rows.
func (p *P) DMPI_register_dense_array(name string, rows, rowLen int) *matrix.Dense {
	return p.rt.RegisterDense(name, rows, rowLen)
}

// DMPI_register_sparse_array registers a sparse array in the
// vector-of-lists format.
func (p *P) DMPI_register_sparse_array(name string, rows int) *matrix.Sparse {
	return p.rt.RegisterSparse(name, rows)
}

// DMPI_init_phase declares a phase over iterations [1..n] in the paper's
// inclusive style; internally the space is [0..n).
func (p *P) DMPI_init_phase(n, pattern int) {
	_ = pattern
	p.phase = p.rt.InitPhase(n)
}

// DMPI_add_array_access declares one array reference of the partitioned
// loop (a deferred regular section descriptor).
func (p *P) DMPI_add_array_access(name string, mode drsd.Mode, step, off int) {
	p.phase.AddAccess(name, mode, step, off)
}

// DMPI_commit finalises registration so arrays can be filled before the
// first cycle (implicit in the paper's first bounds query; explicit here
// so initial data can be written).
func (p *P) DMPI_commit() { p.rt.Commit() }

// DMPI_get_start_iter returns this rank's first iteration. Its first call
// per phase cycle is the cycle boundary: the previous cycle is closed and
// the runtime's per-cycle machinery (load check, grace measurement,
// redistribution, drop, rejoin) runs.
func (p *P) DMPI_get_start_iter() int {
	if p.cycleOpen {
		p.rt.EndCycle()
	}
	p.part = p.rt.BeginCycle()
	p.cycleOpen = true
	lo, _ := p.phase.Bounds()
	return lo
}

// DMPI_get_end_iter returns one past this rank's last iteration (the
// paper's inclusive end_iter corresponds to this value minus one).
func (p *P) DMPI_get_end_iter() int {
	_, hi := p.phase.Bounds()
	return hi
}

// DMPI_participating reports whether this rank takes part in the current
// cycle (false once physically removed).
func (p *P) DMPI_participating() bool { return p.part }

// DMPI_get_rel_rank returns the rank's current relative rank.
func (p *P) DMPI_get_rel_rank() int { return p.rt.RelRank() }

// DMPI_get_num_active returns the number of participating nodes.
func (p *P) DMPI_get_num_active() int { return p.rt.NumActive() }

// DMPI_Send sends to a relative rank.
func (p *P) DMPI_Send(data []float64, relDst, tag int) {
	buf := append([]float64(nil), data...)
	p.rt.SendRel(relDst, tag, buf, mpi.F64Bytes(len(buf)))
}

// DMPI_Recv receives a []float64 from a relative rank.
func (p *P) DMPI_Recv(relSrc, tag int) []float64 {
	v, _ := p.rt.RecvRelF64s(relSrc, tag)
	return v
}

// DMPI_work charges the computation of iteration g (a substrate necessity:
// on the simulated cluster, CPU cost is declared rather than consumed).
func (p *P) DMPI_work(g int, cost vclock.Duration) { p.rt.ComputeIter(g, cost) }

// DMPI_finalize completes the run (closing the last cycle).
func (p *P) DMPI_finalize() {
	if p.cycleOpen {
		p.rt.EndCycle()
		p.cycleOpen = false
	}
	p.rt.Finalize()
}

// Runtime exposes the underlying runtime for inspection (tests, traces).
func (p *P) Runtime() *core.Runtime { return p.rt }
