package dmpic

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vclock"
)

// TestFigure2Program runs the paper's Figure 2 example essentially
// verbatim: a single-phase stencil where each rank computes A from B over
// its assigned iterations and exchanges boundary rows of B with its
// relative-rank neighbours, under a competing process that triggers a
// redistribution mid-run.
func TestFigure2Program(t *testing.T) {
	const (
		numProcs = 4
		n        = 64
		numIters = 40
		rowLen   = 8
	)
	spec := cluster.Uniform(numProcs).With(cluster.CycleEvent(1, 3, +1))
	cfg := core.DefaultConfig()
	cfg.Drop = core.DropNever

	var mu sync.Mutex
	sums := map[int]float64{}
	err := Run(spec, cfg, func(p *P) error {
		p.DMPI_init(numProcs, 1, 2, DMPI_BLOCK)
		a := p.DMPI_register_dense_array("A", n, rowLen)
		b := p.DMPI_register_dense_array("B", n, rowLen)
		p.DMPI_init_phase(n, DMPI_NEAREST_NEIGHBOR)
		p.DMPI_add_array_access("A", DMPI_WRITE, 1, 0)
		p.DMPI_add_array_access("B", DMPI_READ, 1, -1)
		p.DMPI_add_array_access("B", DMPI_READ, 1, 0)
		p.DMPI_add_array_access("B", DMPI_READ, 1, +1)
		p.DMPI_commit()
		b.Fill(func(g, j int) float64 { return float64(g*100 + j) })
		a.Fill(func(g, j int) float64 { return 0 })

		for iter := 0; iter < numIters; iter++ {
			startIter := p.DMPI_get_start_iter()
			endIter := p.DMPI_get_end_iter()
			if p.DMPI_participating() {
				for i := startIter; i < endIter; i++ {
					out := a.Row(i)
					for j := 0; j < rowLen; j++ {
						s := b.Row(i)[j]
						if i > 0 {
							s += b.Row(i - 1)[j]
						}
						if i < n-1 {
							s += b.Row(i + 1)[j]
						}
						out[j] = s / 3
					}
					p.DMPI_work(i, 8*vclock.Millisecond)
				}
				relRank := p.DMPI_get_rel_rank()
				if relRank > 0 {
					p.DMPI_Send(a.Row(startIter), relRank-1, 1)
				}
				if relRank < p.DMPI_get_num_active()-1 {
					p.DMPI_Send(a.Row(endIter-1), relRank+1, 2)
				}
				if relRank > 0 {
					copy(b.Row(startIter-1), p.DMPI_Recv(relRank-1, 2))
				}
				if relRank < p.DMPI_get_num_active()-1 {
					copy(b.Row(endIter), p.DMPI_Recv(relRank+1, 1))
				}
				// B interior <- A (ping through a copy keeps Figure 2's
				// single-direction A = F(B) shape).
				for i := startIter; i < endIter; i++ {
					copy(b.Row(i), a.Row(i))
				}
			}
		}
		p.DMPI_finalize()

		if p.DMPI_participating() {
			lo, hi := p.Runtime().Dist().RangeOf(p.Runtime().Comm().Rank())
			s := 0.0
			for g := lo; g < hi; g++ {
				for _, v := range b.Row(g) {
					s += v
				}
			}
			mu.Lock()
			sums[p.Runtime().Comm().Rank()] = s
			mu.Unlock()
			if p.Runtime().Redistributions() == 0 {
				return fmt.Errorf("the Figure 2 scenario should have redistributed")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	if total == 0 {
		t.Fatal("degenerate result")
	}
}

func TestInitValidation(t *testing.T) {
	err := Run(cluster.Uniform(2), core.DefaultConfig(), func(p *P) error {
		defer func() {
			if recover() == nil {
				t.Error("wrong processor count did not panic")
			}
		}()
		p.DMPI_init(3, 1, 2, DMPI_BLOCK)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(cluster.Uniform(2), core.DefaultConfig(), func(p *P) error {
		defer func() {
			if recover() == nil {
				t.Error("non-block distribution did not panic")
			}
		}()
		p.DMPI_init(2, 1, 2, 99)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparseRegistrationThroughCompatLayer(t *testing.T) {
	err := Run(cluster.Uniform(2), core.Config{Adapt: false}, func(p *P) error {
		p.DMPI_init(2, 1, 2, DMPI_BLOCK)
		s := p.DMPI_register_sparse_array("S", 10)
		p.DMPI_init_phase(10, DMPI_NEAREST_NEIGHBOR)
		p.DMPI_add_array_access("S", DMPI_READWRITE, 1, 0)
		p.DMPI_commit()
		lo := p.DMPI_get_start_iter()
		hi := p.DMPI_get_end_iter()
		for g := lo; g < hi; g++ {
			s.Append(g, 0, float64(g))
			p.DMPI_work(g, vclock.Millisecond)
		}
		p.DMPI_finalize()
		if s.NNZ() != hi-lo {
			return fmt.Errorf("NNZ %d", s.NNZ())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
