package dynmpi_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/dynmpi"
)

// ExampleLaunch runs a minimal adaptive program: four nodes, a competing
// process appearing on node 1, and a stencil that keeps its loop bounds
// current through the runtime. The output shows the distribution before
// and after Dyn-MPI reacts.
func ExampleLaunch() {
	spec := dynmpi.Uniform(4).With(dynmpi.CompetingProcessAtCycle(1, 5))
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = dynmpi.DropNever

	const n = 64
	var mu sync.Mutex
	var before, after []int
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		a := rt.RegisterDense("A", n, 4)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
		rt.Commit()
		a.Fill(func(g, j int) float64 { return 0 })

		for t := 0; t < 40; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				if t == 0 && rt.Comm().Rank() == 0 {
					mu.Lock()
					before = rt.Dist().Counts()
					mu.Unlock()
				}
				for g := lo; g < hi; g++ {
					a.Row(g)[0]++
					rt.ComputeIter(g, 10*dynmpi.Millisecond)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		if rt.Comm().Rank() == 0 {
			mu.Lock()
			after = rt.Dist().Counts()
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Ints(after) // the loaded node holds the minimum
	fmt.Println("initial rows per node:", before)
	fmt.Println("loaded node's share after adaptation:", after[0])
	// Output:
	// initial rows per node: [16 16 16 16]
	// loaded node's share after adaptation: 9
}
