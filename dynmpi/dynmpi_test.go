package dynmpi_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/dynmpi"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream
// user would: launch, register, declare accesses, iterate with halo
// exchange, adapt under load, verify.
func TestPublicAPIEndToEnd(t *testing.T) {
	const n, width, iters = 64, 16, 40
	spec := dynmpi.Uniform(3).With(dynmpi.CompetingProcessAtCycle(1, 3))
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = dynmpi.DropNever

	var mu sync.Mutex
	redists := 0
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		a := rt.RegisterDense("A", n, width)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
		ph.AddAccess("A", dynmpi.Read, 1, -1)
		ph.AddAccess("A", dynmpi.Read, 1, +1)
		rt.Commit()
		a.Fill(func(g, j int) float64 { return float64(g) })

		for t := 0; t < iters; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := a.Row(g)
					for j := range row {
						row[j] += 1
					}
					rt.ComputeIter(g, 10*dynmpi.Millisecond)
				}
				dynmpi.HaloExchange(rt, 1, n,
					func(g int) []float64 { return a.Row(g) },
					func(g int, row []float64) { copy(a.Row(g), row) })
			}
			rt.EndCycle()
		}

		if rt.Participating() {
			lo, hi := ph.Bounds()
			for g := lo; g < hi; g++ {
				if a.Row(g)[0] != float64(g+iters) {
					return fmt.Errorf("row %d = %v, want %v", g, a.Row(g)[0], g+iters)
				}
			}
		}
		rt.Finalize()
		mu.Lock()
		if rt.Redistributions() > redists {
			redists = rt.Redistributions()
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if redists == 0 {
		t.Fatal("no adaptation through the public API")
	}
}

func TestPublicSparseAndGlobals(t *testing.T) {
	const n = 30
	spec := dynmpi.Uniform(3).With(dynmpi.CompetingProcessAt(0, 0))
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = dynmpi.DropAlways
	cfg.AllowRejoin = false
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		s := rt.RegisterSparse("S", n)
		ph := rt.InitPhase(n)
		ph.AddAccess("S", dynmpi.ReadWrite, 1, 0)
		rt.Commit()
		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			s.Append(g, int32(g), 1)
		}
		var last float64
		for t := 0; t < 25; t++ {
			total := 0.0
			if rt.BeginCycle() {
				lo, hi = ph.Bounds()
				for g := lo; g < hi; g++ {
					total += float64(s.RowLen(g))
					rt.ComputeIter(g, 10*dynmpi.Millisecond)
				}
			}
			last = rt.AllreduceSum(total)
			rt.EndCycle()
		}
		rt.Finalize()
		if last != n {
			return fmt.Errorf("global element count %v, want %v", last, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorPropagatesFromLaunch(t *testing.T) {
	err := dynmpi.Launch(dynmpi.Uniform(2), dynmpi.DefaultConfig(), func(rt *dynmpi.Runtime) error {
		if rt.Comm().Rank() == 1 {
			return fmt.Errorf("deliberate")
		}
		rt.InitPhase(4)
		rt.Commit()
		rt.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestF64Bytes(t *testing.T) {
	if dynmpi.F64Bytes(10) != 80 {
		t.Fatal("F64Bytes")
	}
}
