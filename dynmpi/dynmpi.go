// Package dynmpi is the public API of the Dyn-MPI reproduction: a runtime
// system that automatically redistributes block-distributed array data when
// the load on a (simulated) non dedicated cluster changes, following
// Weatherly, Lowenthal, Nakazawa & Lowenthal, "Dyn-MPI: Supporting MPI on
// Non Dedicated Clusters" (SC 2003).
//
// A Dyn-MPI program mirrors the paper's Figure 2: register the arrays that
// may be redistributed, declare each array reference of the partitioned
// loop as a deferred regular section descriptor, and then, every phase
// cycle, ask the runtime for the current loop bounds and communicate via
// relative ranks:
//
//	err := dynmpi.Launch(dynmpi.Uniform(4), dynmpi.DefaultConfig(),
//	    func(rt *dynmpi.Runtime) error {
//	        a := rt.RegisterDense("A", n, n)
//	        ph := rt.InitPhase(n)
//	        ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
//	        rt.Commit()
//	        // ... fill a ...
//	        for t := 0; t < iters; t++ {
//	            if rt.BeginCycle() {
//	                lo, hi := ph.Bounds()
//	                for i := lo; i < hi; i++ {
//	                    // real computation on a.Row(i)
//	                    rt.ComputeIter(i, costOfRow)
//	                }
//	                // explicit communication via rt.SendRel / rt.RecvRel
//	            }
//	            rt.EndCycle()
//	        }
//	        rt.Finalize()
//	        return nil
//	    })
//
// The underlying cluster, message passing, matrices, section descriptors
// and distribution algorithms live in the internal packages; this package
// re-exports everything a user program needs.
package dynmpi

import (
	"io"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/fault"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Core runtime types (see internal/core for full documentation).
type (
	// Runtime is one rank's Dyn-MPI runtime instance.
	Runtime = core.Runtime
	// Config parameterises the runtime.
	Config = core.Config
	// Phase is one computation/communication section of the phase cycle.
	Phase = core.Phase
	// Method selects the distribution algorithm.
	Method = core.Method
	// DropPolicy controls node removal.
	DropPolicy = core.DropPolicy
	// Event is one adaptation-trace entry.
	Event = core.Event
)

// Distribution methods and drop policies.
const (
	SuccessiveBalancing = core.SuccessiveBalancing
	RelativePower       = core.RelativePower

	DropAuto    = core.DropAuto
	DropNever   = core.DropNever
	DropAlways  = core.DropAlways
	DropLogical = core.DropLogical
)

// Redistribution commit modes for Config.RedistMode (the zero value
// RedistPipelined keeps virtual timelines byte-identical to the blocking
// engine; RedistOverlap commits in arrival order; RedistRMA lands dense
// slabs through one-sided windows).
const (
	RedistPipelined = core.RedistPipelined
	RedistBlocking  = core.RedistBlocking
	RedistOverlap   = core.RedistOverlap
	RedistRMA       = core.RedistRMA
)

// Access modes for AddAccess.
const (
	Read      = drsd.Read
	Write     = drsd.Write
	ReadWrite = drsd.ReadWrite
)

// Allocation schemes for dense arrays.
const (
	Projection = matrix.Projection
	Contiguous = matrix.Contiguous
)

// Matrix types returned by the registration calls.
type (
	// Dense is a rank's resident window of a dense array.
	Dense = matrix.Dense
	// Sparse is a rank's resident window of a vector-of-lists sparse array.
	Sparse = matrix.Sparse
	// PackedRow is a sparse row packed for transport.
	PackedRow = matrix.PackedRow
)

// Cluster scenario types.
type (
	// ClusterSpec describes the simulated cluster and its load events.
	ClusterSpec = cluster.Spec
	// NodeSpec describes one node.
	NodeSpec = cluster.NodeSpec
	// NetParams describes the interconnect cost model.
	NetParams = cluster.NetParams
	// LoadEvent changes the competing-process count on one node.
	LoadEvent = cluster.Event
)

// Virtual time types.
type (
	// Time is a point in virtual time.
	Time = vclock.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = vclock.Duration
)

// Common durations.
const (
	Microsecond = vclock.Microsecond
	Millisecond = vclock.Millisecond
	Second      = vclock.Second
)

// DefaultConfig returns the paper's default runtime configuration:
// adaptation on, successive balancing, automatic node removal, 5-cycle
// grace period, 10-cycle post-redistribution grace.
func DefaultConfig() Config { return core.DefaultConfig() }

// Uniform returns a cluster of n identical nodes with no competing
// processes and the paper-like default network parameters.
func Uniform(n int) ClusterSpec { return cluster.Uniform(n) }

// CompetingProcessAt schedules a competing-process start on node at a
// virtual time.
func CompetingProcessAt(node int, at Time) LoadEvent { return cluster.TimeEvent(node, at, +1) }

// CompetingProcessAtCycle schedules a competing-process start on node when
// its application reaches the given phase cycle (the paper's "introduced on
// the 10th iteration" scenarios).
func CompetingProcessAtCycle(node, cycle int) LoadEvent { return cluster.CycleEvent(node, cycle, +1) }

// CompetingProcessStop schedules the removal of one competing process.
func CompetingProcessStop(node int, at Time) LoadEvent { return cluster.TimeEvent(node, at, -1) }

// Fault is one injected failure (crash, stall, message drop or delay); see
// internal/fault for trigger semantics. Faults are deterministic in virtual
// time: repeated runs of the same scenario replay identically.
type Fault = fault.Fault

// CrashAtCycle schedules node to crash at the start of the given phase
// cycle. Survivors detect the death, drop the member and re-partition; with
// Config.Replicate the dead rank's dense rows are reconstructed from the
// buddy replica.
func CrashAtCycle(node, cycle int) Fault { return fault.CrashAtCycle(node, cycle) }

// CrashAt schedules node to crash at its first communication operation at
// or after virtual time t.
func CrashAt(node int, t Time) Fault { return fault.CrashAt(node, t) }

// StallAtCycle freezes node for dur of virtual time at the start of cycle.
func StallAtCycle(node, cycle int, dur Duration) Fault { return fault.StallAtCycle(node, cycle, dur) }

// DropMessages drops count messages on the node->to link starting with the
// after-th (0-based); each is redelivered one retransmission delay later.
func DropMessages(node, to, after, count int) Fault { return fault.DropMsgs(node, to, after, count) }

// DelayMessages adds dur to the delivery of count messages on the node->to
// link starting with the after-th (0-based).
func DelayMessages(node, to, after, count int, dur Duration) Fault {
	return fault.DelayMsgs(node, to, after, count, dur)
}

// ParseFaults parses the dynexp -fault spec syntax (semicolon-separated
// "kind:key=value,..." entries, e.g. "crash:node=2,cycle=12").
func ParseFaults(s string) ([]Fault, error) { return fault.ParseSpecs(s) }

// WithFaults returns spec with the given faults added to the scenario.
func WithFaults(spec ClusterSpec, faults ...Fault) ClusterSpec {
	spec.Faults = append(append([]Fault(nil), spec.Faults...), faults...)
	return spec
}

// Launch runs fn as an SPMD program: one goroutine per cluster node, each
// receiving its own Runtime built from cfg. It returns the first error any
// rank produced (a failing rank unwinds the whole world).
func Launch(spec ClusterSpec, cfg Config, fn func(rt *Runtime) error) error {
	return mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		return fn(core.New(c, cfg))
	})
}

// F64Bytes reports the wire size of n float64 values, for SendRel calls.
func F64Bytes(n int) int { return mpi.F64Bytes(n) }

// Telemetry types (see internal/telemetry for full documentation). Every
// adaptation action of an instrumented run is emitted as a structured
// record: per-cycle iteration breakdowns, distribution decisions with the
// candidates considered, redistribution volumes, and membership changes.
type (
	// TelemetrySink receives structured runtime records; implementations
	// must be safe for concurrent use across rank goroutines.
	TelemetrySink = telemetry.Sink
	// TelemetryRecord is one structured telemetry event.
	TelemetryRecord = telemetry.Record
	// TelemetryRing is the bounded in-memory sink.
	TelemetryRing = telemetry.Ring
	// IterationRecord is the per-cycle compute/comm/wait breakdown.
	IterationRecord = telemetry.IterationRecord
	// DecisionRecord is one adaptation decision with its candidates.
	DecisionRecord = telemetry.DecisionRecord
	// RedistRecord is one executed redistribution's volume accounting.
	RedistRecord = telemetry.RedistRecord
	// MembershipRecord is one active-set change with the rank remap.
	MembershipRecord = telemetry.MembershipRecord
	// TelemetryJSONL is the streaming JSONL sink.
	TelemetryJSONL = telemetry.JSONLWriter
)

// WithTelemetry returns a copy of cfg that emits structured records into
// sink. Pass the result to Launch:
//
//	ring := dynmpi.NewTelemetryRing(1 << 16)
//	err := dynmpi.Launch(spec, dynmpi.WithTelemetry(dynmpi.DefaultConfig(), ring), fn)
func WithTelemetry(cfg Config, sink TelemetrySink) Config {
	cfg.Telemetry = sink
	return cfg
}

// NewTelemetryRing returns an in-memory sink holding the most recent
// `capacity` records.
func NewTelemetryRing(capacity int) *TelemetryRing { return telemetry.NewRing(capacity) }

// NewTelemetryJSONL returns a sink that writes one JSON object per record
// to w in arrival order; call Flush when the run completes. For a
// deterministic file, collect into a ring and use WriteTelemetryJSONL.
func NewTelemetryJSONL(w io.Writer) *TelemetryJSONL { return telemetry.NewJSONLWriter(w) }

// WriteTelemetryJSONL writes records to w as JSONL in slice order. Sort
// them first with SortTelemetry for the deterministic global order.
func WriteTelemetryJSONL(w io.Writer, recs []TelemetryRecord) error {
	return telemetry.WriteJSONL(w, recs)
}

// SortTelemetry orders records by (virtual time, node, sequence), the
// deterministic global order of a simulated run.
func SortTelemetry(recs []TelemetryRecord) { telemetry.Sort(recs) }

// HaloExchange performs the standard nearest-neighbour boundary exchange
// for the current block distribution: each rank sends its first owned row
// up and its last owned row down (snapshotting them), receiving the
// adjacent ghost rows through store. It is safe across redistributions and
// node removals: adjacency follows row ownership, not relative rank, and
// ranks owning no rows neither send nor receive. n is the global row
// count; rowOf must return resident row g; store receives ghost rows.
func HaloExchange(rt *Runtime, tag, n int, rowOf func(g int) []float64, store func(g int, row []float64)) {
	apps.HaloExchange(rt, tag, n, rowOf, store)
}

// HaloExchangeOverlap is HaloExchange with communication/computation
// overlap: the boundary rows are posted nonblockingly, overlap (typically
// the interior compute, which must not touch the boundary or ghost rows)
// runs over the in-flight wire time, and only then are the ghost rows
// waited for and stored. Wire time hidden behind the overlap closure is
// free in virtual time and credited to the run's hidden-wire telemetry.
// With a nil overlap it degenerates to HaloExchange's exact charges.
func HaloExchangeOverlap(rt *Runtime, tag, n int, rowOf func(g int) []float64, store func(g int, row []float64), overlap func()) {
	apps.HaloExchangeOverlap(rt, tag, n, rowOf, store, overlap)
}
