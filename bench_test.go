package repro_test

// One benchmark per table/figure of the paper (scaled-down cells, so the
// full -bench=. run stays fast), plus micro-benchmarks of the substrates.
// Absolute wall-clock numbers measure the *simulator*; the virtual-time
// results inside each experiment are what reproduce the paper (run
// cmd/dynexp for those).

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/cg"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/particles"
	"repro/internal/apps/sor"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distribution"
	"repro/internal/drsd"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// loaded4 is the canonical scenario: 4 nodes, one CP on node 1 at cycle 10.
func loaded4() cluster.Spec {
	return cluster.Uniform(4).With(cluster.CycleEvent(1, 10, +1))
}

func benchResult(b *testing.B, res apps.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if res.Redists == 0 {
		b.Fatal("benchmark scenario did not adapt")
	}
}

// --- Figure 4: one cell per application ------------------------------------

func BenchmarkFig4Jacobi(b *testing.B) {
	b.ReportAllocs()
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 128, 80, 10e3
	cfg.Overlap = true // nonblocking halos: fewer physical blocking handshakes
	for i := 0; i < b.N; i++ {
		res, err := jacobi.Run(cluster.New(loaded4()), cfg)
		benchResult(b, res, err)
	}
}

func BenchmarkFig4SOR(b *testing.B) {
	b.ReportAllocs()
	cfg := sor.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 128, 80, 10e3
	cfg.Overlap = true
	for i := 0; i < b.N; i++ {
		res, err := sor.Run(cluster.New(loaded4()), cfg)
		benchResult(b, res, err)
	}
}

func BenchmarkFig4CG(b *testing.B) {
	b.ReportAllocs()
	cfg := cg.DefaultConfig()
	cfg.N, cfg.Iters, cfg.CostPerNnz = 600, 60, 20e3
	for i := 0; i < b.N; i++ {
		res, err := cg.Run(cluster.New(loaded4()), cfg)
		benchResult(b, res, err)
	}
}

func BenchmarkFig4Particles(b *testing.B) {
	b.ReportAllocs()
	cfg := particles.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Steps, cfg.CostPerParticle = 64, 64, 80, 30e3
	cfg.ExtraAllP0 = 1
	spec := cluster.Uniform(4).With(cluster.CycleEvent(0, 10, +1))
	for i := 0; i < b.N; i++ {
		res, err := particles.Run(cluster.New(spec), cfg)
		benchResult(b, res, err)
	}
}

// --- §5.1 CG case study ------------------------------------------------------

func BenchmarkCGTable(b *testing.B) {
	b.ReportAllocs()
	cfg := cg.DefaultConfig()
	cfg.N, cfg.Iters, cfg.CostPerNnz = 600, 60, 20e3
	cfg.Core.Drop = core.DropNever
	for i := 0; i < b.N; i++ {
		res, err := cg.Run(cluster.New(loaded4()), cfg)
		benchResult(b, res, err)
	}
}

// --- Figure 5: multiple redistribution points -------------------------------

func BenchmarkFig5ShortExecution(b *testing.B) {
	b.ReportAllocs()
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 512, 90, 3e3
	cfg.Core.Drop = core.DropNever
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 30, +1)).
		With(cluster.CycleEvent(1, 60, -1))
	for i := 0; i < b.N; i++ {
		res, err := jacobi.Run(cluster.New(spec), cfg)
		benchResult(b, res, err)
	}
}

// --- Figure 6: node removal --------------------------------------------------

func BenchmarkFig6KeepVsDrop(b *testing.B) {
	b.ReportAllocs()
	cfg := sor.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 256, 60, 6e3
	spec := cluster.Uniform(8).With(cluster.TimeEvent(4, 0, +1))
	for i := 0; i < b.N; i++ {
		keep := cfg
		keep.Core = core.DefaultConfig()
		keep.Core.Drop = core.DropNever
		res, err := sor.Run(cluster.New(spec), keep)
		benchResult(b, res, err)
		drop := cfg
		drop.Core = core.DefaultConfig()
		drop.Core.Drop = core.DropAlways
		res, err = sor.Run(cluster.New(spec), drop)
		benchResult(b, res, err)
	}
}

// --- Figure 7: grace periods -------------------------------------------------

func BenchmarkFig7GracePeriods(b *testing.B) {
	b.ReportAllocs()
	cfg := particles.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Steps, cfg.CostPerParticle = 64, 48, 120, 5e3
	cfg.ExtraTopP0 = 10
	cfg.Core.Drop = core.DropNever
	spec := cluster.Uniform(8).With(cluster.CycleEvent(0, 10, +1))
	for i := 0; i < b.N; i++ {
		for _, gp := range []int{1, 5} {
			c := cfg
			c.Core.GracePeriod = gp
			res, err := particles.Run(cluster.New(spec), c)
			benchResult(b, res, err)
		}
	}
}

// --- §4.1 allocation comparison ----------------------------------------------

func BenchmarkAllocProjectionGrow(b *testing.B) {
	b.ReportAllocs()
	benchAllocGrow(b, matrix.Projection)
}

func BenchmarkAllocContiguousGrow(b *testing.B) {
	b.ReportAllocs()
	benchAllocGrow(b, matrix.Contiguous)
}

func benchAllocGrow(b *testing.B, scheme matrix.Alloc) {
	for i := 0; i < b.N; i++ {
		d := matrix.NewDense("A", 2048, 256, scheme, nil)
		d.SetWindow(0, 1024)
		for w := 1025; w <= 2048; w += 64 {
			d.SetWindow(0, w)
		}
	}
}

// --- §4.3 micro-benchmarks -----------------------------------------------------

func BenchmarkMicrobenchPairFraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f := distribution.MeasurePairFraction(1, 16); f <= 0 || f > 0.5 {
			b.Fatalf("fraction %v out of range", f)
		}
	}
}

func BenchmarkSuccessiveBalancing(b *testing.B) {
	b.ReportAllocs()
	nodes := make([]distribution.Node, 32)
	for i := range nodes {
		nodes[i] = distribution.Node{Rank: i, Power: 1}
	}
	nodes[7].Load = 2
	nodes[19].Load = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distribution.SuccessiveBalancingFractions(nodes, 1.0, 0.01, nil)
	}
}

func BenchmarkPartitionWeighted(b *testing.B) {
	b.ReportAllocs()
	costs := make([]float64, 16384)
	for i := range costs {
		costs[i] = float64(i%7 + 1)
	}
	fr := []float64{0.1, 0.2, 0.25, 0.15, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distribution.PartitionWeighted(costs, fr)
	}
}

// --- substrate micro-benchmarks -----------------------------------------------

func BenchmarkMPISendRecv(b *testing.B) {
	b.ReportAllocs()
	payload := make([]float64, 1024)
	// Box the payload once: Send takes `any`, and re-boxing a slice on every
	// call would charge the benchmark one allocation that real hot loops can
	// (and should) hoist exactly like this.
	var boxed any = payload
	bytes := mpi.F64Bytes(len(payload))
	err := mpi.Run(cluster.New(cluster.Uniform(2)), func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, boxed, bytes)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMPISendRecvFaults measures the liveness-check overhead the
// failure machinery adds to the hot path: a fault set is armed (a far-future
// timed crash plus message rules on an unrelated link) so every send and
// receive runs the fault polls, but none ever fires. Must stay 0 allocs/op
// and within the benchgate window of BenchmarkMPISendRecv.
func BenchmarkMPISendRecvFaults(b *testing.B) {
	b.ReportAllocs()
	payload := make([]float64, 1024)
	var boxed any = payload
	bytes := mpi.F64Bytes(len(payload))
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{
		fault.CrashAt(0, vclock.Time(vclock.FromSeconds(1e6))),
		fault.DropMsgs(0, 2, 1<<30, 1),
	}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, boxed, bytes)
			}
		case 1:
			for i := 0; i < b.N; i++ {
				c.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIsendIrecv prices one nonblocking exchange cycle
// (Irecv/Isend/Wait on both sides). The request objects are pooled, so the
// steady state must stay at 0 allocs/op: the bench gate fails any rise above
// a zero baseline.
func BenchmarkIsendIrecv(b *testing.B) {
	b.ReportAllocs()
	payload := make([]float64, 1024)
	var boxed any = payload
	bytes := mpi.F64Bytes(len(payload))
	err := mpi.Run(cluster.New(cluster.Uniform(2)), func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			rq := c.Irecv(peer, 0)
			snd := c.Isend(peer, 0, boxed, bytes)
			c.Wait(rq)
			c.Wait(snd) // free for sends; recycles the request
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRedistPipeline exercises the pipelined Phase 3 drain end to end:
// an adaptive jacobi run that redistributes twice (load arrives, then
// leaves), so each iteration pays several full harvest/replay commits.
func BenchmarkRedistPipeline(b *testing.B) {
	b.ReportAllocs()
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 512, 90, 3e3
	cfg.Core.Drop = core.DropNever
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 30, +1)).
		With(cluster.CycleEvent(1, 60, -1))
	for i := 0; i < b.N; i++ {
		res, err := jacobi.Run(cluster.New(spec), cfg)
		benchResult(b, res, err)
	}
}

// BenchmarkHaloOverlap isolates the double-buffered halo path: a
// non-adaptive jacobi run with Overlap on, so the loop body is pure
// compute + HaloExchangeOverlap with no decision machinery.
func BenchmarkHaloOverlap(b *testing.B) {
	b.ReportAllocs()
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 128, 80, 10e3
	cfg.Overlap = true
	cfg.Core.Adapt = false
	for i := 0; i < b.N; i++ {
		res, err := jacobi.Run(cluster.New(cluster.Uniform(4)), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Elapsed <= 0 {
			b.Fatal("run did not advance virtual time")
		}
	}
}

func BenchmarkMPIAllreduce8(b *testing.B) {
	b.ReportAllocs()
	err := mpi.Run(cluster.New(cluster.Uniform(8)), func(c *mpi.Comm) error {
		g := c.World().AllGroup()
		v := []float64{float64(c.Rank())}
		for i := 0; i < b.N; i++ {
			c.AllreduceF64s(g, v, mpi.Sum)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRedistributionSchedule(b *testing.B) {
	b.ReportAllocs()
	ranks := []int{0, 1, 2, 3, 4, 5, 6, 7}
	old := drsd.EqualBlock(ranks, 16384)
	counts := []int{1000, 3000, 2000, 2500, 1500, 2000, 2384, 2000}
	nw := drsd.NewBlock(ranks, counts)
	acc := []drsd.Access{{Array: "A", Step: 1, Off: 0}, {Array: "A", Step: 1, Off: -1}, {Array: "A", Step: 1, Off: 1}}
	var buf []drsd.Transfer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = drsd.ScheduleWindowsInto(buf[:0], old, nw, acc)
	}
	if len(buf) == 0 {
		b.Fatal("schedule produced no transfers")
	}
}

// BenchmarkResizeSchedule prices the resize fast path: the diff schedule
// over a 6→8-rank grow (the elastic-resize shape — joiners own no rows yet,
// every block boundary shifts) against the windowed schedule computing the
// same owned-only transfers.
func BenchmarkResizeSchedule(b *testing.B) {
	oldRanks := []int{0, 1, 2, 3, 4, 5}
	newRanks := []int{0, 1, 2, 3, 4, 5, 6, 7}
	old := drsd.EqualBlock(oldRanks, 16384)
	nw := drsd.EqualBlock(newRanks, 16384)
	owned := []drsd.Access{{Array: "A", Step: 1, Off: 0}}
	var buf []drsd.Transfer
	b.Run("diff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = drsd.ScheduleDiffInto(buf[:0], old, nw)
		}
		if len(buf) == 0 {
			b.Fatal("diff schedule produced no transfers")
		}
	})
	b.Run("windows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = drsd.ScheduleWindowsInto(buf[:0], old, nw, owned)
		}
		if len(buf) == 0 {
			b.Fatal("windowed schedule produced no transfers")
		}
	})
}

func BenchmarkSparsePackUnpack(b *testing.B) {
	b.ReportAllocs()
	s := matrix.NewSparse("S", 1, nil)
	s.SetWindow(0, 1)
	for k := 0; k < 256; k++ {
		s.Append(0, int32(k), float64(k))
	}
	d := matrix.NewSparse("D", 1, nil)
	d.SetWindow(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.UnpackRow(0, s.PackRow(0))
	}
}

func BenchmarkNodeCompute(b *testing.B) {
	b.ReportAllocs()
	spec := cluster.Uniform(1).With(cluster.TimeEvent(0, 0, +1))
	n := cluster.New(spec).Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Compute(vclock.Millisecond)
	}
}

// BenchmarkTelemetryOverhead prices the observability layer on the canonical
// loaded-4 scenario: the same adaptive jacobi cell with no sink (the
// default — instrumentation must cost nothing) and with a ring sink
// capturing every record. The nil/ring delta is the telemetry budget.
func BenchmarkTelemetryOverhead(b *testing.B) {
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 128, 128, 80, 10e3
	b.Run("nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Core.Telemetry = nil
			res, err := jacobi.Run(cluster.New(loaded4()), c)
			benchResult(b, res, err)
		}
	})
	b.Run("ring-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			ring := telemetry.NewRing(1 << 16)
			c.Core.Telemetry = ring
			res, err := jacobi.Run(cluster.New(loaded4()), c)
			benchResult(b, res, err)
			if ring.Len() == 0 {
				b.Fatal("ring sink captured no records")
			}
		}
	})
}

func BenchmarkEndToEndQuickJacobi(b *testing.B) {
	b.ReportAllocs()
	// Whole-stack sanity benchmark: a complete adaptive run per iteration.
	o := exp.DefaultFig4Options()
	_ = o // options documented; the cell below matches fig4's jacobi/4 shape
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 96, 96, 60, 20e3
	for i := 0; i < b.N; i++ {
		res, err := jacobi.Run(cluster.New(loaded4()), cfg)
		benchResult(b, res, err)
	}
}

// benchCollectives measures the wall-clock cost of the collective engine at
// group size n: each iteration runs a 64-element vector allreduce, a scalar
// allreduce, and a barrier across all n ranks. This is the shape the sharded
// rendezvous engine optimises (lock-free typed deposits, specialized combine
// loops, combiner-tree reduction), and the N256 cell is the bench-gate
// guardrail for its scaling behaviour. On a single-core host the absolute
// numbers are dominated by the goroutine scheduler's yield cost (each of the
// n ranks takes one scheduling quantum per collective, an engine-independent
// floor); see EXPERIMENTS.md for the floor calibration.
func benchCollectives(b *testing.B, n int) {
	b.ReportAllocs()
	err := mpi.Run(cluster.New(cluster.Uniform(n)), func(c *mpi.Comm) error {
		g := c.World().AllGroup()
		buf := make([]float64, 64)
		for i := range buf {
			buf[i] = float64(c.Rank() + i)
		}
		for i := 0; i < b.N; i++ {
			c.AllreduceF64sInto(g, buf, mpi.Sum)
			c.AllreduceSum(g, 1)
			c.Barrier(g)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCollectiveN64(b *testing.B)   { benchCollectives(b, 64) }
func BenchmarkCollectiveN256(b *testing.B)  { benchCollectives(b, 256) }
func BenchmarkCollectiveN1024(b *testing.B) { benchCollectives(b, 1024) }

// BenchmarkPutFence measures the one-sided hot loop: rank 0 Puts a 1024-
// element slab into rank 1's window and closes the epoch with a fence, once
// per iteration. Put itself must stay 0 allocs/op in steady state (the
// deposit pool recycles); the fence settles the epoch's accounting. Gated
// by benchgate like the send/recv pair it replaces on the refresh path.
func BenchmarkPutFence(b *testing.B) {
	b.ReportAllocs()
	payload := make([]float64, 1024)
	err := mpi.Run(cluster.New(cluster.Uniform(2)), func(c *mpi.Comm) error {
		g := c.World().NewGroup([]int{0, 1})
		win := c.WinCreate(g, make(mpi.FlatMem, len(payload)))
		c.Fence(win) // open the access epoch
		peer := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Put(win, peer, 0, payload)
			}
			c.Fence(win)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplicaRefreshRMA runs the one-sided refresh study at the 64-rank
// acceptance size once per iteration and fails unless the deferred-epoch
// refresh cuts the holder-side replica stall by at least 30% versus the
// paired send/recv refresh. Pinned to the legacy full-group fence so the
// original measurement stays comparable across history; the pairwise-epoch
// successor is BenchmarkReplicaRefreshPSCW.
func BenchmarkReplicaRefreshRMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunRMA(exp.RMAOptions{Nodes: []int{64}, Sync: core.SyncFence})
		if err != nil {
			b.Fatal(err)
		}
		red := res.MinReduction()
		if red < 0.30 {
			b.Fatalf("stall reduction %.1f%% below the 30%% acceptance bar", red*100)
		}
		b.ReportMetric(red*100, "stall-reduction-%")
	}
}

// BenchmarkReplicaRefreshPSCW is the refresh study under the default
// pairwise post/start/complete/wait epochs. On top of the 30% stall bar it
// enforces the scalability fix the pairwise handshake exists for: the
// one-sided makespan must not exceed the paired-transport makespan (the
// regression the fence's dissemination barrier caused at scale).
func BenchmarkReplicaRefreshPSCW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunRMA(exp.RMAOptions{Nodes: []int{64}})
		if err != nil {
			b.Fatal(err)
		}
		red := res.MinReduction()
		if red < 0.30 {
			b.Fatalf("stall reduction %.1f%% below the 30%% acceptance bar", red*100)
		}
		if !res.MakespanOK() {
			b.Fatalf("pairwise one-sided makespan exceeds paired: %+v", res.Rows)
		}
		b.ReportMetric(red*100, "stall-reduction-%")
	}
}

// BenchmarkSweepSmoke runs the full CI smoke sweep — 96 deterministic worlds
// multiplexed under one shared virtual-time scheduler — once per iteration.
// It is the end-to-end guardrail for the sweep engine: scheduling overhead,
// heap churn in the world heap, and per-cell aggregation all land here.
func BenchmarkSweepSmoke(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := exp.RunSweep(exp.DefaultSweepOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Cells) != 96 {
			b.Fatalf("smoke sweep produced %d cells, want 96", len(r.Cells))
		}
	}
}
