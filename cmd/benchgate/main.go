// Command benchgate compares two `go test -bench` output files and fails
// when the new run regresses: it is the CI allocation/latency budget.
//
//	benchgate -old baseline.txt -new current.txt [-threshold 0.20] [-require 'regex']
//
// For every benchmark present in both files the median time/op and median
// allocs/op are compared. The gate fails (exit 1) when either grows by more
// than the threshold fraction; an allocs/op count rising above a zero
// baseline always fails, since 0 → anything is an unbounded relative
// regression. Benchmarks present on only one side are reported but never
// fail the gate, so adding or removing benchmarks doesn't wedge CI.
//
// -require closes the loophole that leaves: it takes the same alternation
// regex CI passes to `go test -bench`, and every top-level `|` alternative
// must match at least one benchmark in the new run. A hot-path benchmark
// that silently disappears (renamed, deleted, build-tagged out) fails the
// gate instead of sailing through as a "removed (baseline only)" footnote.
//
// Medians (rather than means) make the gate robust to one noisy sample when
// benchmarks run with -count > 1. Time thresholds are deliberately loose —
// shared CI runners jitter — while allocs/op is deterministic, so even a
// small threshold catches real allocation regressions exactly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// bench aggregates the samples of one benchmark name.
type bench struct {
	name    string
	samples []sample
}

// parseBench reads `go test -bench` output and groups result lines by
// benchmark name. Lines that are not benchmark results (headers, PASS/ok,
// log output) are ignored.
func parseBench(r io.Reader) (map[string]*bench, error) {
	out := map[string]*bench{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Minimum shape: Name N <value> ns/op
		if len(f) < 4 {
			continue
		}
		name := stripGOMAXPROCS(f[0])
		var s sample
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				s.nsPerOp, ok = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasAllocs = v, true
			}
		}
		if !ok {
			continue
		}
		b := out[name]
		if b == nil {
			b = &bench{name: name}
			out[name] = b
		}
		b.samples = append(b.samples, s)
	}
	return out, sc.Err()
}

// stripGOMAXPROCS removes the -N processor-count suffix go test appends to
// benchmark names, so runs on machines with different core counts compare.
func stripGOMAXPROCS(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func (b *bench) medianTime() float64 {
	vals := make([]float64, len(b.samples))
	for i, s := range b.samples {
		vals[i] = s.nsPerOp
	}
	return median(vals)
}

// medianAllocs returns the median allocs/op and whether any sample carried
// an allocation count (benchmarks without ReportAllocs don't).
func (b *bench) medianAllocs() (float64, bool) {
	var vals []float64
	for _, s := range b.samples {
		if s.hasAllocs {
			vals = append(vals, s.allocsPerOp)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

// regression is one gate violation.
type regression struct {
	name     string
	metric   string
	old, new float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (%+.1f%%)",
		r.name, r.metric, r.old, r.new, 100*(r.new/nonZero(r.old)-1))
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// exceeds reports whether new regresses past old by more than the threshold
// fraction. A zero baseline is an absolute budget: any growth fails.
func exceeds(old, new, threshold float64) bool {
	if old == 0 {
		return new > 0
	}
	return new > old*(1+threshold)
}

// gate compares two parsed runs and returns every violation plus a
// human-readable comparison table.
func gate(old, new map[string]*bench, threshold float64) (regressions []regression, report []string) {
	names := make([]string, 0, len(new))
	for name := range new {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nb := new[name]
		ob, ok := old[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-44s new benchmark, no baseline", name))
			continue
		}
		ot, nt := ob.medianTime(), nb.medianTime()
		line := fmt.Sprintf("%-44s time/op %10.4g -> %10.4g", name, ot, nt)
		if exceeds(ot, nt, threshold) {
			regressions = append(regressions, regression{name, "time/op", ot, nt})
			line += "  FAIL"
		}
		if oa, ok := ob.medianAllocs(); ok {
			if na, ok := nb.medianAllocs(); ok {
				line += fmt.Sprintf("   allocs/op %8.4g -> %8.4g", oa, na)
				if exceeds(oa, na, threshold) {
					regressions = append(regressions, regression{name, "allocs/op", oa, na})
					line += "  FAIL"
				}
			}
		}
		report = append(report, line)
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			report = append(report, fmt.Sprintf("%-44s removed (baseline only)", name))
		}
	}
	sort.Strings(report)
	return regressions, report
}

// splitAlternatives breaks a regex into its top-level `|` alternatives,
// ignoring `|` nested inside groups or character classes, so a CI hot-path
// list like `BenchmarkA|BenchmarkB(x|y)` yields two requirements, not three.
func splitAlternatives(expr string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range expr {
		switch r {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case '|':
			if depth == 0 {
				out = append(out, expr[start:i])
				start = i + 1
			}
		}
	}
	return append(out, expr[start:])
}

// missingRequired returns the -require alternatives that match no benchmark
// in the run. Matching is unanchored, mirroring `go test -bench` semantics,
// so the requirement list can be the exact regex handed to -bench.
func missingRequired(cur map[string]*bench, expr string) ([]string, error) {
	var missing []string
	for _, alt := range splitAlternatives(expr) {
		alt = strings.TrimSpace(alt)
		if alt == "" {
			continue
		}
		re, err := regexp.Compile(alt)
		if err != nil {
			return nil, fmt.Errorf("bad -require alternative %q: %v", alt, err)
		}
		found := false
		for name := range cur {
			if re.MatchString(name) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, alt)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

func run(oldPath, newPath string, threshold float64, require string, w io.Writer) (int, error) {
	parse := func(path string) (map[string]*bench, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	old, err := parse(oldPath)
	if err != nil {
		return 2, err
	}
	cur, err := parse(newPath)
	if err != nil {
		return 2, err
	}
	if len(cur) == 0 {
		return 2, fmt.Errorf("no benchmark results in %s", newPath)
	}
	if require != "" {
		missing, err := missingRequired(cur, require)
		if err != nil {
			return 2, err
		}
		if len(missing) > 0 {
			fmt.Fprintf(w, "benchgate: %d required benchmark(s) missing from %s:\n", len(missing), newPath)
			for _, m := range missing {
				fmt.Fprintf(w, "  %s matched nothing\n", m)
			}
			return 1, nil
		}
	}
	regs, report := gate(old, cur, threshold)
	for _, line := range report {
		fmt.Fprintln(w, line)
	}
	if len(regs) > 0 {
		fmt.Fprintf(w, "\nbenchgate: %d regression(s) beyond %.0f%%:\n", len(regs), threshold*100)
		for _, r := range regs {
			fmt.Fprintf(w, "  %s\n", r)
		}
		return 1, nil
	}
	fmt.Fprintf(w, "\nbenchgate: ok (%d benchmarks within %.0f%%)\n", len(cur), threshold*100)
	return 0, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline `file` (go test -bench output)")
	newPath := flag.String("new", "", "current `file` (go test -bench output)")
	threshold := flag.Float64("threshold", 0.20, "allowed regression `fraction` per metric")
	require := flag.String("require", "", "`regex` whose every top-level | alternative must match a benchmark in -new")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -old baseline.txt -new current.txt [-threshold 0.20] [-require 'regex']")
		os.Exit(2)
	}
	code, err := run(*oldPath, *newPath, *threshold, *require, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	}
	os.Exit(code)
}
