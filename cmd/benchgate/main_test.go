package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineTxt = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMPISendRecv-8            1508004    252.6 ns/op    132 B/op    0 allocs/op
BenchmarkMPISendRecv-8            1500000    260.0 ns/op    132 B/op    0 allocs/op
BenchmarkMPISendRecv-8            1490000    249.0 ns/op    132 B/op    0 allocs/op
BenchmarkRedistributionSchedule-8  629564    353.7 ns/op      0 B/op    0 allocs/op
BenchmarkSuccessiveBalancing-8    3354069    358.5 ns/op    768 B/op    3 allocs/op
BenchmarkNodeCompute-8           12000000     95.0 ns/op
PASS
ok  	repro	1.286s
`

func parse(t *testing.T, text string) map[string]*bench {
	t.Helper()
	m, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchMediansAndSuffixStripping(t *testing.T) {
	m := parse(t, baselineTxt)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(m), m)
	}
	sr, ok := m["BenchmarkMPISendRecv"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if got := sr.medianTime(); got != 252.6 {
		t.Errorf("median time = %v, want 252.6 (median of 3 samples)", got)
	}
	if a, ok := sr.medianAllocs(); !ok || a != 0 {
		t.Errorf("median allocs = %v,%v, want 0,true", a, ok)
	}
	if _, ok := m["BenchmarkNodeCompute"].medianAllocs(); ok {
		t.Error("benchmark without allocs/op reported an alloc median")
	}
}

func TestGatePassesOnEqualAndImproved(t *testing.T) {
	old := parse(t, baselineTxt)
	improved := strings.ReplaceAll(baselineTxt, "358.5 ns/op    768 B/op    3 allocs/op", "120.0 ns/op    256 B/op    1 allocs/op")
	for name, cur := range map[string]map[string]*bench{"equal": old, "improved": parse(t, improved)} {
		if regs, _ := gate(old, cur, 0.20); len(regs) != 0 {
			t.Errorf("%s run flagged regressions: %v", name, regs)
		}
	}
}

func TestGateFailsOnSyntheticRegressions(t *testing.T) {
	old := parse(t, baselineTxt)
	cases := []struct {
		name, from, to, metric string
	}{
		// +39% time/op: past the 20% budget. (A single regressed sample of a
		// multi-sample benchmark would be absorbed by the median, so the
		// synthetic regression targets a single-sample one.)
		{"time", "358.5 ns/op    768 B/op    3 allocs/op", "500.0 ns/op    768 B/op    3 allocs/op", "time/op"},
		// 3 -> 5 allocs/op (+67%).
		{"allocs", "358.5 ns/op    768 B/op    3 allocs/op", "360.0 ns/op    768 B/op    5 allocs/op", "allocs/op"},
		// 0 -> 1 allocs/op: zero baselines are absolute budgets.
		{"zero-allocs", "353.7 ns/op      0 B/op    0 allocs/op", "353.7 ns/op     24 B/op    1 allocs/op", "allocs/op"},
	}
	for _, tc := range cases {
		cur := parse(t, strings.ReplaceAll(baselineTxt, tc.from, tc.to))
		regs, _ := gate(old, cur, 0.20)
		if len(regs) == 0 {
			t.Errorf("%s: synthetic regression not caught", tc.name)
			continue
		}
		if regs[0].metric != tc.metric {
			t.Errorf("%s: flagged %s, want %s", tc.name, regs[0].metric, tc.metric)
		}
	}
}

func TestGateIgnoresAddedAndRemovedBenchmarks(t *testing.T) {
	old := parse(t, baselineTxt)
	cur := parse(t, baselineTxt+"BenchmarkBrandNew-8   100   1.0 ns/op   0 B/op   0 allocs/op\n")
	delete(cur, "BenchmarkNodeCompute")
	regs, report := gate(old, cur, 0.20)
	if len(regs) != 0 {
		t.Fatalf("membership changes flagged as regressions: %v", regs)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "no baseline") || !strings.Contains(joined, "removed") {
		t.Errorf("report does not mention membership changes:\n%s", joined)
	}
}

// TestRunEndToEnd drives the CLI entry point the way CI does, including the
// non-zero exit code on a >20% synthetic regression.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(oldPath, []byte(baselineTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	// Regress two of the three samples so the median itself moves — a single
	// outlier sample must NOT trip the gate (that robustness is the point of
	// taking medians), so it wouldn't exercise the failure path here.
	regressed := strings.NewReplacer(
		"252.6 ns/op", "999.0 ns/op",
		"260.0 ns/op", "998.0 ns/op",
	).Replace(baselineTxt)
	if err := os.WriteFile(newPath, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run(oldPath, newPath, 0.20, "", &out)
	if err != nil || code != 1 {
		t.Fatalf("regressed run: code=%d err=%v, want 1,nil\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "time/op regressed") {
		t.Errorf("report missing regression line:\n%s", out.String())
	}

	out.Reset()
	code, err = run(oldPath, oldPath, 0.20, "", &out)
	if err != nil || code != 0 {
		t.Fatalf("clean run: code=%d err=%v, want 0,nil\n%s", code, err, out.String())
	}
}

func TestSplitAlternatives(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"BenchmarkA", []string{"BenchmarkA"}},
		{"BenchmarkA|BenchmarkB", []string{"BenchmarkA", "BenchmarkB"}},
		{"BenchmarkA|BenchmarkB(x|y)|Benchmark[a|b]", []string{"BenchmarkA", "BenchmarkB(x|y)", "Benchmark[a|b]"}},
	}
	for _, tc := range cases {
		got := splitAlternatives(tc.expr)
		if len(got) != len(tc.want) {
			t.Errorf("splitAlternatives(%q) = %v, want %v", tc.expr, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitAlternatives(%q)[%d] = %q, want %q", tc.expr, i, got[i], tc.want[i])
			}
		}
	}
}

func TestMissingRequired(t *testing.T) {
	cur := parse(t, baselineTxt)
	missing, err := missingRequired(cur, "BenchmarkMPISendRecv|BenchmarkSuccessiveBalancing")
	if err != nil || len(missing) != 0 {
		t.Fatalf("satisfied requirements reported missing: %v, %v", missing, err)
	}
	missing, err = missingRequired(cur, "BenchmarkMPISendRecv|BenchmarkVanished|BenchmarkAlsoGone")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 || missing[0] != "BenchmarkAlsoGone" || missing[1] != "BenchmarkVanished" {
		t.Errorf("missing = %v, want the two absent alternatives sorted", missing)
	}
	if _, err := missingRequired(cur, "Benchmark(["); err == nil {
		t.Error("invalid regex accepted")
	}
}

// TestRunRequireGate pins the CLI behaviour -require was added for: a
// required benchmark vanishing from the new run fails the gate even though
// removals are otherwise reported without failing.
func TestRunRequireGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(oldPath, []byte(baselineTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	dropped := strings.ReplaceAll(baselineTxt, "BenchmarkRedistributionSchedule", "BenchmarkRenamedAway")
	if err := os.WriteFile(newPath, []byte(dropped), 0o644); err != nil {
		t.Fatal(err)
	}

	req := "BenchmarkMPISendRecv|BenchmarkRedistributionSchedule"
	var out strings.Builder
	code, err := run(oldPath, newPath, 0.20, req, &out)
	if err != nil || code != 1 {
		t.Fatalf("dropped required benchmark: code=%d err=%v, want 1,nil\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkRedistributionSchedule matched nothing") {
		t.Errorf("report does not name the missing requirement:\n%s", out.String())
	}

	out.Reset()
	code, err = run(oldPath, oldPath, 0.20, req, &out)
	if err != nil || code != 0 {
		t.Fatalf("satisfied -require run: code=%d err=%v, want 0,nil\n%s", code, err, out.String())
	}
}
