// Command dynexp regenerates every table and figure of the Dyn-MPI paper's
// evaluation (§5) on the simulated non dedicated cluster, plus the design
// ablations from §4. Each subcommand prints one experiment:
//
//	dynexp fig4        — four applications × {2,4,8} nodes, normalised times
//	dynexp cg-table    — the §5.1 four-node CG case study
//	dynexp fig5        — Jacobi with multiple redistribution points
//	dynexp fig6        — SOR node removal vs keeping the loaded node
//	dynexp fig7        — particle simulation, grace period 1 vs 5
//	dynexp alloc       — §4.1 projection vs contiguous allocation
//	dynexp microbench  — §4.3 pair-fraction table and method comparison
//	dynexp virt        — virtualisation ablation (scheduler floor calibration)
//	dynexp trace       — canonical loaded-4-node run with structured telemetry
//	dynexp scale       — large-world collective soak (64/256/1024 ranks)
//	dynexp overlap     — nonblocking halo overlap and redistribution stall study
//	dynexp rma         — one-sided (RMA) replica refresh vs paired send/recv
//	dynexp resize      — elastic world resizing vs drop-all+restart
//	dynexp sweep       — multi-world parameter sweep under one shared scheduler
//	dynexp all         — everything above (except trace, scale and sweep)
//
// The -paper flag selects the paper's original input sizes (slower); the
// default scaled inputs preserve the computation/communication ratios (see
// EXPERIMENTS.md).
//
// The trace subcommand attaches a telemetry sink to the runtime: -trace
// out.jsonl writes the structured record stream (iteration, decision,
// redist, membership, failure) as JSON lines in deterministic order, and
// -summary prints an aggregation table. With neither flag, the summary is
// printed.
//
// The -fault flag injects deterministic failures into the trace run, as a
// ';'-separated list of specs (see internal/fault.ParseSpecs):
//
//	-fault 'crash:node=2,cycle=12'             crash rank 2 entering cycle 12
//	-fault 'crash:node=1,t=0.5'                crash rank 1 at 0.5s virtual time
//	-fault 'stall:node=0,cycle=3,dur=200ms'    stall rank 0 for 200ms
//	-fault 'drop:node=0,to=1,after=10'         drop (retransmit) one 0→1 message
//	-fault 'delay:node=0,to=1,after=4,count=3,dur=5ms'
//
// -replicate enables dense-array buddy replication so a crashed rank's rows
// are reconstructed instead of lost; -replica-every refreshes the replicas
// every N cycles.
//
// The sweep subcommand multiplexes many worlds under one virtual-time
// scheduler (see internal/sweep): -smoke runs the CI-sized 96-cell grid,
// -grid overlays a custom axis/workload spec, -jobs sets the worker-pool
// width, and -out writes the per-cell results as JSONL. The text report on
// stdout is deterministic apart from lines prefixed "# wall-time:"; strip
// those and two runs byte-compare equal regardless of -jobs or GOMAXPROCS.
// -stream (with -out) appends cells' JSONL rows as they finalize, held to
// the in-order flush frontier: a row lands the moment every lower-indexed
// cell has been written, so the file grows append-only in enumeration
// order, each byte is written exactly once, and the final file is
// byte-identical to a non-streamed -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: dynexp [-paper] [-nodes n,n,...] [-trace out.jsonl] [-summary] [-fault specs] [-replicate] [-replica-every n] [-scale-n n] [-smoke] [-grid spec] [-jobs n] [-out f.jsonl] [-stream] [-cpuprofile f] [-memprofile f] {fig4|cg-table|fig5|fig6|fig7|alloc|microbench|virt|trace|scale|overlap|rma|resize|sweep|all}\n")
	os.Exit(2)
}

func main() {
	paper := flag.Bool("paper", false, "use the paper's original input sizes")
	nodesFlag := flag.String("nodes", "", "comma-separated node counts (fig4/fig6/overlap only)")
	traceFile := flag.String("trace", "", "write the telemetry record stream as JSONL to this file (trace subcommand)")
	summary := flag.Bool("summary", false, "print a telemetry aggregation table (trace subcommand)")
	faultSpecs := flag.String("fault", "", "';'-separated fault specs to inject, e.g. 'crash:node=2,cycle=12' (trace subcommand)")
	replicate := flag.Bool("replicate", false, "enable dense-array buddy replication for crash recovery (trace subcommand)")
	replicaEvery := flag.Int("replica-every", 0, "refresh buddy replicas every n cycles (0 = only at redistributions)")
	scaleN := flag.Int("scale-n", 0, "run the scale soak at this single world size (0 = the default 64/256/1024 ladder)")
	smoke := flag.Bool("smoke", false, "run the CI-sized smoke grid (sweep subcommand)")
	gridSpec := flag.String("grid", "", "overlay a grid spec, e.g. 'scen=jacobi;ranks=4,8;gp=3' (sweep subcommand)")
	jobs := flag.Int("jobs", 4, "worker-pool width: worlds stepped concurrently per scheduler round (sweep subcommand)")
	outFile := flag.String("out", "", "write per-cell sweep results as JSONL to this file (sweep subcommand)")
	stream := flag.Bool("stream", false, "with -out: append cell JSONL rows live in enumeration order (in-order flush frontier; no terminal rewrite) (sweep subcommand)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiment(s) to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}

	// stopProfiles flushes any requested profiles; it must run on the error
	// exit path too (os.Exit skips defers), so it is called explicitly.
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynexp: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dynexp: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProfile != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dynexp: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dynexp: write heap profile: %v\n", err)
			}
		}
	}

	var nodes []int
	if *nodesFlag != "" {
		for _, part := range strings.Split(*nodesFlag, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "dynexp: bad -nodes value %q\n", part)
				os.Exit(2)
			}
			nodes = append(nodes, n)
		}
	}

	run := func(name string) error {
		start := time.Now()
		defer func() {
			if name == "sweep" {
				// The sweep report carries its own segregated "# wall-time:"
				// line; a free-floating timing line would break the report's
				// strip-and-compare contract.
				return
			}
			fmt.Printf("  [%s completed in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
		}()
		switch name {
		case "fig4":
			o := exp.DefaultFig4Options()
			o.Paper = *paper
			if nodes != nil {
				o.Nodes = nodes
			}
			r, err := exp.RunFig4(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			fmt.Printf("  mean improvement over no-adapt: %.0f%% (paper: 72%%); mean slowdown vs dedicated: %.0f%% (paper: 29%%)\n",
				r.Improvement()*100, r.Slowdown()*100)
		case "cg-table":
			o := exp.DefaultCGTableOptions()
			o.Paper = *paper
			r, err := exp.RunCGTable(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "fig5":
			o := exp.DefaultFig5Options()
			o.Paper = *paper
			r, err := exp.RunFig5(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "fig6":
			o := exp.DefaultFig6Options()
			o.Paper = *paper
			if nodes != nil {
				o.Nodes = nodes
			}
			r, err := exp.RunFig6(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "fig7":
			o := exp.DefaultFig7Options()
			o.Paper = *paper
			r, err := exp.RunFig7(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "alloc":
			o := exp.DefaultAllocOptions()
			o.Paper = *paper
			r, err := exp.RunAlloc(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "microbench":
			r, err := exp.RunMicrobench(exp.DefaultMicrobenchOptions())
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "virt":
			r, err := exp.RunVirt(exp.DefaultVirtOptions())
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
		case "overlap":
			o := exp.DefaultOverlapOptions()
			if nodes != nil {
				o.Nodes = nodes
			}
			r, err := exp.RunOverlap(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			fmt.Printf("  arrival-order commits cut redistribution stall by %.0f%% on the skewed-load scenario\n",
				r.StallReduction()*100)
		case "rma":
			o := exp.DefaultRMAOptions()
			if nodes != nil {
				o.Nodes = nodes
			}
			r, err := exp.RunRMA(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			fmt.Printf("  one-sided refresh cuts holder-side replica stall by ≥%.0f%% across world sizes\n",
				r.MinReduction()*100)
		case "resize":
			r, err := exp.RunResize(exp.DefaultResizeOptions())
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			fmt.Printf("  elastic resize beats drop-all+restart on %d of %d scenarios\n",
				r.CheaperCount(), len(r.Rows))
		case "trace":
			o := exp.DefaultTraceOptions()
			if *faultSpecs != "" {
				fs, err := fault.ParseSpecs(*faultSpecs)
				if err != nil {
					return err
				}
				o.Faults = fs
			}
			o.Replicate = *replicate
			o.ReplicaEvery = *replicaEvery
			r, err := exp.RunTrace(o)
			if err != nil {
				return err
			}
			if *traceFile != "" {
				f, err := os.Create(*traceFile)
				if err != nil {
					return err
				}
				if err := telemetry.WriteJSONL(f, r.Records); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("  wrote %d records to %s\n", len(r.Records), *traceFile)
			}
			if *summary || *traceFile == "" {
				telemetry.Summarize(r.Records).WriteTable(os.Stdout)
			}
			fmt.Printf("  elapsed %.3fs virtual, %d redistributions\n", r.Res.Elapsed, r.Res.Redists)
		case "sweep":
			o := exp.DefaultSweepOptions()
			o.Jobs = *jobs
			if !*smoke && *gridSpec == "" {
				return fmt.Errorf("sweep needs -smoke and/or -grid")
			}
			if *gridSpec != "" {
				if err := o.Grid.ParseSpec(*gridSpec); err != nil {
					return err
				}
			}
			// -stream appends rows live through the in-order flush frontier:
			// a consumer tailing the file sees cells land in enumeration
			// order as soon as every predecessor has finished, each byte is
			// written exactly once, and the final file is byte-identical to
			// a non-streamed -out — no terminal rewrite.
			var sw *sweep.StreamWriter
			if *stream {
				if *outFile == "" {
					return fmt.Errorf("sweep -stream needs -out")
				}
				f, err := os.Create(*outFile)
				if err != nil {
					return err
				}
				defer f.Close()
				sw = sweep.NewStreamWriter(f)
				o.OnCell = sw.Add
			}
			r, err := exp.RunSweep(o)
			if err != nil {
				return err
			}
			if sw != nil {
				if sw.Err() != nil {
					return fmt.Errorf("streaming to %s: %w", *outFile, sw.Err())
				}
				if n := sw.Pending(); n != 0 {
					return fmt.Errorf("streaming to %s: %d rows never flushed", *outFile, n)
				}
			}
			r.WriteText(os.Stdout)
			if *outFile != "" && sw == nil {
				f, err := os.Create(*outFile)
				if err != nil {
					return err
				}
				if err := r.WriteJSONL(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		case "scale":
			o := exp.DefaultScaleOptions()
			if *scaleN > 0 {
				o.Sizes = []int{*scaleN}
			}
			r, err := exp.RunScale(o)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			if *traceFile != "" {
				f, err := os.Create(*traceFile)
				if err != nil {
					return err
				}
				if err := telemetry.WriteJSONL(f, r.Records); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("  wrote %d records to %s\n", len(r.Records), *traceFile)
			}
		default:
			usage()
		}
		return nil
	}

	target := flag.Arg(0)
	var names []string
	if target == "all" {
		names = []string{"fig4", "cg-table", "fig5", "fig6", "fig7", "alloc", "microbench", "virt", "overlap", "rma", "resize"}
	} else {
		names = []string{target}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "dynexp %s: %v\n", name, err)
			stopProfiles()
			os.Exit(1)
		}
	}
	stopProfiles()
}
