// Command drsdgen implements the automatable half of the paper's §2.3
// MPI→Dyn-MPI translation: it statically analyses a Go source file written
// against the dynmpi API, derives the deferred regular section descriptors
// from the array references inside the partitioned loops, and prints the
// AddAccess declarations the program needs.
//
//	drsdgen file.go            print the derived declarations
//	drsdgen -check file.go     exit non-zero if the file's declarations
//	                           do not cover the derived accesses
//
// References the analysis cannot express as regular sections (strided by
// a variable, symbolic offsets) are reported with positions — the paper's
// "sophisticated analysis" boundary.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/translate"
)

func main() {
	check := flag.Bool("check", false, "verify existing AddAccess declarations cover the derived accesses")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: drsdgen [-check] file.go ...")
		os.Exit(2)
	}
	exit := 0
	for _, file := range flag.Args() {
		res, err := translate.AnalyzeFileWithWrites(file, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsdgen: %v\n", err)
			exit = 1
			continue
		}
		fmt.Printf("%s:\n", file)
		if *check {
			missing := res.Missing()
			if len(missing) == 0 {
				fmt.Printf("  declarations cover all %d derived accesses\n", len(res.Accesses))
			} else {
				for _, a := range missing {
					fmt.Printf("  MISSING %s\n", a)
				}
				exit = 1
			}
		} else {
			if len(res.Accesses) == 0 {
				fmt.Println("  no partitioned-loop array references found")
			}
			for _, a := range res.Accesses {
				fmt.Printf("  %s\n", a)
			}
		}
		for _, is := range res.Issues {
			fmt.Printf("  UNRESOLVED %s: %s\n", is.Pos, is.Reason)
		}
	}
	os.Exit(exit)
}
