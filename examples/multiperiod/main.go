// Multiperiod: the §5.2 scenario as a runnable demo. A competing process
// occupies node 2 during the middle third of a stencil computation; the
// program runs three policies — never adapt, adapt once, adapt freely —
// and reports how each fares, reproducing the paper's observation that the
// *second* redistribution (after the load disappears) only pays off when
// enough execution remains to amortise it.
//
// Run with: go run ./examples/multiperiod
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/dynmpi"
)

const (
	n      = 256
	width  = 1024
	period = 60 // cycles per third
)

// run executes the workload under one adaptation policy and returns the
// total virtual time and the number of redistributions.
func run(adapt bool, maxRedists int) (float64, int) {
	spec := dynmpi.Uniform(4).
		With(dynmpi.CompetingProcessAtCycle(2, period)).
		With(dynmpi.LoadEvent{Node: 2, Delta: -1, AtCycle: 2 * period})
	cfg := dynmpi.DefaultConfig()
	cfg.Adapt = adapt
	cfg.Drop = dynmpi.DropNever
	cfg.MaxRedists = maxRedists

	var mu sync.Mutex
	var worst float64
	redists := 0
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		a := rt.RegisterDense("A", n, width)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
		rt.Commit()
		a.Fill(func(g, j int) float64 { return float64(g + j) })

		rowCost := 100 * dynmpi.Microsecond * dynmpi.Duration(width) / 256
		for t := 0; t < 3*period; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := a.Row(g)
					for j := range row {
						row[j] = row[j]*0.5 + 1
					}
					rt.ComputeIter(g, rowCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		mu.Lock()
		if s := rt.Comm().Now().Seconds(); s > worst {
			worst = s
		}
		if rt.Redistributions() > redists {
			redists = rt.Redistributions()
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return worst, redists
}

func main() {
	noAdapt, _ := run(false, 0)
	once, _ := run(true, 1)
	free, k := run(true, 0)

	fmt.Printf("no adaptation:        %6.2fs\n", noAdapt)
	fmt.Printf("adapt once:           %6.2fs  (%.0f%% faster)\n", once, (noAdapt-once)/noAdapt*100)
	fmt.Printf("adapt freely (%d x):   %6.2fs  (%.0f%% faster)\n", k, free, (noAdapt-free)/noAdapt*100)
	if free < once {
		fmt.Println("the second redistribution (after the load vanished) paid for itself")
	} else {
		fmt.Println("the second redistribution did not pay for itself at this execution length")
	}
}
