// Rejoin: node churn end to end. A competing process occupies node 2 for
// the middle of the run; with DropAlways + AllowRejoin the runtime removes
// the node while it is loaded and — via the per-cycle polling protocol —
// re-admits it once the competing process exits, redistributing data both
// ways. The §2.2 capability the paper sketches as future work.
//
// Run with: go run ./examples/rejoin
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/dynmpi"
)

const (
	n     = 240
	width = 512
	iters = 220
)

func main() {
	spec := dynmpi.Uniform(4).
		With(dynmpi.CompetingProcessAtCycle(2, 10)).
		With(dynmpi.LoadEvent{Node: 2, Delta: -1, AtCycle: 120})
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = dynmpi.DropAlways
	cfg.AllowRejoin = true

	var mu sync.Mutex
	var trace []string
	var finalCounts []int
	history := map[int][]int{} // cycle -> counts

	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		a := rt.RegisterDense("A", n, width)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
		rt.Commit()
		a.Fill(func(g, j int) float64 { return float64(g) })

		rowCost := dynmpi.Duration(width) * 300 // 300ns per element
		for t := 0; t < iters; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := a.Row(g)
					for j := range row {
						row[j] += 1
					}
					rt.ComputeIter(g, rowCost)
				}
			}
			rt.EndCycle()
		}

		// Verify data survived the round trip: every owned row must equal
		// its initial value plus the iteration count.
		if rt.Participating() {
			lo, hi := ph.Bounds()
			for g := lo; g < hi; g++ {
				if a.Row(g)[0] != float64(g+iters) {
					return fmt.Errorf("row %d corrupted: %v", g, a.Row(g)[0])
				}
			}
		}
		rt.Finalize()

		mu.Lock()
		defer mu.Unlock()
		if rt.Comm().Rank() == 0 {
			for _, ev := range rt.Events() {
				line := fmt.Sprintf("cycle %3d  %-12v %s", ev.Cycle, ev.Kind, ev.Info)
				trace = append(trace, line)
				if len(ev.Counts) > 0 {
					history[ev.Cycle] = ev.Counts
				}
			}
			finalCounts = rt.Dist().Counts()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("adaptation trace (rank 0):")
	for _, line := range trace {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nfinal distribution: %v (all four nodes active, data verified)\n", finalCounts)
}
