// Quickstart: a one-dimensional heat-diffusion stencil on four simulated
// nodes. A competing process lands on node 1 at iteration 10; Dyn-MPI
// detects the load change, measures during the grace period, and shifts
// rows off the loaded node automatically. The program prints the
// adaptation trace and the final distribution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/dynmpi"
)

const (
	n     = 256 // rows (the distributed dimension)
	width = 256 // columns per extended row
	iters = 120
	// rowCost is the modelled CPU cost of updating one row; sized so the
	// 1-second load monitor notices the competing process mid-run.
	rowCost = 200 * dynmpi.Microsecond * dynmpi.Duration(width) / 256
)

func main() {
	spec := dynmpi.Uniform(4).With(dynmpi.CompetingProcessAtCycle(1, 10))
	cfg := dynmpi.DefaultConfig()

	var mu sync.Mutex
	var trace []string
	var finalCounts []int

	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		u := rt.RegisterDense("U", n, width)
		ph := rt.InitPhase(n)
		ph.AddAccess("U", dynmpi.ReadWrite, 1, 0)
		ph.AddAccess("U", dynmpi.Read, 1, -1)
		ph.AddAccess("U", dynmpi.Read, 1, +1)
		rt.Commit()
		u.Fill(func(g, j int) float64 {
			if g == 0 {
				return 100 // hot top boundary
			}
			return 0
		})

		scratch := make([]float64, width)
		for t := 0; t < iters; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					if g > 0 && g < n-1 {
						up, mid, down := u.Row(g-1), u.Row(g), u.Row(g+1)
						for j := range scratch {
							scratch[j] = mid[j] + 0.2*(up[j]+down[j]-2*mid[j])
						}
						copy(mid, scratch)
					}
					rt.ComputeIter(g, rowCost)
				}
				// Explicit nearest-neighbour halo exchange (relative ranks).
				rr := rt.RelRank()
				if rr > 0 {
					rt.SendRel(rr-1, 1, append([]float64(nil), u.Row(lo)...), dynmpi.F64Bytes(width))
				}
				if rr < rt.NumActive()-1 {
					rt.SendRel(rr+1, 2, append([]float64(nil), u.Row(hi-1)...), dynmpi.F64Bytes(width))
				}
				if rr > 0 {
					row, _ := rt.RecvRelF64s(rr-1, 2)
					copy(u.Row(lo-1), row)
				}
				if rr < rt.NumActive()-1 {
					row, _ := rt.RecvRelF64s(rr+1, 1)
					copy(u.Row(hi), row)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()

		mu.Lock()
		defer mu.Unlock()
		if rt.Comm().Rank() == 0 {
			for _, ev := range rt.Events() {
				line := fmt.Sprintf("cycle %3d  t=%v  %v", ev.Cycle, ev.Time, ev.Kind)
				if len(ev.Counts) > 0 {
					line += fmt.Sprintf("  new counts %v", ev.Counts)
				}
				if ev.Info != "" {
					line += "  " + ev.Info
				}
				trace = append(trace, line)
			}
			finalCounts = rt.Dist().Counts()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("adaptation trace (rank 0):")
	for _, line := range trace {
		fmt.Println(" ", line)
	}
	fmt.Printf("final distribution (rows per node): %v\n", finalCounts)
	fmt.Println("note: the loaded node (1) ends up with roughly half the rows of its peers")
}
