// Unbalanced: a sparse, nonuniform workload in the spirit of the paper's
// particle simulation (§5.4). Each row of a registered sparse array holds a
// different number of elements — the top rows are ten times denser — so
// per-iteration costs are nonuniform and a uniform block distribution is
// inherently unbalanced. When a competing process appears, Dyn-MPI's
// grace-period measurement captures the true per-iteration costs and the
// weighted partition assigns *fewer but heavier* rows to the fast nodes'
// peers, balancing cost rather than row counts.
//
// Run with: go run ./examples/unbalanced
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/dynmpi"
)

const (
	n     = 192
	iters = 150
)

// elemsIn returns the number of stored elements in row g: the top quarter
// of the array is ten times denser.
func elemsIn(g int) int {
	if g < n/4 {
		return 400
	}
	return 40
}

func main() {
	spec := dynmpi.Uniform(4).With(dynmpi.CompetingProcessAtCycle(0, 10))
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = dynmpi.DropNever

	var mu sync.Mutex
	var counts []int
	var elapsed float64
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		s := rt.RegisterSparse("S", n)
		ph := rt.InitPhase(n)
		ph.AddAccess("S", dynmpi.ReadWrite, 1, 0)
		rt.Commit()
		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			for k := 0; k < elemsIn(g); k++ {
				s.Append(g, int32(k), float64(g+k))
			}
		}

		perElem := 3 * dynmpi.Microsecond
		for t := 0; t < iters; t++ {
			if rt.BeginCycle() {
				lo, hi = ph.Bounds()
				for g := lo; g < hi; g++ {
					// Traverse the row through the paper's iterator-style
					// element access and update in place.
					cnt := 0
					for e := s.RowHead(g); e != nil; e = e.Next() {
						e.Val *= 1.0000001
						cnt++
					}
					rt.ComputeIter(g, dynmpi.Duration(cnt)*perElem)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()

		mu.Lock()
		defer mu.Unlock()
		if t := rt.Comm().Now().Seconds(); t > elapsed {
			elapsed = t
		}
		if rt.Comm().Rank() == 0 {
			counts = rt.Dist().Counts()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("finished in %.2fs (virtual); final rows per node: %v\n", elapsed, counts)
	cost := make([]int, len(counts))
	lo := 0
	for i, c := range counts {
		for g := lo; g < lo+c; g++ {
			cost[i] += elemsIn(g)
		}
		lo += c
	}
	fmt.Printf("per-node element load after balancing: %v\n", cost)
	fmt.Println("the loaded node (0) holds the dense rows, so it receives far fewer of them;")
	fmt.Println("unloaded nodes hold many cheap rows — cost is balanced, not row counts")
}
