// Noderemoval: demonstrates physical node removal (§4.4, §5.3). A
// communication-heavy stencil runs on 16 nodes while three competing
// processes hammer node 5. With DropAuto, Dyn-MPI first redistributes,
// monitors ten cycles, predicts that an unloaded-only configuration would
// be faster, and physically removes the loaded node — re-assigning
// relative ranks on the fly while the program keeps using nearest-neighbour
// communication through them.
//
// Run with: go run ./examples/noderemoval
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/dynmpi"
)

const (
	n     = 256
	width = 1024
	iters = 150
)

func run(policy dynmpi.DropPolicy) (elapsed float64, removed []int, trace []string) {
	spec := dynmpi.Uniform(24)
	for i := 0; i < 2; i++ {
		spec = spec.With(dynmpi.CompetingProcessAt(5, 0))
	}
	cfg := dynmpi.DefaultConfig()
	cfg.Drop = policy

	var mu sync.Mutex
	err := dynmpi.Launch(spec, cfg, func(rt *dynmpi.Runtime) error {
		a := rt.RegisterDense("A", n, width)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
		ph.AddAccess("A", dynmpi.Read, 1, -1)
		ph.AddAccess("A", dynmpi.Read, 1, +1)
		rt.Commit()
		a.Fill(func(g, j int) float64 { return float64(g*7 + j) })

		rowCost := dynmpi.Duration(width) * 1500 // 1.5us per element
		for t := 0; t < iters; t++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := a.Row(g)
					for j := range row {
						row[j] *= 0.999
					}
					rt.ComputeIter(g, rowCost)
				}
				// Halo exchange through the ownership-aware helper: it
				// follows the distribution across redistributions, zero-row
				// assignments and node removals.
				dynmpi.HaloExchange(rt, 1, n,
					func(g int) []float64 { return a.Row(g) },
					func(g int, row []float64) { copy(a.Row(g), row) })
			}
			rt.EndCycle()
		}
		rt.Finalize()

		mu.Lock()
		defer mu.Unlock()
		if s := rt.Comm().Now().Seconds(); s > elapsed {
			elapsed = s
		}
		if !rt.Participating() {
			removed = append(removed, rt.Comm().Rank())
		}
		if rt.Comm().Rank() == 0 {
			for _, ev := range rt.Events() {
				trace = append(trace, fmt.Sprintf("cycle %3d  %v  %s", ev.Cycle, ev.Kind, ev.Info))
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return elapsed, removed, trace
}

func main() {
	keepT, _, _ := run(dynmpi.DropNever)
	autoT, removed, trace := run(dynmpi.DropAuto)

	fmt.Println("adaptation trace with DropAuto (rank 0):")
	for _, line := range trace {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nkeep loaded node:  %6.2fs\n", keepT)
	fmt.Printf("automatic removal: %6.2fs", autoT)
	if len(removed) > 0 {
		fmt.Printf("   (physically removed nodes: %v)", removed)
	}
	fmt.Println()
	if autoT < keepT {
		fmt.Printf("removing the loaded node was %.0f%% faster\n", (keepT-autoT)/keepT*100)
	} else {
		fmt.Println("the drop decision judged removal unprofitable here")
	}
}
