package vclock

// Stepper is the external single-step control surface of a virtual-time
// world: the decomposition of a monolithic run loop into the three
// primitives a shared-clock multi-world scheduler needs. A scheduler
// holding many Steppers repeatedly picks the one whose PeekNextEventTime
// is globally earliest, calls ProcessNextEvent on it, and re-inserts it —
// advancing every world in global virtual-time order without any world
// observing the others.
//
// The determinism contract: stepping only controls *which world's
// goroutines make wall-clock progress next*. It never advances a virtual
// clock, never reorders messages within a world, and never perturbs a
// PRNG stream, so a world advanced one event at a time produces a
// byte-identical telemetry trace, checksum and finish time to the same
// world run monolithically — and the schedule (how many worlds, how many
// scheduler threads, GOMAXPROCS) is invisible in every result.
type Stepper interface {
	// HasPendingEvents reports whether the world still has events to
	// process. Once it returns false the world has run to completion and
	// its result is available.
	HasPendingEvents() bool
	// PeekNextEventTime reports the virtual time of the world's next
	// event without processing it. Only valid while HasPendingEvents.
	PeekNextEventTime() Time
	// ProcessNextEvent advances the world by exactly one event and
	// returns once the world is quiescent again (every participant has
	// either reached its next event boundary or finished).
	ProcessNextEvent()
}
