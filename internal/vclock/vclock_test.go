package vclock

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	var tm Time
	tm = tm.Add(Duration(3 * Second))
	if tm.Seconds() != 3 {
		t.Fatalf("Seconds = %v, want 3", tm.Seconds())
	}
	if d := tm.Sub(Time(Second)); d != Duration(2*Second) {
		t.Fatalf("Sub = %v, want 2s", d)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1e-9, 0.001, 1, 37.5, 12345.678} {
		d := FromSeconds(s)
		if got := d.Seconds(); got < s-1e-9 || got > s+1e-9 {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
	if MaxDur(3, 5) != 5 || MaxDur(5, 3) != 5 {
		t.Error("MaxDur broken")
	}
}

func TestClockMonotone(t *testing.T) {
	var c Clock
	c.Advance(Duration(5))
	c.AdvanceTo(3) // earlier: must be a no-op
	if c.Now() != 5 {
		t.Fatalf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(9)
	if c.Now() != 9 {
		t.Fatalf("AdvanceTo = %v, want 9", c.Now())
	}
	c.Set(9) // equal is allowed
	c.Set(12)
	if c.Now() != 12 {
		t.Fatalf("Set = %v, want 12", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockSetBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	var c Clock
	c.Advance(Duration(10))
	c.Set(5)
}

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewPRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewPRNG(42).Fork(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d matches", same)
	}
}

func TestPRNGFloat64Range(t *testing.T) {
	p := NewPRNG(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPRNGIntn(t *testing.T) {
	p := NewPRNG(11)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := p.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Intn bucket %d count %d is far from uniform", i, c)
		}
	}
}

func TestPRNGForkIndependence(t *testing.T) {
	p := NewPRNG(99)
	f1 := p.Fork(1)
	f2 := p.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different ids produced identical first values")
	}
	// Forking must not consume parent state.
	q := NewPRNG(99)
	if p.Uint64() != q.Uint64() {
		t.Fatal("Fork consumed parent state")
	}
}

// Property: clock advancement is associative with duration addition.
func TestClockAdvanceProperty(t *testing.T) {
	f := func(steps []uint32) bool {
		var c Clock
		var total Duration
		for _, s := range steps {
			d := Duration(s)
			total += d
			c.Advance(d)
		}
		return c.Now() == Time(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Max/Min pick an argument and order correctly.
func TestMaxMinProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mx, mn := Max(x, y), Min(x, y)
		return (mx == x || mx == y) && (mn == x || mn == y) && mn <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{Duration(15 * Microsecond), "15.000us"},
		{Duration(3 * Millisecond), "3.000ms"},
		{Duration(4 * Second), "4.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}
