// Package vclock provides the virtual-time foundation for the Dyn-MPI
// simulator: a nanosecond-resolution virtual Time, per-node Clocks, and a
// deterministic PRNG used wherever the model needs reproducible "noise"
// (context-switch spikes, particle motion, sparse-matrix structure).
//
// All simulated costs in the repository are expressed in virtual
// nanoseconds of a reference CPU (power 1.0). A node of power p executes a
// cost c in c/p virtual wall nanoseconds when unloaded; competing processes
// further inflate wall time (see internal/cluster).
package vclock

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of a run.
type Time int64

// Duration is a span of virtual time in nanoseconds. Durations and Times
// share a representation; the distinct types keep call sites honest.
type Duration int64

// Common durations, mirroring package time's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Duration, rounding to
// the nearest nanosecond.
func FromSeconds(s float64) Duration { return Duration(math.Round(s * float64(Second))) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the longer of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// String renders a Time with second resolution for logs, e.g. "12.345s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// String renders a Duration, e.g. "1.250ms" or "3.200s".
func (d Duration) String() string {
	switch {
	case d < Duration(2*Microsecond) && d > -Duration(2*Microsecond):
		return fmt.Sprintf("%dns", int64(d))
	case d < Duration(2*Millisecond) && d > -Duration(2*Millisecond):
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d < Duration(2*Second) && d > -Duration(2*Second):
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Clock is a single monotone virtual clock. The zero Clock starts at time 0.
type Clock struct {
	now Time
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances panic: a clock
// moving backwards indicates a causality bug in the caller, not a condition
// to tolerate.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += Time(d)
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later; it never moves the
// clock backwards. It reports the resulting time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Set forces the clock to exactly t, which must not be earlier than the
// current time. It is used by collectives that leave every participant at a
// common completion time.
func (c *Clock) Set(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("vclock: Set would move clock backwards (%v -> %v)", c.now, t))
	}
	c.now = t
}

// PRNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every source of modelled nondeterminism in the simulator is
// seeded explicitly so whole experiments replay bit-identically.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with seed.
func NewPRNG(seed uint64) *PRNG { return &PRNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (p *PRNG) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("vclock: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Fork derives an independent generator from this one, keyed by id. Two
// forks with different ids produce unrelated streams; the parent stream is
// not consumed.
func (p *PRNG) Fork(id uint64) *PRNG {
	return NewPRNG(p.state ^ (id+1)*0xd6e8feb86659fd93)
}
