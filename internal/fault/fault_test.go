package fault

import (
	"strings"
	"testing"

	"repro/internal/vclock"
)

func TestNewSetValidation(t *testing.T) {
	cases := []struct {
		name   string
		faults []Fault
		substr string
	}{
		{"node out of range", []Fault{CrashAtCycle(4, 1)}, "out of range"},
		{"negative node", []Fault{CrashAtCycle(-1, 1)}, "out of range"},
		{"stall without dur", []Fault{{Kind: Stall, Node: 0, AtCycle: 3}}, "duration"},
		{"delay without dur", []Fault{{Kind: Delay, Node: 0, AtCycle: -1, To: 1, Count: 1}}, "duration"},
		{"drop bad dest", []Fault{DropMsgs(0, 9, 0, 1)}, "out of range"},
		{"self link", []Fault{DropMsgs(1, 1, 0, 1)}, "self link"},
		{"negative after", []Fault{DropMsgs(0, 1, -2, 1)}, "message index"},
		{"no trigger", []Fault{{Kind: Crash, Node: 0, AtCycle: -1, At: -1}}, "trigger"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSet(4, c.faults)
			if err == nil || !strings.Contains(err.Error(), c.substr) {
				t.Fatalf("NewSet = %v, want error containing %q", err, c.substr)
			}
		})
	}
	if s, err := NewSet(4, nil); err != nil || s != nil {
		t.Fatalf("empty fault list: got %v, %v", s, err)
	}
}

func TestNodePartitioning(t *testing.T) {
	s, err := NewSet(4, []Fault{
		CrashAtCycle(2, 7),
		StallAtCycle(1, 3, 50*vclock.Millisecond),
		CrashAtCycle(1, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Node(0) != nil || s.Node(3) != nil {
		t.Error("nodes without faults should have nil state")
	}
	if s.Node(-1) != nil || s.Node(99) != nil {
		t.Error("out-of-range Node() should be nil")
	}
	var nilSet *Set
	if nilSet.Node(0) != nil || !nilSet.Empty() {
		t.Error("nil Set should be empty and nil-safe")
	}
	n1 := s.Node(1)
	if got := n1.AtCycle(3); len(got) != 1 || got[0].Kind != Stall {
		t.Errorf("node 1 cycle 3: got %v", got)
	}
	if got := n1.AtCycle(9); len(got) != 1 || got[0].Kind != Crash {
		t.Errorf("node 1 cycle 9: got %v", got)
	}
	if got := n1.AtCycle(5); len(got) != 0 {
		t.Errorf("node 1 cycle 5: got %v, want none", got)
	}
}

func TestTimedDue(t *testing.T) {
	s, err := NewSet(2, []Fault{
		CrashAt(0, vclock.Time(300*vclock.Millisecond)),
		{Kind: Stall, Node: 0, AtCycle: -1, At: vclock.Time(100 * vclock.Millisecond), Dur: vclock.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := s.Node(0)
	if _, ok := ns.TimedDue(vclock.Time(50 * vclock.Millisecond)); ok {
		t.Fatal("fault due before its time")
	}
	f, ok := ns.TimedDue(vclock.Time(150 * vclock.Millisecond))
	if !ok || f.Kind != Stall {
		t.Fatalf("want stall first (sorted by time), got %v ok=%v", f, ok)
	}
	f, ok = ns.TimedDue(vclock.Time(400 * vclock.Millisecond))
	if !ok || f.Kind != Crash {
		t.Fatalf("want crash second, got %v ok=%v", f, ok)
	}
	if _, ok := ns.TimedDue(vclock.Time(999 * vclock.Millisecond)); ok {
		t.Fatal("timed faults should be consumed exactly once")
	}
}

func TestMessageFaultWindow(t *testing.T) {
	s, err := NewSet(3, []Fault{
		DropMsgs(0, 1, 2, 2),                         // messages 2,3 on 0->1
		DelayMsgs(0, 2, 0, 1, 10*vclock.Millisecond), // message 0 on 0->2
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := s.Node(0)
	// Link 0->1: indices 0..4, faults at 2 and 3.
	wantHit := []bool{false, false, true, true, false}
	for i, want := range wantHit {
		kind, extra, hit := ns.MessageFault(1)
		if hit != want {
			t.Fatalf("msg %d on 0->1: hit=%v want %v", i, hit, want)
		}
		if hit {
			if kind != Drop {
				t.Fatalf("msg %d: kind %v want Drop", i, kind)
			}
			if extra != DefaultRetransmit {
				t.Fatalf("msg %d: extra %v want DefaultRetransmit", i, extra)
			}
		}
	}
	// Link 0->2 counts independently.
	kind, extra, hit := ns.MessageFault(2)
	if !hit || kind != Delay || extra != 10*vclock.Millisecond {
		t.Fatalf("0->2 msg 0: kind=%v extra=%v hit=%v", kind, extra, hit)
	}
	if _, _, hit := ns.MessageFault(2); hit {
		t.Fatal("0->2 msg 1 should not hit")
	}
	// A link with no rules never hits.
	if _, _, hit := s.Node(0).MessageFault(0); hit {
		t.Fatal("unruled link hit a fault")
	}
}

func TestParseSpecs(t *testing.T) {
	faults, err := ParseSpecs("crash:node=1,cycle=12; stall:node=2,cycle=8,dur=50ms;drop:node=0,to=1,after=5,count=3;delay:node=0,to=2,count=4,dur=10ms;crash:node=3,t=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 5 {
		t.Fatalf("parsed %d faults, want 5", len(faults))
	}
	want := []Fault{
		{Kind: Crash, Node: 1, AtCycle: 12, To: -1},
		{Kind: Stall, Node: 2, AtCycle: 8, To: -1, Dur: 50 * vclock.Millisecond},
		{Kind: Drop, Node: 0, AtCycle: -1, To: 1, After: 5, Count: 3},
		{Kind: Delay, Node: 0, AtCycle: -1, To: 2, Count: 4, Dur: 10 * vclock.Millisecond},
		{Kind: Crash, Node: 3, AtCycle: -1, To: -1, At: vclock.Time(250 * vclock.Millisecond)},
	}
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d: got %+v want %+v", i, faults[i], want[i])
		}
	}
	// Parsed specs must validate.
	if _, err := NewSet(4, faults); err != nil {
		t.Fatalf("parsed specs failed validation: %v", err)
	}

	bad := []string{
		"boom:node=1",
		"crash:node",
		"crash:cycle=1",
		"drop:node=0,after=1",
		"crash:node=x,cycle=1",
		"stall:node=1,cycle=1,dur=banana",
		"crash:node=1,cycle=1,flavor=up",
	}
	for _, spec := range bad {
		if _, err := ParseSpecs(spec); err == nil {
			t.Errorf("ParseSpecs(%q) accepted invalid spec", spec)
		}
	}
}
