// Package fault provides deterministic, virtual-time fault injection for
// the Dyn-MPI simulator: node crashes at a cycle or virtual time, transient
// stalls, and per-link message drops and delays.
//
// Determinism is the design constraint everything else bends around. A
// fault triggers exclusively on state owned by the faulting node's own
// goroutine — its virtual clock, its cycle counter, its per-link send
// counters — never on wall time, scheduling order, or another node's
// progress. Two runs of the same scenario therefore inject exactly the same
// faults at exactly the same virtual instants, so crash experiments replay
// bit-identically the way everything else in the simulator does.
//
// A scenario declares its faults as a []Fault on the cluster Spec (or the
// dynexp -fault flag, parsed by ParseSpecs); NewSet validates them and
// partitions them per node, and the mpi layer polls the node's NodeState at
// operation entry points.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/vclock"
)

// Kind enumerates the supported fault types.
type Kind int

const (
	// Crash kills the node permanently: the rank's goroutine exits and
	// every later interaction with it fails.
	Crash Kind = iota
	// Stall freezes the node for Dur of virtual time, then resumes.
	Stall
	// Drop discards the first transmission of a message on a link; the
	// modelled retransmission delivers it Dur later (DefaultRetransmit
	// when Dur is zero).
	Drop
	// Delay adds Dur to a message's delivery time on a link.
	Delay
)

// String reports the scenario-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// DefaultRetransmit is the modelled retransmission delay applied to dropped
// messages when the fault does not specify one.
const DefaultRetransmit = 200 * vclock.Millisecond

// Fault is one injected fault. Node faults (Crash, Stall) trigger either at
// the start of cycle AtCycle (when AtCycle >= 0) or at the first
// communication operation at or after virtual time At. Message faults
// (Drop, Delay) apply to Count consecutive messages on the Node->To link,
// starting with the After-th message sent on that link (0-based).
type Fault struct {
	Kind Kind
	Node int // faulting node (the sender, for message faults)

	// Node-fault trigger: cycle takes precedence when >= 0.
	AtCycle int
	At      vclock.Time

	// Message-fault window.
	To    int // destination rank
	After int // 0-based index of the first affected message on the link
	Count int // number of affected messages (0 means 1)

	// Dur is the stall length, added delay, or drop retransmission delay.
	Dur vclock.Duration
}

// CrashAtCycle returns a fault that crashes node at the start of cycle.
func CrashAtCycle(node, cycle int) Fault {
	return Fault{Kind: Crash, Node: node, AtCycle: cycle}
}

// CrashAt returns a fault that crashes node at its first communication
// operation at or after virtual time t.
func CrashAt(node int, t vclock.Time) Fault {
	return Fault{Kind: Crash, Node: node, AtCycle: -1, At: t}
}

// StallAtCycle returns a fault that freezes node for dur at the start of
// cycle.
func StallAtCycle(node, cycle int, dur vclock.Duration) Fault {
	return Fault{Kind: Stall, Node: node, AtCycle: cycle, Dur: dur}
}

// DropMsgs returns a fault that drops count messages on the node->to link
// starting with the after-th (0-based); each is redelivered after
// DefaultRetransmit.
func DropMsgs(node, to, after, count int) Fault {
	return Fault{Kind: Drop, Node: node, AtCycle: -1, To: to, After: after, Count: count}
}

// DelayMsgs returns a fault that adds dur to the delivery of count messages
// on the node->to link starting with the after-th (0-based).
func DelayMsgs(node, to, after, count int, dur vclock.Duration) Fault {
	return Fault{Kind: Delay, Node: node, AtCycle: -1, To: to, After: after, Count: count, Dur: dur}
}

// Set holds a validated scenario's faults partitioned per node. A nil *Set
// is valid and empty.
type Set struct {
	nodes []*NodeState
}

// NodeState holds one node's faults, in the forms its own goroutine polls:
// cycle-triggered node faults, time-triggered node faults (consumed in
// virtual-time order), and per-destination message-fault rules with the
// link's send counter.
type NodeState struct {
	cycle []Fault // node faults with AtCycle >= 0, sorted by AtCycle
	timed []Fault // node faults triggered by At, sorted by At
	next  int     // cursor into timed
	links []linkState
}

type linkState struct {
	to    int
	sent  int // messages sent on this link so far
	rules []msgRule
}

type msgRule struct {
	kind         Kind
	after, count int
	dur          vclock.Duration
}

// NewSet validates faults for an n-node cluster and partitions them per
// node. It returns an error naming the first invalid fault.
func NewSet(n int, faults []Fault) (*Set, error) {
	if len(faults) == 0 {
		return nil, nil
	}
	s := &Set{nodes: make([]*NodeState, n)}
	node := func(id int) *NodeState {
		if s.nodes[id] == nil {
			s.nodes[id] = &NodeState{}
		}
		return s.nodes[id]
	}
	for i, f := range faults {
		if f.Node < 0 || f.Node >= n {
			return nil, fmt.Errorf("fault %d (%s): node %d out of range [0,%d)", i, f.Kind, f.Node, n)
		}
		switch f.Kind {
		case Crash, Stall:
			if f.Kind == Stall && f.Dur <= 0 {
				return nil, fmt.Errorf("fault %d (stall): needs a positive duration", i)
			}
			if f.AtCycle < 0 && f.At < 0 {
				return nil, fmt.Errorf("fault %d (%s): needs cycle or time trigger", i, f.Kind)
			}
			ns := node(f.Node)
			if f.AtCycle >= 0 {
				ns.cycle = append(ns.cycle, f)
			} else {
				ns.timed = append(ns.timed, f)
			}
		case Drop, Delay:
			if f.To < 0 || f.To >= n {
				return nil, fmt.Errorf("fault %d (%s): destination %d out of range [0,%d)", i, f.Kind, f.To, n)
			}
			if f.To == f.Node {
				return nil, fmt.Errorf("fault %d (%s): self link %d->%d", i, f.Kind, f.Node, f.To)
			}
			if f.Kind == Delay && f.Dur <= 0 {
				return nil, fmt.Errorf("fault %d (delay): needs a positive duration", i)
			}
			if f.After < 0 {
				return nil, fmt.Errorf("fault %d (%s): negative message index %d", i, f.Kind, f.After)
			}
			if f.Count == 0 {
				f.Count = 1
			}
			if f.Count < 0 {
				return nil, fmt.Errorf("fault %d (%s): negative count %d", i, f.Kind, f.Count)
			}
			if f.Kind == Drop && f.Dur == 0 {
				f.Dur = DefaultRetransmit
			}
			ns := node(f.Node)
			var l *linkState
			for j := range ns.links {
				if ns.links[j].to == f.To {
					l = &ns.links[j]
					break
				}
			}
			if l == nil {
				ns.links = append(ns.links, linkState{to: f.To})
				l = &ns.links[len(ns.links)-1]
			}
			l.rules = append(l.rules, msgRule{kind: f.Kind, after: f.After, count: f.Count, dur: f.Dur})
		default:
			return nil, fmt.Errorf("fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	for _, ns := range s.nodes {
		if ns == nil {
			continue
		}
		sort.SliceStable(ns.cycle, func(a, b int) bool { return ns.cycle[a].AtCycle < ns.cycle[b].AtCycle })
		sort.SliceStable(ns.timed, func(a, b int) bool { return ns.timed[a].At < ns.timed[b].At })
	}
	return s, nil
}

// Node returns the fault state for node id, or nil when the node has none.
// It is nil-safe: a nil Set has no faults.
func (s *Set) Node(id int) *NodeState {
	if s == nil || id < 0 || id >= len(s.nodes) {
		return nil
	}
	return s.nodes[id]
}

// Empty reports whether the set holds no faults.
func (s *Set) Empty() bool { return s == nil || len(s.nodes) == 0 }

// AtCycle returns the node faults triggered at the start of cycle, in
// declaration order. The returned slice aliases internal state; callers
// must not retain it.
func (ns *NodeState) AtCycle(cycle int) []Fault {
	lo := sort.Search(len(ns.cycle), func(i int) bool { return ns.cycle[i].AtCycle >= cycle })
	hi := lo
	for hi < len(ns.cycle) && ns.cycle[hi].AtCycle == cycle {
		hi++
	}
	return ns.cycle[lo:hi]
}

// TimedDue consumes and returns the next time-triggered node fault due at
// or before now, if any.
func (ns *NodeState) TimedDue(now vclock.Time) (Fault, bool) {
	if ns.next < len(ns.timed) && ns.timed[ns.next].At <= now {
		f := ns.timed[ns.next]
		ns.next++
		return f, true
	}
	return Fault{}, false
}

// MessageFault advances the send counter for the link to dst and reports
// whether the message being sent hits a drop or delay rule; extra is the
// added delivery delay.
func (ns *NodeState) MessageFault(dst int) (kind Kind, extra vclock.Duration, hit bool) {
	for i := range ns.links {
		l := &ns.links[i]
		if l.to != dst {
			continue
		}
		idx := l.sent
		l.sent++
		for _, r := range l.rules {
			if idx >= r.after && idx < r.after+r.count {
				return r.kind, r.dur, true
			}
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// ParseSpecs parses the dynexp -fault syntax: semicolon-separated specs of
// the form "kind:key=value,key=value,...". Examples:
//
//	crash:node=1,cycle=12
//	crash:node=1,t=0.25
//	stall:node=2,cycle=8,dur=50ms
//	drop:node=0,to=1,after=5,count=3
//	delay:node=0,to=2,count=4,dur=10ms
//
// Keys: node, cycle, t (virtual seconds, float), dur (Go duration syntax),
// to, after, count.
func ParseSpecs(s string) ([]Fault, error) {
	var out []Fault
	for _, spec := range strings.Split(s, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("fault spec %q: want kind:key=value,...", spec)
		}
		f := Fault{AtCycle: -1, To: -1}
		switch kindStr {
		case "crash":
			f.Kind = Crash
		case "stall":
			f.Kind = Stall
		case "drop":
			f.Kind = Drop
		case "delay":
			f.Kind = Delay
		default:
			return nil, fmt.Errorf("fault spec %q: unknown kind %q", spec, kindStr)
		}
		f.Node = -1
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault spec %q: bad key=value %q", spec, kv)
			}
			switch key {
			case "node", "to", "cycle", "after", "count":
				v, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault spec %q: %s: %v", spec, key, err)
				}
				switch key {
				case "node":
					f.Node = v
				case "to":
					f.To = v
				case "cycle":
					f.AtCycle = v
				case "after":
					f.After = v
				case "count":
					f.Count = v
				}
			case "t":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fault spec %q: t: %v", spec, err)
				}
				f.At = vclock.Time(vclock.FromSeconds(v))
			case "dur":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("fault spec %q: dur: %v", spec, err)
				}
				f.Dur = vclock.Duration(d.Nanoseconds())
			default:
				return nil, fmt.Errorf("fault spec %q: unknown key %q", spec, key)
			}
		}
		if f.Node < 0 {
			return nil, fmt.Errorf("fault spec %q: missing node", spec)
		}
		if (f.Kind == Drop || f.Kind == Delay) && f.To < 0 {
			return nil, fmt.Errorf("fault spec %q: missing to", spec)
		}
		out = append(out, f)
	}
	return out, nil
}
