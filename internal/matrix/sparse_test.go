package matrix

import (
	"testing"
	"testing/quick"
)

func buildSparse(t *testing.T, rows int) *Sparse {
	t.Helper()
	s := NewSparse("M", rows, nil)
	s.SetWindow(0, rows)
	for g := 0; g < rows; g++ {
		for k := 0; k <= g%4; k++ {
			s.Append(g, int32(k*3), float64(g*100+k))
		}
	}
	return s
}

func TestSparseAppendAndLen(t *testing.T) {
	s := buildSparse(t, 8)
	for g := 0; g < 8; g++ {
		if s.RowLen(g) != g%4+1 {
			t.Fatalf("row %d len %d", g, s.RowLen(g))
		}
	}
	if s.NNZ() != 2*(1+2+3+4) {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
}

func TestSparseRowTraversal(t *testing.T) {
	s := buildSparse(t, 8)
	e := s.RowHead(7) // 4 elements
	for k := 0; k < 4; k++ {
		if e == nil {
			t.Fatal("short row")
		}
		if e.Col != int32(k*3) || e.Val != float64(700+k) {
			t.Fatalf("elem %d = (%d,%v)", k, e.Col, e.Val)
		}
		e = e.Next()
	}
	if e != nil {
		t.Fatal("long row")
	}
}

func TestIteratorFullWalk(t *testing.T) {
	s := buildSparse(t, 6)
	it := s.NewIter()
	count := 0
	for {
		for it.Valid() {
			count++
			it.NextElem()
		}
		if !it.AdvanceRow() {
			break
		}
	}
	if count != s.NNZ() {
		t.Fatalf("iterator visited %d of %d", count, s.NNZ())
	}
}

func TestIteratorSetVal(t *testing.T) {
	s := buildSparse(t, 4)
	it := s.NewIter()
	it.SetVal(-1)
	if s.RowHead(0).Val != -1 {
		t.Fatal("SetVal did not stick")
	}
	it.NextElem()
	if it.Valid() {
		t.Fatal("row 0 has one element; iterator should be exhausted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetVal on exhausted iterator did not panic")
			}
		}()
		it.SetVal(0)
	}()
}

func TestIteratorMoveToFirst(t *testing.T) {
	s := buildSparse(t, 4)
	it := s.NewIter()
	it.AdvanceRow()
	it.AdvanceRow()
	it.MoveToFirst()
	if it.Row() != 0 || !it.Valid() {
		t.Fatal("MoveToFirst did not reset")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	s := buildSparse(t, 8)
	d := NewSparse("D", 8, nil)
	d.SetWindow(0, 8)
	for g := 0; g < 8; g++ {
		p := s.PackRow(g)
		if p.WireBytes() != 8+12*s.RowLen(g) {
			t.Fatalf("WireBytes = %d", p.WireBytes())
		}
		d.UnpackRow(g, p)
	}
	for g := 0; g < 8; g++ {
		a, b := s.RowHead(g), d.RowHead(g)
		for a != nil || b != nil {
			if a == nil || b == nil || a.Col != b.Col || a.Val != b.Val {
				t.Fatalf("row %d differs after round trip", g)
			}
			a, b = a.Next(), b.Next()
		}
	}
}

func TestUnpackReplacesRow(t *testing.T) {
	s := NewSparse("M", 2, nil)
	s.SetWindow(0, 2)
	s.Append(0, 1, 10)
	s.Append(0, 2, 20)
	s.UnpackRow(0, PackedRow{Cols: []int32{9}, Vals: []float64{99}})
	if s.RowLen(0) != 1 || s.RowHead(0).Col != 9 {
		t.Fatal("UnpackRow did not replace contents")
	}
}

func TestUnpackRaggedPanics(t *testing.T) {
	s := NewSparse("M", 1, nil)
	s.SetWindow(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.UnpackRow(0, PackedRow{Cols: []int32{1}, Vals: nil})
}

func TestSparseWindowRetainsRows(t *testing.T) {
	s := buildSparse(t, 10)
	s.SetWindow(4, 10)
	if s.RowLen(7) != 7%4+1 {
		t.Fatal("retained row lost elements")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dropped row should be inaccessible")
			}
		}()
		s.RowLen(2)
	}()
}

func TestClearRow(t *testing.T) {
	sink := &recordSink{}
	s := NewSparse("M", 2, sink)
	s.SetWindow(0, 2)
	s.Append(0, 1, 1)
	s.Append(0, 2, 2)
	s.ClearRow(0)
	if s.RowLen(0) != 0 {
		t.Fatal("ClearRow left elements")
	}
	if sink.resident != 0 {
		t.Fatalf("resident after clear = %d", sink.resident)
	}
}

func TestSparseResidentAccountingBalances(t *testing.T) {
	sink := &recordSink{}
	s := NewSparse("M", 20, sink)
	s.SetWindow(0, 20)
	for g := 0; g < 20; g++ {
		s.Append(g, 0, 1)
		s.Append(g, 1, 2)
	}
	s.SetWindow(5, 10)
	s.SetWindow(0, 0)
	if sink.resident != 0 {
		t.Fatalf("resident leaks %d", sink.resident)
	}
}

// Property: pack/unpack is the identity on arbitrary rows.
func TestPackUnpackProperty(t *testing.T) {
	f := func(cols []int32, vals []float64) bool {
		n := len(cols)
		if len(vals) < n {
			n = len(vals)
		}
		s := NewSparse("M", 1, nil)
		s.SetWindow(0, 1)
		for i := 0; i < n; i++ {
			s.Append(0, cols[i], vals[i])
		}
		p := s.PackRow(0)
		d := NewSparse("D", 1, nil)
		d.SetWindow(0, 1)
		d.UnpackRow(0, p)
		if d.RowLen(0) != n {
			return false
		}
		e := d.RowHead(0)
		for i := 0; i < n; i++ {
			if e.Col != cols[i] || !(e.Val == vals[i] || (e.Val != e.Val && vals[i] != vals[i])) {
				return false
			}
			e = e.Next()
		}
		return e == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSparse("M", 0, nil)
}
