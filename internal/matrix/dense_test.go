package matrix

import (
	"testing"
	"testing/quick"
)

// recordSink records charges for verifying the cost model.
type recordSink struct {
	touched  int64
	resident int64
}

func (r *recordSink) ChargeTouch(b int64)    { r.touched += b }
func (r *recordSink) AdjustResident(d int64) { r.resident += d }

func fillVal(g, j int) float64 { return float64(g*1000 + j) }

func TestDenseWindowBasics(t *testing.T) {
	d := NewDense("A", 100, 4, Projection, nil)
	d.SetWindow(10, 20)
	if d.Lo() != 10 || d.Hi() != 20 {
		t.Fatalf("window [%d,%d)", d.Lo(), d.Hi())
	}
	if !d.Resident(10) || !d.Resident(19) || d.Resident(20) || d.Resident(9) {
		t.Fatal("Resident wrong")
	}
	d.Fill(fillVal)
	if d.Row(15)[2] != 15002 {
		t.Fatalf("Row(15)[2] = %v", d.Row(15)[2])
	}
	if d.RowBytes() != 32 {
		t.Fatalf("RowBytes = %d", d.RowBytes())
	}
}

func TestDenseRowOutsideWindowPanics(t *testing.T) {
	d := NewDense("A", 10, 2, Projection, nil)
	d.SetWindow(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Row(5)
}

func testWindowPreservesOverlap(t *testing.T, scheme Alloc) {
	d := NewDense("A", 50, 3, scheme, nil)
	d.SetWindow(10, 30)
	d.Fill(fillVal)
	d.SetWindow(20, 40) // overlap [20,30)
	for g := 20; g < 30; g++ {
		for j := 0; j < 3; j++ {
			if d.Row(g)[j] != fillVal(g, j) {
				t.Fatalf("%v: row %d col %d = %v, want %v", scheme, g, j, d.Row(g)[j], fillVal(g, j))
			}
		}
	}
	for g := 30; g < 40; g++ {
		for j := 0; j < 3; j++ {
			if d.Row(g)[j] != 0 {
				t.Fatalf("%v: new row %d not zeroed", scheme, g)
			}
		}
	}
}

func TestProjectionWindowPreservesOverlap(t *testing.T) { testWindowPreservesOverlap(t, Projection) }
func TestContiguousWindowPreservesOverlap(t *testing.T) { testWindowPreservesOverlap(t, Contiguous) }

func TestSchemesAgreeOnContents(t *testing.T) {
	p := NewDense("P", 40, 5, Projection, nil)
	c := NewDense("C", 40, 5, Contiguous, nil)
	moves := [][2]int{{0, 10}, {5, 25}, {20, 40}, {18, 30}, {0, 40}, {39, 40}}
	p.SetWindow(0, 10)
	c.SetWindow(0, 10)
	p.Fill(fillVal)
	c.Fill(fillVal)
	for _, m := range moves[1:] {
		p.SetWindow(m[0], m[1])
		c.SetWindow(m[0], m[1])
		for g := m[0]; g < m[1]; g++ {
			for j := 0; j < 5; j++ {
				if p.Row(g)[j] != c.Row(g)[j] {
					t.Fatalf("schemes diverged at row %d col %d after move %v", g, j, m)
				}
			}
		}
	}
}

func TestProjectionCheaperThanContiguousOnGrow(t *testing.T) {
	// Growing a window by one row: projection touches ~1 row; contiguous
	// re-touches the whole block.
	const rows, rowLen = 1000, 256
	ps, cs := &recordSink{}, &recordSink{}
	p := NewDense("P", rows, rowLen, Projection, ps)
	c := NewDense("C", rows, rowLen, Contiguous, cs)
	p.SetWindow(0, 500)
	c.SetWindow(0, 500)
	ps.touched, cs.touched = 0, 0
	p.SetWindow(0, 501)
	c.SetWindow(0, 501)
	if ps.touched >= cs.touched/10 {
		t.Fatalf("projection touch %d not ≪ contiguous %d", ps.touched, cs.touched)
	}
}

func TestResidentAccountingBalances(t *testing.T) {
	for _, scheme := range []Alloc{Projection, Contiguous} {
		s := &recordSink{}
		d := NewDense("A", 100, 8, scheme, s)
		d.SetWindow(0, 60)
		d.SetWindow(30, 90)
		d.SetWindow(0, 0)
		if s.resident != 0 {
			t.Errorf("%v: resident accounting leaks %d bytes", scheme, s.resident)
		}
	}
}

func TestTakeAndPutRow(t *testing.T) {
	for _, scheme := range []Alloc{Projection, Contiguous} {
		src := NewDense("S", 10, 4, scheme, nil)
		dst := NewDense("D", 10, 4, scheme, nil)
		src.SetWindow(0, 5)
		dst.SetWindow(3, 8)
		src.Fill(fillVal)
		row := src.TakeRow(4)
		dst.PutRow(4, row)
		for j := 0; j < 4; j++ {
			if dst.Row(4)[j] != fillVal(4, j) {
				t.Fatalf("%v: transferred row corrupt at %d", scheme, j)
			}
		}
	}
}

func TestPutRowValidates(t *testing.T) {
	d := NewDense("A", 10, 4, Projection, nil)
	d.SetWindow(0, 5)
	for _, tc := range []func(){
		func() { d.PutRow(2, make([]float64, 3)) }, // wrong length
		func() { d.PutRow(7, make([]float64, 4)) }, // outside window
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc()
		}()
	}
}

func TestBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDense("A", 0, 4, Projection, nil)
}

func TestBadWindowPanics(t *testing.T) {
	d := NewDense("A", 10, 2, Projection, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.SetWindow(5, 3)
}

// Property: any sequence of window moves preserves the values of rows that
// remain resident across each single move.
func TestWindowMoveProperty(t *testing.T) {
	f := func(moves []uint16, schemeBit bool) bool {
		scheme := Projection
		if schemeBit {
			scheme = Contiguous
		}
		const rows = 64
		d := NewDense("A", rows, 2, scheme, nil)
		d.SetWindow(0, rows)
		d.Fill(fillVal)
		lo, hi := 0, rows
		written := make(map[int]bool)
		for g := 0; g < rows; g++ {
			written[g] = true
		}
		for _, mv := range moves {
			nlo := int(mv) % rows
			nhi := nlo + int(mv>>8)%(rows-nlo) + 1
			d.SetWindow(nlo, nhi)
			for g := nlo; g < nhi; g++ {
				keep := g >= lo && g < hi && written[g]
				if keep {
					if d.Row(g)[1] != fillVal(g, 1) {
						return false
					}
				} else {
					if d.Row(g)[1] != 0 {
						return false
					}
					written[g] = false
				}
			}
			// Rows outside the previous window lost their values.
			for g := 0; g < rows; g++ {
				if g < nlo || g >= nhi {
					written[g] = false
				}
			}
			lo, hi = nlo, nhi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocString(t *testing.T) {
	if Projection.String() != "projection" || Contiguous.String() != "contiguous" {
		t.Fatal("String names")
	}
	if Alloc(9).String() != "Alloc(9)" {
		t.Fatal("unknown scheme name")
	}
}
