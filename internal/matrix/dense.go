// Package matrix implements Dyn-MPI's memory-allocation schemes for
// redistributable arrays (paper §4.1).
//
// Dense N-dimensional arrays are projected onto two dimensions: the first
// (distributed) dimension indexes "extended rows" whose length is the
// product of the remaining dimensions. Two allocation schemes are provided:
//
//   - Projection (the paper's scheme): a top-level vector of row pointers.
//     Changing the resident window copies only the top-level vector and
//     allocates/frees individual rows; retained rows are reused in place.
//   - Contiguous (the baseline): one flat backing array. Any change to the
//     resident window reallocates and copies the whole local block, which
//     for large arrays causes the excessive memory traffic (and paging)
//     the paper's technical report measures.
//
// Sparse matrices (sparse.go) use a vector of linked lists of
// (column, value) pairs, making their redistribution nearly identical to
// the dense case.
//
// All structural operations optionally charge their cost to a CostSink
// (in practice a cluster.Node), so allocation policy differences are
// visible in virtual time.
package matrix

import "fmt"

// Alloc selects the dense allocation scheme.
type Alloc int

const (
	// Projection is the paper's 2-D projection scheme (vector of rows).
	Projection Alloc = iota
	// Contiguous is the flat-array baseline requiring full reallocation.
	Contiguous
)

// String names the allocation scheme.
func (a Alloc) String() string {
	switch a {
	case Projection:
		return "projection"
	case Contiguous:
		return "contiguous"
	default:
		return fmt.Sprintf("Alloc(%d)", int(a))
	}
}

// CostSink receives the virtual cost of memory operations. cluster.Node
// implements it; a nil sink disables cost accounting (pure data structure).
type CostSink interface {
	// ChargeTouch charges writing/copying bytes of memory.
	ChargeTouch(bytes int64)
	// AdjustResident tracks allocated application bytes for the paging model.
	AdjustResident(delta int64)
}

// Dense is one rank's resident window of a block-distributed dense array.
// Global row indices lo..hi-1 are resident (owned rows plus ghost rows
// required by the phase's array accesses).
type Dense struct {
	Name       string
	GlobalRows int
	RowLen     int // product of the non-distributed dimensions

	scheme Alloc
	sink   CostSink

	lo, hi int
	rows   [][]float64 // rows[g-lo] is global row g
	flat   []float64   // backing storage when scheme == Contiguous
}

// NewDense creates an empty dense array descriptor; call SetWindow to make
// rows resident. sink may be nil.
func NewDense(name string, globalRows, rowLen int, scheme Alloc, sink CostSink) *Dense {
	if globalRows <= 0 || rowLen <= 0 {
		panic(fmt.Sprintf("matrix: bad dense shape %dx%d", globalRows, rowLen))
	}
	return &Dense{Name: name, GlobalRows: globalRows, RowLen: rowLen, scheme: scheme, sink: sink}
}

// Scheme reports the allocation scheme in use.
func (d *Dense) Scheme() Alloc { return d.scheme }

// Lo returns the first resident global row.
func (d *Dense) Lo() int { return d.lo }

// Hi returns one past the last resident global row.
func (d *Dense) Hi() int { return d.hi }

// Resident reports whether global row g is resident.
func (d *Dense) Resident(g int) bool { return g >= d.lo && g < d.hi }

// RowBytes is the wire/memory size of one extended row.
func (d *Dense) RowBytes() int64 { return int64(d.RowLen) * 8 }

// Row returns global row g. It panics if g is not resident — out-of-window
// access is always an ownership bug in the caller.
func (d *Dense) Row(g int) []float64 {
	if g < d.lo || g >= d.hi {
		panic(fmt.Sprintf("matrix: %s row %d outside resident window [%d,%d)", d.Name, g, d.lo, d.hi))
	}
	return d.rows[g-d.lo]
}

// SetWindow resizes the resident window to [lo,hi), preserving the contents
// of rows resident both before and after. Newly resident rows are
// zero-valued. The virtual cost charged depends on the allocation scheme:
// Projection pays a top-vector copy plus allocation of the new rows only;
// Contiguous pays a full reallocation and copy of every retained row.
func (d *Dense) SetWindow(lo, hi int) {
	if lo < 0 || hi > d.GlobalRows || lo > hi {
		panic(fmt.Sprintf("matrix: %s bad window [%d,%d) of %d", d.Name, lo, hi, d.GlobalRows))
	}
	oldLo, oldHi, oldRows := d.lo, d.hi, d.rows
	n := hi - lo
	newRows := make([][]float64, n)

	keepLo, keepHi := maxInt(lo, oldLo), minInt(hi, oldHi) // retained global range
	retained := maxInt(0, keepHi-keepLo)

	switch d.scheme {
	case Projection:
		// Reuse retained row storage; allocate fresh rows elsewhere.
		for g := keepLo; g < keepHi; g++ {
			newRows[g-lo] = oldRows[g-oldLo]
		}
		var newBytes int64
		for i := range newRows {
			if newRows[i] == nil {
				newRows[i] = make([]float64, d.RowLen)
				newBytes += d.RowBytes()
			}
		}
		if d.sink != nil {
			// Top-level vector copy (8 bytes per pointer) plus zeroing the
			// newly allocated rows.
			d.sink.AdjustResident(newBytes - int64(oldHi-oldLo-retained)*d.RowBytes())
			d.sink.ChargeTouch(int64(n)*8 + newBytes)
		}
	case Contiguous:
		flat := make([]float64, n*d.RowLen)
		for i := range newRows {
			newRows[i] = flat[i*d.RowLen : (i+1)*d.RowLen : (i+1)*d.RowLen]
		}
		for g := keepLo; g < keepHi; g++ {
			copy(newRows[g-lo], oldRows[g-oldLo])
		}
		d.flat = flat
		if d.sink != nil {
			// Whole-block reallocation: every retained row is copied and the
			// full new block is touched.
			d.sink.AdjustResident(int64(n-(oldHi-oldLo)) * d.RowBytes())
			d.sink.ChargeTouch(int64(n)*d.RowBytes() + int64(retained)*d.RowBytes())
		}
	default:
		panic("matrix: unknown allocation scheme")
	}
	d.lo, d.hi, d.rows = lo, hi, newRows
}

// TakeRow detaches and returns global row g's storage for sending; the row
// remains resident but its contents are considered surrendered. With the
// Projection scheme this is zero-copy; with Contiguous the row must be
// copied out (charged).
func (d *Dense) TakeRow(g int) []float64 {
	r := d.Row(g)
	if d.scheme == Contiguous {
		out := make([]float64, d.RowLen)
		copy(out, r)
		if d.sink != nil {
			d.sink.ChargeTouch(d.RowBytes())
		}
		return out
	}
	return r
}

// PutRow installs data as global row g (receive side). With Projection the
// incoming buffer is adopted directly when it has the right length;
// Contiguous must copy into the flat backing.
func (d *Dense) PutRow(g int, data []float64) {
	if len(data) != d.RowLen {
		panic(fmt.Sprintf("matrix: %s PutRow length %d != %d", d.Name, len(data), d.RowLen))
	}
	if g < d.lo || g >= d.hi {
		panic(fmt.Sprintf("matrix: %s PutRow %d outside window [%d,%d)", d.Name, g, d.lo, d.hi))
	}
	if d.scheme == Projection {
		d.rows[g-d.lo] = data
		return
	}
	copy(d.rows[g-d.lo], data)
	if d.sink != nil {
		d.sink.ChargeTouch(d.RowBytes())
	}
}

// CopyRowsTo copies global rows [lo,hi) into the contiguous slab dst, which
// must hold at least (hi-lo)*RowLen values. It performs no cost accounting:
// bulk extraction is a host-side packing optimisation, and the caller
// charges the virtual cost of each row according to its own move/copy
// semantics (see core.applyDistribution).
func (d *Dense) CopyRowsTo(dst []float64, lo, hi int) {
	if lo < d.lo || hi > d.hi || lo > hi {
		panic(fmt.Sprintf("matrix: %s CopyRowsTo [%d,%d) outside window [%d,%d)", d.Name, lo, hi, d.lo, d.hi))
	}
	if len(dst) < (hi-lo)*d.RowLen {
		panic(fmt.Sprintf("matrix: %s CopyRowsTo slab %d < %d", d.Name, len(dst), (hi-lo)*d.RowLen))
	}
	for g := lo; g < hi; g++ {
		copy(dst[(g-lo)*d.RowLen:], d.rows[g-d.lo])
	}
}

// PutRows installs the contiguous slab data as global rows starting at lo
// (receive side of a bulk transfer); len(data) must be a whole number of
// rows. It is the bulk counterpart of PutRow with adoption replaced by a
// copy into the window's existing storage, so the slab stays recyclable.
// The virtual cost matches PutRow exactly: Projection charges nothing (the
// per-row path adopted the incoming buffer), Contiguous charges one
// RowBytes touch per row.
func (d *Dense) PutRows(lo int, data []float64) {
	if len(data)%d.RowLen != 0 {
		panic(fmt.Sprintf("matrix: %s PutRows slab %d not a multiple of row length %d", d.Name, len(data), d.RowLen))
	}
	hi := lo + len(data)/d.RowLen
	if lo < d.lo || hi > d.hi {
		panic(fmt.Sprintf("matrix: %s PutRows [%d,%d) outside window [%d,%d)", d.Name, lo, hi, d.lo, d.hi))
	}
	for g := lo; g < hi; g++ {
		copy(d.rows[g-d.lo], data[(g-lo)*d.RowLen:(g-lo+1)*d.RowLen])
		if d.scheme == Contiguous && d.sink != nil {
			d.sink.ChargeTouch(d.RowBytes())
		}
	}
}

// Fill sets every resident row from f(globalRow, col).
func (d *Dense) Fill(f func(g, j int) float64) {
	for g := d.lo; g < d.hi; g++ {
		row := d.rows[g-d.lo]
		for j := range row {
			row[j] = f(g, j)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
