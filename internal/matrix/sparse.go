package matrix

import "fmt"

// Elem is one stored element of a sparse row: a (column id, value) pair in
// a singly linked list, exactly the paper's vector-of-lists format.
type Elem struct {
	Col  int32
	Val  float64
	next *Elem
}

// Next returns the following element in the row, or nil.
func (e *Elem) Next() *Elem { return e.next }

// sparseRow is one linked-list extended row.
type sparseRow struct {
	head, tail *Elem
	n          int
}

// elemWireBytes is the modelled wire/memory footprint of one packed sparse
// element (8-byte value + 4-byte column id).
const elemWireBytes = 12

// Sparse is one rank's resident window of a row-distributed sparse matrix
// stored as a vector of lists. Elements within a row are kept in insertion
// order; builders that insert by ascending column get sorted rows for free.
type Sparse struct {
	Name       string
	GlobalRows int

	sink CostSink

	lo, hi int
	rows   []*sparseRow
}

// NewSparse creates an empty sparse matrix descriptor; call SetWindow to
// make rows resident. sink may be nil.
func NewSparse(name string, globalRows int, sink CostSink) *Sparse {
	if globalRows <= 0 {
		panic(fmt.Sprintf("matrix: bad sparse rows %d", globalRows))
	}
	return &Sparse{Name: name, GlobalRows: globalRows, sink: sink}
}

// Lo returns the first resident global row.
func (s *Sparse) Lo() int { return s.lo }

// Hi returns one past the last resident global row.
func (s *Sparse) Hi() int { return s.hi }

// Resident reports whether global row g is resident.
func (s *Sparse) Resident(g int) bool { return g >= s.lo && g < s.hi }

func (s *Sparse) row(g int) *sparseRow {
	if g < s.lo || g >= s.hi {
		panic(fmt.Sprintf("matrix: %s sparse row %d outside window [%d,%d)", s.Name, g, s.lo, s.hi))
	}
	if s.rows[g-s.lo] == nil {
		s.rows[g-s.lo] = &sparseRow{}
	}
	return s.rows[g-s.lo]
}

// SetWindow resizes the resident window to [lo,hi), retaining overlapping
// rows. Like the dense Projection scheme, only the top-level vector is
// copied; list nodes of retained rows are reused in place.
func (s *Sparse) SetWindow(lo, hi int) {
	if lo < 0 || hi > s.GlobalRows || lo > hi {
		panic(fmt.Sprintf("matrix: %s bad window [%d,%d) of %d", s.Name, lo, hi, s.GlobalRows))
	}
	oldLo, oldHi, oldRows := s.lo, s.hi, s.rows
	newRows := make([]*sparseRow, hi-lo)
	var dropped int64
	for g := oldLo; g < oldHi; g++ {
		r := oldRows[g-oldLo]
		if r == nil {
			continue
		}
		if g >= lo && g < hi {
			newRows[g-lo] = r
		} else {
			dropped += int64(r.n)
		}
	}
	if s.sink != nil {
		s.sink.AdjustResident(-dropped * elemWireBytes)
		s.sink.ChargeTouch(int64(hi-lo) * 8) // top-level vector copy
	}
	s.lo, s.hi, s.rows = lo, hi, newRows
}

// Append adds (col, val) at the end of global row g.
func (s *Sparse) Append(g int, col int32, val float64) {
	r := s.row(g)
	e := &Elem{Col: col, Val: val}
	if r.tail == nil {
		r.head, r.tail = e, e
	} else {
		r.tail.next = e
		r.tail = e
	}
	r.n++
	if s.sink != nil {
		s.sink.AdjustResident(elemWireBytes)
		s.sink.ChargeTouch(elemWireBytes)
	}
}

// RowLen reports the number of stored elements in global row g.
func (s *Sparse) RowLen(g int) int { return s.row(g).n }

// RowHead returns the first element of global row g (nil if empty), for
// direct traversal when the iterator API is unnecessarily heavy.
func (s *Sparse) RowHead(g int) *Elem { return s.row(g).head }

// NNZ reports the number of stored elements in the resident window.
func (s *Sparse) NNZ() int {
	total := 0
	for _, r := range s.rows {
		if r != nil {
			total += r.n
		}
	}
	return total
}

// RowWireBytes is the modelled packed size of global row g.
func (s *Sparse) RowWireBytes(g int) int { return 8 + elemWireBytes*s.RowLen(g) }

// --- the paper's iterator API (§2.2) --------------------------------------

// Iter walks a sparse matrix element by element with explicit row control:
// "an iterator to access each element of a sparse matrix as well as
// functions to get the next element, set the next element, advance the row,
// and move to the first element."
type Iter struct {
	s   *Sparse
	g   int
	cur *Elem
}

// NewIter returns an iterator positioned at the first element of the first
// resident row (MoveToFirst).
func (s *Sparse) NewIter() *Iter {
	it := &Iter{s: s}
	it.MoveToFirst()
	return it
}

// MoveToFirst repositions at the first element of the first resident row.
func (it *Iter) MoveToFirst() {
	it.g = it.s.lo
	if it.s.lo < it.s.hi {
		it.cur = it.s.row(it.s.lo).head
	} else {
		it.cur = nil
	}
}

// Row reports the global row the iterator is positioned in.
func (it *Iter) Row() int { return it.g }

// Valid reports whether the iterator points at an element of the current row.
func (it *Iter) Valid() bool { return it.cur != nil }

// Elem returns the current element; nil at end of row.
func (it *Iter) Elem() *Elem { return it.cur }

// NextElem advances within the current row and returns the new element
// (nil when the row is exhausted).
func (it *Iter) NextElem() *Elem {
	if it.cur != nil {
		it.cur = it.cur.next
	}
	return it.cur
}

// SetVal overwrites the current element's value ("set the next element").
func (it *Iter) SetVal(v float64) {
	if it.cur == nil {
		panic("matrix: SetVal on exhausted iterator")
	}
	it.cur.Val = v
}

// AdvanceRow moves to the beginning of the next resident row, reporting
// false when no rows remain.
func (it *Iter) AdvanceRow() bool {
	it.g++
	if it.g >= it.s.hi {
		it.cur = nil
		return false
	}
	it.cur = it.s.row(it.g).head
	return true
}

// --- packing for transport (§4.4) ------------------------------------------

// PackedRow is a sparse row converted to vectors for transmission: "when a
// row is sent from one node to another, it must be packed into a vector".
type PackedRow struct {
	Cols []int32
	Vals []float64
}

// WireBytes reports the modelled transport size of the packed row.
func (p PackedRow) WireBytes() int { return 8 + elemWireBytes*len(p.Vals) }

// PackRow converts global row g to vectors, charging the copy cost.
func (s *Sparse) PackRow(g int) PackedRow {
	r := s.row(g)
	p := PackedRow{Cols: make([]int32, 0, r.n), Vals: make([]float64, 0, r.n)}
	for e := r.head; e != nil; e = e.next {
		p.Cols = append(p.Cols, e.Col)
		p.Vals = append(p.Vals, e.Val)
	}
	if s.sink != nil {
		s.sink.ChargeTouch(int64(elemWireBytes * r.n))
	}
	return p
}

// UnpackRow replaces global row g with the packed data, rebuilding the
// linked list ("the row must be unpacked on receipt and converted to a
// list") and charging the conversion cost.
func (s *Sparse) UnpackRow(g int, p PackedRow) {
	if len(p.Cols) != len(p.Vals) {
		panic("matrix: ragged PackedRow")
	}
	r := s.row(g)
	if s.sink != nil {
		s.sink.AdjustResident(int64(elemWireBytes * (len(p.Vals) - r.n)))
		s.sink.ChargeTouch(int64(elemWireBytes * len(p.Vals)))
	}
	r.head, r.tail, r.n = nil, nil, 0
	for i := range p.Vals {
		e := &Elem{Col: p.Cols[i], Val: p.Vals[i]}
		if r.tail == nil {
			r.head, r.tail = e, e
		} else {
			r.tail.next = e
			r.tail = e
		}
		r.n++
	}
}

// PackedRows is a batch of consecutive sparse rows packed into three flat
// vectors for one bulk transfer: row r (0-based within the batch) occupies
// Cols/Vals[Starts[r]:Starts[r+1]]. It replaces a []PackedRow payload with a
// single reusable allocation.
type PackedRows struct {
	Starts []int32 // len rows+1, prefix offsets into Cols/Vals
	Cols   []int32
	Vals   []float64
}

// Rows reports the number of packed rows.
func (p *PackedRows) Rows() int { return len(p.Starts) - 1 }

// WireBytes reports the modelled transport size: identical, byte for byte,
// to the sum of the per-row PackedRow.WireBytes values.
func (p *PackedRows) WireBytes() int { return 8*p.Rows() + elemWireBytes*len(p.Vals) }

// Reset empties the batch for reuse, keeping the backing arrays.
func (p *PackedRows) Reset() {
	p.Starts, p.Cols, p.Vals = p.Starts[:0], p.Cols[:0], p.Vals[:0]
}

// PackRowsTo appends global rows [lo,hi) to the batch, charging exactly the
// per-row PackRow cost (one elemWireBytes*n touch per row, in row order).
func (s *Sparse) PackRowsTo(p *PackedRows, lo, hi int) {
	if len(p.Starts) == 0 {
		p.Starts = append(p.Starts, 0)
	}
	for g := lo; g < hi; g++ {
		r := s.row(g)
		for e := r.head; e != nil; e = e.next {
			p.Cols = append(p.Cols, e.Col)
			p.Vals = append(p.Vals, e.Val)
		}
		p.Starts = append(p.Starts, int32(len(p.Vals)))
		if s.sink != nil {
			s.sink.ChargeTouch(int64(elemWireBytes * r.n))
		}
	}
}

// UnpackRows replaces global rows [lo, lo+p.Rows()) with the batch contents,
// rebuilding each linked list with exactly the per-row UnpackRow cost
// (resident-size adjustment plus one conversion touch per row, in row
// order).
func (s *Sparse) UnpackRows(lo int, p *PackedRows) {
	if len(p.Cols) != len(p.Vals) {
		panic("matrix: ragged PackedRows")
	}
	for i := 0; i < p.Rows(); i++ {
		r := s.row(lo + i)
		start, end := int(p.Starts[i]), int(p.Starts[i+1])
		if s.sink != nil {
			s.sink.AdjustResident(int64(elemWireBytes * (end - start - r.n)))
			s.sink.ChargeTouch(int64(elemWireBytes * (end - start)))
		}
		r.head, r.tail, r.n = nil, nil, 0
		for j := start; j < end; j++ {
			e := &Elem{Col: p.Cols[j], Val: p.Vals[j]}
			if r.tail == nil {
				r.head, r.tail = e, e
			} else {
				r.tail.next = e
				r.tail = e
			}
			r.n++
		}
	}
}

// ClearRow empties global row g (used after its contents were packed and
// shipped away, before the window shrinks).
func (s *Sparse) ClearRow(g int) {
	r := s.row(g)
	if s.sink != nil {
		s.sink.AdjustResident(int64(-elemWireBytes * r.n))
	}
	r.head, r.tail, r.n = nil, nil, 0
}
