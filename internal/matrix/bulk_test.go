package matrix

import (
	"testing"
)

// Bulk (slab) pack/unpack paths must move the same data and charge the same
// virtual costs as their per-row counterparts — they are host-side batching
// optimisations, invisible to the simulation model.

func TestDenseCopyRowsToMatchesRows(t *testing.T) {
	for _, scheme := range []Alloc{Projection, Contiguous} {
		d := NewDense("A", 20, 3, scheme, nil)
		d.SetWindow(5, 15)
		d.Fill(fillVal)
		slab := make([]float64, 4*3)
		d.CopyRowsTo(slab, 8, 12)
		for g := 8; g < 12; g++ {
			for j := 0; j < 3; j++ {
				if slab[(g-8)*3+j] != fillVal(g, j) {
					t.Fatalf("%v slab[%d][%d] = %v, want %v", scheme, g, j, slab[(g-8)*3+j], fillVal(g, j))
				}
			}
		}
	}
}

func TestDenseCopyRowsToChargesNothing(t *testing.T) {
	sink := &recordSink{}
	d := NewDense("A", 20, 3, Contiguous, sink)
	d.SetWindow(0, 20)
	before := sink.touched
	d.CopyRowsTo(make([]float64, 5*3), 2, 7)
	if sink.touched != before {
		t.Fatalf("CopyRowsTo charged %d bytes, want 0", sink.touched-before)
	}
}

func TestDensePutRowsMatchesPutRowCharges(t *testing.T) {
	for _, scheme := range []Alloc{Projection, Contiguous} {
		bulkSink, rowSink := &recordSink{}, &recordSink{}
		bulk := NewDense("A", 20, 3, scheme, bulkSink)
		perRow := NewDense("A", 20, 3, scheme, rowSink)
		bulk.SetWindow(5, 15)
		perRow.SetWindow(5, 15)
		bulkSink.touched, rowSink.touched = 0, 0

		slab := make([]float64, 4*3)
		for i := range slab {
			slab[i] = float64(i + 100)
		}
		bulk.PutRows(8, slab)
		for g := 8; g < 12; g++ {
			row := make([]float64, 3)
			copy(row, slab[(g-8)*3:])
			perRow.PutRow(g, row)
		}
		if bulkSink.touched != rowSink.touched {
			t.Fatalf("%v PutRows charged %d, PutRow path charged %d", scheme, bulkSink.touched, rowSink.touched)
		}
		for g := 8; g < 12; g++ {
			for j := 0; j < 3; j++ {
				if bulk.Row(g)[j] != perRow.Row(g)[j] {
					t.Fatalf("%v row %d col %d: bulk %v per-row %v", scheme, g, j, bulk.Row(g)[j], perRow.Row(g)[j])
				}
			}
		}
	}
}

func TestDensePutRowsValidates(t *testing.T) {
	d := NewDense("A", 20, 3, Projection, nil)
	d.SetWindow(5, 15)
	for _, tc := range []struct {
		name string
		lo   int
		slab []float64
	}{
		{"ragged", 8, make([]float64, 4)},
		{"below", 4, make([]float64, 3)},
		{"above", 14, make([]float64, 6)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			d.PutRows(tc.lo, tc.slab)
		}()
	}
}

func buildBulkSparse(sink CostSink) *Sparse {
	s := NewSparse("S", 10, sink)
	s.SetWindow(0, 10)
	for g := 0; g < 10; g++ {
		for k := 0; k <= g%4; k++ {
			s.Append(g, int32(k*2), float64(g*10+k))
		}
	}
	return s
}

func TestSparsePackRowsToMatchesPackRow(t *testing.T) {
	bulkSink, rowSink := &recordSink{}, &recordSink{}
	bulk := buildBulkSparse(bulkSink)
	perRow := buildBulkSparse(rowSink)
	bulkSink.touched, rowSink.touched = 0, 0

	var p PackedRows
	bulk.PackRowsTo(&p, 2, 8)
	wantBytes := 0
	off := 0
	for g := 2; g < 8; g++ {
		pr := perRow.PackRow(g)
		wantBytes += pr.WireBytes()
		if int(p.Starts[g-2]) != off {
			t.Fatalf("row %d start %d, want %d", g, p.Starts[g-2], off)
		}
		for i := range pr.Vals {
			if p.Cols[off+i] != pr.Cols[i] || p.Vals[off+i] != pr.Vals[i] {
				t.Fatalf("row %d elem %d mismatch", g, i)
			}
		}
		off += len(pr.Vals)
	}
	if p.Rows() != 6 || int(p.Starts[6]) != off {
		t.Fatalf("batch shape rows=%d end=%d want 6/%d", p.Rows(), p.Starts[6], off)
	}
	if p.WireBytes() != wantBytes {
		t.Fatalf("WireBytes %d, per-row sum %d", p.WireBytes(), wantBytes)
	}
	if bulkSink.touched != rowSink.touched {
		t.Fatalf("PackRowsTo charged %d, PackRow path charged %d", bulkSink.touched, rowSink.touched)
	}
}

func TestSparseUnpackRowsMatchesUnpackRow(t *testing.T) {
	src := buildBulkSparse(nil)
	var p PackedRows
	src.PackRowsTo(&p, 2, 8)

	bulkSink, rowSink := &recordSink{}, &recordSink{}
	bulk := buildBulkSparse(bulkSink)
	perRow := buildBulkSparse(rowSink)
	bulkSink.touched, bulkSink.resident = 0, 0
	rowSink.touched, rowSink.resident = 0, 0

	bulk.UnpackRows(2, &p)
	for g := 2; g < 8; g++ {
		perRow.UnpackRow(g, src.PackRow(g))
	}
	// Charge both the same (src.PackRow above used a nil sink).
	if bulkSink.touched != rowSink.touched || bulkSink.resident != rowSink.resident {
		t.Fatalf("UnpackRows charged touch=%d resident=%d, per-row path touch=%d resident=%d",
			bulkSink.touched, bulkSink.resident, rowSink.touched, rowSink.resident)
	}
	for g := 2; g < 8; g++ {
		eb, ep := bulk.RowHead(g), perRow.RowHead(g)
		for eb != nil || ep != nil {
			if eb == nil || ep == nil || eb.Col != ep.Col || eb.Val != ep.Val {
				t.Fatalf("row %d content mismatch", g)
			}
			eb, ep = eb.Next(), ep.Next()
		}
	}
}

func TestSparsePackRowsToReset(t *testing.T) {
	s := buildBulkSparse(nil)
	var p PackedRows
	s.PackRowsTo(&p, 0, 5)
	colsCap, valsCap := cap(p.Cols), cap(p.Vals)
	p.Reset()
	if p.Rows() != -1 && len(p.Starts) != 0 {
		t.Fatalf("Reset left %d starts", len(p.Starts))
	}
	s.PackRowsTo(&p, 0, 5)
	if cap(p.Cols) != colsCap || cap(p.Vals) != valsCap {
		t.Fatal("Reset did not retain backing arrays")
	}
	if p.Rows() != 5 {
		t.Fatalf("repacked rows = %d", p.Rows())
	}
}

func TestSparseUnpackRowsRagged(t *testing.T) {
	s := buildBulkSparse(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.UnpackRows(0, &PackedRows{Starts: []int32{0, 1}, Cols: []int32{1}, Vals: nil})
}
