package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// TestGatherCheaperThanAllgather pins the gather pricing bug this engine
// fixes: Gather used to be priced as a full Allgather, but the modelled
// root-terminated binomial gather moves only n-1 contribution blocks in
// total (recursive halving toward the root), so for any group of at least 4
// members with a non-empty payload it must be strictly cheaper on both the
// wire and the per-member CPU charge.
func TestGatherCheaperThanAllgather(t *testing.T) {
	net := cluster.DefaultNet()
	for _, n := range []int{4, 5, 8, 16, 64, 256, 1024} {
		for _, bytes := range []int{8, 1024, 1 << 20} {
			ga := gatherCost(net, n, bytes)
			ag := allgatherCost(net, n, bytes)
			if ga.wire >= ag.wire {
				t.Errorf("n=%d bytes=%d: gather wire %v >= allgather wire %v", n, bytes, ga.wire, ag.wire)
			}
			if ga.cpuEach >= ag.cpuEach {
				t.Errorf("n=%d bytes=%d: gather cpu %v >= allgather cpu %v", n, bytes, ga.cpuEach, ag.cpuEach)
			}
		}
	}
}

// TestGatherFinishBeatsAllgatherInWorld is the world-level counterpart:
// identical groups running one Gather and one Allgather of the same payload
// must observe the gather completing strictly earlier in virtual time, and
// non-root members must receive nil from the gather (no free copy of the
// gathered slice).
func TestGatherFinishBeatsAllgatherInWorld(t *testing.T) {
	const n, bytes = 8, 4096
	err := Run(cluster.New(cluster.Uniform(n)), func(c *Comm) error {
		g := c.World().AllGroup()
		start := c.Now()
		res := c.Gather(g, 0, c.Rank(), bytes)
		gatherT := c.Now().Sub(start)
		if c.Rank() == 0 {
			if len(res) != n {
				t.Errorf("root gathered %d contributions, want %d", len(res), n)
			}
		} else if res != nil {
			t.Errorf("rank %d: non-root gather result non-nil", c.Rank())
		}
		start = c.Now()
		c.Allgather(g, c.Rank(), bytes)
		allgatherT := c.Now().Sub(start)
		if gatherT >= allgatherT {
			t.Errorf("rank %d: gather took %v, allgather %v — gather must be strictly cheaper", c.Rank(), gatherT, allgatherT)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveCostMonotone is the cost-model property test: for every
// collective shape, both the wire time (which extends the group finish time)
// and the per-member CPU charge must be monotone non-decreasing in the group
// size and in the payload bytes. A dip in either direction would let a
// *larger* problem finish earlier, which breaks the adaptation logic's
// predicted-time comparisons.
func TestCollectiveCostMonotone(t *testing.T) {
	net := cluster.DefaultNet()
	sizes := make([]int, 0, 140)
	for n := 1; n <= 130; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 256, 511, 512, 513, 1024)
	payloads := []int{0, 8, 64, 512, 4096, 1 << 16, 1 << 20}

	models := []struct {
		name string
		cost func(n, bytes int) collCost
	}{
		{"barrier", func(n, _ int) collCost { return barrierCost(net, n) }},
		{"bcast", func(n, b int) collCost { return bcastCost(net, n, b) }},
		{"allreduce", func(n, b int) collCost { return allreduceCost(net, n, b) }},
		{"allgather", func(n, b int) collCost { return allgatherCost(net, n, b) }},
		{"gather", func(n, b int) collCost { return gatherCost(net, n, b) }},
	}
	for _, m := range models {
		// Monotone in group size for every fixed payload.
		for _, b := range payloads {
			prev := m.cost(sizes[0], b)
			for _, n := range sizes[1:] {
				cur := m.cost(n, b)
				if cur.wire < prev.wire || cur.cpuEach < prev.cpuEach {
					t.Errorf("%s: cost not monotone in n at n=%d bytes=%d: %v/%v after %v/%v",
						m.name, n, b, cur.wire, cur.cpuEach, prev.wire, prev.cpuEach)
				}
				prev = cur
			}
		}
		// Monotone in payload for every fixed group size.
		for _, n := range sizes {
			prev := m.cost(n, payloads[0])
			for _, b := range payloads[1:] {
				cur := m.cost(n, b)
				if cur.wire < prev.wire || cur.cpuEach < prev.cpuEach {
					t.Errorf("%s: cost not monotone in bytes at n=%d bytes=%d: %v/%v after %v/%v",
						m.name, n, b, cur.wire, cur.cpuEach, prev.wire, prev.cpuEach)
				}
				prev = cur
			}
		}
	}
}

// TestCollectiveFinishMonotoneInWorld spot-checks the property at world
// level: the virtual time a barrier+allreduce pair takes must not decrease
// when the group grows or the vector lengthens.
func TestCollectiveFinishMonotoneInWorld(t *testing.T) {
	elapsed := func(n, elems int) vclock.Duration {
		var d vclock.Duration
		err := Run(cluster.New(cluster.Uniform(n)), func(c *Comm) error {
			g := c.World().AllGroup()
			buf := make([]float64, elems)
			c.Barrier(g)
			c.AllreduceF64sInto(g, buf, Sum)
			if c.Rank() == 0 {
				d = c.Now().Sub(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	prev := elapsed(2, 16)
	for _, n := range []int{3, 4, 8, 17, 32} {
		cur := elapsed(n, 16)
		if cur < prev {
			t.Errorf("finish time decreased growing group to %d: %v after %v", n, cur, prev)
		}
		prev = cur
	}
	prev = elapsed(8, 1)
	for _, elems := range []int{16, 64, 1024} {
		cur := elapsed(8, elems)
		if cur < prev {
			t.Errorf("finish time decreased growing vector to %d: %v after %v", elems, cur, prev)
		}
		prev = cur
	}
}
