package mpi

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// These tests pin the opResult-leak fix: every collective rendezvous slot
// must be fully drained at World.Run exit no matter how many members crash,
// and no matter whether they crash before, during, or after an error-
// published collective. The pre-sharding engine leaked one opResult per
// member that died after a collective failure was published (it was counted
// as a live consumer but could never consume); World.Kill's orphan-adoption
// walk reclaims exactly that share.

// shrinkTo removes the dead ranks named by err from members, in place.
func shrinkTo(t *testing.T, members []int, err error) []int {
	t.Helper()
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("want RankFailedError, got %v", err)
	}
	keep := members[:0]
	for _, m := range members {
		dead := false
		for _, d := range rf.Ranks {
			if m == d {
				dead = true
			}
		}
		if !dead {
			keep = append(keep, m)
		}
	}
	return keep
}

// TestCrashLeavesNoLeakedOps drives every collective family through a run
// where two ranks crash at different cycles, and asserts that no rendezvous
// slot is left undrained at exit. The mix includes the pooled (*Into)
// collectives, so the pool-box bookkeeping is exercised on both the success
// and the error-drain path.
func TestCrashLeavesNoLeakedOps(t *testing.T) {
	spec := cluster.Uniform(6)
	spec.Faults = []fault.Fault{
		fault.CrashAtCycle(4, 2),
		fault.CrashAtCycle(1, 5),
	}
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		members := []int{0, 1, 2, 3, 4, 5}
		buf := make([]float64, 32)
		gath := make([]float64, 6)
		for cycle := 0; cycle < 8; cycle++ {
			c.InjectCycleFaults(cycle)
			g := c.World().NewGroup(members)
			if err := c.BarrierErr(g); err != nil {
				members = shrinkTo(t, members, err)
				continue
			}
			if err := c.AllreduceF64sIntoErr(g, buf, Sum); err != nil {
				members = shrinkTo(t, members, err)
				continue
			}
			if _, err := c.AllreduceSumErr(g, float64(cycle)); err != nil {
				members = shrinkTo(t, members, err)
				continue
			}
			if err := c.AllgatherF64sIntoErr(g, float64(c.Rank()), gath[:g.Size()]); err != nil {
				members = shrinkTo(t, members, err)
				continue
			}
			c.Node().Compute(vclock.FromSeconds(0.001))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d rendezvous slots leaked after crash run, want 0", n)
	}
}

// TestCrashOrphanAdoptionDrainsPublishedError is the targeted orphan
// scenario: rank 2 crashes before a barrier, the error publishes counting
// ranks 0 and 1 as consumers, and rank 1 crashes without ever entering the
// collective. Without Kill's adoption walk, rank 1's unconsumed share would
// pin the slot forever; the drain must succeed regardless of whether rank 1
// dies before or after the error is published (both interleavings occur
// across runs, and both are covered: a member dead at publication time is
// pre-marked consumed, one dying later is adopted).
func TestCrashOrphanAdoptionDrainsPublishedError(t *testing.T) {
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{
		fault.CrashAtCycle(2, 0),
		fault.CrashAtCycle(1, 1),
	}
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		c.InjectCycleFaults(0) // kills rank 2 before any deposit
		if c.Rank() == 1 {
			c.InjectCycleFaults(1) // kills rank 1; it never joins the barrier
			return errors.New("crash fault did not fire")
		}
		if c.Rank() == 0 {
			err := c.BarrierErr(c.World().AllGroup())
			var rf *RankFailedError
			if !errors.As(err, &rf) {
				return errors.New("want RankFailedError, got " + errString(err))
			}
			// The survivor keeps working over the shrunken group.
			return c.BarrierErr(c.World().NewGroup([]int{0}))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d rendezvous slots leaked after orphaned error, want 0", n)
	}
}

// TestCrashDuringRingReuseLeavesNoLeaks cycles groups through all opRing
// generations with a mid-run crash, so slot recycling (the generation gate)
// and the failure drain compose: every generation touched before, at, and
// after the death must drain.
func TestCrashDuringRingReuseLeavesNoLeaks(t *testing.T) {
	spec := cluster.Uniform(4)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(3, 2*opRing+1)}
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		members := []int{0, 1, 2, 3}
		for cycle := 0; cycle < 6*opRing; cycle++ {
			c.InjectCycleFaults(cycle)
			g := c.World().NewGroup(members)
			if _, err := c.AllreduceSumErr(g, 1); err != nil {
				members = shrinkTo(t, members, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d rendezvous slots leaked across ring reuse, want 0", n)
	}
}

// TestCrashMidWaitLeavesNoLeaks is the nonblocking-layer counterpart of the
// collective crash tests: a rank dies with receives pending on both sides
// of the wire. Its own posted requests are orphans that Kill must clear;
// the survivors' requests targeting it must resolve to a RankFailedError
// naming the dead rank (from WaitErr and from Waitall), the unrelated
// requests in the same Waitall must still drain, and no posted-request slot
// may leak at exit.
func TestCrashMidWaitLeavesNoLeaks(t *testing.T) {
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 1)}
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 2:
			// Die with our own receives posted — orphans Kill must clear.
			c.Irecv(0, 8)
			c.Irecv(1, 9)
			c.InjectCycleFaults(1)
			return errors.New("crash fault did not fire")
		case 0:
			rq := c.Irecv(2, 5)
			snd := c.Isend(2, 5, nil, 64)
			if _, _, err := c.WaitErr(snd); err != nil {
				return err // send requests complete at post
			}
			_, _, err := c.WaitErr(rq)
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Op != "irecv" || len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
				return errors.New("want irecv RankFailedError naming rank 2, got " + errString(err))
			}
			// The survivors keep talking after the death.
			c.Send(1, 7, "alive", 8)
			return nil
		default:
			r2 := c.Irecv(2, 6)
			r0 := c.Irecv(0, 7)
			err := c.Waitall([]*Request{r2, r0})
			var rf *RankFailedError
			if !errors.As(err, &rf) || rf.Op != "waitall" || len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
				return errors.New("want waitall RankFailedError naming rank 2, got " + errString(err))
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d posted requests leaked after crash, want 0", n)
	}
}
