// Package mpi is a pure-Go message-passing substrate with MPI-like
// semantics, used as the transport underneath the Dyn-MPI runtime. Ranks
// are goroutines inside one process; messages carry real data; every
// operation advances the virtual clocks of the participating nodes
// according to the cluster's network model.
//
// Cost model (see cluster.NetParams): a message of b bytes is available to
// the receiver Latency + b/BytesPerSec after the send; in addition each
// side spends CPUPerMsg + b*CPUPerByte of CPU. The CPU component runs under
// the node's scheduler and is therefore inflated by competing processes —
// the effect that makes communication-aware data distributions necessary.
//
// Point-to-point operations are eager (buffered): Send completes once the
// local CPU work is done; Recv blocks until a matching message is available
// on the virtual clock. Collectives operate on a Group (a subset of world
// ranks) and leave all participants at a common completion time, modelling
// a binomial-tree implementation.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// errFailed is the panic value used to unwind ranks when the world has
// failed; Run converts it back into the original error.
var errFailed = errors.New("mpi: world failed")

// envelope is one in-flight message.
type envelope struct {
	src, tag int
	payload  any
	bytes    int
	avail    vclock.Time // when the data has fully arrived at the receiver
}

// mailbox is one rank's incoming queue with condition-variable matching.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*envelope
}

// World owns the shared state of one simulated run: mailboxes, the default
// all-ranks group, and failure propagation.
type World struct {
	cl     *cluster.Cluster
	n      int
	boxes  []*mailbox
	all    *Group
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
	groups struct {
		sync.Mutex
		list  []*Group
		byKey map[string]*Group
	}
}

// NewWorld creates a world with one rank per cluster node.
func NewWorld(cl *cluster.Cluster) *World {
	w := &World{cl: cl, n: cl.N()}
	w.boxes = make([]*mailbox, w.n)
	for i := range w.boxes {
		b := &mailbox{}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
	}
	members := make([]int, w.n)
	for i := range members {
		members[i] = i
	}
	w.all = w.NewGroup(members)
	return w
}

// N reports the number of ranks.
func (w *World) N() int { return w.n }

// Cluster returns the underlying cluster model.
func (w *World) Cluster() *cluster.Cluster { return w.cl }

// fail records the first error and wakes every blocked rank so the whole
// world unwinds instead of deadlocking.
func (w *World) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.failed.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.groups.Lock()
	for _, g := range w.groups.list {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	w.groups.Unlock()
}

// Err returns the first error recorded by fail.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Comm is one rank's endpoint. All methods must be called from the rank's
// own goroutine.
type Comm struct {
	w    *World
	rank int
	node *cluster.Node

	// Traffic counters, maintained by this rank only.
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
}

// NewComm returns rank r's endpoint. Typically Run constructs these.
func (w *World) NewComm(r int) *Comm {
	return &Comm{w: w, rank: r, node: w.cl.Node(r)}
}

// Rank reports this endpoint's world rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the world size.
func (c *Comm) Size() int { return c.w.n }

// Node returns the cluster node this rank runs on.
func (c *Comm) Node() *cluster.Node { return c.node }

// World returns the communicator's world.
func (c *Comm) World() *World { return c.w }

// Now reports the rank's current virtual time.
func (c *Comm) Now() vclock.Time { return c.node.Now() }

func (c *Comm) checkFailed() {
	if c.w.failed.Load() {
		panic(errFailed)
	}
}

// cpuCost returns the per-side CPU cost of transferring b bytes.
func cpuCost(net cluster.NetParams, b int) vclock.Duration {
	return net.CPUPerMsg + vclock.Duration(float64(b)*net.CPUPerByte)
}

// wireTime returns the latency+bandwidth component for b bytes.
func wireTime(net cluster.NetParams, b int) vclock.Duration {
	return net.Latency + vclock.FromSeconds(float64(b)/net.BytesPerSec)
}

// Send transfers payload (bytes long on the wire) to rank dst with the
// given tag. The payload is handed over by reference: the sender must not
// mutate it afterwards (ownership transfer, as in a zero-copy MPI).
func (c *Comm) Send(dst, tag int, payload any, bytes int) {
	c.checkFailed()
	if dst < 0 || dst >= c.w.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	net := c.w.cl.Net()
	c.node.Compute(cpuCost(net, bytes))
	env := &envelope{
		src:     c.rank,
		tag:     tag,
		payload: payload,
		bytes:   bytes,
		avail:   c.node.Now().Add(wireTime(net, bytes)),
	}
	c.SentMsgs++
	c.SentBytes += int64(bytes)
	box := c.w.boxes[dst]
	box.mu.Lock()
	box.queue = append(box.queue, env)
	box.cond.Broadcast()
	box.mu.Unlock()
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Recv blocks until a message matching (src, tag) is available, advances
// the virtual clock to its arrival, charges receive-side CPU, and returns
// the payload. src may be AnySource and tag AnyTag; note that AnySource
// matching order depends on physical goroutine scheduling and is therefore
// only deterministic when at most one candidate sender exists.
func (c *Comm) Recv(src, tag int) (any, Status) {
	c.checkFailed()
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	var env *envelope
	for {
		idx := -1
		for i, e := range box.queue {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				idx = i
				break
			}
		}
		if idx >= 0 {
			env = box.queue[idx]
			box.queue = append(box.queue[:idx], box.queue[idx+1:]...)
			break
		}
		if c.w.failed.Load() {
			box.mu.Unlock()
			panic(errFailed)
		}
		box.cond.Wait()
	}
	box.mu.Unlock()
	c.node.WaitUntil(env.avail)
	c.node.Compute(cpuCost(c.w.cl.Net(), env.bytes))
	c.RecvMsgs++
	c.RecvBytes += int64(env.bytes)
	return env.payload, Status{Source: env.src, Tag: env.tag, Bytes: env.bytes}
}

// RecvF64s receives a []float64 payload, panicking on type mismatch.
func (c *Comm) RecvF64s(src, tag int) ([]float64, Status) {
	p, st := c.Recv(src, tag)
	v, ok := p.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d expected []float64 from %d tag %d, got %T", c.rank, st.Source, st.Tag, p))
	}
	return v, st
}

// F64Bytes reports the wire size of n float64 values.
func F64Bytes(n int) int { return 8 * n }

// Abort fails the whole world with err and unwinds the calling rank.
func (c *Comm) Abort(err error) {
	c.w.fail(err)
	panic(errFailed)
}

// --- SPMD harness --------------------------------------------------------

// Run spawns one goroutine per cluster node executing fn and waits for all
// of them. The first error (returned or panicked) aborts the whole world.
func Run(cl *cluster.Cluster, fn func(*Comm) error) error {
	w := NewWorld(cl)
	return w.Run(fn)
}

// Run executes fn on every rank of an existing world.
func (w *World) Run(fn func(*Comm) error) error {
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := w.NewComm(rank)
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok && errors.Is(err, errFailed) {
						return // unwound by another rank's failure
					}
					w.fail(fmt.Errorf("rank %d panicked: %v", rank, p))
				}
			}()
			if err := fn(comm); err != nil {
				w.fail(fmt.Errorf("rank %d: %w", rank, err))
			}
		}(r)
	}
	wg.Wait()
	return w.Err()
}

// --- groups and collectives ----------------------------------------------

// Group is a subset of world ranks that participates in collectives
// together. All members must call each collective in the same order.
type Group struct {
	w       *World
	members []int       // world ranks
	slot    map[int]int // world rank -> index in members

	mu         sync.Mutex
	cond       *sync.Cond
	seq        []int64 // per-slot local op counter (written only by owner)
	collecting map[int64]*pending
	results    map[int64]*opResult
}

type pending struct {
	arrived  int
	times    []vclock.Time
	contribs []any
}

type opResult struct {
	value     any
	finish    vclock.Time
	cpuEach   vclock.Duration
	remaining int
}

// NewGroup returns the collective group over the given world ranks. Groups
// are canonical: every rank asking for the same member list receives the
// *same* Group object, which is what lets SPMD ranks rebuild a group after
// a membership change and still meet in its collectives.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("mpi: empty group")
	}
	key := fmt.Sprint(members)
	w.groups.Lock()
	if w.groups.byKey == nil {
		w.groups.byKey = make(map[string]*Group)
	}
	if g, ok := w.groups.byKey[key]; ok {
		w.groups.Unlock()
		return g
	}
	w.groups.Unlock()
	g := &Group{
		w:          w,
		members:    append([]int(nil), members...),
		slot:       make(map[int]int, len(members)),
		seq:        make([]int64, len(members)),
		collecting: make(map[int64]*pending),
		results:    make(map[int64]*opResult),
	}
	g.cond = sync.NewCond(&g.mu)
	for i, m := range members {
		if _, dup := g.slot[m]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in group", m))
		}
		g.slot[m] = i
	}
	w.groups.Lock()
	if prior, ok := w.groups.byKey[key]; ok {
		// Another rank registered the same group concurrently; use theirs.
		w.groups.Unlock()
		return prior
	}
	w.groups.byKey[key] = g
	w.groups.list = append(w.groups.list, g)
	w.groups.Unlock()
	return g
}

// AllGroup returns the group containing every world rank.
func (w *World) AllGroup() *Group { return w.all }

// Members returns the group's world ranks (callers must not mutate).
func (g *Group) Members() []int { return g.members }

// Size reports the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Slot reports rank's index within the group and whether it is a member.
func (g *Group) Slot(rank int) (int, bool) {
	s, ok := g.slot[rank]
	return s, ok
}

// steps returns the binomial-tree depth for the group size.
func (g *Group) steps() int {
	if len(g.members) <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(len(g.members)))))
}

// reduceFn combines all members' arrival times and contributions into the
// op's result value, completion time, and per-member CPU charge.
type reduceFn func(times []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration)

// rendezvous is the generic collective: every member deposits a
// contribution; the last to arrive runs reduce; everyone leaves with the
// result, their clock advanced to the completion time plus the CPU charge.
func (c *Comm) rendezvous(g *Group, contrib any, reduce reduceFn) any {
	c.checkFailed()
	slot, ok := g.slot[c.rank]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in group", c.rank))
	}
	seq := g.seq[slot]
	g.seq[slot]++

	g.mu.Lock()
	p := g.collecting[seq]
	if p == nil {
		p = &pending{
			times:    make([]vclock.Time, len(g.members)),
			contribs: make([]any, len(g.members)),
		}
		g.collecting[seq] = p
	}
	p.times[slot] = c.node.Now()
	p.contribs[slot] = contrib
	p.arrived++
	if p.arrived == len(g.members) {
		// Run the reduction outside the lock: every contribution is in and
		// immutable, and a panicking reduction (bad payload shapes) must
		// fail the world rather than deadlock it by unwinding with the
		// mutex held.
		delete(g.collecting, seq)
		g.mu.Unlock()
		value, finish, cpu, err := safeReduce(reduce, p.times, p.contribs)
		if err != nil {
			c.w.fail(fmt.Errorf("rank %d: collective reduction: %w", c.rank, err))
			panic(errFailed)
		}
		g.mu.Lock()
		g.results[seq] = &opResult{value: value, finish: finish, cpuEach: cpu, remaining: len(g.members)}
		g.cond.Broadcast()
	} else {
		for g.results[seq] == nil {
			if c.w.failed.Load() {
				g.mu.Unlock()
				panic(errFailed)
			}
			g.cond.Wait()
		}
	}
	r := g.results[seq]
	r.remaining--
	if r.remaining == 0 {
		delete(g.results, seq)
	}
	g.mu.Unlock()

	c.node.WaitUntil(r.finish)
	if r.cpuEach > 0 {
		c.node.Compute(r.cpuEach)
	}
	return r.value
}

// safeReduce runs a reduction, converting panics into errors.
func safeReduce(reduce reduceFn, times []vclock.Time, contribs []any) (value any, finish vclock.Time, cpu vclock.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	value, finish, cpu = reduce(times, contribs)
	return value, finish, cpu, nil
}

// maxTime returns the latest of ts.
func maxTime(ts []vclock.Time) vclock.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// Barrier synchronises the group.
func (c *Comm) Barrier(g *Group) {
	net := c.w.cl.Net()
	steps := g.steps()
	c.rendezvous(g, nil, func(ts []vclock.Time, _ []any) (any, vclock.Time, vclock.Duration) {
		finish := maxTime(ts).Add(vclock.Duration(steps) * net.Latency)
		return nil, finish, vclock.Duration(steps) * net.CPUPerMsg
	})
}

// Bcast distributes the root's payload (of the given wire size) to every
// group member and returns it. root is a world rank.
func (c *Comm) Bcast(g *Group, root int, payload any, bytes int) any {
	net := c.w.cl.Net()
	steps := g.steps()
	rootSlot, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: bcast root %d not in group", root))
	}
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.rendezvous(g, contrib, func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		per := wireTime(net, bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return contribs[rootSlot], finish, vclock.Duration(steps) * cpuCost(net, bytes)
	})
}

// AllreduceF64s performs an element-wise reduction of each member's vector
// with op and returns the reduced vector (a fresh slice) on every member.
func (c *Comm) AllreduceF64s(g *Group, vals []float64, op func(a, b float64) float64) []float64 {
	net := c.w.cl.Net()
	steps := g.steps()
	bytes := F64Bytes(len(vals))
	res := c.rendezvous(g, vals, func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		out := append([]float64(nil), contribs[0].([]float64)...)
		for _, cb := range contribs[1:] {
			v := cb.([]float64)
			if len(v) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			for i := range out {
				out[i] = op(out[i], v[i])
			}
		}
		per := wireTime(net, bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return out, finish, vclock.Duration(steps) * cpuCost(net, bytes)
	})
	return res.([]float64)
}

// Sum and Max are common allreduce operators.
func Sum(a, b float64) float64 { return a + b }

// Max returns the larger of a and b (allreduce operator).
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AllreduceSum reduces a single value by summation.
func (c *Comm) AllreduceSum(g *Group, v float64) float64 {
	return c.AllreduceF64s(g, []float64{v}, Sum)[0]
}

// AllreduceMax reduces a single value by maximum.
func (c *Comm) AllreduceMax(g *Group, v float64) float64 {
	return c.AllreduceF64s(g, []float64{v}, Max)[0]
}

// Allgather collects every member's contribution, ordered by group slot,
// on every member. bytes is the wire size of one contribution.
func (c *Comm) Allgather(g *Group, contrib any, bytes int) []any {
	net := c.w.cl.Net()
	steps := g.steps()
	res := c.rendezvous(g, contrib, func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		out := append([]any(nil), contribs...)
		// Recursive doubling: in step k each node exchanges 2^k
		// contributions, so the dominant cost is the last step carrying
		// half the total payload.
		total := bytes * len(g.members)
		per := wireTime(net, total/2+bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return out, finish, vclock.Duration(steps) * cpuCost(net, total/2+bytes)
	})
	return res.([]any)
}

// AllgatherF64 gathers one float64 per member, ordered by slot.
func (c *Comm) AllgatherF64(g *Group, v float64) []float64 {
	parts := c.Allgather(g, v, 8)
	out := make([]float64, len(parts))
	for i, p := range parts {
		out[i] = p.(float64)
	}
	return out
}

// AllgatherInt gathers one int per member, ordered by slot.
func (c *Comm) AllgatherInt(g *Group, v int) []int {
	parts := c.Allgather(g, v, 8)
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = p.(int)
	}
	return out
}

// Gather collects contributions on root (world rank); root receives the
// slot-ordered slice, everyone else nil.
func (c *Comm) Gather(g *Group, root int, contrib any, bytes int) []any {
	all := c.Allgather(g, contrib, bytes) // gather modelled as allgather; cost shape is close enough
	if c.rank != root {
		return nil
	}
	return all
}
