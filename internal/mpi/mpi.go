// Package mpi is a pure-Go message-passing substrate with MPI-like
// semantics, used as the transport underneath the Dyn-MPI runtime. Ranks
// are goroutines inside one process; messages carry real data; every
// operation advances the virtual clocks of the participating nodes
// according to the cluster's network model.
//
// Cost model (see cluster.NetParams): a message of b bytes is available to
// the receiver Latency + b/BytesPerSec after the send; in addition each
// side spends CPUPerMsg + b*CPUPerByte of CPU. The CPU component runs under
// the node's scheduler and is therefore inflated by competing processes —
// the effect that makes communication-aware data distributions necessary.
//
// Point-to-point operations are eager (buffered): Send completes once the
// local CPU work is done; Recv blocks until a matching message is available
// on the virtual clock. Collectives operate on a Group (a subset of world
// ranks) and leave all participants at a common completion time; each
// collective is priced by the tree-shaped algorithm it models (see
// cost.go) and executed by the sharded rendezvous engine (see engine.go).
package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// errFailed is the panic value used to unwind ranks when the world has
// failed; Run converts it back into the original error.
var errFailed = errors.New("mpi: world failed")

// envelope is one in-flight message. Envelopes are stored by value inside
// the per-(src,tag) queues, so the steady-state send path performs no heap
// allocation.
type envelope struct {
	src, tag int
	payload  any
	bytes    int
	avail    vclock.Time // when the data has fully arrived at the receiver
	seq      uint64      // per-mailbox arrival number, for wildcard matching
}

// envQueue is a FIFO of envelopes for one (src,tag) key. It is a growable
// slice with a head cursor: pops advance head, and the backing array is
// reused once the queue drains, so sustained traffic settles into zero
// allocations after the high-water mark is reached.
type envQueue struct {
	items []envelope
	head  int
}

func (q *envQueue) empty() bool { return q.head == len(q.items) }

func (q *envQueue) push(e envelope) {
	if q.head == len(q.items) && q.head > 0 {
		// Drained: rewind so the backing array is reused.
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, e)
}

func (q *envQueue) pop() envelope {
	e := q.items[q.head]
	q.items[q.head].payload = nil // release the reference for the GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

// front returns the oldest queued envelope without removing it.
func (q *envQueue) front() *envelope { return &q.items[q.head] }

// matchKey packs a (src,tag) pair into one map key. Tags are bounded by the
// runtime's reserved tag space (< 2^21) and sources by the world size, so
// the packed key is collision-free.
func matchKey(src, tag int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// mailbox is one rank's incoming message store, indexed by (src,tag) so
// matching is O(1) instead of a linear scan of one shared queue. Only the
// owning rank's goroutine receives from a mailbox, so there is at most one
// waiter; senders signal it only when an arriving message matches the
// receiver's posted (src,tag) pattern, eliminating spurious wakeups when
// many senders target one receiver with unrelated tags.
//
// Wildcard receives (AnySource/AnyTag) pick the matching envelope with the
// lowest arrival number across all queues, preserving the arrival-order
// semantics of the old single-queue implementation exactly.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[uint64]*envQueue
	seq    uint64 // next arrival number
	total  int    // envelopes currently queued across all keys

	// The receiver's posted wait, valid while waiting is true.
	waiting bool
	wantSrc int
	wantTag int

	// Nonblocking receives posted by the owning rank, in post order.
	// Senders fill the first matching entry directly, bypassing the
	// queues; reqWait is set while the owner blocks in Wait/Waitany.
	posted  []*Request
	reqWait bool
}

func matches(e *envelope, src, tag int) bool {
	return (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag)
}

// take removes and returns the oldest envelope matching (src,tag), or
// ok=false when none is queued. Callers hold b.mu.
func (b *mailbox) take(src, tag int) (envelope, bool) {
	if b.total == 0 {
		return envelope{}, false
	}
	if src != AnySource && tag != AnyTag {
		q := b.queues[matchKey(src, tag)]
		if q == nil || q.empty() {
			return envelope{}, false
		}
		b.total--
		return q.pop(), true
	}
	// Wildcard: earliest arrival across all matching queues.
	var best *envQueue
	var bestSeq uint64
	for _, q := range b.queues {
		if q.empty() {
			continue
		}
		e := q.front()
		if !matches(e, src, tag) {
			continue
		}
		if best == nil || e.seq < bestSeq {
			best, bestSeq = q, e.seq
		}
	}
	if best == nil {
		return envelope{}, false
	}
	b.total--
	return best.pop(), true
}

// World owns the shared state of one simulated run: mailboxes, the default
// all-ranks group, and failure propagation.
//
// A world's capacity is fixed at creation from the cluster's seed size plus
// its arrival capacity. Every per-rank structure (mailboxes, dead bitmap)
// is preallocated to that capacity and never reallocated, so Spawn — which
// grows the running world into the preallocated slots — is race-free with
// zero cost on the steady-state paths: a send to a not-yet-spawned rank
// simply enqueues into its (empty) mailbox and is drained when the joiner
// starts.
type World struct {
	cl     *cluster.Cluster
	n      int // seed size: ranks [0,n) run from the start
	cap    int // capacity: seed + arrivals; bounds every rank ID
	boxes  []*mailbox
	all    *Group
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
	groups struct {
		sync.Mutex
		list  []*Group
		byKey map[string]*Group
	}

	// size is the number of ranks spawned so far (seed n, grown by Spawn);
	// spawned[i] marks arrival slot n+i as claimed.
	size    atomic.Int32
	spawned []atomic.Bool

	// SPMD harness state, set by Run so Spawn can launch joiners running
	// the same rank function under the same WaitGroup.
	runFn func(*Comm) error
	runWG sync.WaitGroup

	// Liveness: dead[r] is set once rank r crashes (injected fault).
	// deadCount lets hot paths skip the per-rank check with one atomic
	// load while no rank has died.
	dead      []atomic.Bool
	deadCount atomic.Int32
	flt       *fault.Set // scenario faults; nil when none are injected
}

// NewWorld creates a world with one rank per cluster seed node, plus
// preallocated capacity for every arrival node.
func NewWorld(cl *cluster.Cluster) *World {
	w := &World{cl: cl, n: cl.N(), cap: cl.MaxN(), flt: cl.FaultSet()}
	w.size.Store(int32(w.n))
	w.spawned = make([]atomic.Bool, w.cap-w.n)
	w.dead = make([]atomic.Bool, w.cap)
	w.boxes = make([]*mailbox, w.cap)
	for i := range w.boxes {
		b := &mailbox{queues: make(map[uint64]*envQueue)}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
	}
	members := make([]int, w.n)
	for i := range members {
		members[i] = i
	}
	w.all = w.NewGroup(members)
	return w
}

// N reports the number of seed ranks (the world size a run starts with).
func (w *World) N() int { return w.n }

// Cap reports the world's rank capacity: seed ranks plus arrival slots.
func (w *World) Cap() int { return w.cap }

// CurSize reports the number of ranks spawned so far (seed + joined).
func (w *World) CurSize() int { return int(w.size.Load()) }

// Cluster returns the underlying cluster model.
func (w *World) Cluster() *cluster.Cluster { return w.cl }

// fail records the first error and wakes every blocked rank so the whole
// world unwinds instead of deadlocking. Mailbox waiters are woken with
// Broadcast — not the targeted Signal of the send path — because a failing
// world must reach a receiver regardless of the (src,tag) pattern it posted;
// the receive loop rechecks w.failed on every wakeup before waiting again.
func (w *World) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.failed.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.waiting = false // the posted pattern is void; everyone unwinds
		b.reqWait = false
		for i := range b.posted { // pending requests are void too
			b.posted[i] = nil
		}
		b.posted = b.posted[:0]
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.groups.Lock()
	for _, g := range w.groups.list {
		g.wakeAll()
	}
	w.groups.Unlock()
}

// Err returns the first error recorded by fail.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Comm is one rank's endpoint. All methods must be called from the rank's
// own goroutine.
type Comm struct {
	w    *World
	rank int
	node *cluster.Node

	// Traffic counters, maintained by this rank only.
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64

	// RecvStall accumulates the receive-side stall: for every blocking
	// Recv and every request Wait, the span the clock had to jump forward
	// to reach the message's arrival stamp. Zero when the data was already
	// there. The redistribution stall metric is a delta of this counter.
	RecvStall vclock.Duration

	// HiddenWire accumulates the wire time the nonblocking layer hid
	// behind this rank's compute: for each credited Wait, the in-flight
	// span between post and arrival minus the part the caller actually
	// stalled on. Telemetry reports it per cycle as HiddenWireNs.
	HiddenWire vclock.Duration

	// reqFree is the rank-local nonblocking request pool (see request.go).
	reqFree []*Request

	// sbuf is a pinned scratch vector for the scalar collectives
	// (AllreduceSum/Max, AllgatherF64sInto), so depositing a scalar into a
	// collective performs no per-op allocation. Safe because every Comm
	// method runs on the rank's own goroutine and each collective copies
	// its result out before returning.
	sbuf []float64

	// lastGroup/lastSlot cache this rank's slot in the most recently used
	// group, so the steady state (the same group every cycle) resolves its
	// slot without a map lookup. See groupSlot in engine.go.
	lastGroup *Group
	lastSlot  int

	// flt is this rank's injected-fault state; nil when the scenario has
	// no faults for this node, which keeps the hot-path cost to one nil
	// check per operation.
	flt *fault.NodeState
}

// NewComm returns rank r's endpoint. Typically Run constructs these.
func (w *World) NewComm(r int) *Comm {
	c := &Comm{w: w, rank: r, node: w.cl.Node(r)}
	c.sbuf = make([]float64, 1)
	c.flt = w.flt.Node(r)
	return c
}

// Rank reports this endpoint's world rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the seed world size (the rank count the run started with).
func (c *Comm) Size() int { return c.w.n }

// Spawned reports whether this rank joined after the seed world started
// (its rank ID lies beyond the seed size). Joiners bootstrap their runtime
// state from the membership protocol instead of the SPMD initial state.
func (c *Comm) Spawned() bool { return c.rank >= c.w.n }

// Node returns the cluster node this rank runs on.
func (c *Comm) Node() *cluster.Node { return c.node }

// World returns the communicator's world.
func (c *Comm) World() *World { return c.w }

// Now reports the rank's current virtual time.
func (c *Comm) Now() vclock.Time { return c.node.Now() }

func (c *Comm) checkFailed() {
	if c.w.failed.Load() {
		panic(errFailed)
	}
}

// cpuCost returns the per-side CPU cost of transferring b bytes.
func cpuCost(net cluster.NetParams, b int) vclock.Duration {
	return net.CPUPerMsg + vclock.Duration(float64(b)*net.CPUPerByte)
}

// wireTime returns the latency+bandwidth component for b bytes.
func wireTime(net cluster.NetParams, b int) vclock.Duration {
	return net.Latency + vclock.FromSeconds(float64(b)/net.BytesPerSec)
}

// Send transfers payload (bytes long on the wire) to rank dst with the
// given tag. The payload is handed over by reference: the sender must not
// mutate it afterwards (ownership transfer, as in a zero-copy MPI).
func (c *Comm) Send(dst, tag int, payload any, bytes int) {
	c.checkFailed()
	if dst < 0 || dst >= c.w.cap {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	var faultDelay vclock.Duration
	if c.flt != nil {
		c.pollFaults()
		faultDelay = c.messageFault(dst)
	}
	net := c.w.cl.Net()
	c.node.Compute(cpuCost(net, bytes))
	env := envelope{
		src:     c.rank,
		tag:     tag,
		payload: payload,
		bytes:   bytes,
		avail:   c.node.Now().Add(wireTime(net, bytes) + faultDelay),
	}
	c.SentMsgs++
	c.SentBytes += int64(bytes)
	c.w.deliver(dst, env)
}

// deliver hands env to dst's mailbox. A posted nonblocking receive matching
// (src,tag) — first in post order — is filled directly, bypassing the
// queues; otherwise the envelope is enqueued and a blocked receiver with a
// matching pattern is signalled. Posted requests see a message before a
// blocking receive posted later for the same key, which preserves FIFO
// order per (src,tag): Irecv only posts on a queue miss, so a posted
// request never coexists with an older queued match.
//
// Envelopes addressed to a dead rank are dropped: nothing will ever receive
// them, and enqueueing them would grow the corpse's mailbox without bound
// (one ping per poll cycle from the rejoin protocol alone). Together with
// Kill's queue purge this keeps a dead rank's mailbox pinned at zero
// regardless of whether a racing send lands before or after the death is
// published.
func (w *World) deliver(dst int, env envelope) {
	if w.deadCount.Load() > 0 && w.dead[dst].Load() {
		return
	}
	box := w.boxes[dst]
	box.mu.Lock()
	env.seq = box.seq
	box.seq++
	for i, r := range box.posted {
		if r.src == env.src && r.tag == env.tag {
			copy(box.posted[i:], box.posted[i+1:])
			box.posted[len(box.posted)-1] = nil
			box.posted = box.posted[:len(box.posted)-1]
			r.env = env
			r.done = true
			if box.reqWait {
				box.reqWait = false
				box.cond.Signal()
			}
			box.mu.Unlock()
			return
		}
	}
	key := matchKey(env.src, env.tag)
	q := box.queues[key]
	if q == nil {
		q = &envQueue{}
		box.queues[key] = q
	}
	q.push(env)
	box.total++
	// Targeted wakeup: only disturb the receiver when this message can
	// complete its posted receive.
	if box.waiting && matches(&env, box.wantSrc, box.wantTag) {
		box.waiting = false
		box.cond.Signal()
	}
	box.mu.Unlock()
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Recv blocks until a message matching (src, tag) is available, advances
// the virtual clock to its arrival, charges receive-side CPU, and returns
// the payload. src may be AnySource and tag AnyTag; note that AnySource
// matching order depends on physical goroutine scheduling and is therefore
// only deterministic when at most one candidate sender exists.
//
// If src is a crashed rank and no matching message is queued, Recv fails
// the whole world (bounded waiting); callers that can survive a dead peer
// should use RecvErr.
func (c *Comm) Recv(src, tag int) (any, Status) {
	p, st, err := c.RecvErr(src, tag)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
	return p, st
}

// RecvErr is Recv with bounded waiting under failures: when src is known
// dead and no matching message is queued, it returns a *RankFailedError
// instead of blocking forever. Messages src sent before crashing are still
// delivered first — the dead check only fires on a queue miss, and a
// crashed rank's sends complete before its death is published (same
// goroutine), so the error is deterministic in virtual time. An AnySource
// receive never fails this way: any live rank could still send.
func (c *Comm) RecvErr(src, tag int) (any, Status, error) {
	c.checkFailed()
	if c.flt != nil {
		c.pollFaults()
	}
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	var env envelope
	for {
		var ok bool
		if env, ok = box.take(src, tag); ok {
			break
		}
		if c.w.failed.Load() {
			box.mu.Unlock()
			panic(errFailed)
		}
		if src != AnySource && c.w.deadCount.Load() > 0 && c.w.dead[src].Load() {
			box.waiting = false
			box.mu.Unlock()
			return nil, Status{}, &RankFailedError{Op: "recv", Ranks: []int{src}}
		}
		box.wantSrc, box.wantTag = src, tag
		box.waiting = true
		box.cond.Wait()
	}
	box.waiting = false
	box.mu.Unlock()
	if d := env.avail.Sub(c.node.Now()); d > 0 {
		c.RecvStall += d
	}
	c.node.WaitUntil(env.avail)
	c.node.Compute(cpuCost(c.w.cl.Net(), env.bytes))
	c.RecvMsgs++
	c.RecvBytes += int64(env.bytes)
	return env.payload, Status{Source: env.src, Tag: env.tag, Bytes: env.bytes}, nil
}

// RecvF64s receives a []float64 payload, panicking on type mismatch.
func (c *Comm) RecvF64s(src, tag int) ([]float64, Status) {
	p, st := c.Recv(src, tag)
	v, ok := p.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d expected []float64 from %d tag %d, got %T", c.rank, st.Source, st.Tag, p))
	}
	return v, st
}

// F64Bytes reports the wire size of n float64 values.
func F64Bytes(n int) int { return 8 * n }

// Abort fails the whole world with err and unwinds the calling rank.
func (c *Comm) Abort(err error) {
	c.w.fail(err)
	panic(errFailed)
}

// --- SPMD harness --------------------------------------------------------

// Run spawns one goroutine per cluster node executing fn and waits for all
// of them. The first error (returned or panicked) aborts the whole world.
func Run(cl *cluster.Cluster, fn func(*Comm) error) error {
	w := NewWorld(cl)
	return w.Run(fn)
}

// Run executes fn on every seed rank of an existing world. The function and
// WaitGroup are retained on the world so Spawn can launch joiner ranks
// running the same SPMD body mid-run.
func (w *World) Run(fn func(*Comm) error) error {
	w.runFn = fn
	for r := 0; r < w.n; r++ {
		w.launch(r)
	}
	w.runWG.Wait()
	return w.Err()
}

// launch starts rank's goroutine running the world's SPMD function.
func (w *World) launch(rank int) {
	exitHook := w.cl.RankExitHook()
	w.runWG.Add(1)
	go func() {
		defer w.runWG.Done()
		comm := w.NewComm(rank)
		defer func() {
			if p := recover(); p != nil {
				unwound := false
				if err, ok := p.(error); ok {
					// errFailed: unwound by another rank's failure.
					// errCrashed: injected crash, this rank simply stops.
					unwound = errors.Is(err, errFailed) || errors.Is(err, errCrashed)
				}
				if !unwound {
					w.fail(fmt.Errorf("rank %d panicked: %v", rank, p))
				}
			}
			if exitHook != nil {
				exitHook(rank)
			}
		}()
		if err := w.runFn(comm); err != nil {
			w.fail(fmt.Errorf("rank %d: %w", rank, err))
		}
	}()
}

// Spawn grows the running world, starting a goroutine for each given rank
// that executes the same SPMD function Run launched the seed ranks with.
// Rank IDs must lie in the arrival capacity [N, Cap) and not already be
// spawned (they need not be sequential: reserve capacity can be claimed out
// of arrival order). Spawn must be called from exactly one running rank's
// goroutine (the runtime's root performs it), which also guarantees the
// run's WaitGroup is still held. The new ranks' mailboxes already exist —
// anything sent to them before they start is waiting when they do — and
// their node clocks start at zero, jumping forward to the cluster-wide
// present at their first receive.
func (w *World) Spawn(ranks []int) {
	if w.runFn == nil {
		panic("mpi: Spawn before Run")
	}
	for _, r := range ranks {
		if r < w.n || r >= w.cap {
			panic(fmt.Sprintf("mpi: Spawn rank %d outside arrival capacity [%d,%d)", r, w.n, w.cap))
		}
		if w.spawned[r-w.n].Swap(true) {
			panic(fmt.Sprintf("mpi: rank %d spawned twice", r))
		}
	}
	w.size.Add(int32(len(ranks)))
	for _, r := range ranks {
		w.launch(r)
	}
}

// QueuedMsgs reports the number of envelopes currently queued in rank's
// mailbox (excluding filled posted requests). Tests use it to assert dead
// ranks' mailboxes do not accrete messages.
func (w *World) QueuedMsgs(rank int) int {
	b := w.boxes[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// --- collectives ---------------------------------------------------------
//
// The Group type, the sharded rendezvous engine, and the orphan-reclaim
// machinery live in engine.go; the per-collective cost model lives in
// cost.go. This section is the public collective API: each entry point
// describes its operation as a collDesc and runs it through the engine.

// rendezvous runs a collective, failing the whole world when a group
// member is dead. The *Err entry points use rendezvousErr directly and
// survive the death instead. Vector ([]float64) contributions are passed
// through vec so the hot collectives never box a slice through an
// interface; everything else travels boxed through contrib.
func (c *Comm) rendezvous(g *Group, contrib any, vec []float64, desc *collDesc, dst []float64) any {
	value, err := c.rendezvousErr(g, contrib, vec, desc, dst)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
	return value
}

// Barrier synchronises the group.
func (c *Comm) Barrier(g *Group) {
	c.rendezvous(g, nil, nil, &collDesc{kind: opBarrier}, nil)
}

// BarrierErr is Barrier returning an error instead of failing the world
// when a group member is dead.
func (c *Comm) BarrierErr(g *Group) error {
	_, err := c.rendezvousErr(g, nil, nil, &collDesc{kind: opBarrier}, nil)
	return err
}

// bcastRootSlot resolves root to its group slot, panicking (and thereby
// failing the world from inside a rank) when root is not a member.
func (g *Group) bcastRootSlot(root int) int {
	s, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: bcast root %d not in group", root))
	}
	return s
}

// Bcast distributes the root's payload (of the given wire size) to every
// group member and returns it. root is a world rank.
func (c *Comm) Bcast(g *Group, root int, payload any, bytes int) any {
	rootSlot := g.bcastRootSlot(root)
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.rendezvous(g, contrib, nil, &collDesc{kind: opBcast, bytes: bytes, rootSlot: rootSlot}, nil)
}

// BcastErr is Bcast returning an error instead of failing the world when a
// group member is dead. If the root itself died the error names it and no
// payload is delivered.
func (c *Comm) BcastErr(g *Group, root int, payload any, bytes int) (any, error) {
	rootSlot := g.bcastRootSlot(root)
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.rendezvousErr(g, contrib, nil, &collDesc{kind: opBcast, bytes: bytes, rootSlot: rootSlot}, nil)
}

// BcastF64sInto distributes the root's buf contents into every member's buf
// (all members pass same-length buffers; the root's is the source). The
// shared intermediate is pooled and each member copies out before releasing
// the op, so the root may overwrite its buffer as soon as the call returns
// and steady-state broadcasts recycle their vectors. Wire size and virtual
// cost are identical to Bcast with an F64Bytes payload.
func (c *Comm) BcastF64sInto(g *Group, root int, buf []float64) {
	rootSlot := g.bcastRootSlot(root)
	var vec []float64
	if c.rank == root {
		vec = buf
	}
	c.rendezvous(g, nil, vec, &collDesc{kind: opBcast, bytes: F64Bytes(len(buf)), rootSlot: rootSlot, pooled: true}, buf)
}

// AllreduceF64s performs an element-wise reduction of each member's vector
// with op and returns the reduced vector (a fresh slice) on every member.
// The result is shared by all members and safe to retain. Hot paths that
// call a reduction every cycle should prefer AllreduceF64sInto, which
// recycles the shared intermediate and writes into a caller-owned buffer.
func (c *Comm) AllreduceF64s(g *Group, vals []float64, op func(a, b float64) float64) []float64 {
	res := c.rendezvous(g, nil, vals, &collDesc{kind: opAllreduce, bytes: F64Bytes(len(vals)), rfn: op, rop: ropOf(op)}, nil)
	return res.([]float64)
}

// AllreduceF64sInto reduces buf element-wise across the group and stores the
// result back into buf (which is both this rank's contribution and its
// destination). The shared intermediate vector is recycled inside the group,
// so steady-state reductions stay allocation-light. buf must not be mutated
// by the caller until the call returns; afterwards the caller owns it fully
// — nothing retains a reference.
func (c *Comm) AllreduceF64sInto(g *Group, buf []float64, op func(a, b float64) float64) {
	c.rendezvous(g, nil, buf, &collDesc{kind: opAllreduce, bytes: F64Bytes(len(buf)), rfn: op, rop: ropOf(op), pooled: true}, buf)
}

// Sum and Max are common allreduce operators.
func Sum(a, b float64) float64 { return a + b }

// Max returns the larger of a and b (allreduce operator).
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// sumPC/maxPC identify the package's well-known operators by code pointer,
// so the reduction loops can run direct arithmetic instead of an indirect
// call per element (the dominant per-element cost; see combine in
// engine.go). Unknown operators take the general path unchanged.
var (
	sumPC = reflect.ValueOf(Sum).Pointer()
	maxPC = reflect.ValueOf(Max).Pointer()
)

func ropOf(op func(a, b float64) float64) uint8 {
	switch reflect.ValueOf(op).Pointer() {
	case sumPC:
		return ropSum
	case maxPC:
		return ropMax
	}
	return ropCustom
}

// AllreduceSum reduces a single value by summation.
func (c *Comm) AllreduceSum(g *Group, v float64) float64 {
	c.sbuf[0] = v
	c.rendezvous(g, nil, c.sbuf, &collDesc{kind: opAllreduce, bytes: 8, rfn: Sum, rop: ropSum, pooled: true}, c.sbuf)
	return c.sbuf[0]
}

// AllreduceMax reduces a single value by maximum.
func (c *Comm) AllreduceMax(g *Group, v float64) float64 {
	c.sbuf[0] = v
	c.rendezvous(g, nil, c.sbuf, &collDesc{kind: opAllreduce, bytes: 8, rfn: Max, rop: ropMax, pooled: true}, c.sbuf)
	return c.sbuf[0]
}

// AllreduceF64sErr is AllreduceF64s returning an error instead of failing
// the world when a group member is dead. On error nothing was reduced and
// vals is untouched, so the caller may retry over a rebuilt group.
func (c *Comm) AllreduceF64sErr(g *Group, vals []float64, op func(a, b float64) float64) ([]float64, error) {
	res, err := c.rendezvousErr(g, nil, vals, &collDesc{kind: opAllreduce, bytes: F64Bytes(len(vals)), rfn: op, rop: ropOf(op)}, nil)
	if err != nil {
		return nil, err
	}
	return res.([]float64), nil
}

// AllreduceF64sIntoErr is AllreduceF64sInto returning an error instead of
// failing the world when a group member is dead. On error buf is untouched
// (the copy-out happens only on success), so the caller may retry.
func (c *Comm) AllreduceF64sIntoErr(g *Group, buf []float64, op func(a, b float64) float64) error {
	_, err := c.rendezvousErr(g, nil, buf, &collDesc{kind: opAllreduce, bytes: F64Bytes(len(buf)), rfn: op, rop: ropOf(op), pooled: true}, buf)
	return err
}

// AllreduceSumErr is AllreduceSum returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllreduceSumErr(g *Group, v float64) (float64, error) {
	c.sbuf[0] = v
	if _, err := c.rendezvousErr(g, nil, c.sbuf, &collDesc{kind: opAllreduce, bytes: 8, rfn: Sum, rop: ropSum, pooled: true}, c.sbuf); err != nil {
		return 0, err
	}
	return c.sbuf[0], nil
}

// AllreduceMaxErr is AllreduceMax returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllreduceMaxErr(g *Group, v float64) (float64, error) {
	c.sbuf[0] = v
	if _, err := c.rendezvousErr(g, nil, c.sbuf, &collDesc{kind: opAllreduce, bytes: 8, rfn: Max, rop: ropMax, pooled: true}, c.sbuf); err != nil {
		return 0, err
	}
	return c.sbuf[0], nil
}

// Allgather collects every member's contribution, ordered by group slot,
// on every member. bytes is the wire size of one contribution.
func (c *Comm) Allgather(g *Group, contrib any, bytes int) []any {
	res := c.rendezvous(g, contrib, nil, &collDesc{kind: opAllgather, bytes: bytes}, nil)
	return res.([]any)
}

// AllgatherErr is Allgather returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllgatherErr(g *Group, contrib any, bytes int) ([]any, error) {
	res, err := c.rendezvousErr(g, contrib, nil, &collDesc{kind: opAllgather, bytes: bytes}, nil)
	if err != nil {
		return nil, err
	}
	return res.([]any), nil
}

// AllgatherF64 gathers one float64 per member, ordered by slot, into a
// fresh slice. Hot paths that gather every cycle should prefer
// AllgatherF64sInto, which writes into a caller-owned buffer and performs
// no boxing.
func (c *Comm) AllgatherF64(g *Group, v float64) []float64 {
	out := make([]float64, len(g.members))
	c.AllgatherF64sInto(g, v, out)
	return out
}

// AllgatherF64sInto gathers one float64 per member, ordered by slot, into
// dst (which must have length >= the group size). Contributions travel
// through the rank's pinned scratch and the shared result vector is pooled
// with copy-out-before-release semantics (the same contract as
// BcastF64sInto), so steady-state gathers perform no boxing and no
// allocation. Wire size and virtual cost are identical to an 8-byte
// Allgather.
func (c *Comm) AllgatherF64sInto(g *Group, v float64, dst []float64) {
	c.sbuf[0] = v
	c.rendezvous(g, nil, c.sbuf, &collDesc{kind: opAllgatherF64, bytes: 8, pooled: true}, dst)
}

// AllgatherF64sIntoErr is AllgatherF64sInto returning an error instead of
// failing the world when a group member is dead. On error dst is untouched,
// so the caller may retry over a rebuilt group.
func (c *Comm) AllgatherF64sIntoErr(g *Group, v float64, dst []float64) error {
	c.sbuf[0] = v
	_, err := c.rendezvousErr(g, nil, c.sbuf, &collDesc{kind: opAllgatherF64, bytes: 8, pooled: true}, dst)
	return err
}

// AllgatherInt gathers one int per member, ordered by slot.
func (c *Comm) AllgatherInt(g *Group, v int) []int {
	parts := c.Allgather(g, v, 8)
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = p.(int)
	}
	return out
}

// Gather collects contributions on root (world rank); root receives the
// slot-ordered slice, everyone else nil. Unlike Allgather it is priced as a
// root-terminated binomial gather — only n-1 contribution blocks cross the
// wire in total (see gatherCost) — and non-root members are handed nil
// without a copy of the gathered slice.
func (c *Comm) Gather(g *Group, root int, contrib any, bytes int) []any {
	rootSlot, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: gather root %d not in group", root))
	}
	res := c.rendezvous(g, contrib, nil, &collDesc{kind: opGather, bytes: bytes, rootSlot: rootSlot}, nil)
	if res == nil {
		return nil
	}
	return res.([]any)
}
