// Package mpi is a pure-Go message-passing substrate with MPI-like
// semantics, used as the transport underneath the Dyn-MPI runtime. Ranks
// are goroutines inside one process; messages carry real data; every
// operation advances the virtual clocks of the participating nodes
// according to the cluster's network model.
//
// Cost model (see cluster.NetParams): a message of b bytes is available to
// the receiver Latency + b/BytesPerSec after the send; in addition each
// side spends CPUPerMsg + b*CPUPerByte of CPU. The CPU component runs under
// the node's scheduler and is therefore inflated by competing processes —
// the effect that makes communication-aware data distributions necessary.
//
// Point-to-point operations are eager (buffered): Send completes once the
// local CPU work is done; Recv blocks until a matching message is available
// on the virtual clock. Collectives operate on a Group (a subset of world
// ranks) and leave all participants at a common completion time, modelling
// a binomial-tree implementation.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// AnySource matches a message from any sender in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// errFailed is the panic value used to unwind ranks when the world has
// failed; Run converts it back into the original error.
var errFailed = errors.New("mpi: world failed")

// envelope is one in-flight message. Envelopes are stored by value inside
// the per-(src,tag) queues, so the steady-state send path performs no heap
// allocation.
type envelope struct {
	src, tag int
	payload  any
	bytes    int
	avail    vclock.Time // when the data has fully arrived at the receiver
	seq      uint64      // per-mailbox arrival number, for wildcard matching
}

// envQueue is a FIFO of envelopes for one (src,tag) key. It is a growable
// slice with a head cursor: pops advance head, and the backing array is
// reused once the queue drains, so sustained traffic settles into zero
// allocations after the high-water mark is reached.
type envQueue struct {
	items []envelope
	head  int
}

func (q *envQueue) empty() bool { return q.head == len(q.items) }

func (q *envQueue) push(e envelope) {
	if q.head == len(q.items) && q.head > 0 {
		// Drained: rewind so the backing array is reused.
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, e)
}

func (q *envQueue) pop() envelope {
	e := q.items[q.head]
	q.items[q.head].payload = nil // release the reference for the GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

// front returns the oldest queued envelope without removing it.
func (q *envQueue) front() *envelope { return &q.items[q.head] }

// matchKey packs a (src,tag) pair into one map key. Tags are bounded by the
// runtime's reserved tag space (< 2^21) and sources by the world size, so
// the packed key is collision-free.
func matchKey(src, tag int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// mailbox is one rank's incoming message store, indexed by (src,tag) so
// matching is O(1) instead of a linear scan of one shared queue. Only the
// owning rank's goroutine receives from a mailbox, so there is at most one
// waiter; senders signal it only when an arriving message matches the
// receiver's posted (src,tag) pattern, eliminating spurious wakeups when
// many senders target one receiver with unrelated tags.
//
// Wildcard receives (AnySource/AnyTag) pick the matching envelope with the
// lowest arrival number across all queues, preserving the arrival-order
// semantics of the old single-queue implementation exactly.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[uint64]*envQueue
	seq    uint64 // next arrival number
	total  int    // envelopes currently queued across all keys

	// The receiver's posted wait, valid while waiting is true.
	waiting bool
	wantSrc int
	wantTag int
}

func matches(e *envelope, src, tag int) bool {
	return (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag)
}

// take removes and returns the oldest envelope matching (src,tag), or
// ok=false when none is queued. Callers hold b.mu.
func (b *mailbox) take(src, tag int) (envelope, bool) {
	if b.total == 0 {
		return envelope{}, false
	}
	if src != AnySource && tag != AnyTag {
		q := b.queues[matchKey(src, tag)]
		if q == nil || q.empty() {
			return envelope{}, false
		}
		b.total--
		return q.pop(), true
	}
	// Wildcard: earliest arrival across all matching queues.
	var best *envQueue
	var bestSeq uint64
	for _, q := range b.queues {
		if q.empty() {
			continue
		}
		e := q.front()
		if !matches(e, src, tag) {
			continue
		}
		if best == nil || e.seq < bestSeq {
			best, bestSeq = q, e.seq
		}
	}
	if best == nil {
		return envelope{}, false
	}
	b.total--
	return best.pop(), true
}

// World owns the shared state of one simulated run: mailboxes, the default
// all-ranks group, and failure propagation.
type World struct {
	cl     *cluster.Cluster
	n      int
	boxes  []*mailbox
	all    *Group
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
	groups struct {
		sync.Mutex
		list  []*Group
		byKey map[string]*Group
	}

	// Liveness: dead[r] is set once rank r crashes (injected fault).
	// deadCount lets hot paths skip the per-rank check with one atomic
	// load while no rank has died.
	dead      []atomic.Bool
	deadCount atomic.Int32
	flt       *fault.Set // scenario faults; nil when none are injected
}

// NewWorld creates a world with one rank per cluster node.
func NewWorld(cl *cluster.Cluster) *World {
	w := &World{cl: cl, n: cl.N(), flt: cl.FaultSet()}
	w.dead = make([]atomic.Bool, w.n)
	w.boxes = make([]*mailbox, w.n)
	for i := range w.boxes {
		b := &mailbox{queues: make(map[uint64]*envQueue)}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
	}
	members := make([]int, w.n)
	for i := range members {
		members[i] = i
	}
	w.all = w.NewGroup(members)
	return w
}

// N reports the number of ranks.
func (w *World) N() int { return w.n }

// Cluster returns the underlying cluster model.
func (w *World) Cluster() *cluster.Cluster { return w.cl }

// fail records the first error and wakes every blocked rank so the whole
// world unwinds instead of deadlocking. Mailbox waiters are woken with
// Broadcast — not the targeted Signal of the send path — because a failing
// world must reach a receiver regardless of the (src,tag) pattern it posted;
// the receive loop rechecks w.failed on every wakeup before waiting again.
func (w *World) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.failed.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.waiting = false // the posted pattern is void; everyone unwinds
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.groups.Lock()
	for _, g := range w.groups.list {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	w.groups.Unlock()
}

// Err returns the first error recorded by fail.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Comm is one rank's endpoint. All methods must be called from the rank's
// own goroutine.
type Comm struct {
	w    *World
	rank int
	node *cluster.Node

	// Traffic counters, maintained by this rank only.
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64

	// sbuf is a pinned scratch vector for the scalar collectives
	// (AllreduceSum/Max); sbox is the same slice pre-boxed as an interface
	// so depositing it into a collective performs no per-op allocation.
	// Safe because every Comm method runs on the rank's own goroutine and
	// each collective copies its result out before returning.
	sbuf []float64
	sbox any

	// flt is this rank's injected-fault state; nil when the scenario has
	// no faults for this node, which keeps the hot-path cost to one nil
	// check per operation.
	flt *fault.NodeState
}

// NewComm returns rank r's endpoint. Typically Run constructs these.
func (w *World) NewComm(r int) *Comm {
	c := &Comm{w: w, rank: r, node: w.cl.Node(r)}
	c.sbuf = make([]float64, 1)
	c.sbox = c.sbuf
	c.flt = w.flt.Node(r)
	return c
}

// Rank reports this endpoint's world rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the world size.
func (c *Comm) Size() int { return c.w.n }

// Node returns the cluster node this rank runs on.
func (c *Comm) Node() *cluster.Node { return c.node }

// World returns the communicator's world.
func (c *Comm) World() *World { return c.w }

// Now reports the rank's current virtual time.
func (c *Comm) Now() vclock.Time { return c.node.Now() }

func (c *Comm) checkFailed() {
	if c.w.failed.Load() {
		panic(errFailed)
	}
}

// cpuCost returns the per-side CPU cost of transferring b bytes.
func cpuCost(net cluster.NetParams, b int) vclock.Duration {
	return net.CPUPerMsg + vclock.Duration(float64(b)*net.CPUPerByte)
}

// wireTime returns the latency+bandwidth component for b bytes.
func wireTime(net cluster.NetParams, b int) vclock.Duration {
	return net.Latency + vclock.FromSeconds(float64(b)/net.BytesPerSec)
}

// Send transfers payload (bytes long on the wire) to rank dst with the
// given tag. The payload is handed over by reference: the sender must not
// mutate it afterwards (ownership transfer, as in a zero-copy MPI).
func (c *Comm) Send(dst, tag int, payload any, bytes int) {
	c.checkFailed()
	if dst < 0 || dst >= c.w.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	var faultDelay vclock.Duration
	if c.flt != nil {
		c.pollFaults()
		faultDelay = c.messageFault(dst)
	}
	net := c.w.cl.Net()
	c.node.Compute(cpuCost(net, bytes))
	env := envelope{
		src:     c.rank,
		tag:     tag,
		payload: payload,
		bytes:   bytes,
		avail:   c.node.Now().Add(wireTime(net, bytes) + faultDelay),
	}
	c.SentMsgs++
	c.SentBytes += int64(bytes)
	box := c.w.boxes[dst]
	box.mu.Lock()
	env.seq = box.seq
	box.seq++
	key := matchKey(c.rank, tag)
	q := box.queues[key]
	if q == nil {
		q = &envQueue{}
		box.queues[key] = q
	}
	q.push(env)
	box.total++
	// Targeted wakeup: only disturb the receiver when this message can
	// complete its posted receive.
	if box.waiting && matches(&env, box.wantSrc, box.wantTag) {
		box.waiting = false
		box.cond.Signal()
	}
	box.mu.Unlock()
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Recv blocks until a message matching (src, tag) is available, advances
// the virtual clock to its arrival, charges receive-side CPU, and returns
// the payload. src may be AnySource and tag AnyTag; note that AnySource
// matching order depends on physical goroutine scheduling and is therefore
// only deterministic when at most one candidate sender exists.
//
// If src is a crashed rank and no matching message is queued, Recv fails
// the whole world (bounded waiting); callers that can survive a dead peer
// should use RecvErr.
func (c *Comm) Recv(src, tag int) (any, Status) {
	p, st, err := c.RecvErr(src, tag)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
	return p, st
}

// RecvErr is Recv with bounded waiting under failures: when src is known
// dead and no matching message is queued, it returns a *RankFailedError
// instead of blocking forever. Messages src sent before crashing are still
// delivered first — the dead check only fires on a queue miss, and a
// crashed rank's sends complete before its death is published (same
// goroutine), so the error is deterministic in virtual time. An AnySource
// receive never fails this way: any live rank could still send.
func (c *Comm) RecvErr(src, tag int) (any, Status, error) {
	c.checkFailed()
	if c.flt != nil {
		c.pollFaults()
	}
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	var env envelope
	for {
		var ok bool
		if env, ok = box.take(src, tag); ok {
			break
		}
		if c.w.failed.Load() {
			box.mu.Unlock()
			panic(errFailed)
		}
		if src != AnySource && c.w.deadCount.Load() > 0 && c.w.dead[src].Load() {
			box.waiting = false
			box.mu.Unlock()
			return nil, Status{}, &RankFailedError{Op: "recv", Ranks: []int{src}}
		}
		box.wantSrc, box.wantTag = src, tag
		box.waiting = true
		box.cond.Wait()
	}
	box.waiting = false
	box.mu.Unlock()
	c.node.WaitUntil(env.avail)
	c.node.Compute(cpuCost(c.w.cl.Net(), env.bytes))
	c.RecvMsgs++
	c.RecvBytes += int64(env.bytes)
	return env.payload, Status{Source: env.src, Tag: env.tag, Bytes: env.bytes}, nil
}

// RecvF64s receives a []float64 payload, panicking on type mismatch.
func (c *Comm) RecvF64s(src, tag int) ([]float64, Status) {
	p, st := c.Recv(src, tag)
	v, ok := p.([]float64)
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d expected []float64 from %d tag %d, got %T", c.rank, st.Source, st.Tag, p))
	}
	return v, st
}

// F64Bytes reports the wire size of n float64 values.
func F64Bytes(n int) int { return 8 * n }

// Abort fails the whole world with err and unwinds the calling rank.
func (c *Comm) Abort(err error) {
	c.w.fail(err)
	panic(errFailed)
}

// --- SPMD harness --------------------------------------------------------

// Run spawns one goroutine per cluster node executing fn and waits for all
// of them. The first error (returned or panicked) aborts the whole world.
func Run(cl *cluster.Cluster, fn func(*Comm) error) error {
	w := NewWorld(cl)
	return w.Run(fn)
}

// Run executes fn on every rank of an existing world.
func (w *World) Run(fn func(*Comm) error) error {
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := w.NewComm(rank)
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok {
						if errors.Is(err, errFailed) {
							return // unwound by another rank's failure
						}
						if errors.Is(err, errCrashed) {
							return // injected crash: this rank simply stops
						}
					}
					w.fail(fmt.Errorf("rank %d panicked: %v", rank, p))
				}
			}()
			if err := fn(comm); err != nil {
				w.fail(fmt.Errorf("rank %d: %w", rank, err))
			}
		}(r)
	}
	wg.Wait()
	return w.Err()
}

// --- groups and collectives ----------------------------------------------

// Group is a subset of world ranks that participates in collectives
// together. All members must call each collective in the same order.
type Group struct {
	w       *World
	members []int       // world ranks
	slot    map[int]int // world rank -> index in members

	mu         sync.Mutex
	cond       *sync.Cond
	seq        []int64 // per-slot local op counter (written only by owner)
	collecting map[int64]*pending
	results    map[int64]*opResult

	// Free lists for the per-op bookkeeping structs, so a steady stream of
	// collectives recycles its pending/result objects instead of allocating
	// fresh ones each op. Guarded by mu.
	freePending []*pending
	freeResults []*opResult

	// f64Pool recycles the result vectors of the float64 reductions driven
	// through the *Into entry points (whose callers copy the result out
	// under the group lock and never retain the shared slice).
	f64Pool sync.Pool
}

type pending struct {
	arrived  int
	times    []vclock.Time
	contribs []any
	mask     []bool // mask[slot]: member has deposited (failure detection)
}

type opResult struct {
	value     any
	finish    vclock.Time
	cpuEach   vclock.Duration
	remaining int
	pooled    bool  // value came from f64Pool; recycle when the op drains
	err       error // collective failed: a group member died before depositing
}

// getPending returns a recycled (or new) pending op sized for the group.
// Callers hold g.mu.
func (g *Group) getPending() *pending {
	if n := len(g.freePending); n > 0 {
		p := g.freePending[n-1]
		g.freePending = g.freePending[:n-1]
		p.arrived = 0
		for i := range p.mask {
			p.mask[i] = false
		}
		return p
	}
	return &pending{
		times:    make([]vclock.Time, len(g.members)),
		contribs: make([]any, len(g.members)),
		mask:     make([]bool, len(g.members)),
	}
}

// putPending recycles a drained pending op. Callers hold g.mu.
func (g *Group) putPending(p *pending) {
	for i := range p.contribs {
		p.contribs[i] = nil // release references for the GC
	}
	g.freePending = append(g.freePending, p)
}

// getResult returns a recycled (or new) opResult. Callers hold g.mu.
func (g *Group) getResult() *opResult {
	if n := len(g.freeResults); n > 0 {
		r := g.freeResults[n-1]
		g.freeResults = g.freeResults[:n-1]
		*r = opResult{}
		return r
	}
	return &opResult{}
}

// getF64 returns a pooled []float64 of length n for an Into reduction.
func (g *Group) getF64(n int) []float64 {
	if v, ok := g.f64Pool.Get().(*[]float64); ok {
		if cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]float64, n)
}

// NewGroup returns the collective group over the given world ranks. Groups
// are canonical: every rank asking for the same member list receives the
// *same* Group object, which is what lets SPMD ranks rebuild a group after
// a membership change and still meet in its collectives.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("mpi: empty group")
	}
	key := fmt.Sprint(members)
	w.groups.Lock()
	if w.groups.byKey == nil {
		w.groups.byKey = make(map[string]*Group)
	}
	if g, ok := w.groups.byKey[key]; ok {
		w.groups.Unlock()
		return g
	}
	w.groups.Unlock()
	g := &Group{
		w:          w,
		members:    append([]int(nil), members...),
		slot:       make(map[int]int, len(members)),
		seq:        make([]int64, len(members)),
		collecting: make(map[int64]*pending),
		results:    make(map[int64]*opResult),
	}
	g.cond = sync.NewCond(&g.mu)
	for i, m := range members {
		if _, dup := g.slot[m]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in group", m))
		}
		g.slot[m] = i
	}
	w.groups.Lock()
	if prior, ok := w.groups.byKey[key]; ok {
		// Another rank registered the same group concurrently; use theirs.
		w.groups.Unlock()
		return prior
	}
	w.groups.byKey[key] = g
	w.groups.list = append(w.groups.list, g)
	w.groups.Unlock()
	return g
}

// AllGroup returns the group containing every world rank.
func (w *World) AllGroup() *Group { return w.all }

// Members returns the group's world ranks (callers must not mutate).
func (g *Group) Members() []int { return g.members }

// Size reports the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Slot reports rank's index within the group and whether it is a member.
func (g *Group) Slot(rank int) (int, bool) {
	s, ok := g.slot[rank]
	return s, ok
}

// steps returns the binomial-tree depth for the group size.
func (g *Group) steps() int {
	if len(g.members) <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(len(g.members)))))
}

// reduceFn combines all members' arrival times and contributions into the
// op's result value, completion time, and per-member CPU charge.
type reduceFn func(times []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration)

// rendezvous is the generic collective: every member deposits a
// contribution; the last to arrive runs reduce; everyone leaves with the
// result, their clock advanced to the completion time plus the CPU charge.
func (c *Comm) rendezvous(g *Group, contrib any, reduce reduceFn) any {
	return c.rendezvousInto(g, contrib, reduce, nil, false)
}

// rendezvousInto is rendezvous with optional copy-out semantics: when dst is
// non-nil the []float64 result is copied into dst *under the group lock*
// (before the op is released), so pooled result vectors can be recycled the
// moment the last member leaves without racing a slow reader. pooled marks
// the reduction's result vector as owned by g.f64Pool. A collective failure
// (dead group member) fails the whole world; use rendezvousErr to survive.
func (c *Comm) rendezvousInto(g *Group, contrib any, reduce reduceFn, dst []float64, pooled bool) any {
	value, err := c.rendezvousErr(g, contrib, reduce, dst, pooled)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
	return value
}

// rendezvousErr is the failure-aware collective core. When a group member
// is dead and has not deposited its contribution, every surviving member
// leaves the op with a *RankFailedError naming the dead rank(s), at its own
// deposit time and with no clock advance — the collective never completed,
// so it charges nothing. The error is computed once per op (by the first
// waiter to observe the death) and shared, so all survivors agree on it. A
// member that dies *inside* the op is impossible: injected crashes fire at
// operation entry, before the deposit.
func (c *Comm) rendezvousErr(g *Group, contrib any, reduce reduceFn, dst []float64, pooled bool) (any, error) {
	c.checkFailed()
	if c.flt != nil {
		c.pollFaults()
	}
	slot, ok := g.slot[c.rank]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in group", c.rank))
	}
	seq := g.seq[slot]
	g.seq[slot]++

	g.mu.Lock()
	p := g.collecting[seq]
	if p == nil {
		p = g.getPending()
		g.collecting[seq] = p
	}
	p.times[slot] = c.node.Now()
	p.contribs[slot] = contrib
	p.mask[slot] = true
	p.arrived++
	if p.arrived == len(g.members) {
		// Run the reduction outside the lock: every contribution is in and
		// immutable, and a panicking reduction (bad payload shapes) must
		// fail the world rather than deadlock it by unwinding with the
		// mutex held.
		delete(g.collecting, seq)
		g.mu.Unlock()
		value, finish, cpu, err := safeReduce(reduce, p.times, p.contribs)
		if err != nil {
			c.w.fail(fmt.Errorf("rank %d: collective reduction: %w", c.rank, err))
			panic(errFailed)
		}
		g.mu.Lock()
		g.putPending(p)
		r := g.getResult()
		r.value, r.finish, r.cpuEach, r.remaining, r.pooled = value, finish, cpu, len(g.members), pooled
		g.results[seq] = r
		g.cond.Broadcast()
	} else {
		for g.results[seq] == nil {
			if c.w.failed.Load() {
				g.mu.Unlock()
				panic(errFailed)
			}
			if c.w.deadCount.Load() > 0 {
				if missing := g.deadMissing(p); len(missing) != 0 {
					r := g.getResult()
					r.err = &RankFailedError{Op: "collective", Ranks: missing}
					// Only live members will claim this result. A member
					// that dies after this count is taken leaks one
					// opResult for the op — bounded, and never a deadlock.
					r.remaining = len(g.members) - g.deadMembers()
					g.results[seq] = r
					g.cond.Broadcast()
					break
				}
			}
			g.cond.Wait()
		}
	}
	r := g.results[seq]
	if r.err != nil {
		err := r.err
		r.remaining--
		if r.remaining == 0 {
			delete(g.results, seq)
			// The pending op is still registered (the op never completed);
			// recycle it with the result.
			if fp := g.collecting[seq]; fp != nil {
				delete(g.collecting, seq)
				g.putPending(fp)
			}
			r.err = nil
			r.value = nil
			g.freeResults = append(g.freeResults, r)
		}
		g.mu.Unlock()
		return nil, err
	}
	value, finish, cpuEach := r.value, r.finish, r.cpuEach
	if dst != nil {
		copy(dst, value.([]float64))
		value = nil // the caller reads dst; never leak the shared slice
	}
	r.remaining--
	if r.remaining == 0 {
		delete(g.results, seq)
		if r.pooled {
			v := r.value.([]float64)
			g.f64Pool.Put(&v)
		}
		r.value = nil
		g.freeResults = append(g.freeResults, r)
	}
	g.mu.Unlock()

	c.node.WaitUntil(finish)
	if cpuEach > 0 {
		c.node.Compute(cpuEach)
	}
	return value, nil
}

// safeReduce runs a reduction, converting panics into errors.
func safeReduce(reduce reduceFn, times []vclock.Time, contribs []any) (value any, finish vclock.Time, cpu vclock.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	value, finish, cpu = reduce(times, contribs)
	return value, finish, cpu, nil
}

// maxTime returns the latest of ts.
func maxTime(ts []vclock.Time) vclock.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// barrierReduce builds the barrier's reduction closure.
func (c *Comm) barrierReduce(g *Group) reduceFn {
	net := c.w.cl.Net()
	steps := g.steps()
	return func(ts []vclock.Time, _ []any) (any, vclock.Time, vclock.Duration) {
		finish := maxTime(ts).Add(vclock.Duration(steps) * net.Latency)
		return nil, finish, vclock.Duration(steps) * net.CPUPerMsg
	}
}

// Barrier synchronises the group.
func (c *Comm) Barrier(g *Group) {
	c.rendezvous(g, nil, c.barrierReduce(g))
}

// BarrierErr is Barrier returning an error instead of failing the world
// when a group member is dead.
func (c *Comm) BarrierErr(g *Group) error {
	_, err := c.rendezvousErr(g, nil, c.barrierReduce(g), nil, false)
	return err
}

// bcastReduce builds the broadcast closure: the result is the root slot's
// contribution, delivered along a binomial tree of the given depth.
func (c *Comm) bcastReduce(g *Group, rootSlot, bytes int) reduceFn {
	net := c.w.cl.Net()
	steps := g.steps()
	return func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		per := wireTime(net, bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return contribs[rootSlot], finish, vclock.Duration(steps) * cpuCost(net, bytes)
	}
}

// Bcast distributes the root's payload (of the given wire size) to every
// group member and returns it. root is a world rank.
func (c *Comm) Bcast(g *Group, root int, payload any, bytes int) any {
	rootSlot, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: bcast root %d not in group", root))
	}
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.rendezvous(g, contrib, c.bcastReduce(g, rootSlot, bytes))
}

// BcastErr is Bcast returning an error instead of failing the world when a
// group member is dead. If the root itself died the error names it and no
// payload is delivered.
func (c *Comm) BcastErr(g *Group, root int, payload any, bytes int) (any, error) {
	rootSlot, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: bcast root %d not in group", root))
	}
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.rendezvousErr(g, contrib, c.bcastReduce(g, rootSlot, bytes), nil, false)
}

// BcastF64sInto distributes the root's buf contents into every member's buf
// (all members pass same-length buffers; the root's is the source). The
// shared intermediate is pooled and each member copies out under the group
// lock, so the root may overwrite its buffer as soon as the call returns and
// steady-state broadcasts allocate nothing. Wire size and virtual cost are
// identical to Bcast with an F64Bytes payload.
func (c *Comm) BcastF64sInto(g *Group, root int, buf []float64) {
	net := c.w.cl.Net()
	steps := g.steps()
	rootSlot, ok := g.slot[root]
	if !ok {
		panic(fmt.Sprintf("mpi: bcast root %d not in group", root))
	}
	bytes := F64Bytes(len(buf))
	var contrib any
	if c.rank == root {
		contrib = buf
	}
	c.rendezvousInto(g, contrib, func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		src := contribs[rootSlot].([]float64)
		// Copy into a pooled vector: the root's own buffer is only stable
		// until the root leaves the collective, but members may copy out
		// later.
		out := g.getF64(len(src))
		copy(out, src)
		per := wireTime(net, bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return out, finish, vclock.Duration(steps) * cpuCost(net, bytes)
	}, buf, true)
}

// AllreduceF64s performs an element-wise reduction of each member's vector
// with op and returns the reduced vector (a fresh slice) on every member.
// The result is shared by all members and safe to retain. Hot paths that
// call a reduction every cycle should prefer AllreduceF64sInto, which
// recycles the shared intermediate and writes into a caller-owned buffer.
func (c *Comm) AllreduceF64s(g *Group, vals []float64, op func(a, b float64) float64) []float64 {
	res := c.allreduceF64s(g, vals, op, nil)
	return res.([]float64)
}

// AllreduceF64sInto reduces buf element-wise across the group and stores the
// result back into buf (which is both this rank's contribution and its
// destination). The shared intermediate vector is pooled inside the group,
// so steady-state reductions allocate only the reduction closure. buf must
// not be mutated by the caller until the call returns; afterwards the caller
// owns it fully — nothing retains a reference.
func (c *Comm) AllreduceF64sInto(g *Group, buf []float64, op func(a, b float64) float64) {
	c.allreduceF64sBoxed(g, buf, buf, op, buf)
}

func (c *Comm) allreduceF64s(g *Group, vals []float64, op func(a, b float64) float64, dst []float64) any {
	return c.allreduceF64sBoxed(g, vals, vals, op, dst)
}

// allreduceReduce builds the element-wise reduction closure shared by the
// plain and Err allreduce entry points. n is the vector length (fixes the
// wire size); pooled selects a pooled result vector.
func (c *Comm) allreduceReduce(g *Group, n int, op func(a, b float64) float64, pooled bool) reduceFn {
	net := c.w.cl.Net()
	steps := g.steps()
	bytes := F64Bytes(n)
	return func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		first := contribs[0].([]float64)
		var out []float64
		if pooled {
			out = g.getF64(len(first))
			copy(out, first)
		} else {
			out = append([]float64(nil), first...)
		}
		for _, cb := range contribs[1:] {
			v := cb.([]float64)
			if len(v) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			for i := range out {
				out[i] = op(out[i], v[i])
			}
		}
		per := wireTime(net, bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return out, finish, vclock.Duration(steps) * cpuCost(net, bytes)
	}
}

// allreduceF64sBoxed is the common reduction core. contrib must box the same
// slice as vals (callers with a pre-boxed scratch pass it to avoid the
// per-op interface allocation). When dst is non-nil the result is copied
// into dst under the group lock and the shared vector is recycled.
func (c *Comm) allreduceF64sBoxed(g *Group, vals []float64, contrib any, op func(a, b float64) float64, dst []float64) any {
	pooled := dst != nil
	return c.rendezvousInto(g, contrib, c.allreduceReduce(g, len(vals), op, pooled), dst, pooled)
}

// Sum and Max are common allreduce operators.
func Sum(a, b float64) float64 { return a + b }

// Max returns the larger of a and b (allreduce operator).
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AllreduceSum reduces a single value by summation.
func (c *Comm) AllreduceSum(g *Group, v float64) float64 {
	c.sbuf[0] = v
	c.allreduceF64sBoxed(g, c.sbuf, c.sbox, Sum, c.sbuf)
	return c.sbuf[0]
}

// AllreduceMax reduces a single value by maximum.
func (c *Comm) AllreduceMax(g *Group, v float64) float64 {
	c.sbuf[0] = v
	c.allreduceF64sBoxed(g, c.sbuf, c.sbox, Max, c.sbuf)
	return c.sbuf[0]
}

// AllreduceF64sErr is AllreduceF64s returning an error instead of failing
// the world when a group member is dead. On error nothing was reduced and
// vals is untouched, so the caller may retry over a rebuilt group.
func (c *Comm) AllreduceF64sErr(g *Group, vals []float64, op func(a, b float64) float64) ([]float64, error) {
	res, err := c.rendezvousErr(g, vals, c.allreduceReduce(g, len(vals), op, false), nil, false)
	if err != nil {
		return nil, err
	}
	return res.([]float64), nil
}

// AllreduceF64sIntoErr is AllreduceF64sInto returning an error instead of
// failing the world when a group member is dead. On error buf is untouched
// (the copy-out happens only on success), so the caller may retry.
func (c *Comm) AllreduceF64sIntoErr(g *Group, buf []float64, op func(a, b float64) float64) error {
	_, err := c.rendezvousErr(g, buf, c.allreduceReduce(g, len(buf), op, true), buf, true)
	return err
}

// AllreduceSumErr is AllreduceSum returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllreduceSumErr(g *Group, v float64) (float64, error) {
	c.sbuf[0] = v
	if _, err := c.rendezvousErr(g, c.sbox, c.allreduceReduce(g, 1, Sum, true), c.sbuf, true); err != nil {
		return 0, err
	}
	return c.sbuf[0], nil
}

// AllreduceMaxErr is AllreduceMax returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllreduceMaxErr(g *Group, v float64) (float64, error) {
	c.sbuf[0] = v
	if _, err := c.rendezvousErr(g, c.sbox, c.allreduceReduce(g, 1, Max, true), c.sbuf, true); err != nil {
		return 0, err
	}
	return c.sbuf[0], nil
}

// allgatherReduce builds the allgather closure: the result is a slot-ordered
// copy of the contributions.
func (c *Comm) allgatherReduce(g *Group, bytes int) reduceFn {
	net := c.w.cl.Net()
	steps := g.steps()
	return func(ts []vclock.Time, contribs []any) (any, vclock.Time, vclock.Duration) {
		out := append([]any(nil), contribs...)
		// Recursive doubling: in step k each node exchanges 2^k
		// contributions, so the dominant cost is the last step carrying
		// half the total payload.
		total := bytes * len(g.members)
		per := wireTime(net, total/2+bytes)
		finish := maxTime(ts).Add(vclock.Duration(steps) * per)
		return out, finish, vclock.Duration(steps) * cpuCost(net, total/2+bytes)
	}
}

// Allgather collects every member's contribution, ordered by group slot,
// on every member. bytes is the wire size of one contribution.
func (c *Comm) Allgather(g *Group, contrib any, bytes int) []any {
	res := c.rendezvous(g, contrib, c.allgatherReduce(g, bytes))
	return res.([]any)
}

// AllgatherErr is Allgather returning an error instead of failing the
// world when a group member is dead.
func (c *Comm) AllgatherErr(g *Group, contrib any, bytes int) ([]any, error) {
	res, err := c.rendezvousErr(g, contrib, c.allgatherReduce(g, bytes), nil, false)
	if err != nil {
		return nil, err
	}
	return res.([]any), nil
}

// AllgatherF64 gathers one float64 per member, ordered by slot.
func (c *Comm) AllgatherF64(g *Group, v float64) []float64 {
	parts := c.Allgather(g, v, 8)
	out := make([]float64, len(parts))
	for i, p := range parts {
		out[i] = p.(float64)
	}
	return out
}

// AllgatherInt gathers one int per member, ordered by slot.
func (c *Comm) AllgatherInt(g *Group, v int) []int {
	parts := c.Allgather(g, v, 8)
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = p.(int)
	}
	return out
}

// Gather collects contributions on root (world rank); root receives the
// slot-ordered slice, everyone else nil.
func (c *Comm) Gather(g *Group, root int, contrib any, bytes int) []any {
	all := c.Allgather(g, contrib, bytes) // gather modelled as allgather; cost shape is close enough
	if c.rank != root {
		return nil
	}
	return all
}
