package mpi

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// runPair runs fn on a 2-rank world over the default interconnect and
// returns both ranks' finish times.
func runPair(t *testing.T, fn func(c *Comm, me, peer int)) [2]vclock.Time {
	t.Helper()
	var finish [2]vclock.Time
	if err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		fn(c, c.Rank(), 1-c.Rank())
		finish[c.Rank()] = c.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return finish
}

func TestIsendIrecvDeliversPayloadAndStatus(t *testing.T) {
	runPair(t, func(c *Comm, me, peer int) {
		rq := c.Irecv(peer, 3)
		c.Isend(peer, 3, []int{me * 10}, 256)
		p, st := c.Wait(rq)
		if got := p.([]int)[0]; got != peer*10 {
			t.Errorf("rank %d: payload %d, want %d", me, got, peer*10)
		}
		if st.Source != peer || st.Tag != 3 || st.Bytes != 256 {
			t.Errorf("rank %d: status %+v", me, st)
		}
	})
}

// TestIrecvMatchesQueuedAndPostedPaths exercises both delivery paths: a
// message already queued when Irecv posts (queue hit: the request is born
// done) and an Irecv posted before the send (the sender fills the posted
// request directly).
func TestIrecvMatchesQueuedAndPostedPaths(t *testing.T) {
	runPair(t, func(c *Comm, me, peer int) {
		if me == 0 {
			c.Send(1, 7, "early", 8) // will sit in rank 1's queue
			c.Send(1, 99, nil, 0)    // physical sync marker
			rq := c.Irecv(1, 8)      // posted before rank 1 sends
			if p, _ := c.Wait(rq); p.(string) != "late" {
				t.Errorf("posted path payload %v", p)
			}
		} else {
			// Blocking on the sync marker guarantees the tag-7 message is
			// physically queued: one sender's deliveries happen in program
			// order.
			c.Recv(0, 99)
			rq := c.Irecv(0, 7)
			if !c.Test(rq) {
				t.Error("queued message did not complete the Irecv at post")
			}
			if p, _ := c.Wait(rq); p.(string) != "early" {
				t.Errorf("queued path payload %v", p)
			}
			c.Send(0, 8, "late", 8)
		}
	})
}

// TestNonblockingMatchesBlockingVirtualTime pins the virtual-time contract:
// an exchange phrased as Irecv/Compute/Isend/Wait makes exactly the charges
// of Compute/Send/Recv, so the finish times are identical.
func TestNonblockingMatchesBlockingVirtualTime(t *testing.T) {
	const work = 3 * vclock.Millisecond
	blocking := runPair(t, func(c *Comm, me, peer int) {
		for tag := 0; tag < 4; tag++ {
			c.Node().Compute(work)
			c.Send(peer, tag, nil, 4096)
			c.Recv(peer, tag)
		}
	})
	nonblocking := runPair(t, func(c *Comm, me, peer int) {
		for tag := 0; tag < 4; tag++ {
			rq := c.Irecv(peer, tag)
			c.Node().Compute(work)
			c.Isend(peer, tag, nil, 4096)
			c.Wait(rq)
		}
	})
	if blocking != nonblocking {
		t.Fatalf("finish times differ: blocking %v nonblocking %v", blocking, nonblocking)
	}
}

// TestOverlapHidesWire pins the engine's reason to exist: posting the
// exchange before the compute strictly beats computing first, and the gain
// is visible in the HiddenWire counter.
func TestOverlapHidesWire(t *testing.T) {
	const work = 3 * vclock.Millisecond
	const b = 1 << 20 // a megabyte, so wire time is substantial
	serial := runPair(t, func(c *Comm, me, peer int) {
		c.Node().Compute(work)
		c.Send(peer, 0, nil, b)
		c.Recv(peer, 0)
	})
	var hidden [2]vclock.Duration
	overlapped := [2]vclock.Time{}
	if err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		me, peer := c.Rank(), 1-c.Rank()
		rq := c.Irecv(peer, 0)
		c.Isend(peer, 0, nil, b)
		c.Node().Compute(work)
		c.Wait(rq)
		overlapped[me] = c.Now()
		hidden[me] = c.HiddenWire
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if overlapped[r] >= serial[r] {
			t.Errorf("rank %d: overlap %v not below serial %v", r, overlapped[r], serial[r])
		}
		if hidden[r] <= 0 {
			t.Errorf("rank %d: no hidden wire recorded", r)
		}
	}
}

// TestWaitanyClaimsEachRequestOnce posts several receives and harvests them
// with Waitany: every index is returned exactly once, Waitany never touches
// the virtual clock, and the requests remain waitable afterwards.
func TestWaitanyClaimsEachRequestOnce(t *testing.T) {
	const n = 5
	runPair(t, func(c *Comm, me, peer int) {
		if me == 0 {
			reqs := make([]*Request, n)
			for i := range reqs {
				reqs[i] = c.Irecv(1, i)
			}
			before := c.Now()
			seen := map[int]bool{}
			for range reqs {
				i := c.Waitany(reqs)
				if i < 0 || seen[i] {
					t.Errorf("Waitany returned %d (seen=%v)", i, seen)
				}
				seen[i] = true
			}
			if c.Waitany(reqs) != -1 {
				t.Error("Waitany on fully claimed set should return -1")
			}
			if c.Now() != before {
				t.Error("Waitany advanced the virtual clock")
			}
			for i, rq := range reqs {
				if p, _ := c.Wait(rq); p.(int) != i*100 {
					t.Errorf("request %d payload %v", i, p)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				c.Node().Compute(vclock.Duration(i+1) * vclock.Millisecond)
				c.Send(0, i, i*100, 64)
			}
		}
	})
}

func TestIrecvWildcardPanics(t *testing.T) {
	runPair(t, func(c *Comm, me, peer int) {
		if me != 0 {
			return
		}
		for _, post := range []func(){
			func() { c.Irecv(AnySource, 0) },
			func() { c.Irecv(0, AnyTag) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("wildcard Irecv did not panic")
					}
				}()
				post()
			}()
		}
	})
}

// simHaloOverlap reproduces the exact three-rank scenario haloOverlapCycle
// prices (see cost.go) with real Isend/Irecv/Wait traffic and returns the
// middle rank's wall time from phase start to both ghosts received.
func simHaloOverlap(t *testing.T, net cluster.NetParams, b int, interior vclock.Duration) vclock.Duration {
	t.Helper()
	spec := cluster.Uniform(3)
	spec.Net = net
	var mu sync.Mutex
	var middle vclock.Duration
	if err := Run(cluster.New(spec), func(c *Comm) error {
		switch c.Rank() {
		case 0, 2:
			rq := c.Irecv(1, 9)
			c.Isend(1, 9, nil, b)
			c.Node().Compute(interior)
			c.Wait(rq)
		case 1:
			start := c.Now()
			r0 := c.Irecv(0, 9)
			r2 := c.Irecv(2, 9)
			c.Isend(0, 9, nil, b)
			c.Isend(2, 9, nil, b)
			c.Node().Compute(interior)
			c.Wait(r0)
			c.Wait(r2)
			mu.Lock()
			middle = c.Now().Sub(start)
			mu.Unlock()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return middle
}

// TestHaloOverlapCycleMatchesPerMessageSim cross-validates the closed-form
// overlap pricing against per-message simulation, in the spirit of
// crosscheck_test.go: full stall (no interior), partial overlap, and fully
// hidden wire.
func TestHaloOverlapCycleMatchesPerMessageSim(t *testing.T) {
	net := cluster.DefaultNet()
	cases := []struct {
		name     string
		b        int
		interior vclock.Duration
	}{
		{"full-stall", 1 << 20, 0},
		{"partial", 1 << 20, wireTime(net, 1<<20) / 2},
		{"hidden", 4096, 10 * vclock.Millisecond},
	}
	sawStall, sawHidden := false, false
	for _, tc := range cases {
		got := simHaloOverlap(t, net, tc.b, tc.interior)
		want := haloOverlapCycle(net, tc.b, tc.interior)
		if got != want {
			t.Errorf("%s: simulated %v, priced %v", tc.name, got, want)
		}
		if s := nbRecvStall(net, tc.b, tc.interior+cpuCost(net, tc.b)); s > 0 {
			sawStall = true
		} else {
			sawHidden = true
		}
	}
	if !sawStall || !sawHidden {
		t.Fatalf("cases must cover both stalled and fully hidden regimes (stall=%v hidden=%v)", sawStall, sawHidden)
	}
}
