package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

func run(t *testing.T, n int, fn func(*Comm) error) {
	t.Helper()
	if err := Run(cluster.New(cluster.Uniform(n)), fn); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3}, F64Bytes(3))
			return nil
		}
		v, st := c.RecvF64s(0, 7)
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 24 {
			return fmt.Errorf("status %+v", st)
		}
		if len(v) != 3 || v[0] != 1 || v[2] != 3 {
			return fmt.Errorf("payload %v", v)
		}
		return nil
	})
}

func TestRecvAdvancesClockPastWireTime(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		net := c.World().Cluster().Net()
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{42}, F64Bytes(1))
			return nil
		}
		c.Recv(0, 0)
		// Arrival must include at least the wire latency.
		if c.Now() < vclock.Time(net.Latency) {
			return fmt.Errorf("receiver clock %v < latency %v", c.Now(), net.Latency)
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1}, 8)
			c.Send(1, 2, []float64{2}, 8)
			return nil
		}
		// Receive out of order by tag.
		v2, _ := c.RecvF64s(0, 2)
		v1, _ := c.RecvF64s(0, 1)
		if v1[0] != 1 || v2[0] != 2 {
			return fmt.Errorf("got %v %v", v1, v2)
		}
		return nil
	})
}

func TestFIFOPerSourceTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 3, []float64{float64(i)}, 8)
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			v, _ := c.RecvF64s(0, 3)
			if v[0] != float64(i) {
				return fmt.Errorf("out of order: got %v want %d", v[0], i)
			}
		}
		return nil
	})
}

func TestAnySourceAndTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{5}, 8)
			return nil
		}
		v, st := c.RecvF64s(AnySource, AnyTag)
		if v[0] != 5 || st.Source != 0 || st.Tag != 9 {
			return fmt.Errorf("got %v %+v", v, st)
		}
		return nil
	})
}

func TestRingPassing(t *testing.T) {
	const n = 8
	run(t, n, func(c *Comm) error {
		token := []float64{float64(c.Rank())}
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 0, token, 8)
		got, _ := c.RecvF64s(prev, 0)
		if got[0] != float64(prev) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestBarrierAlignsClocks(t *testing.T) {
	var mu sync.Mutex
	times := map[int]vclock.Time{}
	run(t, 4, func(c *Comm) error {
		// Skew the clocks, then barrier.
		c.Node().Compute(vclock.Duration(c.Rank()+1) * vclock.Duration(100*vclock.Millisecond))
		c.Barrier(c.World().AllGroup())
		mu.Lock()
		times[c.Rank()] = c.Now()
		mu.Unlock()
		return nil
	})
	ref := times[0]
	for r, tm := range times {
		if tm < vclock.Time(400*vclock.Millisecond) {
			t.Errorf("rank %d finished barrier at %v, before slowest arrival", r, tm)
		}
		// All within the small CPU charge of each other.
		diff := tm.Sub(ref)
		if diff < 0 {
			diff = -diff
		}
		if diff > vclock.Duration(vclock.Millisecond) {
			t.Errorf("rank %d barrier exit %v far from rank 0's %v", r, tm, ref)
		}
	}
}

func TestBcast(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		var payload any
		if c.Rank() == 2 {
			payload = "hello"
		}
		got := c.Bcast(c.World().AllGroup(), 2, payload, 5)
		if got.(string) != "hello" {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestAllreduceSumAndMax(t *testing.T) {
	const n = 6
	run(t, n, func(c *Comm) error {
		g := c.World().AllGroup()
		s := c.AllreduceSum(g, float64(c.Rank()+1))
		if s != n*(n+1)/2 {
			return fmt.Errorf("sum = %v", s)
		}
		m := c.AllreduceMax(g, float64(c.Rank()))
		if m != n-1 {
			return fmt.Errorf("max = %v", m)
		}
		return nil
	})
}

func TestAllreduceVector(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		v := []float64{float64(c.Rank()), 1}
		out := c.AllreduceF64s(c.World().AllGroup(), v, Sum)
		if out[0] != 3 || out[1] != 3 {
			return fmt.Errorf("got %v", out)
		}
		// Input must not be aliased by the result.
		if &out[0] == &v[0] {
			return errors.New("allreduce aliased input")
		}
		return nil
	})
}

func TestAllgatherOrdering(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		vals := c.AllgatherF64(c.World().AllGroup(), float64(c.Rank()*10))
		for i, v := range vals {
			if v != float64(i*10) {
				return fmt.Errorf("slot %d = %v", i, v)
			}
		}
		ints := c.AllgatherInt(c.World().AllGroup(), c.Rank())
		if !sort.IntsAreSorted(ints) {
			return fmt.Errorf("ints %v", ints)
		}
		return nil
	})
}

func TestGatherOnlyRoot(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		out := c.Gather(c.World().AllGroup(), 1, c.Rank()*2, 8)
		if c.Rank() == 1 {
			if len(out) != 3 || out[2].(int) != 4 {
				return fmt.Errorf("root got %v", out)
			}
		} else if out != nil {
			return errors.New("non-root got data")
		}
		return nil
	})
}

func TestSubGroupCollectives(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		w := c.World()
		if c.Rank() == 3 {
			return nil // not in the group; does not participate
		}
		g := groupFor(w, c.Rank(), []int{0, 1, 2})
		s := c.AllreduceSum(g, 1)
		if s != 3 {
			return fmt.Errorf("subgroup sum = %v", s)
		}
		return nil
	})
}

// groupFor builds one shared group per member set within a single world.
var groupCache sync.Map // map[*World+key]*Group

func groupFor(w *World, rank int, members []int) *Group {
	key := fmt.Sprintf("%p:%v", w, members)
	if g, ok := groupCache.Load(key); ok {
		return g.(*Group)
	}
	g, _ := groupCache.LoadOrStore(key, w.NewGroup(members))
	return g.(*Group)
}

func TestRepeatedCollectives(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		g := c.World().AllGroup()
		for i := 0; i < 200; i++ {
			got := c.AllreduceSum(g, float64(i))
			if got != float64(4*i) {
				return fmt.Errorf("iter %d: %v", i, got)
			}
		}
		return nil
	})
}

func TestErrorAbortsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(3)), func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("boom")
		}
		// Other ranks block forever; the failure must unwind them.
		c.Recv(1, 0)
		return nil
	})
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicAbortsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(3)), func(c *Comm) error {
		if c.Rank() == 2 {
			panic("kaboom")
		}
		c.Barrier(c.World().AllGroup())
		return nil
	})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestTrafficCounters(t *testing.T) {
	var mu sync.Mutex
	stats := map[int][4]int64{}
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2}, 16)
			c.Send(1, 0, []float64{3}, 8)
		} else {
			c.Recv(0, 0)
			c.Recv(0, 0)
		}
		mu.Lock()
		stats[c.Rank()] = [4]int64{c.SentMsgs, c.SentBytes, c.RecvMsgs, c.RecvBytes}
		mu.Unlock()
		return nil
	})
	if s := stats[0]; s[0] != 2 || s[1] != 24 {
		t.Errorf("sender stats %v", s)
	}
	if s := stats[1]; s[2] != 2 || s[3] != 24 {
		t.Errorf("receiver stats %v", s)
	}
}

func TestLoadedNodeSlowsCollective(t *testing.T) {
	// A barrier completes when the slowest member arrives; a loaded member
	// computing the same work arrives later, so everyone's exit time grows.
	exit := func(load bool) vclock.Time {
		spec := cluster.Uniform(2)
		if load {
			spec = spec.With(cluster.TimeEvent(1, 0, +1))
		}
		var t1 vclock.Time
		var mu sync.Mutex
		_ = Run(cluster.New(spec), func(c *Comm) error {
			c.Node().Compute(vclock.Duration(500 * vclock.Millisecond))
			c.Barrier(c.World().AllGroup())
			mu.Lock()
			if c.Now() > t1 {
				t1 = c.Now()
			}
			mu.Unlock()
			return nil
		})
		return t1
	}
	unloaded, loaded := exit(false), exit(true)
	if loaded < unloaded+vclock.Time(400*vclock.Millisecond) {
		t.Errorf("loaded exit %v, unloaded %v: load did not slow the collective", loaded, unloaded)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(1)), func(c *Comm) error {
		c.Send(5, 0, nil, 0)
		return nil
	})
	if err == nil {
		t.Fatal("expected failure")
	}
}

func TestAllreduceF64sInto(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		g := c.World().AllGroup()
		buf := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		c.AllreduceF64sInto(g, buf, Sum)
		if buf[0] != 6 || buf[1] != 60 {
			return fmt.Errorf("rank %d: buf = %v", c.Rank(), buf)
		}
		// The buffer is caller-owned again: mutate it and reduce once more to
		// prove no shared state leaks between ops.
		buf[0], buf[1] = 1, 2
		c.AllreduceF64sInto(g, buf, Sum)
		if buf[0] != 4 || buf[1] != 8 {
			return fmt.Errorf("rank %d: second reduce = %v", c.Rank(), buf)
		}
		return nil
	})
}

func TestAllreduceIntoMatchesAllocating(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		g := c.World().AllGroup()
		vals := []float64{float64(c.Rank()) * 1.5, 7 - float64(c.Rank())}
		want := c.AllreduceF64s(g, vals, Max)
		buf := append([]float64(nil), vals...)
		c.AllreduceF64sInto(g, buf, Max)
		if buf[0] != want[0] || buf[1] != want[1] {
			return fmt.Errorf("into %v, allocating %v", buf, want)
		}
		return nil
	})
}

func TestAllreduceIntoLengthMismatchAborts(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		g := c.World().AllGroup()
		buf := make([]float64, 1+c.Rank()) // lengths differ across ranks
		c.AllreduceF64sInto(g, buf, Sum)
		return nil
	})
	if err == nil || !contains(err.Error(), "length mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestBcastF64sInto(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		g := c.World().AllGroup()
		buf := make([]float64, 3)
		if c.Rank() == 2 {
			buf[0], buf[1], buf[2] = 5, 6, 7
		}
		c.BcastF64sInto(g, 2, buf)
		if buf[0] != 5 || buf[1] != 6 || buf[2] != 7 {
			return fmt.Errorf("rank %d: buf = %v", c.Rank(), buf)
		}
		// Root overwrites its buffer immediately; a second broadcast must
		// still deliver the new values intact everywhere.
		if c.Rank() == 2 {
			buf[0], buf[1], buf[2] = 8, 9, 10
		}
		c.BcastF64sInto(g, 2, buf)
		if buf[0] != 8 || buf[1] != 9 || buf[2] != 10 {
			return fmt.Errorf("rank %d: second bcast = %v", c.Rank(), buf)
		}
		return nil
	})
}

// TestFailWakesBlockedReceivers pins the world-failure wakeup path of the
// indexed mailbox: ranks blocked in Recv — with a posted exact pattern and
// with wildcards — and ranks parked inside a collective must all unwind when
// another rank aborts. Run under -race this also exercises fail()'s
// interaction with concurrent sends.
func TestFailWakesBlockedReceivers(t *testing.T) {
	boom := errors.New("deliberate failure")
	err := Run(cluster.New(cluster.Uniform(5)), func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Give the others time to block, then fail the world.
			for i := 0; i < 100; i++ {
				c.Send(0, 99, nil, 0) // self-traffic to churn the mailbox
				c.Recv(0, 99)
			}
			c.Abort(boom)
		case 1:
			c.Recv(3, 42) // never sent: blocks with an exact posted pattern
		case 2:
			c.Recv(AnySource, AnyTag) // blocks with a wildcard pattern
		case 3, 4:
			// Blocks in a collective: rank 0 never joins this group's op.
			g := c.World().NewGroup([]int{0, 3, 4})
			c.Barrier(g)
		}
		return nil
	})
	if !errors.Is(err, boom) && (err == nil || !contains(err.Error(), "deliberate failure")) {
		t.Fatalf("err = %v", err)
	}
}

func TestBigTrafficVolume(t *testing.T) {
	// Stress the mailbox with many interleaved tags from two senders.
	run(t, 3, func(c *Comm) error {
		const k = 300
		switch c.Rank() {
		case 0, 1:
			for i := 0; i < k; i++ {
				c.Send(2, i%7, []float64{float64(c.Rank()*10000 + i)}, 8)
			}
		case 2:
			seen := map[float64]bool{}
			for s := 0; s < 2; s++ {
				for i := 0; i < k; i++ {
					v, _ := c.RecvF64s(s, i%7)
					if seen[v[0]] {
						return fmt.Errorf("duplicate %v", v[0])
					}
					seen[v[0]] = true
				}
			}
			if len(seen) != 2*k {
				return fmt.Errorf("got %d messages", len(seen))
			}
		}
		return nil
	})
}
