package mpi

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// This file validates the one-sided layer (window.go) the same way the
// collective cost model is validated: against per-message Send/Recv
// simulation of the identical traffic, exactly — plus the failure-at-fence
// suite (a dead member resolves to RankFailedError, never a hang, and no
// deposit is ever leaked).

// ringPutFence runs an n-rank world where every rank Puts bytes into its
// successor's window and closes the epoch with a fence, and returns each
// rank's final virtual time and receive stall.
func ringPutFence(t *testing.T, n, bytes int, net cluster.NetParams) ([]vclock.Time, []vclock.Duration) {
	t.Helper()
	spec := cluster.Uniform(n)
	spec.Net = net
	finish := make([]vclock.Time, n)
	stall := make([]vclock.Duration, n)
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		win := c.WinCreate(g, make(FlatMem, bytes/8))
		c.Fence(win) // open the access epoch
		src := make([]float64, bytes/8)
		for i := range src {
			src[i] = float64(c.Rank()*1000 + i)
		}
		c.Put(win, (c.Rank()+1)%n, 0, src)
		c.Fence(win) // close: the owner settles its predecessor's deposit
		finish[c.Rank()] = c.Now()
		stall[c.Rank()] = c.RecvStall
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after clean put/fence run", leaked)
	}
	return finish, stall
}

// ringSendRecv mirrors ringPutFence with paired point-to-point traffic and
// the same synchronisation structure: barrier, send to successor, barrier,
// receive from predecessor.
func ringSendRecv(t *testing.T, n, bytes int, net cluster.NetParams) ([]vclock.Time, []vclock.Duration) {
	t.Helper()
	spec := cluster.Uniform(n)
	spec.Net = net
	finish := make([]vclock.Time, n)
	stall := make([]vclock.Duration, n)
	if err := Run(cluster.New(spec), func(c *Comm) error {
		g := c.World().AllGroup()
		c.Barrier(g)
		c.Send((c.Rank()+1)%n, 7, nil, bytes)
		c.Barrier(g)
		c.Recv((c.Rank()-1+n)%n, 7)
		finish[c.Rank()] = c.Now()
		stall[c.Rank()] = c.RecvStall
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return finish, stall
}

// TestPutFenceMatchesSendRecvOnWire pins the tentpole's pricing contract on
// a CPU-free interconnect: a Put/Fence epoch must land every rank at
// *exactly* the virtual time of the equivalent barrier-framed Send/Recv
// exchange — the fence synchronisation is a dissemination barrier and the
// deposit settlement is a receive-side Wait, so with CPU zeroed the two
// formulations are indistinguishable, rank by rank.
func TestPutFenceMatchesSendRecvOnWire(t *testing.T) {
	net := wireNet()
	for _, n := range []int{2, 4, 8} {
		for _, bytes := range []int{8, 4096} {
			rmaT, rmaS := ringPutFence(t, n, bytes, net)
			p2pT, p2pS := ringSendRecv(t, n, bytes, net)
			for r := 0; r < n; r++ {
				if rmaT[r] != p2pT[r] {
					t.Errorf("n=%d bytes=%d rank %d: put/fence finish %v, send/recv %v",
						n, bytes, r, rmaT[r], p2pT[r])
				}
				if rmaS[r] != p2pS[r] {
					t.Errorf("n=%d bytes=%d rank %d: put/fence stall %v, send/recv %v",
						n, bytes, r, rmaS[r], p2pS[r])
				}
			}
		}
	}
}

// TestPutFenceSavesExactRecvCPU pins the modelled saving on the default
// (CPU-charging) interconnect: the Put target's timeline is *exactly* one
// receive-side cpuCost(bytes) shorter than the paired send/recv target's —
// nothing else about the two timelines differs (deposit arrival stamps and
// residual stall are identical by construction).
func TestPutFenceSavesExactRecvCPU(t *testing.T) {
	net := cluster.DefaultNet()
	for _, n := range []int{2, 4, 8} {
		for _, bytes := range []int{8, 4096} {
			rmaT, rmaS := ringPutFence(t, n, bytes, net)
			p2pT, p2pS := ringSendRecv(t, n, bytes, net)
			saved := cpuCost(net, bytes)
			for r := 0; r < n; r++ {
				if got := p2pT[r].Sub(rmaT[r]); got != saved {
					t.Errorf("n=%d bytes=%d rank %d: put/fence saves %v, want exactly cpuCost=%v",
						n, bytes, r, got, saved)
				}
				if rmaS[r] != p2pS[r] {
					t.Errorf("n=%d bytes=%d rank %d: stall diverged: rma %v, p2p %v",
						n, bytes, r, rmaS[r], p2pS[r])
				}
			}
		}
	}
}

// TestGetFenceMatchesRequestResponseSim validates Get's arrival model — one
// latency for the zero-byte request to reach the target plus the payload's
// wire time back — against a per-message request/response simulation on the
// CPU-free interconnect.
func TestGetFenceMatchesRequestResponseSim(t *testing.T) {
	net := wireNet()
	const elems = 4096 // large payload so arrival, not the fence, dominates
	bytes := F64Bytes(elems)

	// One-sided: rank 0 Gets from rank 1 and closes the epoch.
	var rmaFinish vclock.Time
	spec := cluster.Uniform(2)
	spec.Net = net
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		mem := make(FlatMem, elems)
		for i := range mem {
			mem[i] = float64(c.Rank()*10 + i)
		}
		win := c.WinCreate(g, mem)
		c.Fence(win)
		dst := make([]float64, elems)
		if c.Rank() == 0 {
			c.Get(win, 1, 0, dst)
		}
		c.Fence(win)
		if c.Rank() == 0 {
			rmaFinish = c.Now()
			for i := range dst {
				if dst[i] != float64(10+i) {
					t.Errorf("get element %d = %v, want %v", i, dst[i], float64(10+i))
					break
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after get/fence run", leaked)
	}

	// Per-message mirror: a zero-byte request, a passive responder that
	// forwards at the wire level (zero CPU), and the payload coming back.
	var simFinish vclock.Time
	spec2 := cluster.Uniform(2)
	spec2.Net = net
	if err := Run(cluster.New(spec2), func(c *Comm) error {
		g := c.World().AllGroup()
		c.Barrier(g)
		if c.Rank() == 0 {
			c.Send(1, 1, nil, 0)
			c.Recv(1, 2)
			simFinish = c.Now()
		} else {
			c.Recv(0, 1)
			c.Send(0, 2, nil, bytes)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rmaFinish != simFinish {
		t.Errorf("get/fence origin finishes at %v, request/response sim at %v", rmaFinish, simFinish)
	}
}

// TestFenceHiddenWireMatchesClosedForm pins the fence's stall/credit
// arithmetic against the nbRecvStall closed form: with the owner computing
// W between the origin's Put and the epoch-closing fence, the residual
// stall is nbRecvStall(bytes, W + fenceWire) and the hidden credit is the
// wire time minus that stall.
func TestFenceHiddenWireMatchesClosedForm(t *testing.T) {
	net := wireNet() // zero CPU keeps both ranks' deposit stamps aligned
	const elems = 2048
	bytes := F64Bytes(elems)
	for _, overlapS := range []float64{1e-6, 1.0} { // partial and full hiding
		var stall, hidden vclock.Duration
		spec := cluster.Uniform(2)
		spec.Net = net
		if err := Run(cluster.New(spec), func(c *Comm) error {
			g := c.World().AllGroup()
			win := c.WinCreate(g, make(FlatMem, elems))
			c.Fence(win)
			if c.Rank() == 0 {
				c.Put(win, 1, 0, make([]float64, elems))
			} else {
				c.Node().Compute(vclock.FromSeconds(overlapS))
			}
			c.Fence(win)
			if c.Rank() == 1 {
				stall, hidden = c.RecvStall, c.HiddenWire
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// The owner reaches the settlement fenceWire after its own fence
		// deposit (the origin deposited earlier — zero CPU, so its Put and
		// fence arrival happen at the epoch-open time).
		fenceWire := barrierCost(net, 2).wire
		wantStall := nbRecvStall(net, bytes, vclock.FromSeconds(overlapS)+fenceWire)
		if stall != wantStall {
			t.Errorf("overlap %vs: fence stall %v, closed form %v", overlapS, stall, wantStall)
		}
		if want := wireTime(net, bytes) - wantStall; hidden != want {
			t.Errorf("overlap %vs: hidden credit %v, want %v", overlapS, hidden, want)
		}
	}
}

// TestFenceDrainDeterministic pins the settlement order contract: many
// origins with different payload sizes deposit into one owner, and the
// owner's final clock, stall, and traffic counters must be bit-identical
// across repeated runs regardless of physical scheduling.
func TestFenceDrainDeterministic(t *testing.T) {
	const n = 8
	run := func() (vclock.Time, vclock.Duration, int64) {
		var finish vclock.Time
		var stall vclock.Duration
		var bytes int64
		spec := cluster.Uniform(n)
		if err := Run(cluster.New(spec), func(c *Comm) error {
			g := c.World().AllGroup()
			win := c.WinCreate(g, make(FlatMem, 64*n))
			c.Fence(win)
			if c.Rank() != 0 {
				// Uneven payloads at uneven offsets, all into rank 0.
				src := make([]float64, 8*c.Rank())
				c.Put(win, 0, 64*(c.Rank()-1), src[:4])
				c.Put(win, 0, 64*(c.Rank()-1)+4, src)
			}
			c.Fence(win)
			if c.Rank() == 0 {
				finish, stall, bytes = c.Now(), c.RecvStall, c.RecvBytes
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return finish, stall, bytes
	}
	f0, s0, b0 := run()
	for i := 0; i < 4; i++ {
		f, s, b := run()
		if f != f0 || s != s0 || b != b0 {
			t.Fatalf("run %d diverged: finish %v/%v stall %v/%v bytes %d/%d", i, f, f0, s, s0, b, b0)
		}
	}
}

// TestFenceCrashTargetBeforeDeposit is the failure-at-fence suite's "dead
// rank never deposited" case: rank 2 crashes at a cycle boundary before
// issuing that epoch's Put. Survivors' fences resolve to RankFailedError
// (never a hang), a Put aimed at the dead target deposits nothing, the
// owner expecting the dead origin's data sees no pending deposit, and
// after the discard protocol nothing is leaked.
func TestFenceCrashTargetBeforeDeposit(t *testing.T) {
	const n = 3
	spec := cluster.Uniform(n)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 1)}
	w := NewWorld(cluster.New(spec))
	sawError := make([]bool, n)
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		win := c.WinCreate(g, make(FlatMem, 8))
		if err := c.FenceErr(win); err != nil {
			t.Errorf("rank %d: opening fence failed: %v", c.Rank(), err)
			return nil
		}
		src := []float64{float64(c.Rank())}
		for cycle := 0; cycle < 3; cycle++ {
			c.InjectCycleFaults(cycle) // rank 2 dies entering cycle 1
			c.Put(win, (c.Rank()+1)%n, 0, src)
			if err := c.FenceErr(win); err != nil {
				var rf *RankFailedError
				if !errors.As(err, &rf) || len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
					t.Errorf("rank %d: want RankFailedError{2}, got %v", c.Rank(), err)
				}
				sawError[c.Rank()] = true
				// Rank 0's expected origin is the dead rank 2, which never
				// deposited this epoch: presence must answer false.
				if c.Rank() == 0 {
					if elems, ok := c.PendingFrom(win, 2); ok {
						t.Errorf("rank 0: dead rank 2 shows %d pending elems, want none", elems)
					}
				}
				c.DiscardPending(win)
				return nil
			}
		}
		t.Errorf("rank %d: fence never reported the crash", c.Rank())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawError[0] || !sawError[1] {
		t.Errorf("survivors did not all observe the failure: %v", sawError)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after crash-before-deposit run", leaked)
	}
}

// TestFenceCrashOriginAfterDeposit is the "origin dies mid-epoch, after its
// Put landed" case, in the deferred-epoch shape the replica-refresh
// consumer uses (fence at cycle entry closes the previous cycle's epoch):
// rank 2 Puts in cycle 1 and crashes entering cycle 2, so the epoch being
// closed holds its completed deposit. The owner must see it — presence is
// deterministic because a crashed rank's Puts completed on its own
// goroutine before the death published — and the deposited data must be
// intact in the window memory.
func TestFenceCrashOriginAfterDeposit(t *testing.T) {
	const n = 3
	spec := cluster.Uniform(n)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 2)}
	w := NewWorld(cluster.New(spec))
	recovered := false
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		mem := make(FlatMem, 4)
		win := c.WinCreate(g, mem)
		for cycle := 0; cycle < 4; cycle++ {
			c.InjectCycleFaults(cycle) // rank 2 dies entering cycle 2
			// Close the previous epoch (deferred settlement).
			if err := c.FenceErr(win); err != nil {
				var rf *RankFailedError
				if !errors.As(err, &rf) {
					t.Errorf("rank %d: want RankFailedError, got %v", c.Rank(), err)
				}
				if c.Rank() == 0 {
					// The dead predecessor's cycle-1 Put is pending in full.
					elems, ok := c.PendingFrom(win, 2)
					if !ok || elems != 4 {
						t.Errorf("rank 0: pending from dead rank 2 = (%d,%v), want (4,true)", elems, ok)
					}
					for i := range mem {
						if want := float64(2*100 + 1*10 + i); mem[i] != want {
							t.Errorf("rank 0: window mem[%d] = %v, want %v (rank 2's cycle-1 put)", i, mem[i], want)
						}
					}
					recovered = true
				}
				c.DiscardPending(win)
				return nil
			}
			src := make([]float64, 4)
			for i := range src {
				src[i] = float64(c.Rank()*100 + cycle*10 + i)
			}
			c.Put(win, (c.Rank()+1)%n, 0, src)
		}
		t.Errorf("rank %d: fence never reported the crash", c.Rank())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Error("rank 0 never inspected the dead origin's pending deposit")
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after crash-after-deposit run", leaked)
	}
}

// TestWindowTeardownNoLeakedDeposits drives several epochs, a reattach, and
// a Get through two windows on the same group and asserts the world tears
// down with zero pending deposits — the LeakedOps contract for windows.
func TestWindowTeardownNoLeakedDeposits(t *testing.T) {
	const n = 4
	spec := cluster.Uniform(n)
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		a := c.WinCreate(g, make(FlatMem, 32))
		b := c.WinCreate(g, make(FlatMem, 32))
		if a.ID() == b.ID() {
			t.Errorf("rank %d: expected distinct window ids, got %d/%d", c.Rank(), a.ID(), b.ID())
		}
		c.Fence(a)
		c.Fence(b)
		for cycle := 0; cycle < 3; cycle++ {
			c.Put(a, (c.Rank()+1)%n, 8*c.Rank(), []float64{1, 2})
			c.Get(b, (c.Rank()+2)%n, 0, make([]float64, 4))
			c.Fence(a)
			c.Fence(b)
		}
		c.WinAttach(a, make(FlatMem, 64)) // grow the exposed slab
		c.Fence(a)
		c.Put(a, (c.Rank()+1)%n, 40, []float64{3})
		c.Fence(a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after multi-window teardown", leaked)
	}
}
