package mpi

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

func TestWireTimeScalesWithSize(t *testing.T) {
	arrival := func(bytes int) vclock.Duration {
		var d vclock.Duration
		err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 0, make([]float64, bytes/8), bytes)
				return nil
			}
			c.Recv(0, 0)
			d = c.Now().Sub(0)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	small := arrival(8)
	big := arrival(1 << 20)
	net := cluster.DefaultNet()
	wantExtra := vclock.FromSeconds(float64(1<<20) / net.BytesPerSec)
	extra := big - small
	if extra < wantExtra/2 || extra > wantExtra*2 {
		t.Fatalf("1MiB message extra time %v, want ~%v", extra, wantExtra)
	}
}

func TestSendCPUChargedToSender(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		if c.Rank() == 0 {
			before := c.Node().CPUTime()
			c.Send(1, 0, make([]float64, 1024), F64Bytes(1024))
			delta := c.Node().CPUTime() - before
			net := c.World().Cluster().Net()
			want := net.CPUPerMsg + vclock.Duration(float64(F64Bytes(1024))*net.CPUPerByte)
			if delta != want {
				return fmt.Errorf("sender CPU %v, want %v", delta, want)
			}
			return nil
		}
		c.Recv(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceLengthMismatchFailsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		v := make([]float64, 1+c.Rank()) // deliberately ragged
		c.AllreduceF64s(c.World().AllGroup(), v, Sum)
		return nil
	})
	if err == nil {
		t.Fatal("ragged allreduce should fail the world")
	}
}

func TestBcastInvalidRootFailsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		c.Bcast(c.World().AllGroup(), 7, nil, 0)
		return nil
	})
	if err == nil {
		t.Fatal("bcast with foreign root should fail the world")
	}
}

func TestRecvF64sTypeMismatchFailsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, "not floats", 8)
			return nil
		}
		c.RecvF64s(0, 0)
		return nil
	})
	if err == nil {
		t.Fatal("type mismatch should fail the world")
	}
}

func TestAbortUnwindsWorld(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(3)), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Abort(fmt.Errorf("operator abort"))
		}
		c.Barrier(c.World().AllGroup())
		return nil
	})
	if err == nil {
		t.Fatal("expected abort error")
	}
}

func TestGatherBytesAccounting(t *testing.T) {
	// Collectives advance clocks but do not touch the P2P traffic counters
	// (documented behaviour relied on by the runtime's comm measurement).
	err := Run(cluster.New(cluster.Uniform(2)), func(c *Comm) error {
		c.AllreduceSum(c.World().AllGroup(), 1)
		if c.SentMsgs != 0 || c.RecvMsgs != 0 {
			return fmt.Errorf("collective touched P2P counters")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
