package mpi

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
)

func TestGroupsAreCanonical(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(4)))
	a := w.NewGroup([]int{0, 2, 3})
	b := w.NewGroup([]int{0, 2, 3})
	if a != b {
		t.Fatal("same member list produced distinct groups")
	}
	c := w.NewGroup([]int{0, 2})
	if a == c {
		t.Fatal("different member lists shared a group")
	}
}

func TestConcurrentGroupCreation(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(8)))
	const goroutines = 16
	out := make([]*Group, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = w.NewGroup([]int{1, 3, 5, 7})
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if out[i] != out[0] {
			t.Fatal("concurrent NewGroup returned distinct groups")
		}
	}
}

func TestGroupAccessors(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(4)))
	g := w.NewGroup([]int{3, 1})
	if g.Size() != 2 {
		t.Fatal("Size")
	}
	if s, ok := g.Slot(1); !ok || s != 1 {
		t.Fatalf("Slot(1) = %d,%v", s, ok)
	}
	if _, ok := g.Slot(2); ok {
		t.Fatal("non-member has a slot")
	}
	m := g.Members()
	if len(m) != 2 || m[0] != 3 {
		t.Fatalf("Members = %v", m)
	}
}

func TestDuplicateGroupMemberPanics(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(4)))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.NewGroup([]int{1, 1})
}

func TestEmptyGroupPanics(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.NewGroup(nil)
}

func TestNonMemberCollectivePanics(t *testing.T) {
	err := Run(cluster.New(cluster.Uniform(3)), func(c *Comm) error {
		g := c.World().NewGroup([]int{0, 1})
		if c.Rank() == 2 {
			c.Barrier(g) // not a member: must fail the world
			return nil
		}
		c.Barrier(g)
		return nil
	})
	if err == nil {
		t.Fatal("expected failure for non-member collective")
	}
}

func TestOverlappingGroupsInterleave(t *testing.T) {
	// Two overlapping groups used alternately: operations must not bleed
	// between groups.
	err := Run(cluster.New(cluster.Uniform(3)), func(c *Comm) error {
		left := c.World().NewGroup([]int{0, 1})
		right := c.World().NewGroup([]int{1, 2})
		for i := 0; i < 50; i++ {
			if c.Rank() <= 1 {
				got := c.AllreduceSum(left, float64(c.Rank()+1))
				if got != 3 {
					return fmt.Errorf("left sum %v", got)
				}
			}
			if c.Rank() >= 1 {
				got := c.AllreduceSum(right, float64(c.Rank()+1))
				if got != 5 {
					return fmt.Errorf("right sum %v", got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
