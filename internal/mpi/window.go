package mpi

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// One-sided RMA layer: windows, Put/Get, and fence epochs.
//
// A Win exposes each group member's slab memory for direct remote access.
// Between two fences (an epoch), any member may Put into — or Get from —
// any other member's window; the owner does not participate per message.
// The fence closes the epoch: it synchronises the group (priced as a
// dissemination barrier, see cost.go) and then settles every deposit that
// landed in the caller's own window during the epoch, in a deterministic
// order.
//
// Virtual-time contract (the one-sided analogue of the request layer's):
//
//   - Put charges the origin exactly what Send charges a sender: the CPU
//     injection cost at post time, with the data arriving wireTime later.
//     The target is not disturbed at all — no matching, no receive-side
//     CPU. This is the modelled saving over paired send/recv: the copy
//     lands by (virtual) DMA into the exposed memory.
//   - Get charges the origin a zero-byte injection at post time; the data
//     arrives one latency (the request reaching the target's NIC) plus the
//     payload's wireTime later, and the origin pays the landing CPU cost
//     when its own fence settles the transfer.
//   - Fence advances every member to a common barrier-completion time,
//     then each owner drains its own deposits: residual wire time not
//     already hidden behind the owner's computation is paid as stall
//     (accumulated into Comm.RecvStall) and the hidden remainder is
//     credited to Comm.HiddenWire — the exact arithmetic of a request
//     Wait, validated against per-message Send/Recv simulation by the
//     crosscheck tests.
//
// Failure contract: a fence whose group lost a member returns
// *RankFailedError and settles nothing — no deposit is drained and the
// epoch does not advance, so the call can never hang on a dead peer. The
// owner may then inspect the dead origin's deposits with PendingFrom (a
// crashed rank's Puts completed before its death was published, on its own
// goroutine, so presence is deterministic) and must release the window
// with DiscardPending before abandoning it. Put and Get on a target
// already marked dead deposit nothing; the death is reported at the fence.
//
// General active-target synchronization (PSCW) is the pairwise alternative
// to the fence: WinPost declares which origins may access this rank's
// window, WinStartErr blocks the origin until every named target has
// posted, WinCompleteErr closes the origin's access epoch (notifying each
// target and settling the origin's own Get landings), and WinWaitErr
// blocks the target until every posted origin has completed, then settles
// their deposits with the exact fence arithmetic. Only the participating
// pairs synchronise — each post and each complete is one small control
// message riding the ordinary mailbox, so an epoch over k pairs prices as
// k round-trips instead of a full-group dissemination barrier (see
// cost.go). Deposits made under an open access epoch are stamped with the
// origin's PSCW epoch counter and are invisible to fences; a window may
// use either discipline, or both for disjoint transfers.
//
// PSCW failure contract, symmetric with FenceErr: a dead target fails the
// origin's WinStartErr or WinCompleteErr, a dead origin fails the target's
// WinWaitErr, and no call can hang (control receives use the bounded-wait
// failure detection of RecvErr; completion notifications go out to every
// live target before WinCompleteErr reports the dead ones, so surviving
// peers always unblock). A failed wait settles nothing; the target may
// inspect a dead origin's deposits with PendingPSCW and must DiscardPending
// before abandoning the window. Windows of different groups must not run
// overlapping PSCW epochs on a shared rank pair — the same per-communicator
// epoch discipline MPI imposes.
//
// Memory visibility: deposits mutate the target's memory at call time,
// under the target slot's mutex. The owner must not access the exposed
// range while an epoch in which remote ranks deposit is open — the same
// rule as MPI_Win_fence — and may freely access it between an epoch-closing
// fence and the next deposit (the fence's rendezvous atomics carry the
// happens-before edge from every origin's write to the owner's reads).

// WinMem is memory exposed through a window, in float64 elements. The
// indirection (instead of a flat slice) lets owners expose non-contiguous
// storage — a matrix.Dense projection's per-row slices — without copying
// it into a registration buffer.
type WinMem interface {
	// WriteAt copies src into the exposed memory at element offset off.
	WriteAt(off int, src []float64)
	// ReadAt fills dst from the exposed memory at element offset off.
	ReadAt(off int, dst []float64)
	// Len reports the exposed extent in elements.
	Len() int
}

// FlatMem exposes a flat []float64 as window memory.
type FlatMem []float64

// WriteAt implements WinMem.
func (m FlatMem) WriteAt(off int, src []float64) { copy(m[off:off+len(src)], src) }

// ReadAt implements WinMem.
func (m FlatMem) ReadAt(off int, dst []float64) { copy(dst, m[off:off+len(dst)]) }

// Len implements WinMem.
func (m FlatMem) Len() int { return len(m) }

// deposit is one one-sided transfer landed in a window slot, recorded at
// the origin's post time and settled by the owner's epoch-closing fence.
// Deposits are stored by value in the slot's pending list, so the
// steady-state Put path performs no heap allocation once the list's
// high-water mark is reached.
type deposit struct {
	originSlot int
	off        int
	elems      int
	bytes      int
	get        bool        // origin-side landing of a Get (owner pays the CPU copy)
	pscw       bool        // stamped under an open PSCW access epoch; settled by wait/complete, never by a fence
	post       vclock.Time // origin clock when the transfer was injected
	avail      vclock.Time // when the data has fully arrived
	seq        int64       // per-origin program order, for deterministic ties
	epoch      int64       // epoch the transfer belongs to (fence or PSCW counter, per pscw)
}

// winSlot is one member's side of a window: its attached memory and the
// deposits pending against it. mu serialises remote deposits with each
// other and with the owner's drain; drain is the owner-only settlement
// scratch (filled under mu, consumed outside it).
type winSlot struct {
	mu    sync.Mutex
	mem   WinMem
	dep   []deposit
	drain []deposit
}

// Win is a one-sided access window over each group member's memory. All
// members create it collectively (the k-th WinCreate call of every member
// resolves to the same Win) and advance its epochs together through Fence.
type Win struct {
	g     *Group
	id    int // index within the group's window registry
	slots []winSlot

	// epoch[s] is member s's current epoch number and putSeq[s] its
	// program-order deposit counter; both are written only by member s's
	// goroutine. Fences advance every member's epoch in lockstep, so an
	// origin's stamp names exactly the epoch the owner will drain —
	// including across the physical race where a fast origin starts the
	// next epoch's Puts while the owner is still settling this one.
	epoch  []int64
	putSeq []int64

	// PSCW state, the pairwise analogue of epoch: accEpoch[s] is member
	// s's access-epoch counter (advanced by its own WinCompleteErr),
	// access[s] the open access epoch's target list and expose[s] the open
	// exposure epoch's origin list. All three are written only by member
	// s's goroutine, like epoch/putSeq.
	accEpoch []int64
	access   [][]int
	expose   [][]int
}

func newWin(g *Group, id int) *Win {
	n := len(g.members)
	return &Win{
		g:        g,
		id:       id,
		slots:    make([]winSlot, n),
		epoch:    make([]int64, n),
		putSeq:   make([]int64, n),
		accEpoch: make([]int64, n),
		access:   make([][]int, n),
		expose:   make([][]int, n),
	}
}

// Group returns the group the window spans.
func (win *Win) Group() *Group { return win.g }

// ID reports the window's index within its group's registry (stable across
// members: every member's k-th WinCreate call yields window k).
func (win *Win) ID() int { return win.id }

// WinCreate registers this rank's memory in a window over g. Like groups,
// windows are canonical per creation order: the k-th call on g by every
// member returns the same Win, which is how SPMD ranks meet on a window
// without naming it. mem may be nil for members that expose nothing (pure
// origins). The window is usable once every member has both created it and
// passed a first Fence — creation itself synchronises nothing.
func (c *Comm) WinCreate(g *Group, mem WinMem) *Win {
	c.checkFailed()
	slot := c.groupSlot(g)
	k := g.winSeq[slot]
	g.winSeq[slot]++
	g.winMu.Lock()
	for int64(len(g.wins)) <= k {
		g.wins = append(g.wins, newWin(g, len(g.wins)))
	}
	win := g.wins[k]
	g.winMu.Unlock()
	c.WinAttach(win, mem)
	return win
}

// WinAttach replaces this rank's exposed memory. The caller must separate
// the attach from any remote deposit against it with a Fence (the same
// epoch discipline as any other local access to window memory).
func (c *Comm) WinAttach(win *Win, mem WinMem) {
	slot := c.groupSlot(win.g)
	ts := &win.slots[slot]
	ts.mu.Lock()
	ts.mem = mem
	ts.mu.Unlock()
}

// Put starts a one-sided transfer of src into target's window memory at
// element offset off. It completes at the next Fence: the origin pays the
// injection CPU now, the target pays nothing per message, and the residual
// wire time is settled when the target's fence closes the epoch. src is
// copied at call time, so the caller may reuse it immediately. A Put to a
// target already marked dead deposits nothing; the death surfaces as the
// fence's *RankFailedError.
func (c *Comm) Put(win *Win, target, off int, src []float64) {
	c.checkFailed()
	g := win.g
	tslot, ok := g.slot[target]
	if !ok {
		panic(fmt.Sprintf("mpi: put to rank %d outside window group", target))
	}
	var faultDelay vclock.Duration
	if c.flt != nil {
		c.pollFaults()
		faultDelay = c.messageFault(target)
	}
	net := c.w.cl.Net()
	bytes := F64Bytes(len(src))
	c.node.Compute(cpuCost(net, bytes))
	post := c.node.Now()
	c.SentMsgs++
	c.SentBytes += int64(bytes)
	oslot := c.groupSlot(g)
	win.putSeq[oslot]++
	pscw := len(win.access[oslot]) > 0
	ep := win.epoch[oslot]
	if pscw {
		ep = win.accEpoch[oslot]
	}
	ts := &win.slots[tslot]
	ts.mu.Lock()
	if c.w.deadCount.Load() > 0 && c.w.dead[target].Load() {
		// The dead slot's pending list was already reclaimed by Kill and no
		// fence will ever drain it; depositing would leak.
		ts.mu.Unlock()
		return
	}
	if ts.mem == nil {
		ts.mu.Unlock()
		panic(fmt.Sprintf("mpi: put into window %d slot of rank %d with no memory attached", win.id, target))
	}
	if len(src) > 0 {
		ts.mem.WriteAt(off, src)
	}
	ts.dep = append(ts.dep, deposit{
		originSlot: oslot,
		off:        off,
		elems:      len(src),
		bytes:      bytes,
		pscw:       pscw,
		post:       post,
		avail:      post.Add(wireTime(net, bytes) + faultDelay),
		seq:        win.putSeq[oslot],
		epoch:      ep,
	})
	ts.mu.Unlock()
}

// Get starts a one-sided read of target's window memory at element offset
// off into dst. The data is captured at call time (the epoch discipline
// guarantees it is stable) and becomes usable after the origin's next
// Fence, which pays the landing CPU cost; the target is not disturbed. The
// modelled arrival is one latency (the zero-byte request reaching the
// target) plus the payload's wire time.
func (c *Comm) Get(win *Win, target, off int, dst []float64) {
	c.checkFailed()
	g := win.g
	tslot, ok := g.slot[target]
	if !ok {
		panic(fmt.Sprintf("mpi: get from rank %d outside window group", target))
	}
	var faultDelay vclock.Duration
	if c.flt != nil {
		c.pollFaults()
		faultDelay = c.messageFault(target)
	}
	net := c.w.cl.Net()
	bytes := F64Bytes(len(dst))
	c.node.Compute(cpuCost(net, 0)) // zero-byte request injection
	post := c.node.Now()
	oslot := c.groupSlot(g)
	win.putSeq[oslot]++
	pscw := len(win.access[oslot]) > 0
	ep := win.epoch[oslot]
	if pscw {
		ep = win.accEpoch[oslot]
	}
	ts := &win.slots[tslot]
	ts.mu.Lock()
	if c.w.deadCount.Load() > 0 && c.w.dead[target].Load() {
		ts.mu.Unlock()
		return
	}
	if ts.mem == nil {
		ts.mu.Unlock()
		panic(fmt.Sprintf("mpi: get from window %d slot of rank %d with no memory attached", win.id, target))
	}
	if len(dst) > 0 {
		ts.mem.ReadAt(off, dst)
	}
	ts.mu.Unlock()
	// The landing settles at the origin's own epoch close (fence or
	// complete): a self-deposit.
	os := &win.slots[oslot]
	os.mu.Lock()
	os.dep = append(os.dep, deposit{
		originSlot: oslot,
		off:        off,
		elems:      len(dst),
		bytes:      bytes,
		get:        true,
		pscw:       pscw,
		post:       post,
		avail:      post.Add(net.Latency + wireTime(net, bytes) + faultDelay),
		seq:        win.putSeq[oslot],
		epoch:      ep,
	})
	os.mu.Unlock()
}

// Fence closes the window's current epoch, failing the whole world when a
// group member is dead (mirroring the blocking collectives).
func (c *Comm) Fence(win *Win) {
	if err := c.FenceErr(win); err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
}

// FenceErr closes the window's current epoch: it synchronises the group (a
// dissemination barrier), then settles every deposit that landed in the
// caller's own window during the epoch — in (arrival, origin, program
// order) order, so the settlement is deterministic regardless of physical
// scheduling — and opens the next epoch. When a group member is dead it
// returns *RankFailedError without settling anything or advancing the
// epoch; see PendingFrom and DiscardPending for the recovery protocol.
func (c *Comm) FenceErr(win *Win) error {
	if _, err := c.rendezvousErr(win.g, nil, nil, &collDesc{kind: opFence}, nil); err != nil {
		return err
	}
	slot := c.groupSlot(win.g)
	ep := win.epoch[slot]
	ts := &win.slots[slot]
	ts.mu.Lock()
	// PSCW-stamped deposits belong to a pairwise epoch and are settled by
	// WinWaitErr/WinCompleteErr, never by a fence.
	drain := extractDeposits(ts, func(d *deposit) bool { return d.epoch == ep && !d.pscw })
	ts.mu.Unlock()
	sortDeposits(drain)
	bytes, stall, hidden := c.settleDeposits(drain)
	ts.drain = drain
	win.epoch[slot] = ep + 1
	if len(drain) > 0 {
		c.emitRMA("fence", win.id, len(drain), bytes, stall, hidden)
	}
	return nil
}

// extractDeposits moves every deposit matching match out of ts.dep into the
// returned slice (backed by ts.drain's array), compacting the rest in place
// and zeroing the dropped tail. A deposit that does not match stays for a
// later settlement — e.g. a faster origin already opened the next epoch, or
// the transfer belongs to the other synchronization discipline. Caller
// holds ts.mu and must store the result back into ts.drain after settling.
func extractDeposits(ts *winSlot, match func(*deposit) bool) []deposit {
	drain := ts.drain[:0]
	keep := ts.dep[:0]
	for i := range ts.dep {
		d := ts.dep[i]
		if match(&d) {
			drain = append(drain, d)
		} else {
			keep = append(keep, d)
		}
	}
	// Clear the tail so dropped entries do not linger in the backing array.
	for i := len(keep); i < len(ts.dep); i++ {
		ts.dep[i] = deposit{}
	}
	ts.dep = keep
	return drain
}

// settleDeposits drains one epoch's worth of deposits on the caller's
// clock: each is stalled to arrival if still in flight (Get landings
// additionally pay the landing CPU), counted into the receive counters, and
// wire time already covered by the caller's computation is credited to
// HiddenWire. The arithmetic is shared verbatim between fence and PSCW
// settlement — the disciplines differ only in who synchronises, not in
// what a drained deposit costs. The caller must sortDeposits first.
func (c *Comm) settleDeposits(drain []deposit) (bytes int64, stall, hidden vclock.Duration) {
	net := c.w.cl.Net()
	for i := range drain {
		d := &drain[i]
		s := d.avail.Sub(c.node.Now())
		if s < 0 {
			s = 0
		}
		c.RecvStall += s
		stall += s
		c.node.WaitUntil(d.avail)
		if d.get {
			c.node.Compute(cpuCost(net, d.bytes))
		}
		c.RecvMsgs++
		c.RecvBytes += int64(d.bytes)
		if inflight := d.avail.Sub(d.post); inflight > 0 {
			if h := inflight - s; h > 0 {
				c.HiddenWire += h
				hidden += h
			}
		}
		bytes += int64(d.bytes)
	}
	return bytes, stall, hidden
}

// sortDeposits orders deposits by (arrival, origin slot, per-origin program
// order) — a total, schedule-independent order. Insertion sort: epochs
// settle a handful of deposits, and the sort must not allocate (the fence
// is on the zero-alloc steady-state path).
func sortDeposits(d []deposit) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && depositLess(&d[j], &d[j-1]); j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

func depositLess(a, b *deposit) bool {
	if a.avail != b.avail {
		return a.avail < b.avail
	}
	if a.originSlot != b.originSlot {
		return a.originSlot < b.originSlot
	}
	return a.seq < b.seq
}

// emitRMA emits an RMARecord for a settled epoch through the node's
// telemetry sink, if one is attached.
func (c *Comm) emitRMA(op string, window, deposits int, bytes int64, stall, hidden vclock.Duration) {
	sink, st := c.node.Telemetry()
	if sink == nil {
		return
	}
	sink.Emit(telemetry.RMARecord{
		Base:     st.Stamp(telemetry.KindRMA, -1, c.node.Now().Seconds()),
		Op:       op,
		Window:   window,
		Deposits: deposits,
		Bytes:    bytes,
		StallS:   stall.Seconds(),
		HiddenS:  hidden.Seconds(),
	})
}

// PSCW control messages ride the ordinary mailbox under reserved tags far
// above the runtime's tag space (internal/core reserves 1<<20 and a few
// KiB above it): the post and complete notifications for window w use
// pscwTagBase+2*w.id and pscwTagBase+2*w.id+1. Windows of one group have
// distinct ids, so their control traffic never cross-matches; windows of
// different groups must not run overlapping PSCW epochs on a shared rank
// pair (the header's epoch-discipline rule).
const pscwTagBase = 1 << 26

// pscwCtlBytes is the modelled size of a post or complete notification: one
// int64 payload. Control messages are priced exactly as ordinary sends and
// receives of this size — that identity is what makes the PSCW closed form
// in cost.go trivially cross-validate against per-message simulation.
const pscwCtlBytes = 8

func (win *Win) pscwPostTag() int { return pscwTagBase + 2*win.id }
func (win *Win) pscwDoneTag() int { return pscwTagBase + 2*win.id + 1 }

// WinPost opens an exposure epoch: it declares that exactly origins may
// access this rank's window until the matching WinWaitErr, and sends each
// a post notification carrying note (delivered to its WinStartErr — a
// side-band for pairwise protocol state, e.g. a transport-mode verdict).
// The call does not block: posts to dead origins are dropped in delivery
// and the deaths surface at the wait.
func (c *Comm) WinPost(win *Win, origins []int, note int64) {
	c.checkFailed()
	slot := c.groupSlot(win.g)
	if len(win.expose[slot]) != 0 {
		panic(fmt.Sprintf("mpi: rank %d posting window %d with exposure epoch already open", c.rank, win.id))
	}
	for _, o := range origins {
		if _, ok := win.g.slot[o]; !ok {
			panic(fmt.Sprintf("mpi: post to rank %d outside window group", o))
		}
		if o == c.rank {
			panic("mpi: post to self")
		}
		c.Send(o, win.pscwPostTag(), note, pscwCtlBytes)
	}
	win.expose[slot] = append(win.expose[slot][:0], origins...)
}

// WinStart opens an access epoch, failing the whole world when a target is
// dead (mirroring the blocking collectives).
func (c *Comm) WinStart(win *Win, targets []int, notes []int64) {
	if err := c.WinStartErr(win, targets, notes); err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
}

// WinStartErr opens an access epoch toward targets: it blocks until every
// named target's post notification arrives, then arms PSCW stamping so
// subsequent Put/Get calls settle pairwise instead of at a fence. When
// notes is non-nil it receives target i's post note at notes[i]. A dead
// target fails the call with *RankFailedError (every remaining target's
// post is still consumed, so no control message is left behind) and the
// epoch does not open.
func (c *Comm) WinStartErr(win *Win, targets []int, notes []int64) error {
	c.checkFailed()
	slot := c.groupSlot(win.g)
	if len(win.access[slot]) != 0 {
		panic(fmt.Sprintf("mpi: rank %d starting window %d with access epoch already open", c.rank, win.id))
	}
	var dead []int
	for i, t := range targets {
		if _, ok := win.g.slot[t]; !ok {
			panic(fmt.Sprintf("mpi: start toward rank %d outside window group", t))
		}
		if t == c.rank {
			panic("mpi: start toward self")
		}
		p, _, err := c.RecvErr(t, win.pscwPostTag())
		if err != nil {
			var rf *RankFailedError
			if errors.As(err, &rf) {
				dead = append(dead, rf.Ranks...)
				continue
			}
			return err
		}
		if notes != nil {
			notes[i] = p.(int64)
		}
	}
	if dead != nil {
		return &RankFailedError{Op: "win-start", Ranks: dead}
	}
	win.access[slot] = append(win.access[slot][:0], targets...)
	return nil
}

// WinComplete closes the access epoch, failing the whole world when a
// target is dead.
func (c *Comm) WinComplete(win *Win) {
	if err := c.WinCompleteErr(win); err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
}

// WinCompleteErr closes this rank's open access epoch: it notifies every
// target that the epoch's transfers are in flight (one control message
// each, carrying the epoch stamp the target's wait drains by), settles
// this rank's own Get landings of the epoch, and advances the access-epoch
// counter. A dead target fails the call with *RankFailedError — after
// every live target has been notified, so surviving peers never hang —
// without settling or advancing; the pending Get landings are left for
// DiscardPending.
func (c *Comm) WinCompleteErr(win *Win) error {
	c.checkFailed()
	slot := c.groupSlot(win.g)
	targets := win.access[slot]
	ep := win.accEpoch[slot]
	var dead []int
	for _, t := range targets {
		if c.w.deadCount.Load() > 0 && c.w.dead[t].Load() {
			dead = append(dead, t)
			continue
		}
		c.Send(t, win.pscwDoneTag(), ep, pscwCtlBytes)
	}
	win.access[slot] = win.access[slot][:0]
	if dead != nil {
		return &RankFailedError{Op: "win-complete", Ranks: dead}
	}
	ts := &win.slots[slot]
	ts.mu.Lock()
	drain := extractDeposits(ts, func(d *deposit) bool {
		return d.pscw && d.get && d.originSlot == slot && d.epoch == ep
	})
	ts.mu.Unlock()
	sortDeposits(drain)
	bytes, stall, hidden := c.settleDeposits(drain)
	ts.drain = drain
	win.accEpoch[slot] = ep + 1
	if len(drain) > 0 {
		c.emitRMA("pscw", win.id, len(drain), bytes, stall, hidden)
	}
	return nil
}

// WinWait closes the exposure epoch, failing the whole world when an
// origin is dead.
func (c *Comm) WinWait(win *Win) {
	if err := c.WinWaitErr(win); err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
}

// WinWaitErr closes this rank's open exposure epoch: it blocks until every
// posted origin's completion notification arrives, then drains and settles
// the deposits those origins stamped — in the same deterministic (arrival,
// origin, program order) order as a fence. A dead origin fails the call
// with *RankFailedError without settling anything (the remaining live
// origins' notifications are still consumed); see PendingPSCW and
// DiscardPending for the recovery protocol. Either way the exposure epoch
// is closed.
func (c *Comm) WinWaitErr(win *Win) error {
	c.checkFailed()
	slot := c.groupSlot(win.g)
	origins := win.expose[slot]
	type doneStamp struct {
		oslot int
		epoch int64
	}
	stamps := make([]doneStamp, 0, 8)
	var dead []int
	for _, o := range origins {
		p, _, err := c.RecvErr(o, win.pscwDoneTag())
		if err != nil {
			var rf *RankFailedError
			if errors.As(err, &rf) {
				dead = append(dead, rf.Ranks...)
				continue
			}
			win.expose[slot] = win.expose[slot][:0]
			return err
		}
		stamps = append(stamps, doneStamp{oslot: win.g.slot[o], epoch: p.(int64)})
	}
	win.expose[slot] = win.expose[slot][:0]
	if dead != nil {
		return &RankFailedError{Op: "win-wait", Ranks: dead}
	}
	ts := &win.slots[slot]
	ts.mu.Lock()
	drain := extractDeposits(ts, func(d *deposit) bool {
		if !d.pscw || d.get {
			return false
		}
		for _, st := range stamps {
			if d.originSlot == st.oslot && d.epoch == st.epoch {
				return true
			}
		}
		return false
	})
	ts.mu.Unlock()
	sortDeposits(drain)
	bytes, stall, hidden := c.settleDeposits(drain)
	ts.drain = drain
	if len(drain) > 0 {
		c.emitRMA("pscw", win.id, len(drain), bytes, stall, hidden)
	}
	return nil
}

// PendingPSCW reports the total elements Put into this rank's window slot
// by origin under PSCW stamping, any epoch, and whether any such deposit
// is present. It is the PSCW analogue of PendingFrom, meaningful after
// WinWaitErr returned a *RankFailedError naming origin: with the
// close-then-open discipline at most one pairwise epoch is in flight per
// pair, so an epoch-agnostic count answers deterministically whether the
// dead origin's transfer landed in full.
func (c *Comm) PendingPSCW(win *Win, origin int) (elems int, ok bool) {
	oslot, member := win.g.slot[origin]
	if !member {
		return 0, false
	}
	slot := c.groupSlot(win.g)
	ts := &win.slots[slot]
	ts.mu.Lock()
	for i := range ts.dep {
		if d := &ts.dep[i]; d.originSlot == oslot && d.pscw && !d.get {
			elems += d.elems
			ok = true
		}
	}
	ts.mu.Unlock()
	return elems, ok
}

// PendingFrom reports the total elements deposited into this rank's window
// slot by origin during the still-open epoch, and whether any deposit is
// present. It is meaningful after FenceErr returned a *RankFailedError and
// origin is dead: a crashed rank's Puts completed before its death was
// published (same goroutine), so presence answers deterministically
// whether the dead origin's transfer landed in full — a Put either ran to
// completion or never started (crashes fire at operation entry).
func (c *Comm) PendingFrom(win *Win, origin int) (elems int, ok bool) {
	oslot, member := win.g.slot[origin]
	if !member {
		return 0, false
	}
	slot := c.groupSlot(win.g)
	ep := win.epoch[slot]
	ts := &win.slots[slot]
	ts.mu.Lock()
	for i := range ts.dep {
		if d := &ts.dep[i]; d.originSlot == oslot && d.epoch == ep && !d.get && !d.pscw {
			elems += d.elems
			ok = true
		}
	}
	ts.mu.Unlock()
	return elems, ok
}

// DiscardPending drops every deposit pending against this rank's window
// slot, releasing it after a failed fence (the epoch can no longer settle:
// the group lost a member and the window is being abandoned). Without the
// discard the deposits would count as leaked operations.
func (c *Comm) DiscardPending(win *Win) {
	slot := c.groupSlot(win.g)
	ts := &win.slots[slot]
	ts.mu.Lock()
	for i := range ts.dep {
		ts.dep[i] = deposit{}
	}
	ts.dep = ts.dep[:0]
	ts.mu.Unlock()
}

// dropWindowSlot reclaims the pending deposits of a dead member's window
// slots: only the owner drains a slot, and the owner is gone. Called by
// World.Kill.
func (g *Group) dropWindowSlot(slot int) {
	g.winMu.Lock()
	wins := g.wins
	g.winMu.Unlock()
	for _, win := range wins {
		ts := &win.slots[slot]
		ts.mu.Lock()
		for i := range ts.dep {
			ts.dep[i] = deposit{}
		}
		ts.dep = ts.dep[:0]
		ts.mu.Unlock()
	}
}

// pendingDeposits counts deposits still pending across the group's
// windows, for leak accounting (see World.LeakedOps). A run that closes
// its epochs (or discards them after a failure) leaves zero.
func (g *Group) pendingDeposits() int {
	g.winMu.Lock()
	wins := g.wins
	g.winMu.Unlock()
	n := 0
	for _, win := range wins {
		for i := range win.slots {
			ts := &win.slots[i]
			ts.mu.Lock()
			n += len(ts.dep)
			ts.mu.Unlock()
		}
	}
	return n
}
