package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// faultRun executes fn on an n-node uniform cluster with the given injected
// faults and returns the world error (nil on clean completion).
func faultRun(n int, faults []fault.Fault, fn func(*Comm) error) error {
	spec := cluster.Uniform(n)
	spec.Faults = faults
	return Run(cluster.New(spec), fn)
}

func TestRecvErrFromDeadRankReturnsError(t *testing.T) {
	err := faultRun(2, []fault.Fault{fault.CrashAtCycle(0, 0)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.InjectCycleFaults(0) // does not return
			return errors.New("crash fault did not fire")
		}
		_, _, err := c.RecvErr(0, 5)
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			return errors.New("want RankFailedError, got " + errString(err))
		}
		if rf.Op != "recv" || len(rf.Ranks) != 1 || rf.Ranks[0] != 0 {
			return errors.New("wrong error contents: " + rf.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesSentBeforeCrashStillDeliver(t *testing.T) {
	err := faultRun(2, []fault.Fault{fault.CrashAtCycle(0, 1)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{7}, 8)
			c.InjectCycleFaults(1)
			return errors.New("crash fault did not fire")
		}
		// The pre-crash message must arrive intact before the dead check
		// fires on the empty queue.
		p, _, err := c.RecvErr(0, 3)
		if err != nil {
			return err
		}
		if v := p.([]float64); v[0] != 7 {
			return errors.New("wrong payload")
		}
		if _, _, err := c.RecvErr(0, 3); err == nil {
			return errors.New("second receive from dead rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlainRecvFromDeadRankFailsWorld(t *testing.T) {
	err := faultRun(2, []fault.Fault{fault.CrashAtCycle(0, 0)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.InjectCycleFaults(0)
			return nil
		}
		c.Recv(0, 1) // bounded waiting: must fail the world, not hang
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "dead rank") {
		t.Fatalf("want world failure naming the dead rank, got %v", err)
	}
}

func TestBarrierErrNamesDeadMember(t *testing.T) {
	err := faultRun(3, []fault.Fault{fault.CrashAtCycle(2, 0)}, func(c *Comm) error {
		if c.Rank() == 2 {
			c.InjectCycleFaults(0)
			return nil
		}
		err := c.BarrierErr(c.World().AllGroup())
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			return errors.New("want RankFailedError, got " + errString(err))
		}
		if len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
			return errors.New("wrong dead set: " + rf.Error())
		}
		// The survivors can immediately retry over the shrunken group.
		return c.BarrierErr(c.World().NewGroup([]int{0, 1}))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlainCollectiveWithDeadMemberFailsWorld(t *testing.T) {
	err := faultRun(3, []fault.Fault{fault.CrashAtCycle(1, 0)}, func(c *Comm) error {
		if c.Rank() == 1 {
			c.InjectCycleFaults(0)
			return nil
		}
		c.Barrier(c.World().AllGroup())
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "dead rank") {
		t.Fatalf("want world failure naming the dead rank, got %v", err)
	}
}

func TestSendToDeadRankSucceeds(t *testing.T) {
	err := faultRun(2, []fault.Fault{fault.CrashAtCycle(0, 0)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.InjectCycleFaults(0)
			return nil
		}
		if _, _, err := c.RecvErr(0, 1); err == nil {
			return errors.New("receive from dead rank succeeded")
		}
		// Sends to a dead rank park in its mailbox and are never read;
		// eager semantics mean the sender must not block or fail.
		c.Send(0, 1, []float64{1}, 8)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropRedeliversAfterRetransmit(t *testing.T) {
	err := faultRun(2, []fault.Fault{fault.DropMsgs(0, 1, 0, 1)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1}, 8)
			c.Send(1, 0, []float64{2}, 8)
			return nil
		}
		c.Recv(0, 0)
		first := c.Now()
		if first < vclock.Time(fault.DefaultRetransmit) {
			return errors.New("dropped message arrived before the retransmission delay")
		}
		// The second message is unaffected; FIFO still holds per (src,tag).
		p, _ := c.Recv(0, 0)
		if p.([]float64)[0] != 2 {
			return errors.New("messages reordered")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDelayAddsDeliveryLatency(t *testing.T) {
	const extra = 50 * vclock.Millisecond
	err := faultRun(2, []fault.Fault{fault.DelayMsgs(0, 1, 0, 1, extra)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1}, 8)
			return nil
		}
		c.Recv(0, 0)
		if c.Now() < vclock.Time(extra) {
			return errors.New("delayed message arrived early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStallAdvancesClock(t *testing.T) {
	const dur = 100 * vclock.Millisecond
	err := faultRun(1, []fault.Fault{fault.StallAtCycle(0, 0, dur)}, func(c *Comm) error {
		before := c.Now()
		c.InjectCycleFaults(0)
		if c.Now() < before.Add(dur) {
			return errors.New("stall did not advance the clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimedCrashFiresAtFirstOpAfterDeadline(t *testing.T) {
	deadline := vclock.Time(vclock.FromSeconds(0.01))
	err := faultRun(2, []fault.Fault{fault.CrashAt(0, deadline)}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Node().Compute(vclock.FromSeconds(0.02))
			c.Send(1, 0, []float64{1}, 8) // entry poll fires the crash first
			return errors.New("timed crash did not fire")
		}
		if _, _, err := c.RecvErr(0, 0); err == nil {
			return errors.New("message from crashed rank delivered")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKillIdempotentAndDeadRanksSorted(t *testing.T) {
	w := NewWorld(cluster.New(cluster.Uniform(4)))
	w.Kill(3)
	w.Kill(1)
	w.Kill(3)
	if w.Alive(1) || w.Alive(3) || !w.Alive(0) || !w.Alive(2) {
		t.Fatal("Alive disagrees with Kill")
	}
	dead := w.DeadRanks()
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 3 {
		t.Fatalf("DeadRanks = %v", dead)
	}
}

// TestCrashScenarioDeterministic runs the same crash scenario twice and
// checks every surviving rank finishes at the identical virtual instant.
func TestCrashScenarioDeterministic(t *testing.T) {
	scenario := func() ([]vclock.Time, error) {
		finish := make([]vclock.Time, 4)
		err := faultRun(4, []fault.Fault{fault.CrashAtCycle(2, 3)}, func(c *Comm) error {
			members := []int{0, 1, 2, 3}
			for cycle := 0; cycle < 8; cycle++ {
				c.InjectCycleFaults(cycle)
				g := c.World().NewGroup(members)
				if err := c.BarrierErr(g); err != nil {
					var rf *RankFailedError
					if !errors.As(err, &rf) {
						return err
					}
					keep := members[:0]
					for _, m := range members {
						alive := true
						for _, d := range rf.Ranks {
							if m == d {
								alive = false
							}
						}
						if alive {
							keep = append(keep, m)
						}
					}
					members = keep
				}
				c.Node().Compute(vclock.FromSeconds(0.001))
			}
			finish[c.Rank()] = c.Now()
			return nil
		})
		return finish, err
	}
	a, err := scenario()
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario()
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d finish differs across runs: %v vs %v", r, a[r], b[r])
		}
	}
	if a[2] != 0 {
		t.Fatalf("crashed rank reported a finish time %v", a[2])
	}
}

// TestSendRecvZeroAllocsWithArmedFaults pins the liveness-check overhead on
// the hot path: with a fault set armed (timed faults pending, message rules
// on an unrelated link) a steady-state send/recv pair must not allocate.
func TestSendRecvZeroAllocsWithArmedFaults(t *testing.T) {
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{
		// Far-future crash keeps the timed-fault cursor active on rank 0.
		fault.CrashAt(0, vclock.Time(vclock.FromSeconds(1e9))),
		// Message rules on the 0->2 link; traffic below runs on 0->1.
		fault.DropMsgs(0, 2, 1<<30, 1),
	}
	w := NewWorld(cluster.New(spec))
	c0, c1 := w.NewComm(0), w.NewComm(1)
	payload := make([]float64, 64)
	var boxed any = payload
	bytes := F64Bytes(len(payload))
	// Warm up the mailbox queue for the (0, tag 0) match key.
	c0.Send(1, 0, boxed, bytes)
	if _, _, err := c1.RecvErr(0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		c0.Send(1, 0, boxed, bytes)
		if _, _, err := c1.RecvErr(0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("send/recv with armed fault set allocates %.1f/op, want 0", allocs)
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
