package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// This file is the sharded collective engine. The former implementation
// funnelled every collective through one Group mutex: deposits serialised on
// it, completion was announced with cond.Broadcast wakeups that made every
// member re-acquire the lock to poll a map, and the last arriver performed
// the whole O(n·len) element-wise reduction while all other ranks blocked.
//
// The engine replaces that with a ring of per-op rendezvous slots:
//
//   - Deposits are lock-free. Each member writes its own contribution slot
//     and publishes it with one atomic (the arrival counter, or a combiner
//     tree counter), so concurrent deposits never contend on a mutex.
//     Vector contributions travel through a typed [][]float64 array, so the
//     hot reductions never box a slice through an interface.
//   - Completion is published by flipping one atomic flag. Members waiting
//     for it spin briefly (yielding the processor), which resolves almost
//     every rendezvous without a single scheduler park; a member that
//     exhausts its spin budget parks on its own capacity-1 wake channel,
//     and the publisher broadcasts tokens only when someone actually
//     parked. No mutex is ever taken on the success path.
//   - The element-wise allreduce runs through a combiner tree for large
//     groups and non-trivial vectors: the second arriver at each internal
//     node combines its two children, so the O(n·len) reduction is spread
//     across the arriving goroutines in O(log n) combining depth instead of
//     being executed serially by the last arriver. The tree is a fixed
//     binary tree over group slots, so the floating-point association — and
//     therefore every result bit — is independent of physical arrival
//     order.
//
// Liveness checks stay O(1) on the hot path: waiters consult the world's
// dead counter (one atomic load) and only scan the membership for dead
// non-depositors when a death has actually been published.

// opRing is the number of in-flight rendezvous slots per group. A member
// depositing into op seq proves op seq-2 has fully drained (it consumed
// seq-1, so every member deposited seq-1, so every member had consumed
// seq-2), hence a ring of 4 leaves a whole spare generation; the ready
// generation gate below turns the residual scheduling race (a resetter
// descheduled between the final consumption and the reset) into a bounded
// spin instead of a correctness hazard.
const opRing = 4

const opRingMask = opRing - 1

// treeMinRanks and treeMinElems gate the combiner tree: the element-wise
// allreduce switches from the last-arriver serial fold to the tree only for
// groups of at least treeMinRanks members reducing vectors of at least
// treeMinElems elements. Below either bound the serial fold is faster (the
// tree's per-node arbitration outweighs the spread-out work) and — for
// small groups — preserves the historical left-to-right reduction order
// bit-for-bit, which the golden traces of the existing small-world
// experiments pin. Both bounds depend only on (group size, vector length),
// so the association is deterministic for a given workload.
const (
	treeMinRanks = 16
	treeMinElems = 16
)

// waitSpinRounds bounds the yield-and-recheck spins a member performs
// waiting for publication before it parks on its wake channel. Collectives
// between compute phases publish within a round or two of yields, so the
// common case never touches the scheduler's park/unpark machinery.
const waitSpinRounds = 8

type opKind uint8

// rop identifies well-known reduction operators so the combine loops can
// run direct arithmetic instead of calling through a function pointer —
// on the element-wise hot path the indirect call is the dominant cost.
const (
	ropCustom uint8 = iota
	ropSum
	ropMax
)

// combine writes the element-wise reduction of a and b into dst (len(dst)
// elements; a and b must be at least as long).
func combine(dst, a, b []float64, rop uint8, rfn func(x, y float64) float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	switch rop {
	case ropSum:
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
	case ropMax:
		for i := range dst {
			if a[i] > b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	default:
		for i := range dst {
			dst[i] = rfn(a[i], b[i])
		}
	}
}

// foldInto reduces v into out element-wise, in place.
func foldInto(out, v []float64, rop uint8, rfn func(x, y float64) float64) {
	v = v[:len(out)]
	switch rop {
	case ropSum:
		for i := range out {
			out[i] += v[i]
		}
	case ropMax:
		for i := range out {
			if v[i] > out[i] {
				out[i] = v[i]
			}
		}
	default:
		for i := range out {
			out[i] = rfn(out[i], v[i])
		}
	}
}

const (
	opBarrier opKind = iota
	opBcast
	opAllreduce
	opAllgather
	opAllgatherF64
	opGather
	opFence
	opKinds // count sentinel
)

// kindNames and kindAlgorithms label the collective shapes for telemetry
// and stats (the algorithm is the cost-model tree, see cost.go).
var kindNames = [opKinds]string{
	"barrier", "bcast", "allreduce", "allgather", "allgather-f64", "gather",
	"fence",
}

var kindAlgorithms = [opKinds]string{
	"dissemination", "binomial-tree", "recursive-doubling",
	"recursive-doubling", "recursive-doubling", "binomial-gather",
	"dissemination",
}

// collDesc describes one collective invocation. Every member passes an
// identical descriptor (the SPMD contract), so whichever member publishes
// the result can price and build it.
type collDesc struct {
	kind     opKind
	bytes    int // per-member payload wire size
	rootSlot int // bcast/gather root, as a group slot
	rfn      func(a, b float64) float64
	rop      uint8 // well-known operator fast path (ropSum/ropMax)
	pooled   bool  // deliver via a pooled vector (copy-out-before-release)
}

// opState is one collective rendezvous slot. The success path is lock-free:
// members deposit with writes to their own slot entries published by one
// atomic, the publisher (last arriver, or the combiner-tree root completer)
// writes the result fields and flips pub, and every consumer releases the
// slot with one atomic decrement. op.mu guards only the rare failure path
// (dead-member error publication, orphan adoption, leak accounting).
type opState struct {
	// ready names the op sequence number this slot currently serves.
	// Deposits for seq spin until ready == seq; the spin is almost never
	// taken, because the slot was necessarily drained two ops ago.
	ready atomic.Int64

	times       []vclock.Time // per-slot deposit time (owner-written)
	bytes       []int         // per-slot offered payload bytes (owner-written)
	contribs    []any         // per-slot boxed contribution (owner-written)
	contribsF64 [][]float64   // per-slot vector contribution (owner-written)

	// depSeq[s] records the op generation member s last deposited into, as
	// seq+1 (so the zero value means "never"). "Deposited this op" is
	// depSeq[s] == ready+1, which makes the deposit marker self-resetting:
	// recycling the slot never has to clear n per-slot flags.
	depSeq  []atomic.Int64
	arrived atomic.Int32 // deposit count (serial-path publication)

	// Combiner tree (element-wise allreduce, gated by treeMinRanks and
	// treeMinElems), indexed by flat (level, node) position: treeCnt
	// arbitrates which arriver combines an internal node, treeVal holds
	// each position's (sub)result, treeBuf retains the internal nodes'
	// scratch vectors across ops. treeCnt arbitrates by parity — each
	// two-child node receives exactly two increments per op, so the first
	// arriver always observes an odd count — and therefore never needs
	// resetting either (wraparound preserves parity).
	treeCnt []atomic.Int32
	treeVal [][]float64
	treeBuf [][]float64

	// Result fields, valid once pub is true (pub is flipped with release
	// semantics after they are written).
	pub     atomic.Bool
	value   any
	finish  vclock.Time
	cpuEach vclock.Duration
	cErr    error // dead-member failure; nil on success

	// valueF64 is the typed result of the pooled (*Into) collectives; every
	// consumer copies it into its dst before releasing the op, so nothing
	// ever boxes it through the value interface. valPtr is the pool box to
	// hand back on reset (nil when valueF64 aliases op-owned tree scratch).
	valueF64 []float64
	valPtr   *[]float64

	left atomic.Int32 // successful-op consumptions outstanding

	// parked counts members blocked on their wake channels. The publisher
	// broadcasts wake tokens only when it is non-zero, so spin-resolved
	// rendezvous (the common case) perform no channel operations at all.
	parked atomic.Int32

	// wake[s] is member s's parking spot: a capacity-1 channel used as a
	// binary semaphore. A blocked member receives from its own channel;
	// signallers send non-blocking (a full channel means a token is already
	// pending, which is just as good). Tokens carry no op identity — a
	// receiver always rechecks pub — so a stale token from a previous
	// generation costs one spurious recheck and can never cause a missed
	// wakeup: after any post-publication send attempt the channel is
	// non-empty, so a parked receiver is guaranteed to wake and observe pub.
	wake []chan struct{}

	mu       sync.Mutex
	consumed []bool // error-path consumption accounting (under mu)
	errLeft  int    // live members yet to consume the error (under mu)
}

// signalSlot hands member i a wakeup token, without blocking.
func signalSlot(op *opState, i int) {
	select {
	case op.wake[i] <- struct{}{}:
	default:
	}
}

// signalAll hands every member a wakeup token.
func signalAll(op *opState) {
	for i := range op.wake {
		signalSlot(op, i)
	}
}

// Group is a subset of world ranks that participates in collectives
// together. All members must call each collective in the same order.
type Group struct {
	w       *World
	members []int       // world ranks
	slot    map[int]int // world rank -> index in members

	seq  []int64 // per-slot local op counter (written only by the owner)
	ring [opRing]*opState

	// Combiner-tree geometry, shared by the ring slots: lvlWidth[l] nodes
	// at level l (level 0 = the leaves/slots), lvlOff[l] the flat offset.
	// Empty below treeMinRanks.
	lvlWidth []int
	lvlOff   []int

	// f64Pool recycles the result vectors of the pooled (*Into) collectives,
	// whose callers copy the result out before releasing the op and never
	// retain the shared slice.
	f64Pool sync.Pool

	// One-sided windows registered on this group (see window.go). winSeq[s]
	// counts member s's WinCreate calls and is written only by that member's
	// goroutine; the k-th call of every member resolves to wins[k], which is
	// what lets SPMD ranks meet on the same window without naming it.
	winMu  sync.Mutex
	wins   []*Win
	winSeq []int64

	stats collStats
}

// collStats counts completed collectives per shape. bytes accumulates the
// payload offered across all members (bytes-per-member × ranks × ops).
type collStats struct {
	count [opKinds]atomic.Int64
	bytes [opKinds]atomic.Int64
}

// CollectiveShape summarises the completed collectives of one kind on a
// group, in cost-model terms.
type CollectiveShape struct {
	Op        string // "barrier", "bcast", "allreduce", ...
	Algorithm string // modelled tree: "binomial-tree", "recursive-doubling", ...
	Ranks     int    // group size
	Steps     int    // modelled tree depth ceil(log2 ranks)
	Count     int64  // completed operations
	Bytes     int64  // payload bytes offered across members and ops
}

// CollectiveStats returns per-shape counters of the collectives completed
// on this group so far, ordered by kind. Failed (dead-member) collectives
// never completed and are not counted.
func (g *Group) CollectiveStats() []CollectiveShape {
	out := make([]CollectiveShape, 0, int(opKinds))
	for k := opKind(0); k < opKinds; k++ {
		out = append(out, CollectiveShape{
			Op:        kindNames[k],
			Algorithm: kindAlgorithms[k],
			Ranks:     len(g.members),
			Steps:     treeSteps(len(g.members)),
			Count:     g.stats.count[k].Load(),
			Bytes:     g.stats.bytes[k].Load(),
		})
	}
	return out
}

func (g *Group) noteOp(kind opKind, bytes int) {
	g.stats.count[kind].Add(1)
	g.stats.bytes[kind].Add(int64(bytes) * int64(len(g.members)))
}

// NewGroup returns the collective group over the given world ranks. Groups
// are canonical: every rank asking for the same member list receives the
// *same* Group object, which is what lets SPMD ranks rebuild a group after
// a membership change and still meet in its collectives.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("mpi: empty group")
	}
	key := fmt.Sprint(members)
	w.groups.Lock()
	if w.groups.byKey == nil {
		w.groups.byKey = make(map[string]*Group)
	}
	if g, ok := w.groups.byKey[key]; ok {
		w.groups.Unlock()
		return g
	}
	w.groups.Unlock()
	g := &Group{
		w:       w,
		members: append([]int(nil), members...),
		slot:    make(map[int]int, len(members)),
		seq:     make([]int64, len(members)),
		winSeq:  make([]int64, len(members)),
	}
	for i, m := range members {
		if _, dup := g.slot[m]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in group", m))
		}
		g.slot[m] = i
	}
	n := len(members)
	flat := 0
	if n >= treeMinRanks {
		for width := n; ; width = (width + 1) / 2 {
			g.lvlOff = append(g.lvlOff, flat)
			g.lvlWidth = append(g.lvlWidth, width)
			flat += width
			if width == 1 {
				break
			}
		}
	}
	for i := range g.ring {
		op := &opState{
			times:       make([]vclock.Time, n),
			bytes:       make([]int, n),
			contribs:    make([]any, n),
			contribsF64: make([][]float64, n),
			depSeq:      make([]atomic.Int64, n),
			consumed:    make([]bool, n),
		}
		if flat > 0 {
			op.treeCnt = make([]atomic.Int32, flat)
			op.treeVal = make([][]float64, flat)
			op.treeBuf = make([][]float64, flat)
		}
		op.wake = make([]chan struct{}, n)
		for s := range op.wake {
			op.wake[s] = make(chan struct{}, 1)
		}
		op.left.Store(int32(n))
		op.ready.Store(int64(i))
		g.ring[i] = op
	}
	w.groups.Lock()
	if prior, ok := w.groups.byKey[key]; ok {
		// Another rank registered the same group concurrently; use theirs.
		w.groups.Unlock()
		return prior
	}
	w.groups.byKey[key] = g
	w.groups.list = append(w.groups.list, g)
	w.groups.Unlock()
	return g
}

// AllGroup returns the group containing every world rank.
func (w *World) AllGroup() *Group { return w.all }

// Members returns the group's world ranks (callers must not mutate).
func (g *Group) Members() []int { return g.members }

// Size reports the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Slot reports rank's index within the group and whether it is a member.
func (g *Group) Slot(rank int) (int, bool) {
	s, ok := g.slot[rank]
	return s, ok
}

// getF64 returns a pool box holding a []float64 of length n. The box (a
// *[]float64) travels back into the pool on reset, so steady-state pooled
// collectives allocate nothing: boxing a bare slice header into the pool's
// interface would cost one heap allocation per Put.
func (g *Group) getF64(n int) *[]float64 {
	if v, ok := g.f64Pool.Get().(*[]float64); ok && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	s := make([]float64, n)
	return &s
}

// maxTime returns the latest of ts.
func maxTime(ts []vclock.Time) vclock.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// opBytes returns the payload size the op is priced at: the largest
// contribution any member deposited. Collectives with asymmetric
// per-member payloads (an allgather of uneven chunks after a skewed
// redistribution) would otherwise be priced by whichever member happened
// to publish — the last *physical* arriver — making virtual time depend on
// goroutine scheduling. Every member has deposited by publication time
// (serial publish requires all arrivals; the combiner tree's root completes
// only after every leaf), so the maximum is well-defined and deterministic.
// For the symmetric collectives it equals every member's own desc.bytes.
func opBytes(op *opState) int {
	m := op.bytes[0]
	for _, b := range op.bytes[1:] {
		if b > m {
			m = b
		}
	}
	return m
}

// groupSlot resolves this rank's slot in g, caching the last group so the
// steady state (one group used every cycle) skips the map lookup.
func (c *Comm) groupSlot(g *Group) int {
	if g == c.lastGroup {
		return c.lastSlot
	}
	slot, ok := g.slot[c.rank]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in group", c.rank))
	}
	c.lastGroup, c.lastSlot = g, slot
	return slot
}

// rendezvousErr is the failure-aware collective core. Every member deposits
// a contribution (vec for the typed float64 collectives, contrib for boxed
// payloads); one member (the last arriver, or the combiner-tree root
// completer) publishes the result; everyone leaves with the result, its
// clock advanced to the completion time plus the per-member CPU charge.
//
// When dst is non-nil the []float64 result is copied into dst *before the
// op is released*, so pooled result vectors are recycled the moment the
// last member leaves without racing a slow reader.
//
// When a group member is dead and has not deposited, every surviving member
// leaves with a *RankFailedError naming the dead rank(s), at its own
// deposit time and with no clock advance — the collective never completed,
// so it charges nothing. A member cannot die *inside* an op: injected
// crashes fire at operation entry, before the deposit, which is the
// invariant that lets successful ops drain without any reclamation logic.
func (c *Comm) rendezvousErr(g *Group, contrib any, vec []float64, desc *collDesc, dst []float64) (any, error) {
	c.checkFailed()
	if c.flt != nil {
		c.pollFaults()
	}
	slot := c.groupSlot(g)
	seq := g.seq[slot]
	g.seq[slot]++

	op := g.ring[seq&opRingMask]
	// Generation gate: wait until the slot's previous tenant has drained.
	// Steady state never spins (the previous op drained two generations
	// ago); the loop exists for the rare descheduled-resetter window and
	// for error-path drains that complete out of band.
	for op.ready.Load() != seq {
		if c.w.failed.Load() {
			panic(errFailed)
		}
		runtime.Gosched()
	}

	op.times[slot] = c.node.Now()
	op.bytes[slot] = desc.bytes
	if vec != nil {
		op.contribsF64[slot] = vec
	} else if contrib != nil {
		op.contribs[slot] = contrib
	}
	op.depSeq[slot].Store(seq + 1)

	n := len(g.members)
	if desc.kind == opAllreduce && n >= treeMinRanks && desc.bytes >= 8*treeMinElems {
		c.combineUp(g, op, slot, vec, desc)
	} else if int(op.arrived.Add(1)) == n {
		c.publishSerial(g, op, desc)
	}

	if !op.pub.Load() {
		c.waitOp(g, op, slot)
	}

	if err := op.cErr; err != nil {
		op.mu.Lock()
		if !op.consumed[slot] {
			op.consumed[slot] = true
			op.errLeft--
			if op.errLeft == 0 {
				g.resetOp(op)
			}
		}
		op.mu.Unlock()
		return nil, err
	}

	value := op.value
	finish, cpuEach := op.finish, op.cpuEach
	if dst != nil {
		// Copy-out before release: after the final decrement the vector may
		// be recycled, so no reference escapes past this point. Pooled
		// results travel through the typed valueF64 field — boxing a slice
		// into the value interface would allocate on every op.
		copy(dst, op.valueF64)
	}
	if desc.kind == opGather && slot != desc.rootSlot {
		value = nil // non-root members receive nothing from a gather
	}
	if op.left.Add(-1) == 0 {
		op.mu.Lock()
		g.resetOp(op)
		op.mu.Unlock()
	}

	c.node.WaitUntil(finish)
	if cpuEach > 0 {
		c.node.Compute(cpuEach)
	}
	return value, nil
}

// waitOp blocks this member until the op publishes (success or error). It
// first spins with scheduler yields — collectives between compute phases
// publish within a round or two, so the common case costs no park/unpark —
// and only then parks on its own wake channel, announcing itself through
// op.parked so the publisher knows to broadcast tokens. Waiters are also
// woken by a world failure or a death; on death the first waiter to observe
// a dead non-depositor publishes the error itself. Spurious tokens (from a
// previous generation of this ring slot) just re-run the checks.
func (c *Comm) waitOp(g *Group, op *opState, slot int) {
	w := c.w
	for i := 0; i < waitSpinRounds; i++ {
		if w.failed.Load() {
			panic(errFailed)
		}
		if w.deadCount.Load() > 0 && g.tryFailOp(op) {
			return
		}
		runtime.Gosched()
		if op.pub.Load() {
			return
		}
	}
	op.parked.Add(1)
	defer op.parked.Add(-1)
	// Announce-then-recheck pairs with the publisher's publish-then-check:
	// either the publisher sees parked > 0 and broadcasts, or this load
	// sees pub — a parked member can never miss the publication.
	for !op.pub.Load() {
		if w.failed.Load() {
			panic(errFailed)
		}
		if w.deadCount.Load() > 0 && g.tryFailOp(op) {
			return
		}
		<-op.wake[slot]
	}
}

// tryFailOp runs the dead-member check under the op lock; see
// tryFailOpLocked.
func (g *Group) tryFailOp(op *opState) bool {
	op.mu.Lock()
	failed := g.tryFailOpLocked(op)
	op.mu.Unlock()
	return failed
}

// tryFailOpLocked publishes a RankFailedError when some dead group member
// never deposited into op. A dead member can never deposit later (crashes
// fire at operation entry), so the error is final, and — by the same
// invariant — a dead member can never have deposited into a still-pending
// op, so the dead are exactly the members that will never consume: they are
// pre-marked consumed here, and members that die *after* this accounting
// are adopted by World.Kill's orphan walk. That combination is what
// guarantees the slot always drains; the former implementation leaked one
// opResult for every member that died after the live count was snapshotted.
// Callers hold op.mu. Reports whether the op is now error-published.
func (g *Group) tryFailOpLocked(op *opState) bool {
	if op.pub.Load() {
		return true
	}
	gen := op.ready.Load() + 1 // deposit marker for the active generation
	var missing []int
	for i, m := range g.members {
		if op.depSeq[i].Load() != gen && g.w.dead[m].Load() {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return false
	}
	op.cErr = &RankFailedError{Op: "collective", Ranks: missing}
	live := 0
	for i, m := range g.members {
		if g.w.dead[m].Load() {
			op.consumed[i] = true
		} else {
			live++
		}
	}
	op.errLeft = live
	op.pub.Store(true)
	signalAll(op)
	return true
}

// publishSerial prices and publishes a collective whose result the last
// arriver assembles serially (every kind except the tree-combined
// allreduce). The assembly runs outside any lock — all contributions are in
// and immutable — and a panicking assembly (bad payload shapes) fails the
// world rather than deadlocking it.
func (c *Comm) publishSerial(g *Group, op *opState, desc *collDesc) {
	cost, err := buildResult(g, op, desc)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: collective reduction: %w", c.rank, err))
		panic(errFailed)
	}
	g.publishResult(op, desc, cost)
}

// publishResult installs the result fields, flips pub, and wakes any member
// that parked. Spin-waiting members observe pub directly, so when no one
// parked (the common case) publication costs one atomic store.
func (g *Group) publishResult(op *opState, desc *collDesc, cost collCost) {
	op.finish = maxTime(op.times).Add(cost.wire)
	op.cpuEach = cost.cpuEach
	g.noteOp(desc.kind, opBytes(op))
	op.pub.Store(true)
	if op.parked.Load() > 0 {
		signalAll(op)
	}
}

// buildResult assembles the published value for the serial collectives
// directly into op's result fields (only the publisher touches them before
// pub flips), converting panics (type or length mismatches) into errors.
func buildResult(g *Group, op *opState, desc *collDesc) (cost collCost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	n := len(g.members)
	net := g.w.cl.Net()
	bytes := opBytes(op) // deterministic pricing: see opBytes
	switch desc.kind {
	case opBarrier:
		cost = barrierCost(net, n)
	case opFence:
		// The fence's synchronisation component is exactly a dissemination
		// barrier; the deposit settlement (stall + landing CPU) is charged by
		// each owner on its own clock after the rendezvous (see window.go).
		cost = barrierCost(net, n)
	case opBcast:
		cost = bcastCost(net, n, bytes)
		if desc.pooled {
			// Copy into a pooled vector: the root's own buffer is only
			// stable until the root leaves the collective, but members may
			// copy out later.
			src := op.contribsF64[desc.rootSlot]
			vp := g.getF64(len(src))
			copy(*vp, src)
			op.valPtr, op.valueF64 = vp, *vp
		} else {
			op.value = op.contribs[desc.rootSlot]
		}
	case opAllreduce:
		// Small-shape serial fold, in slot order (bit-identical to the
		// pre-sharding engine; large shapes take the combiner tree).
		first := op.contribsF64[0]
		var out []float64
		if desc.pooled {
			vp := g.getF64(len(first))
			op.valPtr = vp
			out = *vp
			copy(out, first)
		} else {
			out = append([]float64(nil), first...)
		}
		for _, v := range op.contribsF64[1:] {
			if len(v) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			foldInto(out, v, desc.rop, desc.rfn)
		}
		if desc.pooled {
			op.valueF64 = out
		} else {
			op.value = out
		}
		cost = allreduceCost(net, n, bytes)
	case opAllgather:
		op.value = append([]any(nil), op.contribs...)
		cost = allgatherCost(net, n, bytes)
	case opAllgatherF64:
		vp := g.getF64(n)
		out := *vp
		for i := range out {
			out[i] = op.contribsF64[i][0]
		}
		op.valPtr, op.valueF64 = vp, out
		cost = allgatherCost(net, n, bytes)
	case opGather:
		op.value = append([]any(nil), op.contribs...)
		cost = gatherCost(net, n, bytes)
	}
	return cost, nil
}

// combineUp runs this member's share of the combiner-tree allreduce and, if
// this member completed the root, publishes the result.
func (c *Comm) combineUp(g *Group, op *opState, slot int, vec []float64, desc *collDesc) {
	root, err := g.safeTreeWalk(op, slot, vec, desc.rop, desc.rfn)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: collective reduction: %w", c.rank, err))
		panic(errFailed)
	}
	if root == nil {
		return // another member carries this subtree upward
	}
	if desc.pooled {
		// The root scratch vector survives until the op is reset, and every
		// pooled consumer copies out before releasing — so it is delivered
		// directly, without marking it pool-owned (valPtr stays nil).
		op.valueF64 = root
	} else {
		op.value = append([]float64(nil), root...)
	}
	g.publishResult(op, desc, allreduceCost(c.w.cl.Net(), len(g.members), opBytes(op)))
}

// safeTreeWalk is treeWalk with panics (ragged vectors) turned into errors.
func (g *Group) safeTreeWalk(op *opState, slot int, v []float64, rop uint8, rfn func(a, b float64) float64) (root []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return g.treeWalk(op, slot, v, rop, rfn), nil
}

// treeWalk deposits v at slot's leaf and combines upward through the fixed
// binary tree over group slots. The second arriver at each internal node
// combines its two children element-wise — left child first, so the
// association is fixed by slot order and the result is deterministic
// regardless of physical arrival order — and carries the result up. A node
// whose right child does not exist (non-power-of-two groups) forwards its
// lone child's value without arbitration. Returns the root vector when this
// goroutine completed the root, nil otherwise.
func (g *Group) treeWalk(op *opState, slot int, v []float64, rop uint8, rfn func(a, b float64) float64) []float64 {
	op.treeVal[slot] = v
	idx, cur := slot, v
	for lvl := 0; lvl+1 < len(g.lvlWidth); lvl++ {
		parent := idx >> 1
		pFlat := g.lvlOff[lvl+1] + parent
		if idx^1 >= g.lvlWidth[lvl] {
			// Lone child: carry the value up unchanged.
			op.treeVal[pFlat] = cur
			idx = parent
			continue
		}
		if op.treeCnt[pFlat].Add(1)&1 == 1 {
			// First arriver (odd count: exactly two increments land on each
			// two-child node per op, so parity arbitrates across generations
			// without any reset): the sibling's walker completes this node.
			// Our treeVal write is ordered before the counter add, so the
			// sibling (whose add returns even) observes it.
			return nil
		}
		base := g.lvlOff[lvl] + (parent << 1)
		left, right := op.treeVal[base], op.treeVal[base+1]
		if len(left) != len(right) {
			panic("mpi: allreduce length mismatch")
		}
		buf := op.treeBuf[pFlat]
		if cap(buf) < len(left) {
			buf = make([]float64, len(left))
			op.treeBuf[pFlat] = buf
		}
		buf = buf[:len(left)]
		combine(buf, left, right, rop, rfn)
		op.treeVal[pFlat] = buf
		idx, cur = parent, buf
	}
	return cur
}

// resetOp recycles the slot for its next op generation. Callers hold op.mu
// (the success path's final consumer takes it uncontended; the error drain
// and the orphan walk already hold it). Combiner-tree value slots are NOT
// cleared: every position is written before it is read within each op, so
// stale pointers are harmless and the clear would cost O(n) on the hot
// path. The ready bump is the release store that lets the next generation's
// depositors through the gate.
func (g *Group) resetOp(op *opState) {
	if op.valPtr != nil {
		g.f64Pool.Put(op.valPtr)
		op.valPtr = nil
	}
	if op.cErr != nil {
		op.cErr = nil
		clear(op.consumed) // only the error path marks consumption
		op.errLeft = 0
	}
	op.value = nil
	op.valueF64 = nil
	op.finish = 0
	op.cpuEach = 0
	clear(op.contribs) // release payload references for the GC
	clear(op.contribsF64)
	// depSeq and treeCnt deliberately stay: the deposit markers are
	// generation-stamped and the tree counters arbitrate by parity, so
	// recycling costs O(1) atomics instead of O(n) clears.
	op.arrived.Store(0)
	op.left.Store(int32(len(g.members)))
	op.pub.Store(false)
	op.ready.Store(op.ready.Load() + opRing)
}

// wakeAll wakes every waiter blocked on the group's rendezvous slots so
// liveness checks re-run (world failure, rank death).
func (g *Group) wakeAll() {
	for _, op := range g.ring {
		signalAll(op)
	}
}

// adoptOrphans credits the dead rank's unconsumed error results across the
// group's ring, reclaiming ops that would otherwise leak: a member that
// dies after an error was published (and was therefore counted as a live
// consumer) can no longer consume its share. Called by World.Kill.
func (g *Group) adoptOrphans(slot int) {
	for _, op := range g.ring {
		op.mu.Lock()
		if op.pub.Load() && op.cErr != nil && !op.consumed[slot] {
			op.consumed[slot] = true
			op.errLeft--
			if op.errLeft == 0 {
				g.resetOp(op)
			}
		}
		op.mu.Unlock()
	}
}

// leakedOps counts ring slots still holding an undrained op: a deposit or
// published result some member never released.
func (g *Group) leakedOps() int {
	n := 0
	for _, op := range g.ring {
		op.mu.Lock()
		dirty := op.pub.Load()
		if !dirty {
			gen := op.ready.Load() + 1
			for i := range op.depSeq {
				if op.depSeq[i].Load() == gen {
					dirty = true
					break
				}
			}
		}
		op.mu.Unlock()
		if dirty {
			n++
		}
	}
	return n
}

// LeakedOps reports the number of collective rendezvous slots left
// undrained across all groups, plus the number of nonblocking receive
// requests still posted in a mailbox, plus the number of one-sided
// deposits never settled by a fence (see window.go). After a Run that completes without
// failing the world this is zero — even when ranks crashed mid-collective
// or mid-Wait — which the failure tests assert; a non-zero count means some
// op's bookkeeping was orphaned (the bug class the adoption walk and the
// Kill posted-list reclaim eliminate).
func (w *World) LeakedOps() int {
	total := 0
	w.groups.Lock()
	for _, g := range w.groups.list {
		total += g.leakedOps()
		total += g.pendingDeposits()
	}
	w.groups.Unlock()
	for _, b := range w.boxes {
		b.mu.Lock()
		total += len(b.posted)
		b.mu.Unlock()
	}
	return total
}
