package mpi

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// errCrashed is the panic value that unwinds a rank killed by an injected
// crash fault. Unlike errFailed it does not fail the world: the surviving
// ranks keep running and detect the death through liveness checks.
var errCrashed = errors.New("mpi: rank crashed")

// RankFailedError reports that an operation could not complete because one
// or more peer ranks are dead. Ranks is sorted and never empty.
type RankFailedError struct {
	Op    string // "recv", "irecv", "waitall" or "collective"
	Ranks []int
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: %s failed: dead rank(s) %v", e.Op, e.Ranks)
}

// Kill marks rank as dead and wakes every blocked rank so liveness checks
// re-run. It is idempotent. The mailbox waiters keep their posted patterns
// (unlike fail, which voids them): a receive that can still be satisfied by
// a live sender simply re-parks. For every group the dead rank belongs to,
// Kill also adopts the rank's unconsumed error results: a member that dies
// after a collective failure was published was counted as a live consumer,
// and without adoption its share would pin the rendezvous slot forever (the
// opResult leak of the pre-sharding engine).
func (w *World) Kill(rank int) {
	if w.dead[rank].Swap(true) {
		return
	}
	w.deadCount.Add(1)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	// The dead rank's own posted nonblocking receives are orphans: no Wait
	// will ever drain them. Reclaim them here so they do not count as
	// leaked operations; live ranks' requests on the dead peer stay posted
	// and resolve to RankFailedError at their Wait (the broadcast above
	// re-runs those liveness checks). Queued envelopes are purged for the
	// same reason — nothing will ever receive them — and deliver drops any
	// that arrive later, so a corpse's mailbox stays empty instead of
	// accreting protocol pings forever.
	db := w.boxes[rank]
	db.mu.Lock()
	for i := range db.posted {
		db.posted[i] = nil
	}
	db.posted = db.posted[:0]
	for k, q := range db.queues {
		for !q.empty() {
			q.pop()
		}
		delete(db.queues, k)
	}
	db.total = 0
	db.mu.Unlock()
	w.groups.Lock()
	groups := append([]*Group(nil), w.groups.list...)
	w.groups.Unlock()
	for _, g := range groups {
		if slot, ok := g.slot[rank]; ok {
			g.adoptOrphans(slot)
			// Deposits targeting the dead rank's window slots will never be
			// fence-drained (only the owner drains its slot); drop them so
			// they do not count as leaked. Deposits *from* the dead rank in
			// live owners' slots stay — the owner inspects them through
			// PendingFrom after its fence fails, then discards.
			g.dropWindowSlot(slot)
		}
		g.wakeAll()
	}
}

// Alive reports whether rank has not crashed.
func (w *World) Alive(rank int) bool { return !w.dead[rank].Load() }

// DeadRanks returns the sorted list of crashed ranks.
func (w *World) DeadRanks() []int {
	var out []int
	for i := range w.dead {
		if w.dead[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// InjectCycleFaults fires the node faults scheduled for the given phase
// cycle on this rank, then any time-triggered faults that have come due.
// The runtime calls it once at the top of every cycle, from the rank's own
// goroutine — the injection point that makes cycle-triggered crashes
// deterministic. A crash fault does not return.
func (c *Comm) InjectCycleFaults(cycle int) {
	if c.flt == nil {
		return
	}
	for _, f := range c.flt.AtCycle(cycle) {
		c.applyNodeFault(f, cycle)
	}
	c.pollFaults()
}

// pollFaults fires any time-triggered node faults that have come due at the
// rank's current virtual time. Called at every communication operation
// entry, so a timed crash lands at the first op at or after its deadline.
func (c *Comm) pollFaults() {
	for {
		f, ok := c.flt.TimedDue(c.node.Now())
		if !ok {
			return
		}
		c.applyNodeFault(f, -1)
	}
}

// applyNodeFault executes a crash or stall on this rank. Crash marks the
// rank dead, emits telemetry, and unwinds the goroutine with errCrashed
// (recovered silently by Run). Neither fault advances any other rank's
// clock directly, preserving determinism.
func (c *Comm) applyNodeFault(f fault.Fault, cycle int) {
	switch f.Kind {
	case fault.Stall:
		c.emitFailure("stall", cycle, f.Dur, -1)
		c.node.WaitUntil(c.node.Now().Add(f.Dur))
	case fault.Crash:
		c.emitFailure("crash", cycle, 0, -1)
		c.w.Kill(c.rank)
		panic(errCrashed)
	}
}

// messageFault consults the rank's per-link fault rules for a send to dst
// and returns the extra delivery delay (drop = modelled retransmission,
// delay = added latency). The link's send counter advances exactly once per
// send, so rule windows are deterministic.
func (c *Comm) messageFault(dst int) vclock.Duration {
	kind, extra, hit := c.flt.MessageFault(dst)
	if !hit {
		return 0
	}
	switch kind {
	case fault.Drop:
		c.emitFailure("drop", -1, extra, dst)
	case fault.Delay:
		c.emitFailure("delay", -1, extra, dst)
	}
	return extra
}

// emitFailure emits a FailureRecord through the node's telemetry sink, if
// one is attached.
func (c *Comm) emitFailure(kind string, cycle int, d vclock.Duration, target int) {
	sink, st := c.node.Telemetry()
	if sink == nil {
		return
	}
	sink.Emit(telemetry.FailureRecord{
		Base:   st.Stamp(telemetry.KindFailure, cycle, c.node.Now().Seconds()),
		Fault:  kind,
		Target: target,
		DelayS: d.Seconds(),
	})
}
