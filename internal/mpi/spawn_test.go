package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// TestSpawnGrownWorldRunsCollectives grows a 2-rank world into its arrival
// capacity mid-run and drives point-to-point, collective and group traffic
// with ranks at and above the seed size — the mpi-layer half of elastic
// resizing. Run with -race: spawned goroutines share the preallocated
// mailbox/dead arrays with the seed ranks.
func TestSpawnGrownWorldRunsCollectives(t *testing.T) {
	spec := cluster.Uniform(2).WithArrival(1.0, -1).WithArrival(1.0, -1)
	w := NewWorld(cluster.New(spec))
	if w.N() != 2 || w.Cap() != 4 || w.CurSize() != 2 {
		t.Fatalf("world sizes N=%d Cap=%d CurSize=%d, want 2/4/2", w.N(), w.Cap(), w.CurSize())
	}
	var mu sync.Mutex
	sums := map[int]float64{}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.World().Spawn([]int{2, 3})
			if got := c.World().CurSize(); got != 4 {
				return fmt.Errorf("CurSize after Spawn = %d, want 4", got)
			}
		}
		if c.Spawned() != (c.Rank() >= 2) {
			return fmt.Errorf("rank %d Spawned() = %v", c.Rank(), c.Spawned())
		}
		// Point-to-point across the seed boundary, both directions.
		switch c.Rank() {
		case 0:
			c.Send(3, 5, []float64{30}, 8)
			if v, _ := c.RecvF64s(2, 6); v[0] != 20 {
				return fmt.Errorf("rank 0 got %v from spawned rank 2", v)
			}
		case 2:
			c.Send(0, 6, []float64{20}, 8)
		case 3:
			if v, _ := c.RecvF64s(0, 5); v[0] != 30 {
				return fmt.Errorf("rank 3 got %v from rank 0", v)
			}
		}
		// A collective over the grown membership.
		g := c.World().NewGroup([]int{0, 1, 2, 3})
		sum := c.AllreduceSum(g, float64(c.Rank()))
		mu.Lock()
		sums[c.Rank()] = sum
		mu.Unlock()
		return c.BarrierErr(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("%d ranks reduced, want 4", len(sums))
	}
	for r, s := range sums {
		if s != 6 { // 0+1+2+3
			t.Fatalf("rank %d allreduce sum = %v, want 6", r, s)
		}
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d operations leaked in the grown world, want 0", n)
	}
}

// TestSpawnValidation pins the capacity and double-spawn guards.
func TestSpawnValidation(t *testing.T) {
	spec := cluster.Uniform(2).WithArrival(1.0, -1)
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		mustPanic := func(what string, fn func()) error {
			defer func() { recover() }()
			fn()
			return errors.New(what + " did not panic")
		}
		if err := mustPanic("spawn beyond capacity", func() { c.World().Spawn([]int{3}) }); err != nil {
			return err
		}
		if err := mustPanic("spawn of seed rank", func() { c.World().Spawn([]int{1}) }); err != nil {
			return err
		}
		c.World().Spawn([]int{2})
		return mustPanic("double spawn", func() { c.World().Spawn([]int{2}) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeadRankMailboxStaysEmpty is the mailbox-leak satellite: once a rank
// is dead, envelopes addressed to it are dropped at delivery and its
// queued backlog was purged by Kill — protocol traffic aimed at a corpse
// must not accumulate anywhere. The senders' virtual costs are still
// charged (send CPU is paid before delivery), so dropping is trace-neutral.
func TestDeadRankMailboxStaysEmpty(t *testing.T) {
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 0)}
	w := NewWorld(cluster.New(spec))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			// Die with a backlog already queued: Kill must purge it.
			c.Send(2, 1, []float64{1}, 8)
			c.InjectCycleFaults(0)
			return errors.New("crash fault did not fire")
		}
		// Detect the death through the collective failure protocol, so the
		// sends below are deterministically aimed at a known corpse.
		err := c.BarrierErr(c.World().AllGroup())
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			return errors.New("want RankFailedError from barrier, got " + errString(err))
		}
		for i := 0; i < 50; i++ {
			c.Send(2, 7, []float64{float64(i)}, 8)
		}
		return c.BarrierErr(c.World().NewGroup([]int{0, 1}))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.QueuedMsgs(2); n != 0 {
		t.Fatalf("dead rank holds %d queued messages, want 0", n)
	}
	if n := w.LeakedOps(); n != 0 {
		t.Fatalf("%d operations leaked, want 0", n)
	}
}
