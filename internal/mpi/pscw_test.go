package mpi

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/vclock"
)

// This file validates general active-target synchronization (PSCW) the
// same way the fence is validated: against per-message Send/Recv
// simulation of the identical traffic, exactly — the post and complete
// notifications are priced as ordinary 8-byte messages, so the mirror is
// literal — plus the pairwise failure suite (a dead target fails the
// origin's start/complete, a dead origin fails the target's wait, never a
// hang, and no deposit is ever leaked).

// ringPSCW runs an n-rank world where every rank posts its window to its
// predecessor, starts toward its successor, Puts bytes there, completes,
// and waits — the replica-refresh ring shape — and returns each rank's
// final virtual time, receive stall, and (msgs, bytes) receive counters.
func ringPSCW(t *testing.T, n, bytes int, net cluster.NetParams) ([]vclock.Time, []vclock.Duration, []int64) {
	t.Helper()
	spec := cluster.Uniform(n)
	spec.Net = net
	finish := make([]vclock.Time, n)
	stall := make([]vclock.Duration, n)
	rbytes := make([]int64, n)
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		win := c.WinCreate(g, make(FlatMem, bytes/8))
		prev := (c.Rank() - 1 + n) % n
		next := (c.Rank() + 1) % n
		src := make([]float64, bytes/8)
		for i := range src {
			src[i] = float64(c.Rank()*1000 + i)
		}
		c.WinPost(win, []int{prev}, 0)
		c.WinStart(win, []int{next}, nil)
		c.Put(win, next, 0, src)
		c.WinComplete(win)
		c.WinWait(win)
		finish[c.Rank()] = c.Now()
		stall[c.Rank()] = c.RecvStall
		rbytes[c.Rank()] = c.RecvBytes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after clean PSCW ring", leaked)
	}
	return finish, stall, rbytes
}

// ringPSCWSendRecv mirrors ringPSCW message for message with paired
// point-to-point traffic: the post notification, the payload, and the
// completion notification are explicit sends/receives of the same sizes
// in the same program order.
func ringPSCWSendRecv(t *testing.T, n, bytes int, net cluster.NetParams) ([]vclock.Time, []vclock.Duration, []int64) {
	t.Helper()
	spec := cluster.Uniform(n)
	spec.Net = net
	finish := make([]vclock.Time, n)
	stall := make([]vclock.Duration, n)
	rbytes := make([]int64, n)
	const (
		tagPost = 100
		tagData = 101
		tagDone = 102
	)
	if err := Run(cluster.New(spec), func(c *Comm) error {
		prev := (c.Rank() - 1 + n) % n
		next := (c.Rank() + 1) % n
		c.Send(prev, tagPost, nil, pscwCtlBytes) // post
		c.Recv(next, tagPost)                    // start
		c.Send(next, tagData, nil, bytes)        // the one-sided payload
		c.Send(next, tagDone, nil, pscwCtlBytes) // complete
		c.Recv(prev, tagDone)                    // wait: completion notification
		c.Recv(prev, tagData)                    // wait: settle the deposit
		finish[c.Rank()] = c.Now()
		stall[c.Rank()] = c.RecvStall
		rbytes[c.Rank()] = c.RecvBytes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return finish, stall, rbytes
}

// TestPSCWMatchesSendRecvOnWire pins the PSCW pricing contract on a
// CPU-free interconnect: a post/start/put/complete/wait epoch must land
// every rank at *exactly* the virtual time of the literal per-message
// mirror — control notifications are ordinary 8-byte messages and the
// wait's settlement is a receive-side Wait, so with CPU zeroed the two
// formulations are indistinguishable, rank by rank, down to the receive
// counters.
func TestPSCWMatchesSendRecvOnWire(t *testing.T) {
	net := wireNet()
	for _, n := range []int{2, 4, 8} {
		for _, bytes := range []int{8, 4096} {
			rmaT, rmaS, rmaB := ringPSCW(t, n, bytes, net)
			p2pT, p2pS, p2pB := ringPSCWSendRecv(t, n, bytes, net)
			for r := 0; r < n; r++ {
				if rmaT[r] != p2pT[r] {
					t.Errorf("n=%d bytes=%d rank %d: pscw finish %v, send/recv %v",
						n, bytes, r, rmaT[r], p2pT[r])
				}
				if rmaS[r] != p2pS[r] {
					t.Errorf("n=%d bytes=%d rank %d: pscw stall %v, send/recv %v",
						n, bytes, r, rmaS[r], p2pS[r])
				}
				if rmaB[r] != p2pB[r] {
					t.Errorf("n=%d bytes=%d rank %d: pscw recv bytes %d, send/recv %d",
						n, bytes, r, rmaB[r], p2pB[r])
				}
			}
		}
	}
}

// TestPSCWSavesExactRecvCPU pins the modelled saving on the default
// (CPU-charging) interconnect: the PSCW target's timeline is *exactly* one
// receive-side cpuCost(bytes) shorter than the per-message mirror's — the
// payload lands by one-sided deposit instead of a receive-side copy, while
// every control message costs the same on both sides.
func TestPSCWSavesExactRecvCPU(t *testing.T) {
	net := cluster.DefaultNet()
	for _, n := range []int{2, 4, 8} {
		for _, bytes := range []int{8, 4096} {
			rmaT, rmaS, _ := ringPSCW(t, n, bytes, net)
			p2pT, p2pS, _ := ringPSCWSendRecv(t, n, bytes, net)
			saved := cpuCost(net, bytes)
			for r := 0; r < n; r++ {
				if got := p2pT[r].Sub(rmaT[r]); got != saved {
					t.Errorf("n=%d bytes=%d rank %d: pscw saves %v, want exactly cpuCost=%v",
						n, bytes, r, got, saved)
				}
				if rmaS[r] != p2pS[r] {
					t.Errorf("n=%d bytes=%d rank %d: stall diverged: pscw %v, p2p %v",
						n, bytes, r, rmaS[r], p2pS[r])
				}
			}
		}
	}
}

// TestPSCWBeatsFenceSync pins the scalability claim the replica refresh
// spends: on a CPU-free interconnect the pairwise ring epoch finishes
// strictly earlier than the identical traffic under fence synchronisation
// once the group is large enough for the dissemination butterfly
// (ceil(log2 n) rounds) to cost more than one control round-trip.
func TestPSCWBeatsFenceSync(t *testing.T) {
	net := wireNet()
	const bytes = 4096
	for _, n := range []int{8, 32} {
		pscwT, _, _ := ringPSCW(t, n, bytes, net)
		fenceT, _ := ringPutFence(t, n, bytes, net)
		for r := 0; r < n; r++ {
			if pscwT[r] >= fenceT[r] {
				t.Errorf("n=%d rank %d: pscw finish %v, fence %v — pairwise sync should be cheaper",
					n, r, pscwT[r], fenceT[r])
			}
		}
	}
}

// TestGetPSCWMatchesRequestResponseSim validates Get under PSCW — the lazy
// joiner-fetch shape: the target posts its window, the origin starts, Gets
// the slab, and completes (settling the landing); the target's wait drains
// nothing. The origin's finish must match the per-message request/response
// simulation exactly.
func TestGetPSCWMatchesRequestResponseSim(t *testing.T) {
	net := wireNet()
	const elems = 4096
	bytes := F64Bytes(elems)

	var rmaFinish vclock.Time
	spec := cluster.Uniform(2)
	spec.Net = net
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		mem := make(FlatMem, elems)
		for i := range mem {
			mem[i] = float64(c.Rank()*10 + i)
		}
		win := c.WinCreate(g, mem)
		if c.Rank() == 1 {
			c.WinPost(win, []int{0}, 0)
			c.WinWait(win)
			return nil
		}
		dst := make([]float64, elems)
		c.WinStart(win, []int{1}, nil)
		c.Get(win, 1, 0, dst)
		c.WinComplete(win)
		rmaFinish = c.Now()
		for i := range dst {
			if dst[i] != float64(10+i) {
				t.Errorf("get element %d = %v, want %v", i, dst[i], float64(10+i))
				break
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after get-under-pscw run", leaked)
	}

	// Per-message mirror: the post notification, a zero-byte request, the
	// payload coming back, and the completion notification.
	var simFinish vclock.Time
	spec2 := cluster.Uniform(2)
	spec2.Net = net
	if err := Run(cluster.New(spec2), func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(0, 1, nil, pscwCtlBytes) // post
			c.Recv(0, 2)                    // request
			c.Send(0, 3, nil, bytes)        // payload
			c.Recv(0, 4)                    // done
			return nil
		}
		c.Recv(1, 1)                    // start
		c.Send(1, 2, nil, 0)            // the zero-byte get request
		c.Recv(1, 3)                    // payload landing
		c.Send(1, 4, nil, pscwCtlBytes) // complete
		simFinish = c.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rmaFinish != simFinish {
		t.Errorf("get-under-pscw origin finishes at %v, request/response sim at %v", rmaFinish, simFinish)
	}
}

// TestPSCWDrainDeterministic pins the settlement order contract for
// multi-origin exposure epochs: seven origins with uneven payloads deposit
// into one owner, and the owner's final clock, stall, and traffic counters
// must be bit-identical across repeated runs regardless of physical
// scheduling.
func TestPSCWDrainDeterministic(t *testing.T) {
	const n = 8
	run := func() (vclock.Time, vclock.Duration, int64) {
		var finish vclock.Time
		var stall vclock.Duration
		var bytes int64
		spec := cluster.Uniform(n)
		if err := Run(cluster.New(spec), func(c *Comm) error {
			g := c.World().AllGroup()
			win := c.WinCreate(g, make(FlatMem, 64*n))
			if c.Rank() == 0 {
				origins := make([]int, 0, n-1)
				for r := 1; r < n; r++ {
					origins = append(origins, r)
				}
				c.WinPost(win, origins, 0)
				c.WinWait(win)
				finish, stall, bytes = c.Now(), c.RecvStall, c.RecvBytes
				return nil
			}
			c.WinStart(win, []int{0}, nil)
			src := make([]float64, 8*c.Rank())
			c.Put(win, 0, 64*(c.Rank()-1), src[:4])
			c.Put(win, 0, 64*(c.Rank()-1)+4, src)
			c.WinComplete(win)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return finish, stall, bytes
	}
	f0, s0, b0 := run()
	for i := 0; i < 4; i++ {
		f, s, b := run()
		if f != f0 || s != s0 || b != b0 {
			t.Fatalf("run %d diverged: finish %v/%v stall %v/%v bytes %d/%d", i, f, f0, s, s0, b, b0)
		}
	}
}

// TestPSCWFenceSameWindowDisjoint drives fence traffic and PSCW traffic
// through the *same* window in alternation and asserts neither discipline
// settles the other's deposits: a fence drains only fence-stamped
// deposits, a wait only the completed pairwise epoch's.
func TestPSCWFenceSameWindowDisjoint(t *testing.T) {
	const n = 4
	spec := cluster.Uniform(n)
	w := NewWorld(cluster.New(spec))
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		mem := make(FlatMem, 2*n)
		win := c.WinCreate(g, mem)
		prev := (c.Rank() - 1 + n) % n
		next := (c.Rank() + 1) % n
		c.Fence(win)
		// Fence-epoch put into slot [0, n).
		c.Put(win, next, c.Rank(), []float64{float64(100 + c.Rank())})
		// Pairwise epoch over the same window into slot [n, 2n).
		c.WinPost(win, []int{prev}, 0)
		c.WinStart(win, []int{next}, nil)
		c.Put(win, next, n+c.Rank(), []float64{float64(200 + c.Rank())})
		c.WinComplete(win)
		c.WinWait(win)
		if got, want := mem[n+prev], float64(200+prev); got != want {
			t.Errorf("rank %d: pscw deposit = %v, want %v", c.Rank(), got, want)
		}
		c.Fence(win)
		if got, want := mem[prev], float64(100+prev); got != want {
			t.Errorf("rank %d: fence deposit = %v, want %v", c.Rank(), got, want)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after mixed fence/pscw run", leaked)
	}
}

// TestPSCWCrashOriginFailsWait is the pairwise failure suite's ring case:
// rank 2 crashes at a cycle boundary, so its successor's start fails (dead
// target) and its predecessor's wait fails (dead origin) — each with a
// *RankFailedError naming rank 2, never a hang — while the surviving
// pair's transfer is unaffected up to the abandon. Nothing leaks after the
// discard protocol.
func TestPSCWCrashOriginFailsWait(t *testing.T) {
	const n = 3
	spec := cluster.Uniform(n)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 1)}
	w := NewWorld(cluster.New(spec))
	sawError := make([]bool, n)
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		win := c.WinCreate(g, make(FlatMem, 8))
		prev := (c.Rank() - 1 + n) % n
		next := (c.Rank() + 1) % n
		src := []float64{float64(c.Rank())}
		for cycle := 0; cycle < 3; cycle++ {
			c.InjectCycleFaults(cycle) // rank 2 dies entering cycle 1
			c.WinPost(win, []int{prev}, 0)
			if err := c.WinStartErr(win, []int{next}, nil); err != nil {
				// Rank 1's target is the dead rank 2.
				var rf *RankFailedError
				if !errors.As(err, &rf) || len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
					t.Errorf("rank %d: want start RankFailedError{2}, got %v", c.Rank(), err)
				}
				if c.Rank() != 1 {
					t.Errorf("rank %d: unexpected start failure %v", c.Rank(), err)
				}
				sawError[c.Rank()] = true
				// The exposure epoch toward the live predecessor is
				// unaffected by the dead successor — that independence is
				// the point of pairwise sync. Settle it normally.
				if err := c.WinWaitErr(win); err != nil {
					t.Errorf("rank %d: wait on live origin failed after dead-target start: %v", c.Rank(), err)
				}
				c.DiscardPending(win)
				return nil
			}
			c.Put(win, next, 0, src)
			if err := c.WinCompleteErr(win); err != nil {
				t.Errorf("rank %d: complete toward live target failed: %v", c.Rank(), err)
				return nil
			}
			if err := c.WinWaitErr(win); err != nil {
				// Rank 0's origin is the dead rank 2, which never completed.
				var rf *RankFailedError
				if !errors.As(err, &rf) || len(rf.Ranks) != 1 || rf.Ranks[0] != 2 {
					t.Errorf("rank %d: want wait RankFailedError{2}, got %v", c.Rank(), err)
				}
				if c.Rank() != 0 {
					t.Errorf("rank %d: unexpected wait failure %v", c.Rank(), err)
				}
				sawError[c.Rank()] = true
				if c.Rank() == 0 {
					if elems, ok := c.PendingPSCW(win, 2); ok {
						t.Errorf("rank 0: dead rank 2 shows %d pending elems, want none (it died before its put)", elems)
					}
				}
				c.DiscardPending(win)
				return nil
			}
		}
		t.Errorf("rank %d: pairwise sync never reported the crash", c.Rank())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawError[0] || !sawError[1] {
		t.Errorf("survivors did not observe the failure pairwise: %v", sawError)
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after pscw crash run", leaked)
	}
}

// TestPSCWCrashOriginAfterDeposit is the adoption case the replica refresh
// depends on: the origin Puts its slab and dies before completing. The
// target's wait fails, but PendingPSCW answers deterministically that the
// dead origin's transfer landed in full — a crashed rank's Puts completed
// on its own goroutine before the death published — and the window memory
// holds the data, so the survivor can adopt it.
func TestPSCWCrashOriginAfterDeposit(t *testing.T) {
	spec := cluster.Uniform(2)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(0, 1)}
	w := NewWorld(cluster.New(spec))
	adopted := false
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		mem := make(FlatMem, 4)
		win := c.WinCreate(g, mem)
		c.InjectCycleFaults(0)
		if c.Rank() == 0 {
			// Origin: start, deposit in full, die before completing.
			if err := c.WinStartErr(win, []int{1}, nil); err != nil {
				t.Errorf("rank 0: start failed: %v", err)
				return nil
			}
			c.Put(win, 1, 0, []float64{7, 8, 9, 10})
			c.InjectCycleFaults(1) // dies here
			t.Error("rank 0 survived its crash cycle")
			return nil
		}
		c.WinPost(win, []int{0}, 0)
		err := c.WinWaitErr(win)
		var rf *RankFailedError
		if !errors.As(err, &rf) || len(rf.Ranks) != 1 || rf.Ranks[0] != 0 {
			t.Errorf("rank 1: want wait RankFailedError{0}, got %v", err)
			return nil
		}
		elems, ok := c.PendingPSCW(win, 0)
		if !ok || elems != 4 {
			t.Errorf("rank 1: pending from dead origin = (%d,%v), want (4,true)", elems, ok)
		}
		for i, want := range []float64{7, 8, 9, 10} {
			if mem[i] != want {
				t.Errorf("rank 1: window mem[%d] = %v, want %v", i, mem[i], want)
			}
		}
		adopted = true
		c.DiscardPending(win)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !adopted {
		t.Error("rank 1 never inspected the dead origin's pending deposit")
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after adoption run", leaked)
	}
}

// TestPSCWCrashTargetFailsComplete pins the remaining failure edge: the
// target posts, the origin starts and deposits, and the target dies before
// the origin completes. Once the death is published (here via a failed
// collective, the same cycle-boundary convergence the runtime uses), the
// origin's complete reports *RankFailedError instead of notifying a corpse.
func TestPSCWCrashTargetFailsComplete(t *testing.T) {
	spec := cluster.Uniform(2)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(1, 1)}
	w := NewWorld(cluster.New(spec))
	sawComplete := false
	if err := w.Run(func(c *Comm) error {
		g := c.World().AllGroup()
		win := c.WinCreate(g, make(FlatMem, 4))
		c.InjectCycleFaults(0)
		if c.Rank() == 1 {
			c.WinPost(win, []int{0}, 0)
			c.InjectCycleFaults(1) // dies after posting
			t.Error("rank 1 survived its crash cycle")
			return nil
		}
		// The post was sent before the death, so the start succeeds.
		if err := c.WinStartErr(win, []int{1}, nil); err != nil {
			t.Errorf("rank 0: start failed: %v", err)
			return nil
		}
		c.Put(win, 1, 0, []float64{1, 2})
		// Converge on the death the way the runtime does: the next
		// collective over the group fails deterministically.
		if err := c.BarrierErr(g); err == nil {
			t.Error("rank 0: barrier over a dead member succeeded")
		}
		err := c.WinCompleteErr(win)
		var rf *RankFailedError
		if !errors.As(err, &rf) || len(rf.Ranks) != 1 || rf.Ranks[0] != 1 {
			t.Errorf("rank 0: want complete RankFailedError{1}, got %v", err)
			return nil
		}
		sawComplete = true
		c.DiscardPending(win)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawComplete {
		t.Error("rank 0 never observed the dead target at complete")
	}
	if leaked := w.LeakedOps(); leaked != 0 {
		t.Fatalf("leaked %d ops after dead-target complete run", leaked)
	}
}
