package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// This file cross-validates the closed-form collective cost model (cost.go)
// against per-message Send/Recv simulations of the very trees the model
// claims to price. The interconnect is configured with zero per-message and
// per-byte CPU cost, so a simulated tree's completion time is purely wire
// time and directly comparable to the model's wire component:
//
//	bcast      binomial tree — exact for power-of-two groups
//	allreduce  recursive doubling — exact for power-of-two groups
//	gather     recursive halving toward the root — exact for power-of-two
//	allgather  recursive doubling with doubling block sizes — the model's
//	           every-round-at-final-volume charge is a deliberate
//	           over-approximation, so it is only bounded, not matched
//
// Non-power group sizes are charged at ceil(log2 n) tree depth, which can
// only over-approximate the simulated trees; the exactness assertions
// therefore run on powers of two and the bound assertions on the rest.

// wireNet is the default interconnect with CPU costs zeroed.
func wireNet() cluster.NetParams {
	net := cluster.DefaultNet()
	net.CPUPerMsg = 0
	net.CPUPerByte = 0
	return net
}

// simTree runs fn on an n-rank world over wireNet and returns the latest
// finish time across ranks — the per-message tree's completion time.
func simTree(t *testing.T, n int, fn func(c *Comm, rank int)) vclock.Duration {
	t.Helper()
	spec := cluster.Uniform(n)
	spec.Net = wireNet()
	finish := make([]vclock.Time, n)
	if err := Run(cluster.New(spec), func(c *Comm) error {
		fn(c, c.Rank())
		finish[c.Rank()] = c.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var last vclock.Time
	for _, f := range finish {
		if f > last {
			last = f
		}
	}
	return last.Sub(0)
}

// simBcast runs a per-message binomial-tree broadcast from rank 0.
func simBcast(t *testing.T, n, bytes int) vclock.Duration {
	steps := treeSteps(n)
	return simTree(t, n, func(c *Comm, rank int) {
		// Low-bit-first doubling: in round s every rank below 2^s already
		// holds the payload and forwards it to rank+2^s.
		for s := 0; s < steps; s++ {
			bit := 1 << s
			if rank < bit {
				if rank+bit < n {
					c.Send(rank+bit, s, nil, bytes)
				}
			} else if rank < bit<<1 {
				c.Recv(rank-bit, s)
			}
		}
	})
}

// simAllreduce runs a per-message recursive-doubling exchange (n must be a
// power of two); every round moves the full vector both ways.
func simAllreduce(t *testing.T, n, bytes int) vclock.Duration {
	steps := treeSteps(n)
	return simTree(t, n, func(c *Comm, rank int) {
		for s := 0; s < steps; s++ {
			peer := rank ^ (1 << s)
			c.Send(peer, s, nil, bytes)
			c.Recv(peer, s)
		}
	})
}

// simGather runs a per-message recursive-halving gather toward rank 0 (n
// must be a power of two); round s ships 2^s-block aggregates.
func simGather(t *testing.T, n, bytes int) vclock.Duration {
	steps := treeSteps(n)
	return simTree(t, n, func(c *Comm, rank int) {
		for s := 0; s < steps; s++ {
			bit := 1 << s
			group := bit<<1 - 1
			if rank&group == bit {
				c.Send(rank-bit, s, nil, bit*bytes)
				return
			}
			if rank&group == 0 && rank+bit < n {
				c.Recv(rank+bit, s)
			}
		}
	})
}

// simAllgather runs a per-message recursive-doubling allgather (n must be a
// power of two); round s exchanges 2^s contribution blocks both ways.
func simAllgather(t *testing.T, n, bytes int) vclock.Duration {
	steps := treeSteps(n)
	return simTree(t, n, func(c *Comm, rank int) {
		for s := 0; s < steps; s++ {
			peer := rank ^ (1 << s)
			c.Send(peer, s, nil, (1<<s)*bytes)
			c.Recv(peer, s)
		}
	})
}

func TestBcastCostMatchesPerMessageTree(t *testing.T) {
	net := wireNet()
	for _, n := range []int{2, 4, 8, 16} {
		for _, bytes := range []int{8, 4096} {
			sim := simBcast(t, n, bytes)
			model := bcastCost(net, n, bytes).wire
			if sim != model {
				t.Errorf("n=%d bytes=%d: simulated binomial bcast %v, model %v", n, bytes, sim, model)
			}
		}
	}
	// Non-powers: the ceil-depth charge may only over-approximate.
	for _, n := range []int{3, 5, 6, 7, 12} {
		sim := simBcast(t, n, 1024)
		model := bcastCost(net, n, 1024).wire
		if sim > model {
			t.Errorf("n=%d: simulated bcast %v exceeds model %v", n, sim, model)
		}
	}
}

func TestAllreduceCostMatchesPerMessageTree(t *testing.T) {
	net := wireNet()
	for _, n := range []int{2, 4, 8, 16} {
		for _, bytes := range []int{8, 4096} {
			sim := simAllreduce(t, n, bytes)
			model := allreduceCost(net, n, bytes).wire
			if sim != model {
				t.Errorf("n=%d bytes=%d: simulated recursive doubling %v, model %v", n, bytes, sim, model)
			}
		}
	}
}

func TestGatherCostMatchesPerMessageTree(t *testing.T) {
	net := wireNet()
	for _, n := range []int{2, 4, 8, 16} {
		for _, bytes := range []int{8, 4096} {
			sim := simGather(t, n, bytes)
			model := gatherCost(net, n, bytes).wire
			if sim != model {
				t.Errorf("n=%d bytes=%d: simulated recursive halving %v, model %v", n, bytes, sim, model)
			}
		}
	}
}

func TestAllgatherCostBoundsPerMessageTree(t *testing.T) {
	net := wireNet()
	for _, n := range []int{4, 8, 16} {
		for _, bytes := range []int{8, 4096} {
			sim := simAllgather(t, n, bytes)
			model := allgatherCost(net, n, bytes).wire
			steps := vclock.Duration(treeSteps(n))
			if model < sim {
				t.Errorf("n=%d bytes=%d: model %v under-prices the simulated tree %v", n, bytes, model, sim)
			}
			if model > steps*sim {
				t.Errorf("n=%d bytes=%d: model %v exceeds %d× the simulated tree %v", n, bytes, model, steps, sim)
			}
		}
	}
}
