package mpi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vclock"
)

// Nonblocking point-to-point layer.
//
// Isend/Irecv return a pooled *Request; Wait/WaitErr/WaitReplayErr complete
// it and recycle it. The virtual-time contract mirrors the paper's comm-CPU
// (beta) accounting:
//
//   - Isend charges only the CPU injection cost (cpuCost) at post time. The
//     wire time (wireTime) elapses in virtual background: the envelope's
//     avail stamp is computed exactly as in Send, so a matching blocking
//     Recv observes identical arrival times.
//   - Irecv charges nothing at post time; it merely registers the match
//     pattern (or captures an already-queued envelope).
//   - Wait advances the caller's clock to max(now, arrival) and then charges
//     the receive-side cpuCost — the same total virtual charge as a blocking
//     Recv issued at the Wait point. Wire time that elapsed behind the
//     caller's compute between post and Wait is therefore genuinely free,
//     and the freed amount is credited to Comm.HiddenWire.
//
// Determinism: the only virtual-time effects are in Wait (WaitUntil +
// Compute), which runs on the caller's own goroutine in program order.
// Waitany is purely physical — it reports which request happens to be
// complete without touching any clock — so callers that need deterministic
// virtual timing must impose their own order on the Wait calls (see
// internal/core/redist.go for the re-sequenced commit pattern).

// Request is one in-flight nonblocking operation. Requests are owned by the
// issuing Comm's goroutine, pooled per Comm, and recycled by the Wait
// family; after a successful or failed Wait the pointer must not be reused.
type Request struct {
	c       *Comm
	send    bool // send requests complete at post time (eager buffering)
	src     int  // peer rank: source for receives, destination for sends
	tag     int
	done    bool // envelope captured (guarded by the owning mailbox mutex)
	claimed bool // harvested by Waitany, not yet waited on
	postVT  vclock.Time
	env     envelope
}

// Arrival reports the virtual time at which the request's message fully
// arrives, and whether the envelope is available yet (always true for send
// requests). It does not advance any clock; deterministic drains use it to
// order their Wait calls.
func (r *Request) Arrival() (vclock.Time, bool) {
	box := r.c.w.boxes[r.c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	if !r.done {
		return 0, false
	}
	return r.env.avail, true
}

// getReq pops a pooled request (or allocates the pool's high-water mark).
func (c *Comm) getReq() *Request {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &Request{c: c}
}

// putReq resets and recycles a request. Only the owning goroutine calls it.
func (c *Comm) putReq(r *Request) {
	r.send, r.done, r.claimed = false, false, false
	r.env = envelope{} // release the payload reference for the GC
	c.reqFree = append(c.reqFree, r)
}

// Isend starts a nonblocking send of payload (bytes long on the wire) to
// rank dst. The virtual charge at post time is exactly Send's CPU injection
// cost, and the message is delivered with the same arrival stamp as Send —
// the two are indistinguishable to the receiver. The returned request is
// complete immediately (sends are eager-buffered); Wait on it charges
// nothing and recycles it. Ownership of payload transfers to the receiver,
// as with Send.
func (c *Comm) Isend(dst, tag int, payload any, bytes int) *Request {
	c.checkFailed()
	if dst < 0 || dst >= c.w.cap {
		panic(fmt.Sprintf("mpi: isend to invalid rank %d", dst))
	}
	var faultDelay vclock.Duration
	if c.flt != nil {
		c.pollFaults()
		faultDelay = c.messageFault(dst)
	}
	net := c.w.cl.Net()
	c.node.Compute(cpuCost(net, bytes))
	env := envelope{
		src:     c.rank,
		tag:     tag,
		payload: payload,
		bytes:   bytes,
		avail:   c.node.Now().Add(wireTime(net, bytes) + faultDelay),
	}
	c.SentMsgs++
	c.SentBytes += int64(bytes)
	c.w.deliver(dst, env)
	r := c.getReq()
	r.send = true
	r.src = dst
	r.tag = tag
	r.done = true
	r.postVT = c.node.Now()
	r.env.avail = env.avail
	r.env.bytes = bytes
	return r
}

// Irecv posts a nonblocking receive for a message from src with the given
// tag. No virtual time is charged at post; the receive-side CPU cost is
// charged by Wait. Wildcards (AnySource/AnyTag) are not supported: a posted
// request is matched by senders, and wildcard matching at the sender would
// make completion order depend on physical goroutine scheduling.
func (c *Comm) Irecv(src, tag int) *Request {
	c.checkFailed()
	if src == AnySource || tag == AnyTag {
		panic("mpi: Irecv does not support AnySource/AnyTag")
	}
	if src < 0 || src >= c.w.cap {
		panic(fmt.Sprintf("mpi: irecv from invalid rank %d", src))
	}
	if c.flt != nil {
		c.pollFaults()
	}
	r := c.getReq()
	r.src, r.tag = src, tag
	r.postVT = c.node.Now()
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	if env, ok := box.take(src, tag); ok {
		r.env = env
		r.done = true
	} else {
		box.posted = append(box.posted, r)
	}
	box.mu.Unlock()
	return r
}

// removePosted unlinks r from box.posted, preserving order. Callers hold
// box.mu. The backing array is kept, so the posted list is allocation-free
// once its high-water mark is reached.
func removePosted(box *mailbox, r *Request) {
	for i, p := range box.posted {
		if p == r {
			copy(box.posted[i:], box.posted[i+1:])
			box.posted[len(box.posted)-1] = nil
			box.posted = box.posted[:len(box.posted)-1]
			return
		}
	}
}

// waitErr completes req: block until the envelope is captured (physical),
// then advance the caller's clock to the arrival time and charge the
// receive-side CPU cost (virtual). credit selects whether wire time hidden
// behind the caller's compute is accumulated into Comm.HiddenWire; the
// replay path (deterministic re-sequenced drains whose clocks match the
// blocking implementation exactly) passes false because nothing was
// genuinely hidden there.
func (c *Comm) waitErr(req *Request, credit bool) (any, Status, error) {
	c.checkFailed()
	if c.flt != nil {
		c.pollFaults() // same injection point as RecvErr entry
	}
	if req.send {
		c.putReq(req)
		return nil, Status{}, nil
	}
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	for !req.done {
		if c.w.failed.Load() {
			box.mu.Unlock()
			panic(errFailed)
		}
		if c.w.deadCount.Load() > 0 && c.w.dead[req.src].Load() {
			removePosted(box, req)
			box.mu.Unlock()
			src := req.src
			c.putReq(req)
			return nil, Status{}, &RankFailedError{Op: "irecv", Ranks: []int{src}}
		}
		box.reqWait = true
		box.cond.Wait()
	}
	box.mu.Unlock()
	env := req.env
	now := c.node.Now()
	stall := env.avail.Sub(now)
	if stall < 0 {
		stall = 0
	}
	c.RecvStall += stall
	c.node.WaitUntil(env.avail)
	c.node.Compute(cpuCost(c.w.cl.Net(), env.bytes))
	c.RecvMsgs++
	c.RecvBytes += int64(env.bytes)
	if credit {
		// Wire time that elapsed between post and Wait minus the part the
		// caller still stalled on: the communication this overlap hid.
		if inflight := env.avail.Sub(req.postVT); inflight > 0 {
			if hidden := inflight - stall; hidden > 0 {
				c.HiddenWire += hidden
			}
		}
	}
	st := Status{Source: env.src, Tag: env.tag, Bytes: env.bytes}
	payload := env.payload
	c.putReq(req)
	return payload, st, nil
}

// Wait completes req, failing the whole world if the peer died (mirroring
// Recv). For receives it returns the payload and status.
func (c *Comm) Wait(req *Request) (any, Status) {
	p, st, err := c.waitErr(req, true)
	if err != nil {
		c.w.fail(fmt.Errorf("rank %d: %w", c.rank, err))
		panic(errFailed)
	}
	return p, st
}

// WaitErr completes req with bounded waiting under failures: when the peer
// is dead and the message never arrived it returns a *RankFailedError
// naming it. The request is recycled in every outcome.
func (c *Comm) WaitErr(req *Request) (any, Status, error) {
	return c.waitErr(req, true)
}

// WaitReplayErr is WaitErr without the hidden-wire credit. Deterministic
// re-sequenced drains (redistribution's schedule-order commit) use it: their
// clock advance replays the blocking implementation exactly, so no wire time
// was genuinely hidden and crediting it would overstate the overlap.
func (c *Comm) WaitReplayErr(req *Request) (any, Status, error) {
	return c.waitErr(req, false)
}

// Waitall completes every non-nil request in reqs (nilling the slice entries
// as it goes, so the pooled requests cannot be reused by mistake). Payloads
// are discarded — callers that need them use WaitErr per request. If peers
// died, it still drains every request and returns one *RankFailedError
// naming all dead peers encountered.
func (c *Comm) Waitall(reqs []*Request) error {
	var dead []int
	for i, r := range reqs {
		if r == nil {
			continue
		}
		reqs[i] = nil
		if _, _, err := c.waitErr(r, true); err != nil {
			var rf *RankFailedError
			if !errors.As(err, &rf) {
				return err
			}
			dead = append(dead, rf.Ranks...)
		}
	}
	if len(dead) > 0 {
		sort.Ints(dead)
		keep := dead[:1]
		for _, d := range dead[1:] {
			if d != keep[len(keep)-1] {
				keep = append(keep, d)
			}
		}
		return &RankFailedError{Op: "waitall", Ranks: keep}
	}
	return nil
}

// Waitany blocks until some unclaimed request in reqs is physically
// complete (or can only fail because its peer is dead), marks it claimed,
// and returns its index; the caller then runs Wait/WaitErr on it. It
// returns -1 when every entry is nil or already claimed. Waitany advances
// no virtual clock and charges no cost — it answers "what has arrived?",
// not "when?" — so harvest order may be physically nondeterministic while
// the virtual timeline stays fully determined by the subsequent Wait calls.
func (c *Comm) Waitany(reqs []*Request) int {
	c.checkFailed()
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		pending := false
		for i, r := range reqs {
			if r == nil || r.claimed {
				continue
			}
			if r.done || r.send ||
				(c.w.deadCount.Load() > 0 && c.w.dead[r.src].Load()) {
				r.claimed = true
				return i
			}
			pending = true
		}
		if !pending {
			return -1
		}
		if c.w.failed.Load() {
			panic(errFailed)
		}
		box.reqWait = true
		box.cond.Wait()
	}
}

// Test reports whether req is physically complete: Wait on it would not
// block. A receive whose peer died without sending also tests true — the
// Wait would return its RankFailedError immediately. No clock is touched.
func (c *Comm) Test(req *Request) bool {
	if req.send {
		return true
	}
	box := c.w.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	return req.done || (c.w.deadCount.Load() > 0 && c.w.dead[req.src].Load())
}
