package mpi

import (
	"repro/internal/cluster"
	"repro/internal/vclock"
)

// This file is the collective cost model: one named function per collective,
// each charging the wire time and per-member CPU of the tree the virtual
// implementation models. The shapes (and the exact arithmetic, which the
// golden traces pin byte-for-byte) are:
//
//	barrier    dissemination (butterfly): steps rounds of zero-byte pairwise
//	           notifications — steps*Latency wire, steps*CPUPerMsg CPU.
//	bcast      binomial tree rooted at the source: steps rounds each moving
//	           the full payload one level deeper.
//	allreduce  recursive doubling: steps rounds of pairwise exchange of the
//	           full vector, combine after each round — the same per-step
//	           charge as bcast.
//	allgather  recursive doubling: round k exchanges 2^k contributions, so
//	           the model conservatively charges every round at the dominant
//	           final-round volume (half the total payload plus one block).
//	gather     root-terminated binomial tree (recursive halving): round k
//	           ships 2^k-block aggregates toward the root, so across the
//	           whole tree exactly n-1 blocks cross the wire — per-byte work
//	           scales with n-1, not steps*n/2 as the allgather does. Prior
//	           to this model Gather was priced as a full Allgather.
//
// steps is the tree depth ceil(log2 n). The small-n cross-check tests
// (crosscheck_test.go) validate each closed form against a per-message
// Send/Recv simulation of the same tree; the property tests
// (costmodel_test.go) pin monotonicity in group size and payload bytes.

// treeSteps returns ceil(log2(n)), the depth of the modelled trees.
func treeSteps(n int) int {
	if n <= 1 {
		return 0
	}
	s := 0
	for v := n - 1; v > 0; v >>= 1 {
		s++
	}
	return s
}

// collCost is the virtual charge of one collective: wire extends the
// group's common completion time past the last arrival, and cpuEach is
// charged to every member's CPU clock after the rendezvous (and is
// therefore inflated by competing processes, like any CPU work).
type collCost struct {
	wire    vclock.Duration
	cpuEach vclock.Duration
}

// barrierCost prices the dissemination barrier.
func barrierCost(net cluster.NetParams, n int) collCost {
	steps := vclock.Duration(treeSteps(n))
	return collCost{wire: steps * net.Latency, cpuEach: steps * net.CPUPerMsg}
}

// bcastCost prices the binomial-tree broadcast of a bytes-sized payload.
func bcastCost(net cluster.NetParams, n, bytes int) collCost {
	steps := vclock.Duration(treeSteps(n))
	return collCost{
		wire:    steps * wireTime(net, bytes),
		cpuEach: steps * cpuCost(net, bytes),
	}
}

// allreduceCost prices the recursive-doubling allreduce of a bytes-sized
// vector: every round moves the full vector, so the charge matches bcast.
func allreduceCost(net cluster.NetParams, n, bytes int) collCost {
	steps := vclock.Duration(treeSteps(n))
	return collCost{
		wire:    steps * wireTime(net, bytes),
		cpuEach: steps * cpuCost(net, bytes),
	}
}

// allgatherCost prices the recursive-doubling allgather of one bytes-sized
// contribution per member. Round k exchanges 2^k contributions; the model
// charges every round at the dominant final-round volume (total/2 + bytes),
// a deliberate over-approximation the existing golden traces pin.
func allgatherCost(net cluster.NetParams, n, bytes int) collCost {
	steps := vclock.Duration(treeSteps(n))
	total := bytes * n
	return collCost{
		wire:    steps * wireTime(net, total/2+bytes),
		cpuEach: steps * cpuCost(net, total/2+bytes),
	}
}

// gatherCost prices the root-terminated binomial gather: latency is paid
// once per tree level, but only n-1 contribution blocks cross the wire in
// total (recursive halving toward the root), so the per-byte component
// scales with n-1 — strictly cheaper than the allgather for n >= 2 with a
// non-empty payload.
func gatherCost(net cluster.NetParams, n, bytes int) collCost {
	steps := treeSteps(n)
	vol := float64((n - 1) * bytes)
	return collCost{
		wire:    vclock.Duration(steps)*net.Latency + vclock.FromSeconds(vol/net.BytesPerSec),
		cpuEach: vclock.Duration(steps)*net.CPUPerMsg + vclock.Duration(vol*net.CPUPerByte),
	}
}

// --- nonblocking overlap pricing -----------------------------------------
//
// The nonblocking layer (request.go) needs no cost table of its own — every
// charge it makes is Send/Recv's cpuCost plus a WaitUntil to the arrival
// stamp — but the *residual stall* of an overlapped receive has a closed
// form that the decision machinery and the halo-overlap cross-check test
// price against per-message simulation:
//
//	post Isend(b)        sender pays cpuCost(b); arrival = now + wire(b)
//	compute W            wall time W elapses on the receiver
//	Wait                 stalls max(0, wire(b) + skew - W), then pays
//	                     cpuCost(b)
//
// where skew is the sender-minus-receiver clock offset when the send
// completed. nbRecvStall below folds the skew into its overlap argument:
// callers pass the receiver wall time elapsed since the matching send
// completed (on a common phase-start reference).

// --- one-sided (RMA) pricing ---------------------------------------------
//
// The one-sided layer (window.go) likewise reuses the point-to-point
// closed forms; its epoch arithmetic, which the RMA crosscheck tests
// validate against per-message Send/Recv simulation, is:
//
//	Put(b)               origin pays cpuCost(b) at post;
//	                     arrival = post + wireTime(b). The target pays
//	                     nothing per message.
//	Get(b)               origin pays cpuCost(0) at post (the zero-byte
//	                     request); arrival = post + Latency + wireTime(b);
//	                     the origin pays cpuCost(b) when its fence settles
//	                     the landing.
//	Fence                synchronisation = barrierCost(n) exactly (the
//	                     same dissemination butterfly); then the owner
//	                     settles each deposit in arrival order, stalling
//	                     nbRecvStall(b, overlap) where overlap is the
//	                     owner's wall time already elapsed past the
//	                     deposit's post — wire time hidden behind the
//	                     owner's compute is credited to Comm.HiddenWire,
//	                     never charged.
//
// Relative to a paired Isend/Irecv+Wait of the same payload, the target
// side of a Put therefore saves exactly cpuCost(b) — the receive-side
// copy — per message, plus the per-message matching stall; that closed
// delta is what the crosscheck tests assert and the refresh/redist
// consumers in internal/core spend.
//
// General active-target synchronization (PSCW) replaces the fence's
// dissemination butterfly with pairwise control messages that are priced
// as ordinary 8-byte sends and receives — the identity that makes the
// closed form below cross-validate exactly against per-message simulation
// (window_test.go's PSCW mirrors):
//
//	Post(origins)        sender side of one 8-byte Send per origin:
//	                     cpuCost(8) each; the notification arrives
//	                     wireTime(8) later.
//	Start(targets)       receiver side of one 8-byte Recv per target:
//	                     stall to the post's arrival, then cpuCost(8).
//	Complete()           one 8-byte Send per target (cpuCost(8) each,
//	                     arrival wireTime(8) later), then the origin
//	                     settles its own Get landings with the fence's
//	                     deposit arithmetic.
//	Wait()               receiver side of one 8-byte Recv per posted
//	                     origin (stall + cpuCost(8) each), then the owner
//	                     settles that epoch's deposits exactly as a fence
//	                     would — same nbRecvStall overlap form, same
//	                     HiddenWire credit.
//
// An epoch over k pairs therefore prices as k control round-trips —
// O(1) per pair, independent of the group size n — against the fence's
// barrierCost(n) = ceil(log2 n) * (Latency + CPUPerMsg) paid by every
// member. For the replica-refresh ring (each rank posts to one origin and
// starts toward one target) the per-rank sync cost is two 8-byte control
// messages each way instead of a full butterfly: that gap is the 256-rank
// makespan regression the PSCW refresh removes (internal/exp's RMA study
// measures it end to end).

// nbRecvStall predicts the Wait-side stall of a nonblocking receive of b
// bytes when `overlap` of receiver wall time elapsed between the matching
// send's completion and the Wait.
func nbRecvStall(net cluster.NetParams, b int, overlap vclock.Duration) vclock.Duration {
	if s := wireTime(net, b) - overlap; s > 0 {
		return s
	}
	return 0
}

// haloOverlapCycle prices one overlapped halo phase on the middle rank of a
// three-rank chain of unloaded power-1 nodes, all starting the phase at a
// common time: each edge neighbour posts its single boundary Isend first
// (completing one cpuCost after phase start), the middle rank posts two
// Isends (completing at 2*cpuCost), everyone computes `interior`, and the
// middle rank's two Waits then drain the residual stall. Both incoming
// arrivals are stamped cpuCost + wireTime after phase start while the first
// Wait begins at 2*cpuCost + interior, so the overlapped span seen by
// nbRecvStall is interior + cpuCost and the second Wait never stalls. The
// result is the middle rank's wall time from phase start to both ghosts
// stored, excluding the boundary compute that follows.
func haloOverlapCycle(net cluster.NetParams, b int, interior vclock.Duration) vclock.Duration {
	c := cpuCost(net, b)
	stall := nbRecvStall(net, b, interior+c)
	return 2*c + interior + stall + 2*c
}
