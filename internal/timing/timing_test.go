package timing

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

func loadedNode(k int) *cluster.Node {
	spec := cluster.Uniform(1)
	for i := 0; i < k; i++ {
		spec = spec.With(cluster.TimeEvent(0, 0, +1))
	}
	return cluster.New(spec).Node(0)
}

// measure runs `cycles` phase cycles of `iters` iterations of cost `cost`
// on node and returns the per-iteration estimates.
func measure(node *cluster.Node, lo, hi, cycles int, cost vclock.Duration) []float64 {
	c := NewCollector(node, lo, hi)
	for cy := 0; cy < cycles; cy++ {
		for g := lo; g < hi; g++ {
			c.BeginIter()
			node.Compute(cost)
			c.EndIter(g)
		}
		c.EndCycle()
	}
	return c.Estimates()
}

func TestLongIterationsUseProcAndIgnoreLoad(t *testing.T) {
	// 50ms iterations on a node with 2 CPs: /PROC resolves them and is
	// immune to the load, so estimates must be ~50ms despite 3x wall slowdown.
	n := loadedNode(2)
	est := measure(n, 0, 10, 1, 50*vclock.Millisecond)
	for g, e := range est {
		if e < 0.039 || e > 0.061 {
			t.Fatalf("iter %d estimate %v, want ~0.05 (10ms granularity)", g, e)
		}
	}
}

func TestShortIterationsGP1IsNoisy(t *testing.T) {
	// 1ms iterations under load with one measured cycle: some estimates
	// carry a context-switch spike.
	n := loadedNode(1)
	est := measure(n, 0, 100, 1, vclock.Millisecond)
	spiked := 0
	for _, e := range est {
		if e > 0.005 {
			spiked++
		}
	}
	if spiked == 0 {
		t.Fatal("GP=1 produced no spiked estimates; the Figure-7 effect would vanish")
	}
}

func TestShortIterationsGP5Recovers(t *testing.T) {
	// With a 5-cycle grace period the min filter removes the spikes.
	n := loadedNode(1)
	est := measure(n, 0, 100, DefaultGracePeriod, vclock.Millisecond)
	for g, e := range est {
		if math.Abs(e-0.001) > 1e-9 {
			t.Fatalf("iter %d estimate %v, want exactly 0.001 after min filter", g, e)
		}
	}
}

func TestEstimatesScaleByPower(t *testing.T) {
	spec := cluster.Uniform(1)
	spec.Nodes[0].Power = 2
	n := cluster.New(spec).Node(0)
	est := measure(n, 0, 4, 3, 40*vclock.Millisecond) // 40ms reference = 20ms local
	for _, e := range est {
		if math.Abs(e-0.04) > 0.011 {
			t.Fatalf("estimate %v, want ~0.04 reference seconds", e)
		}
	}
}

func TestNonuniformIterations(t *testing.T) {
	n := loadedNode(0)
	c := NewCollector(n, 0, 3)
	costs := []vclock.Duration{20 * vclock.Millisecond, 40 * vclock.Millisecond, 80 * vclock.Millisecond}
	for cy := 0; cy < 2; cy++ {
		for g := 0; g < 3; g++ {
			c.BeginIter()
			n.Compute(costs[g])
			c.EndIter(g)
		}
		c.EndCycle()
	}
	est := c.Estimates()
	if !(est[0] < est[1] && est[1] < est[2]) {
		t.Fatalf("estimates %v lost the imbalance", est)
	}
}

func TestCollectorStateMachine(t *testing.T) {
	n := loadedNode(0)
	c := NewCollector(n, 0, 1)
	c.BeginIter()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double BeginIter did not panic")
			}
		}()
		c.BeginIter()
	}()
	c.EndIter(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EndIter without BeginIter did not panic")
			}
		}()
		c.EndIter(0)
	}()
	c.BeginIter()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range EndIter did not panic")
			}
		}()
		c.EndIter(5)
	}()
}

func TestBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCollector(loadedNode(0), 5, 2)
}

func TestRangeAndCycles(t *testing.T) {
	n := loadedNode(0)
	c := NewCollector(n, 3, 7)
	if lo, hi := c.Range(); lo != 3 || hi != 7 {
		t.Fatal("Range")
	}
	c.EndCycle()
	c.EndCycle()
	if c.Cycles() != 2 {
		t.Fatal("Cycles")
	}
}

func TestCycleTimerAverage(t *testing.T) {
	n := loadedNode(0)
	ct := NewCycleTimer(n)
	for i := 0; i < 4; i++ {
		ct.Begin()
		n.Compute(vclock.Duration(100 * vclock.Millisecond))
		ct.End()
	}
	if ct.Cycles() != 4 {
		t.Fatal("Cycles")
	}
	if math.Abs(ct.Average()-0.1) > 1e-9 {
		t.Fatalf("Average = %v", ct.Average())
	}
}

func TestCycleTimerLoadInflation(t *testing.T) {
	n := loadedNode(1)
	ct := NewCycleTimer(n)
	ct.Begin()
	n.Compute(vclock.Duration(vclock.Second))
	ct.End()
	if ct.Average() < 1.9 {
		t.Fatalf("loaded cycle average %v, want ~2s", ct.Average())
	}
}

func TestCycleTimerStateMachine(t *testing.T) {
	ct := NewCycleTimer(loadedNode(0))
	if ct.Average() != 0 {
		t.Fatal("empty timer average")
	}
	ct.Begin()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Begin did not panic")
			}
		}()
		ct.Begin()
	}()
	ct.End()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("End without Begin did not panic")
			}
		}()
		ct.End()
	}()
}

func TestQuantize(t *testing.T) {
	if quantize(25*vclock.Millisecond) != 20*vclock.Millisecond {
		t.Fatal("quantize 25ms")
	}
	if quantize(9*vclock.Millisecond) != 0 {
		t.Fatal("quantize 9ms")
	}
	if quantize(10*vclock.Millisecond) != 10*vclock.Millisecond {
		t.Fatal("quantize 10ms")
	}
}
