// Package timing implements Dyn-MPI's computation-timing machinery
// (paper §4.2). To choose a good distribution the runtime needs the *true,
// unloaded* execution time of every iteration, measured while the node may
// be loaded. Two mechanisms exist:
//
//   - /PROC: per-process CPU time. Immune to competing processes but only
//     10 ms granular, so useless for short iterations.
//   - gethrtime: high-resolution wallclock. Arbitrarily fine, but includes
//     time stolen by other processes; an iteration that spans a
//     context-switch boundary absorbs a whole competing timeslice. The
//     cure is to measure the same iteration over several phase cycles (the
//     grace period) and take the minimum.
//
// Collector implements both, selecting per iteration exactly as the paper
// does: /PROC when the iteration runs 10 ms or longer, min-filtered
// wallclock otherwise.
package timing

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// ProcGranularity is the /PROC CPU-time resolution.
const ProcGranularity = 10 * vclock.Millisecond

// DefaultGracePeriod is the number of phase cycles measured before
// computing a distribution ("five phase cycle iterations").
const DefaultGracePeriod = 5

// DefaultPostRedistGrace is the monitoring period after a redistribution
// used by the drop decision ("currently ten phase cycle iterations").
const DefaultPostRedistGrace = 10

// quantize truncates d to the /PROC granularity.
func quantize(d vclock.Duration) vclock.Duration {
	return d - d%ProcGranularity
}

// Collector accumulates per-iteration timing for a node across the grace
// period, for the iteration range [lo,hi) currently assigned to it.
type Collector struct {
	node   *cluster.Node
	lo, hi int

	cycles    int
	wallMin   []vclock.Duration // per local iteration, min over cycles
	procSum   []vclock.Duration
	procCount []int

	iterWallStart vclock.Time
	iterProcStart vclock.Duration
	inIter        bool
}

// NewCollector starts collecting for iterations [lo,hi) on node.
func NewCollector(node *cluster.Node, lo, hi int) *Collector {
	if lo > hi {
		panic(fmt.Sprintf("timing: bad iteration range [%d,%d)", lo, hi))
	}
	n := hi - lo
	c := &Collector{node: node, lo: lo, hi: hi,
		wallMin:   make([]vclock.Duration, n),
		procSum:   make([]vclock.Duration, n),
		procCount: make([]int, n),
	}
	for i := range c.wallMin {
		c.wallMin[i] = vclock.Duration(1) << 62
	}
	return c
}

// BeginIter marks the start of one iteration's computation.
func (c *Collector) BeginIter() {
	if c.inIter {
		panic("timing: BeginIter while an iteration is open")
	}
	c.inIter = true
	c.iterWallStart = c.node.Now()
	c.iterProcStart = quantize(c.node.CPUTime())
}

// EndIter records global iteration g's measurements for this cycle.
func (c *Collector) EndIter(g int) {
	if !c.inIter {
		panic("timing: EndIter without BeginIter")
	}
	c.inIter = false
	if g < c.lo || g >= c.hi {
		panic(fmt.Sprintf("timing: iteration %d outside [%d,%d)", g, c.lo, c.hi))
	}
	i := g - c.lo
	wall := c.node.Now().Sub(c.iterWallStart)
	proc := quantize(c.node.CPUTime()) - c.iterProcStart
	if wall < c.wallMin[i] {
		c.wallMin[i] = wall
	}
	c.procSum[i] += proc
	c.procCount[i]++
}

// EndCycle marks the end of one measured phase cycle.
func (c *Collector) EndCycle() { c.cycles++ }

// Cycles reports how many complete cycles have been measured.
func (c *Collector) Cycles() int { return c.cycles }

// Estimates returns the unloaded *per-phase-cycle* cost of each iteration,
// in seconds of reference CPU (multiplied back by the node's power so
// estimates from different nodes are comparable). An application may
// bracket the same iteration several times per cycle (SOR measures each
// half-phase); the estimate is the iteration's total cost per cycle.
//
// Mechanism choice per sample follows the paper: /PROC when even the
// best-case wall time is at least one granule, min-filtered wallclock
// otherwise (with the min multiplied back by the samples-per-cycle count).
func (c *Collector) Estimates() []float64 {
	out := make([]float64, c.hi-c.lo)
	cycles := c.cycles
	if cycles == 0 {
		cycles = 1
	}
	for i := range out {
		samplesPerCycle := c.procCount[i] / cycles
		if samplesPerCycle == 0 {
			samplesPerCycle = 1
		}
		var local vclock.Duration
		if c.procCount[i] > 0 && c.wallMin[i] >= ProcGranularity && c.procSum[i] > 0 {
			local = c.procSum[i] / vclock.Duration(cycles)
		} else {
			local = c.wallMin[i] * vclock.Duration(samplesPerCycle)
		}
		out[i] = local.Seconds() * c.node.Power()
	}
	return out
}

// Range reports the iteration range being collected.
func (c *Collector) Range() (lo, hi int) { return c.lo, c.hi }

// CycleTimer measures average wall time per phase cycle (used during the
// post-redistribution grace period for the drop decision).
type CycleTimer struct {
	node   *cluster.Node
	start  vclock.Time
	total  vclock.Duration
	cycles int
	open   bool
}

// NewCycleTimer creates a cycle timer for node.
func NewCycleTimer(node *cluster.Node) *CycleTimer {
	return &CycleTimer{node: node}
}

// Begin marks the start of a phase cycle.
func (t *CycleTimer) Begin() {
	if t.open {
		panic("timing: Begin while a cycle is open")
	}
	t.open = true
	t.start = t.node.Now()
}

// End marks the end of a phase cycle.
func (t *CycleTimer) End() {
	if !t.open {
		panic("timing: End without Begin")
	}
	t.open = false
	t.total += t.node.Now().Sub(t.start)
	t.cycles++
}

// Cycles reports completed cycles.
func (t *CycleTimer) Cycles() int { return t.cycles }

// Average reports the mean cycle wall time in seconds (0 if none measured).
func (t *CycleTimer) Average() float64 {
	if t.cycles == 0 {
		return 0
	}
	return (t.total / vclock.Duration(t.cycles)).Seconds()
}
