package core

import (
	"testing"

	"repro/internal/cluster"
)

// rejoinSpec builds the canonical churn scenario: a CP lands on `node` at
// cycle `on` and leaves at cycle `off`.
func rejoinSpec(n, node, on, off int) cluster.Spec {
	return cluster.Uniform(n).
		With(cluster.CycleEvent(node, on, +1)).
		With(cluster.CycleEvent(node, off, -1))
}

func TestRejoinAfterLoadVanishes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = true
	// Node 2 is loaded between cycles 3 and 25: it gets dropped, then its
	// CP exits and it must be re-added with a fair share of the data.
	spec := rejoinSpec(4, 2, 3, 25)
	results := runMini(t, spec, cfg, 64, 60, false)
	checkValuesAndCoverage(t, results, 64)
	res2 := results[2]
	if res2.removed {
		t.Fatal("node 2 still removed at the end; rejoin did not happen")
	}
	var kinds []EventKind
	for _, ev := range res2.events {
		kinds = append(kinds, ev.Kind)
	}
	sawRemoved, sawRejoin := false, false
	for _, k := range kinds {
		if k == EvRemoved {
			sawRemoved = true
		}
		if k == EvRejoin && sawRemoved {
			sawRejoin = true
		}
	}
	if !sawRemoved || !sawRejoin {
		t.Fatalf("event sequence %v lacks removed-then-rejoin", kinds)
	}
	// After rejoin, the node must own a non-trivial share again.
	if res2.ownedCnt < 8 {
		t.Fatalf("rejoined node owns only %d rows", res2.ownedCnt)
	}
	// All survivors agree on the final 4-node distribution.
	for r, res := range results {
		if len(res.counts) != 4 {
			t.Fatalf("rank %d final distribution %v does not include the rejoined node", r, res.counts)
		}
	}
}

func TestRejoinPreservesValuesWithGlobals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = true
	spec := rejoinSpec(3, 1, 2, 20)
	results := runMini(t, spec, cfg, 30, 45, true)
	checkValuesAndCoverage(t, results, 30)
	// Global reductions must have stayed consistent across removal and
	// rejoin on every rank.
	g0 := results[0].globals
	for r := 1; r < 3; r++ {
		g := results[r].globals
		if len(g) != len(g0) {
			t.Fatalf("rank %d saw %d globals, rank 0 saw %d", r, len(g), len(g0))
		}
		for i := range g {
			if g[i] != g0[i] {
				t.Fatalf("global %d differs: rank %d saw %v, rank 0 saw %v", i, r, g[i], g0[i])
			}
		}
	}
}

func TestRejoinDisabledKeepsNodeOut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = false
	spec := rejoinSpec(4, 2, 3, 25)
	results := runMini(t, spec, cfg, 64, 60, false)
	checkValuesAndCoverage(t, results, 64)
	if !results[2].removed {
		t.Fatal("without AllowRejoin the dropped node must stay removed")
	}
}

func TestRejoinRootIsNeverDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = true
	// The CP lands on rank 0 — the send-out root — which must be pinned.
	spec := cluster.Uniform(3).With(cluster.CycleEvent(0, 3, +1))
	results := runMini(t, spec, cfg, 30, 30, false)
	checkValuesAndCoverage(t, results, 30)
	if results[0].removed {
		t.Fatal("send-out root was dropped despite AllowRejoin pinning")
	}
}

func TestRepeatedChurn(t *testing.T) {
	// Two full load/unload waves on the same node: drop, rejoin, drop,
	// rejoin — data must survive every transition.
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = true
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 3, +1)).
		With(cluster.CycleEvent(1, 25, -1)).
		With(cluster.CycleEvent(1, 50, +1)).
		With(cluster.CycleEvent(1, 75, -1))
	results := runMini(t, spec, cfg, 64, 110, false)
	checkValuesAndCoverage(t, results, 64)
	rejoins := 0
	for _, ev := range results[1].events {
		if ev.Kind == EvRejoin {
			rejoins++
		}
	}
	if rejoins < 2 {
		t.Fatalf("node 1 rejoined %d times, want 2", rejoins)
	}
	if results[1].removed {
		t.Fatal("node 1 should be active at the end")
	}
}

// TestRejoinTimingDeterministic pins the rejoin-protocol cost accounting:
// every rank's event stream and finish time must be identical across runs.
// The old exchangeLoads priced the removed-poll wire traffic only on
// whichever rank happened to run the allgather's reduce closure (the last
// physical arriver), so repeated runs could disagree on virtual timestamps.
func TestRejoinTimingDeterministic(t *testing.T) {
	runOnce := func() map[int]*miniResult {
		cfg := DefaultConfig()
		cfg.Drop = DropAlways
		cfg.AllowRejoin = true
		return runMini(t, rejoinSpec(4, 2, 3, 25), cfg, 64, 60, false)
	}
	a, b := runOnce(), runOnce()
	for r, res := range a {
		other := b[r]
		if res.final != other.final {
			t.Fatalf("rank %d finish time differs across runs: %v vs %v", r, res.final, other.final)
		}
		if len(res.events) != len(other.events) {
			t.Fatalf("rank %d event counts differ: %d vs %d", r, len(res.events), len(other.events))
		}
		for i := range res.events {
			if res.events[i].Time != other.events[i].Time || res.events[i].Kind != other.events[i].Kind {
				t.Fatalf("rank %d event %d differs: %+v vs %+v", r, i, res.events[i], other.events[i])
			}
		}
	}
}
