package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/distribution"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// This file turns detected rank deaths into a forced membership change.
//
// Detection happens at two kinds of sites with different symmetry:
//
//   - Collective errors (mpi.RankFailedError from an *Err collective) are
//     observed by every group member at the same operation, so the observer
//     may immediately shrink the membership (absorbFailure) and retry over
//     the rebuilt group.
//   - Point-to-point errors (RecvErr during a redistribution or replica
//     refresh) may be observed by only some ranks mid-protocol. Those sites
//     only record the death (absorbDead); an asymmetric group rebuild there
//     could leave peers waiting on a group the observer abandoned. The
//     trailing collective of the protocol fails for everyone, so by the
//     next cycle boundary all survivors agree.
//
// Recovery itself (handleFailure) runs at the top of BeginCycle — a point
// every surviving active rank reaches — and, when the dead ranks held data,
// executes a recovery redistribution that reconstructs their rows from
// buddy replicas (Config.Replicate) or declares them lost.

// LostRange identifies rows of one array that could not be reconstructed
// after a failure: they were zero-filled and the application must treat
// them as reinitialised.
type LostRange struct {
	Array  string
	Lo, Hi int
}

// replica is a rank's copy of its ring predecessor's rows of one dense
// array, refreshed by refreshReplicas (paired send/recv) or through the
// one-sided window machinery in rma.go. data always holds the committed
// replica; stage is the window memory remote Puts land in under ReplicaRMA,
// promoted to data only when the epoch-closing fence settles — so an epoch
// that can no longer settle (the origin died mid-cycle without depositing)
// leaves the committed replica intact.
type replica struct {
	lo, hi int
	data   []float64
	stage  []float64
}

// replicaSlab is the wire form of a replica payload: the row range actually
// covered plus the packed rows. A holder whose replica does not cover a
// requested transfer ships the covered subrange (possibly empty); the
// receiver zero-fills the rest as lost.
type replicaSlab struct {
	lo, hi int
	data   *denseSlab
}

// DeadRanks returns the world ranks this runtime has absorbed as crashed.
func (rt *Runtime) DeadRanks() []int { return append([]int(nil), rt.deadRanks...) }

// LostRows returns the row ranges declared lost by failure recoveries, in
// the order they were recorded.
func (rt *Runtime) LostRows() []LostRange { return append([]LostRange(nil), rt.lost...) }

// RecoveredRows reports how many rows failure recoveries reconstructed from
// buddy replicas.
func (rt *Runtime) RecoveredRows() int { return rt.recoveredRows }

// deadOf extracts the dead ranks from a point-to-point receive error. Any
// other error is unrecoverable and aborts the world.
func (rt *Runtime) deadOf(err error) []int {
	var rf *mpi.RankFailedError
	if !errors.As(err, &rf) {
		rt.comm.Abort(err)
	}
	return rf.Ranks
}

// absorbDead records newly detected dead ranks for the next handleFailure
// pass without touching the membership (safe at asymmetric point-to-point
// detection sites).
func (rt *Runtime) absorbDead(ranks []int) {
	for _, r := range ranks {
		if !containsInt(rt.pendingDead, r) && !containsInt(rt.deadRanks, r) {
			rt.pendingDead = append(rt.pendingDead, r)
		}
	}
	sort.Ints(rt.pendingDead)
}

// absorbFailure handles an error from a collective operation: every group
// member observed the identical error at the same operation, so the
// membership shrink is symmetric and the caller may immediately retry over
// the rebuilt group. Non-failure errors abort the world.
func (rt *Runtime) absorbFailure(err error) {
	var rf *mpi.RankFailedError
	if !errors.As(err, &rf) {
		rt.comm.Abort(err)
	}
	rt.absorbDead(rf.Ranks)
	rt.shrinkActive(rf.Ranks)
}

// shrinkActive removes dead ranks from the membership and rebuilds the
// collective group. Idempotent: shrinking by an already-absorbed death is a
// no-op (NewGroup is canonical by member list).
func (rt *Runtime) shrinkActive(dead []int) {
	newActive := withoutInts(rt.active, dead)
	if len(newActive) == 0 {
		rt.comm.Abort(fmt.Errorf("core: every active rank is dead (%v)", dead))
	}
	changed := len(newActive) != len(rt.active)
	rt.active = newActive
	rt.removed = withoutInts(rt.removed, dead)
	if changed {
		rt.group = rt.comm.World().NewGroup(rt.active)
	}
}

// handleFailure turns the pending dead set into a forced membership change
// and, when the dead ranks held data, a recovery redistribution. Every
// surviving active rank calls it at the same point (top of BeginCycle, or
// the load-exchange error path), so the collective recovery is symmetric.
func (rt *Runtime) handleFailure() {
	dead := rt.pendingDead
	if len(dead) == 0 {
		return
	}
	rt.pendingDead = nil
	rt.deadRanks = append(rt.deadRanks, dead...)
	sort.Ints(rt.deadRanks)
	rt.record(EvFailure, 0, fmt.Sprintf("dead=%v", dead))

	touchesData := false
	for _, r := range rt.dist.Ranks() {
		if containsInt(dead, r) {
			touchesData = true
		}
	}
	rt.shrinkActive(dead)
	if touchesData {
		// Re-partition over the survivors by relative power (their loads are
		// re-measured next cycle; recovery must not depend on load state the
		// dead rank can no longer contribute to).
		iterCosts := rt.iterCosts
		if iterCosts == nil {
			iterCosts = make([]float64, rt.n)
			for i := range iterCosts {
				iterCosts[i] = 1
			}
		}
		powers := rt.powers()
		nodes := make([]distribution.Node, len(rt.active))
		for i, r := range rt.active {
			nodes[i] = distribution.Node{Rank: r, Power: powers[r]}
		}
		fractions := distribution.RelativePowerFractions(nodes)
		counts := distribution.PartitionWeighted(iterCosts, fractions)
		rt.recoverDistribution(drsd.NewBlock(rt.active, counts), dead)
		rt.redists++
		rt.baseLoads = make([]int, len(rt.active))
		rt.state = stNormal
		rt.collector = nil
		rt.cycTimer = nil
		rt.cycOpen = false
	}
	rt.emitMembership("failure-drop")
}

// recoverDistribution is applyDistribution with one extra concern: transfers
// sourced at a dead rank cannot arrive. When replication is on and the dead
// rank's buddy survives, the buddy serves those transfers from its replica;
// otherwise the rows are declared lost. All surviving active ranks call this
// collectively with identical arguments; rt.dist is still the pre-failure
// distribution (including the dead ranks).
func (rt *Runtime) recoverDistribution(newDist *drsd.Block, dead []int) {
	if rt.cfg.ReplicaRMA {
		// Settle the replica epoch left open by the last refresh before any
		// replica is read: the fence fails (the old replica group contains
		// the dead ranks) and the adoption protocol decides, per array,
		// whether the dead predecessor's deposit landed in full (rma.go).
		rt.closeReplicaEpoch()
	}
	rt.record(EvRedistStart, 0, "failure")
	me := rt.comm.Rank()
	var bytesSent, bytesRecv int64
	var moves []telemetry.ArrayMove
	if rt.sink != nil {
		moves = make([]telemetry.ArrayMove, 0, len(rt.order))
	}
	lost0 := rt.lostRows

	deadSet := map[int]bool{}
	for _, d := range dead {
		deadSet[d] = true
	}
	// The buddy holding a dead rank's replica is its ring successor in the
	// pre-failure distribution — the rank refreshReplicas shipped to.
	holder := map[int]int{}
	oldRanks := rt.dist.Ranks()
	for i, r := range oldRanks {
		if deadSet[r] {
			holder[r] = oldRanks[(i+1)%len(oldRanks)]
		}
	}

	olo, ohi := rt.dist.RangeOf(me)
	for _, name := range rt.order {
		a := rt.arrays[name]
		// Same owned-only diff-schedule fast path as applyDistribution.
		if drsd.OwnedOnly(a.accesses) {
			rt.schedBuf = drsd.ScheduleDiffInto(rt.schedBuf[:0], rt.dist, newDist)
		} else {
			rt.schedBuf = drsd.ScheduleWindowsInto(rt.schedBuf[:0], rt.dist, newDist, a.accesses)
		}
		sched := rt.schedBuf
		tag := tagRecover + a.index

		// Phase 1: extract this rank's own outgoing payloads before the
		// window changes (identical to applyDistribution).
		nlo, nhi := newDist.RangeOf(me)
		wlo, whi := drsd.Window(a.accesses, nlo, nhi, rt.n)
		if n := ohi - olo; cap(rt.destBuf) < n {
			rt.destBuf = make([]int, n)
		} else {
			rt.destBuf = rt.destBuf[:n]
		}
		destCount := rt.destBuf
		clear(destCount)
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			for g := tr.Lo; g < tr.Hi; g++ {
				destCount[g-olo]++
			}
		}
		outs := rt.outsBuf[:0]
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			m := redistOut{to: tr.To, lo: tr.Lo, rows: tr.Hi - tr.Lo}
			if a.dense != nil {
				slab := getDenseSlab(m.rows, a.dense.RowLen)
				a.dense.CopyRowsTo(slab.data, tr.Lo, tr.Hi)
				for g := tr.Lo; g < tr.Hi; g++ {
					keep := g >= wlo && g < whi
					destCount[g-olo]--
					if keep || destCount[g-olo] > 0 || a.dense.Scheme() == matrix.Contiguous {
						rt.node.ChargeTouch(a.dense.RowBytes())
					}
				}
				m.dense = slab
				m.bytes = m.rows * int(a.dense.RowBytes())
			} else {
				slab := getSparseSlab()
				a.sparse.PackRowsTo(&slab.p, tr.Lo, tr.Hi)
				m.spars = slab
				m.bytes = slab.p.WireBytes()
			}
			outs = append(outs, m)
		}
		rt.outsBuf = outs

		// Phase 2: resize the resident window.
		if a.dense != nil {
			a.dense.SetWindow(wlo, whi)
		} else {
			a.sparse.SetWindow(wlo, whi)
		}

		// Phase 3: ship own outgoing slabs, then serve the dead ranks'
		// transfers this rank holds replicas for. Sends are eager, so the
		// send-before-receive order makes the exchange deadlock-free.
		mv := telemetry.ArrayMove{Name: name}
		for i := range outs {
			m := &outs[i]
			if m.dense != nil {
				rt.comm.Send(m.to, tag, m.dense, m.bytes)
				m.dense = nil
			} else {
				rt.comm.Send(m.to, tag, m.spars, m.bytes)
				m.spars = nil
			}
			mv.Rows += m.rows
			mv.Bytes += int64(m.bytes)
			bytesSent += int64(m.bytes)
		}
		if rt.cfg.Replicate && a.dense != nil {
			rep := rt.replicas[name]
			for _, tr := range sched {
				if !deadSet[tr.From] || holder[tr.From] != me || tr.To == me {
					continue
				}
				plo, phi := intersect(tr.Lo, tr.Hi, rep)
				rows := phi - plo
				slab := getDenseSlab(rows, a.dense.RowLen)
				if rows > 0 {
					off := (plo - rep.lo) * a.dense.RowLen
					copy(slab.data, rep.data[off:off+rows*a.dense.RowLen])
					for g := plo; g < phi; g++ {
						rt.node.ChargeTouch(a.dense.RowBytes())
					}
				}
				bytes := 16 + rows*int(a.dense.RowBytes())
				rt.comm.Send(tr.To, tag, replicaSlab{lo: plo, hi: phi, data: slab}, bytes)
				mv.Rows += rows
				mv.Bytes += int64(bytes)
				bytesSent += int64(bytes)
			}
		}
		if rt.sink != nil && (mv.Rows > 0 || mv.Bytes > 0) {
			moves = append(moves, mv)
		}

		// Phase 4: receive, distinguishing live sources (normal slabs) from
		// dead ones (replica service or declared loss).
		for _, tr := range sched {
			if tr.To != me {
				continue
			}
			if deadSet[tr.From] {
				rt.recoverTransfer(a, tag, tr, holder, deadSet, &bytesRecv)
				continue
			}
			payload, st, err := rt.comm.RecvErr(tr.From, tag)
			if err != nil {
				rt.absorbDead(rt.deadOf(err))
				rt.loseRows(a, tr.Lo, tr.Hi)
				continue
			}
			bytesRecv += int64(st.Bytes)
			if a.dense != nil {
				slab, ok := payload.(*denseSlab)
				if !ok || slab.rows != tr.Hi-tr.Lo {
					panic(fmt.Sprintf("core: bad dense recovery payload for %q", name))
				}
				a.dense.PutRows(tr.Lo, slab.data)
				putDenseSlab(slab)
			} else {
				slab, ok := payload.(*sparseSlab)
				if !ok || slab.p.Rows() != tr.Hi-tr.Lo {
					panic(fmt.Sprintf("core: bad sparse recovery payload for %q", name))
				}
				a.sparse.UnpackRows(tr.Lo, &slab.p)
				putSparseSlab(slab)
			}
		}
	}

	rt.dist = newDist
	if err := rt.comm.BarrierErr(rt.group); err != nil {
		rt.absorbDead(rt.deadOf(err))
	}
	rt.events = append(rt.events, Event{
		Kind: EvRedistEnd, Cycle: rt.cycle, Time: rt.node.Now(),
		Bytes: bytesSent + bytesRecv, BytesSent: bytesSent, BytesRecv: bytesRecv,
		Counts: newDist.Counts(), Info: "failure",
	})
	if rt.sink != nil {
		rows, sent := 0, int64(0)
		for _, mv := range moves {
			rows += mv.Rows
			sent += mv.Bytes
		}
		rt.sink.Emit(telemetry.RedistRecord{
			Base:       rt.stamp(telemetry.KindRedist),
			Arrays:     moves,
			RowsSent:   rows,
			BytesSent:  sent,
			BytesRecv:  bytesRecv,
			BytesMoved: sent + bytesRecv,
			Counts:     newDist.Counts(),
			LostRows:   rt.lostRows - lost0,
		})
	}
	rt.refreshReplicasNow()
}

// recoverTransfer satisfies one transfer whose source is dead: from this
// rank's own replica, from the buddy's replica over the wire, or — when no
// live replica exists (replication off, sparse array, buddy also dead) — by
// declaring the rows lost. The holder sends exactly when the receiver
// expects a message, both sides deciding from the same holder map.
func (rt *Runtime) recoverTransfer(a *regArray, tag int, tr drsd.Transfer, holder map[int]int, deadSet map[int]bool, bytesRecv *int64) {
	h, ok := holder[tr.From]
	if !rt.cfg.Replicate || a.dense == nil || !ok || deadSet[h] {
		rt.loseRows(a, tr.Lo, tr.Hi)
		return
	}
	if h == rt.comm.Rank() {
		rt.restoreLocal(a, tr.Lo, tr.Hi)
		return
	}
	payload, st, err := rt.comm.RecvErr(h, tag)
	if err != nil {
		rt.absorbDead(rt.deadOf(err))
		rt.loseRows(a, tr.Lo, tr.Hi)
		return
	}
	*bytesRecv += int64(st.Bytes)
	rs, ok := payload.(replicaSlab)
	if !ok {
		panic(fmt.Sprintf("core: bad replica recovery payload for %q", a.name))
	}
	if rs.hi > rs.lo {
		a.dense.PutRows(rs.lo, rs.data.data)
		rt.recoveredRows += rs.hi - rs.lo
	}
	putDenseSlab(rs.data)
	rt.loseRows(a, tr.Lo, minI(rs.lo, tr.Hi))
	rt.loseRows(a, maxI(rs.hi, tr.Lo), tr.Hi)
}

// restoreLocal reconstructs rows [lo,hi) of a dense array from this rank's
// own replica (the dead rank was this rank's ring predecessor).
func (rt *Runtime) restoreLocal(a *regArray, lo, hi int) {
	rep := rt.replicas[a.name]
	plo, phi := intersect(lo, hi, rep)
	if phi > plo {
		off := (plo - rep.lo) * a.dense.RowLen
		a.dense.PutRows(plo, rep.data[off:off+(phi-plo)*a.dense.RowLen])
		for g := plo; g < phi; g++ {
			rt.node.ChargeTouch(a.dense.RowBytes())
		}
		rt.recoveredRows += phi - plo
	}
	rt.loseRows(a, lo, plo)
	rt.loseRows(a, phi, hi)
}

// loseRows declares global rows [lo,hi) of array a unrecoverable: dense
// rows are zero-filled, sparse rows cleared, and the range recorded so the
// application can see exactly what was lost.
func (rt *Runtime) loseRows(a *regArray, lo, hi int) {
	if hi <= lo {
		return
	}
	for g := lo; g < hi; g++ {
		if a.dense != nil {
			row := a.dense.Row(g)
			for j := range row {
				row[j] = 0
			}
			rt.node.ChargeTouch(a.dense.RowBytes())
		} else {
			a.sparse.ClearRow(g)
			rt.node.ChargeTouch(8)
		}
	}
	rt.lost = append(rt.lost, LostRange{Array: a.name, Lo: lo, Hi: hi})
	rt.lostRows += hi - lo
}

// refreshReplicas re-captures dense-array buddy replicas: each rank ships a
// copy of its owned rows to its ring successor in the current distribution
// and stores the copy its predecessor ships in return. Runs at every
// (re)distribution point and, when ReplicaEvery is set, every N cycles from
// EndCycle. Eager sends precede the receives, so the ring cannot deadlock.
func (rt *Runtime) refreshReplicas() {
	if !rt.cfg.Replicate || rt.isOut {
		return
	}
	ranks := rt.dist.Ranks()
	if len(ranks) < 2 {
		rt.replicas = nil
		return
	}
	me := rt.comm.Rank()
	self := -1
	for i, r := range ranks {
		if r == me {
			self = i
		}
	}
	if self < 0 {
		return
	}
	next := ranks[(self+1)%len(ranks)]
	prev := ranks[(self-1+len(ranks))%len(ranks)]
	lo, hi := rt.dist.RangeOf(me)
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		if !rt.comm.World().Alive(next) {
			// The buddy died mid-cycle: its mailbox will never be drained, so
			// shipping the refresh would only waste injection time. The death
			// is recovered at the next cycle boundary; skipping here keeps the
			// send side consistent with the receive side's error handling.
			continue
		}
		rows := hi - lo
		slab := getDenseSlab(rows, a.dense.RowLen)
		a.dense.CopyRowsTo(slab.data, lo, hi)
		for g := lo; g < hi; g++ {
			rt.node.ChargeTouch(a.dense.RowBytes())
		}
		rt.comm.Send(next, tagReplica+a.index, replicaSlab{lo: lo, hi: hi, data: slab},
			16+rows*int(a.dense.RowBytes()))
	}
	if rt.replicas == nil {
		rt.replicas = make(map[string]*replica)
	}
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		p, _, err := rt.comm.RecvErr(prev, tagReplica+a.index)
		if err != nil {
			// The predecessor died before shipping its refresh; keep the
			// stale replica and let the next cycle boundary run recovery.
			rt.absorbDead(rt.deadOf(err))
			continue
		}
		rs, ok := p.(replicaSlab)
		if !ok {
			panic(fmt.Sprintf("core: bad replica refresh payload for %q", name))
		}
		rep := rt.replicas[name]
		if rep == nil {
			rep = &replica{}
			rt.replicas[name] = rep
		}
		n := (rs.hi - rs.lo) * a.dense.RowLen
		if cap(rep.data) < n {
			rep.data = make([]float64, n)
		} else {
			rep.data = rep.data[:n]
		}
		copy(rep.data, rs.data.data[:n])
		rep.lo, rep.hi = rs.lo, rs.hi
		for g := rs.lo; g < rs.hi; g++ {
			rt.node.ChargeTouch(a.dense.RowBytes())
		}
		putDenseSlab(rs.data)
	}
}

// intersect clips [lo,hi) to the replica's covered range; a nil replica
// yields the empty range [lo,lo).
func intersect(lo, hi int, rep *replica) (int, int) {
	if rep == nil {
		return lo, lo
	}
	plo, phi := maxI(lo, rep.lo), minI(hi, rep.hi)
	if phi < plo {
		return lo, lo
	}
	return plo, phi
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// withoutInts returns s with every member of drop removed (fresh slice).
func withoutInts(s, drop []int) []int {
	out := make([]int, 0, len(s))
	for _, x := range s {
		if !containsInt(drop, x) {
			out = append(out, x)
		}
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
