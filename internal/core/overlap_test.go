package core

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// TestMeasureCommSubtractsHiddenWire pins the decision-path adjustment: an
// application that overlaps its exchanges accrues HiddenWire during the
// grace window, and measureComm must price its communication wire at the
// effective (post-overlap) cost — strictly below what the identical traffic
// pattern costs when exchanged blockingly — while the CPU component, which
// overlap cannot hide, stays identical.
func TestMeasureCommSubtractsHiddenWire(t *testing.T) {
	const cycles = 4
	run := func(overlap bool) (cpu, wire float64) {
		var mu sync.Mutex
		spec := cluster.Uniform(2)
		spec.Net.Latency = 2 * vclock.Millisecond
		err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
			rt := New(c, DefaultConfig())
			rt.RegisterDense("X", 8, 4)
			ph := rt.InitPhase(8)
			ph.AddAccess("X", drsd.ReadWrite, 1, 0)
			rt.Commit()
			rt.enterGrace([]int{0, 0})
			peer := 1 - c.Rank()
			for tag := 0; tag < cycles; tag++ {
				if overlap {
					rq := c.Irecv(peer, tag)
					c.Isend(peer, tag, nil, 0)
					c.Node().Compute(10 * vclock.Millisecond)
					c.Wait(rq)
				} else {
					c.Node().Compute(10 * vclock.Millisecond)
					c.Send(peer, tag, nil, 0)
					c.Recv(peer, tag)
				}
			}
			ccpu, cwire, err := rt.measureComm(cycles)
			if err != nil {
				return err
			}
			mu.Lock()
			cpu, wire = ccpu, cwire
			mu.Unlock()
			rt.Finalize()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cpu, wire
	}
	bCPU, bWire := run(false)
	oCPU, oWire := run(true)
	if oCPU != bCPU {
		t.Fatalf("overlap changed the comm CPU measurement: %v vs %v", oCPU, bCPU)
	}
	if oWire < 0 {
		t.Fatalf("negative measured wire %v", oWire)
	}
	if oWire >= bWire {
		t.Fatalf("hidden wire not subtracted: overlapped %v vs blocking %v", oWire, bWire)
	}
}
