package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// runMiniTraced is runMini with a telemetry ring attached; it returns the
// per-rank results plus the deterministically sorted JSONL encoding of the
// full trace.
func runMiniTraced(t *testing.T, spec cluster.Spec, cfg Config, n, cycles int) (map[int]*miniResult, []byte) {
	t.Helper()
	ring := telemetry.NewRing(1 << 16)
	cfg.Telemetry = ring
	results := runMini(t, spec, cfg, n, cycles, false)
	if ring.Dropped() != 0 {
		t.Fatalf("telemetry ring overflowed (%d dropped)", ring.Dropped())
	}
	recs := ring.Records()
	telemetry.Sort(recs)
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return results, buf.Bytes()
}

// sameOutcome asserts two runs are observably identical: final virtual
// times, distributions, event traces (including redistribution stall), and
// data values per rank.
func sameOutcome(t *testing.T, label string, a, b map[int]*miniResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: rank count %d vs %d", label, len(a), len(b))
	}
	for r, ra := range a {
		rb := b[r]
		if ra.final != rb.final {
			t.Errorf("%s: rank %d finish %v vs %v", label, r, ra.final, rb.final)
		}
		if ra.redists != rb.redists || !ra.ownedOK || !rb.ownedOK {
			t.Errorf("%s: rank %d redists/values diverged", label, r)
		}
		if len(ra.events) != len(rb.events) {
			t.Fatalf("%s: rank %d event count %d vs %d", label, r, len(ra.events), len(rb.events))
		}
		for i := range ra.events {
			ea, eb := fmt.Sprintf("%+v", ra.events[i]), fmt.Sprintf("%+v", rb.events[i])
			if ea != eb {
				t.Errorf("%s: rank %d event %d: %s vs %s", label, r, i, ea, eb)
			}
		}
	}
}

// TestRedistPipelinedOrderEquivalence is the randomized-completion-order
// suite: the pipelined Phase 3 must produce byte-identical telemetry traces
// and identical outcomes to the legacy blocking drain no matter in which
// physical order the incoming slabs are harvested. Seeded shuffles force
// adversarial claim orders through the redistHarvestShuffle hook; the
// replay-priced commit must erase them all.
func TestRedistPipelinedOrderEquivalence(t *testing.T) {
	const n, cycles = 64, 25
	scenario := func() cluster.Spec { return cpAtCycle(cluster.Uniform(4), 1, 3) }
	cfg := DefaultConfig()
	cfg.Drop = DropNever

	cfg.RedistMode = RedistBlocking
	refRes, refTrace := runMiniTraced(t, scenario(), cfg, n, cycles)
	if refRes[0].redists == 0 {
		t.Fatal("scenario produced no redistribution; suite is vacuous")
	}

	cfg.RedistMode = RedistPipelined
	pipRes, pipTrace := runMiniTraced(t, scenario(), cfg, n, cycles)
	sameOutcome(t, "pipelined", refRes, pipRes)
	if !bytes.Equal(refTrace, pipTrace) {
		t.Fatal("pipelined trace differs from blocking trace")
	}

	defer func() { redistHarvestShuffle = nil }()
	for seed := int64(1); seed <= 4; seed++ {
		redistHarvestShuffle = func(c *mpi.Comm, reqs []*mpi.Request) {
			// Claim completions in a seeded random order, spinning
			// physically (never touching virtual clocks) until each chosen
			// request lands.
			rng := rand.New(rand.NewSource(seed*1009 + int64(c.Rank())))
			for _, i := range rng.Perm(len(reqs)) {
				for !c.Test(reqs[i]) {
					runtime.Gosched()
				}
			}
		}
		res, trace := runMiniTraced(t, scenario(), cfg, n, cycles)
		sameOutcome(t, "shuffled", refRes, res)
		if !bytes.Equal(refTrace, trace) {
			t.Fatalf("seed %d: shuffled harvest trace differs from blocking trace", seed)
		}
	}
}

// TestRedistOverlapReducesStall pins the opt-in arrival-order mode: on a
// scenario with real slab traffic it must not corrupt data, must still
// redistribute identically much work, and must not stall longer than the
// schedule-order drain. (The ≥20% stall-reduction claim on a skewed
// redistribution lives in the exp harness, where the network is slow enough
// to matter; here we assert the invariants.)
func TestRedistOverlapReducesStall(t *testing.T) {
	const n, cycles = 64, 25
	stallOf := func(res map[int]*miniResult) (total int64) {
		for _, r := range res {
			for _, ev := range r.events {
				if ev.Kind == EvRedistEnd {
					total += int64(ev.Stall)
				}
			}
		}
		return
	}
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.RedistMode = RedistPipelined
	pip := runMini(t, cpAtCycle(cluster.Uniform(4), 1, 3), cfg, n, cycles, false)
	cfg.RedistMode = RedistOverlap
	ovl := runMini(t, cpAtCycle(cluster.Uniform(4), 1, 3), cfg, n, cycles, false)
	checkValuesAndCoverage(t, ovl, n)
	if pip[0].redists != ovl[0].redists {
		t.Fatalf("redist counts differ: %d vs %d", pip[0].redists, ovl[0].redists)
	}
	if s, p := stallOf(ovl), stallOf(pip); s > p {
		t.Fatalf("arrival-order commit stalled longer (%d) than schedule order (%d)", s, p)
	}
}
