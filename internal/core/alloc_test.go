package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/mpi"
)

// With a nil telemetry sink the runtime promises that instrumentation costs
// nothing: the cycle bracket (BeginCycle/EndCycle with adaptation off) and
// every emit helper must perform zero heap allocations. This pins the
// "pre-size record slices only when a sink is attached" discipline — a
// regression here means telemetry started taxing un-instrumented runs.
func TestNilSinkHotPathsAllocFree(t *testing.T) {
	err := mpi.Run(cluster.New(cluster.Uniform(1)), func(c *mpi.Comm) error {
		cfg := DefaultConfig()
		cfg.Adapt = false // isolate the cycle bracket from the decision path
		rt := New(c, cfg)
		rt.RegisterDense("X", 64, 4)
		ph := rt.InitPhase(64)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()

		// Warm up once so lazy initialisation doesn't count.
		rt.BeginCycle()
		rt.EndCycle()

		if n := testing.AllocsPerRun(200, func() {
			rt.BeginCycle()
			rt.EndCycle()
		}); n != 0 {
			t.Errorf("nil-sink cycle bracket allocated %v times per cycle, want 0", n)
		}
		if n := testing.AllocsPerRun(200, func() {
			rt.beginCycleTelemetry()
			rt.endCycleTelemetry()
			rt.emitMembership("drop")
		}); n != 0 {
			t.Errorf("nil-sink emit helpers allocated %v times per call, want 0", n)
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
