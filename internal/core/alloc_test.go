package core

import (
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/mpi"
)

// With a nil telemetry sink the runtime promises that instrumentation costs
// nothing: the cycle bracket (BeginCycle/EndCycle with adaptation off) and
// every emit helper must perform zero heap allocations. This pins the
// "pre-size record slices only when a sink is attached" discipline — a
// regression here means telemetry started taxing un-instrumented runs.
func TestNilSinkHotPathsAllocFree(t *testing.T) {
	err := mpi.Run(cluster.New(cluster.Uniform(1)), func(c *mpi.Comm) error {
		cfg := DefaultConfig()
		cfg.Adapt = false // isolate the cycle bracket from the decision path
		rt := New(c, cfg)
		rt.RegisterDense("X", 64, 4)
		ph := rt.InitPhase(64)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()

		// Warm up once so lazy initialisation doesn't count.
		rt.BeginCycle()
		rt.EndCycle()

		if n := testing.AllocsPerRun(200, func() {
			rt.BeginCycle()
			rt.EndCycle()
		}); n != 0 {
			t.Errorf("nil-sink cycle bracket allocated %v times per cycle, want 0", n)
		}
		if n := testing.AllocsPerRun(200, func() {
			rt.beginCycleTelemetry()
			rt.endCycleTelemetry()
			rt.emitMembership("drop")
		}); n != 0 {
			t.Errorf("nil-sink emit helpers allocated %v times per call, want 0", n)
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeLoadsAllocFree pins the load-exchange fast path: with no
// removed-node sidecar in flight, the per-cycle allgather of load readings
// rides the pooled float64 collective and must not allocate in steady state.
// The single-member case is exact (AllocsPerRun); the multi-rank case is
// checked loosely below because concurrent rank goroutines share the heap.
func TestExchangeLoadsAllocFree(t *testing.T) {
	err := mpi.Run(cluster.New(cluster.Uniform(1)), func(c *mpi.Comm) error {
		rt := New(c, DefaultConfig())
		rt.RegisterDense("X", 64, 4)
		ph := rt.InitPhase(64)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()

		if _, _, _, err := rt.exchangeLoads(); err != nil { // warm the scratch buffers
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, _, _, err := rt.exchangeLoads(); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("steady-state exchangeLoads allocated %v times per cycle, want 0", n)
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeLoadsMultiRankAllocBudget bounds the whole-world allocation
// rate of the steady-state load exchange across four ranks. The pooled
// allgather makes each cycle allocation-free per rank once warm; the budget
// of 2 mallocs per rank-cycle absorbs scheduler noise while still failing
// loudly if the exchange regresses to boxing contributions again.
func TestExchangeLoadsMultiRankAllocBudget(t *testing.T) {
	const cycles = 200
	var mallocs uint64
	err := mpi.Run(cluster.New(cluster.Uniform(4)), func(c *mpi.Comm) error {
		rt := New(c, DefaultConfig())
		rt.RegisterDense("X", 256, 4)
		ph := rt.InitPhase(256)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()

		for i := 0; i < 3; i++ { // warm pools on every rank
			if _, _, _, err := rt.exchangeLoads(); err != nil {
				t.Fatal(err)
			}
		}
		var before, after runtime.MemStats
		if c.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		c.Barrier(c.World().AllGroup())
		for i := 0; i < cycles; i++ {
			if _, _, _, err := rt.exchangeLoads(); err != nil {
				t.Fatal(err)
			}
		}
		c.Barrier(c.World().AllGroup())
		if c.Rank() == 0 {
			runtime.ReadMemStats(&after)
			mallocs = after.Mallocs - before.Mallocs
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if budget := uint64(2 * 4 * cycles); mallocs > budget {
		t.Errorf("4-rank load exchange allocated %d times over %d cycles, budget %d", mallocs, cycles, budget)
	}
}
