package core

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/fault"
	"repro/internal/mpi"
)

// runElastic executes the runMini workload on a cluster that may have
// arrival capacity, with an optional explicit Resize request at iteration
// resizeAt. Joiners spawned mid-run enter the loop at the world's cycle and
// skip the initial fill (their rows arrive in the admission
// redistribution), exactly as a real application must.
func runElastic(t *testing.T, spec cluster.Spec, cfg Config, n, cycles, resizeAt, resizeTo int) map[int]*miniResult {
	t.Helper()
	var mu sync.Mutex
	results := map[int]*miniResult{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 4)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		start := 0
		if rt.Joined() {
			start = rt.Cycle()
		} else {
			x.Fill(func(g, j int) float64 { return float64(g * 10) })
		}

		res := &miniResult{rank: c.Rank()}
		for tstep := start; tstep < cycles; tstep++ {
			if resizeTo > 0 && tstep == resizeAt && rt.Participating() {
				rt.Resize(resizeTo)
			}
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := x.Row(g)
					for j := range row {
						row[j]++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()

		res.redists = rt.Redistributions()
		res.removed = !rt.Participating()
		res.events = rt.Events()
		res.final = c.Now()
		res.relRank = rt.RelRank()
		if rt.Participating() {
			res.counts = rt.Dist().Counts()
			lo, hi := ph.Bounds()
			res.ownedOK = true
			res.ownedCnt = hi - lo
			for g := lo; g < hi; g++ {
				for j := 0; j < 4; j++ {
					if x.Row(g)[j] != float64(g*10+cycles) {
						res.ownedOK = false
					}
				}
			}
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func countResizeEvents(res *miniResult) int {
	n := 0
	for _, ev := range res.events {
		if ev.Kind == EvResize {
			n++
		}
	}
	return n
}

// TestResizeGrowOnArrival: two capacity nodes arrive at cycle 10 and must
// be admitted automatically — the final distribution spans six ranks, the
// joiners own rows, and every row carries the value an uninterrupted run
// produces (redistribution handed the joiners up-to-date data).
func TestResizeGrowOnArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cluster.Uniform(4).WithArrival(1.0, 10).WithArrival(1.0, 10)
	results := runElastic(t, spec, cfg, 64, 30, 0, 0)
	checkValuesAndCoverage(t, results, 64)
	if len(results) != 6 {
		t.Fatalf("%d ranks reported, want 6 (4 seed + 2 joiners)", len(results))
	}
	for _, r := range []int{4, 5} {
		res := results[r]
		if res == nil || res.removed {
			t.Fatalf("joiner %d missing or removed: %+v", r, res)
		}
		if res.ownedCnt == 0 {
			t.Fatalf("joiner %d owns no rows", r)
		}
		if countResizeEvents(res) == 0 {
			t.Fatalf("joiner %d recorded no %v event", r, EvResize)
		}
	}
	for r, res := range results {
		if len(res.counts) != 6 {
			t.Fatalf("rank %d final distribution %v does not span 6 ranks", r, res.counts)
		}
	}
	if countResizeEvents(results[0]) == 0 {
		t.Fatalf("seed rank recorded no %v event", EvResize)
	}
}

// TestResizeExplicitGrowClaimsReserves: reserve capacity (AtCycle < 0) is
// claimed only by an explicit Resize call, which every active rank issues
// at the same iteration.
func TestResizeExplicitGrowClaimsReserves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cluster.Uniform(4).WithArrival(1.0, -1).WithArrival(1.0, -1)
	// Without a Resize call, reserves stay unclaimed.
	idle := runElastic(t, spec, cfg, 64, 20, 0, 0)
	checkValuesAndCoverage(t, idle, 64)
	if len(idle) != 4 {
		t.Fatalf("reserves were spawned without a Resize call: %d ranks reported", len(idle))
	}
	// With one, both reserves join.
	results := runElastic(t, spec, cfg, 64, 30, 10, 6)
	checkValuesAndCoverage(t, results, 64)
	if len(results) != 6 {
		t.Fatalf("%d ranks reported after Resize(6), want 6", len(results))
	}
	for r, res := range results {
		if res.removed {
			t.Fatalf("rank %d removed after a grow", r)
		}
		if len(res.counts) != 6 {
			t.Fatalf("rank %d final distribution %v does not span 6 ranks", r, res.counts)
		}
	}
}

// TestResizeShrinkReleasesRanks: Resize(4) on a 6-rank world drops the two
// highest ranks. With AllowRejoin on, the released (unloaded!) ranks must
// NOT flap back in — explicit shrinkage is recorded in resizedOut and
// excluded from automatic rejoin.
func TestResizeShrinkReleasesRanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.AllowRejoin = true
	results := runElastic(t, cluster.Uniform(6), cfg, 64, 40, 10, 4)
	checkValuesAndCoverage(t, results, 64)
	for _, r := range []int{4, 5} {
		if !results[r].removed {
			t.Fatalf("rank %d not removed by Resize(4) (or flapped back in via rejoin)", r)
		}
	}
	for _, r := range []int{0, 1, 2, 3} {
		res := results[r]
		if res.removed {
			t.Fatalf("rank %d removed by Resize(4), want kept", r)
		}
		if len(res.counts) != 4 {
			t.Fatalf("rank %d final distribution %v does not span 4 ranks", r, res.counts)
		}
	}
	if countResizeEvents(results[0]) == 0 {
		t.Fatalf("no %v event recorded for the shrink", EvResize)
	}
}

// TestResizeDeterministic: repeated grow runs produce identical finish
// times and event streams on every rank, joiners included.
func TestResizeDeterministic(t *testing.T) {
	runOnce := func() map[int]*miniResult {
		cfg := DefaultConfig()
		cfg.Drop = DropNever
		spec := cluster.Uniform(4).WithArrival(1.0, 10).WithArrival(1.0, 10)
		return runElastic(t, spec, cfg, 64, 30, 0, 0)
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("rank sets differ: %d vs %d", len(a), len(b))
	}
	for r, res := range a {
		other := b[r]
		if res.final != other.final {
			t.Fatalf("rank %d finish time differs across runs: %v vs %v", r, res.final, other.final)
		}
		if len(res.events) != len(other.events) {
			t.Fatalf("rank %d event counts differ: %d vs %d", r, len(res.events), len(other.events))
		}
		for i := range res.events {
			if res.events[i].Time != other.events[i].Time || res.events[i].Kind != other.events[i].Kind {
				t.Fatalf("rank %d event %d differs: %+v vs %+v", r, i, res.events[i], other.events[i])
			}
		}
	}
}

// TestResizeGrowWithPacer: growth under a WorldGate — the joiners must be
// folded into the gate (via Grow) without wedging the wave they join, and
// the paced run must finish with the same membership as an unpaced one.
func TestResizeGrowWithPacer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cluster.Uniform(4).WithArrival(1.0, 8)
	gate := NewWorldGate(4)
	cfg.Pacer = gate
	cl := cluster.New(spec)
	cl.SetRankExitHook(gate.RankExit)

	var mu sync.Mutex
	finished := map[int]bool{}
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(cl, func(c *mpi.Comm) error {
			rt := New(c, cfg)
			x := rt.RegisterDense("X", 48, 2)
			ph := rt.InitPhase(48)
			ph.AddAccess("X", drsd.ReadWrite, 1, 0)
			rt.Commit()
			start := 0
			if rt.Joined() {
				start = rt.Cycle()
			} else {
				x.Fill(func(g, j int) float64 { return float64(g) })
			}
			for tstep := start; tstep < 20; tstep++ {
				if rt.BeginCycle() {
					lo, hi := ph.Bounds()
					for g := lo; g < hi; g++ {
						rt.ComputeIter(g, iterCost)
					}
				}
				rt.EndCycle()
			}
			rt.Finalize()
			mu.Lock()
			finished[c.Rank()] = rt.Participating()
			mu.Unlock()
			return nil
		})
	}()
	// Drive the world to completion one cycle-wave at a time.
	for gate.HasPendingEvents() {
		gate.ProcessNextEvent()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(finished) != 5 {
		t.Fatalf("%d ranks finished under pacing, want 5", len(finished))
	}
	for r, part := range finished {
		if !part {
			t.Fatalf("rank %d not participating at the end", r)
		}
	}
}

// TestCrashWhileRemovedPrunesSameCycle is the dead-removed-node satellite:
// a removed node that crashes mid-poll must leave rt.removed on every
// active rank in the detection cycle itself, its mailbox must not keep
// accumulating protocol traffic, and a surviving removed node must still be
// able to rejoin later.
func TestCrashWhileRemovedPrunesSameCycle(t *testing.T) {
	results := runCrashWhileRemoved(t)
	// Rank 1 (crashed while removed) never reports.
	if _, ok := results[1]; ok {
		t.Fatal("crashed removed rank reported a result")
	}
	// Every survivor pruned it: final distributions span exactly the three
	// remaining ranks (0, 2 rejoined, 3).
	for r, res := range results {
		if res.removed {
			t.Fatalf("rank %d still removed at the end", r)
		}
		if len(res.counts) != 3 {
			t.Fatalf("rank %d final distribution %v, want 3 members", r, res.counts)
		}
	}
	// The prune happened in the cycle the crash was detected, on every
	// rank: all EvFailure events carry the same cycle.
	failCycle := -1
	for r, res := range results {
		for _, ev := range res.events {
			if ev.Kind == EvFailure {
				if failCycle == -1 {
					failCycle = ev.Cycle
				} else if ev.Cycle != failCycle {
					t.Fatalf("rank %d pruned the corpse at cycle %d, others at %d", r, ev.Cycle, failCycle)
				}
			}
		}
	}
	if failCycle == -1 {
		t.Fatal("no EvFailure recorded for the crashed removed node")
	}
	// The surviving removed node rejoined after the corpse was pruned.
	sawRejoin := false
	for _, ev := range results[2].events {
		if ev.Kind == EvRejoin {
			sawRejoin = true
		}
	}
	if !sawRejoin {
		t.Fatal("surviving removed node did not rejoin after the corpse was pruned")
	}
}

// runCrashWhileRemoved: 4 ranks; CPs land on ranks 1 and 2 at cycle 3 (both
// dropped), rank 1 crashes at cycle 12 while removed, rank 2's CP leaves at
// cycle 20 so it rejoins.
func runCrashWhileRemoved(t *testing.T) map[int]*miniResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	cfg.AllowRejoin = true
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 3, +1)).
		With(cluster.CycleEvent(2, 3, +1)).
		With(cluster.CycleEvent(2, 20, -1))
	spec.Faults = append(spec.Faults, fault.CrashAtCycle(1, 12))
	return runMini(t, spec, cfg, 64, 45, false)
}

// TestCrashWhileRemovedDeterministic: the crash-while-removed scenario
// produces byte-identical traces across runs — the protocol's send charges
// must not depend on whether the corpse's crash goroutine has fired yet
// (the reason dead-guards key on the absorbed dead set, not mpi.Alive).
func TestCrashWhileRemovedDeterministic(t *testing.T) {
	a, b := runCrashWhileRemoved(t), runCrashWhileRemoved(t)
	if len(a) != len(b) {
		t.Fatalf("survivor sets differ: %d vs %d", len(a), len(b))
	}
	for r, res := range a {
		other := b[r]
		if res.final != other.final {
			t.Fatalf("rank %d finish time differs across runs: %v vs %v", r, res.final, other.final)
		}
		if len(res.events) != len(other.events) {
			t.Fatalf("rank %d event counts differ: %d vs %d", r, len(res.events), len(other.events))
		}
		for i := range res.events {
			if res.events[i].Time != other.events[i].Time || res.events[i].Kind != other.events[i].Kind {
				t.Fatalf("rank %d event %d differs: %+v vs %+v", r, i, res.events[i], other.events[i])
			}
		}
	}
}

// runReshape is runElastic with an arbitrary sequence of Resize steps:
// steps[cycle] = target. Every active rank issues the same requests at the
// same iterations, as the SPMD discipline requires.
func runReshape(t *testing.T, spec cluster.Spec, cfg Config, n, cycles int, steps map[int]int) map[int]*miniResult {
	t.Helper()
	var mu sync.Mutex
	results := map[int]*miniResult{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 4)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		start := 0
		if rt.Joined() {
			start = rt.Cycle()
		} else {
			x.Fill(func(g, j int) float64 { return float64(g * 10) })
		}

		res := &miniResult{rank: c.Rank()}
		for tstep := start; tstep < cycles; tstep++ {
			if to, ok := steps[tstep]; ok && rt.Participating() {
				rt.Resize(to)
			}
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := x.Row(g)
					for j := range row {
						row[j]++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finish()
		rt.Finalize()

		res.redists = rt.Redistributions()
		res.removed = !rt.Participating()
		res.events = rt.Events()
		res.final = c.Now()
		res.relRank = rt.RelRank()
		if rt.Participating() {
			res.counts = rt.Dist().Counts()
			lo, hi := ph.Bounds()
			res.ownedOK = true
			res.ownedCnt = hi - lo
			for g := lo; g < hi; g++ {
				for j := 0; j < 4; j++ {
					if x.Row(g)[j] != float64(g*10+cycles) {
						res.ownedOK = false
					}
				}
			}
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// reshapeCfgs are the configurations the multi-step reshape suites sweep:
// the default message-passing paths and the full one-sided configuration
// (RMA redistribution with joiner fetch, PSCW replica refresh).
func reshapeCfgs() map[string]Config {
	base := DefaultConfig()
	base.Drop = DropNever
	rma := DefaultConfig()
	rma.Drop = DropNever
	rma.RedistMode = RedistRMA
	rma.Replicate = true
	rma.ReplicaEvery = 1
	rma.ReplicaRMA = true
	return map[string]Config{"default": base, "rma-pscw": rma}
}

// TestReshapeGrowThenShrink runs both reshape directions in one run: the
// world grows 4→6 by claiming reserves, then shrinks back 6→4. Values must
// stay bit-exact against a dedicated run through both transitions — the
// diff schedule moves rows out to the joiners and back again.
func TestReshapeGrowThenShrink(t *testing.T) {
	for name, cfg := range reshapeCfgs() {
		spec := cluster.Uniform(4).WithArrival(1.0, -1).WithArrival(1.0, -1)
		results := runReshape(t, spec, cfg, 64, 30, map[int]int{8: 6, 18: 4})
		checkValuesAndCoverage(t, results, 64)
		if len(results) != 6 {
			t.Fatalf("%s: %d ranks reported, want 6 (4 seed + 2 reserves)", name, len(results))
		}
		for _, r := range []int{4, 5} {
			if !results[r].removed {
				t.Fatalf("%s: reserve %d still active after the shrink", name, r)
			}
		}
		for _, r := range []int{0, 1, 2, 3} {
			res := results[r]
			if res.removed {
				t.Fatalf("%s: seed rank %d removed", name, r)
			}
			if len(res.counts) != 4 {
				t.Fatalf("%s: rank %d final distribution %v does not span 4 ranks", name, r, res.counts)
			}
			if res.redists < 2 {
				t.Fatalf("%s: rank %d saw %d redistributions, want ≥ 2", name, r, res.redists)
			}
		}
	}
}

// TestReshapeShrinkThenGrow is the reverse order in one run: 4→3, then
// 3→5 by claiming reserves — the grow after a shrink drives the
// joiner-fetch path while the distribution still records the shrink.
func TestReshapeShrinkThenGrow(t *testing.T) {
	for name, cfg := range reshapeCfgs() {
		spec := cluster.Uniform(4).WithArrival(1.0, -1).WithArrival(1.0, -1)
		results := runReshape(t, spec, cfg, 64, 30, map[int]int{8: 3, 18: 5})
		checkValuesAndCoverage(t, results, 64)
		if len(results) != 6 {
			t.Fatalf("%s: %d ranks reported, want 6", name, len(results))
		}
		if !results[3].removed {
			t.Fatalf("%s: rank 3 still active after Resize(3)", name)
		}
		for _, r := range []int{4, 5} {
			res := results[r]
			if res == nil || res.removed {
				t.Fatalf("%s: reserve %d missing or removed after Resize(5)", name, r)
			}
			if res.ownedCnt == 0 {
				t.Fatalf("%s: joiner %d owns no rows", name, r)
			}
		}
		for _, r := range []int{0, 1, 2} {
			if len(results[r].counts) != 5 {
				t.Fatalf("%s: rank %d final distribution %v does not span 5 ranks", name, r, results[r].counts)
			}
		}
	}
}

// TestReshapeDeterministic: the one-sided multi-step reshape must be
// schedule-independent — identical finish times and event streams across
// repeated runs, joiners included.
func TestReshapeDeterministic(t *testing.T) {
	cfg := reshapeCfgs()["rma-pscw"]
	run := func() map[int]*miniResult {
		spec := cluster.Uniform(4).WithArrival(1.0, -1).WithArrival(1.0, -1)
		return runReshape(t, spec, cfg, 64, 30, map[int]int{8: 6, 18: 4})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("rank sets differ: %d vs %d", len(a), len(b))
	}
	for r, res := range a {
		other := b[r]
		if res.final != other.final {
			t.Fatalf("rank %d finish time differs across runs: %v vs %v", r, res.final, other.final)
		}
		if len(res.events) != len(other.events) {
			t.Fatalf("rank %d event counts differ: %d vs %d", r, len(res.events), len(other.events))
		}
	}
}
