package core

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// rmaResult captures one rank's final state for the one-sided suites.
type rmaResult struct {
	rank      int
	redists   int
	removed   bool
	counts    []int
	events    []Event
	ownedOK   bool
	ownedCnt  int
	final     vclock.Time
	stall     vclock.Duration
	lost      int
	recovered int
	adaptPut  int
	adaptSend int
}

// runRMAMini is runMini with the hooks the one-sided suites need: it
// surfaces the World (for LeakedOps), settles the final replica epoch via
// Finish, and records each rank's cumulative refresh stall. rowLen is a
// parameter so the stall suites can make the replica slabs large enough
// for wire time to matter.
func runRMAMini(t *testing.T, spec cluster.Spec, cfg Config, n, rowLen, cycles int) (map[int]*rmaResult, int) {
	t.Helper()
	var mu sync.Mutex
	results := map[int]*rmaResult{}
	w := mpi.NewWorld(cluster.New(spec))
	err := w.Run(func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, rowLen)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return float64(g * 10) })
		for tstep := 0; tstep < cycles; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := x.Row(g)
					for j := range row {
						row[j]++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finish()
		rt.Finalize()
		res := &rmaResult{
			rank:      c.Rank(),
			redists:   rt.Redistributions(),
			removed:   !rt.Participating(),
			events:    rt.Events(),
			final:     c.Now(),
			stall:     rt.ReplicaStall(),
			recovered: rt.RecoveredRows(),
		}
		res.adaptPut, res.adaptSend = rt.AdaptiveRefreshModes()
		for _, lr := range rt.LostRows() {
			res.lost += lr.Hi - lr.Lo
		}
		if rt.Participating() {
			res.counts = rt.Dist().Counts()
			lo, hi := ph.Bounds()
			res.ownedOK = true
			res.ownedCnt = hi - lo
			for g := lo; g < hi; g++ {
				for j := 0; j < rowLen; j++ {
					if x.Row(g)[j] != float64(g*10+cycles) {
						res.ownedOK = false
					}
				}
			}
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, w.LeakedOps()
}

// checkRMAValues asserts the surviving ranks jointly cover all n rows with
// the exact fault-free values (every row ends at g*10+cycles bit-for-bit).
func checkRMAValues(t *testing.T, results map[int]*rmaResult, n int) {
	t.Helper()
	total := 0
	for r, res := range results {
		if res.removed {
			continue
		}
		if !res.ownedOK {
			t.Errorf("rank %d holds wrong values", r)
		}
		total += res.ownedCnt
	}
	if total != n {
		t.Errorf("owned rows cover %d of %d", total, n)
	}
}

// replicaRMACfg is the standard per-cycle one-sided replication config.
func replicaRMACfg() Config {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.Replicate = true
	cfg.ReplicaEvery = 1
	cfg.ReplicaRMA = true
	return cfg
}

// TestReplicaRMACrashRecoveryBitExact is the acceptance contract: with
// ReplicaEvery=1 the one-sided refresh must reconstruct a crashed rank's
// rows bit-exactly — every surviving row finishes at the value an
// uninterrupted run produces. The deferred epoch makes the adoption path
// load-bearing here: at the crash the *committed* replica is one refresh
// stale, and only adopting the dead predecessor's still-pending deposit
// (proved complete by PendingFrom) restores the same end-of-previous-cycle
// snapshot the paired path ships eagerly.
func TestReplicaRMACrashRecoveryBitExact(t *testing.T) {
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 5)}
	results, leaked := runRMAMini(t, spec, replicaRMACfg(), 48, 4, 20)
	if len(results) != 2 {
		t.Fatalf("%d ranks reported, want the 2 survivors", len(results))
	}
	checkRMAValues(t, results, 48)
	recovered := 0
	for r, res := range results {
		if res.lost != 0 {
			t.Errorf("rank %d lost %d rows despite one-sided replication", r, res.lost)
		}
		recovered += res.recovered
	}
	if recovered == 0 {
		t.Fatal("no rows recovered from replica windows")
	}
	if leaked != 0 {
		t.Fatalf("%d window deposits leaked on teardown", leaked)
	}
}

// TestReplicaRMACrashMatrix sweeps victims and crash cycles through the
// one-sided refresh: every combination must recover without losing rows,
// finish with exact values, and settle or discard every deposit (zero
// leaks at teardown). Run under -race this doubles as the concurrency
// suite for the fence/adoption protocol.
func TestReplicaRMACrashMatrix(t *testing.T) {
	for _, victim := range []int{1, 2} {
		for _, cycle := range []int{1, 6, 13} {
			spec := cluster.Uniform(3)
			spec.Faults = []fault.Fault{fault.CrashAtCycle(victim, cycle)}
			results, leaked := runRMAMini(t, spec, replicaRMACfg(), 48, 4, 20)
			if len(results) != 2 {
				t.Fatalf("victim %d cycle %d: %d ranks reported", victim, cycle, len(results))
			}
			checkRMAValues(t, results, 48)
			for r, res := range results {
				if res.lost != 0 {
					t.Errorf("victim %d cycle %d: rank %d lost %d rows", victim, cycle, r, res.lost)
				}
			}
			if leaked != 0 {
				t.Errorf("victim %d cycle %d: %d deposits leaked", victim, cycle, leaked)
			}
		}
	}
}

// TestReplicaRMAFaultFreeLeakFree: the steady-state open/close cycle plus
// the Finish settlement must leave no deposit pending at world teardown —
// the window-layer analogue of the engine's leaked-ops contract.
func TestReplicaRMAFaultFreeLeakFree(t *testing.T) {
	results, leaked := runRMAMini(t, cluster.Uniform(4), replicaRMACfg(), 64, 4, 12)
	checkRMAValues(t, results, 64)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked after a fault-free run", leaked)
	}
}

// TestReplicaRMACrashDeterminism: the fence-failure adoption protocol must
// make recovery independent of physical scheduling — two runs of the same
// crash scenario produce identical finish times and event streams.
func TestReplicaRMACrashDeterminism(t *testing.T) {
	run := func() map[int]*rmaResult {
		spec := cluster.Uniform(3)
		spec.Faults = []fault.Fault{fault.CrashAtCycle(1, 5)}
		results, _ := runRMAMini(t, spec, replicaRMACfg(), 48, 4, 15)
		return results
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("survivor sets differ: %d vs %d", len(a), len(b))
	}
	for r, ra := range a {
		rb := b[r]
		if rb == nil || ra.final != rb.final {
			t.Errorf("rank %d finish differs across runs: %v vs %v", r, ra.final, rb)
			continue
		}
		if len(ra.events) != len(rb.events) {
			t.Errorf("rank %d event count differs: %d vs %d", r, len(ra.events), len(rb.events))
		}
	}
}

// TestReplicaRefreshRMAStallReduction pins the perf claim at the runtime
// level: on a per-cycle refresh with slabs large enough for wire time to
// matter, deferring the settlement a full compute cycle must cut the
// holder-side stall by well over the 30%% the benchmark gate requires.
func TestReplicaRefreshRMAStallReduction(t *testing.T) {
	const n, rowLen, cycles = 64, 2048, 12
	p2p := replicaRMACfg()
	p2p.ReplicaRMA = false
	p2pRes, _ := runRMAMini(t, cluster.Uniform(4), p2p, n, rowLen, cycles)
	rmaRes, leaked := runRMAMini(t, cluster.Uniform(4), replicaRMACfg(), n, rowLen, cycles)
	checkRMAValues(t, p2pRes, n)
	checkRMAValues(t, rmaRes, n)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
	var sp, sr vclock.Duration
	for r := range p2pRes {
		sp += p2pRes[r].stall
		sr += rmaRes[r].stall
	}
	if sp == 0 {
		t.Fatal("paired refresh shows zero stall; scenario is vacuous")
	}
	if sr > sp*7/10 {
		t.Fatalf("one-sided refresh stall %v not ≤ 70%% of paired %v", sr, sp)
	}
}

// redistRMACfg enables the one-sided redistribution commit alongside
// one-sided replication (the richest window-interleaving configuration).
func redistRMACfg() Config {
	cfg := replicaRMACfg()
	cfg.RedistMode = RedistRMA
	return cfg
}

// TestRedistRMAEquivalence: the direct-slab commit must move the same rows
// to the same owners with the same values as the blocking drain — only the
// virtual cost may differ. Both runs end with every row at its exact
// fault-free value and identical distributions.
func TestRedistRMAEquivalence(t *testing.T) {
	const n, cycles = 64, 25
	scenario := func() cluster.Spec { return cpAtCycle(cluster.Uniform(4), 1, 3) }

	ref := DefaultConfig()
	ref.Drop = DropNever
	refRes := runMini(t, scenario(), ref, n, cycles, false)
	checkValuesAndCoverage(t, refRes, n)
	if refRes[0].redists == 0 {
		t.Fatal("scenario produced no redistribution; suite is vacuous")
	}

	rma := DefaultConfig()
	rma.Drop = DropNever
	rma.RedistMode = RedistRMA
	rmaRes, leaked := runRMAMini(t, scenario(), rma, n, 4, cycles)
	checkRMAValues(t, rmaRes, n)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
	for r, res := range rmaRes {
		if res.redists != refRes[r].redists {
			t.Errorf("rank %d: %d redistributions via RMA vs %d blocking", r, res.redists, refRes[r].redists)
		}
		for i := range res.counts {
			if res.counts[i] != refRes[r].counts[i] {
				t.Fatalf("rank %d distribution diverged: %v vs %v", r, res.counts, refRes[r].counts)
			}
		}
	}

	// The one-sided commit itself must be deterministic across runs.
	again, _ := runRMAMini(t, scenario(), rma, n, 4, cycles)
	for r, res := range rmaRes {
		if again[r].final != res.final {
			t.Errorf("rank %d finish differs across identical RMA runs: %v vs %v", r, res.final, again[r].final)
		}
	}
}

// TestRedistRMAWithCrash drives the combined configuration — one-sided
// refresh, one-sided redistribution, a load-triggered redistribution, and
// a later crash — through recovery: values stay exact (replication covers
// the dead rank), every row stays owned, and no deposit leaks even though
// both window families were rebuilt mid-run.
func TestRedistRMAWithCrash(t *testing.T) {
	spec := cpAtCycle(cluster.Uniform(4), 1, 3)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 9)}
	results, leaked := runRMAMini(t, spec, redistRMACfg(), 64, 4, 25)
	if len(results) != 3 {
		t.Fatalf("%d ranks reported, want the 3 survivors", len(results))
	}
	checkRMAValues(t, results, 64)
	for r, res := range results {
		if res.lost != 0 {
			t.Errorf("rank %d lost %d rows", r, res.lost)
		}
		if res.redists == 0 {
			t.Errorf("rank %d saw no redistribution", r)
		}
	}
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
}
