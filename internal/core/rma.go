package core

import (
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// One-sided consumers of the mpi window layer.
//
// Replica refresh (Config.ReplicaRMA): the paired-send/recv refresh makes
// every holder stall in a blocking receive for its predecessor's slab. The
// one-sided refresh defers that settlement a full cycle: at each refresh
// point a rank first *closes* the epoch opened at the previous refresh —
// by then an entire cycle of computation has hidden the wire, so the fence
// settles with (near) zero stall — and then opens the next epoch by
// exposing a staging buffer and Putting its own rows into its successor's
// window. The committed replica (replica.data) is only overwritten when an
// epoch settles, so a predecessor that dies mid-cycle without depositing
// leaves the previous committed state intact, exactly like the paired
// path's keep-the-stale-replica behaviour.
//
// Epoch/visibility discipline:
//
//   - open: attach stage, fence, Put. The opening fence is the write
//     barrier that orders every origin's next-epoch Put after every
//     owner's close-time promotion of the previous stage — without it the
//     promotion copy would race a fast predecessor's next Put.
//   - close: fence (settles this rank's deposits), then promote stage to
//     the committed replica. Promotion is host-only bookkeeping: the
//     modelled deposit already landed by one-sided DMA, so no virtual
//     charge is made (the paired path's receive CPU and commit touches are
//     precisely the cost this mode saves).
//   - failure: the fence returns *mpi.RankFailedError and settles nothing.
//     Only a *dead* predecessor's deposit may be adopted (its goroutine is
//     gone, so the stage cannot be concurrently written): PendingFrom
//     answers deterministically whether its Put landed in full — a crash
//     fires at operation entry, so a Put either ran to completion or never
//     started. A live predecessor's deposit is abandoned (the replica
//     keeps its previous commit), and the windows are discarded and
//     rebuilt on the post-recovery group.
//
// Redistribution (Config.RedistMode == RedistRMA): see rmaRedistArray.

// repRange is the row range an open replica epoch will commit.
type repRange struct {
	lo, hi int
}

// ReplicaStall reports the cumulative receive-side stall this rank's
// replica refreshes have cost it (paired receives, or fence settlements
// under ReplicaRMA). The RMA-vs-p2p study and the refresh benchmarks
// compare it across modes.
func (rt *Runtime) ReplicaStall() vclock.Duration { return rt.replicaStall }

// Finish settles any still-open replica epoch. Applications (and the apps
// harness) call it once per rank after the last cycle; without it the
// final epoch's deposits would be left pending on world teardown. Safe to
// call multiple times and when replication or RMA mode is off.
func (rt *Runtime) Finish() {
	if rt.cfg.ReplicaRMA {
		rt.closeReplicaEpoch()
	}
}

// refreshReplicasNow runs one replica refresh in the configured mode,
// accounting the receive-side stall it cost.
func (rt *Runtime) refreshReplicasNow() {
	if rt.cfg.ReplicaRMA {
		rt.closeReplicaEpoch()
		rt.openReplicaEpoch()
		return
	}
	stall0 := rt.comm.RecvStall
	rt.refreshReplicas()
	rt.replicaStall += rt.comm.RecvStall - stall0
}

// openReplicaEpoch exposes this rank's staging buffers and Puts its owned
// rows into its ring successor's windows, leaving the epoch open for the
// next refresh point to close. Every rank of the current distribution
// calls it collectively.
func (rt *Runtime) openReplicaEpoch() {
	if !rt.cfg.Replicate || rt.isOut {
		return
	}
	ranks := rt.dist.Ranks()
	if len(ranks) < 2 {
		rt.replicas = nil
		return
	}
	me := rt.comm.Rank()
	self := -1
	for i, r := range ranks {
		if r == me {
			self = i
		}
	}
	if self < 0 {
		return
	}
	stall0 := rt.comm.RecvStall
	if !equalInts(rt.repRanks, ranks) {
		// Membership changed (or first open): discard whatever is pending
		// on the abandoned windows, then register fresh ones on the new
		// group. Registration order is rt.order on every member, so the
		// k-th WinCreate of each member meets on the same window.
		rt.discardReplicaWindows()
		g := rt.comm.World().NewGroup(ranks)
		rt.repWins = make(map[string]*mpi.Win, len(rt.order))
		for _, name := range rt.order {
			if rt.arrays[name].dense == nil {
				continue
			}
			rt.repWins[name] = rt.comm.WinCreate(g, nil)
		}
		rt.repRanks = append(rt.repRanks[:0], ranks...)
	}
	rt.repPrev = ranks[(self-1+len(ranks))%len(ranks)]
	rt.repNext = ranks[(self+1)%len(ranks)]
	if rt.replicas == nil {
		rt.replicas = make(map[string]*replica)
	}
	if rt.repPend == nil {
		rt.repPend = make(map[string]repRange)
	}
	plo, phi := rt.dist.RangeOf(rt.repPrev)
	lo, hi := rt.dist.RangeOf(me)
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		win := rt.repWins[name]
		rep := rt.replicas[name]
		if rep == nil {
			rep = &replica{}
			rt.replicas[name] = rep
		}
		n := (phi - plo) * a.dense.RowLen
		if cap(rep.stage) < n {
			rep.stage = make([]float64, n)
		} else {
			rep.stage = rep.stage[:n]
		}
		rt.comm.WinAttach(win, mpi.FlatMem(rep.stage))
		// The opening fence publishes the attach and orders this epoch's
		// remote Puts after every member's close of the previous one.
		if err := rt.comm.FenceErr(win); err != nil {
			// A member died before the epoch could open. Leave it closed;
			// recovery at the next cycle boundary rebuilds the windows.
			rt.absorbDead(rt.deadOf(err))
			rt.repRanks = rt.repRanks[:0]
			rt.replicaStall += rt.comm.RecvStall - stall0
			return
		}
		rt.repPend[name] = repRange{lo: plo, hi: phi}
		if hi > lo {
			// Origin-side injection: the same packing touches and Put CPU a
			// paired sender pays — the saving is entirely holder-side.
			slab := getDenseSlab(hi-lo, a.dense.RowLen)
			a.dense.CopyRowsTo(slab.data, lo, hi)
			for g := lo; g < hi; g++ {
				rt.node.ChargeTouch(a.dense.RowBytes())
			}
			rt.comm.Put(win, rt.repNext, 0, slab.data)
			putDenseSlab(slab)
		}
	}
	rt.repOpen = true
	rt.replicaStall += rt.comm.RecvStall - stall0
}

// closeReplicaEpoch settles the replica epoch left open by the last
// refresh point, promoting each staged deposit to the committed replica.
// No-op when no epoch is open. On a failed fence it runs the adoption
// protocol documented at the top of the file.
func (rt *Runtime) closeReplicaEpoch() {
	if !rt.repOpen {
		return
	}
	rt.repOpen = false
	stall0 := rt.comm.RecvStall
	failed := false
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		win := rt.repWins[name]
		rep := rt.replicas[name]
		pend := rt.repPend[name]
		if err := rt.comm.FenceErr(win); err != nil {
			failed = true
			rt.absorbDead(rt.deadOf(err))
			adopt := false
			if !rt.comm.World().Alive(rt.repPrev) {
				want := (pend.hi - pend.lo) * a.dense.RowLen
				elems, ok := rt.comm.PendingFrom(win, rt.repPrev)
				adopt = want == 0 || (ok && elems == want)
			}
			rt.comm.DiscardPending(win)
			if adopt {
				rt.promoteReplica(a, rep, pend)
			}
			continue
		}
		rt.promoteReplica(a, rep, pend)
	}
	if failed {
		// Abandon the windows: the group lost a member, so no further epoch
		// can settle on them. The next open discards any deposit a slow
		// survivor lands in the meantime and rebuilds on the new group.
		rt.repRanks = rt.repRanks[:0]
	}
	rt.replicaStall += rt.comm.RecvStall - stall0
}

// promoteReplica commits one settled stage as the array's replica.
// Host-only bookkeeping: the modelled transfer already landed one-sided,
// so no virtual cost is charged (see the file comment).
func (rt *Runtime) promoteReplica(a *regArray, rep *replica, pend repRange) {
	n := (pend.hi - pend.lo) * a.dense.RowLen
	if cap(rep.data) < n {
		rep.data = make([]float64, n)
	} else {
		rep.data = rep.data[:n]
	}
	copy(rep.data, rep.stage[:n])
	rep.lo, rep.hi = pend.lo, pend.hi
}

// discardReplicaWindows drops every deposit still pending against this
// rank's slots of the current replica windows, releasing them before the
// windows are abandoned for a new group.
func (rt *Runtime) discardReplicaWindows() {
	for _, win := range rt.repWins {
		rt.comm.DiscardPending(win)
	}
}

// --- RedistRMA ------------------------------------------------------------

// denseWinMem exposes a dense array's resident window [wlo,whi) as window
// memory: element offset 0 is row wlo. Rows may be non-contiguous
// (Projection scheme), which is why the window layer takes an interface
// rather than a flat slice. Access is raw — no virtual touches — because
// deposits model one-sided DMA into the exposed rows.
type denseWinMem struct {
	d   *matrix.Dense
	wlo int
}

func (m denseWinMem) WriteAt(off int, src []float64) {
	rl := m.d.RowLen
	g := m.wlo + off/rl
	for len(src) > 0 {
		copy(m.d.Row(g), src[:rl])
		src = src[rl:]
		g++
	}
}

func (m denseWinMem) ReadAt(off int, dst []float64) {
	rl := m.d.RowLen
	g := m.wlo + off/rl
	for len(dst) > 0 {
		copy(dst[:rl], m.d.Row(g))
		dst = dst[rl:]
		g++
	}
}

func (m denseWinMem) Len() int { return (m.d.Hi() - m.d.Lo()) * m.d.RowLen }

// redistWinFor returns the one-sided window redistribution uses for array
// a, creating the per-array windows the first time the active group needs
// them. All active ranks call applyDistribution collectively, so creation
// order (rt.order) is identical on every member.
func (rt *Runtime) redistWinFor(a *regArray) *mpi.Win {
	if rt.redistGroup != rt.group {
		rt.redistGroup = rt.group
		rt.redistWins = make(map[string]*mpi.Win, len(rt.order))
		for _, name := range rt.order {
			if rt.arrays[name].dense == nil {
				continue
			}
			rt.redistWins[name] = rt.comm.WinCreate(rt.group, nil)
		}
	}
	return rt.redistWins[a.name]
}

// rmaRedistArray runs Phase 3 of one dense array's redistribution through
// a one-sided window: the receiver exposes its freshly resized resident
// window (Phase 2 has run), an opening fence publishes the attachments,
// senders Put their packed slabs directly at destination offsets both
// sides compute from the schedule, and the closing fence settles the
// deposits — there is no harvest loop and no commit loop, and the receiver
// pays neither per-message CPU nor commit touches.
//
// Returns (committed, down): committed reports whether the array's
// exchange was fully handled here; down reports that a fence failed and
// the remaining arrays must fall back to the blocking drain. An opening
// -fence failure returns (false, true) with outs untouched — the caller
// re-runs the array through the blocking path. A closing-fence failure is
// handled in full: a marker exchange restores the ordering the fence
// would have provided, live senders' rows are kept, and a dead sender's
// rows are kept only when PendingFrom proves its Puts landed completely.
func (rt *Runtime) rmaRedistArray(a *regArray, sched []drsd.Transfer, newDist *drsd.Block, outs []redistOut, mv *telemetry.ArrayMove, bytesMoved *int64) (bool, bool) {
	me := rt.comm.Rank()
	win := rt.redistWinFor(a)
	nlo, nhi := newDist.RangeOf(me)
	wlo, _ := drsd.Window(a.accesses, nlo, nhi, rt.n)
	rt.comm.WinAttach(win, denseWinMem{d: a.dense, wlo: wlo})
	if err := rt.comm.FenceErr(win); err != nil {
		rt.absorbDead(rt.deadOf(err))
		rt.redistGroup = nil
		return false, true
	}
	for i := range outs {
		m := &outs[i]
		tlo, thi := newDist.RangeOf(m.to)
		twlo, _ := drsd.Window(a.accesses, tlo, thi, rt.n)
		rt.comm.Put(win, m.to, (m.lo-twlo)*a.dense.RowLen, m.dense.data)
		putDenseSlab(m.dense)
		m.dense = nil
		mv.Rows += m.rows
		mv.Bytes += int64(m.bytes)
		*bytesMoved += int64(m.bytes)
	}
	err := rt.comm.FenceErr(win)
	if err == nil {
		for _, tr := range sched {
			if tr.To == me {
				*bytesMoved += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
			}
		}
		return true, false
	}
	rt.absorbDead(rt.deadOf(err))

	// Marker exchange: a live sender's marker follows its Puts in program
	// order, so receiving it restores the happens-before edge the failed
	// fence could not provide before this rank touches the landed rows.
	tag := tagRedistSync + a.index
	sentTo := map[int]bool{}
	for _, tr := range sched {
		if tr.From == me && tr.To != me && !sentTo[tr.To] && rt.comm.World().Alive(tr.To) {
			rt.comm.Send(tr.To, tag, nil, 0)
			sentTo[tr.To] = true
		}
	}
	synced := map[int]bool{}  // origin -> marker exchange completed
	decided := map[int]bool{} // origin -> verdict cached in kept
	kept := map[int]bool{}
	for _, tr := range sched {
		if tr.To != me || tr.From == me {
			continue
		}
		if _, seen := synced[tr.From]; !seen {
			_, _, rerr := rt.comm.RecvErr(tr.From, tag)
			if rerr != nil {
				rt.absorbDead(rt.deadOf(rerr))
			}
			synced[tr.From] = rerr == nil
		}
	}
	for _, tr := range sched {
		if tr.To != me {
			continue
		}
		if tr.From == me {
			// This rank's own Put ran to completion by definition.
			*bytesMoved += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
			continue
		}
		keep := synced[tr.From]
		if !keep {
			// The origin is dead. Its Puts either all landed before the
			// crash or the tail never ran (a crash fires at operation
			// entry); PendingFrom decides deterministically, and a partial
			// landing conservatively loses every transfer from that origin.
			if !decided[tr.From] {
				want := 0
				for _, t2 := range sched {
					if t2.To == me && t2.From == tr.From {
						want += (t2.Hi - t2.Lo) * a.dense.RowLen
					}
				}
				elems, ok := rt.comm.PendingFrom(win, tr.From)
				kept[tr.From] = ok && elems == want
				decided[tr.From] = true
			}
			keep = kept[tr.From]
		}
		if keep {
			*bytesMoved += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
		} else {
			rt.loseRows(a, tr.Lo, tr.Hi)
		}
	}
	rt.comm.DiscardPending(win)
	rt.redistGroup = nil
	return true, true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
