package core

import (
	"fmt"

	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// One-sided consumers of the mpi window layer.
//
// Replica refresh (Config.ReplicaRMA): the paired-send/recv refresh makes
// every holder stall in a blocking receive for its predecessor's slab. The
// one-sided refresh defers that settlement a full cycle: at each refresh
// point a rank first *closes* the epoch opened at the previous refresh —
// by then an entire cycle of computation has hidden the wire, so the fence
// settles with (near) zero stall — and then opens the next epoch by
// exposing a staging buffer and Putting its own rows into its successor's
// window. The committed replica (replica.data) is only overwritten when an
// epoch settles, so a predecessor that dies mid-cycle without depositing
// leaves the previous committed state intact, exactly like the paired
// path's keep-the-stale-replica behaviour.
//
// Epoch synchronisation (Config.ReplicaSync):
//
// SyncFence (legacy) closes and opens epochs with full-group fences. The
// fence's dissemination barrier prices as ceil(log2 n) latency rounds paid
// by every member per refresh — the reason 256-rank makespan ticked up
// even as holder stall hit zero.
//
// SyncPSCW (default) synchronises only the (holder, buddy) pairs with
// general active-target sync: at each open every rank posts its windows to
// its ring predecessor (the origin that will Put into it), starts toward
// its successor, and Puts its slab; at the next close it completes toward
// the successor and waits on the predecessor, settling that pair's epoch
// with two 8-byte control messages instead of a butterfly. Ordering rules
// the pairwise protocol needs:
//
//   - open posts every array's window before starting any: a rank whose
//     start fails (dead successor) abandons the open, and had it not
//     already posted, its live predecessor would hang in a start.
//   - close completes every array before waiting on any: completion
//     notifications must all be out before this rank can abandon in a
//     failed wait, or a live successor would hang in its wait.
//   - failure observation is pairwise-local (only the dead rank's ring
//     neighbours see an error mid-refresh), which is exactly the runtime's
//     asymmetric-detection contract: the next cycle boundary's collective
//     fails for everyone and recovery converges there (failure.go).
//
// SyncAdaptive runs the same PSCW handshake every refresh but lets each
// holder pick, per refresh, between the deferred one-sided Put (wire
// hidden behind the next cycle of computation, one-cycle staleness) and an
// immediate paired send/recv (fresher replica, paid stall) — chosen from
// its measured cycle span against the wire time of its incoming slab. The
// verdict rides in-band as the post notification's note, so both ends of
// the pair agree without a global agreement step (a per-refresh allreduce
// would cost the very butterfly PSCW removes). Clocks differ per rank
// under competing-process load, so the verdict is per-pair by
// construction, not per-group.
//
// Epoch/visibility discipline (fence mode; PSCW replaces each fence with
// its pairwise counterpart):
//
//   - open: attach stage, fence, Put. The opening fence is the write
//     barrier that orders every origin's next-epoch Put after every
//     owner's close-time promotion of the previous stage — without it the
//     promotion copy would race a fast predecessor's next Put. Under PSCW
//     the owner's post is that barrier: the predecessor cannot Put until
//     its start consumes this rank's post, which follows the promotion in
//     program order.
//   - close: fence (settles this rank's deposits), then promote stage to
//     the committed replica. Promotion is host-only bookkeeping: the
//     modelled deposit already landed by one-sided DMA, so no virtual
//     charge is made (the paired path's receive CPU and commit touches are
//     precisely the cost this mode saves).
//   - failure: the fence returns *mpi.RankFailedError and settles nothing.
//     Only a *dead* predecessor's deposit may be adopted (its goroutine is
//     gone, so the stage cannot be concurrently written): PendingFrom —
//     PendingPSCW under pairwise sync — answers deterministically whether
//     its Put landed in full — a crash fires at operation entry, so a Put
//     either ran to completion or never started. A live predecessor's
//     deposit is abandoned (the replica keeps its previous commit), and
//     the windows are discarded and rebuilt on the post-recovery group.
//
// Redistribution (Config.RedistMode == RedistRMA): see rmaRedistArray. A
// grow or rejoin redistribution additionally routes transfers bound for
// resized-in ranks through Get under PSCW — the joiner pulls its slabs
// from the owners instead of the owners pushing them — see
// rmaFetchArray.

// repRange is the row range an open replica epoch will commit.
type repRange struct {
	lo, hi int
}

// ReplicaStall reports the cumulative receive-side stall this rank's
// replica refreshes have cost it (paired receives, or fence settlements
// under ReplicaRMA). The RMA-vs-p2p study and the refresh benchmarks
// compare it across modes.
func (rt *Runtime) ReplicaStall() vclock.Duration { return rt.replicaStall }

// Finish settles any still-open replica epoch. Applications (and the apps
// harness) call it once per rank after the last cycle; without it the
// final epoch's deposits would be left pending on world teardown. Safe to
// call multiple times and when replication or RMA mode is off.
func (rt *Runtime) Finish() {
	if rt.cfg.ReplicaRMA {
		rt.closeReplicaEpoch()
	}
}

// refreshReplicasNow runs one replica refresh in the configured mode,
// accounting the receive-side stall it cost.
func (rt *Runtime) refreshReplicasNow() {
	if rt.cfg.ReplicaRMA {
		// The adaptive verdict compares the computation window between
		// refresh points against the slab wire time, so the span must be
		// measured from the END of the previous refresh to the ENTRY of
		// this one — including the close's settle stall in the span would
		// inflate it by exactly the stall the verdict is trying to avoid,
		// and the verdict could never flip to paired sends.
		rt.repSpan = rt.node.Now().Sub(rt.repMark)
		rt.repSpanOK = rt.repMarked
		rt.closeReplicaEpoch()
		rt.openReplicaEpoch()
		rt.repMark = rt.node.Now()
		rt.repMarked = true
		return
	}
	stall0 := rt.comm.RecvStall
	rt.refreshReplicas()
	rt.replicaStall += rt.comm.RecvStall - stall0
}

// Adaptive-mode verdicts, carried in-band as the post notification's note:
// the holder of the incoming slab decides how its predecessor should ship
// this epoch and the predecessor obeys the note its start returns.
const (
	notePut  int64 = 0 // deferred one-sided Put, settled at the next close
	noteSend int64 = 1 // immediate paired send, committed inside the open
)

// replicaWire prices the wire time of one replica refresh of `rows` rows
// across every dense array — the threshold the adaptive verdict compares
// the measured cycle span against: a span shorter than this cannot hide
// the deferred Put, so the holder asks for an immediate paired slab.
func (rt *Runtime) replicaWire(rows int) vclock.Duration {
	net := rt.comm.World().Cluster().Net()
	var d vclock.Duration
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		bytes := float64(rows) * float64(a.dense.RowBytes())
		d += net.Latency + vclock.FromSeconds(bytes/net.BytesPerSec)
	}
	return d
}

// AdaptiveRefreshModes reports how many adaptive refreshes chose the
// deferred Put and how many the immediate paired send. Zero outside
// SyncAdaptive.
func (rt *Runtime) AdaptiveRefreshModes() (put, send int) {
	return rt.adaptPut, rt.adaptSend
}

// openReplicaEpoch exposes this rank's staging buffers and Puts its owned
// rows into its ring successor's windows, leaving the epoch open for the
// next refresh point to close. Every rank of the current distribution
// calls it collectively.
func (rt *Runtime) openReplicaEpoch() {
	if !rt.cfg.Replicate || rt.isOut {
		return
	}
	ranks := rt.dist.Ranks()
	if len(ranks) < 2 {
		rt.replicas = nil
		return
	}
	me := rt.comm.Rank()
	self := -1
	for i, r := range ranks {
		if r == me {
			self = i
		}
	}
	if self < 0 {
		return
	}
	stall0 := rt.comm.RecvStall
	defer func() { rt.replicaStall += rt.comm.RecvStall - stall0 }()
	if !equalInts(rt.repRanks, ranks) {
		// Membership changed (or first open): discard whatever is pending
		// on the abandoned windows, then register fresh ones on the new
		// group. Registration order is rt.order on every member, so the
		// k-th WinCreate of each member meets on the same window.
		rt.discardReplicaWindows()
		g := rt.comm.World().NewGroup(ranks)
		rt.repWins = make(map[string]*mpi.Win, len(rt.order))
		for _, name := range rt.order {
			if rt.arrays[name].dense == nil {
				continue
			}
			rt.repWins[name] = rt.comm.WinCreate(g, nil)
		}
		rt.repRanks = append(rt.repRanks[:0], ranks...)
	}
	rt.repPrev = ranks[(self-1+len(ranks))%len(ranks)]
	rt.repNext = ranks[(self+1)%len(ranks)]
	if rt.replicas == nil {
		rt.replicas = make(map[string]*replica)
	}
	if rt.repPend == nil {
		rt.repPend = make(map[string]repRange)
	}
	plo, phi := rt.dist.RangeOf(rt.repPrev)
	lo, hi := rt.dist.RangeOf(me)

	if rt.cfg.ReplicaSync == SyncFence {
		for _, name := range rt.order {
			a := rt.arrays[name]
			if a.dense == nil {
				continue
			}
			win := rt.repWins[name]
			rt.stageReplica(a, phi-plo)
			rt.comm.WinAttach(win, mpi.FlatMem(rt.replicas[name].stage))
			// The opening fence publishes the attach and orders this epoch's
			// remote Puts after every member's close of the previous one.
			if err := rt.comm.FenceErr(win); err != nil {
				// A member died before the epoch could open. Leave it closed;
				// recovery at the next cycle boundary rebuilds the windows.
				rt.absorbDead(rt.deadOf(err))
				rt.repRanks = rt.repRanks[:0]
				return
			}
			rt.repPend[name] = repRange{lo: plo, hi: phi}
			if hi > lo {
				// Origin-side injection: the same packing touches and Put CPU a
				// paired sender pays — the saving is entirely holder-side.
				slab := getDenseSlab(hi-lo, a.dense.RowLen)
				a.dense.CopyRowsTo(slab.data, lo, hi)
				for g := lo; g < hi; g++ {
					rt.node.ChargeTouch(a.dense.RowBytes())
				}
				rt.comm.Put(win, rt.repNext, 0, slab.data)
				putDenseSlab(slab)
			}
		}
		rt.repOpen = true
		return
	}

	// Pairwise open. The adaptive verdict is computed first — it rides on
	// every post notification this rank sends its predecessor.
	note := notePut
	if rt.cfg.ReplicaSync == SyncAdaptive {
		if rt.repSpanOK && rt.repSpan < rt.replicaWire(phi-plo) {
			note = noteSend
		}
		if note == noteSend {
			rt.adaptSend++
		} else {
			rt.adaptPut++
		}
	}

	// Loop 1: attach and post every array's window toward the predecessor
	// before starting any — a rank that abandons in loop 2 (dead successor)
	// must already have posted everything its live predecessor will start
	// toward, or that predecessor would hang (see the file comment).
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		win := rt.repWins[name]
		rt.stageReplica(a, phi-plo)
		rt.comm.WinAttach(win, mpi.FlatMem(rt.replicas[name].stage))
		// The post is this epoch's write barrier: the predecessor cannot Put
		// until its start consumes it, and it follows this rank's close-time
		// promotion of the previous stage in program order.
		rt.comm.WinPost(win, []int{rt.repPrev}, note)
	}

	// Loop 2: start toward the successor and ship this rank's slab the way
	// the successor's note asks for.
	var peerNote [1]int64
	for _, name := range rt.order {
		a := rt.arrays[name]
		if a.dense == nil {
			continue
		}
		win := rt.repWins[name]
		if err := rt.comm.WinStartErr(win, []int{rt.repNext}, peerNote[:]); err != nil {
			// The successor died before posting. Abandon the open — the
			// epoch never opens (repOpen stays false), and the exposures
			// already posted settle nothing: the next open observes the
			// membership change, discards any deposit a live predecessor
			// lands meanwhile, and rebuilds the windows. Waiting on the
			// predecessor here instead would deadlock: its completion only
			// arrives at its next refresh point, beyond the failed
			// collective this rank must still reach.
			rt.absorbDead(rt.deadOf(err))
			rt.repRanks = rt.repRanks[:0]
			return
		}
		rt.repPend[name] = repRange{lo: plo, hi: phi}
		rows := hi - lo
		if peerNote[0] == noteSend {
			// The successor's cycles are too short to hide the wire: ship an
			// immediate paired slab (refreshReplicas wire form); it receives
			// and commits before leaving its own open.
			slab := getDenseSlab(rows, a.dense.RowLen)
			a.dense.CopyRowsTo(slab.data, lo, hi)
			for g := lo; g < hi; g++ {
				rt.node.ChargeTouch(a.dense.RowBytes())
			}
			rt.comm.Send(rt.repNext, tagAdaptive+a.index,
				replicaSlab{lo: lo, hi: hi, data: slab}, 16+rows*int(a.dense.RowBytes()))
		} else if rows > 0 {
			slab := getDenseSlab(rows, a.dense.RowLen)
			a.dense.CopyRowsTo(slab.data, lo, hi)
			for g := lo; g < hi; g++ {
				rt.node.ChargeTouch(a.dense.RowBytes())
			}
			rt.comm.Put(win, rt.repNext, 0, slab.data)
			putDenseSlab(slab)
		}
	}

	rt.repDirect = note == noteSend
	if rt.repDirect {
		// This rank asked its predecessor for immediate paired slabs:
		// receive and commit them now, exactly as the paired refresh would
		// (receive CPU plus commit touches) — the freshness this verdict
		// buys is paid for with the stall the Put path hides.
		for _, name := range rt.order {
			a := rt.arrays[name]
			if a.dense == nil {
				continue
			}
			p, _, err := rt.comm.RecvErr(rt.repPrev, tagAdaptive+a.index)
			if err != nil {
				// Keep the stale replica; recovery handles the death.
				rt.absorbDead(rt.deadOf(err))
				continue
			}
			rs, ok := p.(replicaSlab)
			if !ok {
				panic(fmt.Sprintf("core: bad adaptive replica payload for %q", name))
			}
			rep := rt.replicas[name]
			n := (rs.hi - rs.lo) * a.dense.RowLen
			if cap(rep.data) < n {
				rep.data = make([]float64, n)
			} else {
				rep.data = rep.data[:n]
			}
			copy(rep.data, rs.data.data[:n])
			rep.lo, rep.hi = rs.lo, rs.hi
			for g := rs.lo; g < rs.hi; g++ {
				rt.node.ChargeTouch(a.dense.RowBytes())
			}
			putDenseSlab(rs.data)
		}
	}
	rt.repOpen = true
}

// stageReplica (re)sizes array a's staging buffer for an incoming deposit
// of `rows` rows, creating the replica record on first use.
func (rt *Runtime) stageReplica(a *regArray, rows int) {
	rep := rt.replicas[a.name]
	if rep == nil {
		rep = &replica{}
		rt.replicas[a.name] = rep
	}
	n := rows * a.dense.RowLen
	if cap(rep.stage) < n {
		rep.stage = make([]float64, n)
	} else {
		rep.stage = rep.stage[:n]
	}
}

// closeReplicaEpoch settles the replica epoch left open by the last
// refresh point, promoting each staged deposit to the committed replica.
// No-op when no epoch is open. On a failed fence it runs the adoption
// protocol documented at the top of the file.
func (rt *Runtime) closeReplicaEpoch() {
	if !rt.repOpen {
		return
	}
	rt.repOpen = false
	stall0 := rt.comm.RecvStall
	failed := false
	if rt.cfg.ReplicaSync == SyncFence {
		for _, name := range rt.order {
			a := rt.arrays[name]
			if a.dense == nil {
				continue
			}
			win := rt.repWins[name]
			rep := rt.replicas[name]
			pend := rt.repPend[name]
			if err := rt.comm.FenceErr(win); err != nil {
				failed = true
				rt.absorbDead(rt.deadOf(err))
				adopt := false
				if !rt.comm.World().Alive(rt.repPrev) {
					want := (pend.hi - pend.lo) * a.dense.RowLen
					elems, ok := rt.comm.PendingFrom(win, rt.repPrev)
					adopt = want == 0 || (ok && elems == want)
				}
				rt.comm.DiscardPending(win)
				if adopt {
					rt.promoteReplica(a, rep, pend)
				}
				continue
			}
			rt.promoteReplica(a, rep, pend)
		}
	} else {
		// Pairwise close. Loop 1: complete toward the successor for every
		// array before waiting on any — all completion notifications must be
		// out before this rank can block (or abandon) in a wait, or a live
		// successor would hang in its own wait (see the file comment).
		for _, name := range rt.order {
			a := rt.arrays[name]
			if a.dense == nil {
				continue
			}
			if err := rt.comm.WinCompleteErr(rt.repWins[name]); err != nil {
				// The successor died: this rank's deposits are gone with it.
				// Nothing to settle on this side; the wait loop still runs.
				failed = true
				rt.absorbDead(rt.deadOf(err))
			}
		}
		// Loop 2: wait on the predecessor's completion, settling the pair's
		// epoch, and promote the staged deposit.
		for _, name := range rt.order {
			a := rt.arrays[name]
			if a.dense == nil {
				continue
			}
			win := rt.repWins[name]
			rep := rt.replicas[name]
			pend := rt.repPend[name]
			if err := rt.comm.WinWaitErr(win); err != nil {
				failed = true
				rt.absorbDead(rt.deadOf(err))
				// Same adoption protocol as the failed fence, with the
				// pairwise pending probe; an adaptive epoch whose slabs
				// arrived paired has already committed (repDirect) and has
				// nothing staged to adopt.
				adopt := false
				if !rt.comm.World().Alive(rt.repPrev) && !rt.repDirect {
					want := (pend.hi - pend.lo) * a.dense.RowLen
					elems, ok := rt.comm.PendingPSCW(win, rt.repPrev)
					adopt = want == 0 || (ok && elems == want)
				}
				rt.comm.DiscardPending(win)
				if adopt {
					rt.promoteReplica(a, rep, pend)
				}
				continue
			}
			if !rt.repDirect {
				rt.promoteReplica(a, rep, pend)
			}
		}
	}
	if failed {
		// Abandon the windows: the group lost a member, so no further epoch
		// can settle on them. The next open discards any deposit a slow
		// survivor lands in the meantime and rebuilds on the new group.
		rt.repRanks = rt.repRanks[:0]
	}
	rt.replicaStall += rt.comm.RecvStall - stall0
}

// promoteReplica commits one settled stage as the array's replica.
// Host-only bookkeeping: the modelled transfer already landed one-sided,
// so no virtual cost is charged (see the file comment).
func (rt *Runtime) promoteReplica(a *regArray, rep *replica, pend repRange) {
	n := (pend.hi - pend.lo) * a.dense.RowLen
	if cap(rep.data) < n {
		rep.data = make([]float64, n)
	} else {
		rep.data = rep.data[:n]
	}
	copy(rep.data, rep.stage[:n])
	rep.lo, rep.hi = pend.lo, pend.hi
}

// discardReplicaWindows drops every deposit still pending against this
// rank's slots of the current replica windows, releasing them before the
// windows are abandoned for a new group.
func (rt *Runtime) discardReplicaWindows() {
	for _, win := range rt.repWins {
		rt.comm.DiscardPending(win)
	}
}

// --- RedistRMA ------------------------------------------------------------

// denseWinMem exposes a dense array's resident window [wlo,whi) as window
// memory: element offset 0 is row wlo. Rows may be non-contiguous
// (Projection scheme), which is why the window layer takes an interface
// rather than a flat slice. Access is raw — no virtual touches — because
// deposits model one-sided DMA into the exposed rows.
type denseWinMem struct {
	d   *matrix.Dense
	wlo int
}

func (m denseWinMem) WriteAt(off int, src []float64) {
	rl := m.d.RowLen
	g := m.wlo + off/rl
	for len(src) > 0 {
		copy(m.d.Row(g), src[:rl])
		src = src[rl:]
		g++
	}
}

func (m denseWinMem) ReadAt(off int, dst []float64) {
	rl := m.d.RowLen
	g := m.wlo + off/rl
	for len(dst) > 0 {
		copy(dst[:rl], m.d.Row(g))
		dst = dst[rl:]
		g++
	}
}

func (m denseWinMem) Len() int { return (m.d.Hi() - m.d.Lo()) * m.d.RowLen }

// redistWinFor returns the one-sided window redistribution uses for array
// a, creating the per-array windows the first time the active group needs
// them. All active ranks call applyDistribution collectively, so creation
// order (rt.order) is identical on every member.
func (rt *Runtime) redistWinFor(a *regArray) *mpi.Win {
	if rt.redistGroup != rt.group {
		rt.redistGroup = rt.group
		rt.redistWins = make(map[string]*mpi.Win, len(rt.order))
		for _, name := range rt.order {
			if rt.arrays[name].dense == nil {
				continue
			}
			rt.redistWins[name] = rt.comm.WinCreate(rt.group, nil)
		}
	}
	return rt.redistWins[a.name]
}

// rmaRedistArray runs Phase 3 of one dense array's redistribution through
// a one-sided window: the receiver exposes its freshly resized resident
// window (Phase 2 has run), an opening fence publishes the attachments,
// senders Put their packed slabs directly at destination offsets both
// sides compute from the schedule, and the closing fence settles the
// deposits — there is no harvest loop and no commit loop, and the receiver
// pays neither per-message CPU nor commit touches.
//
// Returns (committed, down): committed reports whether the array's
// exchange was fully handled here; down reports that a fence failed and
// the remaining arrays must fall back to the blocking drain. An opening
// -fence failure returns (false, true) with outs untouched — the caller
// re-runs the array through the blocking path. A closing-fence failure is
// handled in full: a marker exchange restores the ordering the fence
// would have provided, live senders' rows are kept, and a dead sender's
// rows are kept only when PendingFrom proves its Puts landed completely.
func (rt *Runtime) rmaRedistArray(a *regArray, sched []drsd.Transfer, newDist *drsd.Block, outs []redistOut, mv *telemetry.ArrayMove, sent, recv *int64) (bool, bool) {
	me := rt.comm.Rank()
	win := rt.redistWinFor(a)
	nlo, nhi := newDist.RangeOf(me)
	wlo, _ := drsd.Window(a.accesses, nlo, nhi, rt.n)
	rt.comm.WinAttach(win, denseWinMem{d: a.dense, wlo: wlo})
	if err := rt.comm.FenceErr(win); err != nil {
		rt.absorbDead(rt.deadOf(err))
		rt.redistGroup = nil
		return false, true
	}
	for i := range outs {
		m := &outs[i]
		tlo, thi := newDist.RangeOf(m.to)
		twlo, _ := drsd.Window(a.accesses, tlo, thi, rt.n)
		rt.comm.Put(win, m.to, (m.lo-twlo)*a.dense.RowLen, m.dense.data)
		putDenseSlab(m.dense)
		m.dense = nil
		mv.Rows += m.rows
		mv.Bytes += int64(m.bytes)
		*sent += int64(m.bytes)
	}
	err := rt.comm.FenceErr(win)
	if err == nil {
		for _, tr := range sched {
			if tr.To == me {
				*recv += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
			}
		}
		return true, false
	}
	rt.absorbDead(rt.deadOf(err))

	// Marker exchange: a live sender's marker follows its Puts in program
	// order, so receiving it restores the happens-before edge the failed
	// fence could not provide before this rank touches the landed rows.
	tag := tagRedistSync + a.index
	sentTo := map[int]bool{}
	for _, tr := range sched {
		if tr.From == me && tr.To != me && !sentTo[tr.To] && rt.comm.World().Alive(tr.To) {
			rt.comm.Send(tr.To, tag, nil, 0)
			sentTo[tr.To] = true
		}
	}
	synced := map[int]bool{}  // origin -> marker exchange completed
	decided := map[int]bool{} // origin -> verdict cached in kept
	kept := map[int]bool{}
	for _, tr := range sched {
		if tr.To != me || tr.From == me {
			continue
		}
		if _, seen := synced[tr.From]; !seen {
			_, _, rerr := rt.comm.RecvErr(tr.From, tag)
			if rerr != nil {
				rt.absorbDead(rt.deadOf(rerr))
			}
			synced[tr.From] = rerr == nil
		}
	}
	for _, tr := range sched {
		if tr.To != me {
			continue
		}
		if tr.From == me {
			// This rank's own Put ran to completion by definition.
			*recv += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
			continue
		}
		keep := synced[tr.From]
		if !keep {
			// The origin is dead. Its Puts either all landed before the
			// crash or the tail never ran (a crash fires at operation
			// entry); PendingFrom decides deterministically, and a partial
			// landing conservatively loses every transfer from that origin.
			if !decided[tr.From] {
				want := 0
				for _, t2 := range sched {
					if t2.To == me && t2.From == tr.From {
						want += (t2.Hi - t2.Lo) * a.dense.RowLen
					}
				}
				elems, ok := rt.comm.PendingFrom(win, tr.From)
				kept[tr.From] = ok && elems == want
				decided[tr.From] = true
			}
			keep = kept[tr.From]
		}
		if keep {
			*recv += int64(tr.Hi-tr.Lo) * a.dense.RowBytes()
		} else {
			rt.loseRows(a, tr.Lo, tr.Hi)
		}
	}
	rt.comm.DiscardPending(win)
	rt.redistGroup = nil
	return true, true
}

// fetchWinFor returns the one-sided window joiner fetch uses for array a,
// distinct from the redistribution windows because the two expose
// different memories: the redistribution window exposes a receiver's
// resident rows for Puts, the fetch window exposes a source's packed
// outgoing slabs for Gets. Creation mirrors redistWinFor — every group
// member registers the per-array windows in rt.order the first time the
// group needs them, so the k-th WinCreate of each member meets on the
// same window.
func (rt *Runtime) fetchWinFor(a *regArray) *mpi.Win {
	if rt.fetchGroup != rt.group {
		rt.fetchGroup = rt.group
		rt.fetchWins = make(map[string]*mpi.Win, len(rt.order))
		for _, name := range rt.order {
			if rt.arrays[name].dense == nil {
				continue
			}
			rt.fetchWins[name] = rt.comm.WinCreate(rt.group, nil)
		}
	}
	return rt.fetchWins[a.name]
}

// rmaFetchArray moves one dense array's joiner-bound transfers with Get
// under PSCW: each source exposes its packed outgoing slabs (fbuf, laid
// out in schedule order) and posts to the joiners pulling from it; each
// joiner runs one pairwise epoch per source — start, Get each of its rows
// at offsets both sides derive from the same schedule, complete — and the
// source's wait then settles the handshake. Established owners never
// stall in a per-joiner serve loop (the joiner pays the Get landing at
// its completion), and failure isolation is pairwise: a joiner that finds
// a source dead loses exactly that source's rows and keeps pulling from
// the rest. Every group member calls this when the schedule routes any
// transfer to a resized-in rank — the window registration must meet
// collectively — and non-participants return after registering.
func (rt *Runtime) rmaFetchArray(a *regArray, sched []drsd.Transfer, newDist *drsd.Block, newcomer map[int]bool, fetchOuts []redistOut, fbuf []float64, mv *telemetry.ArrayMove, sent, recv *int64) {
	me := rt.comm.Rank()
	fwin := rt.fetchWinFor(a)
	rl := a.dense.RowLen

	if len(fetchOuts) > 0 {
		// Source: expose the packed slabs, post to the pulling joiners, and
		// wait out their completions. The joiners' Gets read the exposed
		// buffer while this rank sits in the wait, so fbuf must not be
		// touched until the wait returns (the next array's packing reuses
		// it — strictly after this).
		rt.comm.WinAttach(fwin, mpi.FlatMem(fbuf))
		var fetchers []int
		for i := range fetchOuts {
			m := &fetchOuts[i]
			seen := false
			for _, f := range fetchers {
				if f == m.to {
					seen = true
					break
				}
			}
			if !seen {
				fetchers = append(fetchers, m.to)
			}
			mv.Rows += m.rows
			mv.Bytes += int64(m.bytes)
			*sent += int64(m.bytes)
		}
		rt.comm.WinPost(fwin, fetchers, 0)
		if err := rt.comm.WinWaitErr(fwin); err != nil {
			// A joiner died mid-pull; its pairwise epoch can never settle.
			// Its rows die with it either way — drop the handshake state.
			rt.absorbDead(rt.deadOf(err))
			rt.comm.DiscardPending(fwin)
		}
		return
	}

	if !newcomer[me] {
		return
	}
	// Joiner: pull from each source in one pairwise epoch per source, in
	// schedule order (the same order every rank derives).
	nlo, nhi := newDist.RangeOf(me)
	wlo, _ := drsd.Window(a.accesses, nlo, nhi, rt.n)
	type pull struct {
		lo, hi int
		slab   *denseSlab
	}
	var pulls []pull
	started := map[int]bool{}
	for _, tr := range sched {
		if tr.To != me || started[tr.From] {
			continue
		}
		s := tr.From
		started[s] = true
		var note [1]int64
		if err := rt.comm.WinStartErr(fwin, []int{s}, note[:]); err != nil {
			// The source died before posting: its rows cannot be pulled.
			// Pairwise isolation — only this source's transfers are lost.
			rt.absorbDead(rt.deadOf(err))
			for _, t2 := range sched {
				if t2.To == me && t2.From == s {
					rt.loseRows(a, t2.Lo, t2.Hi)
				}
			}
			continue
		}
		pulls = pulls[:0]
		off := 0
		for _, t2 := range sched {
			if t2.From != s || !newcomer[t2.To] {
				continue
			}
			rows := t2.Hi - t2.Lo
			if t2.To == me {
				slab := getDenseSlab(rows, rl)
				rt.comm.Get(fwin, s, off, slab.data)
				pulls = append(pulls, pull{lo: t2.Lo, hi: t2.Hi, slab: slab})
			}
			off += rows * rl
		}
		if err := rt.comm.WinCompleteErr(fwin); err != nil {
			// The source died after posting. The Gets captured their payload
			// at call time, so the rows are good: absorb the death, drop the
			// handshake state the completion could not settle, commit anyway.
			rt.absorbDead(rt.deadOf(err))
			rt.comm.DiscardPending(fwin)
		}
		for _, p := range pulls {
			// Raw landing into the resident window — one-sided DMA, priced
			// by the Get settlement at completion, exactly like a pushed
			// Put's landing (no per-row commit touches).
			denseWinMem{d: a.dense, wlo: wlo}.WriteAt((p.lo-wlo)*rl, p.slab.data)
			*recv += int64(p.hi-p.lo) * a.dense.RowBytes()
			putDenseSlab(p.slab)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
