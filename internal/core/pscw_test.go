package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// Replica-sync mode suites: the pairwise PSCW refresh (default), the
// legacy fence refresh (the equivalence oracle PR 7 shipped), and the
// adaptive per-pair mode. The default-mode crash matrix, leak checks and
// determinism suites live in rma_test.go and now exercise SyncPSCW; this
// file pins what is specific to the mode split.

// replicaFenceCfg is replicaRMACfg pinned to the legacy full-group fence.
func replicaFenceCfg() Config {
	cfg := replicaRMACfg()
	cfg.ReplicaSync = SyncFence
	return cfg
}

// replicaAdaptiveCfg is replicaRMACfg with the per-pair adaptive verdict.
func replicaAdaptiveCfg() Config {
	cfg := replicaRMACfg()
	cfg.ReplicaSync = SyncAdaptive
	return cfg
}

// TestReplicaSyncFenceRegression keeps the legacy fence mode working now
// that the default moved to PSCW: crash recovery stays bit-exact and
// leak-free through the full-group fence adoption protocol.
func TestReplicaSyncFenceRegression(t *testing.T) {
	for _, cycle := range []int{1, 6, 13} {
		spec := cluster.Uniform(3)
		spec.Faults = []fault.Fault{fault.CrashAtCycle(2, cycle)}
		results, leaked := runRMAMini(t, spec, replicaFenceCfg(), 48, 4, 20)
		if len(results) != 2 {
			t.Fatalf("cycle %d: %d ranks reported, want the 2 survivors", cycle, len(results))
		}
		checkRMAValues(t, results, 48)
		for r, res := range results {
			if res.lost != 0 {
				t.Errorf("cycle %d: rank %d lost %d rows", cycle, r, res.lost)
			}
		}
		if leaked != 0 {
			t.Errorf("cycle %d: %d deposits leaked", cycle, leaked)
		}
	}
}

// TestReplicaSyncPSCWBeatsFence pins the tentpole's scaling claim at the
// runtime level: with per-cycle refreshes, every rank must finish strictly
// earlier under pairwise sync than under the fence — the dissemination
// butterfly is pure overhead the pairwise handshake does not pay.
func TestReplicaSyncPSCWBeatsFence(t *testing.T) {
	const n, rowLen, cycles = 64, 64, 12
	fenceRes, _ := runRMAMini(t, cluster.Uniform(8), replicaFenceCfg(), n, rowLen, cycles)
	pscwRes, leaked := runRMAMini(t, cluster.Uniform(8), replicaRMACfg(), n, rowLen, cycles)
	checkRMAValues(t, fenceRes, n)
	checkRMAValues(t, pscwRes, n)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
	for r := range pscwRes {
		if pscwRes[r].final >= fenceRes[r].final {
			t.Errorf("rank %d: PSCW finish %v not strictly before fence finish %v",
				r, pscwRes[r].final, fenceRes[r].final)
		}
	}
}

// TestReplicaSyncModesSameValues: all three sync modes are transport-only
// choices — each must end with identical bit-exact array contents and
// identical final distributions on every rank.
func TestReplicaSyncModesSameValues(t *testing.T) {
	const n, rowLen, cycles = 48, 4, 15
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fence", replicaFenceCfg()},
		{"pscw", replicaRMACfg()},
		{"adaptive", replicaAdaptiveCfg()},
	} {
		results, leaked := runRMAMini(t, cluster.Uniform(4), tc.cfg, n, rowLen, cycles)
		checkRMAValues(t, results, n)
		if leaked != 0 {
			t.Errorf("%s: %d deposits leaked", tc.name, leaked)
		}
	}
}

// TestReplicaSyncAdaptivePicksPut: with the default fast cycles (compute
// dwarfs the slab wire time) every adaptive verdict after the first mark
// must stay with the deferred Put — the cheap steady-state choice.
func TestReplicaSyncAdaptivePicksPut(t *testing.T) {
	results, leaked := runRMAMini(t, cluster.Uniform(4), replicaAdaptiveCfg(), 64, 4, 12)
	checkRMAValues(t, results, 64)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
	for r, res := range results {
		if res.adaptPut == 0 {
			t.Errorf("rank %d made no put-mode refreshes", r)
		}
		if res.adaptSend != 0 {
			t.Errorf("rank %d chose %d paired refreshes despite wire ≪ cycle span", r, res.adaptSend)
		}
	}
}

// TestReplicaSyncAdaptivePicksSend: with slabs so large the wire time
// exceeds the cycle span, the verdict must flip to immediate paired sends
// — a deferred Put could never hide behind one cycle of computation.
func TestReplicaSyncAdaptivePicksSend(t *testing.T) {
	// 16 rows/rank × 32768 × 8 B ≈ 4.2 MB/slab ≈ 0.34 s on the default
	// 12.5 MB/s wire, against a 16-iteration × 10 ms ≈ 0.16 s cycle.
	results, leaked := runRMAMini(t, cluster.Uniform(4), replicaAdaptiveCfg(), 64, 32768, 6)
	checkRMAValues(t, results, 64)
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
	for r, res := range results {
		if res.adaptSend == 0 {
			t.Errorf("rank %d never flipped to paired sends despite wire > cycle span (put=%d)", r, res.adaptPut)
		}
	}
}

// TestReplicaSyncAdaptiveCrash drives the adaptive mode through the crash
// matrix: whatever the per-epoch transport, recovery must stay exact and
// leak-free (the adoption guard skips epochs whose slabs arrived paired).
func TestReplicaSyncAdaptiveCrash(t *testing.T) {
	for _, cycle := range []int{1, 6, 13} {
		spec := cluster.Uniform(3)
		spec.Faults = []fault.Fault{fault.CrashAtCycle(1, cycle)}
		results, leaked := runRMAMini(t, spec, replicaAdaptiveCfg(), 48, 4, 20)
		if len(results) != 2 {
			t.Fatalf("cycle %d: %d ranks reported", cycle, len(results))
		}
		checkRMAValues(t, results, 48)
		for r, res := range results {
			if res.lost != 0 {
				t.Errorf("cycle %d: rank %d lost %d rows", cycle, r, res.lost)
			}
		}
		if leaked != 0 {
			t.Errorf("cycle %d: %d deposits leaked", cycle, leaked)
		}
	}
}

// TestReplicaSyncPSCWCrashDeterminism mirrors the fence determinism suite
// under pairwise sync: the pairwise adoption protocol must make recovery
// independent of physical scheduling.
func TestReplicaSyncPSCWCrashDeterminism(t *testing.T) {
	run := func() map[int]*rmaResult {
		spec := cluster.Uniform(4)
		spec.Faults = []fault.Fault{fault.CrashAtCycle(2, 7)}
		results, _ := runRMAMini(t, spec, replicaRMACfg(), 64, 4, 15)
		return results
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("survivor sets differ: %d vs %d", len(a), len(b))
	}
	for r, ra := range a {
		rb := b[r]
		if rb == nil || ra.final != rb.final {
			t.Errorf("rank %d finish differs across runs: %v vs %v", r, ra.final, rb)
		}
	}
}

// sumRedistBytes totals the directional redistribution byte counters over
// every rank's redist-end events.
func sumRedistBytes(events map[int][]Event) (sent, recv, legacy int64) {
	for _, evs := range events {
		for _, ev := range evs {
			if ev.Kind != EvRedistEnd {
				continue
			}
			sent += ev.BytesSent
			recv += ev.BytesRecv
			legacy += ev.Bytes
		}
	}
	return
}

// TestRedistBytesConservation pins the accounting bugfix: on fault-free
// runs every redistributed payload is exactly one rank's send and another
// rank's receive, so the directional sums must match globally — and the
// legacy Bytes field must be their sum (the double-counting the old single
// counter hid when summed across ranks).
func TestRedistBytesConservation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func() Config
	}{
		{"blocking", func() Config {
			cfg := DefaultConfig()
			cfg.Drop = DropNever
			cfg.RedistMode = RedistBlocking
			return cfg
		}},
		{"pipelined", func() Config {
			cfg := DefaultConfig()
			cfg.Drop = DropNever
			return cfg
		}},
		{"rma", func() Config {
			cfg := DefaultConfig()
			cfg.Drop = DropNever
			cfg.RedistMode = RedistRMA
			return cfg
		}},
	} {
		spec := cpAtCycle(cluster.Uniform(4), 1, 3)
		results, _ := runRMAMini(t, spec, tc.cfg(), 64, 4, 25)
		events := map[int][]Event{}
		redists := 0
		for r, res := range results {
			events[r] = res.events
			redists = res.redists
		}
		if redists == 0 {
			t.Fatalf("%s: no redistribution; suite is vacuous", tc.name)
		}
		sent, recv, legacy := sumRedistBytes(events)
		if sent == 0 {
			t.Fatalf("%s: zero bytes sent", tc.name)
		}
		if sent != recv {
			t.Errorf("%s: Σ sent %d != Σ recv %d", tc.name, sent, recv)
		}
		if legacy != sent+recv {
			t.Errorf("%s: legacy Bytes sum %d != sent+recv %d", tc.name, legacy, sent+recv)
		}
	}
}

// TestRedistBytesConservationOnGrow extends the conservation invariant
// through a grow: the joiner-fetch path (Get under PSCW) must account its
// pulls as receives that exactly match the sources' packed sends.
func TestRedistBytesConservationOnGrow(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode RedistMode
	}{
		{"pipelined", RedistPipelined},
		{"rma", RedistRMA},
	} {
		cfg := DefaultConfig()
		cfg.Drop = DropNever
		cfg.RedistMode = tc.mode
		spec := cluster.Uniform(4).WithArrival(1.0, 10).WithArrival(1.0, 10)
		results := runElastic(t, spec, cfg, 64, 30, 0, 0)
		checkValuesAndCoverage(t, results, 64)
		if len(results) != 6 {
			t.Fatalf("%s: %d ranks reported, want 6", tc.name, len(results))
		}
		events := map[int][]Event{}
		for r, res := range results {
			events[r] = res.events
		}
		sent, recv, _ := sumRedistBytes(events)
		if sent == 0 {
			t.Fatalf("%s: zero bytes sent", tc.name)
		}
		if sent != recv {
			t.Errorf("%s: Σ sent %d != Σ recv %d across the grow", tc.name, sent, recv)
		}
	}
}

// TestReplicaSyncPSCWLargeRing runs the pairwise refresh on a wider ring
// (12 ranks) with a crash, making sure the pairwise failure observation —
// only the dead rank's ring neighbours see an error mid-refresh — still
// converges to a global recovery with exact values.
func TestReplicaSyncPSCWLargeRing(t *testing.T) {
	spec := cluster.Uniform(12)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(7, 5)}
	results, leaked := runRMAMini(t, spec, replicaRMACfg(), 144, 4, 16)
	if len(results) != 11 {
		t.Fatalf("%d ranks reported, want the 11 survivors", len(results))
	}
	checkRMAValues(t, results, 144)
	for r, res := range results {
		if res.lost != 0 {
			t.Errorf("rank %d lost %d rows", r, res.lost)
		}
	}
	if leaked != 0 {
		t.Fatalf("%d deposits leaked", leaked)
	}
}
