// Package core implements the Dyn-MPI runtime system — the paper's primary
// contribution. It extends the message-passing substrate with:
//
//   - registration of redistributable dense and sparse arrays (§2.2, §4.1),
//   - phases with deferred regular section descriptors describing every
//     array reference in the partitioned loop (§2.2),
//   - per-cycle load monitoring and grace-period timing (§4.2),
//   - automatic selection of a new data distribution via successive
//     balancing (§4.3) and its execution (§4.4), and
//   - physical (and logical) removal of nodes whose participation degrades
//     performance, with relative ranks and send-out-only collectives (§4.4).
//
// The programming model mirrors Figure 2 of the paper: the application
// registers its arrays and accesses once, then asks the runtime for its
// loop bounds every phase cycle, brackets each cycle with BeginCycle and
// EndCycle, and communicates using relative ranks.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/distribution"
	"repro/internal/drsd"
	"repro/internal/loadmon"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/timing"
	"repro/internal/vclock"
)

// Method selects the distribution algorithm.
type Method int

const (
	// SuccessiveBalancing is the paper's algorithm (§4.3), the default.
	SuccessiveBalancing Method = iota
	// RelativePower is the naive baseline from prior work [2].
	RelativePower
)

// DropPolicy controls node removal.
type DropPolicy int

const (
	// DropAuto applies the paper's §4.4 decision: after the
	// post-redistribution grace period, drop the loaded nodes if the
	// predicted unloaded-only configuration beats the measured times.
	DropAuto DropPolicy = iota
	// DropNever disables node removal.
	DropNever
	// DropAlways physically removes every loaded node at the
	// redistribution point (used by the Figure 6 "Drop" experiments).
	DropAlways
	// DropLogical is the §2.2 alternative to physical dropping: loaded
	// nodes stay in the computation with a minimum assignment (one
	// iteration), so ranks remain static but the nodes keep slowing down
	// communication.
	DropLogical
)

// Reserved tag space: user tags must stay below tagBase.
const (
	tagBase       = 1 << 20
	tagRedist     = tagBase // + array registration index
	tagGlobal     = tagBase + 512
	tagDone       = tagBase + 513
	tagPing       = tagBase + 514
	tagLoadReply  = tagBase + 515
	tagRejoin     = tagBase + 516
	tagBootstrap  = tagBase + 517  // joiner bootstrap packet (resize.go)
	tagReplica    = tagBase + 1024 // + array registration index (buddy-replica refresh)
	tagRecover    = tagBase + 1536 // + array registration index (failure recovery)
	tagRedistSync = tagBase + 2048 // + array registration index (RMA commit marker sync)
	tagAdaptive   = tagBase + 2560 // + array registration index (adaptive paired replica slab)
)

// Config parameterises the runtime (the DMPI_init arguments plus the
// tuning knobs the paper fixes at defaults).
type Config struct {
	// Adapt enables the Dyn-MPI machinery. False reproduces a plain MPI
	// program: no monitoring, no redistribution, no overhead.
	Adapt bool
	// Method selects successive balancing (default) or relative power.
	Method Method
	// Drop selects the node-removal policy.
	Drop DropPolicy
	// GracePeriod is the number of phase cycles measured after a load
	// change before redistributing (paper default 5).
	GracePeriod int
	// PostRedistGrace is the number of cycles monitored after a
	// redistribution before the drop decision (paper default 10).
	PostRedistGrace int
	// MaxRedists caps the number of redistributions (0 = unlimited). The
	// Figure 5 "Redist Once" configuration uses 1.
	MaxRedists int
	// Model is the pair model for successive balancing; nil selects the
	// analytic model.
	Model distribution.PairModel
	// Alloc selects the dense allocation scheme (Projection by default;
	// Contiguous reproduces the baseline of the §4.1 comparison).
	Alloc matrix.Alloc
	// AllowRejoin enables re-addition of physically removed nodes once
	// their competing processes vanish (the capability §2.2 mentions and
	// the paper leaves to future work). Removed nodes are polled once per
	// phase cycle by the send-out root; a rejoin rebuilds the group and
	// redistributes. With rejoin enabled the send-out root itself is never
	// dropped, so removed nodes always have a live, fixed contact.
	AllowRejoin bool
	// Replicate enables buddy replication of dense arrays: each rank ships
	// a copy of its owned rows to its ring successor in the current
	// distribution at every (re)distribution point, so a crashed rank's rows
	// can be reconstructed during failure recovery instead of being declared
	// lost. Sparse arrays are never replicated.
	Replicate bool
	// ReplicaEvery additionally refreshes replicas every N phase cycles
	// (0 = only at distribution points). A replica restores the state it
	// captured, so a smaller interval means fresher recovered data.
	ReplicaEvery int
	// ReplicaRMA switches the replica refresh from paired send/recv to
	// one-sided Puts into the buddy's replica window with a deferred
	// epoch-closing fence (rma.go): the holder no longer stalls in a
	// paired receive during the refresh cycle, because the epoch opened at
	// one refresh point is not settled until the next one — a full cycle of
	// computation hides the wire. Recovery content is identical to the
	// paired path at the same ReplicaEvery staleness.
	ReplicaRMA bool
	// ReplicaSync selects how an RMA replica refresh synchronises its
	// epochs (only meaningful with ReplicaRMA). The zero value SyncPSCW is
	// the pairwise post/start/complete/wait protocol: each (holder, buddy)
	// pair settles with two 8-byte control messages instead of the legacy
	// full-group fence, whose dissemination barrier is what made 256-rank
	// makespan tick up even as stall vanished. SyncFence keeps the legacy
	// fence path; SyncAdaptive picks paired-p2p vs deferred-Put transport
	// per refresh from the measured cycle/wire ratio (see rma.go).
	ReplicaSync ReplicaSyncMode
	// RedistMode selects how redistribution Phase 3 drains incoming slabs
	// (see the constants; the zero value RedistPipelined keeps virtual
	// timing byte-identical to the legacy blocking drain).
	RedistMode RedistMode
	// Telemetry, when non-nil, receives a structured record for every
	// adaptation action: per-cycle iteration breakdowns, distribution
	// decisions with the candidates considered, redistribution volumes and
	// membership changes. The sink is shared by all ranks and must be safe
	// for concurrent use. Nil (the default) skips all emission.
	Telemetry telemetry.Sink
	// Pacer, when non-nil, gates every rank at the top of each BeginCycle
	// (see Pacer and WorldGate in step.go). It is shared by all ranks and
	// must be safe for concurrent use. Pacing affects wall-clock scheduling
	// only — virtual time, telemetry and results are byte-identical to an
	// unpaced run. Nil (the default) runs the world freely.
	Pacer Pacer
}

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() Config {
	return Config{
		Adapt:           true,
		Method:          SuccessiveBalancing,
		Drop:            DropAuto,
		GracePeriod:     timing.DefaultGracePeriod,
		PostRedistGrace: timing.DefaultPostRedistGrace,
		Alloc:           matrix.Projection,
	}
}

// ReplicaSyncMode selects the epoch synchronisation of the one-sided
// replica refresh (Config.ReplicaSync, only with ReplicaRMA).
type ReplicaSyncMode int

const (
	// SyncPSCW (default): pairwise general active-target sync. Each rank
	// posts its windows to its ring predecessor, starts toward its
	// successor, Puts its slab, completes, and waits — two 8-byte control
	// messages per pair per refresh, O(1) in the group size, against the
	// fence's ceil(log2 n) dissemination rounds paid by every member. Same
	// deferred-epoch staleness and bit-identical recovery content as the
	// fence path.
	SyncPSCW ReplicaSyncMode = iota
	// SyncFence is the legacy full-group fence synchronisation (PR 7's
	// shape), kept as the equivalence oracle and for measuring the barrier
	// cost the pairwise protocol removes.
	SyncFence
	// SyncAdaptive runs the PSCW handshake every refresh but lets each
	// holder choose, per pair, between the deferred one-sided Put (wire
	// hidden behind the next cycle) and an immediate paired send/recv
	// (fresher replica) from its measured cycle/wire ratio; the verdict
	// travels in-band on the post notification, so both ends of a pair
	// agree without any global agreement step.
	SyncAdaptive
)

// RedistMode selects the Phase 3 drain strategy of applyDistribution.
type RedistMode int

const (
	// RedistPipelined (default): post all Irecvs up front, Isend the
	// outgoing slabs, harvest completions physically with Waitany, then
	// commit in deterministic schedule order with replay-priced Waits.
	// Virtual clocks, golden traces and checksums are byte-identical to
	// RedistBlocking; only the simulator's wall-clock behaviour changes
	// (senders fill posted requests directly and the receiver parks once
	// per arrival instead of once per in-order transfer).
	RedistPipelined RedistMode = iota
	// RedistBlocking is the legacy serial drain: one blocking RecvErr per
	// transfer, in schedule order. Kept as the equivalence oracle the
	// randomized-order suite compares against.
	RedistBlocking
	// RedistOverlap commits in deterministic arrival order — transfers
	// sorted by (arrival stamp, schedule index), dead-sender transfers
	// last — so a slab stuck behind a slow sender no longer head-of-line
	// blocks the unpacking of already-arrived ones. Virtual redistribution
	// stall drops (Event.Stall records it); the virtual timeline
	// legitimately differs from the blocking one, so this mode is opt-in.
	RedistOverlap
	// RedistRMA commits dense transfers through one-sided windows
	// (rma.go): after the resident windows resize, each receiver exposes
	// its new window and senders Put packed row slabs directly at
	// destination offsets computed from the schedule, collapsing the
	// Phase-3 harvest/commit into a fence. The receiver pays no per-message
	// CPU and no commit touches (the deposit is a modelled DMA); sparse
	// arrays fall back to the blocking drain. Opt-in, like RedistOverlap.
	RedistRMA
)

type adaptState int

const (
	stNormal adaptState = iota
	stGrace
	stPost
)

// regArray is one registered redistributable array.
type regArray struct {
	name     string
	dense    *matrix.Dense
	sparse   *matrix.Sparse
	accesses []drsd.Access
	index    int // tag offset
}

// EventKind labels trace events.
type EventKind int

const (
	EvLoadChange EventKind = iota
	EvRedistStart
	EvRedistEnd
	EvDrop
	EvLogicalDrop
	EvRemoved
	EvRejoin
	EvFailure
	EvResize
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvLoadChange:
		return "load-change"
	case EvRedistStart:
		return "redist-start"
	case EvRedistEnd:
		return "redist-end"
	case EvDrop:
		return "drop"
	case EvLogicalDrop:
		return "logical-drop"
	case EvRemoved:
		return "removed"
	case EvRejoin:
		return "rejoin"
	case EvFailure:
		return "failure"
	case EvResize:
		return "resize"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the runtime's adaptation trace, used by the
// experiment harness to reconstruct execution breakdowns (Figure 5).
type Event struct {
	Kind  EventKind
	Cycle int
	Time  vclock.Time
	Bytes int64 // payload moved, sent + received (redist-end)
	// BytesSent/BytesRecv split Bytes by direction (redist-end): summing
	// Bytes across ranks double-counts every transfer (each payload is one
	// rank's send and another's receive), so cross-rank aggregation must
	// use one direction — fault-free, Σ BytesSent == Σ BytesRecv.
	BytesSent int64
	BytesRecv int64
	Counts    []int // iterations per active node (redist-end)
	// Stall is the receive-side stall of the redistribution (redist-end):
	// virtual time this rank's clock jumped forward waiting for slab
	// arrivals. RedistOverlap exists to shrink it; the experiment harness
	// compares it across drain modes.
	Stall vclock.Duration
	Info  string
}

// Runtime is one rank's Dyn-MPI runtime instance.
type Runtime struct {
	comm *mpi.Comm
	node *cluster.Node
	cfg  Config

	n      int // distributed iteration space size
	phases []*Phase
	arrays map[string]*regArray
	order  []string // array names in registration order

	active  []int // active world ranks in relative-rank order
	removed []int // removed world ranks
	group   *mpi.Group
	isOut   bool // this rank has been physically removed
	dist    *drsd.Block
	monitor *loadmon.Monitor

	committed  bool
	cycle      int
	state      adaptState
	baseLoads  []int // load vector underlying the current distribution
	graceLoads []int
	collector  *timing.Collector
	cycTimer   *timing.CycleTimer
	cycOpen    bool
	iterCosts  []float64 // latest global per-iteration estimates
	commCPU    float64   // measured per-node per-cycle comm CPU (s)
	commWire   float64   // estimated per-node per-cycle wire time (s)
	redists    int

	graceMsgs0   int64 // counter snapshots at grace start
	graceBytes0  int64
	graceHidden0 vclock.Duration // hidden-wire counter at grace start
	graceStart   vclock.Time

	events []Event

	// Resize state (resize.go).
	joined        bool  // this rank spawned mid-run; membership arrives in the bootstrap packet
	skipPaceOnce  bool  // joiner's first BeginCycle: the wave it joins was already released
	skipAdaptOnce bool  // joiner's first BeginCycle: actives already ran this cycle's adapt step
	pendingResize int   // explicit Resize target (0 = none), consumed at the next cycle boundary
	hasArrivals   bool  // the cluster declares arrival capacity (cached)
	claimed       []int // arrival ranks claimed so far, in claim order (identical on every rank)
	resizedOut    []int // ranks removed by explicit shrink; excluded from automatic rejoin

	// Failure state (failure.go).
	pendingDead   []int               // dead ranks detected, recovery not yet run
	deadRanks     []int               // every dead rank absorbed so far
	lost          []LostRange         // rows declared lost by failure recovery
	lostRows      int                 // total rows lost
	recoveredRows int                 // total rows reconstructed from replicas
	replicas      map[string]*replica // predecessor's rows, per dense array
	replicaStall  vclock.Duration     // receive-side stall accumulated by refreshes

	// One-sided replica/redistribution state (rma.go).
	repWins     map[string]*mpi.Win // replica window per dense array
	repRanks    []int               // replica-group member list at the last open
	repPrev     int                 // ring predecessor at the last open (world rank)
	repNext     int                 // ring successor at the last open (world rank)
	repOpen     bool                // a replica epoch is open (deposits or handshake pending)
	repPend     map[string]repRange // range Put into this rank's window this epoch
	repDirect   bool                // adaptive: this epoch's incoming slabs arrived paired (already committed)
	repMark     vclock.Time         // adaptive: clock at the END of the last refresh
	repMarked   bool                // adaptive: repMark holds a real previous refresh
	repSpan     vclock.Duration     // adaptive: compute window between the last two refreshes
	repSpanOK   bool                // adaptive: repSpan is a real measurement
	adaptPut    int                 // adaptive refreshes that chose the deferred one-sided Put
	adaptSend   int                 // adaptive refreshes that chose the immediate paired send
	fetchWins   map[string]*mpi.Win // joiner-fetch window per dense array (Get under PSCW)
	fetchGroup  *mpi.Group          // group the fetch windows span
	redistWins  map[string]*mpi.Win // redistribution window per dense array
	redistGroup *mpi.Group          // group the redistribution windows span

	// Redistribution scratch, reused across applyDistribution calls so a
	// steady stream of redistributions performs no per-call allocation for
	// schedules or bookkeeping (see redist.go for the slab pool invariants).
	schedBuf     []drsd.Transfer
	restBuf      []drsd.Transfer // schedule minus joiner-fetch transfers
	destBuf      []int
	outsBuf      []redistOut
	fetchOutsBuf []redistOut // joiner-bound outgoing transfers (pulled, not pushed)
	fetchBuf     []float64   // packed joiner-bound slabs a fetch window exposes
	insBuf       []redistIn
	reqBuf       []*mpi.Request
	ordBuf       []int

	// Load-exchange scratch: the per-cycle allgather of load readings goes
	// through the pooled float64 collective when no removed-node sidecar is
	// in flight, and these buffers keep that exchange allocation-free. Every
	// consumer of the returned load vector copies it before retaining.
	loadBuf  []float64
	loadInts []int

	// Telemetry state (sink == nil disables everything).
	sink       telemetry.Sink
	stamper    *telemetry.Stamper
	cycVT0     vclock.Time     // cycle-start wall clock
	cycCPU0    vclock.Duration // cycle-start application CPU time
	cycMsgs0   int64           // cycle-start message counter
	cycBytes0  int64           // cycle-start byte counter
	cycHidden0 vclock.Duration // cycle-start hidden-wire counter
	cycLoad    int             // this rank's load observed this cycle
}

// New creates the runtime for this rank (DMPI_init). All ranks of the
// world participate initially.
func New(comm *mpi.Comm, cfg Config) *Runtime {
	if cfg.GracePeriod <= 0 {
		cfg.GracePeriod = timing.DefaultGracePeriod
	}
	if cfg.PostRedistGrace <= 0 {
		cfg.PostRedistGrace = timing.DefaultPostRedistGrace
	}
	active := make([]int, comm.Size())
	for i := range active {
		active[i] = i
	}
	rt := &Runtime{
		comm:    comm,
		node:    comm.Node(),
		cfg:     cfg,
		arrays:  make(map[string]*regArray),
		active:  active,
		group:   comm.World().AllGroup(),
		monitor: loadmon.New(comm.Node()),
	}
	rt.hasArrivals = comm.World().Cluster().HasArrivals()
	if comm.Spawned() {
		// A joiner: the true membership, cycle and distribution arrive in
		// the bootstrap packet when the application commits (resize.go).
		rt.joined = true
		rt.skipPaceOnce = true
		rt.skipAdaptOnce = true
		rt.active = nil
		rt.group = nil
	}
	if cfg.Telemetry != nil {
		rt.sink = cfg.Telemetry
		rt.stamper = telemetry.NewStamper(comm.Rank())
		rt.monitor.Attach(rt.sink, rt.stamper, func() int { return rt.cycle })
		rt.node.AttachTelemetry(rt.sink, rt.stamper)
	}
	return rt
}

// Comm exposes the underlying communicator (world ranks).
func (rt *Runtime) Comm() *mpi.Comm { return rt.comm }

// Node exposes the cluster node this rank runs on.
func (rt *Runtime) Node() *cluster.Node { return rt.node }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// RegisterDense registers a redistributable dense array
// (DMPI_register_dense_array). rowLen is the extended-row length: the
// product of the non-distributed dimensions. rows must equal the phase
// iteration space.
func (rt *Runtime) RegisterDense(name string, rows, rowLen int) *matrix.Dense {
	rt.checkRegistration(name, rows)
	d := matrix.NewDense(name, rows, rowLen, rt.cfg.Alloc, rt.node)
	rt.arrays[name] = &regArray{name: name, dense: d, index: len(rt.order)}
	rt.order = append(rt.order, name)
	return d
}

// RegisterSparse registers a redistributable sparse array
// (DMPI_register_sparse_array) in the vector-of-lists format.
func (rt *Runtime) RegisterSparse(name string, rows int) *matrix.Sparse {
	rt.checkRegistration(name, rows)
	s := matrix.NewSparse(name, rows, rt.node)
	rt.arrays[name] = &regArray{name: name, sparse: s, index: len(rt.order)}
	rt.order = append(rt.order, name)
	return s
}

func (rt *Runtime) checkRegistration(name string, rows int) {
	if rt.committed {
		panic("core: arrays must be registered before the first cycle")
	}
	if _, dup := rt.arrays[name]; dup {
		panic(fmt.Sprintf("core: array %q registered twice", name))
	}
	if rt.n != 0 && rows != rt.n {
		panic(fmt.Sprintf("core: array %q has %d rows, phase space is %d", name, rows, rt.n))
	}
	if rt.n == 0 {
		rt.n = rows
	}
}

// Phase is one computation/communication section of the phase cycle
// (DMPI_init_phase). All phases share the runtime's distribution.
type Phase struct {
	rt       *Runtime
	accesses []drsd.Access
}

// InitPhase declares a phase over the distributed iteration space [0,n)
// (DMPI_init_phase). All phases of a runtime must agree on n.
func (rt *Runtime) InitPhase(n int) *Phase {
	if rt.committed {
		panic("core: phases must be declared before the first cycle")
	}
	if rt.n != 0 && n != rt.n {
		panic(fmt.Sprintf("core: phase over %d iterations, space is %d", n, rt.n))
	}
	rt.n = n
	ph := &Phase{rt: rt}
	rt.phases = append(rt.phases, ph)
	return ph
}

// AddAccess declares one array reference of the phase's partitioned loop
// (DMPI_add_array_access): array[i*step + off] for loop variable i.
func (ph *Phase) AddAccess(array string, mode drsd.Mode, step, off int) {
	if ph.rt.committed {
		panic("core: accesses must be declared before the first cycle")
	}
	a, ok := ph.rt.arrays[array]
	if !ok {
		panic(fmt.Sprintf("core: access to unregistered array %q", array))
	}
	acc := drsd.Access{Array: array, Mode: mode, Step: step, Off: off}
	ph.accesses = append(ph.accesses, acc)
	a.accesses = append(a.accesses, acc)
}

// Bounds returns this rank's current iteration range [lo,hi)
// (DMPI_get_start_iter / DMPI_get_end_iter, half-open in Go style).
func (ph *Phase) Bounds() (lo, hi int) {
	ph.rt.ensureCommitted()
	return ph.rt.dist.RangeOf(ph.rt.comm.Rank())
}

// Participating reports whether this rank is part of the computation
// (DMPI_participating). It is false after physical removal.
func (rt *Runtime) Participating() bool { return !rt.isOut }

// Joined reports whether this rank spawned mid-run (elastic growth). A
// joined rank's application must start its cycle loop at Cycle() instead of
// zero and skip its initial array fill — the bootstrap redistribution
// already shipped it current data (resize.go).
func (rt *Runtime) Joined() bool { return rt.joined }

// Cycle reports the phase cycle the next BeginCycle will open. Joiners read
// it after Commit to find the cycle the world is at.
func (rt *Runtime) Cycle() int { return rt.cycle }

// RelRank returns this rank's relative rank among active nodes
// (DMPI_get_rel_rank), or -1 if removed.
func (rt *Runtime) RelRank() int {
	for i, r := range rt.active {
		if r == rt.comm.Rank() {
			return i
		}
	}
	return -1
}

// NumActive reports the number of participating nodes (DMPI_get_num_active).
func (rt *Runtime) NumActive() int { return len(rt.active) }

// WorldRankOf maps a relative rank to a world rank.
func (rt *Runtime) WorldRankOf(rel int) int { return rt.active[rel] }

// SendRel sends to a relative rank (DMPI_Send).
func (rt *Runtime) SendRel(relDst, tag int, payload any, bytes int) {
	if tag >= tagBase {
		panic("core: user tag collides with runtime tag space")
	}
	rt.comm.Send(rt.active[relDst], tag, payload, bytes)
}

// RecvRel receives from a relative rank (DMPI_Recv).
func (rt *Runtime) RecvRel(relSrc, tag int) (any, mpi.Status) {
	if tag >= tagBase {
		panic("core: user tag collides with runtime tag space")
	}
	return rt.comm.Recv(rt.active[relSrc], tag)
}

// RecvRelF64s receives a []float64 from a relative rank.
func (rt *Runtime) RecvRelF64s(relSrc, tag int) ([]float64, mpi.Status) {
	p, st := rt.RecvRel(relSrc, tag)
	return p.([]float64), st
}

// Compute charges unattributed computation (reference cost) to this node.
func (rt *Runtime) Compute(cost vclock.Duration) { rt.node.Compute(cost) }

// ComputeIter charges the computation of global iteration g, feeding the
// grace-period collector when one is active. Applications call this once
// per iteration of the partitioned loop.
func (rt *Runtime) ComputeIter(g int, cost vclock.Duration) {
	if rt.collector != nil {
		rt.collector.BeginIter()
		rt.node.Compute(cost)
		rt.collector.EndIter(g)
		return
	}
	rt.node.Compute(cost)
}

// Dist exposes the current distribution (for tests and the harness).
func (rt *Runtime) Dist() *drsd.Block { return rt.dist }

// Events returns the adaptation trace recorded by this rank.
func (rt *Runtime) Events() []Event { return rt.events }

// Redistributions reports how many redistributions have occurred.
func (rt *Runtime) Redistributions() int { return rt.redists }

func (rt *Runtime) record(kind EventKind, bytes int64, info string) {
	rt.events = append(rt.events, Event{
		Kind: kind, Cycle: rt.cycle, Time: rt.node.Now(), Bytes: bytes, Info: info,
	})
}

// stamp builds the common telemetry fields for a record emitted now. Only
// call when rt.sink != nil.
func (rt *Runtime) stamp(kind string) telemetry.Base {
	return rt.stamper.Stamp(kind, rt.cycle, rt.node.Now().Seconds())
}

// emitMembership reports a membership change (or logical drop) through the
// telemetry sink. The active list doubles as the relative-rank remap:
// relative rank i maps to world rank active[i].
func (rt *Runtime) emitMembership(change string) {
	if rt.sink == nil {
		return
	}
	rt.sink.Emit(telemetry.MembershipRecord{
		Base:    rt.stamp(telemetry.KindMembership),
		Change:  change,
		Active:  append([]int(nil), rt.active...),
		Removed: append([]int(nil), rt.removed...),
		Remap:   append([]int(nil), rt.active...),
	})
}

// beginCycleTelemetry snapshots the counters that EndCycle turns into an
// IterationRecord.
func (rt *Runtime) beginCycleTelemetry() {
	if rt.sink == nil {
		return
	}
	rt.cycVT0 = rt.node.Now()
	rt.cycCPU0 = rt.node.CPUTime()
	rt.cycMsgs0 = rt.comm.SentMsgs + rt.comm.RecvMsgs
	rt.cycBytes0 = rt.comm.SentBytes + rt.comm.RecvBytes
	rt.cycHidden0 = rt.comm.HiddenWire
	rt.cycLoad = rt.node.CPCount()
}

// endCycleTelemetry emits the per-cycle IterationRecord: the cycle's wall
// time split into compute, communication CPU (reconstructed from traffic
// counters and the network cost model) and blocked wait, plus this rank's
// measured share of the iteration space.
func (rt *Runtime) endCycleTelemetry() {
	if rt.sink == nil {
		return
	}
	net := rt.comm.World().Cluster().Net()
	wall := rt.node.Now().Sub(rt.cycVT0).Seconds()
	cpu := (rt.node.CPUTime() - rt.cycCPU0).Seconds()
	msgs := float64(rt.comm.SentMsgs + rt.comm.RecvMsgs - rt.cycMsgs0)
	bytes := float64(rt.comm.SentBytes + rt.comm.RecvBytes - rt.cycBytes0)
	comm := msgs*net.CPUPerMsg.Seconds() + bytes*net.CPUPerByte/1e9
	compute := cpu - comm
	if compute < 0 {
		compute = 0
	}
	wait := wall - cpu
	if wait < 0 {
		wait = 0
	}
	share := 0
	if lo, hi := rt.dist.RangeOf(rt.comm.Rank()); hi > lo {
		share = hi - lo
	}
	rt.sink.Emit(telemetry.IterationRecord{
		Base:         rt.stamp(telemetry.KindIteration),
		ComputeS:     compute,
		CommS:        comm,
		WaitS:        wait,
		HiddenWireNs: int64(rt.comm.HiddenWire - rt.cycHidden0),
		Share:        share,
		Load:         rt.cycLoad,
	})
}

// ensureCommitted materialises the initial distribution and array windows.
func (rt *Runtime) ensureCommitted() {
	if rt.committed {
		return
	}
	if rt.n == 0 {
		panic("core: no phase declared")
	}
	rt.committed = true
	if rt.joined {
		rt.bootstrap()
		return
	}
	rt.dist = drsd.EqualBlock(rt.active, rt.n)
	for _, name := range rt.order {
		a := rt.arrays[name]
		lo, hi := rt.dist.RangeOf(rt.comm.Rank())
		wlo, whi := drsd.Window(a.accesses, lo, hi, rt.n)
		if a.dense != nil {
			a.dense.SetWindow(wlo, whi)
		} else {
			a.sparse.SetWindow(wlo, whi)
		}
	}
	rt.baseLoads = make([]int, len(rt.active))
	rt.refreshReplicasNow()
}

// Commit forces initialisation before the first cycle so the application
// can fill its arrays (windows exist after this call).
func (rt *Runtime) Commit() { rt.ensureCommitted() }

func (rt *Runtime) powers() []float64 {
	return rt.comm.World().Cluster().Powers()
}

// nodesFromLoads builds the balancer's view of the active nodes.
func (rt *Runtime) nodesFromLoads(loads []int) []distribution.Node {
	powers := rt.powers()
	nodes := make([]distribution.Node, len(rt.active))
	for i, r := range rt.active {
		nodes[i] = distribution.Node{Rank: r, Power: powers[r], Load: loads[i]}
	}
	return nodes
}

// sortedArrayNames returns registration order (stable across ranks).
func (rt *Runtime) sortedArrayNames() []string {
	out := append([]string(nil), rt.order...)
	sort.Strings(out)
	return out
}
