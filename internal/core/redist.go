package core

import (
	"fmt"

	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/telemetry"
)

// applyDistribution executes a redistribution to newDist (§4.4): for every
// registered array each node (1) determines ownership from the DRSDs,
// (2) extracts rows that leave it, (3) resizes its resident window —
// deallocating unneeded memory, allocating new, updating pointers for data
// that stays — and (4) exchanges exactly the rows the schedule demands.
// All active ranks call this collectively with identical arguments.
func (rt *Runtime) applyDistribution(newDist *drsd.Block) {
	rt.record(EvRedistStart, 0, "")
	me := rt.comm.Rank()
	var bytesMoved int64
	var moves []telemetry.ArrayMove

	for _, name := range rt.order {
		a := rt.arrays[name]
		sched := drsd.ScheduleWindows(rt.dist, newDist, a.accesses)
		tag := tagRedist + a.index

		// Phase 1: extract outgoing payloads before the window changes.
		nlo, nhi := newDist.RangeOf(me)
		wlo, whi := drsd.Window(a.accesses, nlo, nhi, rt.n)
		type outMsg struct {
			to    int
			dense [][]float64
			spars []matrix.PackedRow
			lo    int
			bytes int
		}
		var outs []outMsg
		// Destination multiplicity lets a row that leaves this node be
		// moved (zero copy) to its final single destination.
		destCount := map[int]int{}
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			for g := tr.Lo; g < tr.Hi; g++ {
				destCount[g]++
			}
		}
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			m := outMsg{to: tr.To, lo: tr.Lo}
			for g := tr.Lo; g < tr.Hi; g++ {
				if a.dense != nil {
					keep := g >= wlo && g < whi
					destCount[g]--
					var row []float64
					if keep || destCount[g] > 0 {
						row = make([]float64, a.dense.RowLen)
						copy(row, a.dense.Row(g))
						rt.node.ChargeTouch(a.dense.RowBytes())
					} else {
						row = a.dense.TakeRow(g)
					}
					m.dense = append(m.dense, row)
					m.bytes += int(a.dense.RowBytes())
				} else {
					p := a.sparse.PackRow(g)
					m.spars = append(m.spars, p)
					m.bytes += p.WireBytes()
				}
			}
			outs = append(outs, m)
		}

		// Phase 2: resize the resident window (reuses retained rows; the
		// allocation scheme determines the cost).
		if a.dense != nil {
			a.dense.SetWindow(wlo, whi)
		} else {
			a.sparse.SetWindow(wlo, whi)
		}

		// Phase 3: ship outgoing rows (eager sends never block) and then
		// receive incoming rows in deterministic schedule order.
		mv := telemetry.ArrayMove{Name: name}
		for _, m := range outs {
			if m.dense != nil {
				rt.comm.Send(m.to, tag, m.dense, m.bytes)
				mv.Rows += len(m.dense)
			} else {
				rt.comm.Send(m.to, tag, m.spars, m.bytes)
				mv.Rows += len(m.spars)
			}
			mv.Bytes += int64(m.bytes)
			bytesMoved += int64(m.bytes)
		}
		if rt.sink != nil && (mv.Rows > 0 || mv.Bytes > 0) {
			moves = append(moves, mv)
		}
		for _, tr := range sched {
			if tr.To != me {
				continue
			}
			payload, st := rt.comm.Recv(tr.From, tag)
			bytesMoved += int64(st.Bytes)
			if a.dense != nil {
				rows, ok := payload.([][]float64)
				if !ok || len(rows) != tr.Hi-tr.Lo {
					panic(fmt.Sprintf("core: bad dense redistribution payload for %q", name))
				}
				for i, row := range rows {
					a.dense.PutRow(tr.Lo+i, row)
				}
			} else {
				rows, ok := payload.([]matrix.PackedRow)
				if !ok || len(rows) != tr.Hi-tr.Lo {
					panic(fmt.Sprintf("core: bad sparse redistribution payload for %q", name))
				}
				for i, p := range rows {
					a.sparse.UnpackRow(tr.Lo+i, p)
				}
			}
		}
	}

	rt.dist = newDist
	rt.comm.Barrier(rt.group)
	rt.events = append(rt.events, Event{
		Kind: EvRedistEnd, Cycle: rt.cycle, Time: rt.node.Now(),
		Bytes: bytesMoved, Counts: newDist.Counts(),
	})
	if rt.sink != nil {
		rows, sent := 0, int64(0)
		for _, mv := range moves {
			rows += mv.Rows
			sent += mv.Bytes
		}
		rt.sink.Emit(telemetry.RedistRecord{
			Base:       rt.stamp(telemetry.KindRedist),
			Arrays:     moves,
			RowsSent:   rows,
			BytesSent:  sent,
			BytesMoved: bytesMoved,
			Counts:     newDist.Counts(),
		})
	}
}
