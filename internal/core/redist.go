package core

import (
	"fmt"
	"sync"

	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// redistDone marks an array whose Phase 3 was fully committed through the
// one-sided path (rma.go) — nothing left for the message-passing drains.
const redistDone RedistMode = -1

// commitSlab unpacks one received slab into a's resident window — charging
// the same virtual touches as the per-row formulation (PutRows/UnpackRows
// price every row) — and recycles the slab.
func (rt *Runtime) commitSlab(a *regArray, lo, hi int, payload any) {
	if a.dense != nil {
		slab, ok := payload.(*denseSlab)
		if !ok || slab.rows != hi-lo {
			panic(fmt.Sprintf("core: bad dense redistribution payload for %q", a.name))
		}
		a.dense.PutRows(lo, slab.data)
		putDenseSlab(slab)
	} else {
		slab, ok := payload.(*sparseSlab)
		if !ok || slab.p.Rows() != hi-lo {
			panic(fmt.Sprintf("core: bad sparse redistribution payload for %q", a.name))
		}
		a.sparse.UnpackRows(lo, &slab.p)
		putSparseSlab(slab)
	}
}

// Redistribution payloads travel as contiguous slabs — one allocation per
// (array, transfer) instead of one per row — recycled through process-wide
// pools.
//
// Pool invariants:
//
//   - Ownership travels with the message: the sender Gets a slab, packs it,
//     and Sends it; from that point the slab belongs to the receiver, which
//     Puts it back after unpacking. The sender never touches a slab after
//     Send, and nothing else may retain a reference into a slab's backing
//     storage (matrix.Dense.PutRows / Sparse.UnpackRows copy out of the
//     slab precisely so the window never aliases pooled memory).
//   - Slabs are resized with cap-preserving reslices, so steady-state
//     redistribution reaches a fixed point where Get returns buffers big
//     enough to need no growth: zero heap allocation per redistribution.
//   - All packing/unpacking is host-side batching only. The virtual costs
//     (ChargeTouch amounts and order, AdjustResident deltas, message bytes)
//     replicate the per-row formulation exactly, so golden traces are
//     byte-identical to the unbatched implementation.
var (
	denseSlabPool  = sync.Pool{New: func() any { return new(denseSlab) }}
	sparseSlabPool = sync.Pool{New: func() any { return new(sparseSlab) }}
)

// denseSlab is one dense transfer's rows, packed back to back.
type denseSlab struct {
	rows int
	data []float64
}

// sparseSlab is one sparse transfer's rows in batched packed form.
type sparseSlab struct {
	p matrix.PackedRows
}

func getDenseSlab(rows, rowLen int) *denseSlab {
	s := denseSlabPool.Get().(*denseSlab)
	n := rows * rowLen
	if cap(s.data) < n {
		s.data = make([]float64, n)
	} else {
		s.data = s.data[:n]
	}
	s.rows = rows
	return s
}

func putDenseSlab(s *denseSlab) {
	s.rows = 0
	denseSlabPool.Put(s)
}

func getSparseSlab() *sparseSlab {
	s := sparseSlabPool.Get().(*sparseSlab)
	s.p.Reset()
	return s
}

func putSparseSlab(s *sparseSlab) {
	sparseSlabPool.Put(s)
}

// redistOut is one outgoing transfer staged during the extraction phase.
// lo is the transfer's first global row — the RMA commit path derives the
// destination window offset from it.
type redistOut struct {
	to    int
	lo    int
	dense *denseSlab
	spars *sparseSlab
	rows  int
	bytes int
}

// redistIn is one incoming transfer staged by the nonblocking drain: the
// schedule row range and the posted receive. The payload stays inside the
// request until the deterministic commit loop waits on it — unpacking
// charges virtual time (PutRows/UnpackRows touch rows), so it must happen
// in commit order, never in physical arrival order.
type redistIn struct {
	lo, hi int
	req    *mpi.Request
}

// redistHarvestShuffle, when non-nil, replaces the Waitany harvest loop of
// the nonblocking drain: it receives the posted requests and must claim
// each exactly once, in any order it likes. The randomized-order
// equivalence suite uses it to force adversarial physical harvest orders
// and assert the committed result is unchanged. Test-only (set via
// export_test.go); nil in production.
var redistHarvestShuffle func(c *mpi.Comm, reqs []*mpi.Request)

// arrivalLess orders the overlap commit: arrived transfers by (arrival
// stamp, schedule index), dead-sender transfers (no arrival) last in
// schedule order. Both keys are virtual-time deterministic, so the commit
// order is too.
func arrivalLess(ins []redistIn, a, b int) bool {
	ta, oka := ins[a].req.Arrival()
	tb, okb := ins[b].req.Arrival()
	if oka != okb {
		return oka
	}
	if oka && ta != tb {
		return ta < tb
	}
	return a < b
}

// applyDistribution executes a redistribution to newDist (§4.4): for every
// registered array each node (1) determines ownership from the DRSDs,
// (2) extracts rows that leave it, (3) resizes its resident window —
// deallocating unneeded memory, allocating new, updating pointers for data
// that stays — and (4) exchanges exactly the rows the schedule demands.
// All active ranks call this collectively with identical arguments.
func (rt *Runtime) applyDistribution(newDist *drsd.Block) {
	if rt.cfg.ReplicaRMA {
		// Settle the replica epoch opened at the last refresh point before
		// any rows move: the group is intact here, so the fence succeeds and
		// the replicas commit at their pre-redistribution ranges.
		rt.closeReplicaEpoch()
	}
	rt.record(EvRedistStart, 0, "")
	me := rt.comm.Rank()
	var bytesSent, bytesRecv int64
	var moves []telemetry.ArrayMove
	if rt.sink != nil {
		moves = make([]telemetry.ArrayMove, 0, len(rt.order))
	}
	lost0 := rt.lostRows
	stall0 := rt.comm.RecvStall
	rmaDown := false // a fence failed: remaining arrays use the blocking drain
	olo, ohi := rt.dist.RangeOf(me)

	// Resized-in ranks own nothing under the old distribution; in RMA mode
	// their incoming dense transfers are pulled one-sided (Get under PSCW,
	// rmaFetchArray) instead of pushed, so established owners never stall
	// serving joiner state.
	var newcomer map[int]bool
	if rt.cfg.RedistMode == RedistRMA {
		old := rt.dist.Ranks()
		inOld := make(map[int]bool, len(old))
		for _, r := range old {
			inOld[r] = true
		}
		for _, r := range newDist.Ranks() {
			if !inOld[r] {
				if newcomer == nil {
					newcomer = map[int]bool{}
				}
				newcomer[r] = true
			}
		}
	}

	for _, name := range rt.order {
		a := rt.arrays[name]
		// Owned-only arrays take the resize-aware diff schedule: it emits
		// exactly the owner-changed contiguous windows ScheduleWindowsInto
		// would (byte-identical transfers, same order — gap coverage of an
		// ownership range degenerates to the ownership delta when no ghost
		// access widens the window), computed per-rank from the two block
		// boundaries instead of walking every access pattern.
		if drsd.OwnedOnly(a.accesses) {
			rt.schedBuf = drsd.ScheduleDiffInto(rt.schedBuf[:0], rt.dist, newDist)
		} else {
			rt.schedBuf = drsd.ScheduleWindowsInto(rt.schedBuf[:0], rt.dist, newDist, a.accesses)
		}
		sched := rt.schedBuf
		tag := tagRedist + a.index

		// Split off joiner-bound transfers: the fetch protocol moves them
		// before the push phase, and the push paths run on the remainder.
		// The split is schedule-derived, so every member computes it
		// identically (the fetch windows register collectively).
		rest := sched
		fetch := false
		if len(newcomer) > 0 && a.dense != nil && !rmaDown {
			for _, tr := range sched {
				if newcomer[tr.To] {
					fetch = true
					break
				}
			}
		}
		if fetch {
			rest = rt.restBuf[:0]
			for _, tr := range sched {
				if !newcomer[tr.To] {
					rest = append(rest, tr)
				}
			}
			rt.restBuf = rest
		}

		// Phase 1: extract outgoing payloads before the window changes.
		nlo, nhi := newDist.RangeOf(me)
		wlo, whi := drsd.Window(a.accesses, nlo, nhi, rt.n)
		// Destination multiplicity distinguishes a row's final destination
		// (a move: the row's storage leaves with it) from earlier ones (a
		// copy). Every transfer with From == me covers rows this rank owns
		// under the old distribution, so a flat slice indexed by row offset
		// into [olo,ohi) replaces the former map.
		if n := ohi - olo; cap(rt.destBuf) < n {
			rt.destBuf = make([]int, n)
		} else {
			rt.destBuf = rt.destBuf[:n]
		}
		destCount := rt.destBuf
		clear(destCount)
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			for g := tr.Lo; g < tr.Hi; g++ {
				destCount[g-olo]++
			}
		}
		outs := rt.outsBuf[:0]
		fetchOuts := rt.fetchOutsBuf[:0]
		fbuf := rt.fetchBuf[:0]
		if fetch {
			total := 0
			for _, tr := range sched {
				if tr.From == me && newcomer[tr.To] {
					total += (tr.Hi - tr.Lo) * a.dense.RowLen
				}
			}
			if cap(fbuf) < total {
				fbuf = make([]float64, total)
			} else {
				fbuf = fbuf[:total]
			}
		}
		foff := 0
		for _, tr := range sched {
			if tr.From != me {
				continue
			}
			m := redistOut{to: tr.To, lo: tr.Lo, rows: tr.Hi - tr.Lo}
			if fetch && newcomer[tr.To] {
				// Joiner-bound rows pack back to back into the buffer the
				// fetch window will expose — same extraction touches as a
				// pushed slab; the joiner derives the offsets from the same
				// schedule order.
				a.dense.CopyRowsTo(fbuf[foff:foff+m.rows*a.dense.RowLen], tr.Lo, tr.Hi)
				for g := tr.Lo; g < tr.Hi; g++ {
					keep := g >= wlo && g < whi
					destCount[g-olo]--
					if keep || destCount[g-olo] > 0 || a.dense.Scheme() == matrix.Contiguous {
						rt.node.ChargeTouch(a.dense.RowBytes())
					}
				}
				m.bytes = m.rows * int(a.dense.RowBytes())
				foff += m.rows * a.dense.RowLen
				fetchOuts = append(fetchOuts, m)
				continue
			}
			if a.dense != nil {
				slab := getDenseSlab(m.rows, a.dense.RowLen)
				a.dense.CopyRowsTo(slab.data, tr.Lo, tr.Hi)
				// Virtual cost per row, identical to the per-row path: a row
				// that stays resident here or still has further destinations
				// was copied out (one RowBytes touch); a leaving row's final
				// destination was a move — free under Projection, a charged
				// copy under Contiguous (TakeRow semantics).
				for g := tr.Lo; g < tr.Hi; g++ {
					keep := g >= wlo && g < whi
					destCount[g-olo]--
					if keep || destCount[g-olo] > 0 || a.dense.Scheme() == matrix.Contiguous {
						rt.node.ChargeTouch(a.dense.RowBytes())
					}
				}
				m.dense = slab
				m.bytes = m.rows * int(a.dense.RowBytes())
			} else {
				slab := getSparseSlab()
				a.sparse.PackRowsTo(&slab.p, tr.Lo, tr.Hi)
				m.spars = slab
				m.bytes = slab.p.WireBytes()
			}
			outs = append(outs, m)
		}
		rt.outsBuf = outs
		rt.fetchOutsBuf = fetchOuts
		rt.fetchBuf = fbuf

		// Phase 2: resize the resident window (reuses retained rows; the
		// allocation scheme determines the cost).
		if a.dense != nil {
			a.dense.SetWindow(wlo, whi)
		} else {
			a.sparse.SetWindow(wlo, whi)
		}

		// Phase 3: exchange exactly the rows the schedule demands. The
		// nonblocking drain (default) posts every Irecv before shipping, so
		// peers fill the posted requests directly and this rank parks once
		// per arrival instead of once per in-order transfer; the blocking
		// drain is the legacy oracle. Either way the commit — the only part
		// that advances virtual time — runs in a deterministic order.
		mv := telemetry.ArrayMove{Name: name}
		if fetch {
			// Joiner-bound transfers move first, one-sided: sources expose
			// their packed slabs, joiners pull with Get under PSCW. Every
			// member participates (the fetch windows register collectively).
			rt.rmaFetchArray(a, sched, newDist, newcomer, fetchOuts, fbuf, &mv, &bytesSent, &bytesRecv)
		}
		mode := rt.cfg.RedistMode
		if mode == RedistRMA {
			// One-sided commit for dense arrays while the windows are healthy;
			// sparse arrays — and every array after a fence failure — take the
			// blocking drain, whose failure handling is self-contained.
			committed := false
			if a.dense != nil && !rmaDown {
				var down bool
				committed, down = rt.rmaRedistArray(a, rest, newDist, outs, &mv, &bytesSent, &bytesRecv)
				if down {
					rmaDown = true
				}
			}
			if committed {
				mode = redistDone
			} else {
				mode = RedistBlocking
			}
		}
		if mode == RedistBlocking {
			for i := range outs {
				m := &outs[i]
				if m.dense != nil {
					rt.comm.Send(m.to, tag, m.dense, m.bytes)
					m.dense = nil
				} else {
					rt.comm.Send(m.to, tag, m.spars, m.bytes)
					m.spars = nil
				}
				mv.Rows += m.rows
				mv.Bytes += int64(m.bytes)
				bytesSent += int64(m.bytes)
			}
			for _, tr := range rest {
				if tr.To != me {
					continue
				}
				payload, st, err := rt.comm.RecvErr(tr.From, tag)
				if err != nil {
					// The sender died before shipping these rows. Record the
					// death and declare the rows lost; the recovery pass at the
					// next cycle boundary may still restore them from a replica.
					rt.absorbDead(rt.deadOf(err))
					rt.loseRows(a, tr.Lo, tr.Hi)
					continue
				}
				bytesRecv += int64(st.Bytes)
				rt.commitSlab(a, tr.Lo, tr.Hi, payload)
			}
		} else if mode != redistDone {
			// Post all Irecvs up front (no virtual charge).
			ins := rt.insBuf[:0]
			for _, tr := range rest {
				if tr.To != me {
					continue
				}
				ins = append(ins, redistIn{lo: tr.Lo, hi: tr.Hi, req: rt.comm.Irecv(tr.From, tag)})
			}
			rt.insBuf = ins
			// Isend the outgoing slabs: the same injection charges, in the
			// same order, as the blocking path's Sends. Send requests
			// complete at post; Waitall only recycles them.
			reqs := rt.reqBuf[:0]
			for i := range outs {
				m := &outs[i]
				if m.dense != nil {
					reqs = append(reqs, rt.comm.Isend(m.to, tag, m.dense, m.bytes))
					m.dense = nil
				} else {
					reqs = append(reqs, rt.comm.Isend(m.to, tag, m.spars, m.bytes))
					m.spars = nil
				}
				mv.Rows += m.rows
				mv.Bytes += int64(m.bytes)
				bytesSent += int64(m.bytes)
			}
			rt.comm.Waitall(reqs)
			// Harvest completions physically, in whatever order they
			// arrive. No clock moves here: Waitany only claims.
			reqs = reqs[:0]
			for k := range ins {
				reqs = append(reqs, ins[k].req)
			}
			rt.reqBuf = reqs
			if redistHarvestShuffle != nil {
				redistHarvestShuffle(rt.comm, reqs)
			} else {
				for range reqs {
					rt.comm.Waitany(reqs)
				}
			}
			// Commit deterministically. Pipelined replays the blocking
			// schedule order with replay-priced Waits — clocks, traces and
			// checksums stay byte-identical. Overlap commits in arrival
			// order, trading trace equivalence for lower stall.
			order := rt.ordBuf[:0]
			for k := range ins {
				order = append(order, k)
			}
			rt.ordBuf = order
			if rt.cfg.RedistMode == RedistOverlap {
				// Insertion sort by (arrival, schedule index): transfer
				// counts per array are small and the scratch is reused.
				for i := 1; i < len(order); i++ {
					for j := i; j > 0 && arrivalLess(ins, order[j], order[j-1]); j-- {
						order[j], order[j-1] = order[j-1], order[j]
					}
				}
			}
			for _, k := range order {
				in := &ins[k]
				var payload any
				var st mpi.Status
				var err error
				if rt.cfg.RedistMode == RedistOverlap {
					payload, st, err = rt.comm.WaitErr(in.req)
				} else {
					payload, st, err = rt.comm.WaitReplayErr(in.req)
				}
				in.req = nil
				if err != nil {
					rt.absorbDead(rt.deadOf(err))
					rt.loseRows(a, in.lo, in.hi)
					continue
				}
				bytesRecv += int64(st.Bytes)
				rt.commitSlab(a, in.lo, in.hi, payload)
			}
		}
		if rt.sink != nil && (mv.Rows > 0 || mv.Bytes > 0) {
			moves = append(moves, mv)
		}
	}

	rt.dist = newDist
	if err := rt.comm.BarrierErr(rt.group); err != nil {
		rt.absorbDead(rt.deadOf(err))
	}
	rt.events = append(rt.events, Event{
		Kind: EvRedistEnd, Cycle: rt.cycle, Time: rt.node.Now(),
		Bytes: bytesSent + bytesRecv, BytesSent: bytesSent, BytesRecv: bytesRecv,
		Counts: newDist.Counts(),
		Stall:  rt.comm.RecvStall - stall0,
	})
	if rt.sink != nil {
		rows, sent := 0, int64(0)
		for _, mv := range moves {
			rows += mv.Rows
			sent += mv.Bytes
		}
		rt.sink.Emit(telemetry.RedistRecord{
			Base:       rt.stamp(telemetry.KindRedist),
			Arrays:     moves,
			RowsSent:   rows,
			BytesSent:  sent,
			BytesRecv:  bytesRecv,
			BytesMoved: sent + bytesRecv,
			Counts:     newDist.Counts(),
			LostRows:   rt.lostRows - lost0,
		})
	}
	rt.refreshReplicas()
}
