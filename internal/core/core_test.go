package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// iterCost is sized so that phase cycles are long enough for the load
// monitor's 1-second sampling delay to detect mid-run CP changes within a
// modest number of cycles.
const iterCost = 10 * vclock.Millisecond

// miniResult captures one rank's final state for cross-rank assertions.
type miniResult struct {
	rank     int
	redists  int
	removed  bool
	counts   []int
	events   []Event
	ownedOK  bool
	ownedCnt int
	final    vclock.Time
	relRank  int
	globals  []float64
}

// runMini executes a synthetic workload: one dense array of N rows; every
// cycle each owned row is incremented (real data) and, when withGlobal is
// set, a global sum is reduced. Returns per-rank results.
func runMini(t *testing.T, spec cluster.Spec, cfg Config, n, cycles int, withGlobal bool) map[int]*miniResult {
	t.Helper()
	var mu sync.Mutex
	results := map[int]*miniResult{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 4)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return float64(g * 10) })

		res := &miniResult{rank: c.Rank()}
		for tstep := 0; tstep < cycles; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := x.Row(g)
					for j := range row {
						row[j]++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			if withGlobal {
				lo, hi := 0, 0
				if rt.Participating() {
					lo, hi = ph.Bounds()
				}
				local := 0.0
				for g := lo; g < hi; g++ {
					local += x.Row(g)[0]
				}
				res.globals = append(res.globals, rt.AllreduceSum(local))
			}
			rt.EndCycle()
		}
		rt.Finalize()

		res.redists = rt.Redistributions()
		res.removed = !rt.Participating()
		res.events = rt.Events()
		res.final = c.Now()
		res.relRank = rt.RelRank()
		if rt.Participating() {
			res.counts = rt.Dist().Counts()
			lo, hi := ph.Bounds()
			res.ownedOK = true
			res.ownedCnt = hi - lo
			for g := lo; g < hi; g++ {
				for j := 0; j < 4; j++ {
					if x.Row(g)[j] != float64(g*10+cycles) {
						res.ownedOK = false
					}
				}
			}
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func cpAtCycle(spec cluster.Spec, node, cycle int) cluster.Spec {
	return spec.With(cluster.CycleEvent(node, cycle, +1))
}

func checkValuesAndCoverage(t *testing.T, results map[int]*miniResult, n int) {
	t.Helper()
	total := 0
	for r, res := range results {
		if res.removed {
			continue
		}
		if !res.ownedOK {
			t.Errorf("rank %d: owned rows corrupted after redistribution", r)
		}
		total += res.ownedCnt
	}
	if total != n {
		t.Errorf("owned rows cover %d of %d", total, n)
	}
}

func TestNoLoadNoRedistribution(t *testing.T) {
	cfg := DefaultConfig()
	results := runMini(t, cluster.Uniform(4), cfg, 64, 12, false)
	for r, res := range results {
		if res.redists != 0 {
			t.Errorf("rank %d: %d redistributions without load change", r, res.redists)
		}
		if res.ownedCnt != 16 {
			t.Errorf("rank %d owns %d rows, want 16", r, res.ownedCnt)
		}
	}
	checkValuesAndCoverage(t, results, 64)
}

func TestAdaptFalseIsInert(t *testing.T) {
	cfg := Config{Adapt: false, Alloc: matrix.Projection}
	spec := cpAtCycle(cluster.Uniform(4), 1, 3)
	results := runMini(t, spec, cfg, 64, 15, false)
	for r, res := range results {
		if res.redists != 0 || len(res.events) != 0 {
			t.Errorf("rank %d: non-adaptive runtime adapted", r)
		}
	}
	checkValuesAndCoverage(t, results, 64)
}

func TestRedistributionShiftsWorkOffLoadedNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(4), 1, 3)
	results := runMini(t, spec, cfg, 64, 25, false)
	checkValuesAndCoverage(t, results, 64)
	res0 := results[0]
	if res0.redists != 1 {
		t.Fatalf("redists = %d, want 1", res0.redists)
	}
	counts := res0.counts
	if counts[1] >= counts[0] {
		t.Errorf("loaded node kept %d rows vs unloaded %d", counts[1], counts[0])
	}
	// Every rank must agree on the distribution.
	for r, res := range results {
		for i := range counts {
			if res.counts[i] != counts[i] {
				t.Fatalf("rank %d disagrees on distribution: %v vs %v", r, res.counts, counts)
			}
		}
	}
}

func TestRedistributionBeatsNoAdaptation(t *testing.T) {
	// The whole point of the paper: adapting must be faster than not.
	spec := cpAtCycle(cluster.Uniform(4), 1, 3)
	adaptCfg := DefaultConfig()
	adaptCfg.Drop = DropNever
	noCfg := Config{Adapt: false, Alloc: matrix.Projection}
	const n, cycles = 64, 60
	adapt := runMini(t, spec, adaptCfg, n, cycles, false)
	noAdapt := runMini(t, spec, noCfg, n, cycles, false)
	var tA, tN vclock.Time
	for _, res := range adapt {
		if res.final > tA {
			tA = res.final
		}
	}
	for _, res := range noAdapt {
		if res.final > tN {
			tN = res.final
		}
	}
	if tA >= tN {
		t.Errorf("Dyn-MPI run (%v) not faster than no-adaptation (%v)", tA, tN)
	}
}

func TestDropAlwaysRemovesLoadedNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	spec := cpAtCycle(cluster.Uniform(4), 2, 3)
	results := runMini(t, spec, cfg, 64, 30, false)
	checkValuesAndCoverage(t, results, 64)
	if !results[2].removed {
		t.Fatal("loaded node was not removed")
	}
	if results[2].relRank != -1 {
		t.Fatal("removed node still has a relative rank")
	}
	hasRemovedEv := false
	for _, ev := range results[2].events {
		if ev.Kind == EvRemoved {
			hasRemovedEv = true
		}
	}
	if !hasRemovedEv {
		t.Fatal("removed node did not record EvRemoved")
	}
	// Survivors re-ranked densely.
	for _, r := range []int{0, 1, 3} {
		if results[r].removed {
			t.Fatalf("unloaded node %d removed", r)
		}
	}
	if results[3].relRank != 2 {
		t.Fatalf("rank 3 relative rank = %d, want 2 after removal of rank 2", results[3].relRank)
	}
}

func TestRemovedNodeReceivesGlobals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	spec := cpAtCycle(cluster.Uniform(3), 0, 2)
	results := runMini(t, spec, cfg, 30, 20, true)
	checkValuesAndCoverage(t, results, 30)
	if !results[0].removed {
		t.Fatal("rank 0 was not removed")
	}
	g0, g1 := results[0].globals, results[1].globals
	if len(g0) != len(g1) {
		t.Fatalf("global op counts differ: %d vs %d", len(g0), len(g1))
	}
	for i := range g0 {
		if g0[i] != g1[i] {
			t.Fatalf("cycle %d: removed node saw %v, active saw %v", i, g0[i], g1[i])
		}
	}
}

func TestMaxRedistsCapsAdaptation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.MaxRedists = 1
	// CP appears at cycle 3 and disappears at cycle 20: with the cap only
	// the first change triggers redistribution.
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 3, +1)).
		With(cluster.CycleEvent(1, 20, -1))
	results := runMini(t, spec, cfg, 64, 40, false)
	checkValuesAndCoverage(t, results, 64)
	if results[0].redists != 1 {
		t.Fatalf("redists = %d, want exactly 1 with MaxRedists=1", results[0].redists)
	}
}

func TestSecondRedistributionOnLoadRemoval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cluster.Uniform(4).
		With(cluster.CycleEvent(1, 3, +1)).
		With(cluster.CycleEvent(1, 15, -1))
	results := runMini(t, spec, cfg, 40, 40, false)
	checkValuesAndCoverage(t, results, 40)
	if results[0].redists != 2 {
		t.Fatalf("redists = %d, want 2 (adapt to CP, adapt back)", results[0].redists)
	}
	// After the CP vanishes the distribution should be near-equal again.
	counts := results[0].counts
	for i, c := range counts {
		if c < 8 || c > 12 {
			t.Errorf("post-recovery counts %v not near-equal (node %d)", counts, i)
		}
	}
}

func TestLogicalDropKeepsNodeWithMinimumWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropLogical
	spec := cpAtCycle(cluster.Uniform(4), 1, 3)
	results := runMini(t, spec, cfg, 64, 25, false)
	checkValuesAndCoverage(t, results, 64)
	if results[1].removed {
		t.Fatal("logical drop must not remove the node")
	}
	if got := results[1].counts[1]; got != 1 {
		t.Fatalf("logically dropped node owns %d rows, want 1", got)
	}
}

func TestSparseRedistributionPreservesValues(t *testing.T) {
	const n = 48
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(3), 0, 3)
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		s := rt.RegisterSparse("S", n)
		ph := rt.InitPhase(n)
		ph.AddAccess("S", drsd.ReadWrite, 1, 0)
		rt.Commit()
		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			for k := 0; k <= g%3; k++ {
				s.Append(g, int32(k), float64(g*100+k))
			}
		}
		for tstep := 0; tstep < 20; tstep++ {
			if rt.BeginCycle() {
				lo, hi = ph.Bounds()
				for g := lo; g < hi; g++ {
					for e := s.RowHead(g); e != nil; e = e.Next() {
						e.Val++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		if rt.Redistributions() == 0 {
			return fmt.Errorf("no redistribution happened")
		}
		lo, hi = ph.Bounds()
		for g := lo; g < hi; g++ {
			if s.RowLen(g) != g%3+1 {
				return fmt.Errorf("row %d has %d elements, want %d", g, s.RowLen(g), g%3+1)
			}
			k := 0
			for e := s.RowHead(g); e != nil; e = e.Next() {
				want := float64(g*100+k) + 20
				if e.Col != int32(k) || e.Val != want {
					return fmt.Errorf("row %d elem %d = (%d,%v), want (%d,%v)", g, k, e.Col, e.Val, k, want)
				}
				k++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGhostRowsFollowRedistribution(t *testing.T) {
	// A stencil app with ±1 accesses: after redistribution each rank's
	// window must include valid neighbour rows.
	const n = 40
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(4), 3, 3)
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 2)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.Write, 1, 0)
		ph.AddAccess("X", drsd.Read, 1, -1)
		ph.AddAccess("X", drsd.Read, 1, +1)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return float64(g) })
		for tstep := 0; tstep < 20; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				// Verify the window covers the stencil and ghosts hold the
				// right values (they are never written in this test).
				for g := lo; g < hi; g++ {
					for _, nb := range []int{g - 1, g + 1} {
						if nb < 0 || nb >= n {
							continue
						}
						if !x.Resident(nb) {
							return fmt.Errorf("cycle %d: row %d missing neighbour %d", tstep, g, nb)
						}
						if x.Row(nb)[0] != float64(nb) {
							return fmt.Errorf("cycle %d: ghost row %d = %v", tstep, nb, x.Row(nb)[0])
						}
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationValidation(t *testing.T) {
	err := mpi.Run(cluster.New(cluster.Uniform(1)), func(c *mpi.Comm) error {
		rt := New(c, DefaultConfig())
		rt.RegisterDense("A", 10, 2)
		func() {
			defer expectPanic(t, "duplicate registration")
			rt.RegisterDense("A", 10, 2)
		}()
		func() {
			defer expectPanic(t, "mismatched rows")
			rt.RegisterDense("B", 11, 2)
		}()
		ph := rt.InitPhase(10)
		func() {
			defer expectPanic(t, "unregistered array access")
			ph.AddAccess("Z", drsd.Read, 1, 0)
		}()
		ph.AddAccess("A", drsd.ReadWrite, 1, 0)
		rt.Commit()
		func() {
			defer expectPanic(t, "registration after commit")
			rt.RegisterDense("C", 10, 2)
		}()
		func() {
			defer expectPanic(t, "user tag in runtime space")
			rt.SendRel(0, tagBase+5, nil, 0)
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("%s did not panic", what)
	}
}

func TestRelativeRankMessaging(t *testing.T) {
	err := mpi.Run(cluster.New(cluster.Uniform(3)), func(c *mpi.Comm) error {
		rt := New(c, DefaultConfig())
		rt.RegisterDense("A", 9, 1)
		ph := rt.InitPhase(9)
		ph.AddAccess("A", drsd.ReadWrite, 1, 0)
		rt.Commit()
		rr := rt.RelRank()
		if rr != c.Rank() {
			return fmt.Errorf("initial rel rank %d != world rank %d", rr, c.Rank())
		}
		if rr > 0 {
			rt.SendRel(rr-1, 1, []float64{float64(rr)}, 8)
		}
		if rr < rt.NumActive()-1 {
			v, _ := rt.RecvRelF64s(rr+1, 1)
			if v[0] != float64(rr+1) {
				return fmt.Errorf("got %v from right neighbour", v)
			}
		}
		if rt.WorldRankOf(rr) != c.Rank() {
			return fmt.Errorf("WorldRankOf broken")
		}
		rt.Barrier()
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonuniformIterationCostsShapeDistribution(t *testing.T) {
	// Iterations in the top half are 4x heavier; after adaptation to a CP,
	// the node holding heavy rows must own fewer of them.
	const n = 64
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(4), 0, 3)
	var mu sync.Mutex
	var counts []int
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 1)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return 0 })
		cost := func(g int) vclock.Duration {
			if g < n/2 {
				return 16 * vclock.Millisecond
			}
			return 4 * vclock.Millisecond
		}
		for tstep := 0; tstep < 30; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					rt.ComputeIter(g, cost(g))
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		mu.Lock()
		if counts == nil && rt.Participating() {
			counts = rt.Dist().Counts()
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (loaded, heavy half) must hold far fewer iterations than the
	// node holding cheap rows; unloaded heavy-row node 1 holds fewer rows
	// than cheap-row nodes despite equal fractions.
	if counts[0] >= counts[3] {
		t.Fatalf("counts %v: loaded heavy node not relieved", counts)
	}
	if counts[1] >= counts[3] {
		t.Fatalf("counts %v: weighting ignored per-iteration costs", counts)
	}
}

func TestEventTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(2), 1, 4)
	results := runMini(t, spec, cfg, 32, 20, false)
	evs := results[0].events
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EvLoadChange, EvRedistStart, EvRedistEnd}
	if len(kinds) != 3 {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
	if evs[2].Bytes == 0 {
		t.Error("redistribution moved no bytes")
	}
	if evs[1].Time > evs[2].Time {
		t.Error("redist events out of order")
	}
}
