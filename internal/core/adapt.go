package core

import (
	"fmt"

	"repro/internal/distribution"
	"repro/internal/drsd"
	"repro/internal/loadmon"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/timing"
)

// BeginCycle opens one phase cycle: it materialises scenario events, runs
// the per-cycle load check (§4.2: "check system load at every phase cycle")
// and drives the adaptation state machine — grace-period measurement,
// redistribution, and the drop decision. It reports whether this rank
// participates in the cycle.
func (rt *Runtime) BeginCycle() bool {
	if rt.cfg.Pacer != nil && !rt.skipPaceOnce {
		// Park before anything of the cycle happens — scenario events,
		// fault injection, adaptation — so a stepping controller observes
		// the world exactly at cycle boundaries.
		rt.cfg.Pacer.Checkpoint(rt.comm.Rank(), rt.cycle, rt.node.Now())
	}
	rt.ensureCommitted()
	rt.node.OnCycle(rt.cycle)
	rt.comm.InjectCycleFaults(rt.cycle)
	if rt.isOut {
		rt.removedCycle()
		return !rt.isOut // true exactly when this node just rejoined
	}
	rt.beginCycleTelemetry()
	if rt.skipPaceOnce || rt.skipAdaptOnce {
		// A joiner's first BeginCycle: the wave it joined was already
		// released, and the actives ran this cycle's adaptation step before
		// admitting it — parking would wedge the wave, and entering the load
		// exchange would wait on a collective nobody else runs. Run the
		// cycle body directly; normal pacing and adaptation resume next
		// cycle.
		rt.skipPaceOnce = false
		rt.skipAdaptOnce = false
		return true
	}
	if !rt.cfg.Adapt {
		return true
	}
	if len(rt.pendingDead) > 0 {
		// A death detected mid-cycle (failed collective, redistribution
		// receive, replica refresh) is recovered here, the one point every
		// surviving active rank is guaranteed to reach.
		rt.handleFailure()
	}

	loads, removedRanks, removedLoads, err := rt.exchangeLoads()
	if err != nil {
		// A member died inside the load exchange: every member got the same
		// error, so absorbing and recovering here is symmetric. Skip this
		// cycle's adaptation step; the fresh baseline resumes next cycle.
		rt.absorbFailure(err)
		rt.handleFailure()
		return true
	}
	if rt.sink != nil {
		if rel := rt.RelRank(); rel >= 0 && rel < len(loads) {
			rt.cycLoad = loads[rel]
		}
	}
	if len(removedRanks) > 0 {
		// A crashed removed node reports load -1 (the root's poll sentinel,
		// carried to every member through the allgather, so all prune the
		// same set). Copies keep the root's in-flight slices untouched.
		var deadRemoved, liveRanks, liveLoads []int
		for i, r := range removedRanks {
			if removedLoads[i] < 0 {
				deadRemoved = append(deadRemoved, r)
			} else {
				liveRanks = append(liveRanks, r)
				liveLoads = append(liveLoads, removedLoads[i])
			}
		}
		if len(deadRemoved) > 0 {
			rt.absorbDead(deadRemoved)
			rt.handleFailure()
			removedRanks, removedLoads = liveRanks, liveLoads
		}
	}
	if rt.maybeRejoin(loads, removedRanks, removedLoads) {
		// Membership changed this cycle; the state machine resumes on the
		// fresh baseline next cycle.
		return true
	}
	if rt.maybeResize(loads) {
		// Elastic resize (capacity arrival or explicit Resize target): the
		// membership and distribution changed; resume on the fresh baseline.
		return !rt.isOut
	}

	switch rt.state {
	case stNormal:
		if loadmon.Changed(rt.baseLoads, loads) && (rt.cfg.MaxRedists == 0 || rt.redists < rt.cfg.MaxRedists) {
			rt.enterGrace(loads)
		}
	case stGrace:
		if loadmon.Changed(rt.graceLoads, loads) {
			rt.enterGrace(loads) // load moved again: restart the measurement
		} else if rt.collector.Cycles() >= rt.cfg.GracePeriod {
			rt.decideRedistribution(loads)
		}
	case stPost:
		if loadmon.Changed(rt.baseLoads, loads) && (rt.cfg.MaxRedists == 0 || rt.redists < rt.cfg.MaxRedists) {
			// A fresh load change during the post-redistribution grace must
			// restart measurement on the new baseline; the old code waited
			// out the grace and fed maybeDrop loads the installed
			// distribution was never built for.
			rt.cycTimer = nil
			rt.cycOpen = false
			rt.enterGrace(loads)
		} else if rt.cycTimer.Cycles() >= rt.cfg.PostRedistGrace {
			rt.maybeDrop(loads)
		} else {
			rt.cycTimer.Begin()
			rt.cycOpen = true
		}
	}
	return !rt.isOut
}

// EndCycle closes the phase cycle, feeding whichever measurement window is
// active.
func (rt *Runtime) EndCycle() {
	if rt.isOut {
		rt.cycle++
		return
	}
	if rt.collector != nil {
		rt.collector.EndCycle()
	}
	if rt.cycTimer != nil && rt.cycOpen {
		rt.cycTimer.End()
		rt.cycOpen = false
	}
	rt.endCycleTelemetry()
	if rt.cfg.Replicate && rt.cfg.ReplicaEvery > 0 && rt.cycle%rt.cfg.ReplicaEvery == 0 {
		rt.refreshReplicasNow()
	}
	rt.cycle++
}

// enterGrace starts (or restarts) the grace period: the application keeps
// running on the old distribution while per-iteration unloaded times and
// per-cycle communication are measured.
func (rt *Runtime) enterGrace(loads []int) {
	rt.record(EvLoadChange, 0, fmt.Sprintf("loads=%v", loads))
	rt.state = stGrace
	rt.graceLoads = append([]int(nil), loads...)
	lo, hi := rt.dist.RangeOf(rt.comm.Rank())
	rt.collector = timing.NewCollector(rt.node, lo, hi)
	rt.graceMsgs0 = rt.comm.SentMsgs + rt.comm.RecvMsgs
	rt.graceBytes0 = rt.comm.SentBytes + rt.comm.RecvBytes
	rt.graceHidden0 = rt.comm.HiddenWire
	rt.graceStart = rt.node.Now()
	rt.cycTimer = nil
}

// measureComm converts the traffic accumulated since grace start into
// per-cycle communication costs (CPU seconds and wire seconds per node),
// reduced to the cluster-wide maximum so every rank uses the same value.
// Wire time that the overlap machinery hid behind computation during the
// grace window is subtracted: an application using nonblocking halos does
// not stall for that time, so pricing it into candidate distributions would
// overestimate communication and bias decisions toward too-coarse blocks.
func (rt *Runtime) measureComm(cycles int) (commCPU, commWire float64, err error) {
	net := rt.comm.World().Cluster().Net()
	msgs := float64(rt.comm.SentMsgs + rt.comm.RecvMsgs - rt.graceMsgs0)
	bytes := float64(rt.comm.SentBytes + rt.comm.RecvBytes - rt.graceBytes0)
	per := 1.0 / float64(cycles)
	cpu := (msgs*net.CPUPerMsg.Seconds() + bytes*net.CPUPerByte/1e9) * per
	wire := (msgs/2*net.Latency.Seconds() + bytes/2/net.BytesPerSec) * per
	if hidden := (rt.comm.HiddenWire - rt.graceHidden0).Seconds() * per; hidden > 0 {
		wire -= hidden
		if wire < 0 {
			wire = 0
		}
	}
	buf := [2]float64{cpu, wire}
	if err := rt.comm.AllreduceF64sIntoErr(rt.group, buf[:], mpi.Max); err != nil {
		return 0, 0, err
	}
	return buf[0], buf[1], nil
}

// gatherEstimates assembles the global per-iteration cost vector from every
// active rank's grace-period collector.
func (rt *Runtime) gatherEstimates() ([]float64, error) {
	lo, _ := rt.collector.Range()
	type chunk struct {
		Lo  int
		Est []float64
	}
	est := rt.collector.Estimates()
	parts, err := rt.comm.AllgatherErr(rt.group, chunk{Lo: lo, Est: est}, 8*len(est)+8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, rt.n)
	for _, p := range parts {
		c := p.(chunk)
		copy(out[c.Lo:], c.Est)
	}
	return out, nil
}

// abandonDecision gives up on an in-flight redistribution decision after a
// member died inside one of its collectives. Every member observed the same
// error, so all abandon together; recovery runs at the top of the next
// cycle and rebuilds the baseline.
func (rt *Runtime) abandonDecision(err error) {
	rt.absorbFailure(err)
	rt.collector = nil
	rt.state = stNormal
}

// decideRedistribution computes and executes a new distribution from the
// grace-period measurements (§4.3 + §4.4).
func (rt *Runtime) decideRedistribution(loads []int) {
	iterCosts, err := rt.gatherEstimates()
	if err != nil {
		rt.abandonDecision(err)
		return
	}
	commCPU, commWire, err := rt.measureComm(rt.collector.Cycles())
	if err != nil {
		rt.abandonDecision(err)
		return
	}
	rt.collector = nil
	rt.iterCosts = iterCosts
	rt.commCPU, rt.commWire = commCPU, commWire
	nodes := rt.nodesFromLoads(loads)

	anyLoaded, anyUnloaded := false, false
	for _, l := range loads {
		if l > 0 {
			anyLoaded = true
		} else {
			anyUnloaded = true
		}
	}

	if rt.cfg.Drop == DropAlways && anyLoaded && anyUnloaded {
		if rt.sink != nil {
			rt.sink.Emit(telemetry.DecisionRecord{
				Base:   rt.stamp(telemetry.KindDecision),
				Method: "drop-always",
				Loads:  append([]int(nil), loads...),
				Chosen: "drop",
			})
		}
		rt.baseLoads = append([]int(nil), loads...)
		rt.dropLoaded(nodes, iterCosts)
		rt.state = stNormal
		return
	}
	if rt.cfg.Drop == DropLogical && anyLoaded && anyUnloaded {
		if rt.sink != nil {
			rt.sink.Emit(telemetry.DecisionRecord{
				Base:   rt.stamp(telemetry.KindDecision),
				Method: "drop-logical",
				Loads:  append([]int(nil), loads...),
				Chosen: "logical-drop",
			})
		}
		rt.logicalDrop(nodes, iterCosts)
		rt.baseLoads = append([]int(nil), loads...)
		rt.state = stNormal
		return
	}

	var total float64
	for _, w := range iterCosts {
		total += w
	}
	// Compute both candidate distributions when telemetry wants them;
	// otherwise only the configured method runs.
	trace := rt.sink != nil
	var rpFr, sbFr []float64
	sbRounds := 0
	if trace || rt.cfg.Method == RelativePower {
		rpFr = distribution.RelativePowerFractions(nodes)
	}
	if trace || rt.cfg.Method != RelativePower {
		sbFr = distribution.SuccessiveBalancingFractionsTrace(nodes, total, commCPU, rt.cfg.Model,
			func(round int, _ []float64) { sbRounds = round + 1 })
	}
	var fractions []float64
	chosen := "successive-balancing"
	switch rt.cfg.Method {
	case RelativePower:
		fractions, chosen = rpFr, "relative-power"
	default:
		fractions = sbFr
	}
	counts := distribution.PartitionWeighted(iterCosts, fractions)
	if trace {
		rpCounts := distribution.PartitionWeighted(iterCosts, rpFr)
		sbCounts := distribution.PartitionWeighted(iterCosts, sbFr)
		cands := []telemetry.Candidate{
			{Label: "relative-power", Counts: rpCounts,
				PredictedS: distribution.PredictCycleTime(nodes, rpCounts, iterCosts, commCPU, commWire)},
			{Label: "successive-balancing", Counts: sbCounts, Rounds: sbRounds,
				PredictedS: distribution.PredictCycleTime(nodes, sbCounts, iterCosts, commCPU, commWire)},
		}
		predicted := cands[1].PredictedS
		if rt.cfg.Method == RelativePower {
			predicted = cands[0].PredictedS
		}
		rt.sink.Emit(telemetry.DecisionRecord{
			Base:       rt.stamp(telemetry.KindDecision),
			Method:     chosen,
			Loads:      append([]int(nil), loads...),
			Candidates: cands,
			Chosen:     chosen,
			Counts:     append([]int(nil), counts...),
			PredictedS: predicted,
		})
	}
	rt.applyDistribution(drsd.NewBlock(rt.active, counts))
	rt.baseLoads = append([]int(nil), loads...)
	rt.redists++

	if rt.cfg.Drop == DropAuto && anyLoaded && anyUnloaded {
		rt.state = stPost
		rt.cycTimer = timing.NewCycleTimer(rt.node)
		rt.cycTimer.Begin() // covers the remainder of this (post-redist) cycle
		rt.cycOpen = true
	} else {
		rt.state = stNormal
	}
}

// maybeDrop applies the paper's drop criterion after the
// post-redistribution grace period.
func (rt *Runtime) maybeDrop(loads []int) {
	measured, err := rt.comm.AllreduceMaxErr(rt.group, rt.cycTimer.Average())
	rt.cycTimer = nil
	rt.state = stNormal
	if err != nil {
		rt.absorbFailure(err)
		return
	}
	nodes := rt.nodesFromLoads(loads)
	drop, predicted := distribution.DropDecision(nodes, rt.iterCosts, measured, rt.commCPU, rt.commWire)
	if rt.sink != nil {
		verdict := "keep"
		if drop {
			verdict = "drop"
		}
		rt.sink.Emit(telemetry.DecisionRecord{
			Base:   rt.stamp(telemetry.KindDecision),
			Method: "drop-auto",
			Loads:  append([]int(nil), loads...),
			Candidates: []telemetry.Candidate{
				{Label: "unloaded-only", PredictedS: predicted},
			},
			Chosen:     verdict,
			PredictedS: predicted,
			MeasuredS:  measured,
		})
	}
	if !drop {
		rt.record(EvDrop, 0, fmt.Sprintf("kept: measured=%.4fs predicted=%.4fs", measured, predicted))
		return
	}
	rt.record(EvDrop, 0, fmt.Sprintf("dropping: measured=%.4fs predicted=%.4fs", measured, predicted))
	rt.baseLoads = append([]int(nil), loads...)
	rt.dropLoaded(nodes, rt.iterCosts)
}

// dropLoaded physically removes every loaded node: data moves to the
// unloaded nodes, the collective group shrinks, relative ranks are
// re-assigned, and removed ranks switch to the send-out-only protocol.
func (rt *Runtime) dropLoaded(nodes []distribution.Node, iterCosts []float64) {
	var stay, out []int
	var stayNodes []distribution.Node
	for _, n := range nodes {
		// With rejoin enabled the send-out root is pinned: removed nodes
		// poll it every cycle, so it must stay alive and addressable.
		pinned := rt.cfg.AllowRejoin && n.Rank == rt.sendOutRoot()
		if n.Load == 0 || pinned {
			stay = append(stay, n.Rank)
			stayNodes = append(stayNodes, n)
		} else {
			out = append(out, n.Rank)
		}
	}
	if len(stay) == 0 || len(out) == 0 {
		return
	}
	fractions := distribution.RelativePowerFractions(stayNodes)
	counts := distribution.PartitionWeighted(iterCosts, fractions)
	newDist := drsd.NewBlock(stay, counts)
	// The removal redistribution happens while the dropped nodes are still
	// in the group, so they can ship their rows out.
	rt.applyDistribution(newDist)
	rt.redists++

	rt.active = stay
	rt.removed = append(rt.removed, out...)
	rt.group = rt.comm.World().NewGroup(stay)
	newBase := make([]int, len(stay))
	rt.baseLoads = newBase // unloaded by construction
	me := rt.comm.Rank()
	for _, r := range out {
		if r == me {
			rt.isOut = true
			rt.record(EvRemoved, 0, "")
		}
	}
	if !rt.isOut {
		rt.record(EvDrop, 0, fmt.Sprintf("active=%v removed=%v", stay, out))
		rt.emitMembership("drop")
	} else {
		rt.emitMembership("removed")
	}
}

// logicalDrop keeps loaded nodes in the computation with a minimum
// assignment (one iteration each), the §2.2 alternative to physical
// removal: ranks stay static, but the loaded nodes continue to slow down
// every communication step they appear in.
func (rt *Runtime) logicalDrop(nodes []distribution.Node, iterCosts []float64) {
	var stayNodes []distribution.Node
	loadedIdx := map[int]bool{}
	for i, n := range nodes {
		if n.Load == 0 {
			stayNodes = append(stayNodes, n)
		} else {
			loadedIdx[i] = true
		}
	}
	// Give each loaded node exactly one iteration; split the rest across
	// unloaded nodes by relative power. (Weighting uses a prefix of the
	// iteration costs, exact for uniform workloads — the regime in which
	// logical dropping is compared against physical dropping.)
	remaining := rt.n - len(loadedIdx)
	fractions := distribution.RelativePowerFractions(stayNodes)
	sub := distribution.PartitionWeighted(iterCosts[:remaining], fractions)
	counts := logicalDropCounts(rt.n, loadedIdx, len(nodes), sub)
	rt.applyDistribution(drsd.NewBlock(rt.active, counts))
	rt.redists++
	rt.record(EvLogicalDrop, 0, fmt.Sprintf("counts=%v", counts))
	rt.emitMembership("logical-drop")
	rt.state = stNormal
}

// logicalDropCounts assigns one iteration to each loaded node and sub[j] to
// the j-th unloaded node, then applies the rounding remainder to the last
// unloaded node so counts sum to n. The former inline code padded
// counts[len-1] unconditionally, handing the remainder to a loaded node
// whenever the last rank happened to be loaded — breaking the
// minimum-assignment invariant the logical drop exists to provide.
func logicalDropCounts(n int, loaded map[int]bool, numNodes int, sub []int) []int {
	counts := make([]int, numNodes)
	lastUnloaded := -1
	j := 0
	for i := 0; i < numNodes; i++ {
		if loaded[i] {
			counts[i] = 1
		} else {
			counts[i] = sub[j]
			j++
			lastUnloaded = i
		}
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if lastUnloaded >= 0 {
		counts[lastUnloaded] += n - sum
	}
	return counts
}
