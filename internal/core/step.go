package core

import (
	"sync"

	"repro/internal/vclock"
)

// Pacer is the runtime's cycle-boundary pacing hook. When Config.Pacer is
// set, every rank calls Checkpoint at the top of each BeginCycle — before
// scenario events materialise and before any adaptation work — and blocks
// there until the pacer releases it. Pacing is pure wall-clock control:
// the virtual clocks, message order, PRNG streams and telemetry of a paced
// run are byte-identical to an unpaced one.
type Pacer interface {
	Checkpoint(rank, cycle int, now vclock.Time)
}

// gateState is one rank's position relative to its world's gate.
type gateState int8

const (
	gateRunning gateState = iota // executing a released cycle (or the pre-cycle prologue)
	gateParked                   // blocked in Checkpoint, waiting for release
	gateExited                   // rank goroutine finished (normal return, failure unwind or crash)
)

// WorldGate turns one goroutine-per-rank world into a vclock.Stepper: it
// implements Pacer on the rank side and the step primitives
// (HasPendingEvents / PeekNextEventTime / ProcessNextEvent) on the
// controller side, which is how a sweep scheduler advances many worlds in
// global virtual-time order from outside.
//
// One "event" is one phase-cycle wave: ranks park at every BeginCycle, and
// ProcessNextEvent releases all parked ranks for exactly one cycle, then
// waits for the world to go quiescent again (every rank re-parked or
// exited). Whole-wave release is what keeps stepping deadlock-free — all
// intra-cycle communication partners are running whenever any of them is —
// while still exposing the world's progress one cycle at a time.
//
// Wiring: set Config.Pacer to the gate, and register RankExit as the
// cluster's rank-exit hook (cluster.SetRankExitHook) so ranks that stop
// checkpointing — normal completion, world failure, injected crashes —
// never wedge the controller.
type WorldGate struct {
	mu   sync.Mutex
	cond *sync.Cond

	n        int
	state    []gateState
	released []bool
	times    []vclock.Time // park time per rank, valid while parked
	parked   int
	exited   int
}

// NewWorldGate creates a gate for a world of n ranks, all initially
// running (the pre-first-cycle prologue: registration, array fill,
// initial replica exchange).
func NewWorldGate(n int) *WorldGate {
	g := &WorldGate{
		n:        n,
		state:    make([]gateState, n),
		released: make([]bool, n),
		times:    make([]vclock.Time, n),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Checkpoint implements Pacer: the calling rank parks until the controller
// releases its next cycle.
func (g *WorldGate) Checkpoint(rank, cycle int, now vclock.Time) {
	g.mu.Lock()
	g.state[rank] = gateParked
	g.times[rank] = now
	g.parked++
	g.cond.Broadcast()
	for !g.released[rank] {
		g.cond.Wait()
	}
	g.released[rank] = false
	g.mu.Unlock()
}

// RankExit records that a rank's goroutine has finished and will never
// checkpoint again. It is called from the mpi run harness via the
// cluster's rank-exit hook, on every exit path.
func (g *WorldGate) RankExit(rank int) {
	g.mu.Lock()
	if g.state[rank] != gateExited {
		g.state[rank] = gateExited
		g.exited++
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Grow extends the gate to cover ranks spawned into arrival capacity by an
// elastic resize. Arrival slots below the highest spawned rank that are not
// (yet) spawned are recorded as exited so they can never block quiescence;
// a later Grow that claims them flips them back to running. The runtime's
// grow path calls this (on the root, mid-wave) before World.Spawn, so a
// stepping controller accounts for the joiners from the moment they exist.
func (g *WorldGate) Grow(ranks []int) {
	g.mu.Lock()
	max := g.n
	for _, r := range ranks {
		if r+1 > max {
			max = r + 1
		}
	}
	for g.n < max {
		g.state = append(g.state, gateExited)
		g.released = append(g.released, false)
		var zero vclock.Time
		g.times = append(g.times, zero)
		g.exited++
		g.n++
	}
	for _, r := range ranks {
		if g.state[r] == gateExited {
			g.state[r] = gateRunning
			g.exited--
		}
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// waitQuiescent blocks until every rank is parked or exited. Callers hold
// g.mu. The loop re-reads g.n each pass, so a concurrent Grow (the root
// admitting joiners mid-wave) safely raises the quiescence bar.
func (g *WorldGate) waitQuiescent() {
	for g.parked+g.exited < g.n {
		g.cond.Wait()
	}
}

// HasPendingEvents reports whether any rank will run another cycle. It
// waits for the world to go quiescent first, so a false answer means the
// run has fully completed and its result is available.
func (g *WorldGate) HasPendingEvents() bool {
	g.mu.Lock()
	g.waitQuiescent()
	pending := g.parked > 0
	g.mu.Unlock()
	return pending
}

// PeekNextEventTime reports the virtual time of the world's next event:
// the earliest parked rank's clock. Only valid while HasPendingEvents.
func (g *WorldGate) PeekNextEventTime() vclock.Time {
	g.mu.Lock()
	g.waitQuiescent()
	var min vclock.Time
	first := true
	for r, st := range g.state {
		if st != gateParked {
			continue
		}
		if first || g.times[r] < min {
			min, first = g.times[r], false
		}
	}
	g.mu.Unlock()
	return min
}

// ProcessNextEvent releases every parked rank for one phase cycle and
// returns once the world is quiescent again. With no parked ranks it is a
// no-op.
func (g *WorldGate) ProcessNextEvent() {
	g.mu.Lock()
	g.waitQuiescent()
	if g.parked == 0 {
		g.mu.Unlock()
		return
	}
	for r, st := range g.state {
		if st == gateParked {
			g.state[r] = gateRunning
			g.released[r] = true
			g.parked--
		}
	}
	g.cond.Broadcast()
	g.waitQuiescent()
	g.mu.Unlock()
}
