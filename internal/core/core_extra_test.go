package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// TestMultiPhaseSharedDistribution declares two phases over the same
// iteration space (SOR's red/black structure) and verifies both see the
// same bounds across a redistribution.
func TestMultiPhaseSharedDistribution(t *testing.T) {
	const n = 48
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	spec := cpAtCycle(cluster.Uniform(3), 1, 3)
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		rt.RegisterDense("U", n, 2)
		red := rt.InitPhase(n)
		red.AddAccess("U", drsd.ReadWrite, 1, 0)
		red.AddAccess("U", drsd.Read, 1, -1)
		black := rt.InitPhase(n)
		black.AddAccess("U", drsd.ReadWrite, 1, 0)
		black.AddAccess("U", drsd.Read, 1, +1)
		rt.Commit()
		for tstep := 0; tstep < 25; tstep++ {
			if rt.BeginCycle() {
				rlo, rhi := red.Bounds()
				blo, bhi := black.Bounds()
				if rlo != blo || rhi != bhi {
					return fmt.Errorf("phases disagree: [%d,%d) vs [%d,%d)", rlo, rhi, blo, bhi)
				}
				for g := rlo; g < rhi; g++ {
					rt.ComputeIter(g, 5*vclock.Millisecond)
					rt.ComputeIter(g, 5*vclock.Millisecond)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		if rt.Redistributions() == 0 {
			return fmt.Errorf("no redistribution")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHeterogeneousPowers verifies that after a load-triggered
// redistribution, a 3x-power node receives roughly 3x the rows.
func TestHeterogeneousPowers(t *testing.T) {
	const n = 80
	spec := cpAtCycle(cluster.Uniform(2), 0, 3)
	spec.Nodes[1].Power = 3
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	results := runMini(t, spec, cfg, n, 30, false)
	checkValuesAndCoverage(t, results, n)
	counts := results[0].counts
	if counts == nil {
		counts = results[1].counts
	}
	// Node 0: power 1 with one CP (capacity ~0.5); node 1: power 3.
	// Relative power gives ~1/7 vs ~6/7; successive balancing is close.
	if counts[1] < counts[0]*4 {
		t.Fatalf("power-3 node got %v, expected heavy skew", counts)
	}
}

// TestGraceRestartsOnSecondLoadChange: a second CP arriving mid-grace must
// restart the measurement rather than producing a distribution computed
// from mixed baselines.
func TestGraceRestartsOnSecondLoadChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.GracePeriod = 8
	spec := cluster.Uniform(3).
		With(cluster.CycleEvent(1, 3, +1)).
		With(cluster.CycleEvent(2, 14, +1))
	results := runMini(t, spec, cfg, 48, 60, false)
	checkValuesAndCoverage(t, results, 48)
	loadChanges, redists := 0, 0
	for _, ev := range results[0].events {
		switch ev.Kind {
		case EvLoadChange:
			loadChanges++
		case EvRedistEnd:
			redists++
		}
	}
	if loadChanges < 2 {
		t.Fatalf("saw %d load changes, want 2 (grace restart)", loadChanges)
	}
	if redists == 0 {
		t.Fatal("no redistribution after restarted grace")
	}
	// The final distribution reflects BOTH loads.
	counts := results[0].counts
	if counts[1] >= counts[0] || counts[2] >= counts[0] {
		t.Fatalf("counts %v: both loaded nodes should trail the unloaded one", counts)
	}
}

// TestBcastAndBarrierWithRemovedNodes exercises the remaining send-out
// collectives under physical removal.
func TestBcastAndBarrierWithRemovedNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropAlways
	spec := cpAtCycle(cluster.Uniform(3), 2, 2)
	var mu sync.Mutex
	got := map[int][]float64{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", 30, 1)
		ph := rt.InitPhase(30)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return 0 })
		var lastBcast []float64
		for tstep := 0; tstep < 25; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					rt.ComputeIter(g, 10*vclock.Millisecond)
				}
			}
			rt.Barrier()
			lastBcast = rt.BcastF64s(0, []float64{float64(tstep), 42})
			rt.EndCycle()
		}
		rt.Finalize()
		mu.Lock()
		got[c.Rank()] = lastBcast
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		v := got[r]
		if len(v) != 2 || v[0] != 24 || v[1] != 42 {
			t.Fatalf("rank %d final bcast %v", r, v)
		}
	}
}

// TestPagingSlowsContiguousRedistribution: with tight node memory, the
// contiguous allocator's full reallocation spills to disk and the
// redistribution takes longer in virtual time than with projection.
func TestPagingSlowsContiguousRedistribution(t *testing.T) {
	elapsed := func(scheme matrix.Alloc) float64 {
		const n = 256
		spec := cpAtCycle(cluster.Uniform(2), 0, 3)
		for i := range spec.Nodes {
			spec.Nodes[i].MemBytes = 1 << 20 // 1 MiB: half the array already overflows
		}
		cfg := DefaultConfig()
		cfg.Drop = DropNever
		cfg.Alloc = scheme
		var worstRedist vclock.Duration
		var mu sync.Mutex
		err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
			rt := New(c, cfg)
			x := rt.RegisterDense("X", n, 512) // 4KB rows; half-array > 1MiB
			ph := rt.InitPhase(n)
			ph.AddAccess("X", drsd.ReadWrite, 1, 0)
			rt.Commit()
			x.Fill(func(g, j int) float64 { return 1 })
			for tstep := 0; tstep < 20; tstep++ {
				if rt.BeginCycle() {
					lo, hi := ph.Bounds()
					for g := lo; g < hi; g++ {
						rt.ComputeIter(g, vclock.Millisecond)
					}
				}
				rt.EndCycle()
			}
			rt.Finalize()
			var start vclock.Time
			var dur vclock.Duration
			for _, ev := range rt.Events() {
				switch ev.Kind {
				case EvRedistStart:
					start = ev.Time
				case EvRedistEnd:
					dur += ev.Time.Sub(start)
				}
			}
			mu.Lock()
			if dur > worstRedist {
				worstRedist = dur
			}
			mu.Unlock()
			if rt.Redistributions() == 0 {
				return fmt.Errorf("no redistribution")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return worstRedist.Seconds()
	}
	proj := elapsed(matrix.Projection)
	contig := elapsed(matrix.Contiguous)
	if contig <= proj {
		t.Fatalf("paging contiguous run (%.3fs) not slower than projection (%.3fs)", contig, proj)
	}
}
