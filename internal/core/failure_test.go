package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/drsd"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// TestLogicalDropCountsRemainderToLastUnloaded pins the satellite fix: the
// partition remainder must land on an unloaded node even when the last rank
// is the loaded one (the old inline code padded counts[len-1]
// unconditionally, breaking the minimum-assignment invariant).
func TestLogicalDropCountsRemainderToLastUnloaded(t *testing.T) {
	// 4 nodes, last one loaded, sub deliberately under-summing: 2+2+2+1 = 7
	// leaves a remainder of 3 for n = 10.
	counts := logicalDropCounts(10, map[int]bool{3: true}, 4, []int{2, 2, 2})
	if counts[3] != 1 {
		t.Fatalf("loaded last node got %d iterations, want exactly 1 (counts %v)", counts[3], counts)
	}
	if counts[2] != 5 {
		t.Fatalf("remainder not applied to last unloaded node: %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 10 {
		t.Fatalf("counts %v sum to %d, want 10", counts, sum)
	}

	// Loaded node in the middle: remainder goes to the final (unloaded) node
	// as before.
	counts = logicalDropCounts(10, map[int]bool{1: true}, 4, []int{3, 3, 2})
	if counts[1] != 1 || counts[3] != 3 {
		t.Fatalf("middle-loaded case: %v", counts)
	}
}

// TestUserTagGuards verifies SendRel and RecvRel both reject tags that
// collide with the runtime's internal tag space (the old code guarded only
// the send side, so a stray user receive could steal redistribution or
// replica traffic).
func TestUserTagGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted a runtime-space tag", name)
			}
		}()
		fn()
	}
	rt := &Runtime{}
	expectPanic("SendRel", func() { rt.SendRel(0, tagBase, nil, 0) })
	expectPanic("RecvRel", func() { rt.RecvRel(0, tagBase+5) })
	expectPanic("RecvRelF64s", func() { rt.RecvRelF64s(0, tagRedist) })
}

// TestPostRedistGraceRestartsOnLoadChange: a load change arriving during the
// post-redistribution grace window must restart measurement immediately
// instead of waiting the window out (the second redistribution then lands
// well inside the first window).
func TestPostRedistGraceRestartsOnLoadChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.GracePeriod = 3
	cfg.PostRedistGrace = 20
	spec := cluster.Uniform(3).
		With(cluster.CycleEvent(1, 2, +1)).
		With(cluster.CycleEvent(2, 13, +1))
	results := runMini(t, spec, cfg, 48, 45, false)
	checkValuesAndCoverage(t, results, 48)
	var redists []Event
	for _, ev := range results[0].events {
		if ev.Kind == EvRedistEnd {
			redists = append(redists, ev)
		}
	}
	if len(redists) < 2 {
		t.Fatalf("saw %d redistributions, want 2 (restart inside post-redist grace)", len(redists))
	}
	if gap := redists[1].Cycle - redists[0].Cycle; gap >= cfg.PostRedistGrace {
		t.Fatalf("second redistribution waited out the post-redist grace: cycles %d -> %d (window %d)",
			redists[0].Cycle, redists[1].Cycle, cfg.PostRedistGrace)
	}
	counts := results[0].counts
	if counts[1] >= counts[0] || counts[2] >= counts[0] {
		t.Fatalf("counts %v: both loaded nodes should trail the unloaded one", counts)
	}
}

// crashMini runs the runMini workload with an injected crash and returns
// the surviving ranks' results.
func crashMini(t *testing.T, cfg Config, n, cycles, victim, crashCycle int) map[int]*miniResult {
	t.Helper()
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{fault.CrashAtCycle(victim, crashCycle)}
	var mu sync.Mutex
	results := map[int]*miniResult{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		x := rt.RegisterDense("X", n, 4)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		x.Fill(func(g, j int) float64 { return float64(g * 10) })
		res := &miniResult{rank: c.Rank()}
		for tstep := 0; tstep < cycles; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					row := x.Row(g)
					for j := range row {
						row[j]++
					}
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		res.redists = rt.Redistributions()
		res.events = rt.Events()
		res.counts = rt.Dist().Counts()
		res.ownedOK = true
		lo, hi := ph.Bounds()
		res.ownedCnt = hi - lo
		for g := lo; g < hi; g++ {
			for j := 0; j < 4; j++ {
				if x.Row(g)[j] != float64(g*10+cycles) {
					res.ownedOK = false
				}
			}
		}
		lostRows := 0
		for _, lr := range rt.LostRows() {
			lostRows += lr.Hi - lr.Lo
		}
		res.globals = []float64{float64(lostRows), float64(rt.RecoveredRows())}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d ranks reported, want the 2 survivors", len(results))
	}
	for r, res := range results {
		if r == victim {
			t.Fatalf("crashed rank %d reported a result", victim)
		}
		found := false
		for _, ev := range res.events {
			if ev.Kind == EvFailure {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d recorded no %v event", r, EvFailure)
		}
		total := 0
		for _, c := range res.counts {
			total += c
		}
		if total != n {
			t.Fatalf("rank %d distribution covers %d rows, want %d (counts %v)", r, total, n, res.counts)
		}
	}
	return results
}

// TestCrashRecoveryWithoutReplication: survivors drop the dead member,
// re-partition the full index space, and declare the dead rank's rows lost.
func TestCrashRecoveryWithoutReplication(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	results := crashMini(t, cfg, 48, 20, 2, 5)
	lost := 0.0
	for _, res := range results {
		lost += res.globals[0]
	}
	if lost == 0 {
		t.Fatal("no rows declared lost without replication")
	}
}

// TestCrashRecoveryWithReplicationRestoresValues: with per-cycle buddy
// replication the dead rank's rows are reconstructed exactly, so every
// surviving row carries the bit-exact value an uninterrupted run produces.
func TestCrashRecoveryWithReplicationRestoresValues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	cfg.Replicate = true
	cfg.ReplicaEvery = 1
	results := crashMini(t, cfg, 48, 20, 2, 5)
	recovered := 0.0
	for r, res := range results {
		if res.globals[0] != 0 {
			t.Fatalf("rank %d lost %v rows despite replication", r, res.globals[0])
		}
		recovered += res.globals[1]
		if !res.ownedOK {
			t.Fatalf("rank %d holds wrong values after recovery", r)
		}
	}
	if recovered == 0 {
		t.Fatal("no rows recovered from replicas")
	}
}

// TestMultiCrashConverges: two ranks crashing at different cycles leave a
// single survivor that still completes and owns the whole index space.
func TestMultiCrashConverges(t *testing.T) {
	const n = 30
	spec := cluster.Uniform(3)
	spec.Faults = []fault.Fault{
		fault.CrashAtCycle(1, 4),
		fault.CrashAtCycle(2, 8),
	}
	cfg := DefaultConfig()
	cfg.Drop = DropNever
	var mu sync.Mutex
	counts := map[int][]int{}
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		rt := New(c, cfg)
		rt.RegisterDense("X", n, 1)
		ph := rt.InitPhase(n)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		for tstep := 0; tstep < 15; tstep++ {
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				for g := lo; g < hi; g++ {
					rt.ComputeIter(g, iterCost)
				}
			}
			rt.EndCycle()
		}
		rt.Finalize()
		if got := rt.DeadRanks(); len(got) != 2 {
			return fmt.Errorf("rank %d sees dead ranks %v, want [1 2]", c.Rank(), got)
		}
		mu.Lock()
		counts[c.Rank()] = rt.Dist().Counts()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 1 || counts[0] == nil {
		t.Fatalf("want only rank 0 to survive, got %v", counts)
	}
	if len(counts[0]) != 1 || counts[0][0] != n {
		t.Fatalf("survivor's distribution %v, want [%d]", counts[0], n)
	}
}

// TestCrashDeterminismCore: repeated crash runs produce identical finish
// times and identical event streams on the survivors.
func TestCrashDeterminismCore(t *testing.T) {
	runOnce := func() map[int]vclock.Time {
		spec := cluster.Uniform(3)
		spec.Faults = []fault.Fault{fault.CrashAtCycle(1, 5)}
		cfg := DefaultConfig()
		cfg.Drop = DropNever
		var mu sync.Mutex
		finish := map[int]vclock.Time{}
		err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
			rt := New(c, cfg)
			rt.RegisterDense("X", 30, 1)
			ph := rt.InitPhase(30)
			ph.AddAccess("X", drsd.ReadWrite, 1, 0)
			rt.Commit()
			for tstep := 0; tstep < 12; tstep++ {
				if rt.BeginCycle() {
					lo, hi := ph.Bounds()
					for g := lo; g < hi; g++ {
						rt.ComputeIter(g, iterCost)
					}
				}
				rt.EndCycle()
			}
			rt.Finalize()
			mu.Lock()
			finish[c.Rank()] = c.Now()
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return finish
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("survivor sets differ: %v vs %v", a, b)
	}
	for r, ta := range a {
		if tb, ok := b[r]; !ok || ta != tb {
			t.Fatalf("rank %d finish differs: %v vs %v", r, ta, b[r])
		}
	}
}
