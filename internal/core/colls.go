package core

import (
	"repro/internal/mpi"
)

// This file implements the paper's modified global communication routines
// (§4.4): physically removed nodes "do not participate in the send-in
// phase, but do participate in the send-out" — they contribute nothing to
// reductions, but still receive results (convergence flags, termination
// notices) so their global state stays current.

// sendOutRoot is the active rank responsible for forwarding global results
// to removed nodes.
func (rt *Runtime) sendOutRoot() int { return rt.active[0] }

// sendOut forwards a global result to every removed rank (called by the
// send-out root only).
func (rt *Runtime) sendOut(v []float64) {
	if rt.comm.Rank() != rt.sendOutRoot() {
		return
	}
	for _, r := range rt.removed {
		rt.comm.Send(r, tagGlobal, v, mpi.F64Bytes(len(v)))
	}
}

// recvOut receives the next global result on a removed rank.
func (rt *Runtime) recvOut() []float64 {
	p, _ := rt.comm.Recv(rt.sendOutRoot(), tagGlobal)
	return p.([]float64)
}

// AllreduceF64s reduces a vector across the active nodes; removed nodes
// receive the result without contributing. Every rank — active or removed —
// must call global operations in the same order.
func (rt *Runtime) AllreduceF64s(vals []float64, op func(a, b float64) float64) []float64 {
	if rt.isOut {
		return rt.recvOut()
	}
	out := rt.comm.AllreduceF64s(rt.group, vals, op)
	rt.sendOut(out)
	return out
}

// AllreduceF64sInto reduces buf element-wise across the active nodes,
// storing the result back into buf (send-out aware). Unlike AllreduceF64s
// nothing retains the buffer afterwards, so per-cycle reductions can recycle
// one slice indefinitely.
func (rt *Runtime) AllreduceF64sInto(buf []float64, op func(a, b float64) float64) {
	if rt.isOut {
		copy(buf, rt.recvOut())
		return
	}
	rt.comm.AllreduceF64sInto(rt.group, buf, op)
	// Send-out must ship a private copy: eager sends park the payload in the
	// receiver's mailbox, and the caller is free to overwrite buf as soon as
	// we return.
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut(append([]float64(nil), buf...))
	}
}

// AllreduceSum reduces one value by summation (send-out aware).
func (rt *Runtime) AllreduceSum(v float64) float64 {
	if rt.isOut {
		return rt.recvOut()[0]
	}
	out := rt.comm.AllreduceSum(rt.group, v)
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut([]float64{out})
	}
	return out
}

// AllreduceMax reduces one value by maximum (send-out aware).
func (rt *Runtime) AllreduceMax(v float64) float64 {
	if rt.isOut {
		return rt.recvOut()[0]
	}
	out := rt.comm.AllreduceMax(rt.group, v)
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut([]float64{out})
	}
	return out
}

// BcastF64s distributes a vector from the active relative-rank root to all
// nodes, including removed ones.
func (rt *Runtime) BcastF64s(relRoot int, vals []float64) []float64 {
	if rt.isOut {
		return rt.recvOut()
	}
	root := rt.active[relRoot]
	out := rt.comm.Bcast(rt.group, root, vals, mpi.F64Bytes(len(vals))).([]float64)
	rt.sendOut(out)
	return out
}

// Barrier synchronises the active nodes. Removed nodes pass through
// immediately: the paper explicitly avoids "participating nodes being
// delayed by removed nodes".
func (rt *Runtime) Barrier() {
	if rt.isOut {
		return
	}
	rt.comm.Barrier(rt.group)
}

// Finalize completes the run: active nodes synchronise and the send-out
// root notifies every removed node that the computation terminated
// (removed nodes block here until that notice arrives).
func (rt *Runtime) Finalize() {
	rt.ensureCommitted()
	if rt.isOut {
		rt.comm.Recv(rt.sendOutRoot(), tagDone)
		return
	}
	rt.comm.Barrier(rt.group)
	if rt.comm.Rank() == rt.sendOutRoot() {
		for _, r := range rt.removed {
			rt.comm.Send(r, tagDone, nil, 0)
		}
	}
}
