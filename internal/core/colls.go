package core

import (
	"fmt"

	"repro/internal/mpi"
)

// This file implements the paper's modified global communication routines
// (§4.4): physically removed nodes "do not participate in the send-in
// phase, but do participate in the send-out" — they contribute nothing to
// reductions, but still receive results (convergence flags, termination
// notices) so their global state stays current.
//
// Every routine survives rank crashes: a collective that fails because a
// group member died is retried over the shrunken group (absorbFailure; the
// error is identical on every member, so all retry together and the data
// redistribution runs at the next cycle boundary). Removed ranks cannot
// take part in that agreement — if their send-out root crashes they abort
// the world with an explicit error instead of hanging.

// sendOutRoot is the active rank responsible for forwarding global results
// to removed nodes.
func (rt *Runtime) sendOutRoot() int { return rt.active[0] }

// sendOut forwards a global result to every removed rank (called by the
// send-out root only).
func (rt *Runtime) sendOut(v []float64) {
	if rt.comm.Rank() != rt.sendOutRoot() {
		return
	}
	for _, r := range rt.removed {
		// Deterministic dead guard (see knownDead): never ship global
		// results to a corpse's mailbox.
		if rt.knownDead(r) {
			continue
		}
		rt.comm.Send(r, tagGlobal, v, mpi.F64Bytes(len(v)))
	}
}

// recvOut receives the next global result on a removed rank.
func (rt *Runtime) recvOut() []float64 {
	p, _, err := rt.comm.RecvErr(rt.sendOutRoot(), tagGlobal)
	if err != nil {
		rt.comm.Abort(fmt.Errorf("core: removed rank %d: send-out root %d crashed: %w",
			rt.comm.Rank(), rt.sendOutRoot(), err))
	}
	return p.([]float64)
}

// AllreduceF64s reduces a vector across the active nodes; removed nodes
// receive the result without contributing. Every rank — active or removed —
// must call global operations in the same order.
func (rt *Runtime) AllreduceF64s(vals []float64, op func(a, b float64) float64) []float64 {
	if rt.isOut {
		return rt.recvOut()
	}
	for {
		out, err := rt.comm.AllreduceF64sErr(rt.group, vals, op)
		if err != nil {
			rt.absorbFailure(err)
			continue
		}
		rt.sendOut(out)
		return out
	}
}

// AllreduceF64sInto reduces buf element-wise across the active nodes,
// storing the result back into buf (send-out aware). Unlike AllreduceF64s
// nothing retains the buffer afterwards, so per-cycle reductions can recycle
// one slice indefinitely.
func (rt *Runtime) AllreduceF64sInto(buf []float64, op func(a, b float64) float64) {
	if rt.isOut {
		copy(buf, rt.recvOut())
		return
	}
	for {
		// On error buf is untouched, so the retry contributes intact values.
		if err := rt.comm.AllreduceF64sIntoErr(rt.group, buf, op); err != nil {
			rt.absorbFailure(err)
			continue
		}
		break
	}
	// Send-out must ship a private copy: eager sends park the payload in the
	// receiver's mailbox, and the caller is free to overwrite buf as soon as
	// we return.
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut(append([]float64(nil), buf...))
	}
}

// AllreduceSum reduces one value by summation (send-out aware).
func (rt *Runtime) AllreduceSum(v float64) float64 {
	if rt.isOut {
		return rt.recvOut()[0]
	}
	var out float64
	for {
		var err error
		out, err = rt.comm.AllreduceSumErr(rt.group, v)
		if err != nil {
			rt.absorbFailure(err)
			continue
		}
		break
	}
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut([]float64{out})
	}
	return out
}

// AllreduceMax reduces one value by maximum (send-out aware).
func (rt *Runtime) AllreduceMax(v float64) float64 {
	if rt.isOut {
		return rt.recvOut()[0]
	}
	var out float64
	for {
		var err error
		out, err = rt.comm.AllreduceMaxErr(rt.group, v)
		if err != nil {
			rt.absorbFailure(err)
			continue
		}
		break
	}
	if rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		rt.sendOut([]float64{out})
	}
	return out
}

// BcastF64s distributes a vector from the active relative-rank root to all
// nodes, including removed ones. If the root itself crashes, the retry
// re-resolves relRoot against the shrunken active list, so the new root's
// buffer is the one broadcast.
func (rt *Runtime) BcastF64s(relRoot int, vals []float64) []float64 {
	if rt.isOut {
		return rt.recvOut()
	}
	for {
		root := rt.active[relRoot]
		out, err := rt.comm.BcastErr(rt.group, root, vals, mpi.F64Bytes(len(vals)))
		if err != nil {
			rt.absorbFailure(err)
			continue
		}
		res := out.([]float64)
		rt.sendOut(res)
		return res
	}
}

// Barrier synchronises the active nodes. Removed nodes pass through
// immediately: the paper explicitly avoids "participating nodes being
// delayed by removed nodes".
func (rt *Runtime) Barrier() {
	if rt.isOut {
		return
	}
	for {
		if err := rt.comm.BarrierErr(rt.group); err != nil {
			rt.absorbFailure(err)
			continue
		}
		return
	}
}

// Finalize completes the run: active nodes synchronise and the send-out
// root notifies every removed node that the computation terminated
// (removed nodes block here until that notice arrives).
func (rt *Runtime) Finalize() {
	rt.ensureCommitted()
	if rt.isOut {
		if _, _, err := rt.comm.RecvErr(rt.sendOutRoot(), tagDone); err != nil {
			rt.comm.Abort(fmt.Errorf("core: removed rank %d: send-out root %d crashed: %w",
				rt.comm.Rank(), rt.sendOutRoot(), err))
		}
		return
	}
	rt.Barrier()
	if rt.comm.Rank() == rt.sendOutRoot() {
		for _, r := range rt.removed {
			if rt.knownDead(r) {
				continue
			}
			rt.comm.Send(r, tagDone, nil, 0)
		}
	}
}
