package core

import (
	"fmt"
	"sort"

	"repro/internal/distribution"
	"repro/internal/drsd"
)

// This file implements node re-addition, the §2.2 capability the paper
// leaves mostly to future work: "Dyn-MPI may remove (and potentially later
// add back) non dedicated nodes from the computation."
//
// The protocol must stay deterministic in virtual time, so removed nodes
// are polled synchronously: each cycle the send-out root pings every
// removed node, which replies with its current dmpi_ps reading, and then
// receives a verdict. When a removed node's competing processes have
// vanished, every active rank reaches the same decision (the removed loads
// travel in the root's load-exchange contribution), the group is rebuilt
// to include the rejoiner, and a redistribution ships it its share of the
// data — the DRSD window machinery treats a rank with an empty old range
// exactly like any other under-provisioned node.

// rejoinPacket is the verdict the root sends each removed node every
// cycle. A nil NewActive means "stay removed"; otherwise it carries
// everything the rejoiner needs to take part in the membership change
// (including the case where it stays removed but the active set changed
// because another node rejoined).
type rejoinPacket struct {
	NewActive  []int
	NewCounts  []int
	OldActive  []int
	OldCounts  []int
	NewRemoved []int
	Rejoining  []int
	BaseLoads  []int // the load baseline all members adopt, so change detection stays in lockstep
}

// wireBytes is the modelled wire size of the packet: 8 bytes of header plus
// 8 per int across all seven slices. The former flat 8+16*len(NewActive)
// undercharged badly — OldActive, OldCounts, NewRemoved, Rejoining and
// BaseLoads rode for free.
func (p *rejoinPacket) wireBytes() int {
	n := len(p.NewActive) + len(p.NewCounts) + len(p.OldActive) + len(p.OldCounts) +
		len(p.NewRemoved) + len(p.Rejoining) + len(p.BaseLoads)
	return 8 + 8*n
}

// loadMsg is one rank's contribution to the per-cycle load exchange. Only
// the send-out root fills the removed-node fields.
type loadMsg struct {
	Load         int
	RemovedRanks []int
	RemovedLoads []int
}

// knownDead reports whether rank r is in the deterministically-absorbed
// dead set. Protocol sends are guarded on this — never on the wall-clock
// mpi.World.Alive — because a cycle-triggered crash fires in the victim's
// own goroutine, physically concurrent with the root's poll: an Alive
// guard would make the root's send charge (and so its virtual clock)
// depend on goroutine scheduling. The absorbed set advances only at cycle
// boundaries, identically on every rank and every run. Since adapt.go
// prunes crashed removed nodes from rt.removed the same cycle they are
// detected, these guards never fire after that prune; they are the
// deterministic belt for the detection window itself.
func (rt *Runtime) knownDead(r int) bool {
	return containsInt(rt.deadRanks, r) || containsInt(rt.pendingDead, r)
}

// pollRemoved runs the root's ping/reply round with every removed node and
// returns their current loads (aligned with rt.removed).
func (rt *Runtime) pollRemoved() []int {
	loads := make([]int, len(rt.removed))
	for _, r := range rt.removed {
		if rt.knownDead(r) {
			continue
		}
		rt.comm.Send(r, tagPing, nil, 1)
	}
	for i, r := range rt.removed {
		if rt.knownDead(r) {
			loads[i] = -1
			continue
		}
		p, _, err := rt.comm.RecvErr(r, tagLoadReply)
		if err != nil {
			// Crashed removed node: the -1 sentinel travels through the
			// allgather, so every active rank prunes the same set.
			loads[i] = -1
			continue
		}
		loads[i] = p.(int)
	}
	return loads
}

// exchangeLoads gathers every active rank's load — and, when rejoin is
// enabled, the removed nodes' loads via the root — so all active ranks see
// an identical picture.
func (rt *Runtime) exchangeLoads() (active []int, removedRanks, removedLoads []int, err error) {
	// Fast path: with no removed-node sidecar to carry, every contribution
	// is a bare load reading, so the exchange rides the pooled float64
	// allgather instead of boxing a loadMsg per member per cycle. The wire
	// price (8 bytes per member) and the collective tree are identical to
	// the boxed path, so virtual timestamps — and the golden traces — do
	// not move.
	if !rt.cfg.AllowRejoin || len(rt.removed) == 0 {
		n := rt.group.Size()
		if cap(rt.loadBuf) < n {
			rt.loadBuf = make([]float64, n)
		}
		buf := rt.loadBuf[:n]
		err := rt.comm.AllgatherF64sIntoErr(rt.group, float64(rt.monitor.CompetingProcesses()), buf)
		if err != nil {
			return nil, nil, nil, err
		}
		if cap(rt.loadInts) < n {
			rt.loadInts = make([]int, n)
		}
		active = rt.loadInts[:n]
		for i, v := range buf {
			active[i] = int(v)
		}
		return active, nil, nil, nil
	}

	my := loadMsg{Load: rt.monitor.CompetingProcesses()}
	if rt.cfg.AllowRejoin && rt.comm.Rank() == rt.sendOutRoot() && len(rt.removed) > 0 {
		my.RemovedRanks = append([]int(nil), rt.removed...)
		my.RemovedLoads = rt.pollRemoved()
	}
	// Symmetric wire price: the allgather's cost closure runs on whichever
	// member physically arrives last, so a per-rank price (the former
	// 8+16*len(my.RemovedRanks), nonzero only on the root) made the charged
	// bytes depend on goroutine arrival order. Every rank knows rt.removed,
	// so all charge the same size — and the root's contribution really does
	// carry both the removed ranks and their loads, which the former price
	// ignored (RemovedLoads rode for free): 8 bytes of load plus 24 per
	// removed node.
	bytes := 8
	if rt.cfg.AllowRejoin && len(rt.removed) > 0 {
		bytes += 24 * len(rt.removed)
	}
	parts, err := rt.comm.AllgatherErr(rt.group, my, bytes)
	if err != nil {
		return nil, nil, nil, err
	}
	active = make([]int, len(parts))
	for i, p := range parts {
		m := p.(loadMsg)
		active[i] = m.Load
		if len(m.RemovedRanks) > 0 {
			removedRanks, removedLoads = m.RemovedRanks, m.RemovedLoads
		}
	}
	return active, removedRanks, removedLoads, nil
}

// maybeRejoin checks the polled removed-node loads and, when some node has
// become unloaded, executes the membership change. It reports whether a
// rejoin happened. All active ranks call this with identical arguments;
// the root additionally distributes verdicts to the removed nodes.
func (rt *Runtime) maybeRejoin(activeLoads, removedRanks, removedLoads []int) bool {
	if !rt.cfg.AllowRejoin || len(rt.removed) == 0 {
		return false
	}
	var rejoining []int
	for i, r := range removedRanks {
		// Ranks an explicit Resize shrank out stay removed even when
		// unloaded: re-admitting released capacity the next cycle would
		// flap the membership straight back.
		if removedLoads[i] == 0 && !containsInt(rt.resizedOut, r) {
			rejoining = append(rejoining, r)
		}
	}
	isRoot := rt.comm.Rank() == rt.sendOutRoot()
	if len(rejoining) == 0 {
		if isRoot {
			empty := rejoinPacket{}
			for _, r := range rt.removed {
				if rt.knownDead(r) {
					continue
				}
				rt.comm.Send(r, tagRejoin, empty, empty.wireBytes())
			}
		}
		return false
	}
	sort.Ints(rejoining)

	newActive := append(append([]int(nil), rt.active...), rejoining...)
	sort.Ints(newActive)
	var newRemoved []int
	for _, r := range rt.removed {
		keep := true
		for _, j := range rejoining {
			if j == r {
				keep = false
			}
		}
		if keep {
			newRemoved = append(newRemoved, r)
		}
	}

	// Balance over the new membership: rejoiners are unloaded by
	// definition; survivors keep their just-gathered loads.
	loadOf := map[int]int{}
	for i, r := range rt.active {
		loadOf[r] = activeLoads[i]
	}
	powers := rt.powers()
	nodes := make([]distribution.Node, len(newActive))
	for i, r := range newActive {
		nodes[i] = distribution.Node{Rank: r, Power: powers[r], Load: loadOf[r]}
	}
	iterCosts := rt.iterCosts
	if iterCosts == nil {
		iterCosts = make([]float64, rt.n)
		for i := range iterCosts {
			iterCosts[i] = 1
		}
	}
	fractions := distribution.RelativePowerFractions(nodes)
	counts := distribution.PartitionWeighted(iterCosts, fractions)
	newDist := drsd.NewBlock(newActive, counts)

	newBase := make([]int, len(newActive))
	for i, r := range newActive {
		newBase[i] = loadOf[r] // rejoiners default to 0
	}
	pkt := rejoinPacket{
		NewActive:  newActive,
		NewCounts:  counts,
		OldActive:  rt.dist.Ranks(),
		OldCounts:  rt.dist.Counts(),
		NewRemoved: newRemoved,
		Rejoining:  rejoining,
		BaseLoads:  newBase,
	}
	if isRoot {
		for _, r := range rt.removed {
			if rt.knownDead(r) {
				continue
			}
			rt.comm.Send(r, tagRejoin, pkt, pkt.wireBytes())
		}
	}

	// Rebuild membership, then redistribute with the rejoiners inside the
	// collective group so they receive their rows.
	rt.active = newActive
	rt.removed = newRemoved
	rt.group = rt.comm.World().NewGroup(newActive)
	rt.applyDistribution(newDist)
	rt.redists++
	rt.record(EvRejoin, 0, "")
	rt.emitMembership("rejoin")
	rt.baseLoads = newBase
	rt.state = stNormal
	rt.collector = nil
	rt.cycTimer = nil
	rt.cycOpen = false
	return true
}

// removedCycle is the removed node's side of the per-cycle protocol: reply
// to the root's ping with the local load, then apply the verdict.
func (rt *Runtime) removedCycle() {
	if !rt.cfg.AllowRejoin {
		return
	}
	root := rt.sendOutRoot()
	if _, _, err := rt.comm.RecvErr(root, tagPing); err != nil {
		rt.comm.Abort(fmt.Errorf("core: removed rank %d: send-out root %d crashed: %w", rt.comm.Rank(), root, err))
	}
	rt.comm.Send(root, tagLoadReply, rt.monitor.CompetingProcesses(), 8)
	p, _, err := rt.comm.RecvErr(root, tagRejoin)
	if err != nil {
		rt.comm.Abort(fmt.Errorf("core: removed rank %d: send-out root %d crashed: %w", rt.comm.Rank(), root, err))
	}
	pkt := p.(rejoinPacket)
	if pkt.NewActive == nil {
		return
	}
	// Membership changed. Even if this node stays removed, it must track
	// the new active set (the send-out root may have moved).
	me := rt.comm.Rank()
	rejoining := false
	for _, r := range pkt.Rejoining {
		if r == me {
			rejoining = true
		}
	}
	rt.active = pkt.NewActive
	rt.removed = pkt.NewRemoved
	if !rejoining {
		return
	}
	rt.isOut = false
	rt.group = rt.comm.World().NewGroup(pkt.NewActive)
	rt.dist = drsd.NewBlock(pkt.OldActive, pkt.OldCounts)
	rt.applyDistribution(drsd.NewBlock(pkt.NewActive, pkt.NewCounts))
	rt.redists++
	rt.record(EvRejoin, 0, "rejoined")
	rt.emitMembership("rejoined")
	rt.baseLoads = append([]int(nil), pkt.BaseLoads...)
	rt.state = stNormal
	rt.collector = nil
	rt.cycTimer = nil
	rt.cycOpen = false
}
