package core

import (
	"fmt"
	"sort"

	"repro/internal/distribution"
	"repro/internal/drsd"
	"repro/internal/mpi"
)

// This file implements elastic world resizing: growing the active set to
// brand-new ranks spawned into the cluster's arrival capacity, and shrinking
// it to a requested size, both at a cycle boundary. It generalises the
// shrink/rejoin machinery — a joiner is admitted through the same
// "redistribute with the newcomer inside the group" move a rejoiner uses,
// except that a joiner's runtime state must be bootstrapped from scratch:
// the root ships it a bootstrapPacket (the rejoin verdict extended with the
// cycle, the array registration metadata and the claim ledger) and the
// joiner enters the membership by receiving its rows in the same collective
// redistribution the actives execute.
//
// Determinism: growth is driven by state every active rank computes
// identically — the cluster's static arrival table (ArrivalsAt), the
// replicated claim ledger, and the explicit Resize target the SPMD
// discipline requires every rank to set at the same cycle. Only the root
// performs the physical Spawn and the bootstrap sends; everything else is
// symmetric.

// bootstrapPacket carries everything a spawned joiner needs to enter the
// membership: where the world is (cycle), what it computes (iteration space
// and array registration order, cross-checked against the joiner's own
// registration), who participates (old and new distribution, removed set,
// claim ledger) and the load baseline all members adopt.
type bootstrapPacket struct {
	Cycle     int      // phase cycle the joiner starts at
	Space     int      // distributed iteration-space size
	Arrays    []string // array names in registration order
	Claimed   []int    // arrival ranks claimed so far, including this joiner
	OldActive []int
	OldCounts []int
	NewActive []int
	NewCounts []int
	Removed   []int
	BaseLoads []int
}

// wireBytes models the packet's wire size: 24 bytes of header, 8 per int
// across the six int slices, and the array-name bytes.
func (p *bootstrapPacket) wireBytes() int {
	n := len(p.Claimed) + len(p.OldActive) + len(p.OldCounts) +
		len(p.NewActive) + len(p.NewCounts) + len(p.Removed) + len(p.BaseLoads)
	b := 24 + 8*n
	for _, s := range p.Arrays {
		b += len(s)
	}
	return b
}

// Resize requests that the active set be resized to n at the next cycle
// boundary. n greater than the current active count claims reserve arrival
// capacity (cluster.Spec.Arrivals with AtCycle < 0) and spawns brand-new
// ranks into it; n smaller shrinks the active set to its first n members
// (the send-out root, active[0], is always kept). Every active rank must
// call Resize with the same n at the same cycle — the SPMD discipline the
// rest of the runtime API already requires. Requires Config.Adapt.
func (rt *Runtime) Resize(n int) {
	if n < 1 {
		panic(fmt.Sprintf("core: Resize to %d", n))
	}
	rt.pendingResize = n
}

// maybeResize executes any membership resize due at this cycle boundary:
// scheduled capacity arrivals from the cluster table, plus an explicit
// Resize target. It reports whether the membership changed. All active
// ranks call it at the same point with identical state.
func (rt *Runtime) maybeResize(loads []int) bool {
	target := rt.pendingResize
	rt.pendingResize = 0
	if target == 0 && !rt.hasArrivals {
		return false
	}
	cl := rt.comm.World().Cluster()
	var joiners []int
	if rt.hasArrivals {
		for _, r := range cl.ArrivalsAt(rt.cycle) {
			if !containsInt(rt.claimed, r) {
				joiners = append(joiners, r)
			}
		}
	}
	if target > len(rt.active)+len(joiners) {
		// Explicit grow: claim unclaimed reserve capacity in spec order.
		need := target - len(rt.active) - len(joiners)
		for _, r := range cl.Reserves() {
			if need == 0 {
				break
			}
			if !containsInt(rt.claimed, r) && !containsInt(joiners, r) {
				joiners = append(joiners, r)
				need--
			}
		}
	}
	if len(joiners) > 0 {
		rt.grow(joiners, loads)
		return true
	}
	if target > 0 && target < len(rt.active) {
		rt.shrink(target, loads)
		return true
	}
	return false
}

// grow admits brand-new ranks: the root spawns their goroutines and ships
// each a bootstrap packet, then every member (joiners included, from inside
// their bootstrap) executes the same redistribution that hands the joiners
// their rows. loads is this cycle's gathered active load vector.
func (rt *Runtime) grow(joiners []int, loads []int) {
	sort.Ints(joiners)
	newActive := append(append([]int(nil), rt.active...), joiners...)
	sort.Ints(newActive)
	loadOf := map[int]int{}
	for i, r := range rt.active {
		loadOf[r] = loads[i]
	}
	powers := rt.powers()
	nodes := make([]distribution.Node, len(newActive))
	for i, r := range newActive {
		nodes[i] = distribution.Node{Rank: r, Power: powers[r], Load: loadOf[r]}
	}
	iterCosts := rt.iterCosts
	if iterCosts == nil {
		iterCosts = make([]float64, rt.n)
		for i := range iterCosts {
			iterCosts[i] = 1
		}
	}
	fractions := distribution.RelativePowerFractions(nodes)
	counts := distribution.PartitionWeighted(iterCosts, fractions)
	newDist := drsd.NewBlock(newActive, counts)
	newBase := make([]int, len(newActive))
	for i, r := range newActive {
		newBase[i] = loadOf[r] // joiners default to 0
	}
	rt.claimed = append(rt.claimed, joiners...)

	if rt.comm.Rank() == rt.sendOutRoot() {
		// Extend the pacing gate before the joiners exist, so a stepping
		// controller accounts for them from their first checkpoint.
		if g, ok := rt.cfg.Pacer.(interface{ Grow([]int) }); ok {
			g.Grow(joiners)
		}
		rt.comm.World().Spawn(joiners)
		pkt := bootstrapPacket{
			Cycle:     rt.cycle,
			Space:     rt.n,
			Arrays:    append([]string(nil), rt.order...),
			Claimed:   append([]int(nil), rt.claimed...),
			OldActive: rt.dist.Ranks(),
			OldCounts: rt.dist.Counts(),
			NewActive: newActive,
			NewCounts: counts,
			Removed:   append([]int(nil), rt.removed...),
			BaseLoads: newBase,
		}
		for _, r := range joiners {
			rt.comm.Send(r, tagBootstrap, pkt, pkt.wireBytes())
		}
	}

	// Redistribute with the joiners inside the collective group so they
	// receive their rows; they meet this collective from bootstrap().
	rt.active = newActive
	rt.group = rt.comm.World().NewGroup(newActive)
	rt.applyDistribution(newDist)
	rt.redists++
	rt.record(EvResize, 0, fmt.Sprintf("grow joiners=%v", joiners))
	rt.emitMembership("resize-grow")
	rt.baseLoads = newBase
	rt.state = stNormal
	rt.collector = nil
	rt.cycTimer = nil
	rt.cycOpen = false
}

// shrink reduces the active set to its first target members. The dropped
// ranks ship their rows out in the removal redistribution (they are still
// in the group) and switch to the send-out-only protocol, exactly like a
// dropLoaded removal — but they are recorded in resizedOut, so automatic
// rejoin never re-admits capacity an explicit Resize released.
func (rt *Runtime) shrink(target int, loads []int) {
	stay := append([]int(nil), rt.active[:target]...)
	out := append([]int(nil), rt.active[target:]...)
	powers := rt.powers()
	stayNodes := make([]distribution.Node, len(stay))
	for i, r := range stay {
		stayNodes[i] = distribution.Node{Rank: r, Power: powers[r], Load: loads[i]}
	}
	iterCosts := rt.iterCosts
	if iterCosts == nil {
		iterCosts = make([]float64, rt.n)
		for i := range iterCosts {
			iterCosts[i] = 1
		}
	}
	fractions := distribution.RelativePowerFractions(stayNodes)
	counts := distribution.PartitionWeighted(iterCosts, fractions)
	// The removal redistribution happens while the dropped ranks are still
	// in the group, so they can ship their rows out.
	rt.applyDistribution(drsd.NewBlock(stay, counts))
	rt.redists++

	rt.active = stay
	rt.removed = append(rt.removed, out...)
	rt.resizedOut = append(rt.resizedOut, out...)
	rt.group = rt.comm.World().NewGroup(stay)
	newBase := make([]int, len(stay))
	for i := range stay {
		newBase[i] = loads[i]
	}
	rt.baseLoads = newBase
	me := rt.comm.Rank()
	for _, r := range out {
		if r == me {
			rt.isOut = true
			rt.record(EvRemoved, 0, "resize")
		}
	}
	rt.record(EvResize, 0, fmt.Sprintf("shrink active=%v removed=%v", stay, out))
	if rt.isOut {
		rt.emitMembership("resize-removed")
	} else {
		rt.emitMembership("resize-shrink")
	}
	rt.state = stNormal
	rt.collector = nil
	rt.cycTimer = nil
	rt.cycOpen = false
}

// bootstrap is the joiner's side of growth, run from ensureCommitted when
// the application commits its registration: receive the root's bootstrap
// packet, validate that this rank registered the same computation, adopt
// the membership, and meet the admission redistribution the actives are
// already executing.
func (rt *Runtime) bootstrap() {
	p, _, err := rt.comm.RecvErr(mpi.AnySource, tagBootstrap)
	if err != nil {
		rt.comm.Abort(fmt.Errorf("core: joiner rank %d: bootstrap receive: %w", rt.comm.Rank(), err))
	}
	pkt, ok := p.(bootstrapPacket)
	if !ok {
		rt.comm.Abort(fmt.Errorf("core: joiner rank %d: bad bootstrap payload %T", rt.comm.Rank(), p))
	}
	if pkt.Space != rt.n {
		rt.comm.Abort(fmt.Errorf("core: joiner rank %d registered iteration space %d, world has %d",
			rt.comm.Rank(), rt.n, pkt.Space))
	}
	if len(pkt.Arrays) != len(rt.order) {
		rt.comm.Abort(fmt.Errorf("core: joiner rank %d registered %d arrays, world has %d",
			rt.comm.Rank(), len(rt.order), len(pkt.Arrays)))
	}
	for i, name := range pkt.Arrays {
		if rt.order[i] != name {
			rt.comm.Abort(fmt.Errorf("core: joiner rank %d registered array %q at slot %d, world has %q",
				rt.comm.Rank(), rt.order[i], i, name))
		}
	}
	rt.cycle = pkt.Cycle
	rt.active = append([]int(nil), pkt.NewActive...)
	rt.removed = append([]int(nil), pkt.Removed...)
	rt.claimed = append([]int(nil), pkt.Claimed...)
	rt.group = rt.comm.World().NewGroup(pkt.NewActive)
	// Under the old distribution this rank owns nothing; applyDistribution
	// treats the empty old range like any other under-provisioned member
	// and ships it every row of its new window.
	rt.dist = drsd.NewBlock(pkt.OldActive, pkt.OldCounts)
	rt.applyDistribution(drsd.NewBlock(pkt.NewActive, pkt.NewCounts))
	rt.redists++
	rt.record(EvResize, 0, "joined")
	rt.emitMembership("resize-join")
	rt.baseLoads = append([]int(nil), pkt.BaseLoads...)
	rt.state = stNormal
}
