package drsd

import (
	"math/rand"
	"testing"
)

// randBlock builds a block distribution of n rows over the given ranks with
// random (possibly zero) counts.
func randBlock(rng *rand.Rand, ranks []int, n int) *Block {
	counts := make([]int, len(ranks))
	left := n
	for i := 0; i < len(ranks)-1; i++ {
		counts[i] = rng.Intn(left + 1)
		left -= counts[i]
	}
	counts[len(ranks)-1] = left
	return NewBlock(ranks, counts)
}

// randMembership returns a random sorted subset of [0,worldCap) with at
// least one member — old and new memberships drawn independently model
// joiners (in new only) and leavers (in old only).
func randMembership(rng *rand.Rand, worldCap int) []int {
	var m []int
	for r := 0; r < worldCap; r++ {
		if rng.Intn(2) == 0 {
			m = append(m, r)
		}
	}
	if len(m) == 0 {
		m = append(m, rng.Intn(worldCap))
	}
	return m
}

// TestScheduleDiffEquivalentToWindows property-tests the resize fast path:
// for owned-only access patterns the diff schedule must emit exactly the
// transfers ScheduleWindowsInto emits — same rows, same endpoints, same
// deterministic order — across random redistributions including grows
// (ranks with no old range) and shrinks (ranks with no new range).
func TestScheduleDiffEquivalentToWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	owned := []Access{{Array: "X", Mode: ReadWrite, Step: 1, Off: 0}}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		oldD := randBlock(rng, randMembership(rng, 8), n)
		newD := randBlock(rng, randMembership(rng, 8), n)
		want := ScheduleWindowsInto(nil, oldD, newD, owned)
		got := ScheduleDiffInto(nil, oldD, newD)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d transfers, want %d\nold %v/%v new %v/%v\ngot  %v\nwant %v",
				trial, len(got), len(want), oldD.Ranks(), oldD.Counts(), newD.Ranks(), newD.Counts(), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d transfer %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestScheduleDiffMovesOnlyOwnerChangedRows pins the diff schedule's
// defining invariant against a full reshuffle: a row travels exactly when
// its owner changed and the new owner did not already hold it, each such
// row travels exactly once, from its old owner to its new owner.
func TestScheduleDiffMovesOnlyOwnerChangedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		oldD := randBlock(rng, randMembership(rng, 8), n)
		newD := randBlock(rng, randMembership(rng, 8), n)
		moved := make([]int, n) // times each row travels
		for _, tr := range ScheduleDiffInto(nil, oldD, newD) {
			if tr.Lo >= tr.Hi {
				t.Fatalf("trial %d: empty transfer %+v", trial, tr)
			}
			for g := tr.Lo; g < tr.Hi; g++ {
				moved[g]++
				if oldD.Owner(g) != tr.From {
					t.Fatalf("trial %d: row %d shipped from %d, old owner is %d", trial, g, tr.From, oldD.Owner(g))
				}
				if newD.Owner(g) != tr.To {
					t.Fatalf("trial %d: row %d shipped to %d, new owner is %d", trial, g, tr.To, newD.Owner(g))
				}
			}
		}
		for g := 0; g < n; g++ {
			needsMove := newD.Owner(g) != oldD.Owner(g)
			if needsMove && moved[g] != 1 {
				t.Fatalf("trial %d: owner-changed row %d moved %d times, want 1", trial, g, moved[g])
			}
			if !needsMove && moved[g] != 0 {
				t.Fatalf("trial %d: row %d moved %d times despite unchanged owner %d", trial, g, moved[g], oldD.Owner(g))
			}
		}
	}
}
