// Package drsd implements (Deferred) Regular Section Descriptors and the
// ownership machinery built on them (paper §2.2, §4.4).
//
// An RSD describes a set of array rows as start/end/step. A Dyn-MPI access
// declaration (DMPI_add_array_access) is a *deferred* RSD: its bounds are
// functions of the node's current iteration range, evaluated only at run
// time — after every redistribution the same declaration yields the node's
// new required rows. Comparing the rows a node holds with the rows its
// DRSDs require after a distribution change yields precisely the
// communication schedule for redistribution, the technique the paper
// borrows from the Fortran D compiler.
package drsd

import (
	"fmt"
	"sort"
)

// Mode describes how an access touches an array.
type Mode int

const (
	Read Mode = iota
	Write
	ReadWrite
)

// String names the access mode.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadWrite:
		return "readwrite"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// RSD is a regular section of rows: {Start, Start+Step, ...} up to but not
// including End. A canonical empty section has Start == End.
type RSD struct {
	Start, End, Step int
}

// Empty reports whether the section contains no rows.
func (r RSD) Empty() bool { return r.Start >= r.End }

// Len reports the number of rows in the section.
func (r RSD) Len() int {
	if r.Empty() {
		return 0
	}
	return (r.End - r.Start + r.Step - 1) / r.Step
}

// Contains reports whether row g is in the section.
func (r RSD) Contains(g int) bool {
	return g >= r.Start && g < r.End && (g-r.Start)%r.Step == 0
}

// Rows materialises the section (for tests and schedules over small N).
func (r RSD) Rows() []int {
	out := make([]int, 0, r.Len())
	for g := r.Start; g < r.End; g += r.Step {
		out = append(out, g)
	}
	return out
}

// Access is one deferred RSD: an array reference of the form
// name[i*Step + Off] inside a loop distributed over i. One Access is
// declared per array reference in the parallel loop.
type Access struct {
	Array string
	Mode  Mode
	Step  int // reference stride per iteration (>= 1)
	Off   int // constant offset from the iteration variable
}

// Eval computes the rows this access touches when the node executes
// iterations [lo,hi), clamped to the array's [0,n) rows. This is the
// deferred bound computation that gives DRSDs their name.
func (a Access) Eval(lo, hi, n int) RSD {
	if a.Step < 1 {
		panic(fmt.Sprintf("drsd: access step %d < 1", a.Step))
	}
	if lo >= hi {
		return RSD{Step: 1}
	}
	start := lo*a.Step + a.Off
	end := (hi-1)*a.Step + a.Off + 1
	if start < 0 {
		start = 0
	}
	if end > n {
		end = n
	}
	if start >= end {
		return RSD{Step: 1}
	}
	return RSD{Start: start, End: end, Step: a.Step}
}

// Window returns the smallest contiguous [wlo, whi) covering every access
// for iterations [lo,hi) of an n-row iteration space. It is the resident
// window a node must hold (owned rows plus ghost rows).
func Window(accesses []Access, lo, hi, n int) (wlo, whi int) {
	wlo, whi = n, 0
	for _, a := range accesses {
		r := a.Eval(lo, hi, n)
		if r.Empty() {
			continue
		}
		if r.Start < wlo {
			wlo = r.Start
		}
		if r.End > whi {
			whi = r.End
		}
	}
	if wlo > whi {
		return 0, 0
	}
	return wlo, whi
}

// --- distributions ---------------------------------------------------------

// Distribution maps each row of a global iteration/row space to the world
// rank owning it. Rows owned by no rank (removed nodes hold nothing) are
// impossible by construction: a Distribution is total.
type Distribution interface {
	// Owner returns the world rank owning row g.
	Owner(g int) int
	// Rows reports the size of the distributed dimension.
	Rows() int
	// Ranks returns the participating world ranks in relative-rank order.
	Ranks() []int
}

// Block is a variable block distribution: rank Ranks[i] owns rows
// [Bounds[i], Bounds[i+1]). len(Bounds) == len(Ranks)+1, Bounds[0] == 0 and
// Bounds[len(Ranks)] == Rows. Blocks may be empty.
type Block struct {
	bounds []int
	ranks  []int
}

// NewBlock builds a variable block distribution. counts[i] rows go to
// ranks[i], in order.
func NewBlock(ranks, counts []int) *Block {
	if len(ranks) == 0 || len(ranks) != len(counts) {
		panic("drsd: NewBlock needs matching non-empty ranks and counts")
	}
	b := &Block{ranks: append([]int(nil), ranks...), bounds: make([]int, len(ranks)+1)}
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("drsd: negative block count %d", c))
		}
		b.bounds[i+1] = b.bounds[i] + c
	}
	return b
}

// EqualBlock distributes n rows over ranks as evenly as possible (the
// DMPI_BLOCK initial distribution), giving earlier ranks the remainder.
func EqualBlock(ranks []int, n int) *Block {
	p := len(ranks)
	counts := make([]int, p)
	base, rem := n/p, n%p
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	return NewBlock(ranks, counts)
}

// Owner implements Distribution.
func (b *Block) Owner(g int) int {
	if g < 0 || g >= b.Rows() {
		panic(fmt.Sprintf("drsd: row %d outside [0,%d)", g, b.Rows()))
	}
	i := sort.SearchInts(b.bounds, g+1) - 1
	return b.ranks[i]
}

// Rows implements Distribution.
func (b *Block) Rows() int { return b.bounds[len(b.bounds)-1] }

// Ranks implements Distribution.
func (b *Block) Ranks() []int { return b.ranks }

// Counts returns the per-rank row counts in relative-rank order.
func (b *Block) Counts() []int {
	out := make([]int, len(b.ranks))
	for i := range out {
		out[i] = b.bounds[i+1] - b.bounds[i]
	}
	return out
}

// RangeOf returns the iteration range [lo,hi) assigned to world rank r, or
// (0,0) if r does not participate.
func (b *Block) RangeOf(r int) (lo, hi int) {
	for i, rk := range b.ranks {
		if rk == r {
			return b.bounds[i], b.bounds[i+1]
		}
	}
	return 0, 0
}

// Cyclic assigns row g to Ranks[g mod p] (the DMPI_CYCLIC distribution).
type Cyclic struct {
	ranks []int
	rows  int
}

// NewCyclic builds a cyclic distribution of n rows over ranks.
func NewCyclic(ranks []int, n int) *Cyclic {
	if len(ranks) == 0 {
		panic("drsd: empty cyclic ranks")
	}
	return &Cyclic{ranks: append([]int(nil), ranks...), rows: n}
}

// Owner implements Distribution.
func (c *Cyclic) Owner(g int) int {
	if g < 0 || g >= c.rows {
		panic(fmt.Sprintf("drsd: row %d outside [0,%d)", g, c.rows))
	}
	return c.ranks[g%len(c.ranks)]
}

// Rows implements Distribution.
func (c *Cyclic) Rows() int { return c.rows }

// Ranks implements Distribution.
func (c *Cyclic) Ranks() []int { return c.ranks }

// --- redistribution schedules ----------------------------------------------

// Transfer moves the contiguous rows [Lo,Hi) from world rank From to world
// rank To.
type Transfer struct {
	From, To int
	Lo, Hi   int
}

// Schedule computes the minimal set of contiguous transfers that transform
// ownership from old to new. Rows whose owner is unchanged generate no
// traffic. Transfers are ordered by row, so both endpoints can derive a
// deterministic message order.
func Schedule(oldD, newD Distribution) []Transfer {
	if oldD.Rows() != newD.Rows() {
		panic("drsd: schedule across different row counts")
	}
	var out []Transfer
	n := oldD.Rows()
	for g := 0; g < n; g++ {
		f, t := oldD.Owner(g), newD.Owner(g)
		if f == t {
			continue
		}
		if k := len(out) - 1; k >= 0 && out[k].From == f && out[k].To == t && out[k].Hi == g {
			out[k].Hi = g + 1
			continue
		}
		out = append(out, Transfer{From: f, To: t, Lo: g, Hi: g + 1})
	}
	return out
}

// ScheduleWindows computes the transfers needed to move an array from an
// old to a new *block* distribution when each node must end up holding its
// DRSD *window* (owned rows plus ghost rows required by the accesses), not
// just its owned range. Every required row a node does not already hold is
// fetched from its old owner — the authoritative copy. A row needed by
// several nodes is sent to each. Transfers are coalesced into contiguous
// ranges and ordered deterministically (by receiving rank, then row).
func ScheduleWindows(oldD, newD *Block, accesses []Access) []Transfer {
	return ScheduleWindowsInto(nil, oldD, newD, accesses)
}

// ScheduleWindowsInto is ScheduleWindows appending into buf, so steady-state
// callers can recycle one transfer slice across redistributions (pass
// buf[:0]). buf may be nil. The computation is range-based: the rows a rank
// must fetch are its new window minus its old held window — at most two
// contiguous gaps, one on each side of the held range — and each gap is
// intersected against the old distribution's block segments directly instead
// of walking rows one at a time. Each old rank owns exactly one contiguous
// segment, so adjacent intersections always have distinct senders and the
// output needs no row-level coalescing; it is identical, transfer for
// transfer, to the per-row formulation.
func ScheduleWindowsInto(buf []Transfer, oldD, newD *Block, accesses []Access) []Transfer {
	if oldD.Rows() != newD.Rows() {
		panic("drsd: schedule across different row counts")
	}
	n := oldD.Rows()
	out := buf
	for _, r := range newD.Ranks() {
		nlo, nhi := newD.RangeOf(r)
		wlo, whi := Window(accesses, nlo, nhi, n)
		olo, ohi := oldD.RangeOf(r)
		hlo, hhi := 0, 0
		if olo < ohi {
			hlo, hhi = Window(accesses, olo, ohi, n)
		}
		// Needed = [wlo,whi) minus [hlo,hhi): the gap below the held window
		// and the gap above it. When the held window is empty or disjoint,
		// one gap degenerates and the other covers the whole new window.
		out = appendGapTransfers(out, oldD, r, wlo, min(whi, hlo))
		out = appendGapTransfers(out, oldD, r, max(wlo, hhi), whi)
	}
	return out
}

// appendGapTransfers emits one transfer per old-distribution block segment
// overlapping [lo,hi), skipping segments already owned by the receiver r
// (rows a rank owned are resident even outside its old window).
func appendGapTransfers(out []Transfer, oldD *Block, r, lo, hi int) []Transfer {
	for lo < hi {
		i := sort.SearchInts(oldD.bounds, lo+1) - 1
		segHi := min(oldD.bounds[i+1], hi)
		if from := oldD.ranks[i]; from != r {
			out = append(out, Transfer{From: from, To: r, Lo: lo, Hi: segHi})
		}
		lo = segHi
	}
	return out
}

// OwnedOnly reports whether every access is a unit-stride, zero-offset
// reference — the pattern whose DRSD window is exactly the owned iteration
// range, with no ghost rows. Arrays matching it can be redistributed with
// the cheaper ScheduleDiff instead of the window machinery.
func OwnedOnly(accesses []Access) bool {
	if len(accesses) == 0 {
		return false
	}
	for _, a := range accesses {
		if a.Step != 1 || a.Off != 0 {
			return false
		}
	}
	return true
}

// ScheduleDiff computes the contiguous-window delta between two block
// distributions: one transfer per maximal contiguous run of rows whose
// owner changed, and nothing else. It is the resize-time schedule — when a
// world grows or shrinks, only the rows the new partition reassigns move,
// never the full array — and is equivalent to the per-row Schedule over the
// same distributions (property-tested), but runs on block bounds instead of
// rows: O(p·log q) in the rank counts, independent of the row count.
// Transfers are ordered by receiving rank (newD rank order), then row —
// the same deterministic order ScheduleWindowsInto emits — so both the
// blocking and RMA redistribution engines can consume it directly.
func ScheduleDiff(oldD, newD *Block) []Transfer {
	return ScheduleDiffInto(nil, oldD, newD)
}

// ScheduleDiffInto is ScheduleDiff appending into buf (pass buf[:0] to
// recycle a scratch slice across resizes). buf may be nil.
func ScheduleDiffInto(buf []Transfer, oldD, newD *Block) []Transfer {
	if oldD.Rows() != newD.Rows() {
		panic("drsd: schedule across different row counts")
	}
	out := buf
	for i, r := range newD.ranks {
		nlo, nhi := newD.bounds[i], newD.bounds[i+1]
		olo, ohi := oldD.RangeOf(r)
		if olo >= ohi {
			// Owned nothing before (a joiner): the whole new range is one gap.
			olo, ohi = nlo, nlo
		}
		// Needed = [nlo,nhi) minus the previously owned [olo,ohi): at most
		// one gap on each side. appendGapTransfers skips segments the
		// receiver already owns, so an old range interleaved with the gaps
		// generates no self-transfers.
		out = appendGapTransfers(out, oldD, r, nlo, min(nhi, olo))
		out = appendGapTransfers(out, oldD, r, max(nlo, ohi), nhi)
	}
	return out
}

// BytesMoved reports the total payload of a schedule given a per-row size.
func BytesMoved(ts []Transfer, rowBytes func(g int) int64) int64 {
	var total int64
	for _, t := range ts {
		for g := t.Lo; g < t.Hi; g++ {
			total += rowBytes(g)
		}
	}
	return total
}
