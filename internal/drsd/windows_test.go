package drsd

import (
	"testing"
	"testing/quick"
)

var stencil = []Access{
	{Array: "A", Mode: Write, Step: 1, Off: 0},
	{Array: "A", Mode: Read, Step: 1, Off: -1},
	{Array: "A", Mode: Read, Step: 1, Off: +1},
}

var ownedOnly = []Access{{Array: "A", Mode: ReadWrite, Step: 1, Off: 0}}

func TestScheduleWindowsNoChangeNoTraffic(t *testing.T) {
	b := EqualBlock([]int{0, 1, 2, 3}, 40)
	if s := ScheduleWindows(b, b, stencil); len(s) != 0 {
		t.Fatalf("identical distributions produced %v", s)
	}
}

func TestScheduleWindowsOwnedOnlyMatchesSchedule(t *testing.T) {
	old := NewBlock([]int{0, 1, 2}, []int{10, 10, 10})
	nw := NewBlock([]int{0, 1, 2}, []int{15, 10, 5})
	a := ScheduleWindows(old, nw, ownedOnly)
	b := Schedule(old, nw)
	if len(a) != len(b) {
		t.Fatalf("windows %v vs plain %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("windows %v vs plain %v", a, b)
		}
	}
}

func TestScheduleWindowsFetchesGhosts(t *testing.T) {
	// Rank 1's block moves from [10,20) to [12,22): besides owned rows
	// 20,21 it must also fetch ghost row 22 (and 11 stays resident from
	// the old window [9,21)).
	old := NewBlock([]int{0, 1, 2}, []int{10, 10, 10})
	nw := NewBlock([]int{0, 1, 2}, []int{12, 10, 8})
	s := ScheduleWindows(old, nw, stencil)
	needs := map[int]map[int]bool{} // to -> rows
	for _, tr := range s {
		if needs[tr.To] == nil {
			needs[tr.To] = map[int]bool{}
		}
		for g := tr.Lo; g < tr.Hi; g++ {
			if !needs[tr.To][g] {
				needs[tr.To][g] = true
			}
		}
	}
	// Rank 1 new window: rows 11..22; old window 9..20 -> must fetch 21, 22
	// (owned 20 was already resident as a ghost... no: old window of rank 1
	// is [9,21), so 20 is resident; 21 and 22 must arrive).
	for _, g := range []int{21, 22} {
		if !needs[1][g] {
			t.Fatalf("rank 1 missing row %d; schedule %v", g, s)
		}
	}
	if needs[1][20] {
		t.Fatalf("rank 1 refetched already-resident row 20; schedule %v", s)
	}
	// Every fetched row comes from its old owner.
	for _, tr := range s {
		for g := tr.Lo; g < tr.Hi; g++ {
			if old.Owner(g) != tr.From {
				t.Fatalf("row %d fetched from %d, owner is %d", g, tr.From, old.Owner(g))
			}
		}
	}
}

func TestScheduleWindowsGhostToMultipleDestinations(t *testing.T) {
	// Shrinking rank 1 to zero rows: ranks 0 and 2 become adjacent; row
	// ownership boundary moves and the boundary rows must be fetched as
	// ghosts by both sides where needed.
	old := NewBlock([]int{0, 1, 2}, []int{10, 10, 10})
	nw := NewBlock([]int{0, 1, 2}, []int{15, 0, 15})
	s := ScheduleWindows(old, nw, stencil)
	// Rank 0 needs window [0,16): fetch 10..15 from rank 1. Rank 2 needs
	// [14,30): fetch 14 (owner 1)... row 14 goes to both 0 and 2.
	dests := map[int][]int{}
	for _, tr := range s {
		for g := tr.Lo; g < tr.Hi; g++ {
			if g == 14 {
				dests[14] = append(dests[14], tr.To)
			}
		}
	}
	if len(dests[14]) != 2 {
		t.Fatalf("row 14 sent to %v, want both neighbours", dests[14])
	}
}

func TestScheduleWindowsNewRankFetchesEverything(t *testing.T) {
	// A rejoining rank absent from the old distribution must fetch its
	// whole window from the old owners.
	old := NewBlock([]int{0, 2}, []int{15, 15})
	nw := NewBlock([]int{0, 1, 2}, []int{10, 10, 10})
	s := ScheduleWindows(old, nw, stencil)
	got := map[int]bool{}
	for _, tr := range s {
		if tr.To != 1 {
			continue
		}
		for g := tr.Lo; g < tr.Hi; g++ {
			got[g] = true
		}
	}
	for g := 9; g < 21; g++ { // window [9,21) for block [10,20)
		if !got[g] {
			t.Fatalf("rejoiner missing row %d; schedule %v", g, s)
		}
	}
}

// Property: after applying a windows schedule, every rank holds exactly its
// new DRSD window (rows it owned before plus rows delivered), and rows are
// always sourced from their old owners.
func TestScheduleWindowsCoverageProperty(t *testing.T) {
	f := func(oldCounts, newCounts [4]uint8) bool {
		ranks := []int{0, 1, 2, 3}
		tot := 0
		oc := make([]int, 4)
		for i := range oc {
			oc[i] = int(oldCounts[i])%8 + 1
			tot += oc[i]
		}
		nc := make([]int, 4)
		rem := tot
		for i := 0; i < 3; i++ {
			nc[i] = int(newCounts[i]) % (rem + 1)
			rem -= nc[i]
		}
		nc[3] = rem
		old := NewBlock(ranks, oc)
		nw := NewBlock(ranks, nc)
		s := ScheduleWindows(old, nw, stencil)

		// Residency per rank before: old window; apply deliveries.
		holds := make([]map[int]bool, 4)
		for i, r := range ranks {
			holds[i] = map[int]bool{}
			lo, hi := old.RangeOf(r)
			if lo < hi {
				wlo, whi := Window(stencil, lo, hi, tot)
				for g := wlo; g < whi; g++ {
					holds[i][g] = true
				}
			}
		}
		for _, tr := range s {
			if old.Owner(tr.Lo) != tr.From {
				return false
			}
			for g := tr.Lo; g < tr.Hi; g++ {
				if old.Owner(g) != tr.From {
					return false
				}
				holds[tr.To][g] = true
			}
		}
		for i, r := range ranks {
			lo, hi := nw.RangeOf(r)
			if lo >= hi {
				continue
			}
			wlo, whi := Window(stencil, lo, hi, tot)
			for g := wlo; g < whi; g++ {
				if !holds[i][g] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// scheduleWindowsRowByRow is the original per-row formulation, kept as the
// reference oracle for the range-based ScheduleWindows.
func scheduleWindowsRowByRow(oldD, newD *Block, accesses []Access) []Transfer {
	n := oldD.Rows()
	var out []Transfer
	for _, r := range newD.Ranks() {
		nlo, nhi := newD.RangeOf(r)
		wlo, whi := Window(accesses, nlo, nhi, n)
		olo, ohi := oldD.RangeOf(r)
		hlo, hhi := 0, 0
		if olo < ohi {
			hlo, hhi = Window(accesses, olo, ohi, n)
		}
		for g := wlo; g < whi; g++ {
			if g >= hlo && g < hhi {
				continue
			}
			from := oldD.Owner(g)
			if from == r {
				continue
			}
			if k := len(out) - 1; k >= 0 && out[k].From == from && out[k].To == r && out[k].Hi == g {
				out[k].Hi = g + 1
				continue
			}
			out = append(out, Transfer{From: from, To: r, Lo: g, Hi: g + 1})
		}
	}
	return out
}

// Property: the range-based schedule is transfer-for-transfer identical to
// the per-row reference, including under empty blocks, rejoining ranks, and
// wide ghost offsets.
func TestScheduleWindowsMatchesRowByRowReference(t *testing.T) {
	accessSets := [][]Access{
		stencil,
		ownedOnly,
		{{Array: "A", Step: 1, Off: -3}, {Array: "A", Step: 1, Off: 0}, {Array: "A", Step: 1, Off: 5}},
	}
	f := func(oldCounts, newCounts [5]uint8, accPick uint8) bool {
		ranks := []int{0, 1, 2, 3, 4}
		acc := accessSets[int(accPick)%len(accessSets)]
		tot := 0
		oc := make([]int, 5)
		for i := range oc {
			oc[i] = int(oldCounts[i]) % 9 // empty old blocks allowed
			tot += oc[i]
		}
		if tot == 0 {
			oc[0], tot = 1, 1
		}
		nc := make([]int, 5)
		rem := tot
		for i := 0; i < 4; i++ {
			nc[i] = int(newCounts[i]) % (rem + 1)
			rem -= nc[i]
		}
		nc[4] = rem
		old := NewBlock(ranks, oc)
		nw := NewBlock(ranks, nc)
		want := scheduleWindowsRowByRow(old, nw, acc)
		got := ScheduleWindows(old, nw, acc)
		if len(got) != len(want) {
			t.Logf("old=%v new=%v acc=%d: got %v want %v", oc, nc, accPick, got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("old=%v new=%v acc=%d: got %v want %v", oc, nc, accPick, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleWindowsIntoReusesBuffer(t *testing.T) {
	old := NewBlock([]int{0, 1, 2}, []int{10, 10, 10})
	nw := NewBlock([]int{0, 1, 2}, []int{15, 10, 5})
	buf := ScheduleWindowsInto(nil, old, nw, stencil)
	want := append([]Transfer(nil), buf...)
	got := ScheduleWindowsInto(buf[:0], old, nw, stencil)
	if &got[0] != &buf[0] {
		t.Fatal("ScheduleWindowsInto did not reuse the provided buffer")
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestScheduleWindowsMismatchedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ScheduleWindows(EqualBlock([]int{0}, 4), EqualBlock([]int{0}, 5), stencil)
}
