package drsd

import (
	"testing"
	"testing/quick"
)

func TestRSDBasics(t *testing.T) {
	r := RSD{Start: 2, End: 11, Step: 3} // 2, 5, 8
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(5) || r.Contains(6) || r.Contains(11) {
		t.Fatal("Contains wrong")
	}
	rows := r.Rows()
	if len(rows) != 3 || rows[0] != 2 || rows[2] != 8 {
		t.Fatalf("Rows = %v", rows)
	}
	if !(RSD{Start: 5, End: 5, Step: 1}).Empty() {
		t.Fatal("empty section not empty")
	}
}

func TestAccessEvalClamps(t *testing.T) {
	a := Access{Array: "B", Mode: Read, Step: 1, Off: -1}
	r := a.Eval(0, 10, 100) // rows -1..8 clamp to 0..8
	if r.Start != 0 || r.End != 9 {
		t.Fatalf("eval = %+v", r)
	}
	b := Access{Array: "B", Mode: Read, Step: 1, Off: +1}
	r = b.Eval(95, 100, 100) // rows 96..100 clamp to 96..99
	if r.Start != 96 || r.End != 100 {
		t.Fatalf("eval = %+v", r)
	}
}

func TestAccessEvalEmptyRange(t *testing.T) {
	a := Access{Step: 1}
	if !a.Eval(5, 5, 10).Empty() {
		t.Fatal("empty iteration range should give empty RSD")
	}
}

func TestAccessEvalStride(t *testing.T) {
	a := Access{Step: 2, Off: 1} // touches rows 2i+1
	r := a.Eval(3, 6, 100)       // i = 3,4,5 -> rows 7,9,11
	if r.Start != 7 || r.End != 12 || r.Step != 2 {
		t.Fatalf("eval = %+v", r)
	}
	if got := r.Rows(); len(got) != 3 || got[1] != 9 {
		t.Fatalf("rows = %v", got)
	}
}

func TestWindowUnion(t *testing.T) {
	accs := []Access{
		{Array: "A", Mode: Write, Step: 1, Off: 0},
		{Array: "B", Mode: Read, Step: 1, Off: -1},
		{Array: "B", Mode: Read, Step: 1, Off: +1},
	}
	lo, hi := Window(accs, 10, 20, 100)
	if lo != 9 || hi != 21 {
		t.Fatalf("window = [%d,%d)", lo, hi)
	}
	lo, hi = Window(accs, 0, 0, 100)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty window = [%d,%d)", lo, hi)
	}
}

func TestEqualBlock(t *testing.T) {
	b := EqualBlock([]int{0, 1, 2}, 10) // 4,3,3
	if c := b.Counts(); c[0] != 4 || c[1] != 3 || c[2] != 3 {
		t.Fatalf("counts = %v", c)
	}
	if b.Owner(0) != 0 || b.Owner(3) != 0 || b.Owner(4) != 1 || b.Owner(9) != 2 {
		t.Fatal("owners wrong")
	}
	if lo, hi := b.RangeOf(1); lo != 4 || hi != 7 {
		t.Fatalf("RangeOf(1) = [%d,%d)", lo, hi)
	}
	if lo, hi := b.RangeOf(99); lo != 0 || hi != 0 {
		t.Fatal("non-member should get empty range")
	}
}

func TestBlockWithEmptyAndNonContiguousRanks(t *testing.T) {
	// A logically dropped node gets a zero block; ranks need not be 0..p-1.
	b := NewBlock([]int{5, 2, 7}, []int{6, 0, 4})
	if b.Rows() != 10 {
		t.Fatal("Rows")
	}
	if b.Owner(5) != 5 || b.Owner(6) != 7 {
		t.Fatalf("owners: %d %d", b.Owner(5), b.Owner(6))
	}
	if lo, hi := b.RangeOf(2); lo != hi {
		t.Fatal("empty block should be empty")
	}
}

func TestCyclic(t *testing.T) {
	c := NewCyclic([]int{3, 1}, 7)
	want := []int{3, 1, 3, 1, 3, 1, 3}
	for g, w := range want {
		if c.Owner(g) != w {
			t.Fatalf("owner(%d) = %d, want %d", g, c.Owner(g), w)
		}
	}
	if c.Rows() != 7 || len(c.Ranks()) != 2 {
		t.Fatal("accessors")
	}
}

func TestOwnerOutOfRangePanics(t *testing.T) {
	b := EqualBlock([]int{0, 1}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Owner(4)
}

func TestScheduleNoChange(t *testing.T) {
	b := EqualBlock([]int{0, 1, 2}, 12)
	if s := Schedule(b, b); len(s) != 0 {
		t.Fatalf("identical distributions produced transfers: %v", s)
	}
}

func TestScheduleShiftBoundary(t *testing.T) {
	old := NewBlock([]int{0, 1}, []int{5, 5})
	nw := NewBlock([]int{0, 1}, []int{7, 3})
	s := Schedule(old, nw)
	if len(s) != 1 || s[0] != (Transfer{From: 1, To: 0, Lo: 5, Hi: 7}) {
		t.Fatalf("schedule = %v", s)
	}
}

func TestScheduleCoalesces(t *testing.T) {
	old := NewBlock([]int{0, 1, 2}, []int{4, 4, 4})
	nw := NewBlock([]int{0, 1, 2}, []int{8, 2, 2})
	s := Schedule(old, nw)
	// Rows 4-7 move 1->0; rows 8-9 move 2->1.
	if len(s) != 2 {
		t.Fatalf("schedule = %v", s)
	}
	if s[0] != (Transfer{From: 1, To: 0, Lo: 4, Hi: 8}) || s[1] != (Transfer{From: 2, To: 1, Lo: 8, Hi: 10}) {
		t.Fatalf("schedule = %v", s)
	}
}

func TestScheduleNodeRemoval(t *testing.T) {
	// Node 1 removed: its rows split between 0 and 2.
	old := NewBlock([]int{0, 1, 2}, []int{4, 4, 4})
	nw := NewBlock([]int{0, 2}, []int{6, 6})
	s := Schedule(old, nw)
	if len(s) != 2 {
		t.Fatalf("schedule = %v", s)
	}
	if s[0] != (Transfer{From: 1, To: 0, Lo: 4, Hi: 6}) || s[1] != (Transfer{From: 1, To: 2, Lo: 6, Hi: 8}) {
		t.Fatalf("schedule = %v", s)
	}
}

func TestScheduleBlockToCyclic(t *testing.T) {
	old := EqualBlock([]int{0, 1}, 6)
	nw := NewCyclic([]int{0, 1}, 6)
	s := Schedule(old, nw)
	// Old: 0 owns 0-2, 1 owns 3-5. New: 0 owns 0,2,4; 1 owns 1,3,5.
	// Moves: row 1 (0->1), row 4 (1->0). Rows 0,2 stay with 0; 3,5 stay with 1.
	if len(s) != 2 {
		t.Fatalf("schedule = %v", s)
	}
}

func TestBytesMoved(t *testing.T) {
	ts := []Transfer{{From: 0, To: 1, Lo: 2, Hi: 5}}
	got := BytesMoved(ts, func(g int) int64 { return int64(g) })
	if got != 2+3+4 {
		t.Fatalf("BytesMoved = %d", got)
	}
}

func TestScheduleMismatchedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Schedule(EqualBlock([]int{0}, 4), EqualBlock([]int{0}, 5))
}

// Property: applying a schedule to the old ownership yields exactly the new
// ownership, and no row is transferred twice.
func TestScheduleCorrectProperty(t *testing.T) {
	f := func(seedCounts [6]uint8, newCounts [6]uint8) bool {
		ranks := []int{0, 1, 2, 3, 4, 5}
		tot := 0
		oc := make([]int, 6)
		nc := make([]int, 6)
		for i := 0; i < 6; i++ {
			oc[i] = int(seedCounts[i]) % 8
			tot += oc[i]
		}
		if tot == 0 {
			return true
		}
		// Build new counts with the same total.
		rem := tot
		for i := 0; i < 5; i++ {
			nc[i] = int(newCounts[i]) % (rem + 1)
			rem -= nc[i]
		}
		nc[5] = rem
		old := NewBlock(ranks, oc)
		nw := NewBlock(ranks, nc)
		s := Schedule(old, nw)
		owner := make([]int, tot)
		for g := 0; g < tot; g++ {
			owner[g] = old.Owner(g)
		}
		moved := make([]bool, tot)
		for _, tr := range s {
			for g := tr.Lo; g < tr.Hi; g++ {
				if moved[g] || owner[g] != tr.From {
					return false
				}
				moved[g] = true
				owner[g] = tr.To
			}
		}
		for g := 0; g < tot; g++ {
			if owner[g] != nw.Owner(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Block always partitions [0,Rows): every row has exactly one
// owner, and per-rank ranges are disjoint and contiguous.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(counts [5]uint8) bool {
		ranks := []int{0, 1, 2, 3, 4}
		cs := make([]int, 5)
		tot := 0
		for i := range cs {
			cs[i] = int(counts[i]) % 10
			tot += cs[i]
		}
		if tot == 0 {
			return true
		}
		b := NewBlock(ranks, cs)
		seen := 0
		for _, r := range ranks {
			lo, hi := b.RangeOf(r)
			for g := lo; g < hi; g++ {
				if b.Owner(g) != r {
					return false
				}
				seen++
			}
		}
		return seen == tot && b.Rows() == tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || ReadWrite.String() != "readwrite" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode")
	}
}
