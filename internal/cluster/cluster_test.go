package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func sec(s float64) vclock.Duration { return vclock.FromSeconds(s) }

func TestUnloadedComputeMatchesPower(t *testing.T) {
	spec := Uniform(2)
	spec.Nodes[1].Power = 2.0
	cl := New(spec)
	n0, n1 := cl.Node(0), cl.Node(1)
	w0 := n0.Compute(sec(1))
	w1 := n1.Compute(sec(1))
	if w0 != sec(1) {
		t.Errorf("power-1 node: 1s of work took %v wall", w0)
	}
	if w1 != sec(0.5) {
		t.Errorf("power-2 node: 1s of work took %v wall, want 0.5s", w1)
	}
	if n0.CPUTime() != sec(1) || n1.CPUTime() != sec(0.5) {
		t.Errorf("CPU times %v, %v", n0.CPUTime(), n1.CPUTime())
	}
}

func TestLoadedComputeShare(t *testing.T) {
	// With k competing processes, long computations should take ~(1+k)x.
	for _, k := range []int{1, 2, 3} {
		spec := Uniform(1)
		for i := 0; i < k; i++ {
			spec = spec.With(TimeEvent(0, 0, +1))
		}
		cl := New(spec)
		n := cl.Node(0)
		wall := n.Compute(sec(10))
		want := sec(10 * float64(1+k))
		ratio := float64(wall) / float64(want)
		if ratio < 0.99 || ratio > 1.01 {
			t.Errorf("k=%d: wall %v, want ~%v", k, wall, want)
		}
	}
}

func TestShortIterationsMostlyUnperturbed(t *testing.T) {
	// Iterations of 1ms on a node with one CP: most complete inside the
	// app's 10ms slice, but ~every 10th absorbs a 10ms spike. The *minimum*
	// over a handful of iterations must equal the true unloaded time —
	// the property the paper's grace-period filtering relies on.
	spec := Uniform(1).With(TimeEvent(0, 0, +1))
	cl := New(spec)
	n := cl.Node(0)
	const iters = 100
	minWall := vclock.Duration(math.MaxInt64)
	spikes := 0
	for i := 0; i < iters; i++ {
		w := n.Compute(vclock.Millisecond)
		if w < minWall {
			minWall = w
		}
		if w > 5*vclock.Millisecond {
			spikes++
		}
	}
	if minWall != vclock.Millisecond {
		t.Errorf("min iteration wall = %v, want 1ms", minWall)
	}
	if spikes < 5 || spikes > 20 {
		t.Errorf("spike count = %d, want ~10 for 100 1ms iters with 10ms quantum", spikes)
	}
}

func TestCPStartsAndStops(t *testing.T) {
	// CP active only during [5s, 15s): work before/after runs at full
	// speed, work inside at half.
	spec := Uniform(1).With(TimeEvent(0, vclock.Time(5*vclock.Second), +1),
		TimeEvent(0, vclock.Time(15*vclock.Second), -1))
	cl := New(spec)
	n := cl.Node(0)
	w1 := n.Compute(sec(5)) // [0,5): unloaded
	if w1 != sec(5) {
		t.Errorf("phase 1 wall %v, want 5s", w1)
	}
	w2 := n.Compute(sec(5)) // loaded: ~10s
	if r := w2.Seconds() / 10; r < 0.99 || r > 1.01 {
		t.Errorf("phase 2 wall %v, want ~10s", w2)
	}
	w3 := n.Compute(sec(5)) // unloaded again
	if r := w3.Seconds() / 5; r < 0.99 || r > 1.03 {
		t.Errorf("phase 3 wall %v, want ~5s", w3)
	}
}

func TestCycleTriggeredEvent(t *testing.T) {
	spec := Uniform(1).With(CycleEvent(0, 3, +1))
	cl := New(spec)
	n := cl.Node(0)
	for c := 0; c < 3; c++ {
		n.OnCycle(c)
		if n.CPCount() != 0 {
			t.Fatalf("cycle %d: CP appeared early", c)
		}
		n.Compute(sec(0.1))
	}
	n.OnCycle(3)
	if n.CPCount() != 1 {
		t.Fatal("CP did not appear at cycle 3")
	}
}

func TestCPCountAtIsPure(t *testing.T) {
	spec := Uniform(1).With(TimeEvent(0, vclock.Time(vclock.Second), +1))
	cl := New(spec)
	n := cl.Node(0)
	if n.CPCountAt(0) != 0 || n.CPCountAt(vclock.Time(2*vclock.Second)) != 1 {
		t.Fatal("CPCountAt wrong")
	}
	// Queries at arbitrary times must not corrupt the clock-following cache.
	if n.CPCount() != 0 {
		t.Fatal("CPCount at time 0 should be 0")
	}
}

func TestBurstyComputePaysFairShare(t *testing.T) {
	// The scheduling quota persists across sleeps: an application that
	// computes in short bursts between blocking receives still receives
	// only its ~1/(1+k) CPU share in aggregate — it cannot dodge the
	// competitor by sleeping (the flaw the paper's measured 2x slowdowns
	// on communicating applications rule out).
	spec := Uniform(1).With(TimeEvent(0, 0, +1))
	cl := New(spec)
	n := cl.Node(0)
	var inCompute vclock.Duration
	const bursts = 400
	for i := 0; i < bursts; i++ {
		inCompute += n.Compute(2 * vclock.Millisecond)
		n.WaitUntil(n.Now().Add(vclock.Duration(3 * vclock.Millisecond)))
	}
	ratio := float64(inCompute) / float64(bursts*2*vclock.Millisecond)
	if ratio < 1.5 || ratio > 2.1 {
		t.Errorf("bursty inflation ratio %.2f, want ~2 with one CP", ratio)
	}
}

func TestBlockedTimeServicesDebt(t *testing.T) {
	// Wall time spent blocked services the competitor debt: sleeping
	// longer than the outstanding debt clears it entirely; a shorter sleep
	// reduces it by exactly the waited time.
	spec := Uniform(1).With(TimeEvent(0, 0, +3))
	n := New(spec).Node(0)
	n.debt = 30 * vclock.Millisecond
	n.WaitUntil(n.Now().Add(vclock.Duration(8 * vclock.Millisecond)))
	if n.debt != 22*vclock.Millisecond {
		t.Fatalf("partial sleep left debt %v, want 22ms", n.debt)
	}
	n.WaitUntil(n.Now().Add(vclock.Duration(vclock.Second)))
	if n.debt != 0 {
		t.Fatalf("long sleep left debt %v, want 0", n.debt)
	}
}

func TestWakeupLatencyUnderLoad(t *testing.T) {
	// Waking from a blocked receive on a loaded node costs up to one
	// quantum (a CPU-bound competitor holds the processor); on an unloaded
	// node it is free.
	makeNode := func(loaded bool) *Node {
		spec := Uniform(1)
		if loaded {
			spec = spec.With(TimeEvent(0, 0, +1))
		}
		return New(spec).Node(0)
	}
	free := makeNode(false)
	free.WaitUntil(vclock.Time(vclock.Second))
	if free.Now() != vclock.Time(vclock.Second) {
		t.Fatalf("unloaded wake at %v, want exactly 1s", free.Now())
	}
	busy := makeNode(true)
	var totalExtra vclock.Duration
	delayed := 0
	const wakes = 5000
	for i := 1; i <= wakes; i++ {
		target := vclock.Time(i) * vclock.Time(vclock.Second)
		busy.WaitUntil(target)
		extra := busy.Now().Sub(target)
		if extra < 0 || extra > 10*vclock.Millisecond {
			t.Fatalf("wake %d latency %v outside [0,quantum]", i, extra)
		}
		if extra > 0 {
			delayed++
		}
		totalExtra += extra
	}
	// Most wakeups preempt the competitor immediately; ~wakeDelayProb of
	// them wait out a partial competitor timeslice.
	frac := float64(delayed) / wakes
	if frac < wakeDelayProb/2 || frac > wakeDelayProb*2 {
		t.Fatalf("delayed wake fraction %.4f, want ~%.3f", frac, wakeDelayProb)
	}
	mean := totalExtra / wakes
	want := vclock.Duration(wakeDelayProb * 0.5 * float64(10*vclock.Millisecond))
	if mean < want/2 || mean > want*2 {
		t.Fatalf("mean wake latency %v, want ~%v", mean, want)
	}
}

func TestWaitUntilPastIsNoop(t *testing.T) {
	cl := New(Uniform(1))
	n := cl.Node(0)
	n.Compute(sec(1))
	before := n.Now()
	n.WaitUntil(before.Add(-vclock.Duration(vclock.Second)))
	if n.Now() != before {
		t.Fatal("WaitUntil in the past moved the clock")
	}
}

func TestCPUTimeExcludesLoad(t *testing.T) {
	// The /PROC view must report only the app's own CPU time regardless of
	// competing load — the paper's reason for preferring it (§4.2).
	spec := Uniform(1).With(TimeEvent(0, 0, +2))
	cl := New(spec)
	n := cl.Node(0)
	n.Compute(sec(2))
	if n.CPUTime() != sec(2) {
		t.Errorf("CPUTime = %v, want exactly 2s despite load", n.CPUTime())
	}
}

func TestResidentAccounting(t *testing.T) {
	cl := New(Uniform(1))
	n := cl.Node(0)
	n.AdjustResident(1000)
	n.AdjustResident(-400)
	if n.Resident() != 600 {
		t.Fatalf("Resident = %d", n.Resident())
	}
	n.AdjustResident(-10000)
	if n.Resident() != 0 {
		t.Fatal("Resident went negative")
	}
}

func TestChargeTouchDiskPenalty(t *testing.T) {
	spec := Uniform(2)
	spec.Nodes[0].MemBytes = 1 << 20
	spec.Nodes[1].MemBytes = 1 << 30
	cl := New(spec)
	over, fits := cl.Node(0), cl.Node(1)
	over.AdjustResident(8 << 20) // 8x over physical memory
	fits.AdjustResident(8 << 20)
	t0, t1 := over.Now(), fits.Now()
	over.ChargeTouch(4 << 20)
	fits.ChargeTouch(4 << 20)
	dOver, dFits := over.Now().Sub(t0), fits.Now().Sub(t1)
	if dOver <= dFits*2 {
		t.Errorf("paging node touch cost %v not much larger than in-memory cost %v", dOver, dFits)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Uniform(1)).Node(0).Compute(-1)
}

func TestZeroPowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := Uniform(1)
	s.Nodes[0].Power = 0
	New(s)
}

func TestNegativeCPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Uniform(1).With(TimeEvent(0, 0, -1)))
}

// Property: for any load level and work amount, wall time is at least the
// unloaded time and at most (1+k)*unloaded + one spike, and /PROC time is
// exactly work/power.
func TestComputeBoundsProperty(t *testing.T) {
	f := func(workMs uint16, k uint8) bool {
		work := vclock.Duration(workMs%2000+1) * vclock.Millisecond
		load := int(k % 4)
		spec := Uniform(1)
		for i := 0; i < load; i++ {
			spec = spec.With(TimeEvent(0, 0, +1))
		}
		n := New(spec).Node(0)
		wall := n.Compute(work)
		lower := work
		// Slice jitter (0.5q..1.5q) bounds the boundary count by work/(q/2).
		upper := vclock.Duration(float64(work)*float64(1+2*load)*1.05) + vclock.Duration(load+1)*n.cl.quantum
		return wall >= lower && wall <= upper && n.CPUTime() == work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: long-run share converges to 1/(1+k).
func TestShareConvergenceProperty(t *testing.T) {
	for k := 0; k <= 3; k++ {
		spec := Uniform(1)
		for i := 0; i < k; i++ {
			spec = spec.With(TimeEvent(0, 0, +1))
		}
		n := New(spec).Node(0)
		wall := n.Compute(sec(100))
		share := 100 / wall.Seconds()
		want := 1.0 / float64(1+k)
		if math.Abs(share-want) > 0.01*want {
			t.Errorf("k=%d share %.4f want %.4f", k, share, want)
		}
	}
}

func TestPowersAndAccessors(t *testing.T) {
	spec := Uniform(3)
	spec.Nodes[2].Power = 1.5
	cl := New(spec)
	if cl.N() != 3 {
		t.Fatal("N")
	}
	p := cl.Powers()
	if p[0] != 1 || p[2] != 1.5 {
		t.Fatalf("Powers = %v", p)
	}
	if cl.Node(1).ID() != 1 || cl.Node(2).Power() != 1.5 {
		t.Fatal("node accessors")
	}
	if cl.Quantum() != 10*vclock.Millisecond {
		t.Fatalf("Quantum = %v", cl.Quantum())
	}
	if cl.Net().BytesPerSec != DefaultNet().BytesPerSec {
		t.Fatal("Net")
	}
}
