// Package cluster models a non dedicated cluster: a set of nodes with
// (possibly different) CPU powers and memories, each time-shared between the
// monitored parallel application and a scenario-driven set of competing
// processes (CPs).
//
// The model is deliberately mechanistic rather than statistical. Each node
// runs a quantum round-robin scheduler: the application consumes CPU in
// slices of Quantum; whenever a slice boundary is crossed while k competing
// processes are runnable, the wall clock additionally advances k*Quantum
// (each CP receives its own slice). Two properties of real time-shared
// systems that the Dyn-MPI paper depends on fall out of this directly:
//
//   - over long intervals the application receives a 1/(1+k) share of the
//     CPU, so a node with one competing process computes half as fast, and
//   - a *short* interval (an iteration shorter than the quantum) usually
//     runs to completion inside the application's own slice, but
//     occasionally absorbs a full k*Quantum "context-switch spike" — the
//     exact noise that makes single-sample gethrtime measurements
//     unreliable (paper §4.2, Figure 7).
//
// Process (/PROC-style) CPU time is tracked separately from wall time, so
// the timing package can reproduce the paper's choice between the two
// mechanisms.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// NodeSpec describes the static properties of one node.
type NodeSpec struct {
	// Power is the node's relative CPU speed. A node of power p executes a
	// reference cost c in c/p nanoseconds of its own CPU time.
	Power float64
	// MemBytes is the physical memory available to the application. Resident
	// data beyond this spills to "disk" and is charged at DiskBandwidth.
	// Zero means unlimited.
	MemBytes int64
}

// NetParams describes the interconnect and memory-system cost model.
//
// A message of b bytes sent at time t becomes available to the receiver at
// t' = t + Latency + b/BytesPerSec (wire component, unaffected by node
// load). In addition the sender and receiver each spend
// CPUPerMsg + b*CPUPerByte of CPU (reference cost) on the transfer; this
// component *is* inflated by competing processes, which is precisely why
// relative-power distributions are suboptimal (paper §4.3).
type NetParams struct {
	Latency       vclock.Duration
	BytesPerSec   float64
	CPUPerMsg     vclock.Duration
	CPUPerByte    float64 // reference CPU ns per byte, charged to each side
	MemBandwidth  float64 // bytes/sec for local memcpy (allocation model)
	DiskBandwidth float64 // bytes/sec once resident data exceeds MemBytes
}

// DefaultNet returns parameters resembling the paper's testbed: switched
// 100 Mb/s Ethernet (≈12.5 MB/s, ~100 µs latency) with a per-byte CPU copy
// cost and late-1990s memory bandwidth.
func DefaultNet() NetParams {
	return NetParams{
		Latency:       100 * vclock.Microsecond,
		BytesPerSec:   12.5e6,
		CPUPerMsg:     30 * vclock.Microsecond,
		CPUPerByte:    20, // ns/byte: 50 MB/s of CPU copy/checksum work per side
		MemBandwidth:  400e6,
		DiskBandwidth: 20e6,
	}
}

// Event changes the number of competing processes on one node. Exactly one
// of At / AtCycle selects the trigger: a virtual wall time, or a phase-cycle
// index on that node (materialised when the application reports reaching the
// cycle, matching "we introduce the competing process on the 10th
// iteration" in the paper's experiments).
type Event struct {
	Node    int
	Delta   int         // +1 to start a competing process, -1 to stop one
	At      vclock.Time // used when AtCycle < 0
	AtCycle int         // cycle-triggered when >= 0
}

// Arrival describes a node that is not part of the seed world but whose
// capacity can join mid-run (elastic resizing). Arrival nodes are built up
// front — their clocks, PRNG streams and fault state exist from the start,
// which keeps grown runs deterministic — but no rank runs on them until the
// runtime spawns one. AtCycle >= 0 grows the world automatically when the
// active ranks reach that phase cycle; AtCycle < 0 marks reserve capacity
// claimed only by an explicit Runtime.Resize call.
type Arrival struct {
	Node    NodeSpec
	AtCycle int
}

// Spec is the full description of a simulated cluster run.
type Spec struct {
	Nodes    []NodeSpec
	Arrivals []Arrival // capacity that can join mid-run; empty = fixed world
	Events   []Event
	Faults   []fault.Fault // injected faults (crash/stall/drop/delay); empty = none
	Net      NetParams
	Quantum  vclock.Duration // scheduler timeslice; 0 means 10ms
	Seed     uint64          // master seed for all derived PRNGs
}

// Uniform returns a Spec with n identical nodes of power 1.0, default
// network parameters and no competing processes.
func Uniform(n int) Spec {
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = NodeSpec{Power: 1.0}
	}
	return Spec{Nodes: nodes, Net: DefaultNet(), Quantum: 10 * vclock.Millisecond, Seed: 1}
}

// TimeEvent builds a CP change triggered at a virtual wall time.
func TimeEvent(node int, at vclock.Time, delta int) Event {
	return Event{Node: node, Delta: delta, At: at, AtCycle: -1}
}

// CycleEvent builds a CP change triggered when the application on node
// reports starting phase-cycle `cycle`.
func CycleEvent(node, cycle, delta int) Event {
	return Event{Node: node, Delta: delta, AtCycle: cycle}
}

// With returns a copy of s with extra events appended.
func (s Spec) With(events ...Event) Spec {
	out := s
	out.Events = append(append([]Event(nil), s.Events...), events...)
	return out
}

// WithArrival returns a copy of s with one arrival node of the given power
// appended (joining at atCycle; negative = reserve capacity).
func (s Spec) WithArrival(power float64, atCycle int) Spec {
	out := s
	out.Arrivals = append(append([]Arrival(nil), s.Arrivals...),
		Arrival{Node: NodeSpec{Power: power}, AtCycle: atCycle})
	return out
}

// segment is one piece of a node's piecewise-constant CP timeline.
type segment struct {
	start vclock.Time
	count int
}

// Cluster is the shared, immutable-per-run state of a simulation. Node
// handles (one per rank goroutine) mutate only their own fields, except for
// the CP timeline which is guarded by each node owning its own timeline and
// only its own goroutine appending to it (cycle-triggered events affect only
// the node that reports the cycle).
type Cluster struct {
	spec    Spec
	quantum vclock.Duration
	seed    int        // number of seed nodes; nodes[seed:] are arrivals
	nodes   []*Node    // seed nodes followed by arrival nodes
	faults  *fault.Set // nil when the scenario injects no faults

	// rankExit, when set, is called by the mpi run harness as each rank
	// goroutine finishes — on every exit path: normal return, world
	// failure and injected crash. It must be installed before the run
	// starts (no synchronisation) and be safe for concurrent use. The
	// sweep engine's world gates rely on it to detect ranks that stop
	// checkpointing.
	rankExit func(rank int)
}

// New builds a cluster and its node handles from spec.
func New(spec Spec) *Cluster {
	if len(spec.Nodes) == 0 {
		panic("cluster: no nodes")
	}
	q := spec.Quantum
	if q == 0 {
		q = 10 * vclock.Millisecond
	}
	if spec.Net.BytesPerSec == 0 {
		spec.Net = DefaultNet()
	}
	c := &Cluster{spec: spec, quantum: q, seed: len(spec.Nodes)}
	all := spec.Nodes
	if len(spec.Arrivals) > 0 {
		all = make([]NodeSpec, 0, len(spec.Nodes)+len(spec.Arrivals))
		all = append(all, spec.Nodes...)
		for _, a := range spec.Arrivals {
			all = append(all, a.Node)
		}
	}
	fs, err := fault.NewSet(len(all), spec.Faults)
	if err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	c.faults = fs
	master := vclock.NewPRNG(spec.Seed)
	c.nodes = make([]*Node, len(all))
	for i, ns := range all {
		if ns.Power <= 0 {
			panic(fmt.Sprintf("cluster: node %d has non-positive power %v", i, ns.Power))
		}
		n := &Node{
			id:    i,
			power: ns.Power,
			mem:   ns.MemBytes,
			cl:    c,
			rng:   master.Fork(uint64(i)),
			segs:  []segment{{start: 0, count: 0}},
		}
		// Time-triggered events are known up front; install them sorted.
		var evs []Event
		for _, ev := range spec.Events {
			if ev.Node == i {
				if ev.AtCycle >= 0 {
					n.pendingCycle = append(n.pendingCycle, ev)
				} else {
					evs = append(evs, ev)
				}
			}
		}
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		for _, ev := range evs {
			n.appendEvent(ev.At, ev.Delta)
		}
		c.nodes[i] = n
	}
	return c
}

// N reports the number of seed nodes — the world size a run starts with.
func (c *Cluster) N() int { return c.seed }

// MaxN reports the total node count including arrival capacity; it bounds
// the rank IDs a grown world can reach. Equal to N when no arrivals exist.
func (c *Cluster) MaxN() int { return len(c.nodes) }

// ArrivalsAt returns the node IDs of arrivals scheduled to join at the
// given phase cycle, in node order. The runtime's resize step consults it
// at every cycle boundary; every active rank reads the same static table,
// which is what makes automatic growth deterministic.
func (c *Cluster) ArrivalsAt(cycle int) []int {
	var out []int
	for i, a := range c.spec.Arrivals {
		if a.AtCycle == cycle {
			out = append(out, c.seed+i)
		}
	}
	return out
}

// HasArrivals reports whether any arrival capacity exists (scheduled or
// reserve), letting hot paths skip the per-cycle table scan entirely.
func (c *Cluster) HasArrivals() bool { return len(c.spec.Arrivals) > 0 }

// Reserves returns the node IDs of reserve arrivals (AtCycle < 0) in node
// order — the capacity an explicit Runtime.Resize grow claims.
func (c *Cluster) Reserves() []int {
	var out []int
	for i, a := range c.spec.Arrivals {
		if a.AtCycle < 0 {
			out = append(out, c.seed+i)
		}
	}
	return out
}

// Node returns the handle for node id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Net returns the interconnect parameters.
func (c *Cluster) Net() NetParams { return c.spec.Net }

// Quantum returns the scheduler timeslice.
func (c *Cluster) Quantum() vclock.Duration { return c.quantum }

// FaultSet returns the scenario's validated fault set, or nil when the
// scenario injects no faults.
func (c *Cluster) FaultSet() *fault.Set { return c.faults }

// SetRankExitHook installs fn to be called as each rank goroutine of a run
// on this cluster finishes. Install before the run starts; nil disables.
func (c *Cluster) SetRankExitHook(fn func(rank int)) { c.rankExit = fn }

// RankExitHook returns the installed rank-exit hook, or nil.
func (c *Cluster) RankExitHook() func(rank int) { return c.rankExit }

// Powers returns the static relative powers of all nodes.
func (c *Cluster) Powers() []float64 {
	out := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.power
	}
	return out
}

// Node is one simulated machine as seen by the rank running on it. All
// methods must be called only from that rank's goroutine.
type Node struct {
	id    int
	power float64
	mem   int64
	cl    *Cluster
	rng   *vclock.PRNG

	clock     vclock.Clock
	cpuUsed   vclock.Duration // application CPU time (the /PROC view)
	sliceUsed vclock.Duration // CPU consumed in the current timeslice
	curSlice  vclock.Duration // length of the current timeslice (jittered)
	debt      vclock.Duration // CPU owed to competitors before the app runs again
	resident  int64           // bytes of registered application data

	segs         []segment // CP timeline, sorted by start
	segIdx       int       // index of the segment containing the clock
	pendingCycle []Event   // cycle-triggered events not yet materialised

	sink    telemetry.Sink     // nil: no emission
	stamper *telemetry.Stamper // shared with the rank runtime on this node
}

// AttachTelemetry routes this node's scenario events (cycle-triggered
// competing-process changes materialising) into sink. The stamper must be
// the one owned by the rank goroutine running on this node.
func (n *Node) AttachTelemetry(sink telemetry.Sink, stamper *telemetry.Stamper) {
	n.sink = sink
	n.stamper = stamper
}

// Telemetry returns the sink and stamper attached to this node (both nil
// when telemetry is off). The fault layer uses it to emit FailureRecords
// from the faulting rank's own goroutine.
func (n *Node) Telemetry() (telemetry.Sink, *telemetry.Stamper) { return n.sink, n.stamper }

// ID reports the node's index in the cluster.
func (n *Node) ID() int { return n.id }

// Power reports the node's static relative CPU speed.
func (n *Node) Power() float64 { return n.power }

// Now reports the node's current virtual wall time.
func (n *Node) Now() vclock.Time { return n.clock.Now() }

// CPUTime reports the application's accumulated CPU time on this node —
// the quantity a /PROC read returns (before granularity quantisation, which
// the timing package applies).
func (n *Node) CPUTime() vclock.Duration { return n.cpuUsed }

// RNG returns the node's deterministic random stream.
func (n *Node) RNG() *vclock.PRNG { return n.rng }

func (n *Node) appendEvent(at vclock.Time, delta int) {
	last := n.segs[len(n.segs)-1]
	if at < last.start {
		panic(fmt.Sprintf("cluster: event at %v before last segment %v on node %d", at, last.start, n.id))
	}
	count := last.count + delta
	if count < 0 {
		panic(fmt.Sprintf("cluster: negative CP count on node %d at %v", n.id, at))
	}
	if at == last.start {
		n.segs[len(n.segs)-1].count = count
		return
	}
	n.segs = append(n.segs, segment{start: at, count: count})
}

// OnCycle reports that the application on this node is starting phase-cycle
// `cycle`; any CP events scheduled for that cycle take effect now.
func (n *Node) OnCycle(cycle int) {
	kept := n.pendingCycle[:0]
	for _, ev := range n.pendingCycle {
		if ev.AtCycle == cycle {
			n.appendEvent(n.clock.Now(), ev.Delta)
			if n.sink != nil {
				n.sink.Emit(telemetry.LoadEventRecord{
					Base:  n.stamper.Stamp(telemetry.KindLoadEvent, cycle, n.clock.Now().Seconds()),
					Delta: ev.Delta,
					Count: n.segs[len(n.segs)-1].count,
				})
			}
		} else {
			kept = append(kept, ev)
		}
	}
	n.pendingCycle = kept
}

// cpAt returns the competing-process count in effect at time t, advancing
// the cached segment index (t must be >= the last query, which holds because
// callers query at the monotone node clock).
func (n *Node) cpAt(t vclock.Time) int {
	for n.segIdx+1 < len(n.segs) && n.segs[n.segIdx+1].start <= t {
		n.segIdx++
	}
	return n.segs[n.segIdx].count
}

// nextChangeAfter returns the time of the next CP change strictly after t,
// or ok=false if the timeline is constant from t on.
func (n *Node) nextChangeAfter(t vclock.Time) (vclock.Time, bool) {
	for i := n.segIdx; i < len(n.segs); i++ {
		if n.segs[i].start > t {
			return n.segs[i].start, true
		}
	}
	return 0, false
}

// CPCount reports the number of competing processes runnable right now.
// This is the ground truth; the load monitor adds sampling delay on top.
func (n *Node) CPCount() int { return n.cpAt(n.clock.Now()) }

// CPCountAt reports the competing-process count at an arbitrary time t
// without advancing the cache. Used by the load monitor's sampling model.
func (n *Node) CPCountAt(t vclock.Time) int {
	idx := sort.Search(len(n.segs), func(i int) bool { return n.segs[i].start > t }) - 1
	if idx < 0 {
		idx = 0
	}
	return n.segs[idx].count
}

// nextSliceLen returns the length of a fresh timeslice: uniform in
// [0.5q, 1.5q] (mean q), deterministically drawn from the node's PRNG.
// Real schedulers do not preempt on an exact period — timeslices depend on
// dynamic priorities, timer skew and unrelated wakeups — and the variation
// matters here: it is what moves context-switch spikes onto *different*
// iterations in different phase cycles, which the paper's
// min-over-grace-period filter depends on. The long-run CPU share is
// unaffected (the mean slice is exactly q).
func (n *Node) nextSliceLen() vclock.Duration {
	q := n.cl.quantum
	return q/2 + vclock.Duration(n.rng.Float64()*float64(q))
}

// Compute executes `cost` of reference CPU work on this node, advancing the
// wall clock according to the round-robin model and accumulating /PROC CPU
// time. It returns the wall duration that elapsed.
func (n *Node) Compute(cost vclock.Duration) vclock.Duration {
	if cost < 0 {
		panic("cluster: negative compute cost")
	}
	start := n.clock.Now()
	need := vclock.Duration(float64(cost) / n.power) // node CPU time required
	q := n.cl.quantum
	for need > 0 {
		if n.debt > 0 {
			// A slice boundary was crossed: each competing process receives
			// its timeslice before the application runs again. Wall time the
			// application spent blocked has already serviced part of this
			// debt (see WaitUntil); the remainder is paid here. The CP count
			// may change during the delay; advanceLoaded charges piecewise
			// and stops early if every competitor exits.
			d := n.debt
			n.debt = 0
			n.advanceLoaded(d)
		}
		if n.curSlice == 0 {
			n.curSlice = n.nextSliceLen()
		}
		run := n.curSlice - n.sliceUsed
		if need < run {
			run = need
		}
		// While the app runs, wall time passes 1:1 with its CPU time; a CP
		// change mid-run only matters at the next slice boundary, so no
		// further splitting is needed here.
		n.clock.Advance(run)
		n.cpuUsed += run
		n.sliceUsed += run
		need -= run
		if n.sliceUsed >= n.curSlice {
			n.sliceUsed = 0
			n.curSlice = 0
			if k := n.cpAt(n.clock.Now()); k > 0 {
				n.debt += vclock.Duration(k) * q
			}
		}
	}
	return n.clock.Now().Sub(start)
}

// advanceLoaded advances the wall clock by d of "other processes running"
// time, re-reading the CP count across timeline changes. A CP stop during
// the delay truncates it proportionally.
func (n *Node) advanceLoaded(d vclock.Duration) {
	for d > 0 {
		now := n.clock.Now()
		k := n.cpAt(now)
		if k == 0 {
			return // all competitors vanished; app resumes immediately
		}
		step := d
		if next, ok := n.nextChangeAfter(now); ok {
			if until := next.Sub(now); until < step {
				step = until
			}
		}
		n.clock.Advance(step)
		d -= step
	}
}

// WaitUntil blocks the application until virtual time t (e.g. waiting for a
// message). The scheduling quota persists across short sleeps (the
// epoch-based accounting of 2.4-era schedulers), but wall time spent
// blocked services any outstanding competitor debt: if the application
// sleeps long enough for every competitor to receive its slice, it resumes
// immediately on wake.
//
// Independently, if competing processes are runnable when the application
// becomes ready, it occasionally does not run immediately: a CPU-bound
// competitor holds the processor until the next scheduler tick. This
// wakeup latency is the mechanism that makes a loaded node poison every
// communication step it participates in — the reason physical node removal
// beats logical dropping (§2.2) and the reason dropping wins as the
// computation/communication ratio shrinks (§5.3).
func (n *Node) WaitUntil(t vclock.Time) {
	if t <= n.clock.Now() {
		return
	}
	waited := t.Sub(n.clock.Now())
	n.clock.AdvanceTo(t)
	if waited >= n.debt {
		n.debt = 0
	} else {
		n.debt -= waited
	}
	if k := n.cpAt(n.clock.Now()); k > 0 {
		// A waking sleeper usually preempts a CPU-bound competitor at once
		// (its dynamic priority is boosted), but when its scheduling quota
		// is exhausted it must wait out the hog's timeslice. Each runnable
		// competitor adds an independent chance of hitting that window.
		if n.rng.Float64() < wakeDelayProb*float64(k) {
			n.clock.Advance(vclock.Duration(n.rng.Float64() * float64(n.cl.quantum)))
		}
	}
}

// wakeDelayProb is the per-competitor probability that a wakeup finds the
// application out of scheduling quota and stuck behind a full competitor
// timeslice. Calibrated so that keeping a loaded node is profitable on
// small clusters but increasingly poisonous as the per-node compute share
// shrinks — the paper's Figure 6 crossover.
const wakeDelayProb = 0.01

// --- memory cost model -------------------------------------------------

// ChargeTouch charges the cost of writing (or copying into) `bytes` of
// memory: bytes/MemBandwidth of CPU, plus a disk penalty for the fraction of
// resident data beyond physical memory. Used by the allocator comparison.
func (n *Node) ChargeTouch(bytes int64) {
	if bytes <= 0 {
		return
	}
	net := n.cl.spec.Net
	cost := vclock.FromSeconds(float64(bytes) / net.MemBandwidth)
	if n.mem > 0 && n.resident > n.mem {
		over := float64(n.resident-n.mem) / float64(n.resident)
		cost += vclock.FromSeconds(over * float64(bytes) / net.DiskBandwidth)
	}
	n.Compute(vclock.Duration(float64(cost) * n.power)) // cost is wall-ish; express as reference
}

// AdjustResident records allocation (positive) or release (negative) of
// application data bytes, for the paging model.
func (n *Node) AdjustResident(delta int64) {
	n.resident += delta
	if n.resident < 0 {
		n.resident = 0
	}
}

// Resident reports currently registered application data bytes.
func (n *Node) Resident() int64 { return n.resident }
