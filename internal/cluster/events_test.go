package cluster

import (
	"testing"

	"repro/internal/vclock"
)

func TestMultipleEventsSameCycle(t *testing.T) {
	spec := Uniform(1).
		With(CycleEvent(0, 2, +1)).
		With(CycleEvent(0, 2, +1)).
		With(CycleEvent(0, 5, -1))
	n := New(spec).Node(0)
	n.OnCycle(0)
	n.OnCycle(1)
	if n.CPCount() != 0 {
		t.Fatal("early CPs")
	}
	n.Compute(sec(0.1))
	n.OnCycle(2)
	if n.CPCount() != 2 {
		t.Fatalf("CPCount = %d, want 2 (both events at cycle 2)", n.CPCount())
	}
	n.Compute(sec(0.1))
	n.OnCycle(5)
	if n.CPCount() != 1 {
		t.Fatalf("CPCount = %d after one stop", n.CPCount())
	}
}

func TestEventsIndependentAcrossNodes(t *testing.T) {
	spec := Uniform(3).
		With(TimeEvent(1, 0, +2)).
		With(TimeEvent(2, vclock.Time(vclock.Second), +1))
	cl := New(spec)
	if cl.Node(0).CPCount() != 0 {
		t.Fatal("node 0 contaminated")
	}
	if cl.Node(1).CPCount() != 2 {
		t.Fatal("node 1 missing CPs")
	}
	n2 := cl.Node(2)
	if n2.CPCount() != 0 {
		t.Fatal("node 2 early CP")
	}
	n2.WaitUntil(vclock.Time(2 * vclock.Second))
	if n2.CPCount() != 1 {
		t.Fatal("node 2 missing CP")
	}
}

func TestUnsortedTimeEventsAreSorted(t *testing.T) {
	spec := Uniform(1).
		With(TimeEvent(0, vclock.Time(2*vclock.Second), -1)).
		With(TimeEvent(0, vclock.Time(vclock.Second), +1))
	n := New(spec).Node(0)
	if n.CPCountAt(vclock.Time(1500*vclock.Millisecond)) != 1 {
		t.Fatal("mid-window count")
	}
	if n.CPCountAt(vclock.Time(3*vclock.Second)) != 0 {
		t.Fatal("post-stop count")
	}
}

func TestCycleEventForWrongCycleStaysPending(t *testing.T) {
	spec := Uniform(1).With(CycleEvent(0, 7, +1))
	n := New(spec).Node(0)
	for c := 0; c < 7; c++ {
		n.OnCycle(c)
	}
	if n.CPCount() != 0 {
		t.Fatal("fired early")
	}
	n.OnCycle(7)
	if n.CPCount() != 1 {
		t.Fatal("did not fire at its cycle")
	}
	// Re-announcing the same cycle must not double-fire.
	n.OnCycle(7)
	if n.CPCount() != 1 {
		t.Fatal("double fired")
	}
}

func TestComputeReturnsElapsedWall(t *testing.T) {
	n := New(Uniform(1)).Node(0)
	before := n.Now()
	w := n.Compute(sec(0.25))
	if n.Now().Sub(before) != w {
		t.Fatal("Compute return value disagrees with clock movement")
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	spec := Uniform(1).With(TimeEvent(0, 0, +3))
	n := New(spec).Node(0)
	if w := n.Compute(0); w != 0 {
		t.Fatalf("zero compute took %v", w)
	}
}

func TestPowerScalesCPUNotWire(t *testing.T) {
	// A power-2 node consumes half the CPU time for the same reference
	// cost; /PROC reflects its own CPU seconds.
	spec := Uniform(2)
	spec.Nodes[1].Power = 2
	cl := New(spec)
	cl.Node(0).Compute(sec(1))
	cl.Node(1).Compute(sec(1))
	if cl.Node(0).CPUTime() != sec(1) || cl.Node(1).CPUTime() != sec(0.5) {
		t.Fatalf("CPU times %v %v", cl.Node(0).CPUTime(), cl.Node(1).CPUTime())
	}
}
