package distribution

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestRelativePowerEqualNodes(t *testing.T) {
	nodes := []Node{{0, 1, 0}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	fr := RelativePowerFractions(nodes)
	for _, f := range fr {
		if !almost(f, 0.25, 1e-12) {
			t.Fatalf("fractions %v", fr)
		}
	}
}

func TestRelativePowerLoadedNode(t *testing.T) {
	// One CP on node 0: its capacity halves -> 1/7 of the work on 4 nodes
	// (the paper's CG example gives 1/7 vs 2/7).
	nodes := []Node{{0, 1, 1}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	fr := RelativePowerFractions(nodes)
	if !almost(fr[0], 1.0/7, 1e-12) || !almost(fr[1], 2.0/7, 1e-12) {
		t.Fatalf("fractions %v, want [1/7 2/7 2/7 2/7]", fr)
	}
}

func TestRelativePowerHeterogeneous(t *testing.T) {
	nodes := []Node{{0, 2, 0}, {1, 1, 0}}
	fr := RelativePowerFractions(nodes)
	if !almost(fr[0], 2.0/3, 1e-12) {
		t.Fatalf("fractions %v", fr)
	}
}

func TestAnalyticModelLimits(t *testing.T) {
	m := AnalyticModel{}
	// Compute-bound: converges to naive 1/(2+k).
	if f := m.Fraction(1, 1e9); !almost(f, 1.0/3, 1e-6) {
		t.Fatalf("k=1 R=inf: %v", f)
	}
	if f := m.Fraction(2, math.Inf(1)); !almost(f, 0.25, 1e-12) {
		t.Fatalf("k=2 R=inf: %v", f)
	}
	// Communication-bound: loaded node gets nothing at R <= k.
	if f := m.Fraction(1, 1.0); f != 0 {
		t.Fatalf("k=1 R=1: %v", f)
	}
	// Monotone in R.
	prev := -1.0
	for _, r := range []float64{1, 2, 4, 8, 32, 128} {
		f := m.Fraction(1, r)
		if f < prev {
			t.Fatalf("not monotone at R=%v", r)
		}
		prev = f
	}
	// Unloaded node: even split.
	if m.Fraction(0, 10) != 0.5 {
		t.Fatal("k=0 should be 0.5")
	}
}

func TestSuccessiveBalancingCompuBoundMatchesNaive(t *testing.T) {
	nodes := []Node{{0, 1, 1}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	fr := SuccessiveBalancingFractions(nodes, 1000, 0.0001, AnalyticModel{})
	naive := RelativePowerFractions(nodes)
	for i := range fr {
		if !almost(fr[i], naive[i], 0.01) {
			t.Fatalf("compute-bound SB %v != naive %v", fr, naive)
		}
	}
}

func TestSuccessiveBalancingPenalisesLoadedWhenCommBound(t *testing.T) {
	nodes := []Node{{0, 1, 1}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	// Comm-heavy: pair ratio = totalComp*2/p / commCPU = 1*0.5/0.2 = 2.5.
	fr := SuccessiveBalancingFractions(nodes, 1, 0.2, AnalyticModel{})
	naive := RelativePowerFractions(nodes)
	if fr[0] >= naive[0] {
		t.Fatalf("comm-bound SB should give loaded node less than naive: %v vs %v", fr[0], naive[0])
	}
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("fractions sum %v", sum)
	}
}

func TestSuccessiveBalancingAllLoaded(t *testing.T) {
	nodes := []Node{{0, 1, 1}, {1, 1, 1}}
	fr := SuccessiveBalancingFractions(nodes, 1, 0.1, nil)
	if !almost(fr[0], 0.5, 1e-9) {
		t.Fatalf("all-loaded symmetric case: %v", fr)
	}
}

func TestSuccessiveBalancingNoLoad(t *testing.T) {
	nodes := []Node{{0, 1, 0}, {1, 3, 0}}
	fr := SuccessiveBalancingFractions(nodes, 1, 0.1, nil)
	if !almost(fr[1], 0.75, 1e-9) {
		t.Fatalf("unloaded heterogeneous: %v", fr)
	}
}

// Property: successive balancing always produces a valid fraction vector
// (non-negative, sums to 1) and never gives a loaded node more than the
// naive relative-power method would.
func TestSuccessiveBalancingProperty(t *testing.T) {
	f := func(loads [5]uint8, powTenths [5]uint8, ratioSel uint8) bool {
		nodes := make([]Node, 5)
		for i := range nodes {
			nodes[i] = Node{
				Rank:  i,
				Power: 0.5 + float64(powTenths[i]%20)/10,
				Load:  int(loads[i] % 4),
			}
		}
		commCPU := []float64{0.001, 0.01, 0.1, 0.5}[ratioSel%4]
		fr := SuccessiveBalancingFractions(nodes, 1.0, commCPU, nil)
		naive := RelativePowerFractions(nodes)
		loaded := 0
		for _, n := range nodes {
			if n.Load > 0 {
				loaded++
			}
		}
		sum := 0.0
		for i, v := range fr {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
			// With a single loaded node the SB share is bounded by naive;
			// with several, redistributing away from one loaded node can
			// legitimately raise another's *fraction*.
			if loaded == 1 && nodes[i].Load > 0 && v > naive[i]+1e-9 {
				return false
			}
		}
		return almost(sum, 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the analytic pair model is monotone in the ratio and bounded
// by the naive fraction for every load level.
func TestAnalyticModelProperty(t *testing.T) {
	m := AnalyticModel{}
	f := func(k8 uint8, r1, r2 float64) bool {
		k := int(k8%5) + 1
		a, b := math.Abs(r1), math.Abs(r2)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		fa, fb := m.Fraction(k, a), m.Fraction(k, b)
		naive := 1.0 / float64(2+k)
		return fa <= fb+1e-12 && fb <= naive+1e-12 && fa >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionWeightedUniform(t *testing.T) {
	counts := PartitionWeighted(uniform(10), []float64{0.5, 0.5})
	if counts[0]+counts[1] != 10 || counts[0] < 4 || counts[0] > 6 {
		t.Fatalf("counts %v", counts)
	}
}

func TestPartitionWeightedSkewedCosts(t *testing.T) {
	// First two iterations carry almost all cost; equal fractions should
	// give node 0 very few iterations.
	costs := []float64{100, 100, 1, 1, 1, 1, 1, 1, 1, 1}
	counts := PartitionWeighted(costs, []float64{0.5, 0.5})
	if counts[0] != 1 && counts[0] != 2 {
		t.Fatalf("counts %v: node 0 should take ~1 heavy iteration", counts)
	}
	if counts[0]+counts[1] != 10 {
		t.Fatalf("counts %v don't cover", counts)
	}
}

func TestPartitionWeightedZeroFraction(t *testing.T) {
	counts := PartitionWeighted(uniform(8), []float64{0, 1})
	if counts[0] != 0 || counts[1] != 8 {
		t.Fatalf("counts %v", counts)
	}
}

func TestPartitionWeightedZeroTotalCost(t *testing.T) {
	counts := PartitionWeighted(make([]float64, 9), []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	if counts[0]+counts[1]+counts[2] != 9 {
		t.Fatalf("counts %v", counts)
	}
}

func TestPartitionWeightedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PartitionWeighted([]float64{-1}, []float64{1})
}

// Property: PartitionWeighted always covers the iteration space exactly and
// never produces negative counts.
func TestPartitionCoversProperty(t *testing.T) {
	f := func(nIters uint8, weights [4]uint8) bool {
		n := int(nIters)%200 + 1
		costs := make([]float64, n)
		for g := range costs {
			costs[g] = float64(g%7 + 1)
		}
		var fr [4]float64
		var sum float64
		for i := range fr {
			fr[i] = float64(weights[i]) + 0.01
			sum += fr[i]
		}
		for i := range fr {
			fr[i] /= sum
		}
		counts := PartitionWeighted(costs, fr[:])
		tot := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			tot += c
		}
		return tot == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the weighted partition approximately honours the fractions for
// fine-grained iteration costs.
func TestPartitionBalanceProperty(t *testing.T) {
	costs := uniform(1000)
	fr := []float64{0.1, 0.2, 0.3, 0.4}
	counts := PartitionWeighted(costs, fr)
	for i, c := range counts {
		if !almost(float64(c)/1000, fr[i], 0.01) {
			t.Fatalf("counts %v do not match fractions %v", counts, fr)
		}
	}
}

func TestPredictCycleTime(t *testing.T) {
	nodes := []Node{{0, 1, 0}, {1, 1, 1}}
	costs := uniform(100) // 1s per iteration
	// Equal split: loaded node dominates at 2x compute inflation.
	tEq := PredictCycleTime(nodes, []int{50, 50}, costs, 0.1, 0.05)
	want := 50*2.0 + 0.1*2 + 0.05
	if !almost(tEq, want, 1e-9) {
		t.Fatalf("predict = %v, want %v", tEq, want)
	}
	// A 2:1 split should be faster.
	tBal := PredictCycleTime(nodes, []int{67, 33}, costs, 0.1, 0.05)
	if tBal >= tEq {
		t.Fatalf("balanced %v not faster than equal %v", tBal, tEq)
	}
}

func TestDropDecision(t *testing.T) {
	nodes := []Node{{0, 1, 3}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	costs := uniform(90)
	// Measured cycle time is awful (loaded node hurts): predict unloaded-only
	// config of 3 nodes: 30 iters each + comm.
	drop, pred := DropDecision(nodes, costs, 100.0, 0.5, 0.5)
	if !drop {
		t.Fatalf("should drop: predicted %v < measured 100", pred)
	}
	if !almost(pred, 30+0.5+0.5, 1e-9) {
		t.Fatalf("predicted %v", pred)
	}
	// Measured better than prediction: keep the loaded node.
	drop, _ = DropDecision(nodes, costs, 20.0, 0.5, 0.5)
	if drop {
		t.Fatal("should not drop when measured beats prediction")
	}
}

func TestDropDecisionDegenerateCases(t *testing.T) {
	costs := uniform(10)
	if drop, _ := DropDecision([]Node{{0, 1, 1}, {1, 1, 2}}, costs, 100, 0, 0); drop {
		t.Fatal("cannot drop when every node is loaded")
	}
	if drop, _ := DropDecision([]Node{{0, 1, 0}, {1, 1, 0}}, costs, 100, 0, 0); drop {
		t.Fatal("nothing to drop when no node is loaded")
	}
}

func TestTableModelInterpolation(t *testing.T) {
	m := &TableModel{
		Ratios:    []float64{1, 4, 16},
		Fractions: map[int][]float64{1: {0.0, 0.2, 0.3}},
	}
	if f := m.Fraction(1, 0.5); f != 0 {
		t.Fatalf("below range: %v", f)
	}
	if f := m.Fraction(1, 100); f != 0.3 {
		t.Fatalf("above range: %v", f)
	}
	if f := m.Fraction(1, 2); !almost(f, 0.1, 1e-9) { // log midpoint of 1..4
		t.Fatalf("midpoint: %v", f)
	}
	// Unmeasured k falls back to the analytic model.
	if f := m.Fraction(2, math.Inf(1)); !almost(f, 0.25, 1e-9) {
		t.Fatalf("fallback: %v", f)
	}
	if m.Fraction(0, 1) != 0.5 {
		t.Fatal("k=0")
	}
}

func TestMeasurePairFractionShape(t *testing.T) {
	// Compute-bound micro-benchmark: measured fraction near naive 1/3.
	fHigh := MeasurePairFraction(1, 512)
	if fHigh < 0.25 || fHigh > 0.42 {
		t.Fatalf("compute-bound measured fraction %v, want ~1/3", fHigh)
	}
	// Comm-bound: loaded node should receive clearly less.
	fLow := MeasurePairFraction(1, 2)
	if fLow >= fHigh {
		t.Fatalf("comm-bound fraction %v not below compute-bound %v", fLow, fHigh)
	}
}

func TestBuildTableModel(t *testing.T) {
	m := BuildTableModel([]int{1}, []float64{2, 64})
	if len(m.Fractions[1]) != 2 {
		t.Fatal("table shape")
	}
	if m.Fractions[1][0] >= m.Fractions[1][1] {
		t.Fatalf("measured fractions not increasing in ratio: %v", m.Fractions[1])
	}
}

// TestOverlapTableShiftsPartition pins the overlap-adjusted decision path:
// at a communication-bound ratio the overlapped micro-benchmark measures a
// cheaper effective communication cost (half the budget is wire hidden
// behind compute), so the loaded node is assigned a strictly larger
// fraction — and on a canonical 4-node scenario the chosen PartitionWeighted
// counts actually change.
func TestOverlapTableShiftsPartition(t *testing.T) {
	fB := MeasurePairFraction(1, 4)
	fO := MeasurePairFractionOverlap(1, 4)
	if fO <= fB {
		t.Fatalf("overlap fraction %v not above blocking %v at ratio 4", fO, fB)
	}
	// Compute-bound limit: overlap cannot help where there is nothing to
	// hide; the two tables converge.
	if hB, hO := MeasurePairFraction(1, 512), MeasurePairFractionOverlap(1, 512); !almost(hO, hB, 0.05) {
		t.Fatalf("compute-bound fractions diverge: blocking %v overlap %v", hB, hO)
	}

	// Canonical scenario: 4 equal nodes, node 1 carries one CP, workload
	// shaped so the pair ratio is 4 (totalComp*2/p / commCPU = 2*1/4/0.125).
	nodes := []Node{{Rank: 0, Power: 1}, {Rank: 1, Power: 1, Load: 1}, {Rank: 2, Power: 1}, {Rank: 3, Power: 1}}
	ratios := []float64{2, 4, 32}
	mB := BuildTableModel([]int{1}, ratios)
	mO := BuildTableModelOverlap([]int{1}, ratios)
	frB := SuccessiveBalancingFractions(nodes, 1.0, 0.125, mB)
	frO := SuccessiveBalancingFractions(nodes, 1.0, 0.125, mO)
	cB := PartitionWeighted(ones(256), frB)
	cO := PartitionWeighted(ones(256), frO)
	if cO[1] <= cB[1] {
		t.Fatalf("overlap table did not raise the loaded node's share: blocking %v overlap %v", cB, cO)
	}
}
