// Package distribution implements Dyn-MPI's data-distribution decision
// machinery (paper §4.3): the relative-power baseline, the successive
// balancing algorithm driven by a two-node pair model, weighted
// partitioning of (possibly nonuniform) iterations into variable blocks,
// execution-time prediction for unloaded configurations, and the node-drop
// decision (§4.4).
package distribution

import (
	"fmt"
	"math"
	"sort"
)

// Node is one candidate participant as seen by the balancer.
type Node struct {
	Rank  int     // world rank
	Power float64 // static relative CPU speed
	Load  int     // competing processes currently runnable (from the load monitor)
}

// PairModel answers the two-node question underlying successive balancing:
// if a node with k competing processes shares a workload with an identical
// unloaded node, what fraction of the work should the loaded node receive?
// ratio is the computation/communication ratio: total per-cycle compute
// time divided by the per-node per-cycle communication CPU time.
type PairModel interface {
	Fraction(k int, ratio float64) float64
}

// AnalyticModel is the closed-form pair model for the quantum-sharing cost
// model: a node with k CPs computes (1+k)x slower and pays its per-cycle
// communication CPU (1+k)x slower too. Equalising completion times of
//
//	loaded:   w·(1+k) + C·(1+k)
//	unloaded: (W−w)    + C
//
// gives w/W = (1 − k/R) / (2+k) with R = W/C, clamped to [0, 1/(2+k)].
// As R→∞ this converges to the naive relative-power fraction 1/(2+k);
// for small R the loaded node should receive strictly less — the paper's
// central observation about why relative power misdistributes.
type AnalyticModel struct{}

// Fraction implements PairModel.
func (AnalyticModel) Fraction(k int, ratio float64) float64 {
	if k <= 0 {
		return 0.5
	}
	naive := 1.0 / float64(2+k)
	if ratio <= 0 || math.IsInf(ratio, 1) {
		return naive
	}
	f := (1.0 - float64(k)/ratio) / float64(2+k)
	if f < 0 {
		return 0
	}
	if f > naive {
		return naive
	}
	return f
}

// TableModel interpolates fractions measured by micro-benchmarks
// (BuildTableModel) over a log-spaced grid of comp/comm ratios, per
// competing-process count. It falls back to the analytic model outside the
// measured range of k.
type TableModel struct {
	Ratios    []float64         // ascending
	Fractions map[int][]float64 // k -> fraction per ratio
	fallback  AnalyticModel
}

// Fraction implements PairModel by log-linear interpolation in ratio.
func (m *TableModel) Fraction(k int, ratio float64) float64 {
	if k <= 0 {
		return 0.5
	}
	fs, ok := m.Fractions[k]
	if !ok || len(fs) == 0 || len(m.Ratios) != len(fs) {
		return m.fallback.Fraction(k, ratio)
	}
	rs := m.Ratios
	if ratio <= rs[0] {
		return fs[0]
	}
	if ratio >= rs[len(rs)-1] {
		return fs[len(fs)-1]
	}
	i := sort.SearchFloat64s(rs, ratio)
	lo, hi := i-1, i
	t := (math.Log(ratio) - math.Log(rs[lo])) / (math.Log(rs[hi]) - math.Log(rs[lo]))
	return fs[lo] + t*(fs[hi]-fs[lo])
}

// RelativePowerFractions is the baseline from CRAUL [2]: each node's share
// is proportional to power/(1+load), ignoring communication.
func RelativePowerFractions(nodes []Node) []float64 {
	caps := make([]float64, len(nodes))
	var sum float64
	for i, n := range nodes {
		caps[i] = n.Power / float64(1+n.Load)
		sum += caps[i]
	}
	for i := range caps {
		caps[i] /= sum
	}
	return caps
}

// SuccessiveBalancingFractions implements the paper's algorithm: reduce the
// multi-node problem to loaded/unloaded pairs. Each round fixes the loaded
// nodes' shares from the pair model (at their current comp/comm ratio) and
// balances the remainder across the unloaded nodes by power; rounds repeat
// until the unloaded assignment stops changing.
//
// totalComp is the whole workload's per-cycle compute time on a power-1
// node; commCPU is one node's per-cycle communication CPU time. Both only
// matter through their ratio and scale.
func SuccessiveBalancingFractions(nodes []Node, totalComp, commCPU float64, model PairModel) []float64 {
	return SuccessiveBalancingFractionsTrace(nodes, totalComp, commCPU, model, nil)
}

// SuccessiveBalancingFractionsTrace is SuccessiveBalancingFractions with an
// observer: when non-nil, observe receives each round's candidate fractions
// before convergence is tested, so telemetry can record every intermediate
// distribution the algorithm considered.
func SuccessiveBalancingFractionsTrace(nodes []Node, totalComp, commCPU float64, model PairModel, observe func(round int, fractions []float64)) []float64 {
	if model == nil {
		model = AnalyticModel{}
	}
	p := len(nodes)
	fr := RelativePowerFractions(nodes) // starting point
	anyUnloaded := false
	for _, n := range nodes {
		if n.Load == 0 {
			anyUnloaded = true
			break
		}
	}
	if !anyUnloaded {
		return fr // nothing to pair against; relative power is the best guess
	}
	// The per-round capacities are round-invariant: the pair ratio depends
	// only on the workload shape (total compute, group size, comm CPU), not
	// on the evolving fractions, so the candidate assignment is computed
	// once. The round loop below is kept solely for its observable protocol
	// — per-round observe callbacks and convergence against the previous
	// round's fractions — and terminates with the exact same round count and
	// intermediate values as the original recompute-every-round formulation.
	//
	// The pair model is calibrated on a two-node split of the node's
	// neighbourhood workload: the loaded node plus one unloaded peer share
	// 2/p of the total compute.
	ratio := math.Inf(1)
	if commCPU > 0 {
		ratio = totalComp * 2 / float64(p) / commCPU
	}
	var cache phiCache
	next := make([]float64, p)
	var capSum float64
	for i, n := range nodes {
		if n.Load == 0 {
			next[i] = n.Power
		} else {
			phi := cache.get(model, n.Load, ratio)
			if phi >= 0.5 {
				phi = 0.499
			}
			// A pair fraction φ means capacity φ/(1−φ) relative to one
			// unloaded node of the same power.
			next[i] = n.Power * phi / (1 - phi)
		}
		capSum += next[i]
	}
	for i := range next {
		next[i] /= capSum
	}
	const maxRounds = 32
	for round := 0; round < maxRounds; round++ {
		if observe != nil {
			observe(round, append([]float64(nil), next...))
		}
		// Convergence: unloaded shares stable to 0.1%.
		stable := true
		for i, n := range nodes {
			if n.Load == 0 && math.Abs(next[i]-fr[i]) > 1e-3 {
				stable = false
			}
		}
		fr = next
		if stable {
			break
		}
	}
	return fr
}

// phiCache memoises PairModel.Fraction per competing-process count within
// one balancing evaluation: every loaded node sees the same comp/comm
// ratio, so the model's answer depends only on k. Small k (the realistic
// range) stays on the stack; larger counts fall back to a lazily allocated
// map.
type phiCache struct {
	small [9]float64
	set   [9]bool
	big   map[int]float64
}

func (c *phiCache) get(model PairModel, k int, ratio float64) float64 {
	if k >= 0 && k < len(c.small) {
		if !c.set[k] {
			c.small[k] = model.Fraction(k, ratio)
			c.set[k] = true
		}
		return c.small[k]
	}
	if phi, ok := c.big[k]; ok {
		return phi
	}
	phi := model.Fraction(k, ratio)
	if c.big == nil {
		c.big = make(map[int]float64)
	}
	c.big[k] = phi
	return phi
}

// PartitionWeighted splits the iteration space into contiguous blocks whose
// summed iteration costs best match the target fractions. iterCosts[g] is
// the unloaded cost of iteration g (uniform apps pass all-equal costs);
// fractions must sum to ~1. The result is per-node counts in order.
func PartitionWeighted(iterCosts []float64, fractions []float64) []int {
	n, p := len(iterCosts), len(fractions)
	counts := make([]int, p)
	if n == 0 {
		return counts
	}
	var total float64
	for _, w := range iterCosts {
		if w < 0 {
			panic(fmt.Sprintf("distribution: negative iteration cost %v", w))
		}
		total += w
	}
	if total == 0 {
		// Degenerate: treat iterations as uniform.
		return PartitionWeighted(ones(n), fractions)
	}
	// Walk the prefix sums, cutting at the cumulative targets; each block
	// boundary goes to whichever side is closer to its target.
	cum := 0.0
	target := 0.0
	g := 0
	for i := 0; i < p; i++ {
		target += fractions[i] * total
		start := g
		for g < n && cum < target {
			// Assign iteration g to block i if its midpoint is before the
			// target (closest-cut rule).
			if cum+iterCosts[g]/2 > target {
				break
			}
			cum += iterCosts[g]
			g++
		}
		counts[i] = g - start
	}
	// Remainder (rounding) goes to the last non-empty-capable node.
	if g < n {
		counts[p-1] += n - g
	}
	return counts
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// PredictCycleTime estimates one phase-cycle's wall time for a candidate
// assignment: the slowest node's compute plus its communication, with load
// inflation applied to CPU components. counts are iterations per node
// (aligned with nodes); iterCosts are per-iteration unloaded costs on a
// power-1 node; commCPU and commWire are per-node per-cycle communication
// costs in seconds.
func PredictCycleTime(nodes []Node, counts []int, iterCosts []float64, commCPU, commWire float64) float64 {
	if len(nodes) != len(counts) {
		panic("distribution: nodes/counts mismatch")
	}
	pre := make([]float64, len(iterCosts)+1)
	for g, w := range iterCosts {
		pre[g+1] = pre[g] + w
	}
	worst := 0.0
	lo := 0
	for i, n := range nodes {
		hi := lo + counts[i]
		comp := pre[hi] - pre[lo]
		lo = hi
		inflate := float64(1+n.Load) / n.Power
		t := comp*inflate + commCPU*inflate + commWire
		if t > worst {
			worst = t
		}
	}
	return worst
}

// DropDecision is the §4.4 rule: after the post-redistribution grace
// period, compare the measured worst per-cycle time against the predicted
// time of a configuration containing only the unloaded nodes; if the
// prediction (which is reliable, because unloaded nodes are predictable)
// wins, the loaded nodes are physically removed.
//
// measuredMax is the maximum over nodes of the average cycle time observed
// during the grace period. commCPU/commWire describe per-node per-cycle
// communication for the *smaller* unloaded-only configuration.
func DropDecision(nodes []Node, iterCosts []float64, measuredMax, commCPU, commWire float64) (drop bool, predicted float64) {
	var unloaded []Node
	for _, n := range nodes {
		if n.Load == 0 {
			unloaded = append(unloaded, n)
		}
	}
	if len(unloaded) == 0 || len(unloaded) == len(nodes) {
		return false, math.Inf(1)
	}
	fr := RelativePowerFractions(unloaded)
	counts := PartitionWeighted(iterCosts, fr)
	predicted = PredictCycleTime(unloaded, counts, iterCosts, commCPU, commWire)
	return predicted < measuredMax, predicted
}
