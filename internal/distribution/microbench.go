package distribution

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// This file implements the paper's §4.3 micro-benchmarks: "our approach is
// to determine effective distributions by executing micro-benchmarks. We
// executed several synthetic programs for different computation to
// communication ratios." The resulting table feeds successive balancing
// through TableModel.

// pairMakespan runs a synthetic two-node phase program for `cycles` phase
// cycles: node 1 carries k competing processes and fraction f of the
// compute; each cycle both nodes exchange one message whose per-side CPU
// cost is commCPU/2 (so each node spends commCPU per cycle on
// communication). It returns the later finish time in seconds.
func pairMakespan(k int, f, totalComp, commCPU float64, cycles int) float64 {
	spec := cluster.Uniform(2)
	for i := 0; i < k; i++ {
		spec = spec.With(cluster.TimeEvent(1, 0, +1))
	}
	// Tune the network so one zero-byte message costs exactly commCPU/2 of
	// CPU per side with negligible wire time.
	spec.Net = cluster.NetParams{
		Latency:       vclock.Microsecond,
		BytesPerSec:   1e12,
		CPUPerMsg:     vclock.FromSeconds(commCPU / 2),
		CPUPerByte:    0,
		MemBandwidth:  1e12,
		DiskBandwidth: 1e12,
	}
	work := [2]vclock.Duration{
		vclock.FromSeconds(totalComp * (1 - f)),
		vclock.FromSeconds(totalComp * f),
	}
	var finish [2]vclock.Time
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		me, peer := c.Rank(), 1-c.Rank()
		for t := 0; t < cycles; t++ {
			c.Node().Compute(work[me])
			c.Send(peer, t, nil, 0)
			c.Recv(peer, t)
		}
		finish[me] = c.Now()
		return nil
	})
	if err != nil {
		panic(err) // synthetic program cannot fail
	}
	return vclock.Max(finish[0], finish[1]).Seconds()
}

// MeasurePairFraction grid-searches the loaded node's work fraction that
// minimises the makespan of the synthetic pair program, for k competing
// processes at the given computation/communication ratio (pair compute
// divided by per-node comm CPU).
func MeasurePairFraction(k int, ratio float64) float64 {
	const (
		totalComp = 1.0 // seconds of pair compute per cycle
		cycles    = 4
		points    = 60
	)
	commCPU := totalComp / ratio
	bestF, bestT := 0.0, math.Inf(1)
	for i := 0; i <= points; i++ {
		f := 0.5 * float64(i) / points
		t := pairMakespan(k, f, totalComp, commCPU, cycles)
		if t < bestT {
			bestT, bestF = t, f
		}
	}
	return bestF
}

// BuildTableModel measures the pair fraction over a grid of CP counts and
// comp/comm ratios, producing the interpolating model used by successive
// balancing. This is the programmatic equivalent of the paper's offline
// micro-benchmark tuning.
func BuildTableModel(ks []int, ratios []float64) *TableModel {
	m := &TableModel{
		Ratios:    append([]float64(nil), ratios...),
		Fractions: make(map[int][]float64, len(ks)),
	}
	for _, k := range ks {
		fs := make([]float64, len(ratios))
		for i, r := range ratios {
			fs[i] = MeasurePairFraction(k, r)
		}
		m.Fractions[k] = fs
	}
	return m
}

// DefaultRatios is a log-spaced grid covering the regimes our applications
// occupy, from communication-bound (1) to compute-bound (1024).
func DefaultRatios() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
}
