package distribution

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// This file implements the paper's §4.3 micro-benchmarks: "our approach is
// to determine effective distributions by executing micro-benchmarks. We
// executed several synthetic programs for different computation to
// communication ratios." The resulting table feeds successive balancing
// through TableModel.

// pairMakespan runs a synthetic two-node phase program for `cycles` phase
// cycles: node 1 carries k competing processes and fraction f of the
// compute; each cycle both nodes exchange one message whose per-side CPU
// cost is commCPU/2 (so each node spends commCPU per cycle on
// communication). It returns the later finish time in seconds.
func pairMakespan(k int, f, totalComp, commCPU float64, cycles int) float64 {
	spec := cluster.Uniform(2)
	for i := 0; i < k; i++ {
		spec = spec.With(cluster.TimeEvent(1, 0, +1))
	}
	// Tune the network so one zero-byte message costs exactly commCPU/2 of
	// CPU per side with negligible wire time.
	spec.Net = cluster.NetParams{
		Latency:       vclock.Microsecond,
		BytesPerSec:   1e12,
		CPUPerMsg:     vclock.FromSeconds(commCPU / 2),
		CPUPerByte:    0,
		MemBandwidth:  1e12,
		DiskBandwidth: 1e12,
	}
	work := [2]vclock.Duration{
		vclock.FromSeconds(totalComp * (1 - f)),
		vclock.FromSeconds(totalComp * f),
	}
	var finish [2]vclock.Time
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		me, peer := c.Rank(), 1-c.Rank()
		for t := 0; t < cycles; t++ {
			c.Node().Compute(work[me])
			c.Send(peer, t, nil, 0)
			c.Recv(peer, t)
		}
		finish[me] = c.Now()
		return nil
	})
	if err != nil {
		panic(err) // synthetic program cannot fail
	}
	return vclock.Max(finish[0], finish[1]).Seconds()
}

// pairMakespanOverlap is the nonblocking variant of pairMakespan for an
// application that overlaps its exchange with computation (the
// HaloExchangeOverlap pattern): each cycle posts Irecv/Isend first, computes
// over the in-flight wire time, and waits only at the cycle end. The
// communication budget is split between CPU cost (commCPU per node per
// cycle, charged exactly as in pairMakespan) and wire time (wire seconds of
// message latency, the per-cycle inbound exposure of each node). Wire that
// fits under the compute is hidden; only the remainder stalls the Wait.
func pairMakespanOverlap(k int, f, totalComp, commCPU, wire float64, cycles int) float64 {
	spec := cluster.Uniform(2)
	for i := 0; i < k; i++ {
		spec = spec.With(cluster.TimeEvent(1, 0, +1))
	}
	lat := vclock.FromSeconds(wire)
	if lat < vclock.Microsecond {
		lat = vclock.Microsecond
	}
	spec.Net = cluster.NetParams{
		Latency:       lat,
		BytesPerSec:   1e12,
		CPUPerMsg:     vclock.FromSeconds(commCPU / 2),
		CPUPerByte:    0,
		MemBandwidth:  1e12,
		DiskBandwidth: 1e12,
	}
	work := [2]vclock.Duration{
		vclock.FromSeconds(totalComp * (1 - f)),
		vclock.FromSeconds(totalComp * f),
	}
	var finish [2]vclock.Time
	err := mpi.Run(cluster.New(spec), func(c *mpi.Comm) error {
		me, peer := c.Rank(), 1-c.Rank()
		for t := 0; t < cycles; t++ {
			rq := c.Irecv(peer, t)
			c.Isend(peer, t, nil, 0)
			c.Node().Compute(work[me])
			c.Wait(rq)
		}
		finish[me] = c.Now()
		return nil
	})
	if err != nil {
		panic(err) // synthetic program cannot fail
	}
	return vclock.Max(finish[0], finish[1]).Seconds()
}

// MeasurePairFraction grid-searches the loaded node's work fraction that
// minimises the makespan of the synthetic pair program, for k competing
// processes at the given computation/communication ratio (pair compute
// divided by per-node comm CPU).
func MeasurePairFraction(k int, ratio float64) float64 {
	const (
		totalComp = 1.0 // seconds of pair compute per cycle
		cycles    = 4
		points    = 60
	)
	commCPU := totalComp / ratio
	bestF, bestT := 0.0, math.Inf(1)
	for i := 0; i <= points; i++ {
		f := 0.5 * float64(i) / points
		t := pairMakespan(k, f, totalComp, commCPU, cycles)
		if t < bestT {
			bestT, bestF = t, f
		}
	}
	return bestF
}

// MeasurePairFractionOverlap is MeasurePairFraction for an application on
// the nonblocking halo path. The same total communication budget is split
// evenly between CPU cost and wire time, and the synthetic program overlaps
// the exchange with its compute, so the wire half is free wherever the
// compute is long enough to cover it. The measured optimum therefore
// reflects the *effective post-overlap* comm ratio — roughly twice the
// nominal one — and assigns the loaded node more work than the blocking
// table would at the same nominal ratio.
func MeasurePairFractionOverlap(k int, ratio float64) float64 {
	const (
		totalComp = 1.0
		cycles    = 4
		points    = 60
	)
	comm := totalComp / ratio
	bestF, bestT := 0.0, math.Inf(1)
	for i := 0; i <= points; i++ {
		f := 0.5 * float64(i) / points
		t := pairMakespanOverlap(k, f, totalComp, comm/2, comm/2, cycles)
		if t < bestT {
			bestT, bestF = t, f
		}
	}
	return bestF
}

// BuildTableModel measures the pair fraction over a grid of CP counts and
// comp/comm ratios, producing the interpolating model used by successive
// balancing. This is the programmatic equivalent of the paper's offline
// micro-benchmark tuning.
func BuildTableModel(ks []int, ratios []float64) *TableModel {
	m := &TableModel{
		Ratios:    append([]float64(nil), ratios...),
		Fractions: make(map[int][]float64, len(ks)),
	}
	for _, k := range ks {
		fs := make([]float64, len(ratios))
		for i, r := range ratios {
			fs[i] = MeasurePairFraction(k, r)
		}
		m.Fractions[k] = fs
	}
	return m
}

// BuildTableModelOverlap is BuildTableModel measured with the overlapped
// synthetic program. Install it as Config.Model for applications that use
// HaloExchangeOverlap, so successive balancing prices communication at its
// effective post-overlap cost instead of the nominal blocking cost.
func BuildTableModelOverlap(ks []int, ratios []float64) *TableModel {
	m := &TableModel{
		Ratios:    append([]float64(nil), ratios...),
		Fractions: make(map[int][]float64, len(ks)),
	}
	for _, k := range ks {
		fs := make([]float64, len(ratios))
		for i, r := range ratios {
			fs[i] = MeasurePairFractionOverlap(k, r)
		}
		m.Fractions[k] = fs
	}
	return m
}

// DefaultRatios is a log-spaced grid covering the regimes our applications
// occupy, from communication-bound (1) to compute-bound (1024).
func DefaultRatios() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
}
