package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// NodeSummary aggregates one node's iteration records.
type NodeSummary struct {
	Node        int
	Cycles      int
	ComputeS    float64
	CommS       float64
	WaitS       float64
	HiddenWireS float64 // wire time hidden behind computation by overlap
	LastShare   int
}

// Summary is the aggregate view of a trace, the basis of the dynexp
// -summary table.
type Summary struct {
	ByKind      map[string]int
	Nodes       []NodeSummary // sorted by node id
	Decisions   int
	Redists     int
	RowsSent    int
	BytesSent   int64
	BytesRecv   int64              // Σ BytesSent == Σ BytesRecv cluster-wide on fault-free runs
	Memberships []MembershipRecord // in trace order
	LoadEvents  []LoadEventRecord  // in trace order
	Failures    []FailureRecord    // in trace order

	// One-sided (RMA) aggregates, zero when the run used no windows.
	RMAFences   int
	RMADeposits int
	RMABytes    int64
	RMAStallS   float64
	RMAHiddenS  float64
}

// Summarize aggregates a record stream.
func Summarize(recs []Record) *Summary {
	s := &Summary{ByKind: map[string]int{}}
	byNode := map[int]*NodeSummary{}
	for _, rec := range recs {
		s.ByKind[rec.Kind()]++
		switch v := rec.(type) {
		case IterationRecord:
			ns := byNode[v.Node]
			if ns == nil {
				ns = &NodeSummary{Node: v.Node}
				byNode[v.Node] = ns
			}
			ns.Cycles++
			ns.ComputeS += v.ComputeS
			ns.CommS += v.CommS
			ns.WaitS += v.WaitS
			ns.HiddenWireS += float64(v.HiddenWireNs) / 1e9
			ns.LastShare = v.Share
		case DecisionRecord:
			s.Decisions++
		case RedistRecord:
			s.Redists++
			s.RowsSent += v.RowsSent
			s.BytesSent += v.BytesSent
			s.BytesRecv += v.BytesRecv
		case MembershipRecord:
			s.Memberships = append(s.Memberships, v)
		case LoadEventRecord:
			s.LoadEvents = append(s.LoadEvents, v)
		case FailureRecord:
			s.Failures = append(s.Failures, v)
		case RMARecord:
			s.RMAFences++
			s.RMADeposits += v.Deposits
			s.RMABytes += v.Bytes
			s.RMAStallS += v.StallS
			s.RMAHiddenS += v.HiddenS
		}
	}
	for _, ns := range byNode {
		s.Nodes = append(s.Nodes, *ns)
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].Node < s.Nodes[j].Node })
	return s
}

// WriteTable renders the summary as aligned text.
func (s *Summary) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "telemetry summary\n")
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-12s %6d records\n", k, s.ByKind[k])
	}
	if s.Redists > 0 {
		fmt.Fprintf(w, "  redistributions: %d (rows sent %d, bytes sent %d, bytes recv %d)\n",
			s.Redists, s.RowsSent, s.BytesSent, s.BytesRecv)
	}
	if len(s.Nodes) > 0 {
		fmt.Fprintf(w, "  %-5s %7s %11s %11s %11s %7s\n",
			"node", "cycles", "compute(s)", "comm(s)", "wait(s)", "share")
		hidden := 0.0
		for _, ns := range s.Nodes {
			fmt.Fprintf(w, "  %-5d %7d %11.4f %11.4f %11.4f %7d\n",
				ns.Node, ns.Cycles, ns.ComputeS, ns.CommS, ns.WaitS, ns.LastShare)
			hidden += ns.HiddenWireS
		}
		if hidden > 0 {
			fmt.Fprintf(w, "  hidden wire: %.4fs overlapped behind computation across all nodes\n", hidden)
		}
	}
	if s.RMAFences > 0 {
		fmt.Fprintf(w, "  rma: %d fences settled %d deposits (%d bytes); stall %.4fs, hidden %.4fs\n",
			s.RMAFences, s.RMADeposits, s.RMABytes, s.RMAStallS, s.RMAHiddenS)
	}
	for _, m := range s.Memberships {
		fmt.Fprintf(w, "  membership: cycle %d node %d %s active=%v removed=%v\n",
			m.Cycle, m.Node, m.Change, m.Active, m.Removed)
	}
	for _, e := range s.LoadEvents {
		fmt.Fprintf(w, "  load event: cycle %d node %d delta %+d -> %d CPs\n",
			e.Cycle, e.Node, e.Delta, e.Count)
	}
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  failure: cycle %d node %d %s target=%d delay=%.3fs\n",
			f.Cycle, f.Node, f.Fault, f.Target, f.DelayS)
	}
}
