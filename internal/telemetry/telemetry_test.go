package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestStamperSequencesPerNode(t *testing.T) {
	s := NewStamper(3)
	b0 := s.Stamp(KindIteration, 0, 0.5)
	b1 := s.Stamp(KindDecision, 1, 0.75)
	if b0.Node != 3 || b1.Node != 3 {
		t.Fatalf("node not stamped: %+v %+v", b0, b1)
	}
	if b0.Seq != 0 || b1.Seq != 1 {
		t.Fatalf("sequence not monotone: %d %d", b0.Seq, b1.Seq)
	}
	if b0.Kind() != KindIteration || b1.Kind() != KindDecision {
		t.Fatalf("kinds wrong: %q %q", b0.Kind(), b1.Kind())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	s := NewStamper(0)
	for i := 0; i < 5; i++ {
		r.Emit(IterationRecord{Base: s.Stamp(KindIteration, i, float64(i))})
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	for i, rec := range recs {
		if got := rec.Meta().Cycle; got != i+2 {
			t.Fatalf("record %d has cycle %d, want %d (oldest evicted first)", i, got, i+2)
		}
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(1024)
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			s := NewStamper(node)
			for i := 0; i < 100; i++ {
				r.Emit(IterationRecord{Base: s.Stamp(KindIteration, i, float64(i))})
			}
		}(n)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d, want 800", r.Len())
	}
}

func TestSortIsDeterministicOrder(t *testing.T) {
	recs := []Record{
		IterationRecord{Base: Base{K: KindIteration, Node: 1, Time: 2.0, Seq: 0}},
		IterationRecord{Base: Base{K: KindIteration, Node: 0, Time: 2.0, Seq: 1}},
		IterationRecord{Base: Base{K: KindIteration, Node: 0, Time: 2.0, Seq: 0}},
		IterationRecord{Base: Base{K: KindIteration, Node: 2, Time: 1.0, Seq: 5}},
	}
	Sort(recs)
	want := []struct {
		node, seq int
		time      float64
	}{{2, 5, 1.0}, {0, 0, 2.0}, {0, 1, 2.0}, {1, 0, 2.0}}
	for i, w := range want {
		m := recs[i].Meta()
		if m.Node != w.node || m.Seq != w.seq || m.Time != w.time {
			t.Fatalf("position %d: got node=%d seq=%d t=%v, want %+v", i, m.Node, m.Seq, m.Time, w)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		IterationRecord{Base: Base{K: KindIteration, Node: 0, Cycle: 3, Time: 0.25, Seq: 0},
			ComputeS: 0.2, CommS: 0.01, WaitS: 0.04, Share: 32, Load: 1},
		DecisionRecord{Base: Base{K: KindDecision, Node: 0, Cycle: 5, Time: 0.5, Seq: 1},
			Method: "successive-balancing", Loads: []int{0, 1, 0, 0},
			Candidates: []Candidate{
				{Label: "relative-power", Counts: []int{37, 18, 37, 36}, PredictedS: 0.02},
				{Label: "successive-balancing", Counts: []int{40, 9, 40, 39}, PredictedS: 0.015, Rounds: 3},
			},
			Chosen: "successive-balancing", Counts: []int{40, 9, 40, 39}, PredictedS: 0.015},
		RedistRecord{Base: Base{K: KindRedist, Node: 2, Cycle: 5, Time: 0.51, Seq: 0},
			Arrays:   []ArrayMove{{Name: "A", Rows: 7, Bytes: 7168}},
			RowsSent: 7, BytesSent: 7168, BytesMoved: 14336, Counts: []int{40, 9, 40, 39}},
		MembershipRecord{Base: Base{K: KindMembership, Node: 1, Cycle: 20, Time: 1.5, Seq: 2},
			Change: "removed", Active: []int{0, 2, 3}, Removed: []int{1}, Remap: []int{0, 2, 3}},
		LoadSampleRecord{Base: Base{K: KindLoadSample, Node: 3, Cycle: 8, Time: 0.8, Seq: 4}, Reading: 2},
		LoadEventRecord{Base: Base{K: KindLoadEvent, Node: 1, Cycle: 10, Time: 1.0, Seq: 9}, Delta: 1, Count: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, back) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", back, recs)
	}
}

func TestDecodeJSONLRejectsUnknownKind(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader(`{"kind":"mystery","node":0}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	m := Multi(a, b, Nop())
	m.Emit(IterationRecord{Base: Base{K: KindIteration}})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d %d", a.Len(), b.Len())
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		IterationRecord{Base: Base{K: KindIteration, Node: 0, Cycle: 0}, ComputeS: 1, CommS: 0.1, WaitS: 0.2, Share: 50},
		IterationRecord{Base: Base{K: KindIteration, Node: 0, Cycle: 1}, ComputeS: 1, CommS: 0.1, WaitS: 0.2, Share: 60},
		IterationRecord{Base: Base{K: KindIteration, Node: 1, Cycle: 0}, ComputeS: 2, CommS: 0.2, WaitS: 0.1, Share: 40},
		DecisionRecord{Base: Base{K: KindDecision, Node: 0, Cycle: 1}},
		RedistRecord{Base: Base{K: KindRedist, Node: 0, Cycle: 1}, RowsSent: 10, BytesSent: 1000},
		RedistRecord{Base: Base{K: KindRedist, Node: 1, Cycle: 1}, RowsSent: 5, BytesSent: 500},
		MembershipRecord{Base: Base{K: KindMembership, Node: 0, Cycle: 2}, Change: "drop"},
	}
	s := Summarize(recs)
	if s.ByKind[KindIteration] != 3 || s.Decisions != 1 || s.Redists != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.RowsSent != 15 || s.BytesSent != 1500 {
		t.Fatalf("redist totals wrong: rows=%d bytes=%d", s.RowsSent, s.BytesSent)
	}
	if len(s.Nodes) != 2 || s.Nodes[0].Cycles != 2 || s.Nodes[0].LastShare != 60 || s.Nodes[1].ComputeS != 2 {
		t.Fatalf("node summaries wrong: %+v", s.Nodes)
	}
	var buf bytes.Buffer
	s.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"iteration", "redistributions: 2", "membership: cycle 2 node 0 drop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
