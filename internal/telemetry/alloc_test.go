package telemetry

import "testing"

// The stamper sits on the runtime's per-cycle hot path: it runs even for
// records that are ultimately cheap to build, so it must not allocate.
func TestStamperStampAllocFree(t *testing.T) {
	s := NewStamper(3)
	var sink Base
	n := testing.AllocsPerRun(1000, func() {
		sink = s.Stamp(KindIteration, 7, 1.5)
	})
	if n != 0 {
		t.Fatalf("Stamper.Stamp allocated %v times per call, want 0", n)
	}
	if sink.Node != 3 || sink.K != KindIteration {
		t.Fatalf("unexpected base %+v", sink)
	}
}

// Ring.Emit must not allocate once the record is boxed: the ring buffer is
// fixed at construction and records are stored by value.
func TestRingEmitAllocFree(t *testing.T) {
	r := NewRing(64)
	var rec Record = Base{K: KindIteration, Node: 1}
	n := testing.AllocsPerRun(1000, func() {
		r.Emit(rec)
	})
	if n != 0 {
		t.Fatalf("Ring.Emit allocated %v times per call, want 0", n)
	}
	if r.Len() != 64 || r.Dropped() == 0 {
		t.Fatalf("ring did not wrap: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}
