// Package telemetry is the runtime's structured observability layer. Every
// adaptation decision the Dyn-MPI runtime takes — load measurement,
// distribution choice, redistribution volume, node removal and rejoin — is
// emitted as a typed record through a pluggable Sink, so the paper's claims
// (successive balancing beats relative power; removal pays off under heavy
// load) can be verified from a trace instead of reverse-engineered from
// unexported state.
//
// The default is no telemetry at all: a runtime with a nil sink skips every
// emission. Three sink implementations are provided: Nop (swallow), Ring
// (bounded in-memory buffer, for tests and post-run aggregation) and
// JSONLWriter (one JSON object per line, for offline analysis). Sinks must
// be safe for concurrent use — every rank goroutine of a run emits into the
// same sink.
//
// Records carry virtual time, the emitting node, the phase cycle and a
// per-node sequence number. Per-node emission order is deterministic (the
// simulator's virtual clocks are), so Sort's (time, node, seq) order yields
// a reproducible global trace even though physical arrival order at the
// sink depends on goroutine scheduling.
package telemetry

import "sort"

// Record kinds, as written to the "kind" field of JSONL output.
const (
	KindIteration  = "iteration"
	KindDecision   = "decision"
	KindRedist     = "redist"
	KindMembership = "membership"
	KindLoadSample = "load-sample"
	KindLoadEvent  = "load-event"
	KindFailure    = "failure"
	KindCollective = "collective"
	KindRMA        = "rma"
)

// Record is one structured telemetry event.
type Record interface {
	// Kind returns the record's kind constant.
	Kind() string
	// Meta returns the common fields.
	Meta() Base
}

// Base holds the fields shared by every record.
type Base struct {
	K     string  `json:"kind"`
	Node  int     `json:"node"`  // world rank / cluster node id of the emitter
	Cycle int     `json:"cycle"` // phase cycle at emission (-1 when not in a cycle)
	Time  float64 `json:"vt"`    // virtual time in seconds
	Seq   int     `json:"seq"`   // per-node emission counter
}

// Kind implements Record.
func (b Base) Kind() string { return b.K }

// Meta implements Record.
func (b Base) Meta() Base { return b }

// Stamper assigns per-node sequence numbers and fills the common fields.
// One stamper serves all emitters running on a single node's goroutine.
type Stamper struct {
	node int
	seq  int
}

// NewStamper creates a stamper for the given node id.
func NewStamper(node int) *Stamper { return &Stamper{node: node} }

// Stamp produces the Base for the next record emitted by this node.
func (s *Stamper) Stamp(kind string, cycle int, vtSeconds float64) Base {
	b := Base{K: kind, Node: s.node, Cycle: cycle, Time: vtSeconds, Seq: s.seq}
	s.seq++
	return b
}

// IterationRecord describes one phase cycle on one node: wall-clock split
// into compute, communication and wait, plus the node's measured share of
// the iteration space and its observed load.
type IterationRecord struct {
	Base
	ComputeS float64 `json:"compute_s"` // CPU seconds spent computing
	CommS    float64 `json:"comm_s"`    // CPU seconds spent on message processing
	WaitS    float64 `json:"wait_s"`    // wall seconds blocked (recv, collectives, CP delay)
	// HiddenWireNs is the virtual wire time that elapsed behind computation
	// between posting a nonblocking receive and waiting on it — communication
	// the overlap machinery made free. Zero (and omitted) on purely blocking
	// cycles.
	HiddenWireNs int64 `json:"hidden_wire_ns,omitempty"`
	Share        int   `json:"share"` // iterations assigned to this node
	Load         int   `json:"load"`  // competing processes observed this cycle
}

// Candidate is one distribution the decision machinery considered.
type Candidate struct {
	Label      string  `json:"label"`            // e.g. "relative-power", "successive-balancing"
	Counts     []int   `json:"counts"`           // iterations per active node
	PredictedS float64 `json:"predicted_s"`      // predicted per-cycle time
	Rounds     int     `json:"rounds,omitempty"` // balancing rounds until convergence
}

// DecisionRecord captures one adaptation decision: the loads that triggered
// it, every candidate distribution considered, and what was chosen.
type DecisionRecord struct {
	Base
	Method     string      `json:"method"` // configured method or drop policy
	Loads      []int       `json:"loads"`  // per-active-node competing processes
	Candidates []Candidate `json:"candidates,omitempty"`
	Chosen     string      `json:"chosen"`               // label of the winning candidate or verdict
	Counts     []int       `json:"counts,omitempty"`     // the distribution actually installed
	PredictedS float64     `json:"predicted_s"`          // predicted per-cycle time of the choice
	MeasuredS  float64     `json:"measured_s,omitempty"` // measured time (drop decisions only)
}

// ArrayMove is one array's share of a redistribution.
type ArrayMove struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`  // rows this node sent
	Bytes int64  `json:"bytes"` // bytes this node packed and sent
}

// RedistRecord describes one executed redistribution from the emitting
// node's perspective: what it shipped per array and the new distribution.
type RedistRecord struct {
	Base
	Arrays     []ArrayMove `json:"arrays,omitempty"`
	RowsSent   int         `json:"rows_sent"`
	BytesSent  int64       `json:"bytes_sent"`
	BytesRecv  int64       `json:"bytes_recv"`          // received by this node; Σ sent == Σ recv fault-free
	BytesMoved int64       `json:"bytes_moved"`         // BytesSent + BytesRecv (kept as an explicit sum)
	Counts     []int       `json:"counts"`              // installed per-node iteration counts
	LostRows   int         `json:"lost_rows,omitempty"` // rows declared lost by a failure recovery
}

// MembershipRecord describes a change of the active node set: a physical
// drop, a logical drop, a removal (emitted by the node leaving), a rejoin,
// or a forced drop after a detected failure ("failure-drop"). Remap is the
// new relative-rank mapping: Remap[rel] = world rank.
type MembershipRecord struct {
	Base
	Change  string `json:"change"` // "drop", "logical-drop", "removed", "rejoin", "rejoined", "failure-drop"
	Active  []int  `json:"active"`
	Removed []int  `json:"removed,omitempty"`
	Remap   []int  `json:"remap"` // relative rank -> world rank
}

// LoadSampleRecord is one dmpi_ps reading taken by the load monitor.
type LoadSampleRecord struct {
	Base
	Reading int `json:"reading"` // running+ready processes incl. the application
}

// LoadEventRecord marks a competing-process change materialising on a node
// (cycle-triggered scenario events).
type LoadEventRecord struct {
	Base
	Delta int `json:"delta"` // +1 CP started, -1 CP stopped
	Count int `json:"count"` // CP count after the change
}

// FailureRecord marks an injected fault firing on the emitting node: a
// crash or stall of the node itself, or a drop/delay on one of its outgoing
// links. Failure records never appear in fault-free runs, so their fields
// are always present in JSONL output.
type FailureRecord struct {
	Base
	Fault  string  `json:"fault"`   // "crash", "stall", "drop", "delay"
	Target int     `json:"target"`  // destination rank for message faults, -1 otherwise
	DelayS float64 `json:"delay_s"` // stall length / added delivery delay, in seconds
}

// CollectiveRecord summarises the collectives of one shape completed on one
// group over a run: the operation, the cost-model tree it is priced as, the
// group size and modelled tree depth, and the completed-operation and
// offered-byte totals. Emitted once per (group, shape) with a non-zero
// count, typically at run exit.
type CollectiveRecord struct {
	Base
	Op        string `json:"op"`        // "barrier", "bcast", "allreduce", ...
	Algorithm string `json:"algorithm"` // modelled tree, e.g. "recursive-doubling"
	Ranks     int    `json:"ranks"`     // group size
	Steps     int    `json:"steps"`     // modelled tree depth ceil(log2 ranks)
	Count     int64  `json:"count"`     // completed operations
	Bytes     int64  `json:"bytes"`     // payload bytes offered across members and ops
}

// RMARecord describes one closed one-sided epoch from the window owner's
// perspective: the fence that closed it, how many deposits landed in the
// owner's window during the epoch, their total wire bytes, the residual
// wire stall the owner paid at the fence, and the wire time that was hidden
// behind the owner's computation since the deposits were posted. Only
// emitted for epochs (successful fences), never per Put — the origin side
// of a Put is indistinguishable from a send and is already counted by the
// traffic counters.
type RMARecord struct {
	Base
	Op       string  `json:"op"`       // "fence"
	Window   int     `json:"window"`   // window id within its group
	Deposits int     `json:"deposits"` // puts/gets settled by this fence
	Bytes    int64   `json:"bytes"`    // wire bytes of those deposits
	StallS   float64 `json:"stall_s"`  // residual wire stall paid at the fence
	HiddenS  float64 `json:"hidden_s"` // wire time hidden behind computation
}

// Sort orders records by (virtual time, node, per-node sequence), the
// deterministic global order of a simulated run.
func Sort(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i].Meta(), recs[j].Meta()
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
}
