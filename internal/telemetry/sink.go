package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives telemetry records. Implementations must be safe for
// concurrent use: every rank goroutine of a run emits into the same sink.
type Sink interface {
	Emit(Record)
}

// nopSink swallows everything.
type nopSink struct{}

func (nopSink) Emit(Record) {}

// Nop returns the no-op sink.
func Nop() Sink { return nopSink{} }

// Ring is a bounded in-memory sink. When full it drops the oldest records,
// keeping the most recent ones; Dropped reports how many were lost.
type Ring struct {
	mu      sync.Mutex
	buf     []Record
	start   int // index of the oldest record
	n       int // records currently held
	dropped int
}

// NewRing creates a ring buffer holding up to capacity records.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("telemetry: non-positive ring capacity")
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(rec Record) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.buf[r.start] = rec
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
	}
	r.mu.Unlock()
}

// Records returns a snapshot of the held records in arrival order.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Dropped reports how many records were evicted because the ring was full.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the number of records currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// JSONLWriter encodes each record as one JSON object per line. Encoding
// happens under a mutex in arrival order; for a deterministic file, collect
// into a Ring, Sort, and use WriteJSONL instead.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter creates a JSONL sink over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (j *JSONLWriter) Emit(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		_, err = j.w.Write(append(b, '\n'))
	}
	if err != nil {
		j.err = err
	}
}

// Flush flushes buffered output and returns the first error encountered.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// multiSink fans every record out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(rec Record) {
	for _, s := range m {
		s.Emit(rec)
	}
}

// Multi returns a sink that forwards every record to all of sinks.
func Multi(sinks ...Sink) Sink { return multiSink(sinks) }

// WriteJSONL writes records to w, one JSON object per line, in slice order.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL parses a JSONL trace back into typed records. Unknown kinds
// are an error, so traces and decoder stay in sync.
func DecodeJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var base Base
		if err := json.Unmarshal(raw, &base); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		var rec Record
		var err error
		switch base.K {
		case KindIteration:
			var v IterationRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindDecision:
			var v DecisionRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindRedist:
			var v RedistRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindMembership:
			var v MembershipRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindLoadSample:
			var v LoadSampleRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindLoadEvent:
			var v LoadEventRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		case KindFailure:
			var v FailureRecord
			err = json.Unmarshal(raw, &v)
			rec = v
		default:
			return nil, fmt.Errorf("telemetry: line %d: unknown kind %q", line, base.K)
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
