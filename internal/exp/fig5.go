package exp

import (
	"fmt"
	"sync"

	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vclock"
)

// Fig5Options parameterises the multiple-redistribution-points experiment
// (§5.2): Jacobi on 4 nodes, three equal periods, a competing process
// active only during the second, and three policies — No Redist, Redist
// Once, Redist Twice — at two period lengths (Short and Long).
type Fig5Options struct {
	Nodes int
	// ShortPeriod and LongPeriod are the per-period cycle counts (the
	// paper uses 50 and 500; the scaled defaults preserve the
	// redistribution-cost-to-period ratio).
	ShortPeriod, LongPeriod int
	Paper                   bool
}

// DefaultFig5Options returns the scaled configuration.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{Nodes: 4, ShortPeriod: 30, LongPeriod: 150}
}

// Fig5Run is one bar of the figure.
type Fig5Run struct {
	Test    string // "no-redist", "redist-once", "redist-twice"
	Period  int
	Total   float64 // seconds
	Redist  float64 // seconds spent redistributing (all ranks' max)
	Redists int
	// PeriodEnds are the virtual times at the three period boundaries
	// (slowest rank), reconstructing the paper's stacked breakdown.
	PeriodEnds [3]float64
}

// Fig5Result groups runs by period length.
type Fig5Result struct {
	Short []Fig5Run
	Long  []Fig5Run
}

func runFig5Case(nodes, period int, maxRedists int, adapt bool, paper bool) (Fig5Run, error) {
	cfg := jacobi.DefaultConfig()
	if paper {
		cfg.Rows, cfg.Cols, cfg.CostPerElem = 2048, 2048, 40
	} else {
		// Wide rows keep redistribution expensive relative to a cycle, the
		// property that makes the second redistribution unprofitable for
		// short periods (see EXPERIMENTS.md).
		cfg.Rows, cfg.Cols, cfg.CostPerElem = 512, 2048, 150
	}
	cfg.Iters = 3 * period
	cfg.Core = core.DefaultConfig()
	cfg.Core.Adapt = adapt
	cfg.Core.Drop = core.DropNever
	cfg.Core.MaxRedists = maxRedists

	var mu sync.Mutex
	boundaries := [3]float64{}
	cfg.CycleHook = func(rank, cycle int, now vclock.Time) {
		for i := 1; i <= 3; i++ {
			if cycle == i*period-1 {
				mu.Lock()
				if s := now.Seconds(); s > boundaries[i-1] {
					boundaries[i-1] = s
				}
				mu.Unlock()
			}
		}
	}

	spec := cluster.Uniform(nodes).
		With(cluster.CycleEvent(1, period, +1)).
		With(cluster.CycleEvent(1, 2*period, -1))
	res, err := jacobi.Run(cluster.New(spec), cfg)
	if err != nil {
		return Fig5Run{}, err
	}
	name := "no-redist"
	if adapt {
		if maxRedists == 1 {
			name = "redist-once"
		} else {
			name = "redist-twice"
		}
	}
	return Fig5Run{
		Test:       name,
		Period:     period,
		Total:      res.Elapsed,
		Redist:     totalRedistSeconds(res),
		Redists:    res.Redists,
		PeriodEnds: boundaries,
	}, nil
}

// RunFig5 executes the short and long variants of all three policies.
func RunFig5(o Fig5Options) (*Fig5Result, error) {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.ShortPeriod == 0 {
		o.ShortPeriod = 30
	}
	if o.LongPeriod == 0 {
		o.LongPeriod = 150
	}
	out := &Fig5Result{}
	for _, period := range []int{o.ShortPeriod, o.LongPeriod} {
		var runs []Fig5Run
		for _, c := range []struct {
			adapt bool
			max   int
		}{{false, 0}, {true, 1}, {true, 2}} {
			r, err := runFig5Case(o.Nodes, period, c.max, c.adapt, o.Paper)
			if err != nil {
				return nil, fmt.Errorf("fig5 period %d: %w", period, err)
			}
			runs = append(runs, r)
		}
		if period == o.ShortPeriod {
			out.Short = runs
		} else {
			out.Long = runs
		}
	}
	return out, nil
}

// Find returns the run with the given test name from a period group.
func Find(runs []Fig5Run, test string) Fig5Run {
	for _, r := range runs {
		if r.Test == test {
			return r
		}
	}
	return Fig5Run{}
}

// Table renders both period lengths.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Caption: "Figure 5: Jacobi with multiple redistribution points (4 nodes; CP active during the middle period only)",
		Header:  []string{"execution", "test", "total(s)", "p1(s)", "p2(s)", "p3(s)", "redist(s)", "redists"},
	}
	add := func(label string, runs []Fig5Run) {
		for _, run := range runs {
			p1 := run.PeriodEnds[0]
			p2 := run.PeriodEnds[1] - run.PeriodEnds[0]
			p3 := run.PeriodEnds[2] - run.PeriodEnds[1]
			t.Rows = append(t.Rows, []string{
				label, run.Test, f2(run.Total), f2(p1), f2(p2), f2(p3), f3(run.Redist), fmt.Sprint(run.Redists),
			})
		}
	}
	add("short", r.Short)
	add("long", r.Long)
	return t
}
