package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
)

// This file measures the one-sided replica-refresh claim: with per-cycle
// buddy replication (ReplicaEvery=1), routing the refresh through RMA
// windows with a deferred epoch hides the slab wire time behind the next
// cycle's computation, so the holder-side stall of the paired send/recv
// refresh all but disappears. The workload is a dedicated uniform cluster
// (no competing processes, no redistributions), so every second of stall
// difference is the refresh mechanism itself.
//
// The one-sided runs settle their epochs pairwise by default (PSCW: each
// holder synchronises only with its buddy and its own holder, never the
// whole world), with the legacy full-group fence available as a third
// column — the fence's dissemination barrier costs ceil(log2 n) rounds per
// epoch per array, which is what made the original one-sided mode lose its
// makespan advantage at 256 ranks.

// RMAOptions parameterises the one-sided refresh study.
type RMAOptions struct {
	// Nodes lists the world sizes (default 64/256, the scalability regimes
	// the acceptance table quotes).
	Nodes []int
	// Seed offsets the cluster seeds.
	Seed uint64
	// Sync selects the epoch discipline of the one-sided runs (default
	// SyncPSCW, the pairwise post/start/complete/wait handshake).
	Sync core.ReplicaSyncMode
	// LegacyFence adds a third run per world size under the full-group
	// fence, populating the fence columns for the scaling comparison.
	LegacyFence bool
}

// DefaultRMAOptions returns the default ladder, with the legacy fence
// comparison column enabled.
func DefaultRMAOptions() RMAOptions {
	return RMAOptions{Nodes: []int{64, 256}, LegacyFence: true}
}

// RMARow is one world-size measurement: total refresh stall across ranks
// and the virtual makespan, under each refresh mode. The fence columns are
// zero unless the study ran with LegacyFence.
type RMARow struct {
	Nodes        int
	PairedStallS float64 // paired send/recv refresh stall, summed over ranks
	RMAStallS    float64 // one-sided refresh stall (pairwise epochs)
	PairedS      float64 // paired-mode virtual makespan
	RMAS         float64 // one-sided virtual makespan (pairwise epochs)
	FenceStallS  float64 // one-sided stall under the legacy full-group fence
	FenceS       float64 // legacy fence virtual makespan
}

// StallReduction reports the fractional holder-side stall saving.
func (r RMARow) StallReduction() float64 {
	if r.PairedStallS == 0 {
		return 0
	}
	return (r.PairedStallS - r.RMAStallS) / r.PairedStallS
}

// RMAResult holds the study.
type RMAResult struct {
	Rows []RMARow
}

// MinReduction reports the smallest stall reduction across world sizes —
// the figure the ≥30% acceptance bound is checked against.
func (r *RMAResult) MinReduction() float64 {
	min := 1.0
	for _, row := range r.Rows {
		if red := row.StallReduction(); red < min {
			min = red
		}
	}
	if len(r.Rows) == 0 {
		return 0
	}
	return min
}

// MakespanOK reports whether the one-sided makespan held at or under the
// paired makespan on every world size — the regression the fence barrier
// caused at 256 ranks and the pairwise epochs must not reintroduce.
func (r *RMAResult) MakespanOK() bool {
	for _, row := range r.Rows {
		if row.RMAS > row.PairedS {
			return false
		}
	}
	return true
}

// RunRMA executes the one-sided refresh study.
func RunRMA(o RMAOptions) (*RMAResult, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{64, 256}
	}
	res := &RMAResult{}
	const rows, cols, iters = 512, 1024, 20
	run := func(n int, rma bool, sync core.ReplicaSyncMode) (apps.Result, error) {
		cfg := jacobi.DefaultConfig()
		cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = rows, cols, iters, 40
		cfg.Core = core.DefaultConfig()
		cfg.Core.Drop = core.DropNever
		cfg.Core.Replicate = true
		cfg.Core.ReplicaEvery = 1
		cfg.Core.ReplicaRMA = rma
		cfg.Core.ReplicaSync = sync
		spec := cluster.Uniform(n)
		spec.Seed += o.Seed
		return jacobi.Run(cluster.New(spec), cfg)
	}
	stallOf := func(r apps.Result) float64 {
		total := 0.0
		for _, st := range r.Stats {
			total += st.RefreshStall.Seconds()
		}
		return total
	}
	for _, n := range o.Nodes {
		paired, err := run(n, false, o.Sync)
		if err != nil {
			return nil, fmt.Errorf("rma %d paired: %w", n, err)
		}
		onesided, err := run(n, true, o.Sync)
		if err != nil {
			return nil, fmt.Errorf("rma %d one-sided: %w", n, err)
		}
		if paired.Checksum != onesided.Checksum {
			return nil, fmt.Errorf("rma %d: one-sided refresh changed the checksum", n)
		}
		row := RMARow{
			Nodes:        n,
			PairedStallS: stallOf(paired),
			RMAStallS:    stallOf(onesided),
			PairedS:      paired.Elapsed,
			RMAS:         onesided.Elapsed,
		}
		if o.LegacyFence {
			fence, err := run(n, true, core.SyncFence)
			if err != nil {
				return nil, fmt.Errorf("rma %d fence: %w", n, err)
			}
			if fence.Checksum != paired.Checksum {
				return nil, fmt.Errorf("rma %d: fence refresh changed the checksum", n)
			}
			row.FenceStallS = stallOf(fence)
			row.FenceS = fence.Elapsed
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the study.
func (r *RMAResult) Table() *Table {
	fence := false
	for _, row := range r.Rows {
		if row.FenceS > 0 {
			fence = true
		}
	}
	t := &Table{
		Caption: "One-sided replica refresh: holder-side stall of per-cycle buddy replication, paired send/recv vs pairwise-epoch (PSCW) RMA windows (dedicated cluster)",
		Header:  []string{"nodes", "paired-stall(s)", "rma-stall(s)", "reduction", "paired(s)", "rma(s)"},
	}
	if fence {
		t.Header = append(t.Header, "fence-stall(s)", "fence(s)")
	}
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprint(row.Nodes), f3(row.PairedStallS), f3(row.RMAStallS),
			pct(row.StallReduction()), f2(row.PairedS), f2(row.RMAS),
		}
		if fence {
			cells = append(cells, f3(row.FenceStallS), f2(row.FenceS))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
