package exp

import (
	"fmt"

	"repro/internal/apps/cg"
	"repro/internal/cluster"
	"repro/internal/core"
)

// CGTableOptions parameterises the §5.1 CG case study: the 4-node run the
// paper walks through in detail (dedicated 37.5s → 73.0s without
// adaptation → 45.1s with Dyn-MPI; chosen distribution 2/7,2/7,2/7,1/7 with
// ~1s of redistribution overhead).
type CGTableOptions struct {
	Nodes int
	Paper bool
}

// DefaultCGTableOptions returns the paper's 4-node configuration.
func DefaultCGTableOptions() CGTableOptions { return CGTableOptions{Nodes: 4} }

// CGTableResult holds the case-study measurements.
type CGTableResult struct {
	Dedicated float64
	NoAdapt   float64
	DynMPI    float64
	// Counts is the distribution Dyn-MPI chose (iterations per node).
	Counts []int
	// RedistSeconds is the measured redistribution overhead.
	RedistSeconds float64
	// IdealFraction is the loaded node's relative-power share (paper: 1/7).
	IdealFraction float64
}

// RunCGTable executes the §5.1 CG case study.
func RunCGTable(o CGTableOptions) (*CGTableResult, error) {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	cfg := cg.DefaultConfig()
	if o.Paper {
		cfg.N, cfg.Iters, cfg.CostPerNnz = 14000, 75, 2750
	} else {
		cfg.N, cfg.Iters, cfg.CostPerNnz = 2000, 100, 4600
	}

	dedCfg := cfg
	dedCfg.Core = core.Config{Adapt: false}
	ded, err := cg.Run(cluster.New(cluster.Uniform(o.Nodes)), dedCfg)
	if err != nil {
		return nil, err
	}
	spec := cluster.Uniform(o.Nodes).With(cluster.CycleEvent(1, 10, +1))
	non, err := cg.Run(cluster.New(spec), dedCfg)
	if err != nil {
		return nil, err
	}
	dynCfg := cfg
	dynCfg.Core = core.DefaultConfig()
	dynCfg.Core.Drop = core.DropNever // the case study keeps the loaded node
	dyn, err := cg.Run(cluster.New(spec), dynCfg)
	if err != nil {
		return nil, err
	}
	res := &CGTableResult{
		Dedicated:     ded.Elapsed,
		NoAdapt:       non.Elapsed,
		DynMPI:        dyn.Elapsed,
		RedistSeconds: totalRedistSeconds(dyn),
		IdealFraction: (1.0 / 2) / (float64(o.Nodes-1) + 1.0/2),
	}
	// The chosen distribution is recorded on every redistribution event.
	for _, st := range dyn.Stats {
		for _, ev := range st.Events {
			if ev.Kind == core.EvRedistEnd && len(ev.Counts) > 0 {
				res.Counts = ev.Counts
			}
		}
	}
	return res, nil
}

// Table renders the case study.
func (r *CGTableResult) Table() *Table {
	t := &Table{
		Caption: "§5.1 CG case study (4 nodes, one CP on node 1 at iteration 10)",
		Header:  []string{"configuration", "time(s)", "vs dedicated"},
	}
	t.Rows = append(t.Rows,
		[]string{"dedicated", f2(r.Dedicated), "1.00"},
		[]string{"no adaptation", f2(r.NoAdapt), f2(r.NoAdapt / r.Dedicated)},
		[]string{"dyn-mpi", f2(r.DynMPI), f2(r.DynMPI / r.Dedicated)},
	)
	if len(r.Counts) > 0 {
		t.Rows = append(t.Rows, []string{"chosen counts", fmt.Sprint(r.Counts), ""})
	}
	t.Rows = append(t.Rows,
		[]string{"redist overhead(s)", f3(r.RedistSeconds), pct(r.RedistSeconds / r.DynMPI)},
		[]string{"relative-power share of loaded node", f3(r.IdealFraction), ""},
	)
	return t
}
