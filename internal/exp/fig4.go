package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/cg"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/particles"
	"repro/internal/apps/sor"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Fig4Options parameterises the Figure 4 reproduction: all four
// applications on 2/4/8 nodes, one competing process introduced on one
// node at the 10th iteration, times normalised to the all-dedicated run.
type Fig4Options struct {
	// Nodes lists the configurations (paper: 2, 4, 8).
	Nodes []int
	// Apps restricts the applications (default all four).
	Apps []string
	// Paper selects the paper's input sizes (2048² Jacobi/SOR, 14000 CG,
	// 256² particles); default is a scaled configuration with matching
	// computation/communication ratios.
	Paper bool
	// Seed offsets the cluster seeds (for replication studies).
	Seed uint64
}

// DefaultFig4Options returns the paper's configuration at laptop scale.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{Nodes: []int{2, 4, 8}, Apps: []string{"jacobi", "sor", "cg", "particles"}}
}

// Fig4Row is one (app, nodes) measurement.
type Fig4Row struct {
	App       string
	Nodes     int
	Dedicated float64 // absolute seconds
	NoAdapt   float64 // normalised to Dedicated
	DynMPI    float64 // normalised to Dedicated
	Redists   int
}

// Fig4Result holds every row of the Figure 4 reproduction.
type Fig4Result struct {
	Rows []Fig4Row
}

// Improvement reports Dyn-MPI's mean improvement over no adaptation
// (the paper reports an average of 72%).
func (r *Fig4Result) Improvement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range r.Rows {
		s += (row.NoAdapt - row.DynMPI) / row.DynMPI
	}
	return s / float64(len(r.Rows))
}

// Slowdown reports the mean Dyn-MPI slowdown versus dedicated (paper: 29%).
func (r *Fig4Result) Slowdown() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range r.Rows {
		s += row.DynMPI - 1
	}
	return s / float64(len(r.Rows))
}

// fig4Runner abstracts one application for the Figure 4 matrix.
type fig4Runner struct {
	name   string
	cpNode int // node receiving the competing process
	run    func(cl *cluster.Cluster, coreCfg core.Config) (apps.Result, error)
}

// loadedAtCycle10 is the paper's scenario: one CP on the 10th iteration.
func loadedAtCycle10(n, node int, seed uint64) cluster.Spec {
	spec := cluster.Uniform(n)
	spec.Seed += seed
	return spec.With(cluster.CycleEvent(node, 10, +1))
}

func fig4Runners(o Fig4Options) []fig4Runner {
	jc := jacobi.DefaultConfig()
	sc := sor.DefaultConfig()
	cc := cg.DefaultConfig()
	pc := particles.DefaultConfig()
	if o.Paper {
		jc.Rows, jc.Cols, jc.Iters, jc.CostPerElem = 2048, 2048, 250, 40
		sc.Rows, sc.Cols, sc.Iters, sc.CostPerElem = 2048, 2048, 250, 40
		cc.N, cc.Iters, cc.CostPerNnz = 14000, 75, 2750
		pc.Rows, pc.Cols, pc.Steps = 256, 256, 200
	} else {
		// Scaled for laptop runs; comp/comm ratios calibrated to the paper's
		// testbed (see EXPERIMENTS.md).
		jc.Rows, jc.Cols, jc.Iters, jc.CostPerElem = 512, 512, 250, 600
		sc.Rows, sc.Cols, sc.Iters, sc.CostPerElem = 512, 512, 250, 600
		cc.N, cc.Iters, cc.CostPerNnz = 2000, 150, 4600
		pc.Rows, pc.Cols, pc.Steps, pc.CostPerParticle = 128, 128, 250, 5000
	}
	pc.ExtraAllP0 = pc.BasePerCell // "one node had twice as many particles"

	return []fig4Runner{
		{name: "jacobi", cpNode: 1, run: func(cl *cluster.Cluster, c core.Config) (apps.Result, error) {
			cfg := jc
			cfg.Core = c
			return jacobi.Run(cl, cfg)
		}},
		{name: "sor", cpNode: 1, run: func(cl *cluster.Cluster, c core.Config) (apps.Result, error) {
			cfg := sc
			cfg.Core = c
			return sor.Run(cl, cfg)
		}},
		{name: "cg", cpNode: 1, run: func(cl *cluster.Cluster, c core.Config) (apps.Result, error) {
			cfg := cc
			cfg.Core = c
			return cg.Run(cl, cfg)
		}},
		{name: "particles", cpNode: 0, run: func(cl *cluster.Cluster, c core.Config) (apps.Result, error) {
			cfg := pc
			cfg.Core = c
			return particles.Run(cl, cfg)
		}},
	}
}

// RunFig4 executes the Figure 4 matrix.
func RunFig4(o Fig4Options) (*Fig4Result, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{2, 4, 8}
	}
	want := map[string]bool{}
	for _, a := range o.Apps {
		want[a] = true
	}
	res := &Fig4Result{}
	for _, r := range fig4Runners(o) {
		if len(o.Apps) > 0 && !want[r.name] {
			continue
		}
		for _, n := range o.Nodes {
			cpNode := r.cpNode
			if cpNode >= n {
				cpNode = n - 1
			}
			ded := cluster.Uniform(n)
			ded.Seed += o.Seed

			noCfg := core.Config{Adapt: false}
			dedRes, err := r.run(cluster.New(ded), noCfg)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s/%d dedicated: %w", r.name, n, err)
			}
			nonRes, err := r.run(cluster.New(loadedAtCycle10(n, cpNode, o.Seed)), noCfg)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s/%d no-adapt: %w", r.name, n, err)
			}
			dynCfg := core.DefaultConfig()
			dynRes, err := r.run(cluster.New(loadedAtCycle10(n, cpNode, o.Seed)), dynCfg)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s/%d dyn-mpi: %w", r.name, n, err)
			}
			res.Rows = append(res.Rows, Fig4Row{
				App:       r.name,
				Nodes:     n,
				Dedicated: dedRes.Elapsed,
				NoAdapt:   nonRes.Elapsed / dedRes.Elapsed,
				DynMPI:    dynRes.Elapsed / dedRes.Elapsed,
				Redists:   dynRes.Redists,
			})
		}
	}
	return res, nil
}

// Table renders the result in the paper's normalised form.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Caption: "Figure 4: execution time relative to the all-dedicated run (one CP introduced on iteration 10; smaller is better)",
		Header:  []string{"app", "nodes", "dedicated(s)", "no-adapt", "dyn-mpi", "improvement", "redists"},
	}
	for _, row := range r.Rows {
		imp := (row.NoAdapt - row.DynMPI) / row.DynMPI
		t.Rows = append(t.Rows, []string{
			row.App, fmt.Sprint(row.Nodes), f2(row.Dedicated),
			f2(row.NoAdapt), f2(row.DynMPI), pct(imp), fmt.Sprint(row.Redists),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", "", "", "", "", pct(r.Improvement()), ""})
	return t
}
