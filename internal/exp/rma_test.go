package exp

import "testing"

// TestRMAStallReduction pins the PR's headline refresh claim: at the
// acceptance world sizes the deferred-epoch one-sided refresh cuts the
// holder-side replica stall by at least 30% versus the paired send/recv
// refresh. RunRMA itself enforces checksum equality between the modes.
func TestRMAStallReduction(t *testing.T) {
	o := DefaultRMAOptions()
	if testing.Short() {
		o.Nodes = []int{64}
	}
	res, err := RunRMA(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(o.Nodes) {
		t.Fatalf("expected %d rows, got %d", len(o.Nodes), len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PairedStallS <= 0 {
			t.Fatalf("nodes=%d: paired refresh shows no stall; study is vacuous", row.Nodes)
		}
	}
	if r := res.MinReduction(); r < 0.30 {
		t.Fatalf("stall reduction %.1f%% below the 30%% bar", r*100)
	}
	if !res.MakespanOK() {
		t.Fatalf("one-sided makespan exceeds paired somewhere: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.FenceS == 0 {
			t.Fatalf("nodes=%d: legacy fence column missing from default study", row.Nodes)
		}
	}
	if tbl := res.Table(); len(tbl.Rows) != len(res.Rows) {
		t.Fatalf("table rows %d != result rows %d", len(tbl.Rows), len(res.Rows))
	}
}
