package exp

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distribution"
)

// MicrobenchOptions parameterises the §4.3 study: the two-node
// micro-benchmark table of effective loaded-node work fractions across
// computation/communication ratios, the analytic model's predictions, and
// an end-to-end comparison of successive balancing against the naive
// relative-power method.
type MicrobenchOptions struct {
	CPs    []int
	Ratios []float64
}

// DefaultMicrobenchOptions covers the paper's regimes.
func DefaultMicrobenchOptions() MicrobenchOptions {
	return MicrobenchOptions{CPs: []int{1, 2, 3}, Ratios: []float64{1, 2, 4, 8, 16, 64, 256}}
}

// MicrobenchResult holds the measured and analytic fractions plus the
// end-to-end method comparison.
type MicrobenchResult struct {
	CPs      []int
	Ratios   []float64
	Measured map[int][]float64
	Analytic map[int][]float64
	Naive    map[int]float64 // relative-power fraction per CP count

	// SBTime / RPTime compare adaptive Jacobi with the two methods in a
	// communication-heavy configuration (total virtual seconds).
	SBTime, RPTime float64
	// SBCycle / RPCycle are the average post-redistribution phase-cycle
	// times — the steady-state quality of each method's distribution.
	SBCycle, RPCycle float64
}

// RunMicrobench measures the table and the method comparison.
func RunMicrobench(o MicrobenchOptions) (*MicrobenchResult, error) {
	if len(o.CPs) == 0 {
		d := DefaultMicrobenchOptions()
		o.CPs, o.Ratios = d.CPs, d.Ratios
	}
	res := &MicrobenchResult{
		CPs: o.CPs, Ratios: o.Ratios,
		Measured: map[int][]float64{}, Analytic: map[int][]float64{}, Naive: map[int]float64{},
	}
	model := distribution.AnalyticModel{}
	for _, k := range o.CPs {
		ms := make([]float64, len(o.Ratios))
		as := make([]float64, len(o.Ratios))
		for i, r := range o.Ratios {
			ms[i] = distribution.MeasurePairFraction(k, r)
			as[i] = model.Fraction(k, r)
		}
		res.Measured[k] = ms
		res.Analytic[k] = as
		res.Naive[k] = 1.0 / float64(2+k)
	}

	// End to end: a Jacobi configuration in the regime where the method
	// choice matters — communication CPU is comparable to per-node compute
	// (pair ratio ≈ 2), so the naive method overloads the loaded node with
	// work it cannot complete once its communication CPU is inflated.
	for _, method := range []core.Method{core.SuccessiveBalancing, core.RelativePower} {
		cfg := jacobi.DefaultConfig()
		cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 256, 2048, 200, 10
		cfg.Core = core.DefaultConfig()
		cfg.Core.Drop = core.DropNever
		cfg.Core.Method = method
		spec := cluster.Uniform(4).With(cluster.TimeEvent(1, 0, +1))
		out, err := jacobi.Run(cluster.New(spec), cfg)
		if err != nil {
			return nil, fmt.Errorf("microbench end-to-end: %w", err)
		}
		avg, ok := avgCycleAfterRedist(out, cfg.Iters)
		if !ok {
			return nil, fmt.Errorf("microbench end-to-end: no redistribution")
		}
		if method == core.SuccessiveBalancing {
			res.SBTime, res.SBCycle = out.Elapsed, avg
		} else {
			res.RPTime, res.RPCycle = out.Elapsed, avg
		}
	}
	return res, nil
}

// Table renders the fraction table and the method comparison.
func (r *MicrobenchResult) Table() *Table {
	t := &Table{
		Caption: "§4.3 micro-benchmarks: loaded-node work fraction vs comp/comm ratio (measured by simulation; naive = relative power)",
		Header:  []string{"CPs", "ratio", "measured", "analytic", "naive"},
	}
	for _, k := range r.CPs {
		for i, ratio := range r.Ratios {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(ratio),
				f3(r.Measured[k][i]), f3(r.Analytic[k][i]), f3(r.Naive[k]),
			})
		}
	}
	t.Rows = append(t.Rows,
		[]string{"", "", "", "", ""},
		[]string{"jacobi", "succ-balance", f2(r.SBTime) + "s", f2(r.SBCycle*1000) + "ms/cyc", ""},
		[]string{"jacobi", "rel-power", f2(r.RPTime) + "s", f2(r.RPCycle*1000) + "ms/cyc", ""},
		[]string{"jacobi", "SB benefit", pct((r.RPTime - r.SBTime) / r.RPTime), pct((r.RPCycle - r.SBCycle) / r.RPCycle), ""},
	)
	return t
}
