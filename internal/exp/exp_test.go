package exp

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's *shapes* (who wins, direction of
// crossovers), not absolute numbers. They run the scaled default
// configurations end to end, so they double as whole-stack integration
// tests; the slowest are skipped under -short.

func TestTableRender(t *testing.T) {
	tb := &Table{
		Caption: "cap",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"cap", "a", "bb", "xxx", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 4 matrix is slow")
	}
	o := DefaultFig4Options()
	res, err := RunFig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NoAdapt <= 1.0 {
			t.Errorf("%s/%d: no-adapt %.2f should exceed dedicated", row.App, row.Nodes, row.NoAdapt)
		}
		if row.DynMPI >= row.NoAdapt {
			t.Errorf("%s/%d: dyn-mpi %.2f not better than no-adapt %.2f", row.App, row.Nodes, row.DynMPI, row.NoAdapt)
		}
		if row.Redists == 0 {
			t.Errorf("%s/%d: no redistribution", row.App, row.Nodes)
		}
	}
	if imp := res.Improvement(); imp < 0.25 {
		t.Errorf("mean improvement %.0f%% too small (paper: 72%%)", imp*100)
	}
	if sd := res.Slowdown(); sd > 0.6 {
		t.Errorf("mean slowdown vs dedicated %.0f%% too large (paper: 29%%)", sd*100)
	}
}

func TestFig4SingleCell(t *testing.T) {
	o := DefaultFig4Options()
	o.Nodes = []int{4}
	o.Apps = []string{"jacobi"}
	res, err := RunFig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].App != "jacobi" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	tb := res.Table()
	if len(tb.Rows) != 2 { // data row + mean row
		t.Fatalf("table rows: %d", len(tb.Rows))
	}
}

func TestCGTableShape(t *testing.T) {
	res, err := RunCGTable(DefaultCGTableOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Dedicated < res.DynMPI && res.DynMPI < res.NoAdapt) {
		t.Fatalf("ordering broken: dedicated %.2f, dyn %.2f, no-adapt %.2f", res.Dedicated, res.DynMPI, res.NoAdapt)
	}
	if len(res.Counts) != 4 {
		t.Fatalf("counts: %v", res.Counts)
	}
	// The loaded node (rank 1) receives the smallest share, near the
	// paper's 1/7 relative-power fraction or below.
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	loadedShare := float64(res.Counts[1]) / float64(total)
	if loadedShare >= 0.25 {
		t.Errorf("loaded node share %.3f not reduced", loadedShare)
	}
	if loadedShare > res.IdealFraction*1.35 {
		t.Errorf("loaded share %.3f far above relative-power ideal %.3f", loadedShare, res.IdealFraction)
	}
	if res.RedistSeconds <= 0 || res.RedistSeconds > res.DynMPI*0.2 {
		t.Errorf("redistribution overhead %.3fs implausible (total %.2fs)", res.RedistSeconds, res.DynMPI)
	}
	res.Table().Render(&strings.Builder{})
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 5 long executions are slow")
	}
	res, err := RunFig5(DefaultFig5Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range [][]Fig5Run{res.Short, res.Long} {
		no, once := Find(group, "no-redist"), Find(group, "redist-once")
		if once.Total >= no.Total {
			t.Errorf("period %d: redist-once %.2fs not faster than no-redist %.2fs", once.Period, once.Total, no.Total)
		}
		if once.Redists != 1 {
			t.Errorf("period %d: redist-once performed %d redists", once.Period, once.Redists)
		}
	}
	// Short: the second redistribution does not pay (within 2%).
	sOnce, sTwice := Find(res.Short, "redist-once"), Find(res.Short, "redist-twice")
	if sTwice.Total < sOnce.Total*0.98 {
		t.Errorf("short: second redistribution paid off (%.2fs vs %.2fs); paper says it should not", sTwice.Total, sOnce.Total)
	}
	// Long: it does.
	lOnce, lTwice := Find(res.Long, "redist-once"), Find(res.Long, "redist-twice")
	if lTwice.Total >= lOnce.Total {
		t.Errorf("long: second redistribution did not pay (%.2fs vs %.2fs)", lTwice.Total, lOnce.Total)
	}
	if lTwice.Redists != 2 {
		t.Errorf("redist-twice performed %d redists", lTwice.Redists)
	}
	res.Table().Render(&strings.Builder{})
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 6 grid is slow")
	}
	res, err := RunFig6(DefaultFig6Options())
	if err != nil {
		t.Fatal(err)
	}
	// Dropping must lose (or be ~neutral) on 8 nodes at low load and win
	// clearly on 32 nodes; the benefit must grow with the node count.
	b8, _ := res.Benefit(8, 1)
	b32, _ := res.Benefit(32, 1)
	if b8 > 0.05 {
		t.Errorf("8 nodes / 1 CP: drop benefit %.0f%% — paper says dropping loses on 8 nodes", b8*100)
	}
	if b32 < 0.03 {
		t.Errorf("32 nodes / 1 CP: drop benefit %.0f%% too small", b32*100)
	}
	if b32 <= b8 {
		t.Errorf("drop benefit did not grow with node count: %.2f vs %.2f", b8, b32)
	}
	// More competing processes make dropping more attractive at scale.
	b32k3, _ := res.Benefit(32, 3)
	if b32k3 <= b32 {
		t.Errorf("32 nodes: benefit with 3 CPs (%.2f) not above 1 CP (%.2f)", b32k3, b32)
	}
	res.Table().Render(&strings.Builder{})
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 7 runs are slow")
	}
	res, err := RunFig7(DefaultFig7Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// The benefit magnitude varies with where the GP=1 phantom spikes
		// land (one draw per run); it must always be clearly positive.
		if row.Benefit < 0.02 {
			t.Errorf("Part=%d: GP=5 benefit %.0f%% too small (paper: 13-16%%)", row.Part, row.Benefit*100)
		}
		if row.Benefit > 0.5 {
			t.Errorf("Part=%d: GP=5 benefit %.0f%% implausibly large", row.Part, row.Benefit*100)
		}
	}
	res.Table().Render(&strings.Builder{})
}

func TestVirtShape(t *testing.T) {
	o := DefaultVirtOptions()
	o.Factors = []int{1, 4, 16}
	res, err := RunVirt(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// Message counts grow with the virtualization factor and the
	// coarse-grain configuration is fastest.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Messages <= res.Rows[i-1].Messages {
			t.Errorf("V=%d messages %d not above V=%d's %d",
				res.Rows[i].Factor, res.Rows[i].Messages, res.Rows[i-1].Factor, res.Rows[i-1].Messages)
		}
	}
	if res.Rows[0].Elapsed >= res.Rows[len(res.Rows)-1].Elapsed {
		t.Errorf("coarse grain (%.3fs) not faster than V=16 (%.3fs)",
			res.Rows[0].Elapsed, res.Rows[len(res.Rows)-1].Elapsed)
	}
	res.Table().Render(&strings.Builder{})
}

func TestAllocShape(t *testing.T) {
	res, err := RunAlloc(DefaultAllocOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.ContiguousSec <= row.ProjectionSec {
			t.Errorf("grow +%d: contiguous %.6fs not more expensive than projection %.6fs",
				row.ShiftRows, row.ContiguousSec, row.ProjectionSec)
		}
	}
	// Small shifts show the biggest ratio (projection only touches the new rows).
	r0 := res.Rows[0].ContiguousSec / res.Rows[0].ProjectionSec
	if r0 < 10 {
		t.Errorf("single-row grow ratio %.1f too small", r0)
	}
	if res.ContiguousRedist <= res.ProjectionRedist {
		t.Errorf("end-to-end redistribution: contiguous %.3fs not slower than projection %.3fs",
			res.ContiguousRedist, res.ProjectionRedist)
	}
	res.Table().Render(&strings.Builder{})
}

func TestMicrobenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark sweep is slow")
	}
	o := MicrobenchOptions{CPs: []int{1, 2}, Ratios: []float64{2, 16, 256}}
	res, err := RunMicrobench(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range o.CPs {
		ms := res.Measured[k]
		// Fractions grow with the comp/comm ratio and approach naive from below.
		for i := 1; i < len(ms); i++ {
			if ms[i] < ms[i-1]-0.02 {
				t.Errorf("k=%d: measured fractions not increasing: %v", k, ms)
			}
		}
		if ms[len(ms)-1] > res.Naive[k]*1.25 {
			t.Errorf("k=%d: compute-bound fraction %.3f far above naive %.3f", k, ms[len(ms)-1], res.Naive[k])
		}
		if ms[0] >= res.Naive[k] {
			t.Errorf("k=%d: comm-bound fraction %.3f not below naive %.3f", k, ms[0], res.Naive[k])
		}
	}
	// End to end, successive balancing's steady-state distribution must be
	// at least as good as relative power's, and the total must not lose.
	if res.SBCycle > res.RPCycle*1.02 {
		t.Errorf("successive balancing steady state %.4fs/cycle worse than relative power %.4fs/cycle", res.SBCycle, res.RPCycle)
	}
	if res.SBTime > res.RPTime*1.02 {
		t.Errorf("successive balancing %.2fs slower than relative power %.2fs", res.SBTime, res.RPTime)
	}
	res.Table().Render(&strings.Builder{})
}
