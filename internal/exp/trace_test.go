package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// sequenceLines renders the adaptation skeleton of a trace — every
// decision, redist and membership record in deterministic order — as one
// line each, with only stable fields (no floats).
func sequenceLines(recs []telemetry.Record) []string {
	var out []string
	for _, rec := range recs {
		switch v := rec.(type) {
		case telemetry.DecisionRecord:
			out = append(out, fmt.Sprintf("decision   cycle=%d node=%d method=%s chosen=%s loads=%v counts=%v",
				v.Cycle, v.Node, v.Method, v.Chosen, v.Loads, v.Counts))
		case telemetry.RedistRecord:
			out = append(out, fmt.Sprintf("redist     cycle=%d node=%d rows=%d counts=%v",
				v.Cycle, v.Node, v.RowsSent, v.Counts))
		case telemetry.MembershipRecord:
			out = append(out, fmt.Sprintf("membership cycle=%d node=%d change=%s active=%v removed=%v remap=%v",
				v.Cycle, v.Node, v.Change, v.Active, v.Removed, v.Remap))
		}
	}
	return out
}

func TestTraceContainsAllRecordKinds(t *testing.T) {
	r, err := RunTrace(DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, rec := range r.Records {
		counts[rec.Kind()]++
	}
	for _, kind := range []string{
		telemetry.KindIteration, telemetry.KindDecision,
		telemetry.KindRedist, telemetry.KindMembership,
	} {
		if counts[kind] == 0 {
			t.Errorf("trace has no %s records (have %v)", kind, counts)
		}
	}
	if r.Res.Redists == 0 {
		t.Fatal("trace scenario did not adapt")
	}
}

// TestTraceGoldenSequence pins the adapt -> redist -> membership event
// sequence of the canonical loaded-4-node scenario. Regenerate with
// `go test ./internal/exp -run Golden -update` after an intentional
// behaviour change.
func TestTraceGoldenSequence(t *testing.T) {
	r, err := RunTrace(DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(sequenceLines(r.Records), "\n") + "\n"
	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace sequence drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceOrderPerRank asserts the causal order the paper's machinery
// implies on every rank: the decision record precedes the redistribution
// it triggers, which precedes the membership change it causes.
func TestTraceOrderPerRank(t *testing.T) {
	o := DefaultTraceOptions()
	r, err := RunTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < o.Nodes; node++ {
		pos := map[string]int{}
		for i, rec := range r.Records {
			m := rec.Meta()
			if m.Node != node {
				continue
			}
			if _, seen := pos[m.K]; !seen {
				pos[m.K] = i
			}
		}
		dec, okD := pos[telemetry.KindDecision]
		red, okR := pos[telemetry.KindRedist]
		mem, okM := pos[telemetry.KindMembership]
		if !okD || !okR || !okM {
			t.Fatalf("node %d missing record kinds: %v", node, pos)
		}
		if !(dec < red && red < mem) {
			t.Errorf("node %d order wrong: decision@%d redist@%d membership@%d", node, dec, red, mem)
		}
	}
}

// TestDecisionMatchesInstalledDistribution is the tentpole invariant: the
// counts a DecisionRecord reports as chosen are exactly the counts of the
// distribution the runtime then installs (RedistRecord and the adaptation
// Event trace agree).
func TestDecisionMatchesInstalledDistribution(t *testing.T) {
	o := DefaultTraceOptions()
	o.Drop = core.DropNever // exercise the successive-balancing path
	r, err := RunTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for node := 0; node < o.Nodes; node++ {
		var lastDecision []int
		for _, rec := range r.Records {
			m := rec.Meta()
			if m.Node != node {
				continue
			}
			switch v := rec.(type) {
			case telemetry.DecisionRecord:
				if v.Counts != nil {
					lastDecision = v.Counts
					// The chosen candidate's counts must equal the decision's.
					for _, c := range v.Candidates {
						if c.Label == v.Chosen && !reflect.DeepEqual(c.Counts, v.Counts) {
							t.Errorf("node %d: chosen candidate %v != decision counts %v", node, c.Counts, v.Counts)
						}
					}
				}
			case telemetry.RedistRecord:
				if lastDecision == nil {
					t.Errorf("node %d: redist at cycle %d with no preceding decision", node, m.Cycle)
					continue
				}
				if !reflect.DeepEqual(v.Counts, lastDecision) {
					t.Errorf("node %d: installed counts %v != decided counts %v", node, v.Counts, lastDecision)
				}
				checked++
			}
		}
		// The runtime's own event trace must agree with the telemetry.
		for _, ev := range r.Res.Stats[node].Events {
			if ev.Kind == core.EvRedistEnd && !reflect.DeepEqual(ev.Counts, lastDecision) {
				t.Errorf("node %d: event counts %v != decided counts %v", node, ev.Counts, lastDecision)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no decision/redist pairs verified")
	}
}

// TestTraceJSONLGolden pins the full JSONL encoding of the canonical
// loaded-4 trace byte-for-byte — every field of every record, not just the
// adaptation skeleton. This is the performance work's equivalence oracle:
// hot-path rewrites (slab-batched redistribution, indexed matching, pooled
// collectives) must not move a single virtual-time stamp or byte count.
// Regenerate with `go test ./internal/exp -run JSONLGolden -update` after an
// intentional behaviour change.
func TestTraceJSONLGolden(t *testing.T) {
	r, err := RunTrace(DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, r.Records); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.jsonl.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got := buf.Bytes()
		line, col := 1, 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				break
			}
			if got[i] == '\n' {
				line, col = line+1, 1
			} else {
				col++
			}
		}
		t.Errorf("trace JSONL drifted from golden (%d vs %d bytes, first difference near line %d col %d)",
			len(got), len(want), line, col)
	}
}

// TestTraceDeterministic asserts byte-identical JSONL across runs.
func TestTraceDeterministic(t *testing.T) {
	encode := func() []byte {
		r, err := RunTrace(DefaultTraceOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteJSONL(&buf, r.Records); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical trace runs produced different JSONL")
	}
	// And the JSONL round-trips through the decoder.
	recs, err := telemetry.DecodeJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("decoded no records")
	}
}
