package exp

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// crashTraceOptions is the acceptance scenario: the canonical loaded-4
// trace with rank 2 crashing at the start of cycle 12.
func crashTraceOptions() TraceOptions {
	o := DefaultTraceOptions()
	o.Faults = []fault.Fault{fault.CrashAtCycle(2, 12)}
	return o
}

func encodeTrace(t *testing.T, o TraceOptions) (*TraceResult, []byte) {
	t.Helper()
	r, err := RunTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, r.Records); err != nil {
		t.Fatal(err)
	}
	return r, buf.Bytes()
}

// TestTraceWithCrashDeterministic is the tentpole acceptance test: the
// crash-one-rank-mid-cycle scenario completes, produces exactly one failure
// record plus a failure-drop membership transition on every survivor, and
// repeated runs are byte-identical.
func TestTraceWithCrashDeterministic(t *testing.T) {
	r, a := encodeTrace(t, crashTraceOptions())
	_, b := encodeTrace(t, crashTraceOptions())
	if !bytes.Equal(a, b) {
		t.Fatal("two identical crash runs produced different JSONL")
	}

	failures, failureDrops := 0, 0
	for _, rec := range r.Records {
		switch v := rec.(type) {
		case telemetry.FailureRecord:
			failures++
			if v.Fault != "crash" || v.Node != 2 || v.Cycle != 12 {
				t.Errorf("unexpected failure record %+v", v)
			}
		case telemetry.MembershipRecord:
			if v.Change == "failure-drop" {
				failureDrops++
				for _, act := range v.Active {
					if act == 2 {
						t.Errorf("failure-drop still lists the dead rank: %+v", v)
					}
				}
			}
		}
	}
	if failures != 1 {
		t.Fatalf("trace has %d failure records, want exactly 1", failures)
	}
	if failureDrops != 3 {
		t.Fatalf("saw %d failure-drop membership records, want one per survivor (3)", failureDrops)
	}
	if !r.Res.Stats[2].Crashed {
		t.Fatal("rank 2 not marked crashed in the result")
	}
	if r.Res.Stats[0].Crashed || r.Res.Stats[1].Crashed || r.Res.Stats[3].Crashed {
		t.Fatal("a survivor was marked crashed")
	}
	if s := telemetry.Summarize(r.Records); len(s.Failures) != 1 {
		t.Fatalf("summary counts %d failures, want 1", len(s.Failures))
	}
}

// TestCrashWithoutReplicationReportsLostRows: without buddy replication the
// dead rank's rows cannot be reconstructed, and the recovery redistribution
// must say so explicitly rather than silently zero-fill.
func TestCrashWithoutReplicationReportsLostRows(t *testing.T) {
	r, _ := encodeTrace(t, crashTraceOptions())
	lost := 0
	for _, rec := range r.Records {
		if v, ok := rec.(telemetry.RedistRecord); ok {
			lost += v.LostRows
		}
	}
	if lost == 0 {
		t.Fatal("crash without replication declared no rows lost")
	}
}

// TestCrashWithReplicationMatchesFaultFreeChecksum: with per-cycle buddy
// replication the replica captured at the end of the previous cycle is
// exactly the dead rank's state at the crash boundary, so the recovered run
// reproduces the fault-free checksum bit-for-bit.
func TestCrashWithReplicationMatchesFaultFreeChecksum(t *testing.T) {
	clean, err := RunTrace(DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := crashTraceOptions()
	o.Replicate = true
	o.ReplicaEvery = 1
	faulty, err := RunTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range faulty.Records {
		if v, ok := rec.(telemetry.RedistRecord); ok && v.LostRows != 0 {
			t.Fatalf("replicated run still lost %d rows (cycle %d node %d)", v.LostRows, v.Cycle, v.Node)
		}
	}
	if faulty.Res.Checksum != clean.Res.Checksum {
		t.Fatalf("recovered checksum %v != fault-free checksum %v", faulty.Res.Checksum, clean.Res.Checksum)
	}
}

// TestCrashDuringRedistributionRecovers probes the hardest window: a timed
// crash placed halfway through the victim's own redistribution (located by
// a fault-free probe run), so some of its row transfers complete and some
// never arrive. The run must still complete deterministically.
func TestCrashDuringRedistributionRecovers(t *testing.T) {
	probe, err := RunTrace(DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	var start, end vclock.Time
	for _, ev := range probe.Res.Stats[victim].Events {
		switch ev.Kind {
		case core.EvRedistStart:
			if start == 0 {
				start = ev.Time
			}
		case core.EvRedistEnd:
			if end == 0 {
				end = ev.Time
			}
		}
	}
	if start == 0 || end <= start {
		t.Fatalf("probe found no redistribution window on rank %d (start %v end %v)", victim, start, end)
	}
	o := DefaultTraceOptions()
	o.Faults = []fault.Fault{fault.CrashAt(victim, start.Add(vclock.Duration(end-start)/2))}
	r, a := encodeTrace(t, o)
	_, b := encodeTrace(t, o)
	if !bytes.Equal(a, b) {
		t.Fatal("mid-redistribution crash runs diverged")
	}
	if !r.Res.Stats[victim].Crashed {
		t.Fatal("victim not marked crashed")
	}
	drops := 0
	for _, rec := range r.Records {
		if v, ok := rec.(telemetry.MembershipRecord); ok && v.Change == "failure-drop" {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("survivors never performed the failure drop")
	}
}

// TestNoFaultTraceUnchanged guards the zero-overhead claim at the trace
// level: constructing fault options but injecting nothing must reproduce
// the canonical golden trace byte-for-byte (the JSONL golden test pins the
// same bytes; this asserts the fault-free path through the new option
// plumbing).
func TestNoFaultTraceUnchanged(t *testing.T) {
	o := DefaultTraceOptions()
	o.Faults = nil
	_, a := encodeTrace(t, o)
	_, b := encodeTrace(t, DefaultTraceOptions())
	if !bytes.Equal(a, b) {
		t.Fatal("explicit empty fault set changed the trace")
	}
	for _, line := range bytes.Split(a, []byte("\n")) {
		if bytes.Contains(line, []byte(`"kind":"failure"`)) {
			t.Fatal("fault-free trace contains a failure record")
		}
	}
}
