package exp

import (
	"fmt"

	"repro/internal/apps/sor"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Fig6Options parameterises the node-removal experiment (§5.3): Red-Black
// SOR on 8/16/32 nodes with 1, 2 or 3 competing processes on a single
// node, comparing the average post-redistribution phase-cycle time of a
// distribution that keeps the loaded node against physically dropping it.
type Fig6Options struct {
	Nodes []int // paper: 8, 16, 32
	CPs   []int // paper: 1, 2, 3
	Paper bool
}

// DefaultFig6Options returns the paper's grid at laptop scale.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{Nodes: []int{8, 16, 32}, CPs: []int{1, 2, 3}}
}

// Fig6Row is one (nodes, CPs) pair of bars.
type Fig6Row struct {
	Nodes, CPs  int
	KeepAvg     float64 // avg cycle seconds, loaded node kept (successive balancing)
	DropAvg     float64 // avg cycle seconds, loaded node physically removed
	DropBenefit float64 // (Keep-Drop)/Keep; negative when dropping hurts
}

// Fig6Result holds the whole grid.
type Fig6Result struct {
	Rows []Fig6Row
}

func runFig6Case(nodes, cps int, drop core.DropPolicy, paper bool) (float64, error) {
	cfg := sor.DefaultConfig()
	if paper {
		cfg.Rows, cfg.Cols, cfg.CostPerElem = 1024, 1024, 1500 // Ultra-Sparc 5 (360MHz) scale
		cfg.Iters = 200
	} else {
		// Sized so per-node cycles are much longer than the scheduler
		// quantum on 8 nodes (competitor spikes average out within a cycle
		// and keeping the loaded node pays off) but comparable to it on 32
		// (lumpy inflation and communication costs make dropping win) —
		// the crossover §5.3 demonstrates.
		cfg.Rows, cfg.Cols, cfg.CostPerElem = 512, 1024, 1500
		cfg.Iters = 120
	}
	cfg.Core = core.DefaultConfig()
	cfg.Core.Drop = drop
	spec := cluster.Uniform(nodes)
	for i := 0; i < cps; i++ {
		spec = spec.With(cluster.TimeEvent(nodes/2, 0, +1))
	}
	res, err := sor.Run(cluster.New(spec), cfg)
	if err != nil {
		return 0, err
	}
	avg, ok := avgCycleAfterRedist(res, cfg.Iters)
	if !ok {
		return 0, fmt.Errorf("fig6 %d nodes %d CPs: no redistribution occurred", nodes, cps)
	}
	return avg, nil
}

// RunFig6 executes the keep-vs-drop grid.
func RunFig6(o Fig6Options) (*Fig6Result, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{8, 16, 32}
	}
	if len(o.CPs) == 0 {
		o.CPs = []int{1, 2, 3}
	}
	out := &Fig6Result{}
	for _, n := range o.Nodes {
		for _, k := range o.CPs {
			keep, err := runFig6Case(n, k, core.DropNever, o.Paper)
			if err != nil {
				return nil, err
			}
			drop, err := runFig6Case(n, k, core.DropAlways, o.Paper)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Fig6Row{
				Nodes: n, CPs: k,
				KeepAvg: keep, DropAvg: drop,
				DropBenefit: (keep - drop) / keep,
			})
		}
	}
	return out, nil
}

// Benefit returns the drop benefit for a (nodes, cps) pair.
func (r *Fig6Result) Benefit(nodes, cps int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Nodes == nodes && row.CPs == cps {
			return row.DropBenefit, true
		}
	}
	return 0, false
}

// Table renders the grid in the paper's layout.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Caption: "Figure 6: SOR average phase-cycle time after redistribution — keeping the loaded node vs physically dropping it",
		Header:  []string{"nodes", "CPs", "keep(ms)", "drop(ms)", "drop benefit"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Nodes), fmt.Sprint(row.CPs),
			f2(row.KeepAvg * 1000), f2(row.DropAvg * 1000), pct(row.DropBenefit),
		})
	}
	return t
}
