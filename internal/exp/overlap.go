package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/particles"
	"repro/internal/apps/sor"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// This file measures the nonblocking engine's two performance claims on
// dedicated clusters (no competing processes, Adapt off, so every second of
// difference is the overlap machinery itself):
//
//  1. Halo overlap: jacobi and sor with Config.Overlap hide wire time
//     behind interior compute; the virtual iteration time shrinks by the
//     hidden fraction. Particles' migration is nonblocking by construction
//     with charges identical to the former blocking exchange, so its delta
//     is structurally zero and only its hidden-wire credit is reported.
//  2. Redistribution overlap: on a wire-bound cluster, committing incoming
//     slabs in arrival order (RedistOverlap) instead of schedule order
//     removes head-of-line blocking and cuts the virtual receive stall of
//     redistribution.

// OverlapOptions parameterises the overlap study.
type OverlapOptions struct {
	// Nodes lists the world sizes (default 4/64/256: fully hidden, partially
	// hidden, and nothing-to-hide regimes of the fixed-size grid).
	Nodes []int
	// Seed offsets the cluster seeds.
	Seed uint64
}

// DefaultOverlapOptions returns the default ladder.
func DefaultOverlapOptions() OverlapOptions {
	return OverlapOptions{Nodes: []int{4, 64, 256}}
}

// OverlapRow is one (app, nodes) measurement.
type OverlapRow struct {
	App        string
	Nodes      int
	SerialS    float64 // blocking-exchange virtual makespan
	OverlapS   float64 // overlapped virtual makespan
	HiddenS    float64 // wire seconds hidden behind compute, summed over ranks
	HiddenFrac float64 // HiddenS / (HiddenS + residual wait)
}

// Delta reports the virtual-time saving of the overlapped run.
func (r OverlapRow) Delta() float64 {
	if r.SerialS == 0 {
		return 0
	}
	return (r.SerialS - r.OverlapS) / r.SerialS
}

// OverlapResult holds the halo study plus the redistribution stall
// comparison.
type OverlapResult struct {
	Rows []OverlapRow
	// RedistStallSchedS and RedistStallArrivalS total the virtual receive
	// stall (Event.Stall at EvRedistEnd, summed over ranks and
	// redistributions) of the redistribution-heavy scenario under
	// schedule-order (RedistPipelined) and arrival-order (RedistOverlap)
	// commits.
	RedistStallSchedS   float64
	RedistStallArrivalS float64
}

// StallReduction reports the fractional stall saving of arrival-order
// commits.
func (r *OverlapResult) StallReduction() float64 {
	if r.RedistStallSchedS == 0 {
		return 0
	}
	return (r.RedistStallSchedS - r.RedistStallArrivalS) / r.RedistStallSchedS
}

// overlapTelemetry sums the per-iteration hidden-wire credit and residual
// wait across a run's trace.
func overlapTelemetry(ring *telemetry.Ring) (hiddenS, waitS float64) {
	for _, rec := range ring.Records() {
		if it, ok := rec.(telemetry.IterationRecord); ok {
			hiddenS += float64(it.HiddenWireNs) / 1e9
			waitS += it.WaitS
		}
	}
	return
}

// RunOverlap executes the overlap study.
func RunOverlap(o OverlapOptions) (*OverlapResult, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{4, 64, 256}
	}
	res := &OverlapResult{}

	// The grid is fixed while the world grows, so the interior available to
	// hide the (constant-size) halo wire shrinks from milliseconds to zero.
	const rows, cols, iters = 512, 1024, 30
	type variant struct {
		name string
		run  func(n int, overlap bool, sink telemetry.Sink) (apps.Result, error)
	}
	variants := []variant{
		{"jacobi", func(n int, overlap bool, sink telemetry.Sink) (apps.Result, error) {
			cfg := jacobi.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = rows, cols, iters, 40
			cfg.Overlap = overlap
			cfg.Core = core.Config{Adapt: false, Telemetry: sink}
			spec := cluster.Uniform(n)
			spec.Seed += o.Seed
			return jacobi.Run(cluster.New(spec), cfg)
		}},
		{"sor", func(n int, overlap bool, sink telemetry.Sink) (apps.Result, error) {
			cfg := sor.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = rows, cols, iters, 40
			cfg.Overlap = overlap
			cfg.Core = core.Config{Adapt: false, Telemetry: sink}
			spec := cluster.Uniform(n)
			spec.Seed += o.Seed
			return sor.Run(cluster.New(spec), cfg)
		}},
		{"particles", func(n int, overlap bool, sink telemetry.Sink) (apps.Result, error) {
			// Migration is nonblocking by construction; "overlap" and
			// "serial" are the same program and the delta is structurally 0.
			cfg := particles.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Steps = 256, 256, iters
			cfg.Core = core.Config{Adapt: false, Telemetry: sink}
			spec := cluster.Uniform(n)
			spec.Seed += o.Seed
			return particles.Run(cluster.New(spec), cfg)
		}},
	}
	for _, v := range variants {
		for _, n := range o.Nodes {
			serial, err := v.run(n, false, nil)
			if err != nil {
				return nil, fmt.Errorf("overlap %s/%d serial: %w", v.name, n, err)
			}
			ring := telemetry.NewRing(1 << 18)
			ovl, err := v.run(n, true, ring)
			if err != nil {
				return nil, fmt.Errorf("overlap %s/%d overlapped: %w", v.name, n, err)
			}
			if serial.Checksum != ovl.Checksum || serial.CheckInt != ovl.CheckInt {
				return nil, fmt.Errorf("overlap %s/%d: checksum changed", v.name, n)
			}
			hidden, wait := overlapTelemetry(ring)
			frac := 0.0
			if hidden+wait > 0 {
				frac = hidden / (hidden + wait)
			}
			res.Rows = append(res.Rows, OverlapRow{
				App: v.name, Nodes: n,
				SerialS: serial.Elapsed, OverlapS: ovl.Elapsed,
				HiddenS: hidden, HiddenFrac: frac,
			})
		}
	}

	sched, arrival, err := runOverlapRedist(o.Seed)
	if err != nil {
		return nil, err
	}
	res.RedistStallSchedS, res.RedistStallArrivalS = sched, arrival
	return res, nil
}

// runOverlapRedist measures total redistribution receive stall under
// schedule-order vs arrival-order commits.
//
// Arrival-order commits only pay off when a receiver drains slabs from
// several senders whose arrivals invert the schedule order. Block
// redistributions move contiguous row ranges, so that takes a large
// coordinated shift: three adjacent nodes get hit by different competing
// loads at once (3, 2, and 1 CPs), their shares collapse together, and
// every surviving receiver's gained range spans several old owners. The
// senders' slab injections are dilated by their respective CP counts, so
// arrivals are skewed against the schedule, and the per-byte message CPU
// is raised so committing an already-arrived slab does real work that
// schedule order would leave idle while it stalls head-of-line on the
// slowest sender.
func runOverlapRedist(seed uint64) (schedS, arrivalS float64, err error) {
	run := func(mode core.RedistMode) (apps.Result, error) {
		cfg := jacobi.DefaultConfig()
		cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 256, 1024, 40, 600
		cfg.Core = core.DefaultConfig()
		cfg.Core.Drop = core.DropNever
		cfg.Core.RedistMode = mode
		spec := cluster.Uniform(8)
		spec.Seed += seed
		spec.Net.CPUPerByte = 800
		spec.Net.BytesPerSec = 100e6
		for node, k := range []int{3, 2, 1} {
			for i := 0; i < k; i++ {
				spec = spec.With(cluster.CycleEvent(node, 10, +1))
			}
		}
		return jacobi.Run(cluster.New(spec), cfg)
	}
	stallOf := func(res apps.Result) float64 {
		var total vclock.Duration
		for _, st := range res.Stats {
			for _, ev := range st.Events {
				if ev.Kind == core.EvRedistEnd {
					total += ev.Stall
				}
			}
		}
		return total.Seconds()
	}
	sched, err := run(core.RedistPipelined)
	if err != nil {
		return 0, 0, fmt.Errorf("overlap redist schedule-order: %w", err)
	}
	arrival, err := run(core.RedistOverlap)
	if err != nil {
		return 0, 0, fmt.Errorf("overlap redist arrival-order: %w", err)
	}
	if sched.Redists == 0 {
		return 0, 0, fmt.Errorf("overlap redist scenario produced no redistributions")
	}
	if sched.Checksum != arrival.Checksum {
		return 0, 0, fmt.Errorf("overlap redist: arrival-order commit changed the checksum")
	}
	return stallOf(sched), stallOf(arrival), nil
}

// Table renders the study.
func (r *OverlapResult) Table() *Table {
	t := &Table{
		Caption: "Communication/computation overlap: virtual makespan with blocking vs overlapped halos (dedicated cluster), and the wire time hidden behind compute",
		Header:  []string{"app", "nodes", "serial(s)", "overlap(s)", "delta", "hidden(s)", "hidden-frac"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App, fmt.Sprint(row.Nodes), f2(row.SerialS), f2(row.OverlapS),
			pct(row.Delta()), f3(row.HiddenS), pct(row.HiddenFrac),
		})
	}
	t.Rows = append(t.Rows, []string{
		"redist", "8", f3(r.RedistStallSchedS), f3(r.RedistStallArrivalS),
		pct(r.StallReduction()), "", "",
	})
	return t
}
