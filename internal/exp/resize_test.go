package exp

import (
	"strings"
	"testing"
)

// TestResizeBeatsRestart drives the resize-vs-restart study at a reduced
// size and pins the acceptance criterion: the elastic resize must be
// strictly cheaper than drop-all+restart on both scenarios, with data
// integrity verified against an undisturbed dedicated run inside RunResize.
func TestResizeBeatsRestart(t *testing.T) {
	o := DefaultResizeOptions()
	o.Rows, o.Cols, o.Iters = 256, 256, 30
	res, err := RunResize(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d scenarios, want 2", len(res.Rows))
	}
	if got := res.CheaperCount(); got != 2 {
		var b strings.Builder
		res.Table().Render(&b)
		t.Fatalf("resize cheaper than restart on %d of 2 scenarios:\n%s", got, b.String())
	}
	for _, row := range res.Rows {
		if row.MovedMB <= 0 {
			t.Fatalf("scenario %s moved no bytes — the membership change never redistributed", row.Scenario)
		}
		if row.MovedMB >= row.TotalMB {
			t.Fatalf("scenario %s moved %.2f MB, not less than the %.2f MB a restart reloads — the diff schedule is not shipping only the delta",
				row.Scenario, row.MovedMB, row.TotalMB)
		}
	}
}
