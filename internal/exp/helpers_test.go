package exp

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/vclock"
)

func sec(s float64) vclock.Time { return vclock.Time(vclock.FromSeconds(s)) }

func statsWith(events ...core.Event) apps.RankStats {
	return apps.RankStats{Events: events}
}

func TestRedistWindow(t *testing.T) {
	st := statsWith(
		core.Event{Kind: core.EvLoadChange, Cycle: 3, Time: sec(1.0)},
		core.Event{Kind: core.EvRedistStart, Cycle: 8, Time: sec(2.0)},
		core.Event{Kind: core.EvRedistEnd, Cycle: 8, Time: sec(2.5)},
		core.Event{Kind: core.EvRedistStart, Cycle: 20, Time: sec(5.0)},
		core.Event{Kind: core.EvRedistEnd, Cycle: 20, Time: sec(5.1)},
	)
	start, end, cycle, ok := redistWindow(st)
	if !ok || start != 2.0 || end != 2.5 || cycle != 8 {
		t.Fatalf("redistWindow = %v %v %v %v", start, end, cycle, ok)
	}
	if _, _, _, ok := redistWindow(statsWith()); ok {
		t.Fatal("empty trace reported a window")
	}
}

func TestLastRedistEnd(t *testing.T) {
	st := statsWith(
		core.Event{Kind: core.EvRedistEnd, Cycle: 8, Time: sec(2.5)},
		core.Event{Kind: core.EvRedistEnd, Cycle: 20, Time: sec(5.1)},
	)
	s, c, ok := lastRedistEnd(st)
	if !ok || s != 5.1 || c != 20 {
		t.Fatalf("lastRedistEnd = %v %v %v", s, c, ok)
	}
}

func TestAvgCycleAfterRedist(t *testing.T) {
	res := apps.Result{
		Elapsed: 12.0,
		Stats: []apps.RankStats{
			statsWith(core.Event{Kind: core.EvRedistEnd, Cycle: 20, Time: sec(2.0)}),
			statsWith(), // a rank that never redistributed
		},
	}
	avg, ok := avgCycleAfterRedist(res, 120)
	if !ok {
		t.Fatal("no average")
	}
	want := (12.0 - 2.0) / 100
	if math.Abs(avg-want) > 1e-12 {
		t.Fatalf("avg = %v, want %v", avg, want)
	}
	// No redistribution anywhere -> not ok.
	if _, ok := avgCycleAfterRedist(apps.Result{Stats: []apps.RankStats{statsWith()}}, 10); ok {
		t.Fatal("expected no average without redistribution")
	}
	// Redistribution on the final cycle -> no post-redist cycles.
	res2 := apps.Result{
		Elapsed: 5,
		Stats:   []apps.RankStats{statsWith(core.Event{Kind: core.EvRedistEnd, Cycle: 10, Time: sec(5)})},
	}
	if _, ok := avgCycleAfterRedist(res2, 10); ok {
		t.Fatal("expected no average when redistribution ends the run")
	}
}

func TestTotalRedistSeconds(t *testing.T) {
	res := apps.Result{Stats: []apps.RankStats{
		statsWith(
			core.Event{Kind: core.EvRedistStart, Time: sec(1.0)},
			core.Event{Kind: core.EvRedistEnd, Time: sec(1.2)},
			core.Event{Kind: core.EvRedistStart, Time: sec(4.0)},
			core.Event{Kind: core.EvRedistEnd, Time: sec(4.3)},
		),
		statsWith(
			core.Event{Kind: core.EvRedistStart, Time: sec(1.0)},
			core.Event{Kind: core.EvRedistEnd, Time: sec(1.1)},
		),
	}}
	got := totalRedistSeconds(res)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("totalRedistSeconds = %v, want 0.5 (slowest rank)", got)
	}
}

func TestFormatters(t *testing.T) {
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Fatal("float formatters")
	}
	if pct(0.256) != "26%" {
		t.Fatalf("pct = %s", pct(0.256))
	}
	if pad("ab", 4) != "ab  " || pad("abcd", 2) != "abcd" {
		t.Fatal("pad")
	}
}
