package exp

import "testing"

// TestOverlapRedistStallReduction pins the PR's headline redistribution
// claim: on the skewed-load scenario, arrival-order commits cut the total
// virtual receive stall of redistribution by at least 20% versus
// schedule-order commits.
func TestOverlapRedistStallReduction(t *testing.T) {
	sched, arrival, err := runOverlapRedist(0)
	if err != nil {
		t.Fatal(err)
	}
	if sched <= 0 || arrival <= 0 {
		t.Fatalf("degenerate stalls: sched=%.4fs arrival=%.4fs", sched, arrival)
	}
	res := &OverlapResult{RedistStallSchedS: sched, RedistStallArrivalS: arrival}
	if r := res.StallReduction(); r < 0.20 {
		t.Fatalf("stall reduction %.1f%% below the 20%% bar (sched %.4fs, arrival %.4fs)",
			r*100, sched, arrival)
	}
}

// TestOverlapShape runs the halo overlap study on a reduced ladder and
// checks the structural claims: overlap never slows an app down, checksums
// are unchanged (enforced inside RunOverlap), hidden wire is recorded
// everywhere, and the small-world halo apps get a real makespan win.
func TestOverlapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overlap study is slow")
	}
	o := DefaultOverlapOptions()
	o.Nodes = []int{4, 64}
	res, err := RunOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 apps x 2 sizes
		t.Fatalf("expected 6 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OverlapS > row.SerialS {
			t.Errorf("%s/%d: overlap %.3fs slower than serial %.3fs", row.App, row.Nodes, row.OverlapS, row.SerialS)
		}
		if row.HiddenS <= 0 {
			t.Errorf("%s/%d: no hidden wire recorded", row.App, row.Nodes)
		}
		if row.HiddenFrac < 0 || row.HiddenFrac > 1 {
			t.Errorf("%s/%d: hidden fraction %.2f out of range", row.App, row.Nodes, row.HiddenFrac)
		}
		if row.App != "particles" && row.Nodes == 4 && row.Delta() <= 0 {
			t.Errorf("%s/%d: no makespan win from overlap (%.3fs vs %.3fs)", row.App, row.Nodes, row.SerialS, row.OverlapS)
		}
	}
	if res.StallReduction() < 0.20 {
		t.Errorf("redist stall reduction %.1f%% below the 20%% bar", res.StallReduction()*100)
	}
	tb := res.Table()
	if len(tb.Rows) != len(res.Rows)+1 { // data rows + redist summary row
		t.Fatalf("table rows: %d", len(tb.Rows))
	}
}
