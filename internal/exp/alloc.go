package exp

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/vclock"
)

// AllocOptions parameterises the §4.1 memory-allocation ablation (the
// Figure 3 comparison, measured in the paper's technical report): the cost
// of redistributing dense arrays under the 2-D projection scheme versus
// the contiguous baseline, both as a microbenchmark and end-to-end.
type AllocOptions struct {
	// Rows/Cols size the microbenchmark array.
	Rows, Cols int
	// MemBytes bounds node memory; a tight bound makes the contiguous
	// scheme's full reallocation page ("excessive disk accesses").
	MemBytes int64
	Paper    bool
}

// DefaultAllocOptions returns the scaled configuration.
func DefaultAllocOptions() AllocOptions {
	return AllocOptions{Rows: 1024, Cols: 1024, MemBytes: 24 << 20}
}

// AllocRow is one shift size's measurement.
type AllocRow struct {
	ShiftRows     int
	ProjectionSec float64
	ContiguousSec float64
}

// AllocResult holds the microbenchmark sweep and the end-to-end times.
type AllocResult struct {
	Rows []AllocRow
	// EndToEnd compares a full adaptive Jacobi run under both schemes.
	ProjectionTotal, ContiguousTotal   float64
	ProjectionRedist, ContiguousRedist float64
}

// measureShift times growing a half-array window by shift rows under one
// scheme on a memory-constrained node.
func measureShift(o AllocOptions, scheme matrix.Alloc, shift int) float64 {
	spec := cluster.Uniform(1)
	spec.Nodes[0].MemBytes = o.MemBytes
	cl := cluster.New(spec)
	node := cl.Node(0)
	d := matrix.NewDense("A", o.Rows, o.Cols, scheme, node)
	d.SetWindow(0, o.Rows/2)
	start := node.Now()
	d.SetWindow(0, o.Rows/2+shift)
	return node.Now().Sub(start).Seconds()
}

// RunAlloc executes the allocation comparison.
func RunAlloc(o AllocOptions) (*AllocResult, error) {
	if o.Rows == 0 {
		d := DefaultAllocOptions()
		o.Rows, o.Cols, o.MemBytes = d.Rows, d.Cols, d.MemBytes
	}
	out := &AllocResult{}
	for _, shift := range []int{1, 8, 64, 256} {
		out.Rows = append(out.Rows, AllocRow{
			ShiftRows:     shift,
			ProjectionSec: measureShift(o, matrix.Projection, shift),
			ContiguousSec: measureShift(o, matrix.Contiguous, shift),
		})
	}

	// End to end: adaptive Jacobi with a CP, under each allocation scheme.
	for _, scheme := range []matrix.Alloc{matrix.Projection, matrix.Contiguous} {
		cfg := jacobi.DefaultConfig()
		cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = 512, 1024, 120, 300
		cfg.Core = core.DefaultConfig()
		cfg.Core.Drop = core.DropNever
		cfg.Core.Alloc = scheme
		spec := cluster.Uniform(4).With(cluster.CycleEvent(1, 10, +1))
		for i := range spec.Nodes {
			spec.Nodes[i].MemBytes = o.MemBytes
		}
		res, err := jacobi.Run(cluster.New(spec), cfg)
		if err != nil {
			return nil, fmt.Errorf("alloc end-to-end %v: %w", scheme, err)
		}
		if scheme == matrix.Projection {
			out.ProjectionTotal = res.Elapsed
			out.ProjectionRedist = totalRedistSeconds(res)
		} else {
			out.ContiguousTotal = res.Elapsed
			out.ContiguousRedist = totalRedistSeconds(res)
		}
	}
	return out, nil
}

// Table renders the comparison.
func (r *AllocResult) Table() *Table {
	t := &Table{
		Caption: "§4.1 memory allocation: 2-D projection vs contiguous (window grow cost on a memory-constrained node; end-to-end adaptive Jacobi)",
		Header:  []string{"case", "projection", "contiguous", "contiguous/projection"},
	}
	for _, row := range r.Rows {
		ratio := row.ContiguousSec / row.ProjectionSec
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("grow +%d rows", row.ShiftRows),
			vclock.FromSeconds(row.ProjectionSec).String(),
			vclock.FromSeconds(row.ContiguousSec).String(),
			f2(ratio),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"jacobi total(s)", f2(r.ProjectionTotal), f2(r.ContiguousTotal), f2(r.ContiguousTotal / r.ProjectionTotal)},
		[]string{"jacobi redist(s)", f3(r.ProjectionRedist), f3(r.ContiguousRedist), f2(r.ContiguousRedist / r.ProjectionRedist)},
	)
	return t
}
