package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// This file is the large-world scalability soak: a pure collective workload
// (no application on top) cycling every collective family over worlds of up
// to 1024 ranks. It exists to exercise the sharded rendezvous engine at
// sizes the paper experiments never reach, and to pin the engine's
// determinism contract at scale: identical options must produce a
// byte-identical report — including the combiner-tree allreduce results,
// whose floating-point association is fixed by group slot order, never by
// physical goroutine arrival order. CI runs the n=256 soak twice and
// compares the outputs verbatim.

// ScaleOptions parameterises the soak.
type ScaleOptions struct {
	Sizes  []int // world sizes to run, in order
	Cycles int   // collective cycles per size
	VecLen int   // vector length for the element-wise collectives
}

// DefaultScaleOptions covers the tentpole sizes: the largest paper-scale
// world, and the 256/1024-rank worlds the sharded engine targets. 64
// elements puts the vector collectives over the combiner-tree threshold for
// every size here above 16 ranks.
func DefaultScaleOptions() ScaleOptions {
	return ScaleOptions{Sizes: []int{64, 256, 1024}, Cycles: 20, VecLen: 64}
}

// ScaleSizeResult is the outcome of one world size: a checksum folding
// every collective result of the run (byte-identical across runs), the
// finishing virtual time, and the per-shape collective counters.
type ScaleSizeResult struct {
	Ranks    int
	Cycles   int
	Checksum float64
	FinishS  float64 // virtual seconds at the final barrier
	Shapes   []mpi.CollectiveShape
}

// ScaleResult is the outcome of a soak across all requested sizes, plus the
// per-shape telemetry records of every size.
type ScaleResult struct {
	Sizes   []ScaleSizeResult
	Records []telemetry.Record
}

// RunScale executes the soak. Every cycle of every size runs the full
// collective mix: a rotating-root broadcast, an element-wise sum allreduce
// (combiner tree at these sizes), a float64 allgather, a rotating-root
// gather folded back through a scalar allreduce, and a barrier. All
// payloads are deterministic functions of (rank, cycle, element).
func RunScale(o ScaleOptions) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, n := range o.Sizes {
		sr, err := runScaleSize(n, o.Cycles, o.VecLen)
		if err != nil {
			return nil, fmt.Errorf("scale n=%d: %w", n, err)
		}
		res.Sizes = append(res.Sizes, sr)
		for i, sh := range sr.Shapes {
			res.Records = append(res.Records, telemetry.CollectiveRecord{
				Base: telemetry.Base{
					K: telemetry.KindCollective, Node: 0, Cycle: -1,
					Time: sr.FinishS, Seq: i,
				},
				Op: sh.Op, Algorithm: sh.Algorithm, Ranks: sh.Ranks,
				Steps: sh.Steps, Count: sh.Count, Bytes: sh.Bytes,
			})
		}
	}
	return res, nil
}

func runScaleSize(n, cycles, vecLen int) (ScaleSizeResult, error) {
	sr := ScaleSizeResult{Ranks: n, Cycles: cycles}
	err := mpi.Run(cluster.New(cluster.Uniform(n)), func(c *mpi.Comm) error {
		g := c.World().AllGroup()
		rank := c.Rank()
		buf := make([]float64, vecLen)
		bcast := make([]float64, vecLen)
		gath := make([]float64, n)
		var checksum float64
		for cycle := 0; cycle < cycles; cycle++ {
			root := cycle % n

			// Rotating-root broadcast of a cycle-dependent vector.
			if rank == root {
				for j := range bcast {
					bcast[j] = float64(cycle*vecLen+j) * 0.5
				}
			}
			c.BcastF64sInto(g, root, bcast)
			checksum += bcast[cycle%vecLen]

			// Element-wise sum allreduce — the combiner-tree path for every
			// world here of at least 16 ranks.
			for j := range buf {
				buf[j] = float64(rank+1) * float64(cycle+j+1) * 1e-3
			}
			c.AllreduceF64sInto(g, buf, mpi.Sum)
			checksum += buf[cycle%vecLen]

			// Float64 allgather of a per-rank scalar.
			c.AllgatherF64sInto(g, float64(rank)+float64(cycle)*1e-2, gath)
			checksum += gath[(cycle*7)%n]

			// Rotating-root gather; the root folds its view back through a
			// scalar allreduce so every rank's checksum stays identical.
			parts := c.Gather(g, root, rank*cycle, 8)
			var rootSum float64
			if rank == root {
				for _, p := range parts {
					rootSum += float64(p.(int))
				}
			}
			checksum += c.AllreduceSum(g, rootSum)

			c.Barrier(g)
		}
		if rank == 0 {
			sr.Checksum = checksum
			sr.FinishS = c.Now().Seconds()
			for _, sh := range g.CollectiveStats() {
				if sh.Count > 0 {
					sr.Shapes = append(sr.Shapes, sh)
				}
			}
		}
		return nil
	})
	return sr, err
}

// Table renders the soak report: one row per (size, shape) plus a summary
// row per size with the checksum and finish time. Byte-identical across
// runs with identical options.
func (r *ScaleResult) Table() *Table {
	t := &Table{
		Caption: "Large-world collective soak (sharded engine; deterministic checksums)",
		Header:  []string{"ranks", "op", "algorithm", "steps", "ops", "bytes", "checksum", "finish(s)"},
	}
	for _, sr := range r.Sizes {
		for _, sh := range sr.Shapes {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", sr.Ranks), sh.Op, sh.Algorithm,
				fmt.Sprintf("%d", sh.Steps), fmt.Sprintf("%d", sh.Count),
				fmt.Sprintf("%d", sh.Bytes), "", "",
			})
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sr.Ranks), "TOTAL", "", "", "", "",
			fmt.Sprintf("%.6f", sr.Checksum), fmt.Sprintf("%.9f", sr.FinishS),
		})
	}
	return t
}
