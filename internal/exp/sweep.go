package exp

import "repro/internal/sweep"

// DefaultSweepOptions returns the CI smoke sweep: the 96-cell
// sweep.Smoke() grid advanced by a 4-wide worker pool. The pool width
// affects only wall-clock time — the report is byte-identical for any
// Jobs value.
func DefaultSweepOptions() sweep.Options {
	return sweep.Options{Grid: sweep.Smoke(), Jobs: 4}
}

// RunSweep executes a multi-world parameter sweep under the shared
// virtual-time scheduler (see internal/sweep).
func RunSweep(o sweep.Options) (*sweep.Result, error) {
	return sweep.Run(o)
}
