// Package exp is the experiment harness: one runner per table/figure of
// the paper's evaluation (§5), each reproducing the corresponding workload,
// competing-process scenario and measurement, and rendering the same rows
// the paper reports. Absolute times come from the simulator's virtual
// clock; the quantities of interest are the paper's *shapes* — who wins,
// by what factor, and where the crossovers fall.
//
// Every experiment runs at a laptop-friendly scale by default, chosen to
// preserve the paper's computation/communication ratios (see EXPERIMENTS.md
// for the calibration); the Paper option selects the original input sizes.
package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
)

// Table is a rendered experiment result: a caption, a header, and rows of
// cells. Raw values live on the experiment-specific result structs.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// redistWindow extracts the first redistribution interval (start/end
// virtual seconds) and its cycle from a rank's event trace; ok is false if
// the rank never redistributed.
func redistWindow(stats apps.RankStats) (startSec, endSec float64, cycle int, ok bool) {
	var start, end float64
	var cyc int
	seen := false
	for _, ev := range stats.Events {
		switch ev.Kind {
		case core.EvRedistStart:
			if !seen {
				start, cyc = ev.Time.Seconds(), ev.Cycle
			}
		case core.EvRedistEnd:
			if !seen {
				end = ev.Time.Seconds()
				seen = true
			}
		}
	}
	return start, end, cyc, seen
}

// lastRedistEnd returns the final redistribution end (seconds, cycle).
func lastRedistEnd(stats apps.RankStats) (sec float64, cycle int, ok bool) {
	for _, ev := range stats.Events {
		if ev.Kind == core.EvRedistEnd {
			sec, cycle, ok = ev.Time.Seconds(), ev.Cycle, true
		}
	}
	return sec, cycle, ok
}

// avgCycleAfterRedist computes the steady-state average phase-cycle time
// after the last redistribution, the quantity Figures 6 and 7 plot. It
// uses the latest redistribution end across ranks and the overall finish.
func avgCycleAfterRedist(res apps.Result, totalCycles int) (float64, bool) {
	endSec, endCycle := 0.0, 0
	found := false
	for _, st := range res.Stats {
		if s, c, ok := lastRedistEnd(st); ok && s > endSec {
			endSec, endCycle, found = s, c, true
		}
	}
	if !found || totalCycles-endCycle <= 0 {
		return 0, false
	}
	return (res.Elapsed - endSec) / float64(totalCycles-endCycle), true
}

// totalRedistSeconds sums all redistribution windows on the slowest rank.
func totalRedistSeconds(res apps.Result) float64 {
	best := 0.0
	for _, st := range res.Stats {
		var tot float64
		var start float64
		open := false
		for _, ev := range st.Events {
			switch ev.Kind {
			case core.EvRedistStart:
				start, open = ev.Time.Seconds(), true
			case core.EvRedistEnd:
				if open {
					tot += ev.Time.Seconds() - start
					open = false
				}
			}
		}
		if tot > best {
			best = tot
		}
	}
	return best
}
