package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vclock"
)

// This file measures elastic world resizing against its only real
// alternative on a non-dedicated cluster: killing the job and restarting it
// at the new size. An elastic resize keeps every byte that does not change
// owner in place and ships only the contiguous ownership delta through the
// diff schedule; a restart pays the full makespan bookkeeping — drain the
// old world, reload every array over the wire, rerun the remaining
// iterations from the checkpoint. The study validates, through the cost
// model, that resize N→M is strictly cheaper than drop-all+restart in both
// directions (capacity arriving under load, capacity leaving under load).

// ResizeOptions parameterises the resize-vs-restart study.
type ResizeOptions struct {
	// Rows, Cols, Iters shape the Jacobi workload (defaults 512x512x60).
	Rows, Cols, Iters int
	// At is the cycle the membership changes (default Iters/3).
	At int
	// Seed offsets the cluster seeds.
	Seed uint64
}

// DefaultResizeOptions returns the default study shape.
func DefaultResizeOptions() ResizeOptions {
	return ResizeOptions{Rows: 512, Cols: 512, Iters: 60}
}

// ResizeRow is one scenario: an elastic resize from From to To ranks at
// cycle At, against the modeled drop-all+restart baseline.
type ResizeRow struct {
	Scenario string
	From, To int
	At       int
	ResizeS  float64 // elastic-run virtual makespan
	RestartS float64 // restart baseline: partial runs + full-array reload
	ReloadS  float64 // the reload component of the baseline
	MovedMB  float64 // bytes the elastic redistributions actually shipped
	TotalMB  float64 // full working-set size a restart must reload
}

// Saving reports the fractional makespan saving of resizing over restart.
func (r ResizeRow) Saving() float64 {
	if r.RestartS == 0 {
		return 0
	}
	return (r.RestartS - r.ResizeS) / r.RestartS
}

// ResizeResult holds the study.
type ResizeResult struct {
	Rows []ResizeRow
}

// CheaperCount reports on how many scenarios the elastic resize beat the
// restart baseline strictly — the acceptance criterion wants ≥2.
func (r *ResizeResult) CheaperCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.ResizeS < row.RestartS {
			n++
		}
	}
	return n
}

// RunResize executes the resize-vs-restart study: grow 4→6 via timed
// capacity arrivals, shrink 6→4 via an explicit Resize call.
func RunResize(o ResizeOptions) (*ResizeResult, error) {
	if o.Rows == 0 {
		o.Rows = 512
	}
	if o.Cols == 0 {
		o.Cols = 512
	}
	if o.Iters == 0 {
		o.Iters = 60
	}
	if o.At == 0 {
		o.At = o.Iters / 3
	}

	baseCfg := func(iters int) jacobi.Config {
		cfg := jacobi.DefaultConfig()
		cfg.Rows, cfg.Cols, cfg.Iters = o.Rows, o.Cols, iters
		cfg.Core = core.DefaultConfig()
		cfg.Core.Drop = core.DropNever
		return cfg
	}
	dedicated := func(n, iters int) (apps.Result, error) {
		spec := cluster.Uniform(n)
		spec.Seed += o.Seed
		return jacobi.Run(cluster.New(spec), baseCfg(iters))
	}
	movedMB := func(r apps.Result) float64 {
		var bytes int64
		for _, st := range r.Stats {
			for _, ev := range st.Events {
				if ev.Kind == core.EvRedistEnd {
					bytes += ev.BytesSent
				}
			}
		}
		return float64(bytes) / 1e6
	}
	// A restart reloads the full working set (both ping-pong buffers) over
	// the wire of the new world; the cost model is the cluster's own.
	net := cluster.New(cluster.Uniform(1)).Net()
	totalBytes := float64(2 * o.Rows * o.Cols * 8)
	reload := vclock.Duration(net.Latency).Seconds() + totalBytes/net.BytesPerSec

	// Reference checksum: an undisturbed dedicated run of the full length.
	ref, err := dedicated(4, o.Iters)
	if err != nil {
		return nil, fmt.Errorf("resize reference: %w", err)
	}

	res := &ResizeResult{}
	addScenario := func(name string, from, to int, elastic apps.Result) error {
		if elastic.Checksum != ref.Checksum {
			return fmt.Errorf("resize %s: checksum %v differs from dedicated run %v — resize corrupted data",
				name, elastic.Checksum, ref.Checksum)
		}
		// Restart baseline: run the old world to the resize point, reload
		// the full working set, run the rest on the new world.
		before, err := dedicated(from, o.At)
		if err != nil {
			return fmt.Errorf("resize %s baseline head: %w", name, err)
		}
		after, err := dedicated(to, o.Iters-o.At)
		if err != nil {
			return fmt.Errorf("resize %s baseline tail: %w", name, err)
		}
		res.Rows = append(res.Rows, ResizeRow{
			Scenario: name,
			From:     from,
			To:       to,
			At:       o.At,
			ResizeS:  elastic.Elapsed,
			RestartS: before.Elapsed + reload + after.Elapsed,
			ReloadS:  reload,
			MovedMB:  movedMB(elastic),
			TotalMB:  totalBytes / 1e6,
		})
		return nil
	}

	// Scenario 1: capacity arrives under load — two nodes join at cycle At.
	growSpec := cluster.Uniform(4).WithArrival(1.0, o.At).WithArrival(1.0, o.At)
	growSpec.Seed += o.Seed
	grow, err := jacobi.Run(cluster.New(growSpec), baseCfg(o.Iters))
	if err != nil {
		return nil, fmt.Errorf("resize grow: %w", err)
	}
	if err := addScenario("grow", 4, 6, grow); err != nil {
		return nil, err
	}

	// Scenario 2: capacity leaves under load — an explicit shrink releases
	// the two highest ranks at cycle At.
	shrinkSpec := cluster.Uniform(6)
	shrinkSpec.Seed += o.Seed
	shrinkCfg := baseCfg(o.Iters)
	shrinkCfg.ResizeAt, shrinkCfg.ResizeTo = o.At, 4
	shrink, err := jacobi.Run(cluster.New(shrinkSpec), shrinkCfg)
	if err != nil {
		return nil, fmt.Errorf("resize shrink: %w", err)
	}
	if err := addScenario("shrink", 6, 4, shrink); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the study.
func (r *ResizeResult) Table() *Table {
	t := &Table{
		Caption: "Elastic resizing vs drop-all+restart: Jacobi, membership change mid-run; restart pays partial reruns plus a full working-set reload",
		Header:  []string{"scenario", "nodes", "at", "resize(s)", "restart(s)", "saving", "moved(MB)", "reload(MB)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scenario,
			fmt.Sprintf("%d->%d", row.From, row.To),
			fmt.Sprint(row.At),
			f2(row.ResizeS), f2(row.RestartS), pct(row.Saving()),
			f2(row.MovedMB), f2(row.TotalMB),
		})
	}
	return t
}
