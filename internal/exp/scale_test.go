package exp

import (
	"strings"
	"testing"
)

// TestScaleSoakDeterministic runs the soak twice at a CI-friendly size and
// requires the rendered reports — checksums, finish times, collective
// counters — to be byte-identical. This is the determinism contract of the
// sharded engine at sizes where the combiner tree is active: the reduction
// association is fixed by slot order, so physical goroutine arrival order
// must not leak into a single output byte.
func TestScaleSoakDeterministic(t *testing.T) {
	o := ScaleOptions{Sizes: []int{64}, Cycles: 8, VecLen: 64}
	if testing.Short() {
		o.Sizes = []int{32}
	}
	render := func() string {
		r, err := RunScale(o)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		r.Table().Render(&b)
		return b.String()
	}
	a, c := render(), render()
	if a != c {
		t.Fatalf("soak reports differ across identical runs:\n--- first ---\n%s--- second ---\n%s", a, c)
	}
	if !strings.Contains(a, "recursive-doubling") || !strings.Contains(a, "TOTAL") {
		t.Fatalf("report missing expected rows:\n%s", a)
	}
}

// TestScaleRecordsCoverEveryShape checks the telemetry side: one collective
// record per exercised shape per size, all carrying the group geometry.
func TestScaleRecordsCoverEveryShape(t *testing.T) {
	r, err := RunScale(ScaleOptions{Sizes: []int{16}, Cycles: 2, VecLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The mix exercises barrier, bcast, allreduce, allgather-f64 and gather.
	if len(r.Records) != 5 {
		t.Fatalf("got %d collective records, want 5", len(r.Records))
	}
	for _, rec := range r.Records {
		if rec.Kind() != "collective" {
			t.Errorf("record kind %q, want collective", rec.Kind())
		}
	}
}
