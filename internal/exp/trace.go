package exp

import (
	"repro/internal/apps"
	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// TraceOptions parameterises the canonical telemetry trace run: Jacobi on a
// uniform cluster with one competing process arriving mid-run — the
// bench_test.go "loaded4" scenario.
type TraceOptions struct {
	Nodes       int
	Rows, Cols  int
	Iters       int
	CostPerElem float64
	CPNode      int // node receiving the competing process
	CPCycle     int // phase cycle at which it arrives
	Drop        core.DropPolicy
	RingCap     int // telemetry ring capacity

	// Faults injects deterministic failures into the run (see
	// internal/fault); empty means a fault-free run with a byte-identical
	// trace to earlier versions.
	Faults []fault.Fault
	// Replicate / ReplicaEvery configure dense-array buddy replication for
	// crash recovery (core.Config fields of the same names).
	Replicate    bool
	ReplicaEvery int
}

// DefaultTraceOptions returns the canonical loaded-4-node scenario with
// unconditional removal, so the trace deterministically contains all four
// record families: iteration, decision, redist and membership.
func DefaultTraceOptions() TraceOptions {
	return TraceOptions{
		Nodes: 4, Rows: 128, Cols: 128, Iters: 40, CostPerElem: 10e3,
		CPNode: 1, CPCycle: 10,
		Drop:    core.DropAlways,
		RingCap: 1 << 16,
	}
}

// TraceResult is the outcome of a trace run: the structured records in
// deterministic (virtual time, node, seq) order plus the application result.
type TraceResult struct {
	Records []telemetry.Record
	Res     apps.Result
}

// RunTrace executes the scenario with a ring sink attached and returns the
// sorted record stream. The run is fully deterministic: repeated calls with
// identical options produce identical records.
func RunTrace(o TraceOptions) (*TraceResult, error) {
	ring := telemetry.NewRing(o.RingCap)
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = o.Rows, o.Cols, o.Iters, o.CostPerElem
	cfg.Core.Drop = o.Drop
	cfg.Core.Telemetry = ring
	cfg.Core.Replicate = o.Replicate
	cfg.Core.ReplicaEvery = o.ReplicaEvery
	spec := cluster.Uniform(o.Nodes).With(cluster.CycleEvent(o.CPNode, o.CPCycle, +1))
	spec.Faults = append(spec.Faults, o.Faults...)
	res, err := jacobi.Run(cluster.New(spec), cfg)
	if err != nil {
		return nil, err
	}
	recs := ring.Records()
	telemetry.Sort(recs)
	return &TraceResult{Records: recs, Res: res}, nil
}
