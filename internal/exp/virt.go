package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// This file quantifies the paper's §3 argument against virtualization-based
// approaches (AMPI/Charm++, Tern): "fine-grain programs may have
// significantly more messages than their coarse-grain counterparts; for
// example, in a nearest neighbor communication pattern, it is necessary to
// send one message per boundary edge."
//
// The experiment runs the same nearest-neighbour workload with each
// physical node's block split into V virtual processors. Every virtual
// processor exchanges its own boundary rows, so cross-node traffic grows
// with V while per-message payloads stay constant and the intra-node
// virtual boundaries add pure overhead. Dyn-MPI's coarse-grain design is
// the V=1 row.

// VirtOptions parameterises the granularity sweep.
type VirtOptions struct {
	Nodes int
	Rows  int
	Cols  int
	Iters int
	// CostPerElem is the per-element compute cost in nanoseconds.
	CostPerElem float64
	// Virtualization factors to sweep (1 = Dyn-MPI's coarse grain).
	Factors []int
	// VPOverhead is the per-virtual-processor per-cycle scheduling cost
	// (context switch + object scheduling), in virtual time.
	VPOverhead vclock.Duration
}

// DefaultVirtOptions returns a configuration in the regime the paper's
// argument targets: thin rows, many exchanges.
func DefaultVirtOptions() VirtOptions {
	return VirtOptions{
		Nodes: 8, Rows: 256, Cols: 512, Iters: 60,
		CostPerElem: 300,
		Factors:     []int{1, 2, 4, 8, 16},
		VPOverhead:  20 * vclock.Microsecond,
	}
}

// VirtRow is one virtualization factor's measurement.
type VirtRow struct {
	Factor     int
	Elapsed    float64 // seconds
	Messages   int64   // total cross-node messages
	MsgsPerCyc float64
}

// VirtResult holds the sweep.
type VirtResult struct {
	Rows []VirtRow
}

// runVirtCase executes the synthetic nearest-neighbour program with V
// virtual processors per node and returns makespan and message count.
func runVirtCase(o VirtOptions, v int) (VirtRow, error) {
	rowCost := vclock.Duration(float64(o.Cols) * o.CostPerElem)
	perNode := o.Rows / o.Nodes
	perVP := perNode / v
	if perVP == 0 {
		return VirtRow{}, fmt.Errorf("virt: factor %d leaves empty virtual processors", v)
	}
	var worst vclock.Time
	var msgs int64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := mpi.Run(cluster.New(cluster.Uniform(o.Nodes)), func(c *mpi.Comm) error {
		me := c.Rank()
		for t := 0; t < o.Iters; t++ {
			// Each virtual processor computes its block and exchanges its
			// boundaries. VPs at the node's outer edges talk to the
			// neighbouring node (one message per VP boundary, the paper's
			// point); interior VP boundaries cost scheduling overhead only.
			for vp := 0; vp < v; vp++ {
				c.Node().Compute(vclock.Duration(perVP)*rowCost + o.VPOverhead)
			}
			if me > 0 {
				c.Send(me-1, t, make([]float64, o.Cols), mpi.F64Bytes(o.Cols))
			}
			if me < o.Nodes-1 {
				c.Send(me+1, t, make([]float64, o.Cols), mpi.F64Bytes(o.Cols))
			}
			if me > 0 {
				c.Recv(me-1, t)
			}
			if me < o.Nodes-1 {
				c.Recv(me+1, t)
			}
			// Virtualization sends the halo of every *edge-adjacent* VP
			// separately: with V VPs per node the cross-node boundary is
			// still one row, but AMPI-style decomposition in 2-D (the
			// common case the paper cites) multiplies boundary edges by V.
			// Model the extra edge messages explicitly.
			for extra := 1; extra < v; extra++ {
				if me > 0 {
					c.Send(me-1, tagExtra(t, extra), make([]float64, o.Cols/v), mpi.F64Bytes(o.Cols/v))
				}
				if me < o.Nodes-1 {
					c.Send(me+1, tagExtra(t, extra), make([]float64, o.Cols/v), mpi.F64Bytes(o.Cols/v))
				}
			}
			for extra := 1; extra < v; extra++ {
				if me > 0 {
					c.Recv(me-1, tagExtra(t, extra))
				}
				if me < o.Nodes-1 {
					c.Recv(me+1, tagExtra(t, extra))
				}
			}
		}
		<-mu
		if c.Now() > worst {
			worst = c.Now()
		}
		msgs += c.SentMsgs
		mu <- struct{}{}
		return nil
	})
	if err != nil {
		return VirtRow{}, err
	}
	return VirtRow{
		Factor:     v,
		Elapsed:    worst.Seconds(),
		Messages:   msgs,
		MsgsPerCyc: float64(msgs) / float64(o.Iters),
	}, nil
}

func tagExtra(t, extra int) int { return 1000 + t*64 + extra }

// RunVirt executes the granularity sweep.
func RunVirt(o VirtOptions) (*VirtResult, error) {
	if o.Nodes == 0 {
		o = DefaultVirtOptions()
	}
	out := &VirtResult{}
	for _, v := range o.Factors {
		row, err := runVirtCase(o, v)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the sweep.
func (r *VirtResult) Table() *Table {
	t := &Table{
		Caption: "§3 granularity argument: the same workload with V virtual processors per node (V=1 is Dyn-MPI's coarse grain)",
		Header:  []string{"V", "time(s)", "msgs/cycle", "vs V=1"},
	}
	base := r.Rows[0].Elapsed
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Factor), f2(row.Elapsed), f2(row.MsgsPerCyc), pct(row.Elapsed/base - 1),
		})
	}
	return t
}
