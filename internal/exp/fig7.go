package exp

import (
	"fmt"

	"repro/internal/apps/particles"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Fig7Options parameterises the unbalanced-computation experiment (§5.4):
// the particle simulation on 8 nodes with the top half of P0's rows seeded
// with Part extra particles per cell, comparing grace periods of 1 and 5
// phase cycles. Iterations run well under the 10 ms /PROC granularity, so
// the runtime must rely on min-filtered wallclock timing; a 1-cycle grace
// period keeps context-switch spikes in the estimates and mis-sizes the
// distribution.
type Fig7Options struct {
	Nodes int
	Parts []int // paper: 10 and 50
	Paper bool
}

// DefaultFig7Options returns the paper's configuration at laptop scale.
func DefaultFig7Options() Fig7Options {
	return Fig7Options{Nodes: 8, Parts: []int{10, 50}}
}

// Fig7Row is one Part value's pair of bars.
type Fig7Row struct {
	Part    int
	GP1Avg  float64 // avg post-redistribution cycle seconds with GP=1
	GP5Avg  float64 // with GP=5
	Benefit float64 // (GP1-GP5)/GP1 — the paper reports 13% and 16%
}

// Fig7Result holds all Part values.
type Fig7Result struct {
	Rows []Fig7Row
}

func runFig7Case(nodes, part, gp int, paper bool) (float64, error) {
	cfg := particles.DefaultConfig()
	if paper {
		cfg.Rows, cfg.Cols, cfg.Steps = 256, 256, 200
	} else {
		// CostPerParticle keeps even Part=50 rows under the 10 ms /PROC
		// granularity, the experiment's premise.
		cfg.Rows, cfg.Cols, cfg.Steps, cfg.CostPerParticle = 128, 96, 250, 1500
	}
	cfg.ExtraTopP0 = part
	cfg.Core = core.DefaultConfig()
	cfg.Core.Drop = core.DropNever
	cfg.Core.GracePeriod = gp
	spec := cluster.Uniform(nodes).With(cluster.CycleEvent(0, 10, +1))
	res, err := particles.Run(cluster.New(spec), cfg)
	if err != nil {
		return 0, err
	}
	avg, ok := avgCycleAfterRedist(res, cfg.Steps)
	if !ok {
		return 0, fmt.Errorf("fig7 part=%d gp=%d: no redistribution occurred", part, gp)
	}
	return avg, nil
}

// RunFig7 executes the GP=1 vs GP=5 comparison for every Part value.
func RunFig7(o Fig7Options) (*Fig7Result, error) {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if len(o.Parts) == 0 {
		o.Parts = []int{10, 50}
	}
	out := &Fig7Result{}
	for _, part := range o.Parts {
		g1, err := runFig7Case(o.Nodes, part, 1, o.Paper)
		if err != nil {
			return nil, err
		}
		g5, err := runFig7Case(o.Nodes, part, 5, o.Paper)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig7Row{
			Part: part, GP1Avg: g1, GP5Avg: g5, Benefit: (g1 - g5) / g1,
		})
	}
	return out, nil
}

// Table renders the comparison.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Caption: "Figure 7: particle simulation, average post-redistribution cycle time — grace period 1 vs 5 (8 nodes, CP on P0 at step 10)",
		Header:  []string{"Part", "GP=1 (ms)", "GP=5 (ms)", "GP=5 benefit"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Part), f2(row.GP1Avg * 1000), f2(row.GP5Avg * 1000), pct(row.Benefit),
		})
	}
	return t
}
