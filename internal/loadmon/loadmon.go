// Package loadmon is the simulator's equivalent of the paper's dmpi_ps
// daemon (§4.2): a per-node monitor that reports the number of processes in
// the running or ready state, automatically including the monitored
// application, refreshed once per second.
//
// The paper rejects vmstat because processes that voluntarily relinquished
// the CPU (e.g. blocked in a receive) are invisible to it; dmpi_ps counts
// only running/ready processes and always counts the application itself.
// Both behaviours are reproduced here: Reading always includes the
// application, and a Vmstat-style reading is provided (for the ablation
// tests) that misses the application whenever it happens to be blocked at
// the sample tick.
package loadmon

import (
	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// DefaultInterval is the daemon's refresh period ("updates every second").
const DefaultInterval = vclock.Duration(vclock.Second)

// Monitor samples one node's load.
type Monitor struct {
	node     *cluster.Node
	interval vclock.Duration

	sink    telemetry.Sink // nil: no emission
	stamper *telemetry.Stamper
	cycleFn func() int // current phase cycle of the monitored application
}

// Attach routes every dmpi_ps reading through sink as a LoadSampleRecord.
// cycleFn supplies the application's current phase cycle (may be nil).
func (m *Monitor) Attach(sink telemetry.Sink, stamper *telemetry.Stamper, cycleFn func() int) {
	m.sink = sink
	m.stamper = stamper
	m.cycleFn = cycleFn
}

// New creates a monitor for node with the default 1 s refresh.
func New(node *cluster.Node) *Monitor {
	return &Monitor{node: node, interval: DefaultInterval}
}

// NewWithInterval creates a monitor with a custom refresh period.
func NewWithInterval(node *cluster.Node, interval vclock.Duration) *Monitor {
	if interval <= 0 {
		panic("loadmon: non-positive interval")
	}
	return &Monitor{node: node, interval: interval}
}

// lastTick returns the most recent daemon refresh at or before now.
func (m *Monitor) lastTick() vclock.Time {
	now := m.node.Now()
	return now - now%vclock.Time(m.interval)
}

// Reading reports the dmpi_ps value: running+ready processes at the last
// daemon refresh, with the monitored application always included.
func (m *Monitor) Reading() int {
	r := 1 + m.node.CPCountAt(m.lastTick())
	if m.sink != nil {
		cycle := -1
		if m.cycleFn != nil {
			cycle = m.cycleFn()
		}
		m.sink.Emit(telemetry.LoadSampleRecord{
			Base:    m.stamper.Stamp(telemetry.KindLoadSample, cycle, m.node.Now().Seconds()),
			Reading: r,
		})
	}
	return r
}

// CompetingProcesses reports Reading minus the application itself — the
// quantity the balancer feeds into its load field.
func (m *Monitor) CompetingProcesses() int { return m.Reading() - 1 }

// VmstatReading models the flawed alternative: if the application was
// blocked (not computing) at the sample tick, it is not counted. appRunning
// is whether the application was on-CPU at the last tick, which the caller
// knows from its own state.
func (m *Monitor) VmstatReading(appRunning bool) int {
	n := m.node.CPCountAt(m.lastTick())
	if appRunning {
		n++
	}
	return n
}

// Changed reports whether two load vectors (one entry per node, from
// CompetingProcesses) differ anywhere — the paper's redistribution trigger:
// "check system load at every phase cycle and redistribute if any change is
// detected".
func Changed(prev, cur []int) bool {
	if len(prev) != len(cur) {
		return true
	}
	for i := range cur {
		if prev[i] != cur[i] {
			return true
		}
	}
	return false
}
