package loadmon

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

func TestReadingIncludesApp(t *testing.T) {
	cl := cluster.New(cluster.Uniform(1))
	m := New(cl.Node(0))
	if m.Reading() != 1 {
		t.Fatalf("idle node reading = %d, want 1 (the app itself)", m.Reading())
	}
	if m.CompetingProcesses() != 0 {
		t.Fatal("CPs on idle node")
	}
}

func TestSamplingDelay(t *testing.T) {
	// CP starts at t=1.5s; the daemon refreshes each second, so it is
	// invisible until the node's clock passes 2s.
	spec := cluster.Uniform(1).With(cluster.TimeEvent(0, vclock.Time(1500*vclock.Millisecond), +1))
	cl := cluster.New(spec)
	n := cl.Node(0)
	m := New(n)
	n.WaitUntil(vclock.Time(1600 * vclock.Millisecond))
	if m.CompetingProcesses() != 0 {
		t.Fatal("CP visible before daemon refresh")
	}
	n.WaitUntil(vclock.Time(2100 * vclock.Millisecond))
	if m.CompetingProcesses() != 1 {
		t.Fatal("CP not visible after daemon refresh")
	}
}

func TestCustomInterval(t *testing.T) {
	spec := cluster.Uniform(1).With(cluster.TimeEvent(0, vclock.Time(110*vclock.Millisecond), +1))
	cl := cluster.New(spec)
	n := cl.Node(0)
	m := NewWithInterval(n, 100*vclock.Millisecond)
	n.WaitUntil(vclock.Time(150 * vclock.Millisecond))
	if m.CompetingProcesses() != 0 {
		t.Fatal("visible too early")
	}
	n.WaitUntil(vclock.Time(250 * vclock.Millisecond))
	if m.CompetingProcesses() != 1 {
		t.Fatal("not visible after tick")
	}
}

func TestBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWithInterval(cluster.New(cluster.Uniform(1)).Node(0), 0)
}

func TestVmstatMissesBlockedApp(t *testing.T) {
	spec := cluster.Uniform(1).With(cluster.TimeEvent(0, 0, +1))
	cl := cluster.New(spec)
	n := cl.Node(0)
	n.WaitUntil(vclock.Time(vclock.Second))
	m := New(n)
	// dmpi_ps always counts the app; vmstat misses it while blocked.
	if m.Reading() != 2 {
		t.Fatalf("dmpi_ps reading = %d, want 2", m.Reading())
	}
	if m.VmstatReading(false) != 1 {
		t.Fatalf("vmstat with blocked app = %d, want 1", m.VmstatReading(false))
	}
	if m.VmstatReading(true) != 2 {
		t.Fatalf("vmstat with running app = %d, want 2", m.VmstatReading(true))
	}
}

func TestChanged(t *testing.T) {
	if Changed([]int{0, 1}, []int{0, 1}) {
		t.Fatal("identical vectors reported changed")
	}
	if !Changed([]int{0, 1}, []int{1, 1}) {
		t.Fatal("changed vector not detected")
	}
	if !Changed([]int{0}, []int{0, 0}) {
		t.Fatal("length change not detected")
	}
}
