// Package translate implements the compiler-side half of the paper's §2.3:
// deriving the deferred regular section descriptors (DMPI_add_array_access
// declarations) from a program's source. The paper notes that while users
// currently declare DRSDs by hand, "this step could be automated in many
// cases" with the techniques of [6,7]; this package does exactly that for
// Go programs written against the dynmpi API.
//
// The analysis walks the AST looking for partitioned loops — `for` loops
// whose bounds come from Phase.Bounds() — and collects every array
// reference of the form
//
//	arr.Row(i)        arr.Row(i+1)        arr.Row(i-2)
//	arr.RowHead(i+c)  arr.Append(i+c, …)  arr.PackRow(i+c)
//
// where i is the loop variable, classifying each as a read or a write from
// its syntactic context (assignment target vs operand). Loop bounds may
// carry constant offsets (`for g := lo+1; g < hi-1; g++`, the interior
// loop of an overlapped halo sweep), and row-kernel closures — single
// parameter function literals bound to an identifier and called from a
// partitioned loop with the loop index ±const — are analysed as if
// inlined, with offsets shifted by the call argument. The result is the
// access list the program must declare, which callers can compare against
// the declarations actually present (the Verify entry point) or print as
// ready-to-paste AddAccess calls (cmd/drsdgen).
//
// The subset handled mirrors the paper's model: unit-stride references
// with constant offsets from the loop variable. References the analysis
// cannot resolve are reported rather than silently dropped.
package translate

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
)

// Access is one derived array access: array[i*Step + Off] with Write
// reporting whether the reference stores to the row.
type Access struct {
	Array string
	Write bool
	Step  int
	Off   int
}

// String renders the access as the dynmpi declaration it implies.
func (a Access) String() string {
	mode := "dynmpi.Read"
	if a.Write {
		mode = "dynmpi.ReadWrite"
	}
	return fmt.Sprintf("ph.AddAccess(%q, %s, %d, %+d)", a.Array, mode, a.Step, a.Off)
}

// Issue is a reference the analysis could not resolve to a constant-offset
// access.
type Issue struct {
	Pos    token.Position
	Reason string
}

// Result is the outcome of analysing one source file.
type Result struct {
	// Accesses are the derived declarations, deduplicated and ordered.
	Accesses []Access
	// Declared are the AddAccess calls already present in the source.
	Declared []Access
	// Issues are unresolvable references.
	Issues []Issue
}

// rowMethods maps matrix methods to whether their first argument is the
// row index (all of these reference the distributed dimension).
var rowMethods = map[string]bool{
	"Row": true, "RowHead": true, "RowLen": true, "Append": true,
	"PackRow": true, "UnpackRow": true, "ClearRow": true, "TakeRow": true,
	"PutRow": true, "RowWireBytes": true,
}

// writeMethods are row methods that always store.
var writeMethods = map[string]bool{
	"Append": true, "UnpackRow": true, "ClearRow": true, "PutRow": true,
}

// AnalyzeFile parses and analyses one Go source file.
func AnalyzeFile(filename string, src any) (*Result, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	kernels := collectKernels(file)
	ast.Inspect(file, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		iv, bounded := loopVar(loop)
		if !bounded {
			return true
		}
		collectLoop(fset, loop.Body, iv, 0, kernels, map[string]bool{}, res)
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if d, ok := declaredAccess(call); ok {
			res.Declared = append(res.Declared, d)
		}
		return true
	})
	res.Accesses = dedup(res.Accesses)
	res.Declared = dedup(res.Declared)
	return res, nil
}

// loopVar recognises the partitioned-loop idiom
//
//	for g := lo; g < hi; g++ { ... }
//
// where lo/hi descend from a Bounds() call (directly, or via the common
// `lo, hi := ph.Bounds()` assignment appearing anywhere in the file —
// tracking the exact dataflow is unnecessary for the paper's loop shape,
// so any int-bounded unit-stride loop whose bound identifiers are named
// lo/hi/start/end or *_iter qualifies).
func loopVar(loop *ast.ForStmt) (string, bool) {
	assign, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return "", false
	}
	name, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	inc, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC {
		return "", false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return "", false
	}
	hi, ok := boundIdent(cond.Y)
	if !ok {
		return "", false
	}
	lo, ok := boundIdent(assign.Rhs[0])
	if !ok {
		// `for g := 0; ...` style: only bounded loops over Bounds()
		// variables are partitioned.
		return "", false
	}
	if !boundsName(lo.Name) || !boundsName(hi.Name) {
		return "", false
	}
	return name.Name, true
}

// boundIdent resolves a loop bound to its underlying partition-bound
// identifier, looking through constant offsets: `lo`, `lo+1`, `hi-1`. The
// interior loop of an overlapped halo sweep (`for g := lo+1; g < hi-1;
// g++`) spans a subset of the partition, so the same regular-section model
// applies.
func boundIdent(e ast.Expr) (*ast.Ident, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x, true
	case *ast.ParenExpr:
		return boundIdent(x.X)
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return nil, false
		}
		if lit, ok := x.Y.(*ast.BasicLit); ok && lit.Kind == token.INT {
			return boundIdent(x.X)
		}
		return nil, false
	}
	return nil, false
}

// collectKernels finds row-kernel closures: single-parameter function
// literals bound to an identifier (`computeRow := func(g int) { ... }`).
// A partitioned loop that calls such a kernel with the loop index (±const)
// is analysed as if the kernel body were inlined at the call site, with
// the kernel's parameter standing for the shifted loop index.
func collectKernels(file *ast.File) map[string]*ast.FuncLit {
	kernels := map[string]*ast.FuncLit{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		name, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		params := lit.Type.Params.List
		if len(params) != 1 || len(params[0].Names) != 1 {
			return true
		}
		kernels[name.Name] = lit
		return true
	})
	return kernels
}

func boundsName(s string) bool {
	switch s {
	case "lo", "hi", "start", "end", "startIter", "endIter", "start_iter", "end_iter", "rlo", "rhi", "blo", "bhi":
		return true
	}
	return false
}

// collectLoop walks a partitioned loop (or inlined kernel) body for row
// references made at index iv±const; shift is the constant offset the call
// chain has already applied to iv (0 at the loop itself). Kernel calls
// recurse with the kernel parameter as the new index variable; inlining
// guards against self-recursive kernels.
func collectLoop(fset *token.FileSet, body ast.Node, iv string, shift int, kernels map[string]*ast.FuncLit, inlining map[string]bool, res *Result) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
			if lit := kernels[id.Name]; lit != nil && !inlining[id.Name] {
				off, refsLoop, err := offsetOf(call.Args[0], iv)
				if err != nil {
					res.Issues = append(res.Issues, Issue{
						Pos:    fset.Position(call.Pos()),
						Reason: fmt.Sprintf("%s: %v", id.Name, err),
					})
					return true
				}
				if refsLoop {
					param := lit.Type.Params.List[0].Names[0].Name
					inlining[id.Name] = true
					collectLoop(fset, lit.Body, param, shift+off, kernels, inlining, res)
					delete(inlining, id.Name)
				}
				return true
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rowMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		off, refsLoop, err := offsetOf(call.Args[0], iv)
		if err != nil {
			res.Issues = append(res.Issues, Issue{
				Pos:    fset.Position(call.Pos()),
				Reason: fmt.Sprintf("%s.%s: %v", recv.Name, sel.Sel.Name, err),
			})
			return true
		}
		if !refsLoop {
			return true // constant row; not a distributed reference
		}
		res.Accesses = append(res.Accesses, Access{
			Array: recv.Name,
			Write: writeMethods[sel.Sel.Name], // element stores are detected in the write pass
			Step:  1,
			Off:   off + shift,
		})
		return true
	})
}

// offsetOf resolves expressions of the form i, i+c, i-c, c+i to a constant
// offset from the loop variable; refsLoop reports whether the loop
// variable appears at all.
func offsetOf(e ast.Expr, iv string) (off int, refsLoop bool, err error) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == iv {
			return 0, true, nil
		}
		return 0, false, nil
	case *ast.BasicLit:
		return 0, false, nil
	case *ast.ParenExpr:
		return offsetOf(x.X, iv)
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return 0, false, fmt.Errorf("unsupported operator %v on loop index", x.Op)
		}
		l, lRefs, lerr := offsetOf(x.X, iv)
		if lerr != nil {
			return 0, false, lerr
		}
		rLit, rOk := x.Y.(*ast.BasicLit)
		if lRefs && rOk && rLit.Kind == token.INT {
			c, _ := strconv.Atoi(rLit.Value)
			if x.Op == token.SUB {
				c = -c
			}
			return l + c, true, nil
		}
		lLit, lOk := x.X.(*ast.BasicLit)
		r, rRefs, rerr := offsetOf(x.Y, iv)
		if rerr != nil {
			return 0, false, rerr
		}
		if rRefs && lOk && lLit.Kind == token.INT && x.Op == token.ADD {
			c, _ := strconv.Atoi(lLit.Value)
			return r + c, true, nil
		}
		if lRefs || rRefs {
			return 0, false, fmt.Errorf("non-constant offset from loop index")
		}
		return 0, false, nil
	default:
		// Any other expression containing the loop variable is beyond the
		// constant-offset model.
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == iv {
				found = true
			}
			return true
		})
		if found {
			return 0, false, fmt.Errorf("reference too complex for a regular section")
		}
		return 0, false, nil
	}
}

// AnalyzeFileWithWrites runs the full pipeline: AnalyzeFile plus a write
// pass that upgrades any access whose row expression occurs on the
// left-hand side of an assignment (`X.Row(i±c)[…] = …`), as the first
// argument of copy, or in an inc/dec statement.
func AnalyzeFileWithWrites(filename string, src any) (*Result, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}
	res, err := AnalyzeFile(filename, src)
	if err != nil {
		return nil, err
	}
	kernels := collectKernels(file)
	writes := map[string]map[int]bool{} // array -> offsets written
	record := func(e ast.Expr, iv string, shift int) {
		call := rowCallIn(e)
		if call == nil {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		off, refs, err := offsetOf(call.Args[0], iv)
		if err != nil || !refs {
			return
		}
		if writes[recv.Name] == nil {
			writes[recv.Name] = map[int]bool{}
		}
		writes[recv.Name][off+shift] = true
	}
	var scanWrites func(body ast.Node, iv string, shift int, inlining map[string]bool)
	scanWrites = func(body ast.Node, iv string, shift int, inlining map[string]bool) {
		ast.Inspect(body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					record(lhs, iv, shift)
				}
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok {
					if id.Name == "copy" && len(s.Args) == 2 {
						record(s.Args[0], iv, shift)
					} else if lit := kernels[id.Name]; lit != nil && len(s.Args) == 1 && !inlining[id.Name] {
						if off, refs, err := offsetOf(s.Args[0], iv); err == nil && refs {
							param := lit.Type.Params.List[0].Names[0].Name
							inlining[id.Name] = true
							scanWrites(lit.Body, param, shift+off, inlining)
							delete(inlining, id.Name)
						}
					}
				}
			case *ast.IncDecStmt:
				record(s.X, iv, shift)
			}
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		iv, bounded := loopVar(loop)
		if !bounded {
			return true
		}
		scanWrites(loop.Body, iv, 0, map[string]bool{})
		return true
	})
	for i, a := range res.Accesses {
		if writes[a.Array] != nil && writes[a.Array][a.Off] {
			res.Accesses[i].Write = true
		}
	}
	res.Accesses = dedup(res.Accesses)
	return res, nil
}

// rowCallIn digs a Row(...) call out of an index/slice expression chain.
func rowCallIn(e ast.Expr) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && rowMethods[sel.Sel.Name] && len(x.Args) > 0 {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// declaredAccess recognises an existing ph.AddAccess("A", mode, step, off)
// call in the source.
func declaredAccess(call *ast.CallExpr) (Access, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AddAccess" || len(call.Args) != 4 {
		return Access{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return Access{}, false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return Access{}, false
	}
	step, ok1 := intArg(call.Args[2])
	off, ok2 := intArg(call.Args[3])
	if !ok1 || !ok2 {
		return Access{}, false
	}
	write := false
	if modeSel, ok := call.Args[1].(*ast.SelectorExpr); ok {
		switch modeSel.Sel.Name {
		case "Write", "ReadWrite", "DMPI_WRITE", "DMPI_READWRITE":
			write = true
		}
	}
	return Access{Array: name, Write: write, Step: step, Off: off}, true
}

func intArg(e ast.Expr) (int, bool) {
	neg := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		neg = true
		e = u.X
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// dedup sorts and deduplicates accesses, merging read+write of the same
// (array, step, off) into a write.
func dedup(in []Access) []Access {
	type key struct {
		array     string
		step, off int
	}
	m := map[key]bool{}
	order := []key{}
	for _, a := range in {
		k := key{a.Array, a.Step, a.Off}
		if _, seen := m[k]; !seen {
			order = append(order, k)
		}
		m[k] = m[k] || a.Write
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].array != order[j].array {
			return order[i].array < order[j].array
		}
		return order[i].off < order[j].off
	})
	out := make([]Access, 0, len(order))
	for _, k := range order {
		out = append(out, Access{Array: k.array, Write: m[k], Step: k.step, Off: k.off})
	}
	return out
}

// Missing returns derived accesses with no matching declaration (same
// array, step and offset; a declared write covers a derived read).
func (r *Result) Missing() []Access {
	covered := func(a Access) bool {
		for _, d := range r.Declared {
			if d.Array == a.Array && d.Step == a.Step && d.Off == a.Off && (d.Write || !a.Write) {
				return true
			}
		}
		return false
	}
	var out []Access
	for _, a := range r.Accesses {
		if !covered(a) {
			out = append(out, a)
		}
	}
	return out
}
