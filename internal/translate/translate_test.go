package translate

import (
	"strings"
	"testing"
)

const jacobiSrc = `package main

func kernel(rt *Runtime, a, b *Dense, ph *Phase, n int) {
	for t := 0; t < 100; t++ {
		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			up, mid, down := b.Row(g-1), b.Row(g), b.Row(g+1)
			out := a.Row(g)
			for j := 1; j < n-1; j++ {
				out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
			}
		}
	}
}
`

func TestDeriveJacobiAccesses(t *testing.T) {
	res, err := AnalyzeFileWithWrites("jacobi.go", jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("issues: %v", res.Issues)
	}
	want := map[string]bool{ // "array off" -> write
		"a +0": false, // the element store is through `out`, a local alias —
		// detectable only with dataflow; the direct Row(g) read is derived
		"b -1": false,
		"b +0": false,
		"b +1": false,
	}
	if len(res.Accesses) != len(want) {
		t.Fatalf("derived %v, want %d accesses", res.Accesses, len(want))
	}
	for _, a := range res.Accesses {
		key := a.Array + " " + plus(a.Off)
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected access %v", a)
		}
		if a.Write != w {
			t.Fatalf("access %v write=%v, want %v", a, a.Write, w)
		}
		if a.Step != 1 {
			t.Fatalf("access %v step", a)
		}
	}
}

func plus(v int) string {
	if v >= 0 {
		return "+" + itoa(v)
	}
	return itoa(v)
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + itoa(v%10)
}

const directWriteSrc = `package main

func kernel(a *Dense, ph *Phase) {
	lo, hi := ph.Bounds()
	for i := lo; i < hi; i++ {
		a.Row(i)[0] = 1
		copy(a.Row(i+1), a.Row(i-1))
		a.Row(i)[2]++
	}
}
`

func TestWriteDetection(t *testing.T) {
	res, err := AnalyzeFileWithWrites("w.go", directWriteSrc)
	if err != nil {
		t.Fatal(err)
	}
	byOff := map[int]Access{}
	for _, a := range res.Accesses {
		byOff[a.Off] = a
	}
	if !byOff[0].Write {
		t.Fatalf("Row(i)[0]=… not detected as write: %v", res.Accesses)
	}
	if !byOff[1].Write {
		t.Fatalf("copy(Row(i+1),…) not detected as write: %v", res.Accesses)
	}
	if byOff[-1].Write {
		t.Fatalf("Row(i-1) wrongly a write: %v", res.Accesses)
	}
}

const sparseSrc = `package main

func kernel(s *Sparse, ph *Phase) {
	lo, hi := ph.Bounds()
	for g := lo; g < hi; g++ {
		for e := s.RowHead(g); e != nil; e = e.Next() {
			_ = e
		}
		s.Append(g, 0, 1)
		p := s.PackRow(g + 1)
		_ = p
	}
}
`

func TestSparseMethods(t *testing.T) {
	res, err := AnalyzeFileWithWrites("s.go", sparseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accesses) != 2 {
		t.Fatalf("accesses %v", res.Accesses)
	}
	if !res.Accesses[0].Write || res.Accesses[0].Off != 0 {
		t.Fatalf("Append access %v", res.Accesses[0])
	}
	if res.Accesses[1].Write || res.Accesses[1].Off != 1 {
		t.Fatalf("PackRow access %v", res.Accesses[1])
	}
}

const complexSrc = `package main

func kernel(a *Dense, ph *Phase, m int) {
	lo, hi := ph.Bounds()
	for i := lo; i < hi; i++ {
		_ = a.Row(i * 2)
		_ = a.Row(i + m)
	}
}
`

func TestUnresolvableReferencesReported(t *testing.T) {
	res, err := AnalyzeFileWithWrites("c.go", complexSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 2 {
		t.Fatalf("issues %v, want 2 (strided and symbolic offsets)", res.Issues)
	}
	for _, is := range res.Issues {
		if !strings.Contains(is.Reason, "a.Row") {
			t.Fatalf("issue lacks context: %v", is)
		}
	}
}

const constantRowSrc = `package main

func kernel(a *Dense, ph *Phase) {
	lo, hi := ph.Bounds()
	for i := lo; i < hi; i++ {
		_ = a.Row(0) // constant row: replicated data, not a distributed reference
	}
}
`

func TestConstantRowIgnored(t *testing.T) {
	res, err := AnalyzeFileWithWrites("k.go", constantRowSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accesses) != 0 || len(res.Issues) != 0 {
		t.Fatalf("constant row misclassified: %v %v", res.Accesses, res.Issues)
	}
}

const declaredSrc = `package main

func setup(ph *Phase) {
	ph.AddAccess("A", dynmpi.ReadWrite, 1, 0)
	ph.AddAccess("B", dynmpi.Read, 1, -1)
}

func kernel(A, B *Dense, ph *Phase) {
	lo, hi := ph.Bounds()
	for i := lo; i < hi; i++ {
		A.Row(i)[0] = B.Row(i-1)[0] + B.Row(i+1)[0]
	}
}
`

func TestMissingDeclarations(t *testing.T) {
	res, err := AnalyzeFileWithWrites("d.go", declaredSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Declared) != 2 {
		t.Fatalf("declared %v", res.Declared)
	}
	missing := res.Missing()
	// A(+0, write) is declared; B(-1, read) is declared; B(+1, read) is NOT.
	if len(missing) != 1 || missing[0].Array != "B" || missing[0].Off != 1 {
		t.Fatalf("missing %v, want the undeclared B(+1) read", missing)
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Array: "A", Write: true, Step: 1, Off: -1}
	if got := a.String(); got != `ph.AddAccess("A", dynmpi.ReadWrite, 1, -1)` {
		t.Fatalf("String = %s", got)
	}
	r := Access{Array: "B", Step: 1, Off: 2}
	if got := r.String(); got != `ph.AddAccess("B", dynmpi.Read, 1, +2)` {
		t.Fatalf("String = %s", got)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := AnalyzeFileWithWrites("bad.go", "not go"); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestRealApplications runs the analyzer over the repository's own
// applications and checks it derives sensible access lists.
func TestRealApplications(t *testing.T) {
	res, err := AnalyzeFileWithWrites("../apps/jacobi/jacobi.go", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Jacobi kernel reads src at -1/0/+1 and writes dst at 0; the
	// analyzer sees the local variable names (src/dst aliases of a/b).
	found := map[string]bool{}
	for _, a := range res.Accesses {
		found[a.Array+plus(a.Off)] = true
	}
	for _, want := range []string{"src-1", "src+0", "src+1", "dst+0"} {
		if !found[want] {
			t.Fatalf("jacobi analysis missing %s; got %v", want, res.Accesses)
		}
	}
}

// overlapSrc is the overlapped-halo idiom: the stencil lives in a
// row-kernel closure, boundary rows are computed outside any partitioned
// loop, and the interior loop runs over offset bounds (lo+1, hi-1) calling
// the kernel with a shifted index.
const overlapSrc = `package main

func kernel(a, b *Dense, ph *Phase, n int) {
	computeRow := func(g int) {
		up, mid, down := b.Row(g-1), b.Row(g), b.Row(g+1)
		copy(a.Row(g), mid)
		_ = up
		_ = down
	}
	for t := 0; t < 100; t++ {
		lo, hi := ph.Bounds()
		computeRow(lo)
		computeRow(hi - 1)
		for g := lo + 1; g < hi-1; g++ {
			computeRow(g + 1)
		}
	}
}
`

// TestDeriveKernelClosureAccesses pins the analyzer's closure-following:
// accesses inside a row-kernel closure are derived with offsets shifted by
// the call argument (here +1), offset loop bounds are recognised, and the
// copy through the kernel body still marks the write.
func TestDeriveKernelClosureAccesses(t *testing.T) {
	res, err := AnalyzeFileWithWrites("overlap.go", overlapSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("issues: %v", res.Issues)
	}
	want := map[string]bool{ // "array off" -> write
		"a +1": true,  // copy(a.Row(g), …) shifted by the g+1 call
		"b +0": false, // b.Row(g-1) shifted by +1
		"b +1": false,
		"b +2": false,
	}
	if len(res.Accesses) != len(want) {
		t.Fatalf("derived %v, want %d accesses", res.Accesses, len(want))
	}
	for _, a := range res.Accesses {
		key := a.Array + " " + plus(a.Off)
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected access %v", a)
		}
		if a.Write != w {
			t.Fatalf("access %v write=%v, want %v", a, a.Write, w)
		}
	}
}
