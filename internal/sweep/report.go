package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// CellStats aggregates one world's telemetry into the sweep report row:
// iteration-time percentiles across every (node, cycle) sample, the
// overlap and failure-loss totals, and the application-level outcome.
type CellStats struct {
	Cycles  int `json:"cycles"`  // iteration records aggregated
	Crashed int `json:"crashed"` // ranks that died to an injected fault

	// Per-cycle wall time (compute + comm + wait) percentiles, seconds.
	IterP50 float64 `json:"iter_p50_s"`
	IterP90 float64 `json:"iter_p90_s"`
	IterP99 float64 `json:"iter_p99_s"`

	// HiddenWireS is the total wire time the overlap machinery hid behind
	// computation, across all nodes, seconds.
	HiddenWireS float64 `json:"hidden_wire_s"`
	// LostRows is the total rows declared lost by failure recoveries (zero
	// when replication or a fault-free run preserved everything).
	LostRows int `json:"lost_rows"`

	Redists  int     `json:"redists"`
	Elapsed  float64 `json:"elapsed_s"` // virtual-time makespan
	Checksum float64 `json:"checksum"`
	CheckInt int64   `json:"check_int,omitempty"`
}

// buildStats folds a world's record stream and application result into
// CellStats. Records are sorted first so the aggregation order never
// depends on emission interleaving across rank goroutines.
func buildStats(recs []telemetry.Record, res apps.Result) CellStats {
	telemetry.Sort(recs)
	var st CellStats
	var samples []float64
	for _, rec := range recs {
		switch v := rec.(type) {
		case telemetry.IterationRecord:
			samples = append(samples, v.ComputeS+v.CommS+v.WaitS)
			st.HiddenWireS += float64(v.HiddenWireNs) / 1e9
		case telemetry.RedistRecord:
			st.LostRows += v.LostRows
		}
	}
	st.Cycles = len(samples)
	sort.Float64s(samples)
	st.IterP50 = percentile(samples, 50)
	st.IterP90 = percentile(samples, 90)
	st.IterP99 = percentile(samples, 99)
	st.Redists = res.Redists
	st.Elapsed = res.Elapsed
	st.Checksum = res.Checksum
	st.CheckInt = res.CheckInt
	for _, rs := range res.Stats {
		if rs.Crashed {
			st.Crashed++
		}
	}
	return st
}

// percentile returns the nearest-rank p-th percentile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// WriteText renders the deterministic report: a header, one "cell" line
// per grid point in enumeration order, and a trailing summary count. All
// wall-clock facts go on lines prefixed "# wall-time:" so a consumer can
// strip exactly those (grep -v '^# wall-time:') and byte-compare the rest
// across runs, pool widths and machines.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# sweep report: cells=%d\n", len(r.Cells))
	fmt.Fprintf(w, "# columns: cell | cycles crashed | iter p50/p90/p99 (s) | hidden-wire (s) | lost-rows | redists | elapsed (s) | checksum\n")
	failed := 0
	for _, c := range r.Cells {
		if c.Err != "" {
			failed++
			fmt.Fprintf(w, "cell %-28s | error: %s\n", c.Key, c.Err)
			continue
		}
		s := c.Stats
		check := fmtF(s.Checksum)
		if s.CheckInt != 0 {
			check = fmt.Sprintf("int:%d", s.CheckInt)
		}
		fmt.Fprintf(w, "cell %-28s | %4d %d | %s %s %s | %s | %4d | %2d | %s | %s\n",
			c.Key, s.Cycles, s.Crashed,
			fmtF(s.IterP50), fmtF(s.IterP90), fmtF(s.IterP99),
			fmtF(s.HiddenWireS), s.LostRows, s.Redists, fmtF(s.Elapsed), check)
	}
	fmt.Fprintf(w, "# sweep done: cells=%d failed=%d\n", len(r.Cells), failed)
	fmt.Fprintf(w, "# wall-time: %.3fs jobs=%d gomaxprocs=%d rounds=%d\n",
		r.WallSeconds, r.Jobs, r.GoMaxProcs, r.Steps)
}

// fmtF formats a float deterministically with full round-trip precision:
// identical bits always render identically.
func fmtF(v float64) string {
	return fmt.Sprintf("%.6g", v)
}

// WriteJSONL writes one JSON object per cell, in enumeration order. The
// stream carries no wall-clock fields, so it is byte-comparable across
// runs the same way the text report's non-wall lines are.
func (r *Result) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Cells {
		if err := enc.Encode(&r.Cells[i]); err != nil {
			return err
		}
	}
	return nil
}

// StreamWriter emits cell rows append-only, in enumeration (Cell.Index)
// order, while accepting them in whatever completion order the scheduler
// delivers. A row is held only until every lower-indexed cell has been
// written, then flushed as part of the contiguous frontier — so a consumer
// tailing the file sees ordered progress, every byte is written exactly
// once, and after the last Add the file is byte-identical to WriteJSONL.
type StreamWriter struct {
	enc     *json.Encoder
	next    int // lowest index not yet written
	pending map[int]CellResult
	err     error
}

// NewStreamWriter returns a writer streaming to w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{enc: json.NewEncoder(w), pending: map[int]CellResult{}}
}

// Add accepts one finalized cell and flushes the in-order frontier. Safe to
// use as Options.OnCell directly (the scheduler calls it from one
// goroutine). After the first write error Add becomes a no-op; check Err.
func (s *StreamWriter) Add(cr CellResult) {
	if s.err != nil {
		return
	}
	s.pending[cr.Cell.Index] = cr
	for {
		row, ok := s.pending[s.next]
		if !ok {
			return
		}
		if err := s.enc.Encode(&row); err != nil {
			s.err = err
			return
		}
		delete(s.pending, s.next)
		s.next++
	}
}

// Err reports the first write error, if any.
func (s *StreamWriter) Err() error { return s.err }

// Pending reports rows still held back by an enumeration gap. Zero once
// every cell of a completed sweep has been added.
func (s *StreamWriter) Pending() int { return len(s.pending) }
