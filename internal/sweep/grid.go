// Package sweep multiplexes many deterministic virtual-time worlds under a
// single scheduler. A Grid enumerates a parameter space (scenario × ranks ×
// grace period × overlap × faults × replication × one-sided commits ×
// elastic resize) into Cells; the engine in
// engine.go runs each cell as its own goroutine-per-rank world behind a
// core.WorldGate and advances the active worlds in global virtual-time
// order, stepping the globally-earliest ones concurrently.
//
// Every world is deterministic in virtual time on its own, and the gate's
// pacing never touches virtual clocks, PRNG streams or message order, so
// the per-cell results are independent of worker-pool width, GOMAXPROCS
// and admission order. The report writers in report.go keep wall-clock
// information on segregated "# wall-time:" lines so that everything else
// is byte-comparable across runs.
package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Cell is one point of the parameter grid.
type Cell struct {
	// Index is the cell's position in Grid.Cells() enumeration order; it is
	// the stable sort key of every report.
	Index int
	// Scenario names the application: "jacobi", "sor", "cg" or "particles".
	Scenario string
	// Ranks is the world size.
	Ranks int
	// GP is the adaptation grace period in phase cycles.
	GP int
	// Overlap enables communication/computation overlap where the scenario
	// supports it (jacobi, sor); cg and particles ignore it.
	Overlap bool
	// Fault selects the injected fault: "none" or "crash" (the CI crash
	// scenario, Grid.CrashNode at Grid.CrashCycle).
	Fault string
	// Replicate enables buddy replication of dense arrays.
	Replicate bool
	// RMA routes the data movers through one-sided windows: redistribution
	// commits run in RedistRMA mode and replica refreshes (when Replicate
	// is set) use the deferred-epoch one-sided path (core.Config.ReplicaRMA).
	RMA bool
	// Resize selects elastic membership change: "none", "grow" (the world
	// gains Grid.ResizeAdd timed arrivals at Grid.ResizeCycle and
	// auto-grows into them mid-run), or "growskew" (the same growth, but a
	// competing process lands on node 0 two cycles before the arrivals, so
	// the diff schedule redistributes into an already-skewed world). Empty
	// means "none".
	Resize string
}

// Key renders the cell as a stable, human-greppable identifier, e.g.
// "jacobi/r4/gp3/ov1/fnone/rep0/rma0/rznone".
func (c Cell) Key() string {
	rz := c.Resize
	if rz == "" {
		rz = "none"
	}
	return fmt.Sprintf("%s/r%d/gp%d/ov%s/f%s/rep%s/rma%s/rz%s",
		c.Scenario, c.Ranks, c.GP, bit(c.Overlap), c.Fault, bit(c.Replicate), bit(c.RMA), rz)
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Grid is a full sweep specification: the axes that are crossed into cells
// plus the shared workload knobs every cell runs under.
type Grid struct {
	// Axes. The cross product of these, in this nesting order (scenario
	// outermost, elastic resize innermost), is the cell list.
	Scenarios []string
	Ranks     []int
	GPs       []int
	Overlaps  []bool
	Faults    []string
	Reps      []bool
	RMAs      []bool
	Resizes   []string

	// Workload knobs shared by all cells.
	Rows, Cols  int     // grid size (jacobi/sor/particles); cg uses Rows*Cols/Scale
	Iters       int     // phase cycles per world
	CostPerElem float64 // modelled per-element compute cost, ns
	CPNode      int     // node receiving the competing process
	CPCycle     int     // phase cycle at which it arrives
	CrashNode   int     // node killed by "crash" cells
	CrashCycle  int     // phase cycle of the crash
	ResizeCycle int     // phase cycle the "grow" arrivals come up at
	ResizeAdd   int     // nodes added by "grow" cells
	RingCap     int     // per-world telemetry ring capacity
}

// Smoke returns the CI-sized grid: 2 scenarios × 2 world sizes × fault
// none/crash × replication on/off × one-sided commits on/off × resize
// none/grow/growskew = 96 cells (overlap pinned on — its off/on
// equivalence has its own dedicated tests), each a few dozen phase cycles,
// small enough to sweep in seconds yet exercising every adaptation path
// (CP arrival with unconditional drop, crash recovery with and without
// replicas, both data movers, and elastic growth into arrival capacity —
// including growth into a world already skewed by a competing process).
func Smoke() Grid {
	return Grid{
		Scenarios: []string{"jacobi", "sor"},
		Ranks:     []int{4, 8},
		GPs:       []int{3},
		Overlaps:  []bool{true},
		Faults:    []string{"none", "crash"},
		Reps:      []bool{false, true},
		RMAs:      []bool{false, true},
		Resizes:   []string{"none", "grow", "growskew"},

		// CostPerElem is high enough that the competing process visibly
		// degrades its node on a 96x96 grid, so the drop path actually
		// fires in the fault-free cells.
		Rows: 96, Cols: 96, Iters: 30, CostPerElem: 40e3,
		CPNode: 1, CPCycle: 10,
		CrashNode: 2, CrashCycle: 12,
		ResizeCycle: 18, ResizeAdd: 1,
		RingCap: 1 << 15,
	}
}

// Cells enumerates the grid in deterministic nesting order and assigns
// each cell its Index.
func (g *Grid) Cells() []Cell {
	var cells []Cell
	for _, scen := range g.Scenarios {
		for _, ranks := range g.Ranks {
			for _, gp := range g.GPs {
				for _, ov := range g.Overlaps {
					for _, f := range g.Faults {
						for _, rep := range g.Reps {
							for _, rma := range g.RMAs {
								for _, rz := range g.Resizes {
									cells = append(cells, Cell{
										Index:    len(cells),
										Scenario: scen, Ranks: ranks, GP: gp,
										Overlap: ov, Fault: f, Replicate: rep, RMA: rma,
										Resize: rz,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Validate rejects grids that cannot run: unknown axis values, scenario
// events targeting nodes outside the smallest world, crashes scheduled
// after the run ends.
func (g *Grid) Validate() error {
	if len(g.Scenarios) == 0 || len(g.Ranks) == 0 || len(g.GPs) == 0 ||
		len(g.Overlaps) == 0 || len(g.Faults) == 0 || len(g.Reps) == 0 ||
		len(g.RMAs) == 0 || len(g.Resizes) == 0 {
		return fmt.Errorf("sweep: empty axis (need scen/ranks/gp/overlap/fault/rep/rma/resize)")
	}
	minRanks := g.Ranks[0]
	for _, r := range g.Ranks {
		if r < 2 {
			return fmt.Errorf("sweep: world size %d too small (need >= 2 ranks)", r)
		}
		if r < minRanks {
			minRanks = r
		}
	}
	for _, s := range g.Scenarios {
		switch s {
		case "jacobi", "sor", "cg", "particles":
		default:
			return fmt.Errorf("sweep: unknown scenario %q (want jacobi|sor|cg|particles)", s)
		}
	}
	for _, f := range g.Faults {
		switch f {
		case "none", "crash":
		default:
			return fmt.Errorf("sweep: unknown fault kind %q (want none|crash)", f)
		}
		if f == "crash" {
			if g.CrashNode >= minRanks {
				return fmt.Errorf("sweep: crash node %d outside smallest world (%d ranks)", g.CrashNode, minRanks)
			}
			if g.CrashCycle >= g.Iters {
				return fmt.Errorf("sweep: crash cycle %d at/after last iteration %d", g.CrashCycle, g.Iters)
			}
		}
	}
	for _, gp := range g.GPs {
		if gp < 1 {
			return fmt.Errorf("sweep: grace period %d < 1", gp)
		}
	}
	for _, rz := range g.Resizes {
		switch rz {
		case "none", "grow", "growskew":
		default:
			return fmt.Errorf("sweep: unknown resize kind %q (want none|grow|growskew)", rz)
		}
		if rz == "grow" || rz == "growskew" {
			if g.ResizeAdd < 1 {
				return fmt.Errorf("sweep: grow cells need ResizeAdd >= 1, have %d", g.ResizeAdd)
			}
			if g.ResizeCycle < 1 || g.ResizeCycle >= g.Iters {
				return fmt.Errorf("sweep: resize cycle %d outside run of %d iterations", g.ResizeCycle, g.Iters)
			}
		}
		if rz == "growskew" && g.ResizeCycle < 3 {
			return fmt.Errorf("sweep: growskew needs ResizeCycle >= 3 (skew lands at ResizeCycle-2), have %d", g.ResizeCycle)
		}
	}
	if g.CPNode >= minRanks {
		return fmt.Errorf("sweep: CP node %d outside smallest world (%d ranks)", g.CPNode, minRanks)
	}
	if g.Rows < 8 || g.Cols < 8 || g.Iters < 1 {
		return fmt.Errorf("sweep: degenerate workload %dx%dx%d", g.Rows, g.Cols, g.Iters)
	}
	return nil
}

// ParseSpec overlays a -grid specification onto g. The spec is a
// semicolon-separated list of key=value(,value...) entries; axis keys take
// comma-separated lists, workload keys take a single value:
//
//	scen=jacobi,sor;ranks=4,8;gp=3,5;overlap=0,1;fault=none,crash;rep=0,1;rma=0,1;resize=none,grow,growskew
//	rows=96;cols=96;iters=30;cost=10000;cpnode=1;cpcycle=10;crashnode=2;crashcycle=12;resizecycle=18;resizeadd=1
//
// Unknown keys are an error; unmentioned keys keep their current values.
func (g *Grid) ParseSpec(spec string) error {
	for _, kv := range strings.Split(spec, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("sweep: bad -grid entry %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "scen":
			g.Scenarios = splitList(val)
		case "ranks":
			g.Ranks, err = intList(val)
		case "gp":
			g.GPs, err = intList(val)
		case "overlap":
			g.Overlaps, err = boolList(val)
		case "fault":
			g.Faults = splitList(val)
		case "rep":
			g.Reps, err = boolList(val)
		case "rma":
			g.RMAs, err = boolList(val)
		case "resize":
			g.Resizes = splitList(val)
		case "rows":
			g.Rows, err = strconv.Atoi(val)
		case "cols":
			g.Cols, err = strconv.Atoi(val)
		case "iters":
			g.Iters, err = strconv.Atoi(val)
		case "cost":
			g.CostPerElem, err = strconv.ParseFloat(val, 64)
		case "cpnode":
			g.CPNode, err = strconv.Atoi(val)
		case "cpcycle":
			g.CPCycle, err = strconv.Atoi(val)
		case "crashnode":
			g.CrashNode, err = strconv.Atoi(val)
		case "crashcycle":
			g.CrashCycle, err = strconv.Atoi(val)
		case "resizecycle":
			g.ResizeCycle, err = strconv.Atoi(val)
		case "resizeadd":
			g.ResizeAdd, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("sweep: unknown -grid key %q", key)
		}
		if err != nil {
			return fmt.Errorf("sweep: bad -grid value for %s: %v", key, err)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func intList(s string) ([]int, error) {
	var out []int
	for _, v := range splitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func boolList(s string) ([]bool, error) {
	var out []bool
	for _, v := range splitList(s) {
		switch v {
		case "0", "false":
			out = append(out, false)
		case "1", "true":
			out = append(out, true)
		default:
			return nil, fmt.Errorf("want 0/1/true/false, got %q", v)
		}
	}
	return out, nil
}
