package sweep

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Options configures a sweep run.
type Options struct {
	Grid Grid
	// Jobs is the worker-pool width: how many worlds step concurrently in
	// one scheduler round. <= 0 means 1. Jobs affects only wall-clock
	// time; the report is byte-identical for any value.
	Jobs int
	// OnCell, when non-nil, is called from the scheduler goroutine each
	// time a cell finalizes — in completion order, which depends on Jobs
	// and admission interleaving. Streaming consumers emit rows live from
	// it and re-sort by Cell.Index at the end; the cell contents themselves
	// are deterministic, only the callback order is not.
	OnCell func(CellResult)
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell  Cell      `json:"-"`
	Key   string    `json:"cell"`
	Err   string    `json:"error,omitempty"`
	Stats CellStats `json:"stats"`
}

// Result is a completed sweep: per-cell results in enumeration (Index)
// order plus wall-clock facts that the report writers keep segregated
// from the deterministic lines.
type Result struct {
	Cells []CellResult

	// Wall-clock facts; never mixed into cmp-able report lines.
	WallSeconds float64
	Jobs        int
	GoMaxProcs  int
	Steps       int // scheduler rounds executed
}

// entry is one active world in the scheduler's priority queue, ordered by
// (next event's virtual time, cell index) — the cell index tiebreak makes
// the pop order fully deterministic even between worlds whose clocks
// coincide.
type entry struct {
	t vclock.Time
	w *worldRun
}

type worldHeap []entry

func (h worldHeap) Len() int { return len(h) }
func (h worldHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].w.cell.Index < h[j].w.cell.Index
}
func (h worldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *worldHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *worldHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the sweep: it admits worlds from the grid's cell list into
// a bounded active set, keeps the active worlds in a priority queue by the
// virtual time of their next event, and each round pops the globally
// earliest (up to Jobs) worlds and steps them one phase-cycle wave each,
// concurrently. Worlds whose gates report no pending events are finalized:
// their telemetry ring is folded into per-cell statistics and the slot is
// handed to the next queued cell.
//
// The report is deterministic: each world is deterministic in virtual time
// on its own and the gate's pacing is pure wall-clock control, so neither
// Jobs, nor GOMAXPROCS, nor admission interleaving can change any cell's
// records — only the wall-clock lines differ between runs.
func Run(o Options) (*Result, error) {
	if err := o.Grid.Validate(); err != nil {
		return nil, err
	}
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	// Bounded admission: enough live worlds to keep the pool busy without
	// paying goroutine residency for the whole grid at once.
	maxActive := 2 * jobs
	if maxActive < 8 {
		maxActive = 8
	}

	start := time.Now()
	cells := o.Grid.Cells()
	res := &Result{
		Cells:      make([]CellResult, len(cells)),
		Jobs:       jobs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	var h worldHeap
	active := 0
	next := 0 // next cell to admit

	finalize := func(w *worldRun) {
		out := <-w.done
		cr := CellResult{Cell: w.cell, Key: w.cell.Key()}
		if out.err != nil {
			cr.Err = out.err.Error()
		} else {
			cr.Stats = buildStats(w.ring.Records(), out.res)
		}
		res.Cells[w.cell.Index] = cr
		active--
		if o.OnCell != nil {
			o.OnCell(cr)
		}
	}
	// classify routes a quiescent world: back into the queue if it will run
	// another cycle, into finalize if it has completed.
	classify := func(w *worldRun) {
		if w.gate.HasPendingEvents() {
			heap.Push(&h, entry{t: w.gate.PeekNextEventTime(), w: w})
		} else {
			finalize(w)
		}
	}

	for next < len(cells) || h.Len() > 0 {
		for next < len(cells) && active < maxActive {
			w := startWorld(&o.Grid, cells[next])
			next++
			active++
			classify(w)
		}
		if h.Len() == 0 {
			continue
		}
		round := jobs
		if round > h.Len() {
			round = h.Len()
		}
		batch := make([]*worldRun, 0, round)
		for i := 0; i < round; i++ {
			batch = append(batch, heap.Pop(&h).(entry).w)
		}
		var wg sync.WaitGroup
		for _, w := range batch {
			wg.Add(1)
			go func(w *worldRun) {
				defer wg.Done()
				w.gate.ProcessNextEvent()
			}(w)
		}
		wg.Wait()
		res.Steps++
		for _, w := range batch {
			classify(w)
		}
	}

	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}
