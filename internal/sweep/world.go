package sweep

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/cg"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/particles"
	"repro/internal/apps/sor"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// worldOutcome is what a finished world delivers: the application result or
// the run error.
type worldOutcome struct {
	res apps.Result
	err error
}

// worldRun is one in-flight cell: its gate (the vclock.Stepper the engine
// schedules by), its telemetry ring, and the channel its application
// goroutine reports on when mpi.Run returns.
type worldRun struct {
	cell Cell
	gate *core.WorldGate
	ring *telemetry.Ring
	done chan worldOutcome
}

// startWorld launches one cell's world: a uniform cluster of cell.Ranks
// nodes with the grid's competing-process arrival (and, for crash cells,
// the CI crash fault), every rank parking at each BeginCycle on the
// returned gate. The application runs on its own goroutine tree; the
// caller advances it through gate.ProcessNextEvent and collects the
// outcome from done once HasPendingEvents reports false.
func startWorld(g *Grid, c Cell) *worldRun {
	spec := cluster.Uniform(c.Ranks).With(cluster.CycleEvent(g.CPNode, g.CPCycle, +1))
	if c.Fault == "crash" {
		spec.Faults = append(spec.Faults, fault.CrashAtCycle(g.CrashNode, g.CrashCycle))
	}
	if c.Resize == "grow" || c.Resize == "growskew" {
		// Timed arrivals: the world auto-grows into them at ResizeCycle; the
		// gate is extended by the runtime's grow path (WorldGate.Grow) before
		// the joiners spawn, so the controller accounts for them.
		for i := 0; i < g.ResizeAdd; i++ {
			spec = spec.WithArrival(1.0, g.ResizeCycle)
		}
	}
	if c.Resize == "growskew" {
		// A second competing process degrades node 0 just before the
		// arrivals, so the grow's diff schedule redistributes under skew.
		spec = spec.With(cluster.CycleEvent(0, g.ResizeCycle-2, +1))
	}
	gate := core.NewWorldGate(c.Ranks)
	cl := cluster.New(spec)
	cl.SetRankExitHook(gate.RankExit)
	ring := telemetry.NewRing(g.RingCap)

	base := core.DefaultConfig()
	base.Drop = core.DropAlways
	base.GracePeriod = c.GP
	base.Replicate = c.Replicate
	if c.RMA {
		base.RedistMode = core.RedistRMA
		base.ReplicaRMA = true
	}
	base.Telemetry = ring
	base.Pacer = gate

	w := &worldRun{cell: c, gate: gate, ring: ring, done: make(chan worldOutcome, 1)}
	go func() {
		var out worldOutcome
		switch c.Scenario {
		case "jacobi":
			cfg := jacobi.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = g.Rows, g.Cols, g.Iters, g.CostPerElem
			cfg.Overlap = c.Overlap
			cfg.Core = base
			out.res, out.err = jacobi.Run(cl, cfg)
		case "sor":
			cfg := sor.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = g.Rows, g.Cols, g.Iters, g.CostPerElem
			cfg.Overlap = c.Overlap
			cfg.Core = base
			out.res, out.err = sor.Run(cl, cfg)
		case "cg":
			cfg := cg.DefaultConfig()
			// Keep the system proportional to the sweep workload; cg has no
			// overlapped variant, so Overlap is ignored.
			cfg.N = g.Rows * g.Cols / 8
			cfg.Iters = g.Iters
			cfg.Core = base
			out.res, out.err = cg.Run(cl, cfg)
		case "particles":
			cfg := particles.DefaultConfig()
			cfg.Rows, cfg.Cols, cfg.Steps = g.Rows, g.Cols, g.Iters
			cfg.Core = base
			out.res, out.err = particles.Run(cl, cfg)
		default:
			out.err = fmt.Errorf("sweep: unknown scenario %q", c.Scenario)
		}
		// Belt and braces: by the time Run returns every rank has exited
		// through the cluster hook, but an error path that never spawned
		// ranks must not wedge the gate. RankExit is idempotent.
		for r := 0; r < c.Ranks; r++ {
			gate.RankExit(r)
		}
		w.done <- out
	}()
	return w
}
