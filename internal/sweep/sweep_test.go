package sweep

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/jacobi"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// stepScenario is the harness case for the step-primitive equivalence
// tests: the smoke workload's jacobi cell with a competing-process arrival,
// a mid-run crash and unconditional drop — every adaptation path a gated
// run must reproduce exactly.
func stepScenario() (*Grid, Cell) {
	g := Smoke()
	c := Cell{Scenario: "jacobi", Ranks: 8, GP: 3, Overlap: false, Fault: "crash", Replicate: false}
	return &g, c
}

// monolithicTrace runs the cell's world without a gate and returns its
// sorted record stream plus the application result.
func monolithicTrace(t *testing.T, g *Grid, c Cell) ([]telemetry.Record, apps.Result) {
	t.Helper()
	ring := telemetry.NewRing(g.RingCap)
	base := core.DefaultConfig()
	base.Drop = core.DropAlways
	base.GracePeriod = c.GP
	base.Replicate = c.Replicate
	base.Telemetry = ring
	cfg := jacobi.DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters, cfg.CostPerElem = g.Rows, g.Cols, g.Iters, g.CostPerElem
	cfg.Overlap = c.Overlap
	cfg.Core = base
	spec := cluster.Uniform(c.Ranks).With(cluster.CycleEvent(g.CPNode, g.CPCycle, +1))
	spec.Faults = append(spec.Faults, fault.CrashAtCycle(g.CrashNode, g.CrashCycle))
	res, err := jacobi.Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatalf("monolithic run: %v", err)
	}
	recs := ring.Records()
	telemetry.Sort(recs)
	return recs, res
}

func jsonl(t *testing.T, recs []telemetry.Record) string {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, recs); err != nil {
		t.Fatalf("encode records: %v", err)
	}
	return buf.String()
}

// TestStepwiseMatchesMonolithic drives a world one ProcessNextEvent at a
// time from outside and asserts its telemetry is byte-identical to the same
// world run monolithically: the gate is pure wall-clock control and leaves
// no trace in virtual time.
func TestStepwiseMatchesMonolithic(t *testing.T) {
	g, c := stepScenario()
	wantRecs, wantRes := monolithicTrace(t, g, c)
	want := jsonl(t, wantRecs)

	w := startWorld(g, c)
	steps := 0
	for w.gate.HasPendingEvents() {
		last := w.gate.PeekNextEventTime()
		w.gate.ProcessNextEvent()
		steps++
		if w.gate.HasPendingEvents() {
			if next := w.gate.PeekNextEventTime(); next < last {
				t.Fatalf("step %d: next event time %v went backwards from %v", steps, next, last)
			}
		}
	}
	out := <-w.done
	if out.err != nil {
		t.Fatalf("gated run: %v", out.err)
	}
	if steps != g.Iters {
		t.Errorf("gated run took %d steps, want %d (one per phase cycle)", steps, g.Iters)
	}
	recs := w.ring.Records()
	telemetry.Sort(recs)
	if got := jsonl(t, recs); got != want {
		t.Errorf("stepwise trace differs from monolithic run (%d vs %d bytes)", len(got), len(want))
	}
	if out.res.Checksum != wantRes.Checksum || out.res.Elapsed != wantRes.Elapsed || out.res.Redists != wantRes.Redists {
		t.Errorf("stepwise result %+v != monolithic %+v", out.res, wantRes)
	}
}

// TestWorldGateCrashDoesNotWedge pins the rank-exit wiring: a world whose
// ranks die or finish must report no pending events instead of blocking
// the controller forever.
func TestWorldGateCrashDoesNotWedge(t *testing.T) {
	g, c := stepScenario()
	w := startWorld(g, c)
	for w.gate.HasPendingEvents() {
		w.gate.ProcessNextEvent()
	}
	out := <-w.done
	if out.err != nil {
		t.Fatalf("run: %v", out.err)
	}
	crashed := 0
	for _, rs := range out.res.Stats {
		if rs.Crashed {
			crashed++
		}
	}
	if crashed != 1 {
		t.Fatalf("want exactly 1 crashed rank, got %d", crashed)
	}
	// Quiescent and complete: further step calls are harmless no-ops.
	w.gate.ProcessNextEvent()
	if w.gate.HasPendingEvents() {
		t.Error("completed world still reports pending events")
	}
}

// smokeReport runs the smoke grid at the given pool width and returns the
// deterministic report (wall-time lines stripped).
func smokeReport(t *testing.T, jobs int) string {
	t.Helper()
	r, err := Run(Options{Grid: Smoke(), Jobs: jobs})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	var kept []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# wall-time:") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestSweepDeterministicAcrossJobs is the engine's determinism contract:
// the smoke report is byte-identical between a serial pool and a wide pool
// under a different GOMAXPROCS. Run with -race in CI.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke grid; skipped in -short")
	}
	serial := smokeReport(t, 1)

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	wide := smokeReport(t, 8)

	if serial != wide {
		t.Errorf("report differs between -jobs 1 and -jobs 8/GOMAXPROCS=4")
	}
	cells := strings.Count(serial, "\ncell ")
	if cells < 48 {
		t.Errorf("smoke grid has %d cells, want >= 48", cells)
	}
	if !strings.Contains(serial, "failed=0") {
		t.Errorf("smoke sweep reported failures:\n%s", serial)
	}
}

// TestSmokeGridCoversAxes pins the smoke grid shape: every axis value
// appears, and the enumeration covers the full cross product.
func TestSmokeGridCoversAxes(t *testing.T) {
	g := Smoke()
	if err := g.Validate(); err != nil {
		t.Fatalf("smoke grid invalid: %v", err)
	}
	cells := g.Cells()
	want := len(g.Scenarios) * len(g.Ranks) * len(g.GPs) * len(g.Overlaps) * len(g.Faults) * len(g.Reps) * len(g.RMAs) * len(g.Resizes)
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	if len(cells) < 48 {
		t.Fatalf("smoke grid has %d cells, want >= 48", len(cells))
	}
	keys := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries Index %d", i, c.Index)
		}
		if keys[c.Key()] {
			t.Fatalf("duplicate cell key %s", c.Key())
		}
		keys[c.Key()] = true
	}
}

// TestStreamedCellsMatchReport pins the -stream contract: rows delivered
// through OnCell, re-sorted into enumeration order, encode byte-identically
// to the batch WriteJSONL report, and every cell is delivered exactly once.
func TestStreamedCellsMatchReport(t *testing.T) {
	g := Smoke()
	if err := g.ParseSpec("scen=jacobi;ranks=4;overlap=0;iters=16;resizecycle=8"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	var streamed []CellResult
	r, err := Run(Options{Grid: g, Jobs: 4, OnCell: func(cr CellResult) {
		streamed = append(streamed, cr)
	}})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(streamed) != len(r.Cells) {
		t.Fatalf("OnCell delivered %d cells, want %d", len(streamed), len(r.Cells))
	}
	sort.Slice(streamed, func(i, j int) bool { return streamed[i].Cell.Index < streamed[j].Cell.Index })
	var live bytes.Buffer
	enc := json.NewEncoder(&live)
	for i := range streamed {
		if err := enc.Encode(&streamed[i]); err != nil {
			t.Fatalf("encode streamed cell: %v", err)
		}
	}
	var batch bytes.Buffer
	if err := r.WriteJSONL(&batch); err != nil {
		t.Fatalf("batch report: %v", err)
	}
	if !bytes.Equal(live.Bytes(), batch.Bytes()) {
		t.Error("re-sorted streamed rows differ from the batch JSONL report")
	}
}

func TestParseSpec(t *testing.T) {
	g := Smoke()
	err := g.ParseSpec("scen=jacobi;ranks=4;gp=7;overlap=1;fault=none;rep=0;rma=1;resize=grow;rows=64;cols=48;iters=20;cost=500;resizecycle=12;resizeadd=2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(g.Cells()) != 1 {
		t.Fatalf("want 1 cell, got %d", len(g.Cells()))
	}
	c := g.Cells()[0]
	if c.Scenario != "jacobi" || c.Ranks != 4 || c.GP != 7 || !c.Overlap || c.Fault != "none" || c.Replicate || !c.RMA || c.Resize != "grow" {
		t.Errorf("unexpected cell %+v", c)
	}
	if g.Rows != 64 || g.Cols != 48 || g.Iters != 20 || g.CostPerElem != 500 || g.ResizeCycle != 12 || g.ResizeAdd != 2 {
		t.Errorf("workload knobs not applied: %+v", g)
	}
	for _, bad := range []string{"bogus=1", "ranks=x", "overlap=maybe", "scen"} {
		g := Smoke()
		if err := g.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	for _, invalid := range []string{"scen=quux", "ranks=1", "fault=flood", "iters=0", "resize=shuffle", "resize=grow;resizeadd=0", "resize=grow;resizecycle=99"} {
		g := Smoke()
		if err := g.ParseSpec(invalid); err != nil {
			t.Fatalf("parse %q: %v", invalid, err)
		}
		if err := g.Validate(); err == nil {
			t.Errorf("Validate accepted %q", invalid)
		}
	}
}

// countingWriter tallies every byte delivered through Write, so a test can
// assert each byte was written exactly once (linear write amplification).
type countingWriter struct {
	buf     bytes.Buffer
	written int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.written += len(p)
	return c.buf.Write(p)
}

// TestStreamWriterByteIdentical feeds the in-order flush frontier a sweep's
// cells in several adversarial completion orders: the output must be
// byte-identical to the batch WriteJSONL report every time, with nothing
// pending at the end and every byte written exactly once.
func TestStreamWriterByteIdentical(t *testing.T) {
	g := Smoke()
	if err := g.ParseSpec("scen=jacobi;ranks=4;overlap=0;iters=16;resizecycle=8"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Run(Options{Grid: g, Jobs: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var batch bytes.Buffer
	if err := r.WriteJSONL(&batch); err != nil {
		t.Fatalf("batch report: %v", err)
	}
	n := len(r.Cells)
	orders := map[string][]int{
		"forward":    make([]int, n),
		"reverse":    make([]int, n),
		"evens-odds": nil,
	}
	for i := 0; i < n; i++ {
		orders["forward"][i] = i
		orders["reverse"][i] = n - 1 - i
	}
	for i := 0; i < n; i += 2 {
		orders["evens-odds"] = append(orders["evens-odds"], i)
	}
	for i := 1; i < n; i += 2 {
		orders["evens-odds"] = append(orders["evens-odds"], i)
	}
	for name, order := range orders {
		cw := &countingWriter{}
		sw := NewStreamWriter(cw)
		for _, idx := range order {
			sw.Add(r.Cells[idx])
		}
		if err := sw.Err(); err != nil {
			t.Fatalf("%s: stream error: %v", name, err)
		}
		if p := sw.Pending(); p != 0 {
			t.Fatalf("%s: %d rows still pending after the last add", name, p)
		}
		if !bytes.Equal(cw.buf.Bytes(), batch.Bytes()) {
			t.Errorf("%s: streamed file differs from the batch JSONL report", name)
		}
		if cw.written != batch.Len() {
			t.Errorf("%s: wrote %d bytes for a %d-byte file — write amplification is not linear",
				name, cw.written, batch.Len())
		}
	}
}

// TestStreamWriterLiveFromScheduler wires the frontier directly into a
// concurrent sweep as OnCell — the production -stream path — and checks the
// file equals the batch report without any re-sort step.
func TestStreamWriterLiveFromScheduler(t *testing.T) {
	g := Smoke()
	if err := g.ParseSpec("scen=jacobi;ranks=4;overlap=0;iters=16;resizecycle=8"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	cw := &countingWriter{}
	sw := NewStreamWriter(cw)
	r, err := Run(Options{Grid: g, Jobs: 4, OnCell: sw.Add})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if err := sw.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if p := sw.Pending(); p != 0 {
		t.Fatalf("%d rows never flushed", p)
	}
	var batch bytes.Buffer
	if err := r.WriteJSONL(&batch); err != nil {
		t.Fatalf("batch report: %v", err)
	}
	if !bytes.Equal(cw.buf.Bytes(), batch.Bytes()) {
		t.Error("live-streamed file differs from the batch JSONL report")
	}
}

// TestGrowSkewChecksums pins the skewed-resize cells: the smoke grid's
// growskew axis must actually resize (a redistribution at the arrivals) and
// must not corrupt data — on fault-free cells the checksum is invariant
// across the whole resize axis (none/grow/growskew), since membership and
// skew change only where rows live, never their values.
func TestGrowSkewChecksums(t *testing.T) {
	g := Smoke()
	if err := g.ParseSpec("scen=jacobi;ranks=4;rep=0;fault=none"); err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Run(Options{Grid: g, Jobs: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// Group by everything but the resize axis.
	groups := map[string]map[string]CellStats{}
	for _, c := range r.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Key, c.Err)
		}
		base := strings.TrimSuffix(c.Key, "/rz"+c.Cell.Resize)
		if groups[base] == nil {
			groups[base] = map[string]CellStats{}
		}
		groups[base][c.Cell.Resize] = c.Stats
	}
	for base, byRz := range groups {
		skew, ok := byRz["growskew"]
		if !ok {
			t.Fatalf("%s: no growskew cell", base)
		}
		if skew.Redists < 1 {
			t.Errorf("%s/rzgrowskew never redistributed — the resize did not happen", base)
		}
		for rz, st := range byRz {
			if st.Checksum != skew.Checksum || st.CheckInt != skew.CheckInt {
				t.Errorf("%s: checksum differs between rz%s (%v) and rzgrowskew (%v)",
					base, rz, st.Checksum, skew.Checksum)
			}
		}
	}
}
