// Package jacobi implements the paper's first evaluation application:
// Jacobi iteration for solving partial differential equations on an N×M
// grid of doubles (§5, Figure 1/2). Rows are block-distributed; each phase
// cycle computes every interior point as the average of its four
// neighbours, then performs a nearest-neighbour halo exchange.
//
// Two arrays alternate roles each cycle (ping-pong), so both are
// registered with the runtime and both carry ±1 read accesses — after a
// redistribution the runtime re-fetches exactly the ghost rows the DRSDs
// demand.
package jacobi

import (
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// Config parameterises a Jacobi run.
type Config struct {
	// Rows and Cols give the grid size (the paper uses 2048x2048).
	Rows, Cols int
	// Iters is the number of phase cycles (the paper uses 250).
	Iters int
	// CostPerElem is the modelled reference-CPU cost of one grid-point
	// update in nanoseconds.
	CostPerElem float64
	// Overlap enables the double-buffered overlapped halo exchange: each
	// cycle computes its boundary rows first, ships them nonblockingly,
	// folds the interior compute over the wire time, and only then waits
	// for the ghosts. Virtual iteration time shrinks by the hidden wire
	// time; the checksum is unchanged (rows are computed from the previous
	// buffer regardless of order). Off by default so existing pinned
	// timings and golden traces stay byte-identical.
	Overlap bool
	// ResizeTo, when positive, requests an elastic resize of the active set
	// to that many ranks at the start of iteration ResizeAt (every active
	// rank calls core.Runtime.Resize there). Growth claims the cluster's
	// reserve arrival capacity; shrinkage releases the highest active ranks.
	ResizeTo int
	// ResizeAt is the iteration at which ResizeTo is requested.
	ResizeAt int
	// Core configures the Dyn-MPI runtime.
	Core core.Config
	// CycleHook, if set, is called after every phase cycle with the rank,
	// cycle index and that rank's virtual time. Each rank calls it from its
	// own goroutine; the hook must be safe for concurrent use across ranks.
	CycleHook func(rank, cycle int, now vclock.Time)
}

// DefaultConfig returns a laptop-scale configuration with a
// computation/communication ratio comparable to the paper's 2048² runs.
func DefaultConfig() Config {
	return Config{Rows: 512, Cols: 512, Iters: 100, CostPerElem: 40, Core: core.DefaultConfig()}
}

const haloTag = 7

// Run executes Jacobi iteration on the cluster and returns the result.
func Run(cl *cluster.Cluster, cfg Config) (apps.Result, error) {
	col := apps.NewCollector()
	err := mpi.Run(cl, func(c *mpi.Comm) error {
		rt := core.New(c, cfg.Core)
		a := rt.RegisterDense("A", cfg.Rows, cfg.Cols)
		b := rt.RegisterDense("B", cfg.Rows, cfg.Cols)
		ph := rt.InitPhase(cfg.Rows)
		for _, name := range []string{"A", "B"} {
			ph.AddAccess(name, drsd.ReadWrite, 1, 0)
			ph.AddAccess(name, drsd.Read, 1, -1)
			ph.AddAccess(name, drsd.Read, 1, +1)
		}
		rt.Commit()
		start := 0
		if rt.Joined() {
			// A mid-run joiner: its rows (current values included) arrived in
			// the admission redistribution Commit just ran, so the initial
			// fill must not overwrite them, and the cycle loop starts at the
			// cycle the world is on.
			start = rt.Cycle()
		} else {
			init := func(g, j int) float64 {
				// Fixed hot boundary, cold interior.
				if g == 0 || g == cfg.Rows-1 || j == 0 || j == cfg.Cols-1 {
					return float64((g*31+j*17)%100) / 10
				}
				return 0
			}
			a.Fill(init)
			b.Fill(init)
		}

		rowCost := vclock.Duration(float64(cfg.Cols) * cfg.CostPerElem)
		src, dst := b, a
		if start%2 == 1 {
			// At the start of iteration t the source buffer is b for even t;
			// align the joiner's ping-pong parity with the world's.
			src, dst = dst, src
		}
		// computeRow produces dst row g from the src buffer. Rows only read
		// src (and the ghosts stored into it last cycle), so computation
		// order within a cycle is free — the overlapped path exploits that
		// by doing the boundary rows first.
		computeRow := func(g int) {
			if g > 0 && g < cfg.Rows-1 {
				up, mid, down := src.Row(g-1), src.Row(g), src.Row(g+1)
				out := dst.Row(g)
				for j := 1; j < cfg.Cols-1; j++ {
					out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
				}
				out[0], out[cfg.Cols-1] = mid[0], mid[cfg.Cols-1]
			} else {
				copy(dst.Row(g), src.Row(g))
			}
			rt.ComputeIter(g, rowCost)
		}
		rowOf := func(g int) []float64 { return dst.Row(g) }
		storeGhost := func(g int, row []float64) { copy(dst.Row(g), row) }
		for t := start; t < cfg.Iters; t++ {
			if cfg.ResizeTo > 0 && t == cfg.ResizeAt && rt.Participating() {
				rt.Resize(cfg.ResizeTo)
			}
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				if cfg.Overlap {
					// Boundary rows first, so the halo ships them while the
					// interior computes over the in-flight wire time.
					if lo < hi {
						computeRow(lo)
						if hi-1 > lo {
							computeRow(hi - 1)
						}
					}
					apps.HaloExchangeOverlap(rt, haloTag, cfg.Rows, rowOf, storeGhost, func() {
						for g := lo + 1; g < hi-1; g++ {
							computeRow(g)
						}
					})
				} else {
					for g := lo; g < hi; g++ {
						computeRow(g)
					}
					apps.HaloExchange(rt, haloTag, cfg.Rows, rowOf, storeGhost)
				}
			}
			rt.EndCycle()
			if cfg.CycleHook != nil {
				cfg.CycleHook(c.Rank(), t, c.Now())
			}
			src, dst = dst, src
		}
		sum := 0.0
		if rt.Participating() {
			lo, hi := ph.Bounds()
			sum = apps.OrderedChecksum(rt, cfg.Rows, lo, hi, func(g int) float64 {
				row := src.Row(g) // src holds the final values after the last swap
				s := 0.0
				for _, v := range row {
					s += v
				}
				return s
			})
		} else {
			sum = apps.OrderedChecksum(rt, cfg.Rows, 0, 0, nil)
		}
		rt.Finalize()
		col.Report(rt, sum, 0)
		return nil
	})
	if err != nil {
		return apps.Result{}, err
	}
	return col.Result(cl.MaxN()), nil
}
