package jacobi

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

func TestCycleHookObservesEveryCycle(t *testing.T) {
	cfg := testConfig()
	cfg.Iters = 15
	cfg.Core.Adapt = false
	var mu sync.Mutex
	seen := map[int][]int{} // rank -> cycles
	var lastTimes []vclock.Time
	cfg.CycleHook = func(rank, cycle int, now vclock.Time) {
		mu.Lock()
		defer mu.Unlock()
		seen[rank] = append(seen[rank], cycle)
		if cycle == cfg.Iters-1 {
			lastTimes = append(lastTimes, now)
		}
	}
	if _, err := Run(cluster.New(cluster.Uniform(3)), cfg); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		cycles := seen[r]
		if len(cycles) != cfg.Iters {
			t.Fatalf("rank %d hook fired %d times, want %d", r, len(cycles), cfg.Iters)
		}
		for i, c := range cycles {
			if c != i {
				t.Fatalf("rank %d cycles out of order: %v", r, cycles)
			}
		}
	}
	if len(lastTimes) != 3 {
		t.Fatalf("final-cycle times: %d", len(lastTimes))
	}
	for _, tm := range lastTimes {
		if tm <= 0 {
			t.Fatal("hook saw zero time")
		}
	}
}
