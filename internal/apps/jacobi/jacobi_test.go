package jacobi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// testConfig is a small grid with cycle times long enough for the 1s load
// monitor to catch mid-run CP changes.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters = 64, 64, 60
	cfg.CostPerElem = 50e3 // 50us/elem -> ~50ms per node per cycle on 4 nodes
	return cfg
}

func loadedSpec(n, node, cycle int) cluster.Spec {
	return cluster.Uniform(n).With(cluster.CycleEvent(node, cycle, +1))
}

func TestDeterministicDedicated(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	a, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.Checksum, a.Elapsed, b.Checksum, b.Elapsed)
	}
	if a.Checksum == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestAdaptationPreservesValuesBitExactly(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever

	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := loadedSpec(4, 1, 5)
	adp, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Redists == 0 {
		t.Fatal("adaptation never redistributed; test scenario broken")
	}
	if adp.Checksum != ded.Checksum {
		t.Fatalf("redistribution changed results: %v vs %v", adp.Checksum, ded.Checksum)
	}

	noCfg := cfg
	noCfg.Core.Adapt = false
	non, err := Run(cluster.New(spec), noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if non.Checksum != ded.Checksum {
		t.Fatalf("baseline under load diverged: %v vs %v", non.Checksum, ded.Checksum)
	}
}

func TestAdaptationBeatsNoAdaptation(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 1, 5)
	adp, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	noCfg := cfg
	noCfg.Core.Adapt = false
	non, err := Run(cluster.New(spec), noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Elapsed >= non.Elapsed {
		t.Fatalf("Dyn-MPI (%.3fs) not faster than no adaptation (%.3fs)", adp.Elapsed, non.Elapsed)
	}
}

func TestSlowdownVersusDedicatedIsBounded(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports an average 29% slowdown vs dedicated; at this scale
	// anything under ~70% indicates the machinery works.
	if adp.Elapsed > ded.Elapsed*1.7 {
		t.Fatalf("adaptive run %.3fs vs dedicated %.3fs: slowdown too large", adp.Elapsed, ded.Elapsed)
	}
}

func TestDropPreservesValues(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropAlways
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster.New(loadedSpec(4, 2, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, st := range res.Stats {
		if st.Removed {
			removed++
			if st.Rank != 2 {
				t.Errorf("wrong node removed: %d", st.Rank)
			}
		}
	}
	if removed != 1 {
		t.Fatalf("removed %d nodes, want 1", removed)
	}
	if res.Checksum != ded.Checksum {
		t.Fatalf("node removal changed results: %v vs %v", res.Checksum, ded.Checksum)
	}
}

func TestTwoNodeMinimal(t *testing.T) {
	cfg := testConfig()
	cfg.Iters = 20
	cfg.Core.Adapt = false
	res, err := Run(cluster.New(cluster.Uniform(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum == 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestSingleNode(t *testing.T) {
	cfg := testConfig()
	cfg.Iters = 10
	res, err := Run(cluster.New(cluster.Uniform(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum == 0 {
		t.Fatal("single-node run degenerate")
	}
}
