package jacobi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestOverlapPreservesChecksumAndHidesWire pins the two halves of the
// overlapped-halo contract: every dst row is a function of the previous
// buffer only, so computing boundary rows first cannot change a single bit
// of the result; and the wire time folded behind the interior compute makes
// the virtual makespan strictly smaller than the serial exchange's.
func TestOverlapPreservesChecksumAndHidesWire(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	base, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	ovl, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ovl.Checksum != base.Checksum {
		t.Fatalf("overlap changed the checksum: %v vs %v", ovl.Checksum, base.Checksum)
	}
	if ovl.Elapsed >= base.Elapsed {
		t.Fatalf("overlap did not hide any wire time: %v vs serial %v", ovl.Elapsed, base.Elapsed)
	}
}

// TestOverlapDeterministicAndAdaptive runs the overlapped configuration
// twice under load with adaptation on: the result must be reproducible and
// bit-identical to the serial adaptive run's values.
func TestOverlapDeterministicAndAdaptive(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 1, 5)
	serial, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	a, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Elapsed != b.Elapsed {
		t.Fatalf("overlap run not deterministic: %v/%v vs %v/%v", a.Checksum, a.Elapsed, b.Checksum, b.Elapsed)
	}
	if a.Checksum != serial.Checksum {
		t.Fatalf("adaptive overlap changed the checksum: %v vs %v", a.Checksum, serial.Checksum)
	}
	if a.Redists == 0 {
		t.Fatal("adaptation never redistributed; test scenario broken")
	}
}
