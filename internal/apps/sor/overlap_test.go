package sor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestOverlapPreservesChecksumAndHidesWire pins the red-black argument for
// overlap safety: red points read only black neighbours and vice versa, so
// sweeping boundary rows first within a half-phase is numerically free,
// while the black sweep still observes the red-updated ghosts because the
// red exchange finishes before it starts. The makespan must shrink by the
// hidden wire time; the values must not move a bit.
func TestOverlapPreservesChecksumAndHidesWire(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	base, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	ovl, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ovl.Checksum != base.Checksum {
		t.Fatalf("overlap changed the checksum: %v vs %v", ovl.Checksum, base.Checksum)
	}
	if ovl.Elapsed >= base.Elapsed {
		t.Fatalf("overlap did not hide any wire time: %v vs serial %v", ovl.Elapsed, base.Elapsed)
	}
}

// TestOverlapDeterministicAndAdaptive is the loaded adaptive variant: the
// overlapped run must be reproducible and preserve the serial checksum.
func TestOverlapDeterministicAndAdaptive(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	serial, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	a, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Elapsed != b.Elapsed {
		t.Fatalf("overlap run not deterministic: %v/%v vs %v/%v", a.Checksum, a.Elapsed, b.Checksum, b.Elapsed)
	}
	if a.Checksum != serial.Checksum {
		t.Fatalf("adaptive overlap changed the checksum: %v vs %v", a.Checksum, serial.Checksum)
	}
}
