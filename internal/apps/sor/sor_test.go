package sor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Iters = 64, 64, 60
	cfg.CostPerElem = 50e3
	return cfg
}

func loadedSpec(n, node, cycle int) cluster.Spec {
	return cluster.Uniform(n).With(cluster.CycleEvent(node, cycle, +1))
}

func TestDeterministicDedicated(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	a, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("non-deterministic: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestAdaptationPreservesValuesBitExactly(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Redists == 0 {
		t.Fatal("no redistribution; scenario broken")
	}
	if adp.Checksum != ded.Checksum {
		t.Fatalf("redistribution changed SOR results: %v vs %v", adp.Checksum, ded.Checksum)
	}
}

func TestAdaptationBeatsNoAdaptation(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 1, 5)
	adp, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	noCfg := cfg
	noCfg.Core.Adapt = false
	non, err := Run(cluster.New(spec), noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Elapsed >= non.Elapsed {
		t.Fatalf("Dyn-MPI (%.3fs) not faster than no adaptation (%.3fs)", adp.Elapsed, non.Elapsed)
	}
}

func TestPhysicalDropPreservesValues(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropAlways
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster.New(loadedSpec(4, 3, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[3].Removed {
		t.Fatal("loaded node 3 was not removed")
	}
	if res.Checksum != ded.Checksum {
		t.Fatalf("drop changed SOR results: %v vs %v", res.Checksum, ded.Checksum)
	}
}

func TestLogicalDropPreservesValues(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropLogical
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster.New(loadedSpec(4, 3, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[3].Removed {
		t.Fatal("logical drop must keep the node")
	}
	if res.Checksum != ded.Checksum {
		t.Fatalf("logical drop changed results: %v vs %v", res.Checksum, ded.Checksum)
	}
}

func TestPhysicalDropBeatsLogicalAtScale(t *testing.T) {
	// §2.2: "the performance difference between logical and physical
	// dropping can be significant" — with many nodes and a comm-bound
	// grid, keeping the loaded node in the ring is costly.
	cfg := testConfig()
	cfg.Rows, cfg.Cols = 96, 96
	cfg.Iters = 150
	cfg.CostPerElem = 2e3 // comm-bound per node at 8 nodes
	// Three CPs present from t=0, visible at the monitor's first sample.
	spec := cluster.Uniform(8).
		With(cluster.TimeEvent(5, 0, +1)).
		With(cluster.TimeEvent(5, 0, +1)).
		With(cluster.TimeEvent(5, 0, +1))
	phys := cfg
	phys.Core.Drop = core.DropAlways
	logi := cfg
	logi.Core.Drop = core.DropLogical
	rp, err := Run(cluster.New(spec), phys)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(cluster.New(spec), logi)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Checksum != rl.Checksum {
		t.Fatalf("drop modes disagree on results: %v vs %v", rp.Checksum, rl.Checksum)
	}
	if rp.Elapsed >= rl.Elapsed {
		t.Fatalf("physical drop (%.3fs) not faster than logical (%.3fs) in comm-bound regime", rp.Elapsed, rl.Elapsed)
	}
}
