// Package sor implements Red-Black successive over-relaxation, the paper's
// second evaluation application (§5.3). Each phase cycle consists of two
// half-phases — update the red points, exchange halos, update the black
// points, exchange halos — giving SOR a smaller computation/communication
// ratio than Jacobi, which is exactly why the paper uses it to demonstrate
// node removal.
package sor

import (
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// Config parameterises an SOR run.
type Config struct {
	// Rows and Cols give the grid size (the paper's §5.3 uses 1024x1024).
	Rows, Cols int
	// Iters is the number of phase cycles.
	Iters int
	// Omega is the over-relaxation factor.
	Omega float64
	// CostPerElem is the modelled reference-CPU cost of one point update
	// in nanoseconds.
	CostPerElem float64
	// Overlap enables the overlapped halo exchange in both half-phases:
	// boundary rows are swept first and shipped nonblockingly, the interior
	// sweep folds over the wire time, and the ghosts are awaited only at
	// the half-phase end. Red updates read only black points and vice
	// versa, so within-half-phase row order is numerically free; the black
	// sweep still observes the red-updated ghosts because the red
	// exchange finishes before it starts. Off by default so pinned timings
	// stay byte-identical.
	Overlap bool
	// ResizeTo, when positive, requests an elastic resize of the active set
	// to that many ranks at the start of iteration ResizeAt.
	ResizeTo int
	// ResizeAt is the iteration at which ResizeTo is requested.
	ResizeAt int
	// Core configures the Dyn-MPI runtime.
	Core core.Config
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Rows: 512, Cols: 512, Iters: 100, Omega: 1.5, CostPerElem: 40, Core: core.DefaultConfig()}
}

const (
	redTag   = 11
	blackTag = 12
)

// Run executes Red-Black SOR on the cluster and returns the result.
func Run(cl *cluster.Cluster, cfg Config) (apps.Result, error) {
	col := apps.NewCollector()
	err := mpi.Run(cl, func(c *mpi.Comm) error {
		rt := core.New(c, cfg.Core)
		u := rt.RegisterDense("U", cfg.Rows, cfg.Cols)
		ph := rt.InitPhase(cfg.Rows)
		ph.AddAccess("U", drsd.ReadWrite, 1, 0)
		ph.AddAccess("U", drsd.Read, 1, -1)
		ph.AddAccess("U", drsd.Read, 1, +1)
		rt.Commit()
		start := 0
		if rt.Joined() {
			// A mid-run joiner's rows arrived in the admission redistribution
			// Commit just ran; start at the world's current cycle and do not
			// overwrite them with the initial fill.
			start = rt.Cycle()
		} else {
			u.Fill(func(g, j int) float64 {
				if g == 0 || g == cfg.Rows-1 || j == 0 || j == cfg.Cols-1 {
					return float64((g*13+j*7)%100) / 10
				}
				return 0
			})
		}

		// Each half-phase touches half the points of each row.
		halfRowCost := vclock.Duration(float64(cfg.Cols) * cfg.CostPerElem / 2)
		sweep := func(g, color int) {
			if g == 0 || g == cfg.Rows-1 {
				return
			}
			up, mid, down := u.Row(g-1), u.Row(g), u.Row(g+1)
			start := 1 + (g+color+1)%2
			for j := start; j < cfg.Cols-1; j += 2 {
				res := 0.25*(up[j]+down[j]+mid[j-1]+mid[j+1]) - mid[j]
				mid[j] += cfg.Omega * res
			}
		}
		rowOf := func(g int) []float64 { return u.Row(g) }
		storeGhost := func(g int, row []float64) { copy(u.Row(g), row) }
		for t := start; t < cfg.Iters; t++ {
			if cfg.ResizeTo > 0 && t == cfg.ResizeAt && rt.Participating() {
				rt.Resize(cfg.ResizeTo)
			}
			if rt.BeginCycle() {
				lo, hi := ph.Bounds()
				if cfg.Overlap {
					// Each half-phase sweeps its boundary rows first, ships
					// them, and folds the interior sweep over the exchange.
					// Each half-phase contributes one half-row sample per
					// row, exactly as the serial path.
					halfPhase := func(color, tag int) {
						if lo < hi {
							sweep(lo, color)
							rt.ComputeIter(lo, halfRowCost)
							if hi-1 > lo {
								sweep(hi-1, color)
								rt.ComputeIter(hi-1, halfRowCost)
							}
						}
						apps.HaloExchangeOverlap(rt, tag, cfg.Rows, rowOf, storeGhost, func() {
							for g := lo + 1; g < hi-1; g++ {
								sweep(g, color)
								rt.ComputeIter(g, halfRowCost)
							}
						})
					}
					halfPhase(0, redTag)
					halfPhase(1, blackTag)
				} else {
					for g := lo; g < hi; g++ {
						sweep(g, 0)
						rt.ComputeIter(g, halfRowCost)
					}
					apps.HaloExchange(rt, redTag, cfg.Rows, rowOf, storeGhost)
					for g := lo; g < hi; g++ {
						sweep(g, 1)
						rt.ComputeIter(g, halfRowCost) // each half-phase contributes one half-row sample
					}
					apps.HaloExchange(rt, blackTag, cfg.Rows, rowOf, storeGhost)
				}
			}
			rt.EndCycle()
		}

		sum := 0.0
		if rt.Participating() {
			lo, hi := ph.Bounds()
			sum = apps.OrderedChecksum(rt, cfg.Rows, lo, hi, func(g int) float64 {
				s := 0.0
				for _, v := range u.Row(g) {
					s += v
				}
				return s
			})
		} else {
			sum = apps.OrderedChecksum(rt, cfg.Rows, 0, 0, nil)
		}
		rt.Finalize()
		col.Report(rt, sum, 0)
		return nil
	})
	if err != nil {
		return apps.Result{}, err
	}
	return col.Result(cl.MaxN()), nil
}
