// Package apps provides the shared harness for the four applications the
// paper evaluates (Jacobi iteration, Red-Black SOR, Conjugate Gradient, and
// particle simulation): result collection, distribution-independent
// checksums, and rank statistics.
//
// Every application is written against the Dyn-MPI runtime exactly as the
// paper's Figure 2 prescribes — register arrays, declare accesses, query
// bounds every cycle, communicate via relative ranks — and doubles as its
// own baseline: with Config.Adapt=false the runtime is inert and the
// program behaves like its plain-MPI original.
package apps

import (
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// RankStats captures one rank's end-of-run state.
type RankStats struct {
	Rank      int
	Removed   bool
	Crashed   bool // rank died to an injected fault and never reported
	Redists   int
	Finish    vclock.Time
	Events    []core.Event
	SentBytes int64
	SentMsgs  int64
	// RefreshStall is the cumulative virtual stall this rank's replica
	// refreshes cost it (paired receives, or fence settlements under
	// one-sided refresh); the RMA study compares it across modes.
	RefreshStall vclock.Duration
}

// Result is the outcome of one application run.
type Result struct {
	// Elapsed is the makespan: the latest finish time across ranks, in
	// seconds of virtual time.
	Elapsed float64
	// Checksum is a distribution-independent float checksum of the final
	// data (bit-identical across adaptive and non-adaptive runs for the
	// dense applications).
	Checksum float64
	// CheckInt is an order-independent integer checksum (used by the
	// particle simulation, where float summation order would vary).
	CheckInt int64
	// Redists is the number of redistributions performed.
	Redists int
	// Stats holds per-rank details, indexed by world rank.
	Stats []RankStats
}

// Collector gathers per-rank results inside an mpi.Run closure.
type Collector struct {
	mu    sync.Mutex
	stats map[int]RankStats
	sums  map[int]float64
	ints  map[int]int64
}

// NewCollector creates a result collector for n ranks.
func NewCollector() *Collector {
	return &Collector{stats: map[int]RankStats{}, sums: map[int]float64{}, ints: map[int]int64{}}
}

// Report records one rank's final state (call once per rank). It also
// finishes the runtime, settling any replica epoch the one-sided refresh
// left open — without that, the final epoch's deposits would linger on
// world teardown.
func (c *Collector) Report(rt *core.Runtime, checksum float64, checkInt int64) {
	rt.Finish()
	comm := rt.Comm()
	st := RankStats{
		Rank:         comm.Rank(),
		Removed:      !rt.Participating(),
		Redists:      rt.Redistributions(),
		Finish:       comm.Now(),
		Events:       rt.Events(),
		SentBytes:    comm.SentBytes,
		SentMsgs:     comm.SentMsgs,
		RefreshStall: rt.ReplicaStall(),
	}
	c.mu.Lock()
	c.stats[st.Rank] = st
	c.sums[st.Rank] = checksum
	c.ints[st.Rank] = checkInt
	c.mu.Unlock()
}

// Result assembles the final Result after mpi.Run returns.
func (c *Collector) Result(n int) Result {
	var r Result
	r.Stats = make([]RankStats, n)
	for i := 0; i < n; i++ {
		st, reported := c.stats[i]
		if !reported {
			// The rank died to an injected crash before reaching Report. A
			// zero-value entry would masquerade as a participant and wipe
			// the checksum with its zero.
			r.Stats[i] = RankStats{Rank: i, Crashed: true}
			continue
		}
		r.Stats[i] = st
		if st.Finish > 0 {
			if s := st.Finish.Seconds(); s > r.Elapsed {
				r.Elapsed = s
			}
		}
		if st.Redists > r.Redists {
			r.Redists = st.Redists
		}
		if !st.Removed {
			// All participants computed the same checksum; take any.
			r.Checksum = c.sums[i]
			r.CheckInt = c.ints[i]
		}
	}
	return r
}

// OrderedChecksum computes a checksum of per-row values summed in global
// row order, independent of how rows are distributed: each rank deposits
// its owned rows into a zero-filled vector, an element-wise allreduce
// assembles the full vector bit-exactly (x+0 == x), and the final sum runs
// in a fixed order on every rank.
func OrderedChecksum(rt *core.Runtime, n int, lo, hi int, rowVal func(g int) float64) float64 {
	contrib := make([]float64, n)
	for g := lo; g < hi; g++ {
		contrib[g] = rowVal(g)
	}
	full := rt.AllreduceF64s(contrib, mpi.Sum)
	s := 0.0
	for _, v := range full {
		s += v
	}
	return s
}

// HaloExchange performs the standard nearest-neighbour boundary exchange
// for a block distribution: each rank sends its first owned row up and its
// last owned row down, receiving the adjacent ghosts. rowOf must return the
// (resident) row g to send; store is called with received ghost rows.
// Ranks owning no rows neither send nor receive.
func HaloExchange(rt *core.Runtime, tag int, n int, rowOf func(g int) []float64, store func(g int, row []float64)) {
	if !rt.Participating() {
		return
	}
	lo, hi := rt.Dist().RangeOf(rt.Comm().Rank())
	if lo >= hi {
		return
	}
	up, down := -1, -1 // world ranks of adjacent row owners
	if lo > 0 {
		up = rt.Dist().Owner(lo - 1)
	}
	if hi < n {
		down = rt.Dist().Owner(hi)
	}
	comm := rt.Comm()
	// Snapshot outgoing rows: the sender may overwrite a boundary row (SOR
	// updates it in the very next half-phase) while the receiver is still
	// reading the payload.
	snap := func(g int) []float64 {
		src := rowOf(g)
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	if up >= 0 {
		row := snap(lo)
		comm.Send(up, tag, row, mpi.F64Bytes(len(row)))
	}
	if down >= 0 {
		row := snap(hi - 1)
		comm.Send(down, tag, row, mpi.F64Bytes(len(row)))
	}
	// A dead neighbour cannot ship its boundary row; keep the stale ghost
	// (the runtime's recovery pass re-partitions at the next cycle
	// boundary, after which neighbours are live again).
	if up >= 0 {
		if row, _, err := comm.RecvErr(up, tag); err == nil {
			store(lo-1, row.([]float64))
		}
	}
	if down >= 0 {
		if row, _, err := comm.RecvErr(down, tag); err == nil {
			store(hi, row.([]float64))
		}
	}
}

// HaloHandle is an in-flight overlapped halo exchange started by
// BeginHaloExchange. The zero value is inert: Finish on it is a no-op, so
// non-participating ranks need no special casing.
type HaloHandle struct {
	rt               *core.Runtime
	lo, hi           int
	recvUp, recvDown *mpi.Request // ghost rows lo-1 and hi
	sendUp, sendDown *mpi.Request
}

// BeginHaloExchange starts the nearest-neighbour boundary exchange without
// waiting for the ghosts: it posts the ghost Irecvs, snapshots and Isends
// the boundary rows, and returns — charging only the send-side injection
// CPU. The caller then computes whatever does not need the incoming ghosts
// (typically the interior rows) and calls Finish; wire time that elapses
// behind that compute is genuinely free in virtual time and is credited to
// the rank's HiddenWire counter by Finish's Waits. Boundary rows must hold
// their final values before the call — they are shipped immediately.
func BeginHaloExchange(rt *core.Runtime, tag int, n int, rowOf func(g int) []float64) HaloHandle {
	if !rt.Participating() {
		return HaloHandle{}
	}
	lo, hi := rt.Dist().RangeOf(rt.Comm().Rank())
	if lo >= hi {
		return HaloHandle{}
	}
	h := HaloHandle{rt: rt, lo: lo, hi: hi}
	up, down := -1, -1
	if lo > 0 {
		up = rt.Dist().Owner(lo - 1)
	}
	if hi < n {
		down = rt.Dist().Owner(hi)
	}
	comm := rt.Comm()
	// Ghost receives first, so a neighbour's send fills the posted request
	// directly instead of passing through the mailbox queues.
	if up >= 0 {
		h.recvUp = comm.Irecv(up, tag)
	}
	if down >= 0 {
		h.recvDown = comm.Irecv(down, tag)
	}
	snap := func(g int) []float64 {
		src := rowOf(g)
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	if up >= 0 {
		row := snap(lo)
		h.sendUp = comm.Isend(up, tag, row, mpi.F64Bytes(len(row)))
	}
	if down >= 0 {
		row := snap(hi - 1)
		h.sendDown = comm.Isend(down, tag, row, mpi.F64Bytes(len(row)))
	}
	return h
}

// Finish waits for the ghost rows and stores them, keeping a stale ghost
// when the neighbour died (the same policy as HaloExchange), and recycles
// the send requests. It is idempotent.
func (h *HaloHandle) Finish(store func(g int, row []float64)) {
	if h.rt == nil {
		return
	}
	comm := h.rt.Comm()
	if h.recvUp != nil {
		if row, _, err := comm.WaitErr(h.recvUp); err == nil {
			store(h.lo-1, row.([]float64))
		}
		h.recvUp = nil
	}
	if h.recvDown != nil {
		if row, _, err := comm.WaitErr(h.recvDown); err == nil {
			store(h.hi, row.([]float64))
		}
		h.recvDown = nil
	}
	if h.sendUp != nil {
		comm.WaitErr(h.sendUp) // send requests complete at post; this only recycles
		h.sendUp = nil
	}
	if h.sendDown != nil {
		comm.WaitErr(h.sendDown)
		h.sendDown = nil
	}
	h.rt = nil
}

// HaloExchangeOverlap is HaloExchange with communication/computation
// overlap: it posts the ghost receives and boundary sends, runs overlap()
// (the work that does not depend on the incoming ghosts — typically the
// interior-row compute) while the wire time elapses in virtual background,
// then waits for and stores the ghosts. Callers must compute their boundary
// rows before calling it, since those rows are shipped up front; overlap()
// runs even on ranks that own no rows, so loop structure stays uniform.
func HaloExchangeOverlap(rt *core.Runtime, tag int, n int, rowOf func(g int) []float64, store func(g int, row []float64), overlap func()) {
	h := BeginHaloExchange(rt, tag, n, rowOf)
	if overlap != nil {
		overlap()
	}
	h.Finish(store)
}
